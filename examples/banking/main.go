// Banking example: the database-flavoured motivation of Section 1 ("if a
// transaction in a database is viewed as an atomic operation then it
// operates, in general, on multiple data items").
//
// Tellers transfer money between accounts with atomic two-object
// m-operations while an auditor repeatedly sums all balances with an
// atomic multi-object read. Under m-linearizability the audit total is
// invariant; the same workload on an m-sequentially-consistent store is
// run for contrast (its audits are local and may lag, but each audit is
// still a consistent snapshot, so the total is invariant there too —
// the difference shows up in recency, which the example reports).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"moc"
)

const (
	accounts    = 6
	tellers     = 3
	transfers   = 12
	initialEach = 100
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, cons := range []moc.Consistency{moc.MLinearizable, moc.MSequential} {
		if err := runBank(cons); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runBank(cons moc.Consistency) error {
	names := make([]string, accounts)
	for i := range names {
		names[i] = fmt.Sprintf("acct%d", i)
	}
	s, err := moc.New(moc.Config{
		Procs:       tellers + 1,
		Objects:     names,
		Consistency: cons,
		MaxDelay:    time.Millisecond,
		Seed:        11,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	fmt.Printf("=== %v store ===\n", cons)

	ids := make([]moc.ObjectID, accounts)
	writes := make(map[moc.ObjectID]moc.Value, accounts)
	for i, n := range names {
		id, err := s.Object(n)
		if err != nil {
			return err
		}
		ids[i] = id
		writes[id] = initialEach
	}

	// Seed all balances atomically.
	p0, _ := s.Process(0)
	if err := p0.MAssign(writes); err != nil {
		return err
	}

	var wg sync.WaitGroup
	errs := make(chan error, tellers+1)
	for tl := 0; tl < tellers; tl++ {
		p, err := s.Process(tl)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(tl int, p *moc.Process) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := ids[(tl+i)%accounts]
				to := ids[(tl+i+1)%accounts]
				amount := moc.Value(1 + (tl+i)%20)
				if _, err := p.Transfer(from, to, amount); err != nil {
					errs <- err
					return
				}
			}
		}(tl, p)
	}

	auditor, err := s.Process(tellers)
	if err != nil {
		return err
	}
	audits := 0
	badAudits := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < transfers*2; i++ {
			total, err := auditor.Sum(ids...)
			if err != nil {
				errs <- err
				return
			}
			audits++
			// Before the seeding MAssign is visible a local audit may
			// legitimately see 0; anything else indicates a torn read.
			if total != accounts*initialEach && total != 0 {
				badAudits++
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	fmt.Printf("audits: %d, torn audits: %d (want 0)\n", audits, badAudits)
	if badAudits != 0 {
		return fmt.Errorf("audit observed a torn state — atomicity violated")
	}

	res, err := s.Verify()
	if err != nil {
		return err
	}
	fmt.Printf("history of %d m-operations verified %v: %v\n",
		res.History.Len()-1, cons, res.OK)

	total, err := auditor.Sum(ids...)
	if err != nil {
		return err
	}
	switch total {
	case accounts * initialEach:
		fmt.Printf("final audited total: %d (conserved)\n", total)
	case 0:
		// m-SC audits are local; the auditor's replica may not have seen
		// the seeding assignment yet — a consistent but stale snapshot.
		fmt.Println("final audit observed the (consistent) pre-seed state")
	default:
		return fmt.Errorf("final audit total %d — conservation violated", total)
	}
	return nil
}
