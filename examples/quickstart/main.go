// Quickstart: a three-process m-linearizable store, a few multi-object
// operations, and post-hoc verification of the recorded history.
package main

import (
	"fmt"
	"log"
	"time"

	"moc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s, err := moc.New(moc.Config{
		Procs:       3,
		Objects:     []string{"x", "y"},
		Consistency: moc.MLinearizable,
		MaxDelay:    2 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	x, err := s.Object("x")
	if err != nil {
		return err
	}
	y, _ := s.Object("y")
	p0, _ := s.Process(0)
	p1, _ := s.Process(1)
	p2, _ := s.Process(2)

	// Atomic multi-register assignment (Section 1's motivating example).
	if err := p0.MAssign(map[moc.ObjectID]moc.Value{x: 1, y: 2}); err != nil {
		return err
	}
	fmt.Println("P0: x, y := 1, 2 (atomic m-register assignment)")

	// Double compare-and-swap from another process: because the store is
	// m-linearizable, P1 is guaranteed to see P0's completed assignment.
	ok, err := p1.DCAS(x, y, 1, 2, 10, 20)
	if err != nil {
		return err
	}
	fmt.Printf("P1: DCAS(x: 1->10, y: 2->20) succeeded: %v\n", ok)

	// A third process takes an atomic snapshot.
	vals, err := p2.MultiRead(x, y)
	if err != nil {
		return err
	}
	fmt.Printf("P2: atomic snapshot (x, y) = %v\n", vals)

	// The same snapshot at QUORUM: the query completes once a majority
	// of the three replicas answered instead of waiting for all of them,
	// and the result certifies the level it actually achieved.
	r, err := p2.Exec(moc.MultiRead{Xs: []moc.ObjectID{x, y}},
		moc.ExecOptions{Level: moc.Quorum})
	if err != nil {
		return err
	}
	fmt.Printf("P2: quorum snapshot (x, y) = %v (level %s from %d replicas, consistent: %v)\n",
		r.Value, r.Level, len(r.Responders), r.IsConsistent)

	// Reconstruct the formal history and verify m-linearizability.
	res, err := s.Verify()
	if err != nil {
		return err
	}
	fmt.Printf("\nrecorded history (%d m-operations):\n", res.History.Len()-1)
	for _, m := range res.History.MOps()[1:] {
		fmt.Printf("  %s\n", m)
	}
	fmt.Printf("m-linearizable: %v\nwitness: %s\n", res.OK, res.Witness)
	return nil
}
