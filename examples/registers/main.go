// Registers example: atomic m-register assignment (Section 1) versus
// what happens without it.
//
// A writer repeatedly assigns the SAME value to m registers — first with
// the atomic MAssign m-operation, then with m separate single-register
// writes. Readers take atomic multi-object snapshots. With MAssign every
// snapshot is uniform; with separate writes readers catch the writer
// mid-flight, observing mixed values — exactly the lost atomicity the
// multi-object model restores.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"moc"
)

const (
	registers = 4
	rounds    = 20
	readers   = 2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mixedAtomic, err := runAssignments(true)
	if err != nil {
		return err
	}
	mixedSplit, err := runAssignments(false)
	if err != nil {
		return err
	}
	fmt.Printf("\nmixed snapshots with atomic m-register assignment: %d (want 0)\n", mixedAtomic)
	fmt.Printf("mixed snapshots with m separate writes:            %d (nonzero expected)\n", mixedSplit)
	if mixedAtomic != 0 {
		return fmt.Errorf("atomic assignment produced a mixed snapshot")
	}
	if mixedSplit == 0 {
		fmt.Println("note: the racy variant happened to produce no mixed snapshot this run")
	}
	return nil
}

func runAssignments(atomic bool) (int, error) {
	names := make([]string, registers)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
	}
	s, err := moc.New(moc.Config{
		Procs:       1 + readers,
		Objects:     names,
		Consistency: moc.MLinearizable,
		MaxDelay:    500 * time.Microsecond,
		Seed:        3,
	})
	if err != nil {
		return 0, err
	}
	defer s.Close()

	ids := make([]moc.ObjectID, registers)
	for i, n := range names {
		ids[i], _ = s.Object(n)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 1+readers)

	writer, _ := s.Process(0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 1; round <= rounds; round++ {
			v := moc.Value(round)
			if atomic {
				writes := make(map[moc.ObjectID]moc.Value, registers)
				for _, id := range ids {
					writes[id] = v
				}
				if err := writer.MAssign(writes); err != nil {
					errs <- err
					return
				}
			} else {
				for _, id := range ids {
					if err := writer.Write(id, v); err != nil {
						errs <- err
						return
					}
				}
			}
		}
	}()

	mixed := make([]int, readers)
	for r := 0; r < readers; r++ {
		p, _ := s.Process(1 + r)
		wg.Add(1)
		go func(r int, p *moc.Process) {
			defer wg.Done()
			for i := 0; i < rounds*2; i++ {
				vals, err := p.MultiRead(ids...)
				if err != nil {
					errs <- err
					return
				}
				for _, v := range vals[1:] {
					if v != vals[0] {
						mixed[r]++
						break
					}
				}
			}
		}(r, p)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return 0, err
	default:
	}

	total := 0
	for _, m := range mixed {
		total += m
	}
	mode := "atomic MAssign"
	if !atomic {
		mode = "separate writes"
	}
	res, err := s.Verify()
	if err != nil {
		return 0, err
	}
	fmt.Printf("%s: %d snapshots mixed; history m-linearizable: %v\n", mode, total, res.OK)
	if !res.OK {
		return 0, fmt.Errorf("history failed verification")
	}
	return total, nil
}
