// DCAS example: the Section 1 motivation made concrete. A lock-free
// doubly-linked deque needs to update two pointers atomically; with only
// single-object CAS this requires intricate multi-phase algorithms, while
// DCAS expresses it directly.
//
// Here several processes concurrently push and pop a two-ended counter
// pair (head, tail) plus a checksum cell, using DCAS to keep the pair
// consistent; auditors snapshot the pair and assert the invariant
// head - tail == items at every observation. The run is then verified
// m-linearizable.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"moc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		workers  = 3
		auditors = 2
		opsEach  = 15
	)
	s, err := moc.New(moc.Config{
		Procs:       workers + auditors,
		Objects:     []string{"head", "tail"},
		Consistency: moc.MLinearizable,
		MaxDelay:    time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	head, _ := s.Object("head")
	tail, _ := s.Object("tail")

	var wg sync.WaitGroup
	errs := make(chan error, workers+auditors)

	// Workers: push advances head, pop advances tail — each is a DCAS
	// over (head, tail) so that the pair always moves consistently:
	// a push is only allowed while head-tail < 10, a pop while head>tail.
	for w := 0; w < workers; w++ {
		p, err := s.Process(w)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(w int, p *moc.Process) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				vals, err := p.MultiRead(head, tail)
				if err != nil {
					errs <- err
					return
				}
				h, t := vals[0], vals[1]
				if (i+w)%2 == 0 && h-t < 10 { // push
					if _, err := p.DCAS(head, tail, h, t, h+1, t); err != nil {
						errs <- err
						return
					}
				} else if h > t { // pop
					if _, err := p.DCAS(head, tail, h, t, h, t+1); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w, p)
	}

	// Auditors: atomic snapshots must never observe head < tail.
	violations := make([]int, auditors)
	for a := 0; a < auditors; a++ {
		p, err := s.Process(workers + a)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(a int, p *moc.Process) {
			defer wg.Done()
			for i := 0; i < opsEach*2; i++ {
				vals, err := p.MultiRead(head, tail)
				if err != nil {
					errs <- err
					return
				}
				if vals[0] < vals[1] {
					violations[a]++
				}
			}
		}(a, p)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	for a, v := range violations {
		fmt.Printf("auditor %d: %d invariant violations (want 0)\n", a, v)
		if v != 0 {
			return fmt.Errorf("atomicity violated: auditor saw head < tail")
		}
	}

	res, err := s.Verify()
	if err != nil {
		return err
	}
	fmt.Printf("executed %d m-operations; m-linearizable: %v\n",
		res.History.Len()-1, res.OK)

	p0, _ := s.Process(0)
	final, err := p0.MultiRead(head, tail)
	if err != nil {
		return err
	}
	fmt.Printf("final state: head=%d tail=%d (items in deque: %d)\n",
		final[0], final[1], final[0]-final[1])
	return nil
}
