// Queue example: building a Herlihy-style concurrent object — a bounded
// FIFO queue — out of m-operations, the way the paper generalizes
// single-object concurrent objects (test&set, queues, stacks) to
// multi-object ones.
//
// The queue's representation spans many shared objects (head, tail and a
// slot array), and each queue operation is ONE m-operation that reads
// and writes several of them atomically. Producers and consumers hammer
// the queue concurrently; FIFO order per producer and exact delivery are
// asserted, and the whole run is verified m-linearizable.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"moc"
)

const (
	capacity  = 8
	producers = 2
	consumers = 2
	perProd   = 20
)

// queue wraps the store objects backing the FIFO.
type queue struct {
	head, tail moc.ObjectID // tail counts enqueues, head counts dequeues
	slots      []moc.ObjectID
	footprint  moc.ObjectSet
}

func newQueue(s *moc.Store) (*queue, error) {
	q := &queue{}
	var err error
	if q.head, err = s.Object("head"); err != nil {
		return nil, err
	}
	if q.tail, err = s.Object("tail"); err != nil {
		return nil, err
	}
	ids := []moc.ObjectID{q.head, q.tail}
	for i := 0; i < capacity; i++ {
		slot, err := s.Object(fmt.Sprintf("slot%d", i))
		if err != nil {
			return nil, err
		}
		q.slots = append(q.slots, slot)
		ids = append(ids, slot)
	}
	// The slot an operation touches depends on values it reads, so the
	// declared footprint is conservative: the whole representation —
	// exactly the paper's conservative update classification.
	q.footprint = moc.NewObjectSet(ids...)
	return q, nil
}

// enqueue atomically appends v; returns false when full.
func (q *queue) enqueue(p *moc.Process, v moc.Value) (bool, error) {
	res, err := p.Exec(moc.Func{
		Objects: q.footprint,
		Writes:  true,
		Body: func(txn moc.Txn) any {
			head, tail := txn.Read(q.head), txn.Read(q.tail)
			if tail-head >= capacity {
				return false
			}
			txn.Write(q.slots[tail%capacity], v)
			txn.Write(q.tail, tail+1)
			return true
		},
	}, moc.ExecOptions{})
	if err != nil {
		return false, err
	}
	return res.Value.(bool), nil
}

// dequeue atomically removes the oldest element; ok=false when empty.
func (q *queue) dequeue(p *moc.Process) (moc.Value, bool, error) {
	res, err := p.Exec(moc.Func{
		Objects: q.footprint,
		Writes:  true,
		Body: func(txn moc.Txn) any {
			head, tail := txn.Read(q.head), txn.Read(q.tail)
			if head == tail {
				return moc.Value(-1)
			}
			v := txn.Read(q.slots[head%capacity])
			txn.Write(q.head, head+1)
			return v
		},
	}, moc.ExecOptions{})
	if err != nil {
		return 0, false, err
	}
	v := res.Value.(moc.Value)
	if v < 0 {
		return 0, false, nil
	}
	return v, true, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	names := []string{"head", "tail"}
	for i := 0; i < capacity; i++ {
		names = append(names, fmt.Sprintf("slot%d", i))
	}
	s, err := moc.New(moc.Config{
		Procs:       producers + consumers,
		Objects:     names,
		Consistency: moc.MLinearizable,
		MaxDelay:    500 * time.Microsecond,
		Seed:        13,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	q, err := newQueue(s)
	if err != nil {
		return err
	}

	var wg sync.WaitGroup
	errs := make(chan error, producers+consumers)

	// Producers: values encode (producer, sequence) so consumers can
	// check per-producer FIFO order.
	for pr := 0; pr < producers; pr++ {
		proc, err := s.Process(pr)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(pr int, proc *moc.Process) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				v := moc.Value(pr*1_000_000 + i + 1)
				for {
					ok, err := q.enqueue(proc, v)
					if err != nil {
						errs <- err
						return
					}
					if ok {
						break
					}
				}
			}
		}(pr, proc)
	}

	// Consumers drain until they have collectively seen everything.
	var mu sync.Mutex
	var drained []moc.Value
	total := producers * perProd
	for c := 0; c < consumers; c++ {
		proc, err := s.Process(producers + c)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(proc *moc.Process) {
			defer wg.Done()
			for {
				mu.Lock()
				enough := len(drained) >= total
				mu.Unlock()
				if enough {
					return
				}
				v, ok, err := q.dequeue(proc)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					continue
				}
				mu.Lock()
				drained = append(drained, v)
				mu.Unlock()
			}
		}(proc)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	// Exactly-once delivery.
	if len(drained) != total {
		return fmt.Errorf("drained %d values, want %d", len(drained), total)
	}
	seen := make(map[moc.Value]bool, total)
	for _, v := range drained {
		if seen[v] {
			return fmt.Errorf("duplicate delivery of %d", v)
		}
		seen[v] = true
	}
	fmt.Printf("delivered %d values exactly once\n", total)

	// Verify m-linearizability, then check global FIFO semantics against
	// the *formal witness*: in the legal sequential order the checker
	// found, the sequence of dequeued values must equal the sequence of
	// enqueued values.
	res, err := s.Verify()
	if err != nil {
		return err
	}
	fmt.Printf("history of %d m-operations m-linearizable: %v\n",
		res.History.Len()-1, res.OK)
	if !res.OK {
		return fmt.Errorf("queue history failed verification")
	}
	var enqSeq, deqSeq []moc.Value
	h := res.History
	for _, id := range res.Witness {
		m := h.MOp(id)
		if m == nil || m.Proc < 0 {
			continue // the initial m-operation
		}
		if _, wroteTail := m.FinalWrite(q.tail); wroteTail {
			for _, slot := range q.slots {
				if v, ok := m.FinalWrite(slot); ok {
					enqSeq = append(enqSeq, v)
				}
			}
		}
		if _, wroteHead := m.FinalWrite(q.head); wroteHead {
			for _, slot := range q.slots {
				if v, ok := m.ExternalRead(slot); ok {
					deqSeq = append(deqSeq, v)
				}
			}
		}
	}
	if len(enqSeq) != total || len(deqSeq) != total {
		return fmt.Errorf("witness has %d enqueues and %d dequeues, want %d",
			len(enqSeq), len(deqSeq), total)
	}
	for i := range enqSeq {
		if enqSeq[i] != deqSeq[i] {
			return fmt.Errorf("FIFO violated at position %d: enqueued %d, dequeued %d",
				i, enqSeq[i], deqSeq[i])
		}
	}
	fmt.Println("global FIFO order confirmed against the sequential witness")
	return nil
}
