package moc_test

import (
	"encoding/json"
	"testing"

	"moc"
)

func TestFacadeQuickstart(t *testing.T) {
	s, err := moc.New(moc.Config{
		Procs:       3,
		Objects:     []string{"x", "y"},
		Consistency: moc.MLinearizable,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	p0, err := s.Process(0)
	if err != nil {
		t.Fatalf("Process: %v", err)
	}
	x, err := s.Object("x")
	if err != nil {
		t.Fatalf("Object: %v", err)
	}
	y, _ := s.Object("y")

	if err := p0.MAssign(map[moc.ObjectID]moc.Value{x: 1, y: 2}); err != nil {
		t.Fatalf("MAssign: %v", err)
	}
	ok, err := p0.DCAS(x, y, 1, 2, 10, 20)
	if err != nil || !ok {
		t.Fatalf("DCAS = %v, %v", ok, err)
	}

	p1, _ := s.Process(1)
	vals, err := p1.MultiRead(x, y)
	if err != nil {
		t.Fatalf("MultiRead: %v", err)
	}
	if vals[0] != 10 || vals[1] != 20 {
		t.Fatalf("MultiRead = %v", vals)
	}

	res, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.OK {
		t.Fatal("verification failed")
	}

	// The exact checkers are reachable through the facade too.
	lin, err := moc.CheckMLinearizable(res.History)
	if err != nil || !lin.Admissible {
		t.Fatalf("CheckMLinearizable = %+v, %v", lin, err)
	}
	sc, err := moc.CheckMSequential(res.History)
	if err != nil || !sc.Admissible {
		t.Fatalf("CheckMSequential = %+v, %v", sc, err)
	}
	norm, err := moc.CheckMNormal(res.History)
	if err != nil || !norm.Admissible {
		t.Fatalf("CheckMNormal = %+v, %v", norm, err)
	}
}

func TestFacadeCustomProcedure(t *testing.T) {
	s, err := moc.New(moc.Config{Procs: 1, Objects: []string{"a", "b"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	p, _ := s.Process(0)
	a, _ := s.Object("a")
	b, _ := s.Object("b")

	// A custom multi-object read-modify-write: move everything from a
	// to b.
	drain := moc.Func{
		Objects: moc.NewObjectSet(a, b),
		Writes:  true,
		Body: func(txn moc.Txn) any {
			v := txn.Read(a)
			txn.Write(a, 0)
			txn.Write(b, txn.Read(b)+v)
			return v
		},
	}
	if err := p.Write(a, 7); err != nil {
		t.Fatalf("Write: %v", err)
	}
	res, err := p.Exec(drain, moc.ExecOptions{})
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.Value.(moc.Value) != 7 {
		t.Fatalf("drained %v, want 7", res)
	}
	bv, _ := p.Read(b)
	if bv != 7 {
		t.Fatalf("b = %d, want 7", bv)
	}
}

func TestFacadeHistoryJSONRoundTrip(t *testing.T) {
	s, err := moc.New(moc.Config{Procs: 2, Objects: []string{"x"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	p, _ := s.Process(0)
	if err := p.Write(0, 5); err != nil {
		t.Fatalf("Write: %v", err)
	}
	h, err := s.History()
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := moc.DecodeHistory(data)
	if err != nil {
		t.Fatalf("DecodeHistory: %v", err)
	}
	if !h.EquivalentTo(back) {
		t.Fatal("round trip broke equivalence")
	}
}

func TestFacadeLockingAndCausalModes(t *testing.T) {
	for _, cons := range []moc.Consistency{moc.MLinearizableLocking, moc.MCausal} {
		s, err := moc.New(moc.Config{Procs: 2, Objects: []string{"x"}, Consistency: cons})
		if err != nil {
			t.Fatalf("%v: New: %v", cons, err)
		}
		p, _ := s.Process(0)
		if err := p.Write(0, 3); err != nil {
			t.Fatalf("%v: Write: %v", cons, err)
		}
		v, err := p.Read(0)
		if err != nil || v != 3 {
			t.Fatalf("%v: Read = %d, %v", cons, v, err)
		}
		res, err := s.Verify()
		if err != nil || !res.OK {
			t.Fatalf("%v: Verify = %+v, %v", cons, res, err)
		}
		if cons == moc.MCausal {
			causal, err := moc.CheckMCausal(res.History)
			if err != nil || !causal.Consistent {
				t.Fatalf("CheckMCausal = %+v, %v", causal, err)
			}
		}
		s.Close()
	}
}

func TestFacadeTokenBroadcast(t *testing.T) {
	s, err := moc.New(moc.Config{
		Procs: 3, Objects: []string{"x"},
		Consistency: moc.MSequential, Broadcast: moc.TokenBroadcast,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	p, _ := s.Process(1)
	if err := p.Write(0, 9); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v, err := p.Read(0)
	if err != nil || v != 9 {
		t.Fatalf("Read = %d, %v", v, err)
	}
	res, err := s.Verify()
	if err != nil || !res.OK {
		t.Fatalf("Verify = %+v, %v", res, err)
	}
}
