// Command moccheck reads an execution history (JSON, the format emitted
// by mocsim -json or history.MarshalJSON) and decides the consistency
// conditions of Mittal & Garg (1998) for it with the exact (NP-hard)
// decider.
//
// Usage:
//
//	moccheck [-condition mlin|msc|mnormal|mcausal|mixed] [-budget N] history.json
//	mocsim -json ... | moccheck -condition mlin -
//	moccheck -stream [-lenient] [-window N] trace0.jsonl [trace1.jsonl ...]
//
// The "mixed" condition is for histories whose queries carry
// per-request consistency levels (mocsim -level, mocload -level): the
// full history must be m-sequentially consistent and its restriction to
// updates plus strong-level queries must be m-linearizable.
//
// -stream takes mocd JSON-lines trace files instead of a history and
// replays their merged records, in response order, through the same
// online path mocmon runs (the Section 5 monitor plus the incremental
// Theorem 7 checker) — offline and live verification share one code
// path, and the NP-hard decider is only needed for adversarial
// counterexample hunts. -lenient skips and counts corrupt interior
// lines (kill-torn traces); -window bounds retained state as mocmon
// would.
//
// Exit status:
//
//	0  the history satisfies the condition
//	1  the history violates the condition (a counterexample summary —
//	   the per-process m-operations no interleaving of which is legal —
//	   is printed to stdout)
//	2  usage, flag, I/O or parse error (reported on stderr)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"moc/internal/checker"
	"moc/internal/core"
	"moc/internal/history"
	"moc/internal/monitor"
	"moc/internal/shard"
	"moc/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the whole program with its streams and exit code explicit, so
// tests can drive every exit path in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("moccheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		condition = fs.String("condition", "mlin", `condition: "msc", "mlin", "mnormal", "mcausal" or "mixed" (per-request levels)`)
		budget    = fs.Int("budget", 0, "search node budget (0 = unlimited)")
		stream    = fs.Bool("stream", false, "treat the arguments as mocd JSON-lines trace files and replay them through the online checker (mocmon's path)")
		lenient   = fs.Bool("lenient", false, "with -stream, skip and count corrupt interior trace lines instead of aborting")
		window    = fs.Int("window", 0, "with -stream, garbage-collect checker state outside a window of this many records (0 = retain everything)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var code int
	var err error
	if *stream {
		code, err = streamCheck(fs.Args(), *lenient, *window, stdout)
	} else {
		code, err = check(fs, *condition, *budget, stdin, stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, "moccheck:", err)
	}
	return code
}

// streamCheck replays merged trace files through verify.Pipeline — the
// exact path mocmon feeds — so a trace already on disk gets the same
// verdict the live service would have produced.
func streamCheck(paths []string, lenient bool, window int, stdout io.Writer) (int, error) {
	if len(paths) == 0 {
		return 2, fmt.Errorf("usage: moccheck -stream [-lenient] [-window N] <trace.jsonl ...>")
	}
	var traces []core.Trace
	skipped := 0
	for _, path := range paths {
		if lenient {
			tr, n, err := core.ReadTraceFileLenient(path)
			if err != nil {
				return 2, err
			}
			skipped += n
			traces = append(traces, tr)
		} else {
			tr, err := core.ReadTraceFile(path)
			if err != nil {
				return 2, err
			}
			traces = append(traces, tr)
		}
	}
	recs, reg, cons, err := core.MergeTraces(traces...)
	if err != nil {
		return 2, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Resp < recs[j].Resp })

	level := monitor.MSCLevel
	if cons == core.MLinearizable {
		level = monitor.MLinLevel
	}
	numShards := 1
	if spec := traces[0].Shards; spec != "" {
		m, err := shard.ParseSpec(spec)
		if err != nil {
			return 2, err
		}
		numShards = m.Shards()
	}
	pipe := verify.NewPipeline(verify.PipelineConfig{
		NumObjects: reg.Len(),
		Level:      level,
		Window:     window,
		Shards:     numShards,
	})
	for _, rec := range recs {
		pipe.Observe(rec)
	}
	vs := pipe.Finish()
	st := pipe.Snapshot()

	fmt.Fprintf(stdout, "records: %d from %d trace file(s)\n", len(recs), len(paths))
	if lenient {
		fmt.Fprintf(stdout, "corrupt lines skipped: %d\n", skipped)
	}
	fmt.Fprintf(stdout, "condition: %s (online obligations at the %s level)\n", cons, level)
	if spec := traces[0].Shards; spec != "" {
		fmt.Fprintf(stdout, "shards: %s\n", spec)
	}
	fmt.Fprintf(stdout, "checker: %d released, %d compactions, %d dangling\n",
		st.Released, st.Compactions, st.Monitor.DanglingReads+st.Checker.DanglingReads)
	if len(vs) == 0 {
		fmt.Fprintln(stdout, "RESULT: no violations")
		return 0, nil
	}
	fmt.Fprintf(stdout, "RESULT: %d violation(s)\n", len(vs))
	for _, v := range vs {
		fmt.Fprintf(stdout, "  %s\n", v)
	}
	return 1, nil
}

func check(fs *flag.FlagSet, condition string, budget int, stdin io.Reader, stdout io.Writer) (int, error) {
	if fs.NArg() != 1 {
		return 2, fmt.Errorf("usage: moccheck [-condition mlin|msc|mnormal|mcausal|mixed] <history.json | ->")
	}

	var data []byte
	var err error
	if fs.Arg(0) == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		return 2, err
	}

	h, err := history.DecodeJSON(data)
	if err != nil {
		return 2, err
	}

	if condition == "mixed" {
		res, err := checker.MixedLevels(h)
		if err != nil {
			return 2, err
		}
		fmt.Fprintf(stdout, "m-operations: %d (plus the initial one)\n", h.Len()-1)
		fmt.Fprintln(stdout, "condition: mixed (m-SC overall, m-lin on updates + strong-level queries)")
		if !res.Full.Admissible {
			fmt.Fprintln(stdout, "RESULT: violated (the full history is not m-sequentially consistent)")
			counterexample(stdout, h)
			return 1, nil
		}
		fmt.Fprintf(stdout, "strong subset: %d m-operations\n", res.StrongOps)
		if res.Consistent {
			fmt.Fprintf(stdout, "RESULT: satisfied\nstrong witness: %s\n", res.Strong.Witness)
			return 0, nil
		}
		fmt.Fprintln(stdout, "RESULT: violated (the strong subset is not m-linearizable)")
		counterexample(stdout, h)
		return 1, nil
	}

	if condition == "mcausal" {
		res, err := checker.MCausallyConsistent(h)
		if err != nil {
			return 2, err
		}
		fmt.Fprintf(stdout, "m-operations: %d (plus the initial one)\n", h.Len()-1)
		fmt.Fprintln(stdout, "condition: mcausal")
		if res.Consistent {
			fmt.Fprintln(stdout, "RESULT: satisfied (every process view has a legal serialization)")
			return 0, nil
		}
		fmt.Fprintf(stdout, "RESULT: violated (process P%d's view has no legal serialization)\n", res.BadProc)
		counterexample(stdout, h)
		return 1, nil
	}

	var base history.BaseRelation
	switch condition {
	case "msc":
		base = history.MSequentialBase
	case "mlin":
		base = history.MLinearizableBase
	case "mnormal":
		base = history.MNormalBase
	default:
		return 2, fmt.Errorf("unknown condition %q", condition)
	}

	res, err := checker.Decide(h, base, &checker.Options{MaxNodes: budget})
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(stdout, "m-operations: %d (plus the initial one)\n", h.Len()-1)
	fmt.Fprintf(stdout, "condition: %s\n", condition)
	fmt.Fprintf(stdout, "search nodes: %d (memo hits %d)\n", res.Stats.Nodes, res.Stats.MemoHits)
	if res.Admissible {
		fmt.Fprintf(stdout, "RESULT: satisfied\nwitness: %s\n", res.Witness)
		return 0, nil
	}
	fmt.Fprintln(stdout, "RESULT: violated (no legal sequential extension exists)")
	counterexample(stdout, h)
	return 1, nil
}

// counterexample prints the violating history itself, per process: the
// exact decider exhausted every interleaving consistent with the base
// relation, so the whole history is the counterexample. Capped per
// process to stay readable on large inputs.
func counterexample(w io.Writer, h *history.History) {
	const perProc = 8
	fmt.Fprintln(w, "counterexample (no interleaving of these per-process m-operations is legal):")
	for _, p := range h.Procs() {
		ids := h.ProcOps(p)
		var parts []string
		for _, id := range ids {
			if id == history.InitID {
				continue
			}
			parts = append(parts, h.MOp(id).String())
			if len(parts) == perProc && len(ids) > perProc {
				parts = append(parts, fmt.Sprintf("... (%d more)", len(ids)-perProc))
				break
			}
		}
		if len(parts) == 0 {
			continue
		}
		fmt.Fprintf(w, "  P%d: %s\n", p, strings.Join(parts, " ; "))
	}
}
