// Command moccheck reads an execution history (JSON, the format emitted
// by mocsim -json or history.MarshalJSON) and decides the consistency
// conditions of Mittal & Garg (1998) for it with the exact (NP-hard)
// decider.
//
// Usage:
//
//	moccheck [-condition mlin|msc|mnormal|mcausal|mixed] [-budget N] history.json
//	mocsim -json ... | moccheck -condition mlin -
//
// The "mixed" condition is for histories whose queries carry
// per-request consistency levels (mocsim -level, mocload -level): the
// full history must be m-sequentially consistent and its restriction to
// updates plus strong-level queries must be m-linearizable.
//
// Exit status:
//
//	0  the history satisfies the condition
//	1  the history violates the condition (a counterexample summary —
//	   the per-process m-operations no interleaving of which is legal —
//	   is printed to stdout)
//	2  usage, flag, I/O or parse error (reported on stderr)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"moc/internal/checker"
	"moc/internal/history"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the whole program with its streams and exit code explicit, so
// tests can drive every exit path in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("moccheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		condition = fs.String("condition", "mlin", `condition: "msc", "mlin", "mnormal", "mcausal" or "mixed" (per-request levels)`)
		budget    = fs.Int("budget", 0, "search node budget (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	code, err := check(fs, *condition, *budget, stdin, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "moccheck:", err)
	}
	return code
}

func check(fs *flag.FlagSet, condition string, budget int, stdin io.Reader, stdout io.Writer) (int, error) {
	if fs.NArg() != 1 {
		return 2, fmt.Errorf("usage: moccheck [-condition mlin|msc|mnormal|mcausal|mixed] <history.json | ->")
	}

	var data []byte
	var err error
	if fs.Arg(0) == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		return 2, err
	}

	h, err := history.DecodeJSON(data)
	if err != nil {
		return 2, err
	}

	if condition == "mixed" {
		res, err := checker.MixedLevels(h)
		if err != nil {
			return 2, err
		}
		fmt.Fprintf(stdout, "m-operations: %d (plus the initial one)\n", h.Len()-1)
		fmt.Fprintln(stdout, "condition: mixed (m-SC overall, m-lin on updates + strong-level queries)")
		if !res.Full.Admissible {
			fmt.Fprintln(stdout, "RESULT: violated (the full history is not m-sequentially consistent)")
			counterexample(stdout, h)
			return 1, nil
		}
		fmt.Fprintf(stdout, "strong subset: %d m-operations\n", res.StrongOps)
		if res.Consistent {
			fmt.Fprintf(stdout, "RESULT: satisfied\nstrong witness: %s\n", res.Strong.Witness)
			return 0, nil
		}
		fmt.Fprintln(stdout, "RESULT: violated (the strong subset is not m-linearizable)")
		counterexample(stdout, h)
		return 1, nil
	}

	if condition == "mcausal" {
		res, err := checker.MCausallyConsistent(h)
		if err != nil {
			return 2, err
		}
		fmt.Fprintf(stdout, "m-operations: %d (plus the initial one)\n", h.Len()-1)
		fmt.Fprintln(stdout, "condition: mcausal")
		if res.Consistent {
			fmt.Fprintln(stdout, "RESULT: satisfied (every process view has a legal serialization)")
			return 0, nil
		}
		fmt.Fprintf(stdout, "RESULT: violated (process P%d's view has no legal serialization)\n", res.BadProc)
		counterexample(stdout, h)
		return 1, nil
	}

	var base history.BaseRelation
	switch condition {
	case "msc":
		base = history.MSequentialBase
	case "mlin":
		base = history.MLinearizableBase
	case "mnormal":
		base = history.MNormalBase
	default:
		return 2, fmt.Errorf("unknown condition %q", condition)
	}

	res, err := checker.Decide(h, base, &checker.Options{MaxNodes: budget})
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(stdout, "m-operations: %d (plus the initial one)\n", h.Len()-1)
	fmt.Fprintf(stdout, "condition: %s\n", condition)
	fmt.Fprintf(stdout, "search nodes: %d (memo hits %d)\n", res.Stats.Nodes, res.Stats.MemoHits)
	if res.Admissible {
		fmt.Fprintf(stdout, "RESULT: satisfied\nwitness: %s\n", res.Witness)
		return 0, nil
	}
	fmt.Fprintln(stdout, "RESULT: violated (no legal sequential extension exists)")
	counterexample(stdout, h)
	return 1, nil
}

// counterexample prints the violating history itself, per process: the
// exact decider exhausted every interleaving consistent with the base
// relation, so the whole history is the counterexample. Capped per
// process to stay readable on large inputs.
func counterexample(w io.Writer, h *history.History) {
	const perProc = 8
	fmt.Fprintln(w, "counterexample (no interleaving of these per-process m-operations is legal):")
	for _, p := range h.Procs() {
		ids := h.ProcOps(p)
		var parts []string
		for _, id := range ids {
			if id == history.InitID {
				continue
			}
			parts = append(parts, h.MOp(id).String())
			if len(parts) == perProc && len(ids) > perProc {
				parts = append(parts, fmt.Sprintf("... (%d more)", len(ids)-perProc))
				break
			}
		}
		if len(parts) == 0 {
			continue
		}
		fmt.Fprintf(w, "  P%d: %s\n", p, strings.Join(parts, " ; "))
	}
}
