// Command moccheck reads an execution history (JSON, the format emitted
// by mocsim -json or history.MarshalJSON) and decides the consistency
// conditions of Mittal & Garg (1998) for it with the exact (NP-hard)
// decider.
//
// Usage:
//
//	moccheck [-condition mlin|msc|mnormal] [-budget N] history.json
//	mocsim -json ... | moccheck -condition mlin -
//
// Exit status: 0 if the history satisfies the condition, 1 if not,
// 2 on errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"moc/internal/checker"
	"moc/internal/history"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "moccheck:", err)
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		condition = flag.String("condition", "mlin", `condition: "msc", "mlin", "mnormal" or "mcausal"`)
		budget    = flag.Int("budget", 0, "search node budget (0 = unlimited)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return 2, fmt.Errorf("usage: moccheck [-condition mlin|msc|mnormal] <history.json | ->")
	}

	var data []byte
	var err error
	if flag.Arg(0) == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		return 2, err
	}

	h, err := history.DecodeJSON(data)
	if err != nil {
		return 2, err
	}

	if *condition == "mcausal" {
		res, err := checker.MCausallyConsistent(h)
		if err != nil {
			return 2, err
		}
		fmt.Printf("m-operations: %d (plus the initial one)\n", h.Len()-1)
		fmt.Println("condition: mcausal")
		if res.Consistent {
			fmt.Println("RESULT: satisfied (every process view has a legal serialization)")
			return 0, nil
		}
		fmt.Printf("RESULT: violated (process P%d's view has no legal serialization)\n", res.BadProc)
		return 1, nil
	}

	var base history.BaseRelation
	switch *condition {
	case "msc":
		base = history.MSequentialBase
	case "mlin":
		base = history.MLinearizableBase
	case "mnormal":
		base = history.MNormalBase
	default:
		return 2, fmt.Errorf("unknown condition %q", *condition)
	}

	res, err := checker.Decide(h, base, &checker.Options{MaxNodes: *budget})
	if err != nil {
		return 2, err
	}
	fmt.Printf("m-operations: %d (plus the initial one)\n", h.Len()-1)
	fmt.Printf("condition: %s\n", *condition)
	fmt.Printf("search nodes: %d (memo hits %d)\n", res.Stats.Nodes, res.Stats.MemoHits)
	if res.Admissible {
		fmt.Printf("RESULT: satisfied\nwitness: %s\n", res.Witness)
		return 0, nil
	}
	fmt.Println("RESULT: violated (no legal sequential extension exists)")
	return 1, nil
}
