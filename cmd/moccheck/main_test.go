package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"moc/internal/history"
	"moc/internal/object"
)

// writeHistory marshals h to a temp file and returns its path.
func writeHistory(t *testing.T, h *history.History) string {
	t.Helper()
	data, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "history.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// satisfiedHistory is m-linearizable: a write completes, then a read
// observes it.
func satisfiedHistory(t *testing.T) *history.History {
	t.Helper()
	reg, err := object.NewRegistry([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	b := history.NewBuilder(reg)
	b.Add(0, 0, 10, history.W(0, 1))
	b.Add(1, 20, 30, history.R(0, 1))
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// violatedHistory is not m-linearizable: after w(x)2 completes in real
// time, a later read still observes the overwritten value 1.
func violatedHistory(t *testing.T) *history.History {
	t.Helper()
	reg, err := object.NewRegistry([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	b := history.NewBuilder(reg)
	b.Add(0, 0, 10, history.W(0, 1))
	b.Add(0, 20, 30, history.W(0, 2))
	b.Add(1, 40, 50, history.R(0, 1))
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func runCheck(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(""), &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitSatisfied(t *testing.T) {
	path := writeHistory(t, satisfiedHistory(t))
	code, out, _ := runCheck(t, "-condition", "mlin", path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: satisfied") || !strings.Contains(out, "witness:") {
		t.Errorf("missing satisfied verdict/witness:\n%s", out)
	}
}

func TestExitViolated(t *testing.T) {
	path := writeHistory(t, violatedHistory(t))
	code, out, _ := runCheck(t, "-condition", "mlin", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: violated") {
		t.Errorf("missing violated verdict:\n%s", out)
	}
	if !strings.Contains(out, "counterexample") || !strings.Contains(out, "P0:") || !strings.Contains(out, "P1:") {
		t.Errorf("missing counterexample summary:\n%s", out)
	}
	// The same history is m-sequentially consistent (real time ignored).
	code, out, _ = runCheck(t, "-condition", "msc", path)
	if code != 0 {
		t.Fatalf("msc exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestExitUsageAndParseErrors(t *testing.T) {
	good := writeHistory(t, satisfiedHistory(t))
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"two files", []string{good, good}},
		{"unknown flag", []string{"-nope", good}},
		{"unknown condition", []string{"-condition", "bogus", good}},
		{"missing file", []string{filepath.Join(t.TempDir(), "absent.json")}},
		{"parse error", []string{bad}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := runCheck(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2; stdout:\n%s\nstderr:\n%s", code, out, errOut)
			}
			if errOut == "" {
				t.Error("expected a diagnostic on stderr")
			}
		})
	}
}

func TestStdinDash(t *testing.T) {
	data, err := satisfiedHistory(t).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-condition", "msc", "-"}, bytes.NewReader(data), &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errb.String())
	}
}
