package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"moc/internal/core"
	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/timestamp"
)

// writeHistory marshals h to a temp file and returns its path.
func writeHistory(t *testing.T, h *history.History) string {
	t.Helper()
	data, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "history.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// satisfiedHistory is m-linearizable: a write completes, then a read
// observes it.
func satisfiedHistory(t *testing.T) *history.History {
	t.Helper()
	reg, err := object.NewRegistry([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	b := history.NewBuilder(reg)
	b.Add(0, 0, 10, history.W(0, 1))
	b.Add(1, 20, 30, history.R(0, 1))
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// violatedHistory is not m-linearizable: after w(x)2 completes in real
// time, a later read still observes the overwritten value 1.
func violatedHistory(t *testing.T) *history.History {
	t.Helper()
	reg, err := object.NewRegistry([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	b := history.NewBuilder(reg)
	b.Add(0, 0, 10, history.W(0, 1))
	b.Add(0, 20, 30, history.W(0, 2))
	b.Add(1, 40, 50, history.R(0, 1))
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func runCheck(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(""), &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitSatisfied(t *testing.T) {
	path := writeHistory(t, satisfiedHistory(t))
	code, out, _ := runCheck(t, "-condition", "mlin", path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: satisfied") || !strings.Contains(out, "witness:") {
		t.Errorf("missing satisfied verdict/witness:\n%s", out)
	}
}

func TestExitViolated(t *testing.T) {
	path := writeHistory(t, violatedHistory(t))
	code, out, _ := runCheck(t, "-condition", "mlin", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: violated") {
		t.Errorf("missing violated verdict:\n%s", out)
	}
	if !strings.Contains(out, "counterexample") || !strings.Contains(out, "P0:") || !strings.Contains(out, "P1:") {
		t.Errorf("missing counterexample summary:\n%s", out)
	}
	// The same history is m-sequentially consistent (real time ignored).
	code, out, _ = runCheck(t, "-condition", "msc", path)
	if code != 0 {
		t.Fatalf("msc exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestExitUsageAndParseErrors(t *testing.T) {
	good := writeHistory(t, satisfiedHistory(t))
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"two files", []string{good, good}},
		{"unknown flag", []string{"-nope", good}},
		{"unknown condition", []string{"-condition", "bogus", good}},
		{"missing file", []string{filepath.Join(t.TempDir(), "absent.json")}},
		{"parse error", []string{bad}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := runCheck(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2; stdout:\n%s\nstderr:\n%s", code, out, errOut)
			}
			if errOut == "" {
				t.Error("expected a diagnostic on stderr")
			}
		})
	}
}

func TestStdinDash(t *testing.T) {
	data, err := satisfiedHistory(t).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-condition", "msc", "-"}, bytes.NewReader(data), &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errb.String())
	}
}

// writeTrace dumps records to a mocd-format JSON-lines trace file.
func writeTrace(t *testing.T, dir string, node int, recs []mop.Record) string {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("trace%d.jsonl", node))
	w, err := core.NewTraceFileWriter(path, node, core.MLinearizable, []string{"x"}, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		w.Append(rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStreamMode drives -stream over trace files through every verdict:
// a clean run exits 0, a stale read (a genuine Lemma 16 violation) is
// flagged with exit 1, corrupt interior lines abort without -lenient
// and are skip-counted with it.
func TestStreamMode(t *testing.T) {
	write := mop.Record{
		Proc: 0, Update: true, Seq: 0,
		Ops:     []history.Op{history.W(0, 7)},
		TSStart: timestamp.TS{0}, TSEnd: timestamp.TS{1},
		Footprint: object.FullSet(1),
		Inv:       10, Resp: 20,
	}
	freshRead := mop.Record{
		Proc: 1, Seq: -1,
		Ops:     []history.Op{history.R(0, 7)},
		TSStart: timestamp.TS{1}, TSEnd: timestamp.TS{1},
		Footprint: object.FullSet(1),
		Inv:       40, Resp: 50,
	}
	staleRead := mop.Record{
		Proc: 1, Seq: -1,
		Ops:     []history.Op{history.R(0, 0)},
		TSStart: timestamp.TS{0}, TSEnd: timestamp.TS{0},
		Footprint: object.FullSet(1),
		Inv:       40, Resp: 50,
	}

	dir := t.TempDir()
	t0 := writeTrace(t, dir, 0, []mop.Record{write})
	t1 := writeTrace(t, dir, 1, []mop.Record{freshRead})
	code, out, _ := runCheck(t, "-stream", t0, t1)
	if code != 0 || !strings.Contains(out, "no violations") {
		t.Fatalf("clean stream: code %d, out:\n%s", code, out)
	}

	t1stale := writeTrace(t, filepath.Join(dir), 2, []mop.Record{staleRead})
	code, out, _ = runCheck(t, "-stream", t0, t1stale)
	if code != 1 || !strings.Contains(out, "Lemma16") {
		t.Fatalf("stale stream: code %d, out:\n%s", code, out)
	}

	// Corrupt an interior line: garbage between header and record.
	data, err := os.ReadFile(t0)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(data), "\n", 2)
	torn := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(torn, []byte(lines[0]+"\nGARBAGE\n"+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCheck(t, "-stream", torn, t1)
	if code != 2 {
		t.Fatalf("torn trace accepted without -lenient: code %d, stderr %s", code, errOut)
	}
	code, out, _ = runCheck(t, "-stream", "-lenient", torn, t1)
	if code != 0 || !strings.Contains(out, "corrupt lines skipped: 1") {
		t.Fatalf("lenient torn stream: code %d, out:\n%s", code, out)
	}
}
