// Command mocmon is the live verification service: mocd daemons stream
// every completed m-operation to it (mocd -monitor), and it checks the
// merged global stream online — the Section 5 proof obligations plus an
// incremental Theorem 7 cycle check — with windowed garbage collection
// so memory stays bounded however long the cluster runs.
//
// A 3-node cluster with live verification:
//
//	mocmon -listen 127.0.0.1:7300 -rpc 127.0.0.1:7301 &
//	mocd -id 0 ... -monitor 127.0.0.1:7300 &
//	mocd -id 1 ... -monitor 127.0.0.1:7300 &
//	mocd -id 2 ... -monitor 127.0.0.1:7300 &
//
// The status RPC is JSON lines, like mocrpc:
//
//	{"op":"status"}            → verified count, violation count
//	{"op":"violations","limit":10} → the violations themselves
//	{"op":"stats"}             → merge/checker/GC internals
//	{"op":"shutdown"}          → stop the service
//
// Store parameters (object registry, consistency condition) are learned
// from the first stream's Hello; every stream must announce the same
// ones. The service holds no durable state: restarting it restarts
// verification from the next record each daemon still retains.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"moc/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mocmon:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen = flag.String("listen", "", "record stream listen address (required; mocd -monitor points here)")
		rpc    = flag.String("rpc", "", "JSON-lines status RPC listen address (required)")
		window = flag.Int("window", 1<<20, "GC window in verified records: the checker retains about this many before retiring the closed prefix (0 = retain everything)")
		slack  = flag.Duration("slack", 25*time.Millisecond, "merge watermark slack: the largest per-daemon completion-order inversion absorbed without a feed-order report")
		report = flag.Duration("report", 10*time.Second, "print a progress line this often (0 = quiet)")
	)
	flag.Parse()
	if *listen == "" || *rpc == "" {
		return fmt.Errorf("-listen and -rpc are required")
	}

	streamLn, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	rpcLn, err := net.Listen("tcp", *rpc)
	if err != nil {
		streamLn.Close()
		return err
	}

	done := make(chan struct{})
	var once sync.Once
	svc := verify.NewService(streamLn, rpcLn, verify.ServiceConfig{
		Window:  *window,
		SlackNs: slack.Nanoseconds(),
	}, func() { once.Do(func() { close(done) }) })
	fmt.Printf("mocmon: up; streams %s, rpc %s, window %d records, slack %v\n",
		streamLn.Addr(), rpcLn.Addr(), *window, *slack)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *report > 0 {
		ticker = time.NewTicker(*report)
		tick = ticker.C
		defer ticker.Stop()
	}
loop:
	for {
		select {
		case <-done:
			break loop
		case sig := <-sigs:
			fmt.Printf("mocmon: %v\n", sig)
			break loop
		case <-tick:
			if pipe := svc.Pipeline(); pipe != nil {
				st := pipe.Snapshot()
				fmt.Printf("mocmon: verified %d records, %d violations, %d buffered, %d live graph nodes (high water %d), heap high water %.1f MB\n",
					st.Released, st.Violations, st.Buffered, st.Checker.LiveNodes, st.Checker.HighWater,
					float64(st.HeapHW)/(1<<20))
			}
		}
	}
	svc.Close()

	if pipe := svc.Pipeline(); pipe != nil {
		vs := pipe.Finish()
		st := pipe.Snapshot()
		fmt.Printf("mocmon: down; verified %d records, %d violations, heap high water %.1f MB\n",
			st.Released, len(vs), float64(st.HeapHW)/(1<<20))
		for i, v := range vs {
			if i == 20 {
				fmt.Printf("mocmon:   ... %d more\n", len(vs)-20)
				break
			}
			fmt.Printf("mocmon:   %s\n", v)
		}
		if len(vs) > 0 {
			return fmt.Errorf("%d violations", len(vs))
		}
	} else {
		fmt.Println("mocmon: down; no streams ever connected")
	}
	return nil
}
