// Command mocload drives a mocd cluster with a seeded closed-loop
// workload: -inflight clients per daemon (each on its own connection,
// since one RPC connection serializes its requests) issue that daemon's
// planned m-operations back-to-back (queries as multireads, updates as
// multi-assignments — the same mixes internal/workload plans for the
// in-process benchmarks), then reports per-class latency percentiles
// and overall throughput. Pair -inflight with the daemons' -inflight
// pipelining (and their -batch/-batchwindow coalescing) to saturate the
// batched update path. With -out it additionally dumps every
// daemon's recorded trace, merges them into one execution history, and
// writes it as moccheck-compatible JSON — so a real multi-process run
// can be verified by the exact checkers:
//
//	mocload -nodes 127.0.0.1:7200,127.0.0.1:7201,127.0.0.1:7202 \
//	        -ops 20 -readfrac 0.5 -out history.json
//	moccheck -condition mlin history.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"moc/internal/core"
	"moc/internal/mocrpc"
	"moc/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mocload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nodes    = flag.String("nodes", "", "comma-separated daemon client RPC addresses (required)")
		objects  = flag.String("objects", "x,y,z", "shared object names; must match the daemons' -objects")
		ops      = flag.Int("ops", 20, "m-operations per daemon")
		readFrac = flag.Float64("readfrac", 0.5, "fraction of queries in the mix")
		span     = flag.Int("span", 2, "objects touched per m-operation")
		seed     = flag.Int64("seed", 42, "workload plan seed")
		out      = flag.String("out", "", "write the merged execution history (moccheck JSON) here")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-daemon dial timeout")
		inflight = flag.Int("inflight", 1, "concurrent closed-loop clients per daemon, each on its own connection (pair with the daemons' -inflight so the pipelined lanes are actually fed)")
	)
	flag.Parse()
	if *inflight < 1 {
		return fmt.Errorf("-inflight must be at least 1, got %d", *inflight)
	}

	addrs := splitList(*nodes)
	if len(addrs) == 0 {
		return fmt.Errorf("-nodes is required")
	}
	names := splitList(*objects)
	if len(names) == 0 {
		return fmt.Errorf("-objects is required")
	}

	// One RPC connection serializes its requests, so pipelined load needs
	// -inflight connections per daemon: each carries one closed loop.
	clients := make([][]*mocrpc.Client, len(addrs))
	for i, addr := range addrs {
		clients[i] = make([]*mocrpc.Client, *inflight)
		for k := range clients[i] {
			c, err := mocrpc.Dial(addr, *timeout)
			if err != nil {
				return err
			}
			defer c.Close()
			clients[i][k] = c
		}
		if err := clients[i][0].Ping(); err != nil {
			return fmt.Errorf("node %d (%s): %w", i, addr, err)
		}
	}

	mix := workload.Mix{ReadFrac: *readFrac, Span: *span, OpsPerProc: *ops}
	plans := mix.Plan(len(addrs), len(names), rand.New(rand.NewSource(*seed)))

	var (
		mu             sync.Mutex
		queryNs, updNs []int64
		wg             sync.WaitGroup
		errs           = make(chan error, len(addrs)*(*inflight))
		start          = time.Now()
	)
	for i := range clients {
		// Slice node i's plan across its closed loops: worker k issues
		// ops k, k+inflight, k+2*inflight, ...
		for k, c := range clients[i] {
			var share []workload.Op
			for j := k; j < len(plans[i]); j += *inflight {
				share = append(share, plans[i][j])
			}
			wg.Add(1)
			go func(c *mocrpc.Client, plan []workload.Op) {
				defer wg.Done()
				for _, op := range plan {
					objs := make([]string, len(op.Objs))
					for j, x := range op.Objs {
						objs[j] = names[x]
					}
					var vals []int64
					kind := "multiread"
					if !op.Query {
						kind = "massign"
						vals = make([]int64, len(op.Vals))
						for j, v := range op.Vals {
							vals[j] = int64(v)
						}
					}
					t0 := time.Now()
					if _, err := c.Exec(kind, objs, vals); err != nil {
						errs <- err
						return
					}
					ns := time.Since(t0).Nanoseconds()
					mu.Lock()
					if op.Query {
						queryNs = append(queryNs, ns)
					} else {
						updNs = append(updNs, ns)
					}
					mu.Unlock()
				}
			}(c, share)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}

	total := len(queryNs) + len(updNs)
	fmt.Printf("%d m-operations across %d nodes in %v (%.0f ops/s)\n",
		total, len(addrs), elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	report("query ", queryNs)
	report("update", updNs)

	if *out == "" {
		return nil
	}

	// Merge every daemon's trace into one history and write it in the
	// moccheck interchange format.
	traces := make([]core.Trace, len(clients))
	for i, node := range clients {
		tr, err := node[0].Dump()
		if err != nil {
			return fmt.Errorf("node %d dump: %w", i, err)
		}
		traces[i] = tr
	}
	recs, reg, cons, err := core.MergeTraces(traces...)
	if err != nil {
		return err
	}
	h, _, err := core.BuildHistory(reg, recs)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("merged history: %d m-operations (%s) -> %s\n", total, cons, *out)
	return nil
}

// report prints count, mean and latency percentiles for one op class.
func report(label string, ns []int64) {
	if len(ns) == 0 {
		fmt.Printf("%s: none\n", label)
		return
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	pct := func(q float64) time.Duration {
		idx := int(q*float64(len(sorted))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return time.Duration(sorted[idx])
	}
	fmt.Printf("%s: n=%d mean=%v p50=%v p90=%v p99=%v\n",
		label, len(sorted),
		time.Duration(sum/int64(len(sorted))).Round(time.Microsecond),
		pct(0.50).Round(time.Microsecond),
		pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond))
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
