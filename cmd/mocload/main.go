// Command mocload drives a mocd cluster with a seeded workload in one
// of two modes:
//
//   - Closed loop (default): -inflight clients per daemon (each on its
//     own connection, since one RPC connection serializes its requests)
//     issue that daemon's planned m-operations back-to-back (queries as
//     multireads, updates as multi-assignments — the same mixes
//     internal/workload plans for the in-process benchmarks). Latency
//     is measured per request; throughput is whatever the system
//     sustains.
//
//   - Open loop (-rate R): operations are issued on a fixed schedule of
//     R per second per daemon for -duration, regardless of how fast
//     responses come back. Latency is measured from each operation's
//     *scheduled* issue time, so when the system falls behind, the
//     queueing delay is charged to the operations — the
//     coordinated-omission-free measurement a closed loop cannot give.
//     The -inflight workers bound concurrency; if the schedule outruns
//     them, later operations simply start late and their latency shows
//     it. The plan is reused cyclically, with written values shifted
//     per cycle so every write in the run stays unique and merged
//     histories remain unambiguous for the checkers.
//
// Pair -inflight with the daemons' -inflight pipelining (and their
// -batch/-batchwindow coalescing) to saturate the batched update path.
// With -out it additionally dumps every daemon's recorded trace, merges
// them into one execution history, and writes it as moccheck-compatible
// JSON — so a real multi-process run can be verified by the exact
// checkers:
//
//	mocload -nodes 127.0.0.1:7200,127.0.0.1:7201,127.0.0.1:7202 \
//	        -ops 20 -readfrac 0.5 -out history.json
//	moccheck -condition mlin history.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"moc/internal/core"
	"moc/internal/mocrpc"
	"moc/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mocload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nodes     = flag.String("nodes", "", "comma-separated daemon client RPC addresses (required)")
		objects   = flag.String("objects", "x,y,z", "shared object names; must match the daemons' -objects")
		ops       = flag.Int("ops", 20, "m-operations per daemon")
		readFrac  = flag.Float64("readfrac", 0.5, "fraction of queries in the mix")
		span      = flag.Int("span", 2, "objects touched per m-operation")
		seed      = flag.Int64("seed", 42, "workload plan seed")
		out       = flag.String("out", "", "write the merged execution history (moccheck JSON) here")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-daemon dial timeout")
		inflight  = flag.Int("inflight", 1, "concurrent clients per daemon, each on its own connection (pair with the daemons' -inflight so the pipelined lanes are actually fed)")
		rate      = flag.Float64("rate", 0, "open-loop mode: target m-operations per second per daemon (0 = closed loop); latency is measured from the scheduled issue time, so overload queueing is charged to the operations (no coordinated omission)")
		duration  = flag.Duration("duration", 10*time.Second, "open-loop run length (only with -rate)")
		shards    = flag.Int("shards", 1, "plan a shard-affine workload for a sharded cluster: must match the daemons' -shards; node i works its home shard (i mod N)")
		crossFrac = flag.Float64("crossfrac", 0, "with -shards > 1: fraction of m-operations extended with one foreign-shard object (the operations the cross-shard merge must order)")
		level     = flag.String("level", "", `consistency level for queries: "one", "quorum", "all", or "mixed" (each query draws uniformly among the three); empty keeps the daemons' native level. Non-native levels need an m-linearizable cluster`)
		callTO    = flag.Duration("calltimeout", 0, "per-RPC deadline (0 = none); a timed-out call counts as indeterminate — the daemon may still apply it")
		retries   = flag.Int("retries", 0, "retries per operation on retryable (never-sent) failures, with capped jittered backoff; queries also retry through indeterminate failures, updates never do (a duplicated write would corrupt the merged history)")
	)
	flag.Parse()
	if *inflight < 1 {
		return fmt.Errorf("-inflight must be at least 1, got %d", *inflight)
	}
	if *rate < 0 {
		return fmt.Errorf("-rate must not be negative, got %g", *rate)
	}
	if *rate > 0 && *duration <= 0 {
		return fmt.Errorf("-duration must be positive in open-loop mode, got %v", *duration)
	}
	switch *level {
	case "", "one", "quorum", "all", "mixed":
	default:
		return fmt.Errorf(`-level must be "one", "quorum", "all", "mixed" or empty, got %q`, *level)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	if *crossFrac < 0 || *crossFrac > 1 {
		return fmt.Errorf("-crossfrac %v outside [0, 1]", *crossFrac)
	}
	if *crossFrac > 0 && *shards < 2 {
		return fmt.Errorf("-crossfrac needs -shards > 1")
	}

	addrs := splitList(*nodes)
	if len(addrs) == 0 {
		return fmt.Errorf("-nodes is required")
	}
	names := splitList(*objects)
	if len(names) == 0 {
		return fmt.Errorf("-objects is required")
	}

	// One RPC connection serializes its requests, so pipelined load needs
	// -inflight connections per daemon: each carries one closed loop.
	clients := make([][]*mocrpc.Client, len(addrs))
	for i, addr := range addrs {
		clients[i] = make([]*mocrpc.Client, *inflight)
		for k := range clients[i] {
			c, err := mocrpc.Dial(addr, *timeout)
			if err != nil {
				return err
			}
			defer c.Close()
			if *callTO > 0 {
				c.SetCallTimeout(*callTO)
			}
			clients[i][k] = c
		}
		if err := clients[i][0].Ping(); err != nil {
			return fmt.Errorf("node %d (%s): %w", i, addr, err)
		}
	}

	var plans [][]workload.Op
	if *shards > 1 {
		mix := workload.ShardMix{
			ReadFrac: *readFrac, Span: *span, OpsPerProc: *ops,
			Shards: *shards, CrossFrac: *crossFrac,
		}
		plans = mix.Plan(len(addrs), len(names), rand.New(rand.NewSource(*seed)))
	} else {
		mix := workload.Mix{ReadFrac: *readFrac, Span: *span, OpsPerProc: *ops}
		plans = mix.Plan(len(addrs), len(names), rand.New(rand.NewSource(*seed)))
	}

	var (
		mu           sync.Mutex
		queryByLevel = make(map[string][]int64)
		updNs        []int64
		wg           sync.WaitGroup
		errs         = make(chan error, len(addrs)*(*inflight))
		start        = time.Now()
	)
	// The open loop reuses the plan cyclically, so written values are
	// shifted by a per-cycle multiple of the plan's value range: every
	// write in the run stays unique, which keeps the merged history's
	// value-inferred reads-from unambiguous for the checkers. (Plan
	// values are globally unique and start at 1, so orig + cycle*maxVal
	// never collides across cycles or daemons.)
	var maxVal int64
	for _, plan := range plans {
		for _, op := range plan {
			for _, v := range op.Vals {
				if int64(v) > maxVal {
					maxVal = int64(v)
				}
			}
		}
	}

	// pickLevel chooses the consistency level for one query: the -level
	// flag's value, or a uniform draw when the mix is requested. The
	// draw happens once per operation, before any retries, so an
	// operation keeps its level across reissues.
	mixedChoices := []string{"one", "quorum", "all"}
	pickLevel := func(rng *rand.Rand) string {
		if *level == "mixed" {
			return mixedChoices[rng.Intn(len(mixedChoices))]
		}
		return *level
	}
	// issue sends one planned m-operation, re-valuing updates by valOff;
	// record files its latency under the caller-chosen origin.
	issue := func(c *mocrpc.Client, op workload.Op, valOff int64, lvl string) error {
		objs := make([]string, len(op.Objs))
		for j, x := range op.Objs {
			objs[j] = names[x]
		}
		var vals []int64
		kind := "multiread"
		if !op.Query {
			kind = "massign"
			lvl = ""
			vals = make([]int64, len(op.Vals))
			for j, v := range op.Vals {
				vals[j] = int64(v) + valOff
			}
		}
		_, err := c.Exec(kind, objs, vals, lvl)
		return err
	}
	// issueRetry applies the chaos retry discipline around issue: a
	// retryable failure (the request provably never reached the daemon)
	// is always safe to retry with the same values; an indeterminate
	// failure is retried only for queries — the daemon may have applied
	// an update, and reissuing its values would make the merged history
	// ambiguous. The client redials lazily, so a retry after a daemon
	// restart reconnects on its own.
	issueRetry := func(c *mocrpc.Client, op workload.Op, valOff int64, rng *rand.Rand) (string, error) {
		lvl := ""
		if op.Query {
			lvl = pickLevel(rng)
		}
		backoff := 10 * time.Millisecond
		const backoffMax = 250 * time.Millisecond
		for attempt := 0; ; attempt++ {
			err := issue(c, op, valOff, lvl)
			if err == nil {
				return lvl, nil
			}
			safe := mocrpc.IsRetryable(err) || (op.Query && mocrpc.IsIndeterminate(err))
			if !safe || attempt >= *retries {
				return lvl, err
			}
			time.Sleep(backoff/2 + time.Duration(rng.Int63n(int64(backoff)/2+1)))
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
		}
	}
	record := func(query bool, lvl string, ns int64) {
		mu.Lock()
		if query {
			queryByLevel[lvl] = append(queryByLevel[lvl], ns)
		} else {
			updNs = append(updNs, ns)
		}
		mu.Unlock()
	}

	if *rate > 0 {
		// Open loop: each daemon has a virtual schedule — operation s is
		// due at start + s/rate — and its workers race to claim the next
		// slot. A worker that claims a future slot sleeps until it is
		// due; one that claims a past slot (the system is behind) issues
		// immediately, and the lateness lands in the measured latency
		// because the clock starts at the *scheduled* time, not the send.
		interval := time.Duration(float64(time.Second) / *rate)
		deadline := start.Add(*duration)
		for i := range clients {
			next := new(atomic.Int64)
			plan := plans[i]
			for k, c := range clients[i] {
				wg.Add(1)
				go func(c *mocrpc.Client, w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(*seed + int64(w)*7919 + 1))
					for {
						s := next.Add(1) - 1
						sched := start.Add(time.Duration(s) * interval)
						if sched.After(deadline) {
							return
						}
						if d := time.Until(sched); d > 0 {
							time.Sleep(d)
						}
						op := plan[int(s)%len(plan)]
						valOff := (s / int64(len(plan))) * maxVal
						lvl, err := issueRetry(c, op, valOff, rng)
						if err != nil {
							errs <- err
							return
						}
						record(op.Query, lvl, time.Since(sched).Nanoseconds())
					}
				}(c, i*(*inflight)+k)
			}
		}
	} else {
		for i := range clients {
			// Slice node i's plan across its closed loops: worker k issues
			// ops k, k+inflight, k+2*inflight, ...
			for k, c := range clients[i] {
				var share []workload.Op
				for j := k; j < len(plans[i]); j += *inflight {
					share = append(share, plans[i][j])
				}
				wg.Add(1)
				go func(c *mocrpc.Client, plan []workload.Op, w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(*seed + int64(w)*7919 + 1))
					for _, op := range plan {
						t0 := time.Now()
						lvl, err := issueRetry(c, op, 0, rng)
						if err != nil {
							errs <- err
							return
						}
						record(op.Query, lvl, time.Since(t0).Nanoseconds())
					}
				}(c, share, i*(*inflight)+k)
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}

	totalQueries := 0
	for _, ns := range queryByLevel {
		totalQueries += len(ns)
	}
	total := totalQueries + len(updNs)
	fmt.Printf("%d m-operations across %d nodes in %v (%.0f ops/s)\n",
		total, len(addrs), elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	if *rate > 0 {
		target := *rate * float64(len(addrs))
		achieved := float64(total) / elapsed.Seconds()
		fmt.Printf("open loop: target %.0f ops/s across the cluster, achieved %.0f ops/s (%.1f%%)\n",
			target, achieved, 100*achieved/target)
	}
	// Per-level query latencies: a mixed run shows the ONE/QUORUM/ALL
	// spread side by side; a single-level run prints one line.
	levels := make([]string, 0, len(queryByLevel))
	for lvl := range queryByLevel {
		levels = append(levels, lvl)
	}
	sort.Strings(levels)
	if len(levels) == 0 {
		report("query ", nil)
	}
	for _, lvl := range levels {
		label := "query "
		if lvl != "" {
			label = fmt.Sprintf("query[%s]", lvl)
		}
		report(label, queryByLevel[lvl])
	}
	report("update", updNs)

	if *out == "" {
		return nil
	}

	// Merge every daemon's trace into one history and write it in the
	// moccheck interchange format.
	traces := make([]core.Trace, len(clients))
	for i, node := range clients {
		tr, err := node[0].Dump()
		if err != nil {
			return fmt.Errorf("node %d dump: %w", i, err)
		}
		traces[i] = tr
	}
	recs, reg, cons, err := core.MergeTraces(traces...)
	if err != nil {
		return err
	}
	h, _, err := core.BuildHistory(reg, recs)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("merged history: %d m-operations (%s) -> %s\n", total, cons, *out)
	return nil
}

// report prints count, mean and latency percentiles for one op class.
func report(label string, ns []int64) {
	if len(ns) == 0 {
		fmt.Printf("%s: none\n", label)
		return
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	pct := func(q float64) time.Duration {
		idx := int(q*float64(len(sorted))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return time.Duration(sorted[idx])
	}
	fmt.Printf("%s: n=%d mean=%v p50=%v p90=%v p99=%v\n",
		label, len(sorted),
		time.Duration(sum/int64(len(sorted))).Round(time.Microsecond),
		pct(0.50).Round(time.Microsecond),
		pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond))
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
