// Command mocsim runs one of the Section 5 protocols under a randomized
// multi-object workload, prints the recorded execution history, and
// verifies the configured consistency condition with the polynomial
// Theorem 7 procedure.
//
// Usage:
//
//	mocsim -consistency mlin -procs 4 -objects 6 -ops 8 -readfrac 0.5 \
//	       -maxdelay 2ms -seed 7 [-broadcast lamport] [-relevant] [-json] \
//	       [-batch 8] [-batchwindow 200us] [-inflight 32] \
//	       [-drop 0.2] [-dup 0.05] [-partition 50ms] \
//	       [-crash 1@40ms,2@80ms] [-restart 1@160ms]
//
// The -batch, -batchwindow and -inflight flags enable the batched,
// pipelined update path of the broadcast consistencies (msc, mlin):
// updates queued within the window are coalesced into one broadcast
// frame of up to -batch updates, and each process may keep up to
// -inflight updates outstanding. The defaults (1, 0, 1) reproduce the
// unbatched one-at-a-time behavior exactly.
//
// The -drop, -dup and -partition flags enable fault injection: messages
// are dropped/duplicated with the given probabilities, and -partition
// isolates the first half of the processes from the second half from
// startup until the given duration elapses. The reliable delivery layer
// (sequence numbers, acks, retransmission) restores exactly-once
// delivery underneath the protocols, and the run reports the fault and
// retransmission counters.
//
// The -crash and -restart flags schedule crash-stop process failures:
// each comma-separated proc@time entry takes the process down (or brings
// it back up) at the given instant after startup. A crashed endpoint
// sends and receives nothing; heartbeat failure detection, coordinator
// failover, and checkpointed recovery are enabled automatically so the
// survivors keep making progress and a restarted process rejoins via
// state transfer. A process crashed without a matching -restart entry
// never comes back, so operations issued at it after the crash instant
// stall — schedule restarts (or keep crashed processes idle) when the
// workload must complete.
//
// Invalid flag values (probabilities outside [0,1), non-positive counts,
// malformed or inconsistent crash schedules) are rejected with a message
// and exit code 2 before the run starts.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"moc/internal/core"
	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/network"
	"moc/internal/object"
	"moc/internal/workload"
)

// usageError marks a flag-validation failure, reported with exit code 2
// (the conventional usage-error code) before any store is built.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mocsim:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// parseSchedule parses a comma-separated list of proc@time entries
// (e.g. "1@40ms,2@80ms") into per-process instants.
func parseSchedule(flagName, spec string, procs int) (map[int]time.Duration, error) {
	out := make(map[int]time.Duration)
	if spec == "" {
		return out, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		at := strings.Split(entry, "@")
		if len(at) != 2 {
			return nil, usageError{fmt.Sprintf("-%s entry %q is not proc@time (e.g. 1@40ms)", flagName, entry)}
		}
		proc, err := strconv.Atoi(at[0])
		if err != nil || proc < 0 || proc >= procs {
			return nil, usageError{fmt.Sprintf("-%s entry %q: process must be an integer in [0, %d)", flagName, entry, procs)}
		}
		if _, dup := out[proc]; dup {
			return nil, usageError{fmt.Sprintf("-%s lists process %d twice", flagName, proc)}
		}
		d, err := time.ParseDuration(at[1])
		if err != nil || d < 0 {
			return nil, usageError{fmt.Sprintf("-%s entry %q: bad duration", flagName, entry)}
		}
		out[proc] = d
	}
	return out, nil
}

func run() error {
	var (
		consistency = flag.String("consistency", "mlin", `consistency condition: "msc", "mlin", "oolock" or "causal"`)
		broadcast   = flag.String("broadcast", "sequencer", `atomic broadcast: "sequencer", "lamport" or "token"`)
		procs       = flag.Int("procs", 4, "number of processes")
		objects     = flag.Int("objects", 6, "number of shared objects")
		ops         = flag.Int("ops", 8, "m-operations per process")
		readFrac    = flag.Float64("readfrac", 0.5, "fraction of query m-operations")
		span        = flag.Int("span", 2, "objects touched per m-operation")
		maxDelay    = flag.Duration("maxdelay", 2*time.Millisecond, "maximum network delay")
		seed        = flag.Int64("seed", 1, "randomness seed")
		relevant    = flag.Bool("relevant", false, "mlin: send only relevant objects in query responses")
		batch       = flag.Int("batch", 1, "msc/mlin: coalesce up to this many updates into one broadcast frame (1 = unbatched)")
		batchWindow = flag.Duration("batchwindow", 0, "msc/mlin: longest an update waits for its batch to fill (0 with -batch > 1 uses the built-in default)")
		inflight    = flag.Int("inflight", 1, "msc/mlin: updates outstanding per process (pipelined issuance)")
		drop        = flag.Float64("drop", 0, "fault injection: per-message drop probability in [0,1)")
		dup         = flag.Float64("dup", 0, "fault injection: per-message duplication probability in [0,1)")
		partition   = flag.Duration("partition", 0, "fault injection: partition the first half of the processes from the rest until this duration elapses")
		crash       = flag.String("crash", "", `crash-stop schedule: comma-separated proc@time entries (e.g. "1@40ms,2@80ms")`)
		restart     = flag.String("restart", "", `restart schedule matching -crash: comma-separated proc@time entries (e.g. "1@160ms")`)
		shards      = flag.Int("shards", 1, "msc/mlin: partition the object space (id mod N) into this many independent broadcast lanes; cross-shard m-operations run the two-phase ticket merge")
		level       = flag.String("level", "", `consistency level for queries: "one", "quorum" or "all" (empty = the store's native level; "quorum"/"all" need -consistency mlin, "one" also works with msc)`)
		emitJSON    = flag.Bool("json", false, "print the recorded history as JSON")
		timeline    = flag.Bool("timeline", false, "render the history as per-process lanes (paper-figure style)")
		dot         = flag.Bool("dot", false, "emit the history's relations as Graphviz DOT on stdout")
	)
	flag.Parse()

	// Validate everything before building the store: a bad value should
	// produce a usage message and exit code 2, not a late panic deep in
	// the protocol stack or a silently meaningless run.
	if *procs <= 0 {
		return usageError{fmt.Sprintf("-procs must be positive, got %d", *procs)}
	}
	if *objects <= 0 {
		return usageError{fmt.Sprintf("-objects must be positive, got %d", *objects)}
	}
	if *ops <= 0 {
		return usageError{fmt.Sprintf("-ops must be positive, got %d", *ops)}
	}
	if *readFrac < 0 || *readFrac > 1 {
		return usageError{fmt.Sprintf("-readfrac %v outside [0, 1]", *readFrac)}
	}
	if *drop < 0 || *drop >= 1 {
		return usageError{fmt.Sprintf("-drop %v outside [0, 1)", *drop)}
	}
	if *dup < 0 || *dup >= 1 {
		return usageError{fmt.Sprintf("-dup %v outside [0, 1)", *dup)}
	}
	if *partition < 0 {
		return usageError{fmt.Sprintf("-partition must not be negative, got %v", *partition)}
	}
	if *batch < 1 {
		return usageError{fmt.Sprintf("-batch must be at least 1, got %d", *batch)}
	}
	if *batchWindow < 0 {
		return usageError{fmt.Sprintf("-batchwindow must not be negative, got %v", *batchWindow)}
	}
	if *inflight < 1 {
		return usageError{fmt.Sprintf("-inflight must be at least 1, got %d", *inflight)}
	}
	if (*batch > 1 || *batchWindow > 0 || *inflight > 1) &&
		*consistency != "msc" && *consistency != "mlin" {
		return usageError{fmt.Sprintf("-batch/-batchwindow/-inflight apply to the broadcast consistencies (msc, mlin), not %q", *consistency)}
	}
	if *shards < 1 {
		return usageError{fmt.Sprintf("-shards must be at least 1, got %d", *shards)}
	}
	if *shards > 1 {
		if *consistency != "msc" && *consistency != "mlin" {
			return usageError{fmt.Sprintf("-shards applies to the broadcast consistencies (msc, mlin), not %q", *consistency)}
		}
		if *shards > *objects {
			return usageError{fmt.Sprintf("-shards %d exceeds -objects %d (a shard would be empty)", *shards, *objects)}
		}
		if *crash != "" {
			return usageError{"-shards cannot be combined with -crash (per-lane failover is not coordinated)"}
		}
	}
	queryLevel, err := history.ParseLevel(*level)
	if err != nil {
		return usageError{fmt.Sprintf("-level: %v", err)}
	}
	switch queryLevel {
	case history.LevelDefault:
	case history.LevelOne:
		if *consistency != "mlin" && *consistency != "msc" {
			return usageError{fmt.Sprintf(`-level one needs -consistency mlin or msc, not %q`, *consistency)}
		}
	default:
		if *consistency != "mlin" {
			return usageError{fmt.Sprintf(`-level %s needs -consistency mlin, not %q`, queryLevel, *consistency)}
		}
	}
	crashes, err := parseSchedule("crash", *crash, *procs)
	if err != nil {
		return err
	}
	restarts, err := parseSchedule("restart", *restart, *procs)
	if err != nil {
		return err
	}
	for proc, at := range restarts {
		crashAt, ok := crashes[proc]
		if !ok {
			return usageError{fmt.Sprintf("-restart lists process %d, which -crash never crashes", proc)}
		}
		if at <= crashAt {
			return usageError{fmt.Sprintf("-restart brings process %d back at %v, not after its crash at %v", proc, at, crashAt)}
		}
	}

	cfg := core.Config{
		Procs:        *procs,
		Consistency:  core.MLinearizable,
		Seed:         *seed,
		MaxDelay:     *maxDelay,
		RelevantOnly: *relevant,
		BatchWindow:  *batchWindow,
		MaxInflight:  *inflight,
		Shards:       *shards,
	}
	if *batch > 1 {
		cfg.BatchSize = *batch
	}
	switch *consistency {
	case "msc":
		cfg.Consistency = core.MSequential
	case "mlin":
	case "oolock":
		cfg.Consistency = core.MLinearizableLocking
	case "causal":
		cfg.Consistency = core.MCausal
	default:
		return fmt.Errorf("unknown consistency %q", *consistency)
	}
	switch *broadcast {
	case "sequencer":
		cfg.Broadcast = core.SequencerBroadcast
	case "lamport":
		cfg.Broadcast = core.LamportBroadcast
	case "token":
		cfg.Broadcast = core.TokenBroadcast
	default:
		return fmt.Errorf("unknown broadcast %q", *broadcast)
	}
	cfg.Objects = make([]string, *objects)
	for i := range cfg.Objects {
		cfg.Objects[i] = fmt.Sprintf("x%d", i)
	}

	faulty := *drop > 0 || *dup > 0 || *partition > 0 || len(crashes) > 0
	if faulty {
		faults := &network.Faults{DropProb: *drop, DupProb: *dup}
		if *partition > 0 {
			side := make([]int, 0, *procs/2)
			for p := 0; p < *procs/2; p++ {
				side = append(side, p)
			}
			faults.Partitions = []network.Partition{{Side: side, Start: 0, Heal: *partition}}
		}
		for proc, at := range crashes {
			faults.Crashes = append(faults.Crashes, network.Crash{Proc: proc, At: at, Restart: restarts[proc]})
		}
		cfg.Faults = faults
	}

	s, err := core.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()

	mix := workload.Mix{ReadFrac: *readFrac, Span: *span, OpsPerProc: *ops}
	plans := mix.Plan(*procs, *objects, rand.New(rand.NewSource(*seed)))

	var wg sync.WaitGroup
	errCh := make(chan error, *procs)
	for pi := 0; pi < *procs; pi++ {
		proc, err := s.Process(pi)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(plan []workload.Op, proc *core.Process) {
			defer wg.Done()
			for _, op := range plan {
				var pr mop.Procedure
				var opts core.ExecOptions
				if op.Query {
					pr = mop.MultiRead{Xs: op.Objs}
					opts.Level = queryLevel
				} else {
					writes := make(map[object.ID]object.Value, len(op.Objs))
					for i, x := range op.Objs {
						writes[x] = op.Vals[i]
					}
					pr = mop.MAssign{Writes: writes}
				}
				if _, err := proc.Exec(pr, opts); err != nil {
					errCh <- err
					return
				}
			}
		}(plans[pi], proc)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}

	// A leveled mlin run is checked with the composed exact deciders
	// (full history at m-SC, strong subset at m-lin); everything else
	// keeps the polynomial Theorem 7 check at the native condition.
	leveled := queryLevel != history.LevelDefault && *consistency == "mlin"
	var res core.VerifyResult
	if leveled {
		res, err = s.VerifyLeveled()
	} else {
		res, err = s.Verify()
	}
	if err != nil {
		return err
	}

	if *dot {
		base := history.MLinearizableBase
		if cfg.Consistency == core.MSequential {
			base = history.MSequentialBase
		}
		return res.History.DOT(os.Stdout, base)
	}

	// In JSON mode only the history goes to stdout (so the output can be
	// piped into moccheck); the human-readable summary goes to stderr.
	summary := os.Stdout
	if *emitJSON {
		summary = os.Stderr
		data, err := json.MarshalIndent(res.History, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else if *timeline {
		fmt.Printf("recorded %d m-operations across %d processes:\n",
			res.History.Len()-1, *procs)
		if err := res.History.Timeline(os.Stdout); err != nil {
			return err
		}
	} else {
		fmt.Printf("recorded %d m-operations across %d processes:\n",
			res.History.Len()-1, *procs)
		for _, m := range res.History.MOps()[1:] {
			fmt.Printf("  %s\n", m)
		}
	}

	condition := s.Consistency().String()
	if leveled {
		condition = fmt.Sprintf("mixed-level (queries at %s): m-SC overall, m-lin on the strong subset", queryLevel)
	}
	if *shards > 1 {
		fmt.Fprintf(summary, "shards: %s (%d lanes)\n", s.ShardSpec(), *shards)
	}
	fmt.Fprintf(summary, "consistency: %s; verified: %v\n", condition, res.OK)
	if !res.OK {
		return fmt.Errorf("history failed %s verification — protocol bug", condition)
	}
	fmt.Fprintf(summary, "legal sequential witness: %s\n", res.Witness)
	msgs, bytes := s.BroadcastCost()
	fmt.Fprintf(summary, "broadcast traffic: %d msgs, %d bytes; query traffic: %d msgs, %d bytes\n",
		msgs, bytes, s.QueryTraffic().Messages, s.QueryTraffic().Bytes)
	if faulty {
		ns := s.NetStats()
		fmt.Fprintf(summary, "fault injection: %d dropped, %d duplicated, %d retransmitted\n",
			ns.Dropped, ns.Duplicated, ns.Retransmitted)
		if len(crashes) > 0 {
			// Crash/restart counters are per-transport (a store runs several
			// networks under one schedule), so report the schedule itself
			// plus the recoveries actually performed.
			fmt.Fprintf(summary, "crash schedule: %d crashes, %d restarts, %d checkpoint recoveries\n",
				len(crashes), len(restarts), s.Recoveries())
		}
	}
	return nil
}
