// Command mocd hosts one process of a multi-object store cluster: it
// joins the peer transport mesh (internal/transport), runs a full
// replica of the Section 5 protocol stack (core.Store over real TCP),
// and serves the client RPC front-end (internal/mocrpc) through which
// load generators issue m-operations at this process, dump the recorded
// history, and shut the daemon down.
//
// A 3-node cluster on loopback:
//
//	mocd -id 0 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7200 &
//	mocd -id 1 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7201 &
//	mocd -id 2 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7202 &
//
// Every daemon must be started with the same -peers, -objects,
// -consistency, -broadcast, -epoch, -batch, -batchwindow and -inflight
// values; -id selects which peer slot (and which protocol process) this
// daemon is. The batching knobs enable the coalesced, pipelined update
// path — a daemon batching while its peers do not would still be
// correct (batches expand locally on every node) but would skew any
// cost comparison, so keep them uniform.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"moc/internal/core"
	"moc/internal/mocrpc"
	"moc/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mocd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id          = flag.Int("id", -1, "this daemon's index into -peers (required)")
		peers       = flag.String("peers", "", "comma-separated peer transport addresses, one per daemon (required)")
		client      = flag.String("client", "", "client RPC listen address (required)")
		objects     = flag.String("objects", "x,y,z", "comma-separated shared object names")
		consistency = flag.String("consistency", "mlin", `consistency condition: "msc" or "mlin"`)
		broadcast   = flag.String("broadcast", "seq", `atomic broadcast: "seq", "lamport" or "token"`)
		epoch       = flag.Int64("epoch", 0, "shared clock epoch, unix nanoseconds (0 = daemon start; share one value across the cluster so merged traces are real-time comparable)")
		batch       = flag.Int("batch", 1, "coalesce up to this many updates into one broadcast frame (1 = unbatched; same value on every daemon)")
		batchWindow = flag.Duration("batchwindow", 0, "longest an update waits for its batch to fill (0 with -batch > 1 uses the built-in default)")
		inflight    = flag.Int("inflight", 1, "updates outstanding per process (pipelined issuance; same value on every daemon)")
		codec       = flag.String("codec", transport.CodecBinary, `frame body encoding this daemon sends: "binary" or "gob" (receiving is always codec-agnostic, so mixed clusters interoperate)`)
	)
	flag.Parse()

	addrs := splitList(*peers)
	if len(addrs) == 0 {
		return fmt.Errorf("-peers is required")
	}
	if *id < 0 || *id >= len(addrs) {
		return fmt.Errorf("-id %d out of range for %d peers", *id, len(addrs))
	}
	if *client == "" {
		return fmt.Errorf("-client is required")
	}
	names := splitList(*objects)
	if len(names) == 0 {
		return fmt.Errorf("-objects is required")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be at least 1, got %d", *batch)
	}
	if *batchWindow < 0 {
		return fmt.Errorf("-batchwindow must not be negative, got %v", *batchWindow)
	}
	if *inflight < 1 {
		return fmt.Errorf("-inflight must be at least 1, got %d", *inflight)
	}

	var cons core.Consistency
	switch *consistency {
	case "msc":
		cons = core.MSequential
	case "mlin":
		cons = core.MLinearizable
	default:
		return fmt.Errorf(`unknown -consistency %q (want "msc" or "mlin")`, *consistency)
	}
	var bcast core.BroadcastKind
	switch *broadcast {
	case "seq":
		bcast = core.SequencerBroadcast
	case "lamport":
		bcast = core.LamportBroadcast
	case "token":
		bcast = core.TokenBroadcast
	default:
		return fmt.Errorf(`unknown -broadcast %q (want "seq", "lamport" or "token")`, *broadcast)
	}
	var epochTime time.Time
	if *epoch != 0 {
		epochTime = time.Unix(0, *epoch)
	}

	node, err := transport.Listen(transport.Config{Self: *id, Addrs: addrs, Codec: *codec})
	if err != nil {
		return err
	}
	storeCfg := core.Config{
		Procs:       len(addrs),
		Objects:     names,
		Consistency: cons,
		Broadcast:   bcast,
		Links:       node.Factory(),
		Epoch:       epochTime,
		BatchWindow: *batchWindow,
		MaxInflight: *inflight,
	}
	if *batch > 1 {
		storeCfg.BatchSize = *batch
	}
	store, err := core.New(storeCfg)
	if err != nil {
		node.Close()
		return err
	}

	ln, err := net.Listen("tcp", *client)
	if err != nil {
		store.Close()
		node.Close()
		return err
	}

	done := make(chan struct{})
	rpc := mocrpc.Serve(ln, store, *id, func() { close(done) })
	fmt.Printf("mocd: node %d of %d up; transport %s, rpc %s, %s over %s broadcast\n",
		*id, len(addrs), node.Addr(), rpc.Addr(), cons, *broadcast)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case <-done:
	case sig := <-sigs:
		fmt.Printf("mocd: node %d: %v\n", *id, sig)
	}

	// Ordered teardown: stop taking client requests, then the protocol
	// stack, then the transport mesh under it.
	rpc.Close()
	store.Close()
	node.Close()
	fmt.Printf("mocd: node %d down\n", *id)
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
