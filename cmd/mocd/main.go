// Command mocd hosts one process of a multi-object store cluster: it
// joins the peer transport mesh (internal/transport), runs a full
// replica of the Section 5 protocol stack (core.Store over real TCP),
// and serves the client RPC front-end (internal/mocrpc) through which
// load generators issue m-operations at this process, dump the recorded
// history, and shut the daemon down.
//
// A 3-node cluster on loopback:
//
//	mocd -id 0 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7200 &
//	mocd -id 1 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7201 &
//	mocd -id 2 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7202 &
//
// Every daemon must be started with the same -peers, -objects,
// -consistency, -broadcast, -epoch, -batch, -batchwindow, -inflight and
// -shards values; -id selects which peer slot (and which protocol
// process) this daemon is. The batching knobs enable the coalesced, pipelined update
// path — a daemon batching while its peers do not would still be
// correct (batches expand locally on every node) but would skew any
// cost comparison, so keep them uniform.
//
// Chaos support: -recover enables the checkpoint-transfer service (same
// flag on every daemon) and makes a (re)starting daemon solicit peer
// checkpoints before serving clients, so a SIGKILLed daemon rejoins
// with the updates it missed; -trace streams every completed operation
// to a JSON-lines file that survives kill -9 (core.ReadTraceFile);
// -resetprob and friends inject seed-driven socket faults into the peer
// transport (transport.Faults). On SIGTERM the daemon drains in-flight
// lanes before tearing down, so its trace is complete.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"moc/internal/core"
	"moc/internal/mocrpc"
	"moc/internal/mop"
	"moc/internal/shard"
	"moc/internal/transport"
	"moc/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mocd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id          = flag.Int("id", -1, "this daemon's index into -peers (required)")
		peers       = flag.String("peers", "", "comma-separated peer transport addresses, one per daemon (required)")
		client      = flag.String("client", "", "client RPC listen address (required)")
		objects     = flag.String("objects", "x,y,z", "comma-separated shared object names")
		consistency = flag.String("consistency", "mlin", `consistency condition: "msc" or "mlin"`)
		broadcast   = flag.String("broadcast", "seq", `atomic broadcast: "seq", "lamport" or "token"`)
		epoch       = flag.Int64("epoch", 0, "shared clock epoch, unix nanoseconds (0 = daemon start; share one value across the cluster so merged traces are real-time comparable)")
		batch       = flag.Int("batch", 1, "coalesce up to this many updates into one broadcast frame (1 = unbatched; same value on every daemon)")
		batchWindow = flag.Duration("batchwindow", 0, "longest an update waits for its batch to fill (0 with -batch > 1 uses the built-in default)")
		inflight    = flag.Int("inflight", 1, "updates outstanding per process (pipelined issuance; same value on every daemon)")
		shards      = flag.Int("shards", 1, "partition the object space (id mod N) into this many independent broadcast lanes; single-shard operations never cross lanes (same value on every daemon; incompatible with -recover)")
		codec       = flag.String("codec", transport.CodecBinary, `frame body encoding this daemon sends: "binary" or "gob" (receiving is always codec-agnostic, so mixed clusters interoperate)`)

		recov        = flag.Bool("recover", false, "enable checkpoint-transfer recovery: serve checkpoints to rejoining peers and solicit one at startup (same flag on every daemon; requires -broadcast=seq and -batch=1)")
		recoverWait  = flag.Duration("recoverwait", 3*time.Second, "how long the startup checkpoint solicitation waits for peers (with -recover; failure to recover is logged, not fatal)")
		trace        = flag.String("trace", "", "stream completed operations to this JSON-lines trace file (kill-safe; merge with moccheck or internal/chaos)")
		monitorAddr  = flag.String("monitor", "", "stream completed operations to a mocmon live verification service at this address (batched, acked, resumes across reconnects)")
		queryTimeout = flag.Duration("querytimeout", 0, "m-linearizable query round-trip bound before re-solicitation (0 = protocol default; needed when peers may die mid-query)")
		queryRetries = flag.Int("queryretries", 0, "re-solicitations for a bounded query (with -querytimeout)")
		drainWait    = flag.Duration("drainwait", 5*time.Second, "how long shutdown waits for in-flight operations to drain")
		staleInject  = flag.Int("staleinject", 0, "TEST HOOK: report the Nth completed non-trivial query one version stale on its first object before it reaches the trace/monitor sinks — the store itself is untouched; a live verification service must flag the record (0 = off)")

		faultSeed   = flag.Int64("faultseed", 0, "seed for transport fault injection (0 with fault probabilities set uses seed 1)")
		resetProb   = flag.Float64("resetprob", 0, "probability an outbound frame write is turned into a connection reset")
		corruptProb = flag.Float64("corruptprob", 0, "probability an outbound frame is corrupted on the wire (the receiver must reject it)")
		faultDelay  = flag.Duration("faultdelay", 0, "fixed extra latency per outbound frame")
		faultJitter = flag.Duration("faultjitter", 0, "random extra latency per outbound frame, uniform in [0, jitter)")
		bandwidth   = flag.Int64("bandwidth", 0, "outbound transport bandwidth cap, bytes/second (0 = unlimited)")
		partitions  = flag.String("partitions", "", `timed partitions from this daemon: "peers@start:heal[;...]", e.g. "1,2@200ms:700ms" cuts peers 1 and 2 from 200ms to 700ms after daemon start`)
	)
	flag.Parse()

	addrs := splitList(*peers)
	if len(addrs) == 0 {
		return fmt.Errorf("-peers is required")
	}
	if *id < 0 || *id >= len(addrs) {
		return fmt.Errorf("-id %d out of range for %d peers", *id, len(addrs))
	}
	if *client == "" {
		return fmt.Errorf("-client is required")
	}
	names := splitList(*objects)
	if len(names) == 0 {
		return fmt.Errorf("-objects is required")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be at least 1, got %d", *batch)
	}
	if *batchWindow < 0 {
		return fmt.Errorf("-batchwindow must not be negative, got %v", *batchWindow)
	}
	if *inflight < 1 {
		return fmt.Errorf("-inflight must be at least 1, got %d", *inflight)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	// The canonical spec for this cluster's shard map ("" when
	// unsharded), announced in trace headers and monitor Hellos; it must
	// match what core.New will build so merged streams agree.
	shardSpec := ""
	if *shards > 1 {
		m, err := shard.NewMap(len(names), *shards)
		if err != nil {
			return fmt.Errorf("-shards: %v", err)
		}
		shardSpec = m.Spec()
	}
	if *recov {
		if *broadcast != "seq" {
			return fmt.Errorf("-recover requires -broadcast=seq (rejoin fast-forwards the sequencer delivery sequence), got %q", *broadcast)
		}
		if *batch != 1 {
			return fmt.Errorf("-recover requires -batch=1 (the checkpoint applied count is in per-update delivery units), got %d", *batch)
		}
	}

	var cons core.Consistency
	switch *consistency {
	case "msc":
		cons = core.MSequential
	case "mlin":
		cons = core.MLinearizable
	default:
		return fmt.Errorf(`unknown -consistency %q (want "msc" or "mlin")`, *consistency)
	}
	var bcast core.BroadcastKind
	switch *broadcast {
	case "seq":
		bcast = core.SequencerBroadcast
	case "lamport":
		bcast = core.LamportBroadcast
	case "token":
		bcast = core.TokenBroadcast
	default:
		return fmt.Errorf(`unknown -broadcast %q (want "seq", "lamport" or "token")`, *broadcast)
	}
	var epochTime time.Time
	if *epoch != 0 {
		epochTime = time.Unix(0, *epoch)
	}

	var faults *transport.Faults
	parts, err := parsePartitions(*partitions)
	if err != nil {
		return err
	}
	if *resetProb > 0 || *corruptProb > 0 || *faultDelay > 0 || *faultJitter > 0 || *bandwidth > 0 || len(parts) > 0 {
		faults = &transport.Faults{
			Seed:        *faultSeed,
			ResetProb:   *resetProb,
			CorruptProb: *corruptProb,
			Delay:       *faultDelay,
			Jitter:      *faultJitter,
			Bandwidth:   *bandwidth,
			Partitions:  parts,
		}
	}

	var traceW *core.TraceFileWriter
	if *trace != "" {
		traceW, err = core.NewTraceFileWriter(*trace, *id, cons, names, shardSpec)
		if err != nil {
			return err
		}
	}

	node, err := transport.Listen(transport.Config{
		Self: *id, Addrs: addrs, Codec: *codec,
		Faults: faults, Seed: *faultSeed,
	})
	if err != nil {
		return err
	}
	storeCfg := core.Config{
		Procs:        len(addrs),
		Objects:      names,
		Consistency:  cons,
		Broadcast:    bcast,
		Links:        node.Factory(),
		Epoch:        epochTime,
		BatchWindow:  *batchWindow,
		MaxInflight:  *inflight,
		Recovery:     *recov,
		QueryTimeout: *queryTimeout,
		QueryRetries: *queryRetries,
		Shards:       *shards,
	}
	var monW *verify.StreamWriter
	if *monitorAddr != "" {
		monW = verify.NewStreamWriter(verify.WriterConfig{
			Addr: *monitorAddr, Node: *id,
			Consistency: *consistency, Objects: names,
			Shards: shardSpec,
		})
	}
	switch {
	case traceW != nil && monW != nil:
		storeCfg.RecordSink = func(rec mop.Record) {
			traceW.Append(rec)
			monW.Append(rec)
		}
	case traceW != nil:
		storeCfg.RecordSink = traceW.Append
	case monW != nil:
		storeCfg.RecordSink = monW.Append
	}
	if *staleInject > 0 && storeCfg.RecordSink != nil {
		storeCfg.RecordSink = staleInjector(*staleInject, storeCfg.RecordSink)
	}
	if *batch > 1 {
		storeCfg.BatchSize = *batch
	}
	store, err := core.New(storeCfg)
	if err != nil {
		node.Close()
		return err
	}

	if *recov {
		// Best-effort checkpoint solicitation before serving clients: a
		// cold-starting cluster gets Applied=0 offers and adopts nothing;
		// a daemon restarted after kill -9 adopts the freshest survivor
		// checkpoint and fast-forwards its delivery sequence past the
		// updates it missed. Failure (e.g. the whole cluster is cold and
		// slow to mesh) is logged, not fatal — the daemon then rejoins
		// only what it observes live.
		adopted, err := store.Recover(*id, *recoverWait)
		switch {
		case err != nil:
			fmt.Printf("mocd: node %d: startup recovery: %v\n", *id, err)
		case adopted:
			fmt.Printf("mocd: node %d: adopted a peer checkpoint\n", *id)
		default:
			fmt.Printf("mocd: node %d: local state already fresh, no checkpoint adopted\n", *id)
		}
	}

	ln, err := net.Listen("tcp", *client)
	if err != nil {
		store.Close()
		node.Close()
		return err
	}

	done := make(chan struct{})
	rpc := mocrpc.Serve(ln, store, *id, func() { close(done) })
	rpc.SetInfo(func() map[string]int64 {
		fs := node.FaultStats()
		return map[string]int64{
			"recoveries":        store.Recoveries(),
			"faultResets":       fs.Resets,
			"faultCorrupted":    fs.Corrupted,
			"faultDelayed":      fs.Delayed,
			"faultThrottled":    fs.Throttled,
			"partitionRefusals": fs.PartitionRefusals,
		}
	})
	fmt.Printf("mocd: node %d of %d up; transport %s, rpc %s, %s over %s broadcast\n",
		*id, len(addrs), node.Addr(), rpc.Addr(), cons, *broadcast)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case <-done:
	case sig := <-sigs:
		fmt.Printf("mocd: node %d: %v\n", *id, sig)
	}

	// Ordered teardown: drain in-flight m-operations so every completed
	// record reaches the trace sink (a mid-batch teardown would lose
	// them). The store must close before the RPC server: client requests
	// that arrived during the drain are parked on the drained lanes, and
	// only Close fails them — closing the RPC server first would wait on
	// those parked handlers forever. Then the transport mesh, then seal
	// the trace file.
	if err := store.Drain(*drainWait); err != nil {
		fmt.Printf("mocd: node %d: drain: %v\n", *id, err)
	}
	store.Close()
	rpc.Close()
	node.Close()
	if traceW != nil {
		if err := traceW.Close(); err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
	}
	if monW != nil {
		// Drain already completed, so the final flush sees every record;
		// Close ships the tail and Fins the stream.
		monW.Close()
		sent, skippedRecs, _ := monW.Stats()
		fmt.Printf("mocd: node %d: streamed %d records to monitor (%d without version vectors skipped)\n", *id, sent, skippedRecs)
	}
	fmt.Printf("mocd: node %d down\n", *id)
	return nil
}

// parsePartitions parses the -partitions spec: semicolon-separated
// windows "p1,p2@start:heal" with flag-style durations.
func parsePartitions(spec string) ([]transport.PeerPartition, error) {
	if spec == "" {
		return nil, nil
	}
	var out []transport.PeerPartition
	for _, win := range strings.Split(spec, ";") {
		win = strings.TrimSpace(win)
		if win == "" {
			continue
		}
		peersPart, window, ok := strings.Cut(win, "@")
		if !ok {
			return nil, fmt.Errorf(`-partitions window %q: want "peers@start:heal"`, win)
		}
		startPart, healPart, ok := strings.Cut(window, ":")
		if !ok {
			return nil, fmt.Errorf(`-partitions window %q: want "peers@start:heal"`, win)
		}
		var p transport.PeerPartition
		for _, f := range splitList(peersPart) {
			peer, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("-partitions window %q: bad peer %q", win, f)
			}
			p.Peers = append(p.Peers, peer)
		}
		var err error
		if p.Start, err = time.ParseDuration(startPart); err != nil {
			return nil, fmt.Errorf("-partitions window %q: %v", win, err)
		}
		if p.Heal, err = time.ParseDuration(healPart); err != nil {
			return nil, fmt.Errorf("-partitions window %q: %v", win, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// staleInjector wraps a record sink with the -staleinject test hook: it
// lets n-1 eligible query records through, then reports the nth one
// version stale on its first footprint object — TSStart and TSEnd both
// decremented, exactly what a new/old-inversion read would have
// produced. Only the *reported* record is corrupted; the store's state
// and every later record are genuine, so a live verification service
// watching the stream must flag this record and nothing else. Eligible
// means a query that observed at least version 1 (decrementing version
// 0 would claim a negative version, a different violation class).
func staleInjector(n int, sink func(mop.Record)) func(mop.Record) {
	var mu sync.Mutex
	seen := 0
	return func(rec mop.Record) {
		mu.Lock()
		if !rec.Update && rec.TSStart != nil && rec.TSEnd != nil && seen < n {
			if ids := rec.Footprint.IDs(); len(ids) > 0 && rec.TSStart.Get(ids[0]) >= 1 {
				seen++
				if seen == n {
					x := ids[0]
					rec.TSStart = rec.TSStart.Clone()
					rec.TSEnd = rec.TSEnd.Clone()
					rec.TSStart.Set(x, rec.TSStart.Get(x)-1)
					rec.TSEnd.Set(x, rec.TSEnd.Get(x)-1)
				}
			}
		}
		mu.Unlock()
		sink(rec)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
