package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"moc/internal/checker"
	"moc/internal/history"
	"moc/internal/mocrpc"
)

// buildBinaries compiles mocd and mocload once per test run.
var buildBinaries = sync.OnceValues(func() (map[string]string, error) {
	dir, err := os.MkdirTemp("", "mocd-it")
	if err != nil {
		return nil, err
	}
	bins := make(map[string]string)
	for _, name := range []string{"mocd", "mocload"} {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "moc/cmd/"+name).CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	return bins, nil
})

// freeAddrs reserves n loopback ports and returns their addresses. The
// listeners are closed before the daemons start, so a parallel process
// could in principle steal a port — acceptable for a loopback test.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestClusterLoopback is the end-to-end acceptance test: n mocd
// daemons — separate OS processes — on loopback TCP, driven by the
// mocload binary with a mixed workload; the merged history mocload
// dumps must be accepted by the unchanged exact checkers. Runs under
// -short (it is part of the quick suite): the op counts are kept small
// so the NP-hard exact deciders stay fast.
func TestClusterLoopback(t *testing.T) {
	bins, err := buildBinaries()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name        string
		consistency string
		broadcast   string
		check       func(*history.History) (bool, error)
	}{
		// The token broadcast exercises the transport's replicated-
		// construction drop rule: only node 0's initial token injection
		// may reach the wire.
		{"msc-token", "msc", "token", func(h *history.History) (bool, error) {
			res, err := checker.MSequentiallyConsistent(h)
			if err != nil {
				return false, err
			}
			return res.Admissible, nil
		}},
		{"mlin-seq", "mlin", "seq", func(h *history.History) (bool, error) {
			res, err := checker.MLinearizable(h)
			if err != nil {
				return false, err
			}
			return res.Admissible, nil
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const n = 3
			peerAddrs := freeAddrs(t, n)
			clientAddrs := freeAddrs(t, n)
			peers := peerAddrs[0]
			clients := clientAddrs[0]
			for i := 1; i < n; i++ {
				peers += "," + peerAddrs[i]
				clients += "," + clientAddrs[i]
			}
			epoch := fmt.Sprint(time.Now().UnixNano())

			daemons := make([]*exec.Cmd, n)
			logs := make([]*bytes.Buffer, n)
			for i := 0; i < n; i++ {
				logs[i] = &bytes.Buffer{}
				cmd := exec.Command(bins["mocd"],
					"-id", fmt.Sprint(i), "-peers", peers, "-client", clientAddrs[i],
					"-consistency", tc.consistency, "-broadcast", tc.broadcast,
					"-objects", "a,b,c,d", "-epoch", epoch)
				cmd.Stdout, cmd.Stderr = logs[i], logs[i]
				if err := cmd.Start(); err != nil {
					t.Fatal(err)
				}
				daemons[i] = cmd
			}
			dumpLogs := func() {
				for i, buf := range logs {
					t.Logf("daemon %d output:\n%s", i, buf.String())
				}
			}
			defer func() {
				// Belt and braces: make sure no daemon outlives the test.
				for _, cmd := range daemons {
					if cmd.ProcessState == nil {
						cmd.Process.Kill()
						cmd.Wait()
					}
				}
			}()

			histPath := filepath.Join(t.TempDir(), "history.json")
			load := exec.Command(bins["mocload"],
				"-nodes", clients, "-objects", "a,b,c,d",
				"-ops", "6", "-readfrac", "0.5", "-span", "2", "-seed", "11",
				"-out", histPath)
			out, err := load.CombinedOutput()
			t.Logf("mocload output:\n%s", out)
			if err != nil {
				dumpLogs()
				t.Fatalf("mocload: %v", err)
			}

			// Orderly shutdown via RPC, then wait for clean exits.
			for i := 0; i < n; i++ {
				c, err := mocrpc.Dial(clientAddrs[i], 5*time.Second)
				if err != nil {
					dumpLogs()
					t.Fatalf("dial daemon %d for shutdown: %v", i, err)
				}
				if err := c.Shutdown(); err != nil {
					t.Errorf("shutdown daemon %d: %v", i, err)
				}
				c.Close()
			}
			for i, cmd := range daemons {
				if err := cmd.Wait(); err != nil {
					dumpLogs()
					t.Fatalf("daemon %d exited uncleanly: %v", i, err)
				}
			}

			blob, err := os.ReadFile(histPath)
			if err != nil {
				t.Fatal(err)
			}
			h, err := history.DecodeJSON(blob)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := h.Len()-1, n*6; got != want {
				t.Fatalf("merged history has %d m-operations, want %d", got, want)
			}
			ok, err := tc.check(h)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				dumpLogs()
				t.Fatalf("merged %s history over real TCP rejected by the exact checker", tc.consistency)
			}
		})
	}
}
