package main

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"moc/internal/checker"
	"moc/internal/core"
	"moc/internal/mocrpc"
)

// TestSigtermDrainsAndTraceMerges SIGTERMs a cluster while clients are
// mid-operation and checks the graceful-drain contract: every daemon
// exits cleanly, every trace file is complete (drained, not torn
// mid-batch), and the merged trace files form a history the unchanged
// exact checker accepts.
func TestSigtermDrainsAndTraceMerges(t *testing.T) {
	bins, err := buildBinaries()
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	peerAddrs := freeAddrs(t, n)
	clientAddrs := freeAddrs(t, n)
	peers := peerAddrs[0]
	for i := 1; i < n; i++ {
		peers += "," + peerAddrs[i]
	}
	epoch := fmt.Sprint(time.Now().UnixNano())
	traceDir := t.TempDir()

	daemons := make([]*exec.Cmd, n)
	logs := make([]*bytes.Buffer, n)
	tracePaths := make([]string, n)
	for i := 0; i < n; i++ {
		logs[i] = &bytes.Buffer{}
		tracePaths[i] = filepath.Join(traceDir, fmt.Sprintf("node%d.trace", i))
		cmd := exec.Command(bins["mocd"],
			"-id", fmt.Sprint(i), "-peers", peers, "-client", clientAddrs[i],
			"-consistency", "msc", "-broadcast", "seq",
			"-objects", "a,b", "-epoch", epoch,
			"-trace", tracePaths[i])
		cmd.Stdout, cmd.Stderr = logs[i], logs[i]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		daemons[i] = cmd
	}
	dumpLogs := func() {
		for i, buf := range logs {
			t.Logf("daemon %d output:\n%s", i, buf.String())
		}
	}
	defer func() {
		for _, cmd := range daemons {
			if cmd.ProcessState == nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	}()

	// Drive each daemon concurrently; errors after the SIGTERM point are
	// expected (the daemon fails parked requests during teardown), so
	// clients just stop on the first failure.
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := mocrpc.Dial(clientAddrs[i], 10*time.Second)
			if err != nil {
				t.Errorf("dial daemon %d: %v", i, err)
				return
			}
			defer c.Close()
			for j := 0; j < 8; j++ {
				val := int64(1 + i*100 + j)
				if _, err := c.Exec("write", []string{"a"}, []int64{val}, ""); err != nil {
					return
				}
				if _, err := c.Exec("sum", []string{"a", "b"}, nil, ""); err != nil {
					return
				}
			}
		}()
	}

	time.Sleep(150 * time.Millisecond)
	for i, cmd := range daemons {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("signal daemon %d: %v", i, err)
		}
	}
	wg.Wait()
	for i, cmd := range daemons {
		if err := cmd.Wait(); err != nil {
			dumpLogs()
			t.Fatalf("daemon %d exited uncleanly after SIGTERM: %v", i, err)
		}
	}

	traces := make([]core.Trace, n)
	total := 0
	for i, path := range tracePaths {
		tr, err := core.ReadTraceFile(path)
		if err != nil {
			dumpLogs()
			t.Fatalf("trace file %d: %v", i, err)
		}
		if tr.Node != i {
			t.Fatalf("trace file %d claims node %d", i, tr.Node)
		}
		traces[i] = tr
		total += len(tr.Records)
	}
	if total == 0 {
		dumpLogs()
		t.Fatal("no operations completed before SIGTERM")
	}

	recs, reg, cons, err := core.MergeTraces(traces...)
	if err != nil {
		t.Fatal(err)
	}
	if cons != core.MSequential {
		t.Fatalf("merged consistency %v", cons)
	}
	h, _, err := core.BuildHistory(reg, recs)
	if err != nil {
		dumpLogs()
		t.Fatalf("drained traces do not form a well-formed history: %v", err)
	}
	res, err := checker.MSequentiallyConsistent(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admissible {
		dumpLogs()
		t.Fatalf("drained-trace history (%d records) rejected by the exact m-SC checker", total)
	}
	t.Logf("merged %d drained records across %d trace files", total, n)
}
