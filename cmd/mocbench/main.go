// Command mocbench regenerates the experiments of the reproduction
// (DESIGN.md, E1–E18 plus ablations A1–A2): the figures of Mittal &
// Garg (1998) as traces, the complexity separations as tables, and the
// protocol cost model as measurements.
//
// Usage:
//
//	mocbench [-quick] [-run E3]        # one experiment
//	mocbench [-quick]                  # all experiments
//	mocbench -list                     # list experiment IDs
//	mocbench -json [-run E14] [-quick] # write BENCH_<id>.json reports
//
// With -json, the measurement experiments (those with machine-readable
// reports: E7, E13, E14, E15, E17, E18) are re-run and each report is written to
// BENCH_<id>.json in the current directory. Combining -json with -run
// restricts the set to one experiment; asking for one without JSON
// support is an error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"moc/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mocbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.String("run", "", "experiment ID to run (empty = all)")
		quick    = flag.Bool("quick", false, "reduced sizes for a fast pass")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonFlag = flag.Bool("json", false, "write BENCH_<id>.json reports instead of text tables")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *jsonFlag {
		return writeReports(*id, *quick)
	}
	if *id != "" {
		return bench.Run(*id, os.Stdout, *quick)
	}
	return bench.RunAll(os.Stdout, *quick)
}

// writeReports writes BENCH_<id>.json for the selected experiment, or
// for every experiment with JSON support when id is empty.
func writeReports(id string, quick bool) error {
	var ids []string
	if id != "" {
		ids = []string{id}
	} else {
		for _, e := range bench.Experiments() {
			if e.JSON != nil {
				ids = append(ids, e.ID)
			}
		}
	}
	for _, id := range ids {
		rep, err := bench.RunJSON(id, quick)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		name := fmt.Sprintf("BENCH_%s.json", id)
		if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println(name)
	}
	return nil
}
