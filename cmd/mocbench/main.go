// Command mocbench regenerates the experiments of the reproduction
// (DESIGN.md, E1–E12 plus ablations A1–A2): the figures of Mittal &
// Garg (1998) as traces, the complexity separations as tables, and the
// protocol cost model as measurements.
//
// Usage:
//
//	mocbench [-quick] [-run E3]        # one experiment
//	mocbench [-quick]                  # all experiments
//	mocbench -list                     # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"moc/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mocbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id    = flag.String("run", "", "experiment ID to run (empty = all)")
		quick = flag.Bool("quick", false, "reduced sizes for a fast pass")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *id != "" {
		return bench.Run(*id, os.Stdout, *quick)
	}
	return bench.RunAll(os.Stdout, *quick)
}
