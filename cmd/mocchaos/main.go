// Command mocchaos runs a seeded chaos campaign against a real mocd
// cluster on loopback TCP: socket-level fault injection (resets,
// corruption, a timed partition), one SIGKILL + checkpoint rejoin, and
// a paced workload whose merged kill-safe traces are validated by the
// exact checkers. It is the CLI face of internal/chaos — the same
// campaign the chaos-smoke test and the E18 experiment run.
//
//	mocchaos -seed 23 -n 3 -kill 2 -phasea 2s -phaseb 1.5s -phasec 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"moc/internal/chaos"
	"moc/internal/monitor"
	"moc/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mocchaos:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mocdBin     = flag.String("mocd", "", "path to a built mocd binary (empty = go build one into a temp dir)")
		n           = flag.Int("n", 3, "daemons in the cluster")
		objects     = flag.String("objects", "a,b,c", "comma-separated shared object names")
		consistency = flag.String("consistency", "msc", `consistency condition: "msc" or "mlin"`)
		seed        = flag.Int64("seed", 23, "campaign seed (drives fault injection and the workload mix)")
		resetProb   = flag.Float64("resetprob", 0.05, "socket reset probability per outbound frame")
		corruptProb = flag.Float64("corruptprob", 0.05, "frame corruption probability per outbound frame")
		partNode    = flag.Int("partnode", 1, "daemon carrying the partition window (-1 = none)")
		partitions  = flag.String("partitions", "0@250ms:600ms", "partition windows for -partnode (mocd -partitions syntax)")
		kill        = flag.Int("kill", 2, "daemon to SIGKILL at the phase A/B boundary (must not be 0, the sequencer host)")
		phaseA      = flag.Duration("phasea", 2*time.Second, "phase A length (full cluster under faults)")
		phaseB      = flag.Duration("phaseb", 1500*time.Millisecond, "phase B length (one daemon down)")
		phaseC      = flag.Duration("phasec", 2*time.Second, "phase C length (after checkpoint rejoin)")
		pace        = flag.Duration("pace", 50*time.Millisecond, "per-worker gap between operations (bounds the merged history for the exact checkers)")
		readFrac    = flag.Float64("readfrac", 0.5, "fraction of query operations")
		callTimeout = flag.Duration("calltimeout", 2*time.Second, "per-RPC deadline")
		recoverWait = flag.Duration("recoverwait", time.Second, "restarted daemon's checkpoint solicitation wait")
		liveMon     = flag.Bool("monitor", false, "run an in-process live verification service (internal/verify) and stream every daemon's records to it; the campaign fails on any online violation")
		monWindow   = flag.Int("monwindow", 1<<18, "live verification GC window in records (with -monitor)")
		jsonOut     = flag.String("json", "", "write the full campaign result as JSON to this file (- = stdout)")
	)
	flag.Parse()

	bin := *mocdBin
	if bin == "" {
		dir, err := os.MkdirTemp("", "mocchaos")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		if bin, err = chaos.BuildMocd(dir, false); err != nil {
			return err
		}
	}
	traceDir, err := os.MkdirTemp("", "mocchaos-traces")
	if err != nil {
		return err
	}
	defer os.RemoveAll(traceDir)

	var svc *verify.Service
	var monitorAddr string
	if *liveMon {
		streamLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		svc = verify.NewService(streamLn, nil, verify.ServiceConfig{Window: *monWindow}, nil)
		monitorAddr = streamLn.Addr().String()
		fmt.Printf("live verification: streaming to in-process service at %s (window %d)\n", monitorAddr, *monWindow)
	}

	res, err := chaos.RunCampaign(chaos.CampaignConfig{
		Cluster: chaos.ClusterConfig{
			MocdBin:       bin,
			Dir:           traceDir,
			N:             *n,
			Objects:       splitList(*objects),
			Consistency:   *consistency,
			Seed:          *seed,
			ResetProb:     *resetProb,
			CorruptProb:   *corruptProb,
			PartitionNode: *partNode,
			Partitions:    *partitions,
			QueryTimeout:  time.Second,
			RecoverWait:   *recoverWait,
			MonitorAddr:   monitorAddr,
		},
		Kill:        *kill,
		PhaseA:      *phaseA,
		PhaseB:      *phaseB,
		PhaseC:      *phaseC,
		Pace:        *pace,
		ReadFrac:    *readFrac,
		CallTimeout: *callTimeout,
	})
	if err != nil {
		if res != nil {
			for i, log := range res.Logs {
				fmt.Fprintf(os.Stderr, "daemon %d output:\n%s\n", i, log)
			}
		}
		return err
	}

	fmt.Printf("campaign: %d attempts, %d ok, %d unavailable, %d indeterminate, %d server errors\n",
		res.Attempts, res.OK, res.Unavailable, res.Indeterminate, res.ServerErrors)
	fmt.Printf("latency: p50 %v, p99 %v (first-attempt to success, retries included)\n", res.P50, res.P99)
	fmt.Printf("schedule: kill node %d at %v, restart at %v; recoveries=%d\n",
		*kill, res.KillAt.Round(time.Millisecond), res.RestartAt.Round(time.Millisecond), res.Recoveries)
	fmt.Printf("injected: %d resets, %d corruptions, %d partition refusals\n",
		res.FaultResets, res.FaultCorrupted, res.PartitionRefusals)
	fmt.Println("availability timeline (per bucket: ok/attempts):")
	for _, b := range res.Buckets {
		marker := ""
		if res.KillAt >= b.Start && res.KillAt < b.Start+100*time.Millisecond {
			marker = "  <- SIGKILL"
		}
		if res.RestartAt >= b.Start && res.RestartAt < b.Start+100*time.Millisecond {
			marker += "  <- restart"
		}
		fmt.Printf("  %6v  %3d/%-3d %s%s\n", b.Start.Round(time.Millisecond), b.OK, b.Attempts,
			bar(b.OK, b.Attempts), marker)
	}
	verdict := "ACCEPTED"
	if !res.Accepted {
		verdict = "REJECTED"
	}
	fmt.Printf("merged history: %d records, exact checker: %s\n", res.Records, verdict)

	var monViolations []monitor.Violation
	if svc != nil {
		svc.Close()
		if pipe := svc.Pipeline(); pipe != nil {
			monViolations = pipe.Finish()
			st := pipe.Snapshot()
			fmt.Printf("live verification: %d records verified online, %d violations, %d dangling (kill-lost writers), heap high water %.1f MB\n",
				st.Released, len(monViolations), st.Monitor.DanglingReads+st.Checker.DanglingReads,
				float64(st.HeapHW)/(1<<20))
			for i, v := range monViolations {
				if i == 10 {
					fmt.Printf("  ... %d more\n", len(monViolations)-10)
					break
				}
				fmt.Printf("  %s\n", v)
			}
		} else {
			fmt.Println("live verification: no daemon stream ever connected")
		}
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if *jsonOut == "-" {
			fmt.Println(string(blob))
		} else if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			return err
		}
	}
	if !res.Accepted {
		return fmt.Errorf("exact checker rejected the merged chaos history")
	}
	if len(monViolations) > 0 {
		return fmt.Errorf("live verification flagged %d violations", len(monViolations))
	}
	return nil
}

func bar(ok, total int64) string {
	if total == 0 {
		return ""
	}
	width := int(ok * 20 / total)
	s := ""
	for i := 0; i < 20; i++ {
		if i < width {
			s += "#"
		} else {
			s += "."
		}
	}
	return s
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if part := s[start:i]; part != "" {
				out = append(out, part)
			}
			start = i + 1
		}
	}
	return out
}
