// Package moc (Multi-Object Consistency) is a Go implementation of
// Mittal & Garg, "Consistency Conditions for Multi-Object Distributed
// Operations" (ICDCS 1998): a replicated multi-object shared memory
// whose operations — m-operations — atomically span several objects,
// with a pluggable consistency condition, full execution recording, and
// checkers for the paper's consistency conditions.
//
// # Quickstart
//
//	s, err := moc.New(moc.Config{
//		Procs:       3,
//		Objects:     []string{"x", "y"},
//		Consistency: moc.MLinearizable,
//	})
//	if err != nil { ... }
//	defer s.Close()
//
//	p0, _ := s.Process(0)
//	x, _ := s.Object("x")
//	y, _ := s.Object("y")
//	_ = p0.MAssign(map[moc.ObjectID]moc.Value{x: 1, y: 2})
//	ok, _ := p0.DCAS(x, y, 1, 2, 10, 20) // atomic two-object CAS
//	_ = ok
//
//	// Per-request consistency: trade freshness guarantees for latency.
//	r, _ := p0.Exec(moc.MultiRead{Xs: []moc.ObjectID{x, y}},
//		moc.ExecOptions{Level: moc.Quorum})
//	_ = r.Value // plus r.Level, r.Responders, r.IsConsistent
//
//	res, _ := s.Verify() // re-check m-linearizability of the whole run
//
// # What is inside
//
//   - The formal model of Section 2 (histories, reads-from, legality,
//     admissibility) lives in internal/history.
//   - The exact NP-hard deciders for m-sequential consistency,
//     m-linearizability and m-normality (Theorems 1–2), the polynomial
//     Theorem 7 procedure for constrained executions, and Misra's
//     polynomial single-object case live in internal/checker; the most
//     useful entry points are re-exported below.
//   - The Section 5 protocols (Figures 4 and 6) live in internal/msc and
//     internal/mlin, over a simulated asynchronous network
//     (internal/network) and two from-scratch atomic broadcast
//     implementations (internal/abcast).
//   - The database-schedule substrate of the Theorem 2 reduction lives
//     in internal/serial.
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// per-figure reproduction results; `go run ./cmd/mocbench` regenerates
// them.
package moc

import (
	"moc/internal/checker"
	"moc/internal/core"
	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/object"
)

// Store, configuration and handles (see internal/core).
type (
	// Config parameterizes New.
	Config = core.Config
	// Store is a replicated multi-object shared memory.
	Store = core.Store
	// Process is a handle to one sequential process of a Store.
	Process = core.Process
	// Consistency selects the consistency condition a Store implements.
	Consistency = core.Consistency
	// BroadcastKind selects the atomic broadcast implementation.
	BroadcastKind = core.BroadcastKind
	// VerifyResult is the outcome of Store.Verify.
	VerifyResult = core.VerifyResult
	// ExecOptions tunes one Process.Exec call (per-request consistency
	// level); the zero value requests the store's native behavior.
	ExecOptions = core.ExecOptions
	// Result is what Process.Exec returns: the procedure's value plus
	// the certified consistency level, the responders that contributed,
	// and whether the certified level honors the requested one.
	Result = core.Result
	// Level is a per-request consistency level (One, Quorum, All).
	Level = core.Level
	// Future is a pending asynchronous m-operation (Process.ExecAsync).
	Future = core.Future
)

// Per-request consistency levels for m-linearizable stores. ONE reads
// the issuer's replica (session-monotonic, m-SC strength); QUORUM
// completes a query once a majority of replicas answered; ALL solicits
// every replica (the Figure 6 behavior, and the default).
const (
	One    = core.One
	Quorum = core.Quorum
	All    = core.All
)

// Object identity and values (see internal/object).
type (
	// ObjectID is the dense index of a shared object.
	ObjectID = object.ID
	// Value is the value stored in a shared object.
	Value = object.Value
	// ObjectSet is an immutable set of object IDs; procedures declare
	// their footprints with it.
	ObjectSet = object.Set
)

// NewObjectSet builds a footprint set for custom procedures (Func).
func NewObjectSet(ids ...ObjectID) ObjectSet { return object.NewSet(ids...) }

// Executable m-operations (see internal/mop).
type (
	// Procedure is a deterministic m-operation.
	Procedure = mop.Procedure
	// Txn is the object-access interface a Procedure runs against.
	Txn = mop.Txn
	// ReadOp, WriteOp, MultiRead, Sum, MAssign, CAS, DCAS, Transfer and
	// Func are the ready-made multi-object operations.
	ReadOp    = mop.ReadOp
	WriteOp   = mop.WriteOp
	MultiRead = mop.MultiRead
	Sum       = mop.Sum
	MAssign   = mop.MAssign
	CAS       = mop.CAS
	DCAS      = mop.DCAS
	Transfer  = mop.Transfer
	Func      = mop.Func
)

// Histories and checking (see internal/history and internal/checker).
type (
	// History is a recorded execution history (Section 2.2).
	History = history.History
	// Sequence is a candidate legal sequential history.
	Sequence = history.Sequence
	// CheckResult is the outcome of the exact deciders.
	CheckResult = checker.Result
)

// Consistency conditions (Section 2.3).
const (
	// MSequential is m-sequential consistency: local queries, broadcast
	// updates (Figure 4).
	MSequential = core.MSequential
	// MLinearizable is m-linearizability: queries additionally collect
	// the freshest versions from all processes (Figure 6).
	MLinearizable = core.MLinearizable
	// MLinearizableLocking is m-linearizability under the OO-constraint:
	// per-object homes with ordered exclusive locking (sharding instead
	// of replication, Section 4's object-level synchronization).
	MLinearizableLocking = core.MLinearizableLocking
	// MCausal is m-causal consistency (extension beyond the paper's own
	// protocols): updates apply locally and disseminate causally.
	MCausal = core.MCausal
)

// Atomic broadcast implementations.
const (
	// SequencerBroadcast routes updates through a fixed sequencer.
	SequencerBroadcast = core.SequencerBroadcast
	// LamportBroadcast totally orders updates with Lamport clocks and
	// all-to-all acknowledgements.
	LamportBroadcast = core.LamportBroadcast
	// TokenBroadcast totally orders updates with a circulating token.
	TokenBroadcast = core.TokenBroadcast
)

// New builds and starts a replicated multi-object store.
func New(cfg Config) (*Store, error) { return core.New(cfg) }

// CheckMSequential decides m-sequential consistency of a history with
// the exact (NP-hard, Theorem 1) decider.
func CheckMSequential(h *History) (CheckResult, error) {
	return checker.MSequentiallyConsistent(h)
}

// CheckMLinearizable decides m-linearizability of a history with the
// exact (NP-hard, Theorem 2) decider.
func CheckMLinearizable(h *History) (CheckResult, error) {
	return checker.MLinearizable(h)
}

// CheckMNormal decides m-normality of a history with the exact decider.
func CheckMNormal(h *History) (CheckResult, error) {
	return checker.MNormal(h)
}

// CheckMCausal decides m-causal consistency of a history (per-process
// views, exact decision).
func CheckMCausal(h *History) (checker.CausalResult, error) {
	return checker.MCausallyConsistent(h)
}

// DecodeHistory parses a history from its JSON interchange form (the
// format emitted by history JSON marshalling and cmd/mocsim -json).
func DecodeHistory(data []byte) (*History, error) {
	return history.DecodeJSON(data)
}
