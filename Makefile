# Tier-1 verification entry points. `make verify` is what CI and the
# pre-merge check run: vet plus the full suite under the race detector,
# so the network/protocol shutdown paths and the chaos tests are always
# exercised with -race. Chaos tests honor -short (see `make quick`).

GO ?= go

.PHONY: build test race vet verify quick bench codec-gate chaos-smoke monitor-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# codec-gate = wire-codec checks that need a non-race build: the frame
# fuzz seed corpus (every registered kind under both codecs, plus
# hostile prefixes) and the send-path allocation gates. The race
# detector disables sync.Pool reuse, which charges the pooled frame
# buffer to every encode, so the zero-allocs assertions only hold
# without -race — hence the separate invocation.
codec-gate:
	$(GO) test ./internal/transport/ -run 'FuzzReadFrame|TestSendPathZeroAllocs' -count=1
	$(GO) test ./internal/bench/ -run TestE17EncodeCostSeparatesCodecs -count=1

# chaos-smoke = the seeded chaos acceptance run: race-instrumented mocd
# daemons on loopback TCP under socket resets, frame corruption and a
# timed partition, one SIGKILL + checkpoint-transfer rejoin, and the
# merged kill-safe traces validated by the unchanged exact checker. One
# seed drives the whole campaign, so a failure reproduces.
chaos-smoke:
	$(GO) test ./internal/chaos/ -race -run TestChaosSmoke -count=1 -v

# monitor-smoke = the live-verification acceptance run: real daemons
# stream every completed record over TCP to an in-process mocmon
# pipeline while one daemon is SIGKILLed and restarted (zero violations,
# restart visible as a superseded stream generation), then a planted
# stale read (mocd -staleinject) must be flagged online as Lemma 16.
monitor-smoke:
	$(GO) test ./internal/chaos/ -race -run TestMonitorSmoke -count=1 -v

# verify = the tier-1 gate: vet + race-enabled tests + codec gates +
# the seeded chaos campaign + the live-verification smoke.
verify: vet race codec-gate chaos-smoke monitor-smoke

# quick = the fast loop: -short trims the chaos/stress iteration counts.
quick:
	$(GO) test -short -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .
