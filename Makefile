# Tier-1 verification entry points. `make verify` is what CI and the
# pre-merge check run: vet plus the full suite under the race detector,
# so the network/protocol shutdown paths and the chaos tests are always
# exercised with -race. Chaos tests honor -short (see `make quick`).

GO ?= go

.PHONY: build test race vet verify quick bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify = the tier-1 gate: vet + race-enabled tests.
verify: vet race

# quick = the fast loop: -short trims the chaos/stress iteration counts.
quick:
	$(GO) test -short -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .
