# Tier-1 verification entry points. `make verify` is what CI and the
# pre-merge check run: vet plus the full suite under the race detector,
# so the network/protocol shutdown paths and the chaos tests are always
# exercised with -race. Chaos tests honor -short (see `make quick`).

GO ?= go

.PHONY: build test race vet verify quick bench codec-gate chaos-smoke monitor-smoke shard-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# codec-gate = wire-codec checks that need a non-race build: the frame
# fuzz seed corpus (every registered kind under both codecs, plus
# hostile prefixes) and the send-path allocation gates. The race
# detector disables sync.Pool reuse, which charges the pooled frame
# buffer to every encode, so the zero-allocs assertions only hold
# without -race — hence the separate invocation.
codec-gate:
	$(GO) test ./internal/transport/ -run 'FuzzReadFrame|TestSendPathZeroAllocs' -count=1
	$(GO) test ./internal/bench/ -run TestE17EncodeCostSeparatesCodecs -count=1
	$(GO) test ./internal/shard/ -run FuzzRouting -count=1

# shard-smoke = the sharding acceptance pair, race-instrumented: the
# randomized cross-shard interleaving test in short mode (seeded
# adversarial schedules over the ticket/commit merge, every history
# through the unchanged exact checker) plus the sharded chaos cell (one
# lane coordinator SIGKILLed mid-campaign; the surviving shard must keep
# serving and the merged traces must verify).
shard-smoke:
	$(GO) test ./internal/core/ -race -short -run TestShardInterleaving -count=1 -v
	$(GO) test ./internal/chaos/ -race -run TestChaosShardedLaneKill -count=1 -v

# chaos-smoke = the seeded chaos acceptance run: race-instrumented mocd
# daemons on loopback TCP under socket resets, frame corruption and a
# timed partition, one SIGKILL + checkpoint-transfer rejoin, and the
# merged kill-safe traces validated by the unchanged exact checker. One
# seed drives the whole campaign, so a failure reproduces.
chaos-smoke:
	$(GO) test ./internal/chaos/ -race -run TestChaosSmoke -count=1 -v

# monitor-smoke = the live-verification acceptance run: real daemons
# stream every completed record over TCP to an in-process mocmon
# pipeline while one daemon is SIGKILLed and restarted (zero violations,
# restart visible as a superseded stream generation), then a planted
# stale read (mocd -staleinject) must be flagged online as Lemma 16.
monitor-smoke:
	$(GO) test ./internal/chaos/ -race -run TestMonitorSmoke -count=1 -v

# verify = the tier-1 gate: vet + race-enabled tests + codec gates +
# the seeded chaos campaign + the live-verification smoke. The full
# (non-short) interleaving soak and sharded chaos cell already run
# inside `race`; shard-smoke is the fast standalone cut CI reuses.
verify: vet race codec-gate chaos-smoke monitor-smoke

# quick = the fast loop: -short trims the chaos/stress iteration counts.
quick:
	$(GO) test -short -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .
