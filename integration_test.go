package moc_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end (each one
// asserts its own invariants and exits non-zero on violation), locking
// the examples against API or protocol regressions.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short")
	}
	examples := []string{"quickstart", "dcas", "banking", "registers", "queue"}
	for _, ex := range examples {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+ex).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", ex)
			}
		})
	}
}

// TestCLIPipelines exercises the command-line tools end to end:
// mocsim runs and verifies; its JSON output feeds moccheck; mocbench
// lists and runs an experiment.
func TestCLIPipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipelines skipped in -short")
	}
	t.Run("mocsim+moccheck", func(t *testing.T) {
		t.Parallel()
		sim := exec.Command("go", "run", "./cmd/mocsim",
			"-json", "-consistency", "mlin", "-procs", "2", "-objects", "2", "-ops", "2", "-seed", "3")
		simOut, err := sim.Output() // stderr (summary) discarded
		if err != nil {
			t.Fatalf("mocsim: %v", err)
		}
		check := exec.Command("go", "run", "./cmd/moccheck", "-condition", "mlin", "-")
		check.Stdin = strings.NewReader(string(simOut))
		out, err := check.CombinedOutput()
		if err != nil {
			t.Fatalf("moccheck: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "RESULT: satisfied") {
			t.Fatalf("moccheck output: %s", out)
		}
	})
	t.Run("mocbench list+run", func(t *testing.T) {
		t.Parallel()
		out, err := exec.Command("go", "run", "./cmd/mocbench", "-list").CombinedOutput()
		if err != nil {
			t.Fatalf("mocbench -list: %v\n%s", err, out)
		}
		for _, want := range []string{"E1", "E12", "A2"} {
			if !strings.Contains(string(out), want) {
				t.Fatalf("mocbench -list missing %s:\n%s", want, out)
			}
		}
		out, err = exec.Command("go", "run", "./cmd/mocbench", "-quick", "-run", "E2").CombinedOutput()
		if err != nil {
			t.Fatalf("mocbench -run E2: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "admissible=true") {
			t.Fatalf("E2 output:\n%s", out)
		}
	})
	t.Run("mocsim all protocols", func(t *testing.T) {
		t.Parallel()
		for _, cons := range []string{"msc", "mlin", "oolock", "causal"} {
			out, err := exec.Command("go", "run", "./cmd/mocsim",
				"-consistency", cons, "-procs", "2", "-objects", "2", "-ops", "2", "-seed", "5").CombinedOutput()
			if err != nil {
				t.Fatalf("mocsim %s: %v\n%s", cons, err, out)
			}
			if !strings.Contains(string(out), "verified: true") {
				t.Fatalf("mocsim %s did not verify:\n%s", cons, out)
			}
		}
	})
}
