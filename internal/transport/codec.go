// Frame codec for the TCP transport: each network message crosses the
// wire as a length-prefixed gob frame. Payloads travel inside the
// frame's `any` slot, so every protocol payload type must be registered
// with encoding/gob — each protocol package does so in its wire.go
// (abcast, msc, mlin, recovery), and mop registers the declarative
// procedure types that ride inside update payloads. The registry is
// keyed by package-qualified type names, so protocol payload types stay
// unexported.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// maxFrame bounds a single frame's encoded size; a larger length prefix
// indicates a corrupt or hostile stream and kills the connection.
const maxFrame = 32 << 20

// wireFrame is the on-the-wire representation of one network.Message,
// tagged with the logical channel that must receive it.
type wireFrame struct {
	Channel string
	From    int
	To      int
	Kind    string
	Payload any
	Bytes   int
}

// encodeFrame serializes f as [4-byte big-endian length][gob bytes],
// ready for a single conn.Write. Encoding happens at Send time so an
// unregistered payload type surfaces as the Send error, not as a silent
// drop in the writer goroutine.
func encodeFrame(f wireFrame) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("transport: encode %q payload %T: %w", f.Kind, f.Payload, err)
	}
	b := buf.Bytes()
	if len(b)-4 > maxFrame {
		return nil, fmt.Errorf("transport: frame %q exceeds %d bytes", f.Kind, maxFrame)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	return b, nil
}

// readFrame reads one length-prefixed frame from r and decodes it.
func readFrame(r io.Reader) (wireFrame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return wireFrame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return wireFrame{}, fmt.Errorf("transport: frame length %d exceeds %d", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return wireFrame{}, err
	}
	var f wireFrame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return wireFrame{}, fmt.Errorf("transport: decode frame: %w", err)
	}
	return f, nil
}
