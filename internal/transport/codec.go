// Frame codec for the TCP transport. Each network message crosses the
// wire as one length-prefixed frame:
//
//	[4-byte big-endian length][1 codec byte][body]
//
// The length counts the codec byte plus the body, so frames
// concatenate into exactly the stream the reader expects (the writer
// coalesces bursts this way). The codec byte selects the body
// encoding per frame — codecBinary (the default, see internal/wire)
// or codecGob (the `-codec=gob` fallback) — so a reader understands
// either encoding regardless of which one its own node sends.
//
// The binary body is: channel string, from varint, to varint, kind
// string, bytes varint, then the payload as a wire `any` slot (uvarint
// tag + the registered type's own encoding). The gob body is a gob
// stream of the wireFrame struct. Every protocol payload type is
// registered with internal/wire in its package's wire.go (abcast, msc,
// mlin, recovery, mop), which covers both codecs at once.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"moc/internal/wire"
)

// maxFrame bounds a single frame's encoded size; a larger length prefix
// indicates a corrupt or hostile stream and kills the connection.
const maxFrame = 32 << 20

// Codec names accepted by Config.Codec and the daemons' -codec flag.
const (
	CodecBinary = "binary"
	CodecGob    = "gob"
)

// On-the-wire codec bytes. These are wire format: never renumber.
const (
	codecGob    byte = 1
	codecBinary byte = 2
)

// ErrFrameTooLarge reports a frame whose length prefix exceeds
// maxFrame. The reader treats it as a hostile or corrupt stream and
// closes the connection rather than allocating the promised buffer.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// ErrBadFrame reports a frame that is structurally invalid: an unknown
// codec byte, an empty frame, or a body that fails to decode. The
// reader closes the connection — after framing is lost there is no way
// to resynchronize the stream.
var ErrBadFrame = errors.New("transport: malformed frame")

// codecByte maps a Config.Codec name to its wire byte ("" selects the
// binary default).
func codecByte(name string) (byte, error) {
	switch name {
	case "", CodecBinary:
		return codecBinary, nil
	case CodecGob:
		return codecGob, nil
	}
	return 0, fmt.Errorf("transport: unknown codec %q (want %q or %q)", name, CodecBinary, CodecGob)
}

// wireFrame is the on-the-wire representation of one network.Message,
// tagged with the logical channel that must receive it.
type wireFrame struct {
	Channel string
	From    int
	To      int
	Kind    string
	Payload any
	Bytes   int
}

// frameBuf is a pooled frame buffer. Send encodes into one, the peer
// writer copies it into its write buffer and returns it to the pool, so
// the steady-state send path allocates nothing. The pool holds
// pointers: a *frameBuf converts to `any` without boxing a new
// allocation on every Put.
type frameBuf struct{ b []byte }

var framePool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 512)} }}

func getFrameBuf() *frameBuf { return framePool.Get().(*frameBuf) }

func putFrameBuf(fb *frameBuf) {
	// Don't let one giant frame pin its buffer in the pool forever.
	if cap(fb.b) > maxCoalesce {
		return
	}
	fb.b = fb.b[:0]
	framePool.Put(fb)
}

// encodeFrame appends one encoded frame (length prefix, codec byte,
// body) to fb.b. Encoding happens at Send time so an unregistered
// payload type surfaces as the Send error, not as a silent drop in the
// writer goroutine.
func encodeFrame(codec byte, f wireFrame, fb *frameBuf) error {
	start := len(fb.b)
	fb.b = append(fb.b, 0, 0, 0, 0, codec)
	var err error
	switch codec {
	case codecBinary:
		fb.b, err = appendBinaryBody(fb.b, f)
	case codecGob:
		var buf bytes.Buffer
		if err = gob.NewEncoder(&buf).Encode(f); err == nil {
			fb.b = append(fb.b, buf.Bytes()...)
		}
	default:
		err = fmt.Errorf("%w: codec byte %d", ErrBadFrame, codec)
	}
	if err != nil {
		fb.b = fb.b[:start]
		return fmt.Errorf("transport: encode %q payload %T: %w", f.Kind, f.Payload, err)
	}
	n := len(fb.b) - start - 4 // codec byte + body
	if n > maxFrame {
		fb.b = fb.b[:start]
		return fmt.Errorf("%w: %q frame is %d bytes (limit %d)", ErrFrameTooLarge, f.Kind, n, maxFrame)
	}
	binary.BigEndian.PutUint32(fb.b[start:], uint32(n))
	return nil
}

func appendBinaryBody(b []byte, f wireFrame) ([]byte, error) {
	b = wire.AppendString(b, f.Channel)
	b = wire.AppendVarint(b, int64(f.From))
	b = wire.AppendVarint(b, int64(f.To))
	b = wire.AppendString(b, f.Kind)
	b = wire.AppendVarint(b, int64(f.Bytes))
	return wire.AppendAny(b, f.Payload)
}

// readFrame reads one frame from r into *scratch (grown as needed and
// reused across calls — every decoded value copies out of it) and
// decodes it. Oversized length prefixes return ErrFrameTooLarge and
// malformed frames ErrBadFrame, both before any hostile-length
// allocation; the caller must treat either as fatal for the connection.
func readFrame(r io.Reader, scratch *[]byte) (wireFrame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return wireFrame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return wireFrame{}, fmt.Errorf("%w: length prefix %d (limit %d)", ErrFrameTooLarge, n, maxFrame)
	}
	if n == 0 {
		return wireFrame{}, fmt.Errorf("%w: empty frame", ErrBadFrame)
	}
	if cap(*scratch) < int(n) {
		*scratch = make([]byte, n)
	}
	body := (*scratch)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return wireFrame{}, err
	}
	switch body[0] {
	case codecBinary:
		return decodeBinaryBody(body[1:])
	case codecGob:
		var f wireFrame
		if err := gob.NewDecoder(bytes.NewReader(body[1:])).Decode(&f); err != nil {
			return wireFrame{}, fmt.Errorf("%w: gob body: %v", ErrBadFrame, err)
		}
		return f, nil
	}
	return wireFrame{}, fmt.Errorf("%w: unknown codec byte %d", ErrBadFrame, body[0])
}

func decodeBinaryBody(body []byte) (wireFrame, error) {
	d := wire.NewDecoder(body)
	f := wireFrame{
		Channel: d.String(),
		From:    d.Int(),
		To:      d.Int(),
		Kind:    d.String(),
		Bytes:   d.Int(),
	}
	f.Payload = d.Any()
	if err := d.Err(); err != nil {
		return wireFrame{}, fmt.Errorf("%w: binary body: %v", ErrBadFrame, err)
	}
	if d.Remaining() != 0 {
		return wireFrame{}, fmt.Errorf("%w: %d trailing bytes after binary body", ErrBadFrame, d.Remaining())
	}
	return f, nil
}
