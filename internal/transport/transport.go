// Package transport implements network.Link over real TCP connections,
// letting the §5 protocol stacks (m-SC and m-lin over atomic broadcast)
// run across OS processes instead of the in-memory simulated network.
//
// One Node per process multiplexes every logical channel ("abcast",
// "mlin.query", "recovery") over a single listener and one outbound
// connection per peer. Endpoints are mapped to processes by
// owner(e) = e mod len(addrs), which places protocol endpoint p on
// daemon p and the fixed sequencer's dedicated endpoint n back on
// daemon 0. Frames are length-prefixed and carry a per-frame codec byte
// (see codec.go) selecting the zero-copy binary codec (default) or the
// gob fallback; they are encoded at Send time into pooled buffers so
// callers observe codec errors and the steady-state send path does not
// allocate. Outbound connections dial lazily with exponential backoff
// and reconnect after failures, counting re-establishments in
// Stats.Reconnects and frames eligible for resend after a mid-frame
// write error in Stats.Retransmitted.
//
// Unlike the simulated network, every daemon constructs the full
// protocol stack, so constructors replicate bootstrap sends on all
// nodes (e.g. the token ring's initial token injection at endpoint 0).
// Sends whose from-endpoint is not locally owned are therefore dropped
// silently (counted in Stats.Dropped): the owning node performs the
// authoritative send.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"moc/internal/network"
)

// Config describes one node of a transport cluster.
type Config struct {
	// Self is this node's index into Addrs.
	Self int
	// Addrs lists every node's listen address, in node-index order.
	// The same slice must be given to every node.
	Addrs []string
	// Listener optionally supplies a pre-bound listener (e.g. one
	// opened on port 0 to learn its address before the cluster's
	// address list is assembled). When nil, Listen binds Addrs[Self].
	Listener net.Listener
	// DialTimeout bounds a single outbound dial attempt. Default 2s.
	DialTimeout time.Duration
	// RetryBase and RetryMax bound the exponential dial backoff.
	// Defaults 5ms and 1s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// InboxSize is the per-endpoint delivery buffer on each channel.
	// Default 4096.
	InboxSize int
	// Codec names the frame body encoding this node sends: CodecBinary
	// (the default) or CodecGob. Receiving is always codec-agnostic —
	// every frame carries its own codec byte — so nodes with different
	// Codec settings interoperate.
	Codec string
	// Faults optionally injects socket-level faults (resets, corruption,
	// latency, throttling, timed partitions) on this node's outbound
	// connections. See faults.go. Nil injects nothing.
	Faults *Faults
	// Seed drives the dial-backoff jitter (each peer gets a derived
	// stream so retries desynchronize across peers and nodes). 0 seeds
	// from the clock, which is fine for jitter: tests that need
	// reproducible backoff pass an explicit seed.
	Seed int64
}

const (
	defaultDialTimeout = 2 * time.Second
	defaultRetryBase   = 5 * time.Millisecond
	defaultRetryMax    = time.Second
	defaultInboxSize   = 4096
	// maxPending bounds frames buffered per channel before the local
	// protocol stack registers its link; overflow is dropped.
	maxPending = 4096
	// peerQueue is the depth of each outbound per-peer frame queue.
	peerQueue = 4096
	// maxCoalesce bounds the bytes a writer flush may coalesce from the
	// peer queue into one buffered write. Frames are length-prefixed, so
	// concatenation is the wire format; the bound keeps a burst from
	// building an unboundedly large write buffer.
	maxCoalesce = 256 * 1024
)

// Node is one process's TCP transport endpoint. It accepts inbound
// connections from every peer, maintains one lazy outbound connection
// per peer, and demultiplexes inbound frames to the registered logical
// channels.
type Node struct {
	cfg    Config
	codec  byte // wire codec byte for frames this node sends
	ln     net.Listener
	peers  []*peer // peers[Self] == nil
	ctx    context.Context
	cancel context.CancelFunc
	stop   chan struct{}
	wg     sync.WaitGroup

	faults *faultState // nil when cfg.Faults is nil

	mu      sync.Mutex
	links   map[string]*tcpLink
	pending map[string][]network.Message
	conns   map[net.Conn]struct{}
	closed  bool

	reconnects    atomic.Int64
	batches       atomic.Int64
	batchedFrames atomic.Int64
	retransmits   atomic.Int64
}

// Listen starts a transport node: it binds (or adopts) the listener for
// cfg.Addrs[cfg.Self] and begins accepting peer connections. Outbound
// connections are dialed lazily on first send to each peer.
func Listen(cfg Config) (*Node, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("transport: no addresses")
	}
	if cfg.Self < 0 || cfg.Self >= len(cfg.Addrs) {
		return nil, fmt.Errorf("transport: self %d out of range [0,%d)", cfg.Self, len(cfg.Addrs))
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = defaultRetryBase
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = defaultRetryMax
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = defaultInboxSize
	}
	codec, err := codecByte(cfg.Codec)
	if err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.validate(len(cfg.Addrs)); err != nil {
			return nil, err
		}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Self])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.Self], err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		cfg:     cfg,
		codec:   codec,
		ln:      ln,
		ctx:     ctx,
		cancel:  cancel,
		stop:    make(chan struct{}),
		links:   make(map[string]*tcpLink),
		pending: make(map[string][]network.Message),
		conns:   make(map[net.Conn]struct{}),
	}
	if cfg.Faults != nil {
		n.faults = newFaultState(*cfg.Faults)
	}
	jitterSeed := cfg.Seed
	if jitterSeed == 0 {
		jitterSeed = time.Now().UnixNano()
	}
	n.peers = make([]*peer, len(cfg.Addrs))
	for i, addr := range cfg.Addrs {
		if i == cfg.Self {
			continue
		}
		p := &peer{
			node: n, id: i, addr: addr,
			out: make(chan *frameBuf, peerQueue),
			// Derived per-peer stream: retries toward different peers
			// (and from different nodes, via differing Self) diverge.
			rng: rand.New(rand.NewSource(jitterSeed + int64(cfg.Self)*7919 + int64(i)*104729)),
		}
		n.peers[i] = p
		n.wg.Add(1)
		go p.writer()
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's actual listen address (useful with port 0).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Owner maps a protocol endpoint to the node index that hosts it.
// Endpoints 0..len(addrs)-1 map to their own node; extra endpoints
// (the fixed sequencer's dedicated endpoint n) wrap around to node 0.
func (n *Node) Owner(endpoint int) int { return endpoint % len(n.cfg.Addrs) }

// Factory returns a network.Factory that builds each named logical
// channel on this node. The simulation parameters in the network.Config
// (delays, seed, faults) are ignored; only Procs and InboxSize apply.
func (n *Node) Factory() network.Factory {
	return func(name string, cfg network.Config) (network.Link, error) {
		inbox := cfg.InboxSize
		if inbox <= 0 {
			inbox = n.cfg.InboxSize
		}
		return n.register(name, cfg.Procs, inbox)
	}
}

// Close shuts the node down: the listener stops accepting, every open
// connection is closed, and all links tied to this node report
// network.ErrClosed on further sends.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for c := range n.conns {
		c.Close()
	}
	links := make([]*tcpLink, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	n.mu.Unlock()

	close(n.stop)
	n.cancel()
	n.ln.Close()
	for _, l := range links {
		l.Close()
	}
	n.wg.Wait()
}

// register creates (and registers) the link for one logical channel,
// first flushing any frames that arrived before the local protocol
// stack was constructed. The flush loop preserves arrival order: it
// repeatedly drains the pending slice outside the lock and only
// registers the live link once no more buffered frames remain.
func (n *Node) register(name string, endpoints, inboxSize int) (*tcpLink, error) {
	if endpoints <= 0 {
		return nil, fmt.Errorf("transport: channel %q needs at least one endpoint", name)
	}
	l := &tcpLink{
		node:      n,
		name:      name,
		endpoints: endpoints,
		inboxes:   make(map[int]chan network.Message),
		never:     make(chan network.Message),
		stop:      make(chan struct{}),
		kinds:     make(map[string]*network.KindStats),
	}
	for e := 0; e < endpoints; e++ {
		if n.Owner(e) == n.cfg.Self {
			l.inboxes[e] = make(chan network.Message, inboxSize)
		}
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, network.ErrClosed
	}
	if _, dup := n.links[name]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: channel %q already registered", name)
	}
	for {
		pend := n.pending[name]
		if len(pend) == 0 {
			n.links[name] = l
			delete(n.pending, name)
			n.mu.Unlock()
			return l, nil
		}
		n.pending[name] = nil
		n.mu.Unlock()
		for _, m := range pend {
			l.deliver(m)
		}
		n.mu.Lock()
	}
}

// route hands one inbound frame to its channel's link, or buffers it if
// the channel is not registered yet (daemons start at different times,
// so a fast peer's first frames can land before the local stack is up).
func (n *Node) route(name string, m network.Message) {
	n.mu.Lock()
	l, ok := n.links[name]
	if !ok {
		if !n.closed && len(n.pending[name]) < maxPending {
			n.pending[name] = append(n.pending[name], m)
		}
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	l.deliver(m)
}

// enqueue queues one encoded frame for the writer goroutine of the peer
// that owns the destination endpoint. On success the writer owns fb; on
// failure ownership stays with the caller (which returns it to the
// pool).
func (n *Node) enqueue(peerID int, fb *frameBuf, linkStop chan struct{}) error {
	p := n.peers[peerID]
	select {
	case p.out <- fb:
		return nil
	case <-n.stop:
		return network.ErrClosed
	case <-linkStop:
		return network.ErrClosed
	}
}

func (n *Node) trackConn(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Node) untrackConn(c net.Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !n.trackConn(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection until it fails or
// the node closes. Any peer connection may carry frames for any
// channel. Every readFrame error is fatal for the connection — in
// particular an oversized length prefix (ErrFrameTooLarge) or a
// malformed frame (ErrBadFrame) means framing is lost or the peer is
// hostile, and the deferred Close kills the stream before the promised
// bytes are ever allocated.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer n.untrackConn(conn)
	defer conn.Close()
	var scratch []byte // reused frame body buffer; decoded values copy out
	for {
		f, err := readFrame(conn, &scratch)
		if err != nil {
			return
		}
		n.route(f.Channel, network.Message{
			From: f.From, To: f.To, Kind: f.Kind, Payload: f.Payload, Bytes: f.Bytes,
		})
	}
}

// peer owns the single outbound connection to one remote node. Its
// writer goroutine dials lazily with exponential backoff and re-dials
// after write failures, resending the frame that hit the error. TCP
// guarantees ordered reliable delivery within one connection; a frame
// written just before a connection dies may be lost, matching the
// paper's reliable-channel assumption only as well as real TCP does.
type peer struct {
	node *Node
	id   int
	addr string
	out  chan *frameBuf
	// rng drives the dial-backoff jitter. Only the writer goroutine
	// draws from it, so it needs no lock.
	rng *rand.Rand
	// down is true while the writer cannot reach the peer: set after a
	// failed dial attempt (the writer is in reconnect backoff), cleared
	// when a dial succeeds. tcpLink.Down reads it.
	down atomic.Bool
}

// writeFull writes all of b to c, looping over short writes, and
// reports how many bytes were written. A net.Conn should never return a
// short count without an error, but the wire path does not bet the
// stream's framing on that: a silent short write would desynchronize
// every frame that follows.
func writeFull(c net.Conn, b []byte) (int, error) {
	total := 0
	for total < len(b) {
		n, err := c.Write(b[total:])
		total += n
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, io.ErrShortWrite
		}
	}
	return total, nil
}

func (p *peer) writer() {
	defer p.node.wg.Done()
	var conn net.Conn
	connectedOnce := false
	// wbuf accumulates coalesced frames; ends[i] is the offset just past
	// frame i, so a mid-frame write error can tell complete frames from
	// the torn one. Both persist across iterations so the steady state
	// allocates nothing.
	wbuf := make([]byte, 0, 4096)
	ends := make([]int, 0, 64)
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var fb *frameBuf
		select {
		case fb = <-p.out:
		case <-p.node.stop:
			return
		}
		// Coalesce whatever else is already queued into one buffered
		// write. Frames are length-prefixed, so concatenation is exactly
		// the stream the peer's readLoop expects; one syscall then
		// carries the whole burst.
		wbuf = append(wbuf[:0], fb.b...)
		ends = append(ends[:0], len(wbuf))
		putFrameBuf(fb)
		frames := 1
	coalesce:
		for len(wbuf) < maxCoalesce {
			select {
			case more := <-p.out:
				wbuf = append(wbuf, more.b...)
				putFrameBuf(more)
				ends = append(ends, len(wbuf))
				frames++
			default:
				break coalesce
			}
		}
		if frames > 1 {
			p.node.batches.Add(1)
			p.node.batchedFrames.Add(int64(frames))
		}
		for len(wbuf) > 0 {
			if conn == nil {
				conn = p.dial()
				if conn == nil {
					return // node closed while dialing
				}
				if connectedOnce {
					p.node.reconnects.Add(1)
				}
				connectedOnce = true
			}
			w, err := writeFull(conn, wbuf)
			if err == nil {
				break
			}
			p.node.untrackConn(conn)
			conn.Close()
			conn = nil
			var resend int
			wbuf, ends, resend = pruneWritten(wbuf, ends, w)
			p.node.retransmits.Add(int64(resend))
			select {
			case <-p.node.stop:
				return
			default:
			}
		}
	}
}

// pruneWritten compacts the write buffer after a write error at byte
// offset w. Frames written in full may have reached the peer and are
// dropped; every frame with unwritten bytes stays — including the torn
// frame, kept whole from its first byte, since the peer's readLoop
// discards a partial frame when the connection dies. Returns the
// compacted buffer and offsets plus the count of frames eligible for
// resend (metered in Stats.Retransmitted).
func pruneWritten(wbuf []byte, ends []int, w int) ([]byte, []int, int) {
	keep := len(ends)
	start := 0
	for i, end := range ends {
		if end > w {
			keep = i
			if i > 0 {
				start = ends[i-1]
			}
			break
		}
	}
	if keep == len(ends) {
		// Every frame was fully written before the error surfaced.
		return wbuf[:0], ends[:0], 0
	}
	copy(wbuf, wbuf[start:])
	wbuf = wbuf[:len(wbuf)-start]
	for i := keep; i < len(ends); i++ {
		ends[i-keep] = ends[i] - start
	}
	return wbuf, ends[:len(ends)-keep], len(ends) - keep
}

// dial connects to the peer, retrying with capped, jittered exponential
// backoff until it succeeds or the node closes (then it returns nil).
// An active injected partition toward the peer refuses the dial the
// same way a real unreachable peer would, so the backoff loop paces
// retries during the window instead of spinning on write failures.
func (p *peer) dial() net.Conn {
	backoff := p.node.cfg.RetryBase
	for {
		var conn net.Conn
		err := errPartitioned
		if fs := p.node.faults; fs == nil || !fs.refuseDial(p.id) {
			d := net.Dialer{Timeout: p.node.cfg.DialTimeout}
			conn, err = d.DialContext(p.node.ctx, "tcp", p.addr)
		}
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			if fs := p.node.faults; fs != nil {
				conn = fs.wrap(p.id, conn)
			}
			if !p.node.trackConn(conn) {
				conn.Close()
				return nil
			}
			p.down.Store(false)
			return conn
		}
		p.down.Store(true)
		var sleep time.Duration
		sleep, backoff = nextBackoff(backoff, p.node.cfg.RetryMax, p.rng)
		select {
		case <-p.node.stop:
			return nil
		case <-time.After(sleep):
		}
	}
}

// nextBackoff turns the current backoff value into the jittered sleep
// for this attempt — uniform in [cur/2, cur], so simultaneously
// partitioned peers do not wake in lockstep and hammer the healed node
// together — and the doubled, capped value for the next one.
func nextBackoff(cur, max time.Duration, rng *rand.Rand) (sleep, next time.Duration) {
	sleep = cur
	if half := int64(cur / 2); half > 0 {
		sleep = time.Duration(half + rng.Int63n(half+1))
	}
	next = cur * 2
	if next > max {
		next = max
	}
	return sleep, next
}

// FaultStats reports the node's injected-fault counters; zero when no
// Faults were configured.
func (n *Node) FaultStats() FaultStats {
	if n.faults == nil {
		return FaultStats{}
	}
	return n.faults.stats()
}

// tcpLink is one logical channel's network.Link view on one node. It
// meters sends exactly like the simulated network (messages, bytes,
// per-kind counts) and adds the node-wide reconnect count to Stats.
type tcpLink struct {
	node      *Node
	name      string
	endpoints int
	inboxes   map[int]chan network.Message // locally-owned endpoints only
	never     chan network.Message         // returned for remote endpoints
	stop      chan struct{}
	closed    atomic.Bool

	messages atomic.Int64
	bytes    atomic.Int64
	dropped  atomic.Int64

	mu    sync.Mutex
	kinds map[string]*network.KindStats
}

var _ network.Link = (*tcpLink)(nil)

// Send transmits one message. Messages between two locally-owned
// endpoints bypass serialization and go straight to the inbox; remote
// messages are encoded here into a pooled frame buffer (so codec errors
// surface to the caller) and queued on the destination node's peer
// connection. Sends from endpoints this node does not own are artifacts
// of replicated protocol construction and are dropped (counted in
// Stats.Dropped): the owning node performs the authoritative send.
func (l *tcpLink) Send(from, to int, kind string, payload any, bytes int) error {
	if l.closed.Load() {
		return network.ErrClosed
	}
	if from < 0 || from >= l.endpoints || to < 0 || to >= l.endpoints {
		return fmt.Errorf("transport: endpoint out of range: %d -> %d (of %d)", from, to, l.endpoints)
	}
	if l.node.Owner(from) != l.node.cfg.Self {
		l.dropped.Add(1)
		return nil
	}
	owner := l.node.Owner(to)
	if owner == l.node.cfg.Self {
		l.meter(kind, bytes)
		return l.deliverLocal(network.Message{From: from, To: to, Kind: kind, Payload: payload, Bytes: bytes})
	}
	fb := getFrameBuf()
	f := wireFrame{Channel: l.name, From: from, To: to, Kind: kind, Payload: payload, Bytes: bytes}
	if err := encodeFrame(l.node.codec, f, fb); err != nil {
		putFrameBuf(fb)
		return err
	}
	l.meter(kind, bytes)
	if err := l.node.enqueue(owner, fb, l.stop); err != nil {
		putFrameBuf(fb)
		return err
	}
	return nil
}

// Broadcast sends to every endpoint, including the sender. Unlike the
// simulated network the fan-out is not atomic: each destination is an
// independent Send, and the first error aborts the remainder.
func (l *tcpLink) Broadcast(from int, kind string, payload any, bytes int) error {
	for to := 0; to < l.endpoints; to++ {
		if err := l.Send(from, to, kind, payload, bytes); err != nil {
			return err
		}
	}
	return nil
}

// Recv returns the delivery channel for endpoint p. For endpoints owned
// by other nodes it returns a channel that never delivers, so replicated
// constructors can wire up receive loops that simply stay idle.
func (l *tcpLink) Recv(p int) <-chan network.Message {
	if ch, ok := l.inboxes[p]; ok {
		return ch
	}
	return l.never
}

// deliverLocal pushes a message into a locally-owned inbox, blocking
// until there is room or the link/node closes.
func (l *tcpLink) deliverLocal(m network.Message) error {
	ch, ok := l.inboxes[m.To]
	if !ok {
		l.dropped.Add(1)
		return nil
	}
	select {
	case ch <- m:
		return nil
	case <-l.stop:
		return network.ErrClosed
	case <-l.node.stop:
		return network.ErrClosed
	}
}

// deliver handles an inbound (or flushed-pending) frame. After the link
// closes, frames are silently discarded — the link stays registered as a
// tombstone so late traffic does not re-buffer.
func (l *tcpLink) deliver(m network.Message) {
	if l.closed.Load() {
		return
	}
	if m.To < 0 || m.To >= l.endpoints {
		l.dropped.Add(1)
		return
	}
	l.deliverLocal(m)
}

func (l *tcpLink) meter(kind string, bytes int) {
	l.messages.Add(1)
	l.bytes.Add(int64(bytes))
	l.mu.Lock()
	ks := l.kinds[kind]
	if ks == nil {
		ks = &network.KindStats{}
		l.kinds[kind] = ks
	}
	ks.Messages++
	ks.Bytes += int64(bytes)
	l.mu.Unlock()
}

// Stats reports this channel's send-side metering. Reconnects is the
// node-wide count of re-established peer connections (connections are
// shared by every channel on the node, so the count cannot be split
// per channel).
func (l *tcpLink) Stats() network.Stats {
	st := network.Stats{
		Messages:      l.messages.Load(),
		Bytes:         l.bytes.Load(),
		Dropped:       l.dropped.Load(),
		Reconnects:    l.node.reconnects.Load(),
		Batches:       l.node.batches.Load(),
		BatchedFrames: l.node.batchedFrames.Load(),
		Retransmitted: l.node.retransmits.Load(),
		ByKind:        make(map[string]network.KindStats),
	}
	if l.node.faults != nil {
		// Node-wide, like Reconnects: the pacing token bucket is shared
		// by every channel on the node.
		st.Throttled = l.node.faults.throttled.Load()
	}
	l.mu.Lock()
	for k, v := range l.kinds {
		st.ByKind[k] = *v
	}
	l.mu.Unlock()
	return st
}

// Procs returns the channel's endpoint count (across all nodes).
func (l *tcpLink) Procs() int { return l.endpoints }

// Down reports whether the node owning endpoint p is currently
// unreachable: true while this node's writer to that peer is in
// reconnect backoff after a failed dial. The TCP transport does not
// simulate crash-stop faults, so this reflects real connectivity —
// locally-owned endpoints are never down, and a peer is only probed by
// actual traffic (a quiet unreachable peer reads as up until a send
// forces a dial).
func (l *tcpLink) Down(p int) bool {
	if p < 0 || p >= l.endpoints {
		return false
	}
	owner := l.node.Owner(p)
	if owner == l.node.cfg.Self {
		return false
	}
	return l.node.peers[owner].down.Load()
}

// Close shuts this channel down on this node. The link stays registered
// as a tombstone so frames still in flight from peers are discarded
// rather than buffered. The node and its other channels keep running.
func (l *tcpLink) Close() {
	if l.closed.CompareAndSwap(false, true) {
		close(l.stop)
	}
}
