package transport

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"moc/internal/network"
	"moc/internal/network/testutil"
)

// faultyPair builds a 2-node loopback cluster where only node 0 injects
// the given faults, returning the two channel links. Tests send 0 -> 1
// so the faulty side is always the one under test.
func faultyPair(t *testing.T, faults Faults) (network.Link, network.Link, *Node) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{lnA.Addr().String(), lnB.Addr().String()}
	nodeA, err := Listen(Config{Self: 0, Addrs: addrs, Listener: lnA, Faults: &faults, Seed: faults.Seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nodeA.Close)
	nodeB, err := Listen(Config{Self: 1, Addrs: addrs, Listener: lnB})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nodeB.Close)
	la, err := nodeA.Factory()("f", network.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := nodeB.Factory()("f", network.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	return la, lb, nodeA
}

// sendReceiveLockstep sends n messages one at a time, waiting for each
// delivery, and verifies exactly-once in-order arrival — the transport's
// contract must hold regardless of injected faults.
func sendReceiveLockstep(t *testing.T, la, lb network.Link, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := la.Send(0, 1, "m", testutil.ConformancePayload{N: i}, 8); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
		got := testutil.Drain(t, 20*time.Second, lb.Recv(1), 1, testutil.Source("a", la.Stats))
		if len(got) != 1 {
			t.Fatalf("message %d not delivered", i)
		}
		if p := got[0].Payload.(testutil.ConformancePayload); p.N != i {
			t.Fatalf("message %d delivered as %d (dup or reorder)", i, p.N)
		}
	}
	// No duplicates may trail the final delivery.
	select {
	case m := <-lb.Recv(1):
		t.Fatalf("duplicate delivery after lockstep run: %+v", m)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestInjectedResetsAreResent injects connection resets on half the
// writes and verifies every frame still arrives exactly once, in order,
// via the reconnect + resend path.
func TestInjectedResetsAreResent(t *testing.T) {
	t.Parallel()
	la, lb, nodeA := faultyPair(t, Faults{Seed: 7, ResetProb: 0.5})
	sendReceiveLockstep(t, la, lb, 100)
	fst := nodeA.FaultStats()
	if fst.Resets == 0 {
		t.Fatal("no resets injected across 100 lockstep writes at p=0.5")
	}
	if st := la.Stats(); st.Reconnects == 0 || st.Retransmitted == 0 {
		t.Fatalf("stats = %+v, want nonzero Reconnects and Retransmitted after %d resets", st, fst.Resets)
	}
}

// TestInjectedCorruptionRejectedByCodec corrupts the leading codec byte
// on half the writes. The receiving node must reject each corrupted
// frame by closing the connection (never delivering garbage), and the
// resend path must deliver every frame intact exactly once.
func TestInjectedCorruptionRejectedByCodec(t *testing.T) {
	t.Parallel()
	la, lb, nodeA := faultyPair(t, Faults{Seed: 11, CorruptProb: 0.5})
	sendReceiveLockstep(t, la, lb, 100)
	fst := nodeA.FaultStats()
	if fst.Corrupted == 0 {
		t.Fatal("no corruption injected across 100 lockstep writes at p=0.5")
	}
	if st := la.Stats(); st.Reconnects == 0 {
		t.Fatalf("stats = %+v, want nonzero Reconnects: every corrupted frame must kill its connection", st)
	}
}

// TestPartitionWindowBlocksThenHeals partitions node 0 from node 1
// during [200ms, 700ms). A message sent before the window flows; a
// message sent during it is blocked — the established connection is
// reset and redials are refused — until the window heals.
func TestPartitionWindowBlocksThenHeals(t *testing.T) {
	t.Parallel()
	const healAt = 700 * time.Millisecond
	la, lb, nodeA := faultyPair(t, Faults{
		Seed:       3,
		Partitions: []PeerPartition{{Peers: []int{1}, Start: 200 * time.Millisecond, Heal: healAt}},
	})
	start := time.Now()
	if err := la.Send(0, 1, "pre", testutil.ConformancePayload{N: 1}, 8); err != nil {
		t.Fatal(err)
	}
	testutil.Drain(t, 5*time.Second, lb.Recv(1), 1, testutil.Source("a", la.Stats))

	// Into the window, then send: the write must not be delivered before
	// the heal time.
	time.Sleep(300 * time.Millisecond)
	if err := la.Send(0, 1, "during", testutil.ConformancePayload{N: 2}, 8); err != nil {
		t.Fatal(err)
	}
	got := testutil.Drain(t, 10*time.Second, lb.Recv(1), 1, testutil.Source("a", la.Stats))
	if len(got) != 1 {
		t.Fatal("partitioned message never delivered after heal")
	}
	if elapsed := time.Since(start); elapsed < healAt-50*time.Millisecond {
		t.Fatalf("message crossed an active partition: delivered at %v, window heals at %v", elapsed, healAt)
	}
	fst := nodeA.FaultStats()
	if fst.Resets == 0 || fst.PartitionRefusals == 0 {
		t.Fatalf("fault stats = %+v, want the established conn reset and at least one refused redial", fst)
	}
}

// TestDelayAndThrottleSlowWrites verifies latency injection delays
// delivery by at least the configured floor and bandwidth pacing
// spaces out back-to-back writes.
func TestDelayAndThrottleSlowWrites(t *testing.T) {
	t.Parallel()
	const delay = 30 * time.Millisecond
	la, lb, nodeA := faultyPair(t, Faults{Seed: 5, Delay: delay, Bandwidth: 200})
	t0 := time.Now()
	if err := la.Send(0, 1, "d", testutil.ConformancePayload{N: 1}, 8); err != nil {
		t.Fatal(err)
	}
	testutil.Drain(t, 5*time.Second, lb.Recv(1), 1, testutil.Source("a", la.Stats))
	if elapsed := time.Since(t0); elapsed < delay {
		t.Fatalf("first delivery took %v, want >= injected delay %v", elapsed, delay)
	}
	// The first write consumed >100ms of budget at 200 B/s, so an
	// immediate second write must be paced.
	if err := la.Send(0, 1, "d", testutil.ConformancePayload{N: 2}, 8); err != nil {
		t.Fatal(err)
	}
	testutil.Drain(t, 5*time.Second, lb.Recv(1), 1, testutil.Source("a", la.Stats))
	fst := nodeA.FaultStats()
	if fst.Delayed == 0 || fst.Throttled == 0 {
		t.Fatalf("fault stats = %+v, want nonzero Delayed and Throttled", fst)
	}
}

// TestFaultyTCPConformance runs the full Link conformance suite over a
// cluster where every node injects resets and corruption: the fault
// layer must be invisible to the Link contract (exactly-once FIFO
// between pairs, close semantics, stats lower bounds).
func TestFaultyTCPConformance(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("faulty conformance sweep skipped in -short")
	}
	testutil.RunLinkConformance(t, func(t testing.TB, cfg network.Config) network.Link {
		cluster, err := NewFaultyCluster(3, Faults{Seed: 23, ResetProb: 0.05, CorruptProb: 0.05})
		if err != nil {
			t.Fatalf("NewFaultyCluster: %v", err)
		}
		t.Cleanup(cluster.Close)
		link, err := cluster.Factory()("conf", cfg)
		if err != nil {
			t.Fatalf("build channel: %v", err)
		}
		t.Cleanup(link.Close)
		return link
	})
}

// TestFaultsValidation rejects malformed fault configs at Listen time.
func TestFaultsValidation(t *testing.T) {
	t.Parallel()
	bad := []Faults{
		{ResetProb: 1.5},
		{CorruptProb: -0.1},
		{Delay: -time.Second},
		{Bandwidth: -1},
		{Partitions: []PeerPartition{{Peers: []int{0}, Start: time.Second, Heal: time.Second}}},
		{Partitions: []PeerPartition{{Start: 0, Heal: time.Second}}},
		{Partitions: []PeerPartition{{Peers: []int{9}, Start: 0, Heal: time.Second}}},
	}
	for i, f := range bad {
		faults := f
		_, err := Listen(Config{Self: 0, Addrs: []string{"127.0.0.1:0", "127.0.0.1:1"}, Faults: &faults})
		if err == nil {
			t.Errorf("case %d: Listen accepted invalid faults %+v", i, f)
		}
	}
}

// TestNextBackoff pins the reconnect backoff contract: each attempt
// sleeps a jittered value in [cur/2, cur], and the window doubles until
// it saturates at the cap — growth without lockstep, bounded by max.
func TestNextBackoff(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	const base = 5 * time.Millisecond
	const max = 160 * time.Millisecond
	cur := base
	for i := 0; i < 20; i++ {
		sleep, next := nextBackoff(cur, max, rng)
		if sleep < cur/2 || sleep > cur {
			t.Fatalf("attempt %d: sleep %v outside jitter window [%v, %v]", i, sleep, cur/2, cur)
		}
		want := cur * 2
		if want > max {
			want = max
		}
		if next != want {
			t.Fatalf("attempt %d: next backoff %v, want %v (doubling capped at %v)", i, next, want, max)
		}
		cur = next
	}
	if cur != max {
		t.Fatalf("backoff never saturated: ended at %v, cap %v", cur, max)
	}
}
