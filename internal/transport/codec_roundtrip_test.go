package transport

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"moc/internal/mop"
	"moc/internal/wire"

	// Each protocol package registers its wire payloads in an init
	// function; importing them populates the registry this test sweeps.
	_ "moc/internal/abcast"
	_ "moc/internal/mlin"
	_ "moc/internal/msc"
	_ "moc/internal/recovery"
	_ "moc/internal/shard"
)

// expectedKinds is the closed list of payload types that must be
// registered for the TCP transport to carry the full protocol suite. If
// a package stops registering one of these — or a new payload ships
// without joining this list — the coverage check below fails.
var expectedKinds = []string{
	// abcast: fixed sequencer.
	"abcast.seqRequest", "abcast.seqOrder", "abcast.seqSubmit",
	"abcast.seqHB", "abcast.seqSyncReq", "abcast.seqSyncResp", "abcast.seqNewView",
	// abcast: Lamport clocks.
	"abcast.lamportSubmit", "abcast.lamportData", "abcast.lamportAck",
	// abcast: token ring.
	"abcast.tokenMsg", "abcast.tokenOrder", "abcast.tokHB",
	"abcast.tokSyncReq", "abcast.tokSyncResp", "abcast.tokCatchup",
	// abcast: batching layer.
	"abcast.BatchMsg",
	// Protocol updates and queries.
	"msc.updatePayload",
	"mlin.updatePayload", "mlin.queryMsg", "mlin.queryResp", "mlin.applyAck",
	// Checkpoint transfer.
	"recovery.xferReq", "recovery.xferResp",
	// Cross-shard ticket/commit merge.
	"shard.Ticket", "shard.Commit",
	// Declarative procedures riding inside update payloads.
	"mop.ReadOp", "mop.WriteOp", "mop.MultiRead", "mop.Sum",
	"mop.MAssign", "mop.CAS", "mop.DCAS", "mop.Transfer",
}

// fill populates v deterministically: scalars from a counter, slices
// with two elements, maps with one entry, and interface slots with a
// registered mop procedure sample (both `any` and mop.Procedure fields
// accept it). Only exported (settable) fields are touched — gob skips
// the rest anyway.
func fill(t testing.TB, v reflect.Value, ctr *int64) {
	t.Helper()
	switch v.Kind() {
	case reflect.Pointer:
		v.Set(reflect.New(v.Type().Elem()))
		fill(t, v.Elem(), ctr)
	case reflect.Interface:
		*ctr++
		sample := reflect.ValueOf(mop.WriteOp{X: 1, V: *ctr})
		if !sample.Type().Implements(v.Type()) {
			t.Fatalf("no canned sample implements interface field type %v", v.Type())
		}
		v.Set(sample)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				fill(t, f, ctr)
			}
		}
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 2, 2)
		for i := 0; i < s.Len(); i++ {
			fill(t, s.Index(i), ctr)
		}
		v.Set(s)
	case reflect.Map:
		m := reflect.MakeMap(v.Type())
		k := reflect.New(v.Type().Key()).Elem()
		fill(t, k, ctr)
		val := reflect.New(v.Type().Elem()).Elem()
		fill(t, val, ctr)
		m.SetMapIndex(k, val)
		v.Set(m)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*ctr++
		v.SetInt(*ctr)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*ctr++
		v.SetUint(uint64(*ctr))
	case reflect.Float32, reflect.Float64:
		*ctr++
		v.SetFloat(float64(*ctr) / 2)
	case reflect.String:
		*ctr++
		v.SetString(fmt.Sprintf("s%d", *ctr))
	case reflect.Bool:
		v.SetBool(true)
	default:
		t.Fatalf("fill: unsupported kind %v (%v)", v.Kind(), v.Type())
	}
}

// encodeFrameBytes is the test convenience wrapper around the pooled
// encode path: encode one frame with the named codec and return a
// fresh byte slice.
func encodeFrameBytes(t testing.TB, codec string, f wireFrame) ([]byte, error) {
	t.Helper()
	cb, err := codecByte(codec)
	if err != nil {
		t.Fatalf("codecByte(%q): %v", codec, err)
	}
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	if err := encodeFrame(cb, f, fb); err != nil {
		return nil, err
	}
	return append([]byte(nil), fb.b...), nil
}

// TestCodecRoundTripsEveryRegisteredKind builds a non-trivial instance
// of every payload type in the wire registry, carries it through
// encodeFrame/readFrame inside a wireFrame under both codecs, and
// requires the decoded frame — metadata and payload — to be deeply
// equal to what was sent.
func TestCodecRoundTripsEveryRegisteredKind(t *testing.T) {
	types := wire.Types()
	byName := make(map[string]reflect.Type, len(types))
	for _, typ := range types {
		byName[typ.String()] = typ
	}
	for _, want := range expectedKinds {
		if _, ok := byName[want]; !ok {
			t.Errorf("wire kind %s is no longer registered", want)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	for _, codec := range []string{CodecBinary, CodecGob} {
		t.Run(codec, func(t *testing.T) {
			var ctr int64
			for _, typ := range types {
				t.Run(typ.String(), func(t *testing.T) {
					pv := reflect.New(typ).Elem()
					fill(t, pv, &ctr)
					in := wireFrame{
						Channel: "codec-test",
						From:    3,
						To:      5,
						Kind:    "kind." + typ.String(),
						Payload: pv.Interface(),
						Bytes:   64,
					}
					buf, err := encodeFrameBytes(t, codec, in)
					if err != nil {
						t.Fatalf("encodeFrame: %v", err)
					}
					var scratch []byte
					out, err := readFrame(bytes.NewReader(buf), &scratch)
					if err != nil {
						t.Fatalf("readFrame: %v", err)
					}
					if !reflect.DeepEqual(in, out) {
						t.Fatalf("round trip mutated the frame:\n sent %#v\n got  %#v", in, out)
					}
					if got := reflect.TypeOf(out.Payload); got != typ {
						t.Fatalf("payload decoded as %v, want %v", got, typ)
					}
				})
			}
		})
	}
}

// TestCodecPreservesNilObjectList pins the m-lin full-copy query
// convention: a nil Objs slice means "send everything" (Figure 6), so
// nil and empty must stay distinguishable across both codecs. The
// payload crosses as the exported frame metadata cannot carry it — an
// mlin.queryMsg with Objs left nil.
func TestCodecPreservesNilObjectList(t *testing.T) {
	types := wire.Types()
	var qm reflect.Type
	for _, typ := range types {
		if typ.String() == "mlin.queryMsg" {
			qm = typ
		}
	}
	if qm == nil {
		t.Fatal("mlin.queryMsg not registered")
	}
	pv := reflect.New(qm).Elem()
	pv.Field(0).SetInt(77) // ReqID; Objs stays nil
	for _, codec := range []string{CodecBinary, CodecGob} {
		t.Run(codec, func(t *testing.T) {
			in := wireFrame{Channel: "mlin.query", Kind: "mlin.query", Payload: pv.Interface(), Bytes: 8}
			buf, err := encodeFrameBytes(t, codec, in)
			if err != nil {
				t.Fatalf("encodeFrame: %v", err)
			}
			var scratch []byte
			out, err := readFrame(bytes.NewReader(buf), &scratch)
			if err != nil {
				t.Fatalf("readFrame: %v", err)
			}
			objs := reflect.ValueOf(out.Payload).Field(1)
			if !objs.IsNil() {
				t.Fatalf("nil Objs decoded as non-nil %#v — full-copy queries would stop requesting everything", objs.Interface())
			}
		})
	}
}

// TestCodecStreamHasNoPerFrameDescriptorOverhead is the regression gate
// against gob's per-stream type descriptors sneaking back onto the hot
// path: with the binary codec, encoding the same frame twice must
// produce identical bytes of identical (small) size — a codec that
// amortizes descriptors across a stream would shrink the second frame,
// and one that re-sends them would balloon both. The size cap is
// deliberately tight: metadata plus a two-field payload must fit in far
// less than gob's descriptor-laden ~200 bytes.
func TestCodecStreamHasNoPerFrameDescriptorOverhead(t *testing.T) {
	frame := wireFrame{
		Channel: "abcast",
		From:    1,
		To:      2,
		Kind:    "abc.req",
		Payload: mop.WriteOp{X: 4, V: 99},
		Bytes:   32,
	}
	first, err := encodeFrameBytes(t, CodecBinary, frame)
	if err != nil {
		t.Fatalf("encodeFrame: %v", err)
	}
	second, err := encodeFrameBytes(t, CodecBinary, frame)
	if err != nil {
		t.Fatalf("encodeFrame: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("same frame encoded differently across calls:\n %x\n %x", first, second)
	}
	const cap = 40 // 5B header + channel/kind strings + varint metadata + tagged payload
	if len(first) > cap {
		t.Fatalf("frame is %d bytes (cap %d) — per-frame descriptor overhead is back", len(first), cap)
	}
	// Both encodings must stay readable when concatenated, since frame
	// concatenation is the writer's coalescing format.
	stream := append(append([]byte(nil), first...), second...)
	var scratch []byte
	r := bytes.NewReader(stream)
	for i := 0; i < 2; i++ {
		out, err := readFrame(r, &scratch)
		if err != nil {
			t.Fatalf("frame %d of coalesced stream: %v", i, err)
		}
		if !reflect.DeepEqual(out, frame) {
			t.Fatalf("frame %d mutated: %#v", i, out)
		}
	}
}
