package transport

import (
	"net"
	"testing"
	"time"

	"moc/internal/network"
	"moc/internal/network/testutil"
)

// TestTCPConformance runs the shared Link conformance suite against a
// loopback TCP cluster: every frame crosses a real kernel socket.
func TestTCPConformance(t *testing.T) {
	t.Parallel()
	testutil.RunLinkConformance(t, func(t testing.TB, cfg network.Config) network.Link {
		cluster, err := NewCluster(3)
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		t.Cleanup(cluster.Close)
		link, err := cluster.Factory()("conf", cfg)
		if err != nil {
			t.Fatalf("build channel: %v", err)
		}
		t.Cleanup(link.Close)
		return link
	})
}

// TestNonOwnedSendDropped verifies the replicated-construction rule: a
// node silently drops (and counts) sends whose from-endpoint it does
// not own, so duplicated bootstrap sends — like the token ring's
// initial injection, issued by every daemon — reach the wire exactly
// once, from the owner.
func TestNonOwnedSendDropped(t *testing.T) {
	t.Parallel()
	cluster, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	links := make([]network.Link, 2)
	for i := 0; i < 2; i++ {
		l, err := cluster.Node(i).Factory()("ch", network.Config{Procs: 2})
		if err != nil {
			t.Fatal(err)
		}
		links[i] = l
	}
	// Both nodes replay the same bootstrap send from endpoint 0. Node 0
	// owns endpoint 0, so its copy is authoritative; node 1's is dropped.
	for i := 0; i < 2; i++ {
		if err := links[i].Send(0, 1, "boot", testutil.ConformancePayload{N: 9}, 4); err != nil {
			t.Fatalf("node %d Send: %v", i, err)
		}
	}
	got := testutil.Drain(t, 5*time.Second, links[1].Recv(1), 1,
		testutil.Source("node0", links[0].Stats), testutil.Source("node1", links[1].Stats))
	if len(got) != 1 {
		t.Fatal("authoritative copy not delivered")
	}
	// No second copy may arrive.
	select {
	case m := <-links[1].Recv(1):
		t.Fatalf("replica send was delivered: %+v", m)
	case <-time.After(100 * time.Millisecond):
	}
	if st := links[1].Stats(); st.Dropped != 1 || st.Messages != 0 {
		t.Fatalf("node1 stats = %+v, want exactly the dropped replica send", st)
	}
	if st := links[0].Stats(); st.Messages != 1 || st.Dropped != 0 {
		t.Fatalf("node0 stats = %+v, want exactly the authoritative send", st)
	}
}

// TestPendingBufferedUntilRegistration verifies that frames arriving
// before the destination node registers the channel are buffered and
// flushed, in order, when registration happens — daemons in a cluster
// start at different times.
func TestPendingBufferedUntilRegistration(t *testing.T) {
	t.Parallel()
	cluster, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	sender, err := cluster.Node(0).Factory()("late", network.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := sender.Send(0, 1, "early", testutil.ConformancePayload{N: i}, 8); err != nil {
			t.Fatal(err)
		}
	}
	// Give the frames time to land in node 1's pending buffer, then
	// register the channel and expect an in-order flush.
	time.Sleep(50 * time.Millisecond)
	receiver, err := cluster.Node(1).Factory()("late", network.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := testutil.Drain(t, 5*time.Second, receiver.Recv(1), n, testutil.Source("sender", sender.Stats))
	for i, m := range got {
		if p := m.Payload.(testutil.ConformancePayload); p.N != i {
			t.Fatalf("flush out of order at %d: got %d", i, p.N)
		}
	}
}

// TestSendUnregisteredPayload verifies codec errors surface at Send
// time: a payload type not registered with gob must fail the remote
// send, not vanish in the writer goroutine.
func TestSendUnregisteredPayload(t *testing.T) {
	t.Parallel()
	cluster, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	link, err := cluster.Node(0).Factory()("codec", network.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	type notRegistered struct{ X int }
	if err := link.Send(0, 1, "bad", notRegistered{X: 1}, 4); err == nil {
		t.Fatal("Send with unregistered payload type succeeded")
	}
	// Local delivery bypasses serialization, so the same payload between
	// two endpoints of one node is fine.
	if err := link.Send(0, 0, "ok", notRegistered{X: 1}, 4); err != nil {
		t.Fatalf("local Send: %v", err)
	}
}

// TestReconnectAfterPeerRestart kills one node, restarts a node at the
// same address, and verifies the peer's writer re-establishes the
// connection (counted in Stats.Reconnects) and traffic resumes.
func TestReconnectAfterPeerRestart(t *testing.T) {
	t.Parallel()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{lnA.Addr().String(), lnB.Addr().String()}

	nodeA, err := Listen(Config{Self: 0, Addrs: addrs, Listener: lnA})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := Listen(Config{Self: 1, Addrs: addrs, Listener: lnB})
	if err != nil {
		t.Fatal(err)
	}

	la, err := nodeA.Factory()("r", network.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := nodeB.Factory()("r", network.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Send(0, 1, "ping", testutil.ConformancePayload{N: 1}, 4); err != nil {
		t.Fatal(err)
	}
	testutil.Drain(t, 5*time.Second, lb.Recv(1), 1, testutil.Source("a", la.Stats))

	// Restart: node B goes away and a fresh node takes over its address.
	nodeB.Close()
	nodeB2, err := Listen(Config{Self: 1, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB2.Close()
	lb2, err := nodeB2.Factory()("r", network.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Keep sending until a frame lands on the restarted node. The write
	// that hits the dead connection is retried over the new one, so at
	// least one frame must get through.
	deadline := time.After(10 * time.Second)
	for delivered := false; !delivered; {
		if err := la.Send(0, 1, "ping", testutil.ConformancePayload{N: 2}, 4); err != nil {
			t.Fatal(err)
		}
		select {
		case <-lb2.Recv(1):
			delivered = true
		case <-deadline:
			testutil.DumpStats(t, testutil.Source("a", la.Stats), testutil.Source("b2", lb2.Stats))
			t.Fatal("no frame delivered after peer restart")
		case <-time.After(20 * time.Millisecond):
		}
	}
	if st := la.Stats(); st.Reconnects < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", st.Reconnects)
	}
}
