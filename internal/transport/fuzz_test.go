package transport

import (
	"bytes"
	"reflect"
	"testing"

	"moc/internal/wire"
)

// FuzzReadFrame throws arbitrary byte streams at the frame reader. The
// seed corpus is a well-formed frame for every registered wire kind
// under both codecs, plus truncations and hostile prefixes, so the
// fuzzer starts from the full payload surface. The invariant is the
// wire-path hardening contract: any input either decodes or returns an
// error — never panics, and never allocates a buffer the input didn't
// pay for. (The seed corpus runs as ordinary subtests on every `go
// test`; `go test -fuzz=FuzzReadFrame` explores from there.)
func FuzzReadFrame(f *testing.F) {
	var ctr int64
	for _, typ := range wire.Types() {
		pv := reflect.New(typ).Elem()
		fill(f, pv, &ctr)
		fr := wireFrame{
			Channel: "fuzz",
			From:    0,
			To:      1,
			Kind:    "fuzz." + typ.String(),
			Payload: pv.Interface(),
			Bytes:   8,
		}
		for _, codec := range []string{CodecBinary, CodecGob} {
			b, err := encodeFrameBytes(f, codec, fr)
			if err != nil {
				f.Fatalf("seed %s/%s: %v", codec, typ, err)
			}
			f.Add(b)
			f.Add(b[:len(b)/2])    // truncated mid-body
			f.Add(b[:4])           // header only
			f.Add(append(b, b...)) // two concatenated frames (reader takes the first)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                          // empty frame
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})              // hostile length prefix
	f.Add([]byte{0, 0, 0, 2, 0x7F, 0x00})              // unknown codec byte
	f.Add([]byte{0, 0, 0, 3, codecBinary, 0xFF, 0xFF}) // corrupt binary body

	f.Fuzz(func(t *testing.T, data []byte) {
		var scratch []byte
		fr, err := readFrame(bytes.NewReader(data), &scratch)
		if err != nil {
			return // rejected is fine; panicking is the bug
		}
		// Whatever decoded must survive the send path without panicking
		// (it may legitimately error, e.g. a gob frame whose payload
		// shape the binary codec does not carry).
		fb := getFrameBuf()
		defer putFrameBuf(fb)
		if err := encodeFrame(codecBinary, fr, fb); err == nil {
			// And a clean re-encode must decode again.
			if _, err := readFrame(bytes.NewReader(fb.b), &scratch); err != nil {
				t.Fatalf("re-encoded frame failed to decode: %v", err)
			}
		}
	})
}
