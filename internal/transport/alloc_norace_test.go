//go:build !race

// The allocation gate runs only without the race detector: -race makes
// sync.Pool drop items randomly (by design), so pooled buffers look
// like fresh allocations under it. `make verify` runs the race build;
// CI's bench-smoke job runs this gate in a plain build.
package transport

import (
	"testing"

	"moc/internal/mop"
)

// TestSendPathZeroAllocs is the committed allocation threshold for the
// steady-state send path: encode-into-pooled-buffer must not allocate
// at all once the pool and registry are warm. If this fails, something
// on the hot path regressed — a per-frame descriptor, a buffer that
// escapes, an interface box — and E17's throughput win is leaking away.
func TestSendPathZeroAllocs(t *testing.T) {
	// Pre-boxed payload: the caller owns the concrete→any conversion,
	// the transport owns everything after it.
	var payload any = mop.WriteOp{X: 3, V: 42}
	if _, err := BenchEncodeFrame(CodecBinary, payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if _, err := BenchEncodeFrame(CodecBinary, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("send path allocates %.1f times per frame, want 0", allocs)
	}
}

// BenchmarkEncodeFrame measures the send-side encode path under both
// codecs; allocs/op is the number E17 commits and CI gates on.
func BenchmarkEncodeFrame(b *testing.B) {
	var payload any = mop.WriteOp{X: 3, V: 42}
	for _, codec := range []string{CodecBinary, CodecGob} {
		b.Run(codec, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BenchEncodeFrame(codec, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
