package transport

// BenchEncodeFrame runs the transport's real send-side encode path once
// — pooled buffer out, frame encoded, buffer back to the pool — and
// returns the encoded frame size. It exists for benchmarks and the CI
// allocation gate, which need to measure the steady-state send path
// without standing up a TCP cluster; it is not part of the transport's
// operational API.
func BenchEncodeFrame(codec string, payload any) (int, error) {
	cb, err := codecByte(codec)
	if err != nil {
		return 0, err
	}
	fb := getFrameBuf()
	f := wireFrame{Channel: "bench", From: 0, To: 1, Kind: "bench.op", Payload: payload, Bytes: 64}
	if err := encodeFrame(cb, f, fb); err != nil {
		putFrameBuf(fb)
		return 0, err
	}
	n := len(fb.b)
	putFrameBuf(fb)
	return n, nil
}
