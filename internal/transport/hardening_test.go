package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"moc/internal/network"
	"moc/internal/network/testutil"
)

// TestReadFrameRejectsHostileLengthPrefix feeds readFrame length
// prefixes a hostile peer could fabricate and requires the typed
// ErrFrameTooLarge before any body allocation could happen.
func TestReadFrameRejectsHostileLengthPrefix(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    uint32
	}{
		{"just over limit", maxFrame + 1},
		{"4GiB-ish", 0xFFFFFFFF},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], tc.n)
			var scratch []byte
			_, err := readFrame(bytes.NewReader(hdr[:]), &scratch)
			if !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("length prefix %d: got %v, want ErrFrameTooLarge", tc.n, err)
			}
			if scratch != nil {
				t.Fatalf("hostile prefix allocated a %d-byte scratch buffer", cap(scratch))
			}
		})
	}
}

// TestReadFrameRejectsMalformedFrames covers the ErrBadFrame family:
// empty frames, unknown codec bytes, and bodies that fail to decode.
func TestReadFrameRejectsMalformedFrames(t *testing.T) {
	frame := func(body ...byte) []byte {
		b := make([]byte, 4, 4+len(body))
		binary.BigEndian.PutUint32(b, uint32(len(body)))
		return append(b, body...)
	}
	trailing := func() []byte {
		good, err := encodeFrameBytes(t, CodecBinary, wireFrame{Channel: "c", Kind: "k"})
		if err != nil {
			t.Fatal(err)
		}
		good = append(good, 0x00) // stray byte inside the frame body
		binary.BigEndian.PutUint32(good, uint32(len(good)-4))
		return good
	}
	for _, tc := range []struct {
		name string
		in   []byte
	}{
		{"empty frame", frame()},
		{"unknown codec byte", frame(0x7F, 1, 2, 3)},
		{"binary garbage body", frame(codecBinary, 0xFF, 0xFF, 0xFF)},
		{"gob garbage body", frame(codecGob, 0xFF, 0xFF, 0xFF)},
		{"binary trailing bytes", trailing()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var scratch []byte
			_, err := readFrame(bytes.NewReader(tc.in), &scratch)
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("got %v, want ErrBadFrame", err)
			}
		})
	}
}

// TestHostilePrefixClosesConnection is the end-to-end regression for
// the wire-path hardening: a raw TCP client that sends a frame whose
// length prefix exceeds maxFrame must get its connection closed by the
// node, and the node must keep serving well-formed peers afterwards.
func TestHostilePrefixClosesConnection(t *testing.T) {
	cluster, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	link, err := cluster.Factory()("hardening", network.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	conn, err := net.Dial("tcp", cluster.Node(0).Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hostile [4]byte
	binary.BigEndian.PutUint32(hostile[:], maxFrame+1)
	if _, err := conn.Write(hostile[:]); err != nil {
		t.Fatalf("write hostile prefix: %v", err)
	}
	// The node must hang up: the next read sees EOF or a reset, not a
	// hang (a timeout here means the connection was left open).
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	_, err = conn.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("node kept the connection open after a hostile length prefix")
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		t.Fatal("node neither closed the connection nor responded (read timed out)")
	}

	// Legitimate traffic still flows after the hostile peer is dropped.
	if err := link.Send(1, 0, "hard.ok", testutil.ConformancePayload{N: 9, S: "after"}, 8); err != nil {
		t.Fatalf("Send after hostile peer: %v", err)
	}
	select {
	case m := <-link.Recv(0):
		if p, ok := m.Payload.(testutil.ConformancePayload); !ok || p.N != 9 {
			t.Fatalf("mangled payload %#v", m.Payload)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delivery after hostile peer was dropped")
	}
}

// shortWriteConn is a net.Conn stub whose Write accepts at most chunk
// bytes per call, optionally failing once mid-stream: when total bytes
// would pass failAt it returns a partial count and an error.
type shortWriteConn struct {
	net.Conn // panics on unimplemented methods; only Write is used
	mu       sync.Mutex
	chunk    int
	failAt   int // fail once when total would pass this offset; -1 = never
	total    int
	buf      bytes.Buffer
}

func (c *shortWriteConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(b)
	if n > c.chunk {
		n = c.chunk
	}
	if c.failAt >= 0 && c.total+n > c.failAt {
		n = c.failAt - c.total
		c.failAt = -1
		c.buf.Write(b[:n])
		c.total += n
		return n, errors.New("injected write failure")
	}
	c.buf.Write(b[:n])
	c.total += n
	return n, nil
}

func (c *shortWriteConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

// TestWriteFullLoopsOverShortWrites proves the writer survives a
// net.Conn that dribbles: every byte arrives, in order, no error.
func TestWriteFullLoopsOverShortWrites(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 1000)
	conn := &shortWriteConn{chunk: 7, failAt: -1}
	n, err := writeFull(conn, payload)
	if err != nil || n != len(payload) {
		t.Fatalf("writeFull = (%d, %v), want (%d, nil)", n, err, len(payload))
	}
	if !bytes.Equal(conn.bytes(), payload) {
		t.Fatal("short-write path corrupted the stream")
	}
}

// TestWriteFullReportsPartialProgress pins the contract the writer's
// resend logic depends on: when the conn fails mid-stream, writeFull
// reports exactly how many bytes were written before the error, so the
// caller can tell complete frames from the torn one.
func TestWriteFullReportsPartialProgress(t *testing.T) {
	payload := bytes.Repeat([]byte{0xCD}, 500)
	conn := &shortWriteConn{chunk: 64, failAt: 200}
	n, err := writeFull(conn, payload)
	if err == nil {
		t.Fatal("injected failure did not surface")
	}
	if n != 200 {
		t.Fatalf("writeFull reported %d bytes written, want 200", n)
	}
	if !bytes.Equal(conn.bytes(), payload[:200]) {
		t.Fatal("bytes on the wire disagree with the reported count")
	}
}

// TestPruneWrittenKeepsTornFrameWhole unit-tests the writer's
// frame-boundary accounting after a mid-stream write error: frames
// written in full are dropped, the torn frame is kept whole from its
// first byte, and the resend-eligible count is exact.
func TestPruneWrittenKeepsTornFrameWhole(t *testing.T) {
	// Three frames of 10, 20, 30 bytes; ends = 10, 30, 60.
	mk := func() ([]byte, []int) {
		var b []byte
		for i, n := range []int{10, 20, 30} {
			for j := 0; j < n; j++ {
				b = append(b, byte(i+1))
			}
		}
		return b, []int{10, 30, 60}
	}
	for _, tc := range []struct {
		name       string
		written    int
		wantFrames []int // surviving frame ends, rebased
		wantResend int
	}{
		{"error before any byte", 0, []int{10, 30, 60}, 3},
		{"torn first frame", 5, []int{10, 30, 60}, 3},
		{"first frame complete", 10, []int{20, 50}, 2},
		{"torn second frame", 29, []int{20, 50}, 2},
		{"torn last frame", 59, []int{30}, 1},
		{"everything written", 60, []int{}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wbuf, ends := mk()
			orig, _ := mk()
			gotBuf, gotEnds, resend := pruneWritten(wbuf, ends, tc.written)
			if resend != tc.wantResend {
				t.Fatalf("resend = %d, want %d", resend, tc.wantResend)
			}
			if len(gotEnds) != len(tc.wantFrames) || (len(gotEnds) > 0 && !reflect.DeepEqual(gotEnds, tc.wantFrames)) {
				t.Fatalf("ends = %v, want %v", gotEnds, tc.wantFrames)
			}
			// Surviving bytes must be the untouched tail of the original
			// stream, starting at the torn frame's first byte.
			keepFrom := len(orig) - len(gotBuf)
			if !bytes.Equal(gotBuf, orig[keepFrom:]) {
				t.Fatal("surviving frames were corrupted by compaction")
			}
		})
	}
}

// TestWriterResendsAfterConnectionBreak drives the writer's resend path
// over real sockets: sever every established connection on the sending
// node mid-stream and require that every frame queued after the break
// still arrives intact on a fresh connection (frames already handed to
// the dead socket may be lost — TCP cannot promise exactly-once across
// a break — but nothing queued afterwards may be).
func TestWriterResendsAfterConnectionBreak(t *testing.T) {
	cluster, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	link, err := cluster.Factory()("resend", network.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	const total = 2000
	const breakAt = total / 2
	recv := link.Recv(1)
	got := make(map[int]bool, total)
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.After(20 * time.Second)
		for {
			select {
			case m := <-recv:
				got[m.Payload.(testutil.ConformancePayload).N] = true
				if got[total-1] && len(got) >= total-breakAt {
					// Heuristic drain: tail has arrived; grab stragglers.
					for {
						select {
						case m := <-recv:
							got[m.Payload.(testutil.ConformancePayload).N] = true
						case <-time.After(200 * time.Millisecond):
							return
						}
					}
				}
			case <-deadline:
				return
			}
		}
	}()
	for i := 0; i < total; i++ {
		if err := link.Send(0, 1, "resend.seq", testutil.ConformancePayload{N: i, S: "x"}, 8); err != nil {
			t.Fatalf("Send #%d: %v", i, err)
		}
		if i == breakAt {
			// Sever every established connection on the sending node;
			// in-flight writes fail and the writer must reconnect and
			// resend from the first incomplete frame.
			n0 := cluster.Node(0)
			n0.mu.Lock()
			for c := range n0.conns {
				c.Close()
			}
			n0.mu.Unlock()
		}
	}
	<-done
	// Frames enqueued after the break can only ever be written to the
	// fresh connection, so they must all arrive.
	for i := breakAt + 1; i < total; i++ {
		if !got[i] {
			t.Fatalf("frame %d (queued after the break) never arrived", i)
		}
	}
}
