package transport

import (
	"testing"
	"time"

	"moc/internal/network"
	"moc/internal/network/testutil"
)

// TestDownDuringReconnectBackoff is the regression test for
// tcpLink.Down always reporting false: once a peer is gone, the writer
// that keeps failing to dial it must surface Down(p) == true, and a
// recovered peer must read as up again.
func TestDownDuringReconnectBackoff(t *testing.T) {
	t.Parallel()
	cluster, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	link, err := cluster.Factory()("down", network.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	// Endpoint 1 starts up: no dial has failed.
	if link.Down(1) {
		t.Fatal("Down(1) true before any connectivity loss")
	}

	// Establish the node0 -> node1 connection, then kill node 1.
	if err := link.Send(0, 1, "ping", testutil.ConformancePayload{N: 1}, 4); err != nil {
		t.Fatal(err)
	}
	testutil.Drain(t, 5*time.Second, link.Recv(1), 1, testutil.Source("link", link.Stats))
	cluster.Node(1).Close()

	// Keep sending: the dead connection fails, the re-dial fails, and the
	// writer enters backoff — which is exactly when Down must flip true.
	testutil.Eventually(t, 10*time.Second, func() bool {
		_ = link.Send(0, 1, "ping", testutil.ConformancePayload{N: 2}, 4)
		return link.Down(1)
	}, testutil.Source("link", link.Stats))

	// A fresh node adopting the address brings the peer back up: the
	// writer's next dial succeeds and clears the flag.
	node1b, err := Listen(Config{Self: 1, Addrs: cluster.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer node1b.Close()
	if _, err := node1b.Factory()("down", network.Config{Procs: 2}); err != nil {
		t.Fatal(err)
	}
	testutil.Eventually(t, 10*time.Second, func() bool {
		_ = link.Send(0, 1, "ping", testutil.ConformancePayload{N: 3}, 4)
		return !link.Down(1)
	}, testutil.Source("link", link.Stats))
}

// TestWriterCoalescesFrames drives a burst through one peer connection
// and checks the writer-side group-commit meters: queued frames must be
// flushed in multi-frame writes, every frame must still arrive, in
// order.
func TestWriterCoalescesFrames(t *testing.T) {
	t.Parallel()
	cluster, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	link, err := cluster.Factory()("burst", network.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	// A first send forces the dial so the burst below queues behind an
	// established connection rather than behind the dial.
	if err := link.Send(0, 1, "warm", testutil.ConformancePayload{N: -1}, 4); err != nil {
		t.Fatal(err)
	}
	testutil.Drain(t, 5*time.Second, link.Recv(1), 1, testutil.Source("link", link.Stats))

	const burst = 500
	for i := 0; i < burst; i++ {
		if err := link.Send(0, 1, "burst", testutil.ConformancePayload{N: i}, 8); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	got := testutil.Drain(t, 10*time.Second, link.Recv(1), burst, testutil.Source("link", link.Stats))
	for i, m := range got {
		if m.Payload.(testutil.ConformancePayload).N != i {
			t.Fatalf("delivery %d carried %v (reorder across coalesced writes)", i, m.Payload)
		}
	}
	st := link.Stats()
	if st.Batches == 0 || st.BatchedFrames < 2 {
		t.Fatalf("no coalesced writes metered for a %d-frame burst: %+v", burst, st)
	}
	if st.BatchedFrames < 2*st.Batches {
		t.Fatalf("BatchedFrames %d < 2*Batches %d: multi-frame flushes must carry >= 2 frames",
			st.BatchedFrames, st.Batches)
	}
}
