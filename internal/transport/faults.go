// Socket-level fault injection for the TCP transport.
//
// Faults mirrors the simulated network.Faults API (seed-driven, timed
// windows measured from node start) but injects at the layer the real
// deployment actually fails at: the outbound net.Conn. Resets close the
// connection before anything is written, so the writer's pruneWritten
// resend path runs exactly as it would after a real RST. Corruption
// flips the first frame's codec byte on the wire — the peer's readFrame
// must reject it (ErrBadFrame) and kill the connection before consuming
// any frame, which is precisely the codec hardening PR 6 promised.
// Partitions refuse dials (and reset established connections) toward the
// named peers during their window, so the existing backoff loop paces
// reconnect attempts instead of spinning. Delay/jitter and bandwidth
// throttling slow the write path without breaking it.
//
// All injection happens on the write side of outbound connections. When
// every node in a cluster is given the same fault config, each direction
// of a peer pair is faulted by its sending node, which yields the same
// symmetric behavior the simulated network produces centrally. Every
// injected event is counted in FaultStats.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults configures seed-driven socket fault injection for one node.
// The zero value injects nothing. Windows (partitions) are measured
// from the node's Listen time, matching network.Faults measuring from
// network creation.
type Faults struct {
	// Seed drives every probabilistic draw. Same seed + same workload
	// timing = same fault distribution (exact reproduction is not
	// possible over real sockets, where goroutine scheduling perturbs
	// draw order — the sim keeps that promise, the transport keeps it
	// in distribution).
	Seed int64
	// ResetProb is the per-write probability that the connection is
	// reset instead: nothing reaches the wire, the conn is closed, and
	// the write reports an injected reset. The transport's resend path
	// re-delivers every queued frame on the next connection.
	ResetProb float64
	// CorruptProb is the per-write probability that the first frame's
	// codec byte is corrupted on the wire. The receiving node must
	// reject the frame (ErrBadFrame) and close the connection without
	// consuming anything; the write reports zero bytes so every frame
	// is resent intact afterwards.
	CorruptProb float64
	// Delay and Jitter add Delay + U[0,Jitter) of latency before every
	// write on a faulty connection.
	Delay  time.Duration
	Jitter time.Duration
	// Bandwidth, when positive, throttles outbound bytes to this many
	// bytes per second (token-bucket pacing across all peers).
	Bandwidth int64
	// Partitions lists timed outbound partitions. While a partition is
	// active, dials to its peers fail (entering the jittered backoff
	// loop) and established connections to them are reset on the next
	// write.
	Partitions []PeerPartition
}

// PeerPartition cuts this node off from the listed peers during
// [Start, Heal), measured from node start.
type PeerPartition struct {
	Peers []int
	Start time.Duration
	Heal  time.Duration
}

// FaultStats counts injected events on one node.
type FaultStats struct {
	Resets            int64 // connections reset by ResetProb or an active partition
	Corrupted         int64 // writes whose leading codec byte was corrupted
	Delayed           int64 // writes delayed by Delay/Jitter
	Throttled         int64 // writes paced by Bandwidth
	PartitionRefusals int64 // dial attempts refused by an active partition
}

func (f *Faults) validate(peers int) error {
	if f.ResetProb < 0 || f.ResetProb > 1 {
		return fmt.Errorf("transport: ResetProb %g outside [0,1]", f.ResetProb)
	}
	if f.CorruptProb < 0 || f.CorruptProb > 1 {
		return fmt.Errorf("transport: CorruptProb %g outside [0,1]", f.CorruptProb)
	}
	if f.Delay < 0 || f.Jitter < 0 {
		return fmt.Errorf("transport: negative Delay/Jitter (%v/%v)", f.Delay, f.Jitter)
	}
	if f.Bandwidth < 0 {
		return fmt.Errorf("transport: negative Bandwidth %d", f.Bandwidth)
	}
	for i, pt := range f.Partitions {
		if pt.Start < 0 || pt.Heal <= pt.Start {
			return fmt.Errorf("transport: partition %d window [%v,%v) is empty or negative", i, pt.Start, pt.Heal)
		}
		if len(pt.Peers) == 0 {
			return fmt.Errorf("transport: partition %d names no peers", i)
		}
		for _, p := range pt.Peers {
			if p < 0 || p >= peers {
				return fmt.Errorf("transport: partition %d peer %d out of range [0,%d)", i, p, peers)
			}
		}
	}
	return nil
}

// Injected fault errors. They satisfy net error checks loosely enough
// for the writer's generic retry path; callers never see them (the
// transport absorbs write errors into reconnect+resend).
var (
	errInjectedReset   = errors.New("transport: injected connection reset")
	errInjectedCorrupt = errors.New("transport: injected frame corruption")
	errPartitioned     = errors.New("transport: injected partition")
)

// faultState is the per-node runtime for fault injection.
type faultState struct {
	cfg   Faults
	start time.Time

	mu       sync.Mutex
	rng      *rand.Rand
	nextFree time.Time // bandwidth pacing horizon

	resets    atomic.Int64
	corrupted atomic.Int64
	delayed   atomic.Int64
	throttled atomic.Int64
	refusals  atomic.Int64
}

func newFaultState(cfg Faults) *faultState {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &faultState{
		cfg:   cfg,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// partitioned reports whether an outbound partition toward peer is
// active right now.
func (fs *faultState) partitioned(peer int) bool {
	elapsed := time.Since(fs.start)
	for _, pt := range fs.cfg.Partitions {
		if elapsed < pt.Start || elapsed >= pt.Heal {
			continue
		}
		for _, p := range pt.Peers {
			if p == peer {
				return true
			}
		}
	}
	return false
}

// refuseDial reports whether a dial to peer should fail (active
// partition), counting the refusal.
func (fs *faultState) refuseDial(peer int) bool {
	if !fs.partitioned(peer) {
		return false
	}
	fs.refusals.Add(1)
	return true
}

// stats snapshots the injected-event counters.
func (fs *faultState) stats() FaultStats {
	return FaultStats{
		Resets:            fs.resets.Load(),
		Corrupted:         fs.corrupted.Load(),
		Delayed:           fs.delayed.Load(),
		Throttled:         fs.throttled.Load(),
		PartitionRefusals: fs.refusals.Load(),
	}
}

// wrap dresses an outbound connection to peer in the fault layer.
func (fs *faultState) wrap(peer int, c net.Conn) net.Conn {
	return &faultConn{Conn: c, fs: fs, peer: peer}
}

// faultConn injects faults on the write side of one outbound
// connection. Reads pass through untouched: with every node faulting
// its own outbound side, both directions of a peer pair are covered.
type faultConn struct {
	net.Conn
	fs   *faultState
	peer int
}

func (c *faultConn) Write(b []byte) (int, error) {
	fs := c.fs

	// An active partition resets the established connection; the
	// writer's next dial attempt is then refused until the window
	// heals, which parks it in the jittered backoff loop.
	if fs.partitioned(c.peer) {
		fs.resets.Add(1)
		c.Conn.Close()
		return 0, errPartitioned
	}

	// Probabilistic draws and pacing arithmetic under the lock; the
	// sleeps happen outside it so concurrent peers are not serialized.
	fs.mu.Lock()
	reset := fs.cfg.ResetProb > 0 && fs.rng.Float64() < fs.cfg.ResetProb
	corrupt := !reset && fs.cfg.CorruptProb > 0 && fs.rng.Float64() < fs.cfg.CorruptProb
	var jitter time.Duration
	if fs.cfg.Jitter > 0 {
		jitter = time.Duration(fs.rng.Int63n(int64(fs.cfg.Jitter)))
	}
	var pace time.Duration
	if fs.cfg.Bandwidth > 0 {
		now := time.Now()
		if fs.nextFree.Before(now) {
			fs.nextFree = now
		}
		pace = fs.nextFree.Sub(now)
		busy := time.Duration(int64(len(b)) * int64(time.Second) / fs.cfg.Bandwidth)
		fs.nextFree = fs.nextFree.Add(busy)
	}
	fs.mu.Unlock()

	if reset {
		fs.resets.Add(1)
		c.Conn.Close()
		return 0, errInjectedReset
	}
	if d := fs.cfg.Delay + jitter; d > 0 {
		fs.delayed.Add(1)
		time.Sleep(d)
	}
	if pace > 0 {
		fs.throttled.Add(1)
		time.Sleep(pace)
	}

	// Corruption flips the first frame's codec byte (offset 4, after
	// the length prefix) on the wire only — never in the caller's
	// buffer, which must stay intact for the resend. 0x80|codec is
	// never a valid codec byte, so the peer's readFrame fails with
	// ErrBadFrame before consuming any frame and closes the
	// connection; reporting zero bytes written makes the transport
	// resend everything intact on the next connection.
	if corrupt && len(b) > 4 {
		fs.corrupted.Add(1)
		if _, err := c.Conn.Write(b[:4]); err == nil {
			if _, err := c.Conn.Write([]byte{b[4] | 0x80}); err == nil {
				c.Conn.Write(b[5:])
			}
		}
		c.Conn.Close()
		return 0, errInjectedCorrupt
	}

	return c.Conn.Write(b)
}
