package transport

import (
	"fmt"
	"net"

	"moc/internal/network"
)

// Cluster is an in-process loopback TCP cluster: n Nodes, each bound to
// a 127.0.0.1 port, exchanging real frames through the kernel. It lets
// a single test or benchmark (experiment E14) run the full serialize →
// TCP → deserialize path without spawning OS processes.
type Cluster struct {
	nodes []*Node
}

// NewCluster binds n loopback listeners on ephemeral ports, assembles
// the shared address list, and starts one Node per address. Frames use
// the default binary codec.
func NewCluster(n int) (*Cluster, error) {
	return NewClusterWithCodec(n, CodecBinary)
}

// NewClusterWithCodec is NewCluster with an explicit send codec
// (CodecBinary or CodecGob) on every node, for benchmarks and tests
// that compare the two wire encodings.
func NewClusterWithCodec(n int, codec string) (*Cluster, error) {
	return newCluster(n, codec, nil)
}

// NewFaultyCluster is NewCluster with the same fault-injection config
// installed on every node. Each direction of every peer pair is then
// faulted by its sending side, which reproduces the symmetric faults
// the simulated network injects centrally.
func NewFaultyCluster(n int, faults Faults) (*Cluster, error) {
	return newCluster(n, CodecBinary, &faults)
}

func newCluster(n int, codec string, faults *Faults) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: cluster size %d", n)
	}
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				lns[j].Close()
			}
			return nil, fmt.Errorf("transport: bind loopback: %w", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	c := &Cluster{nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		node, err := Listen(Config{Self: i, Addrs: addrs, Listener: lns[i], Codec: codec, Faults: faults})
		if err != nil {
			c.Close()
			for j := i; j < n; j++ {
				lns[j].Close()
			}
			return nil, err
		}
		c.nodes[i] = node
	}
	return c, nil
}

// Node returns cluster member i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Addrs returns the cluster's address list in node order.
func (c *Cluster) Addrs() []string {
	addrs := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		addrs[i] = n.Addr()
	}
	return addrs
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		if n != nil {
			n.Close()
		}
	}
}

// Factory returns a network.Factory that builds each named channel on
// every node and presents the union as a single Link. Sends route
// through the node owning the from-endpoint (so they are accepted, not
// dropped as replicas), and Recv(p) reads from the node owning p —
// exactly how a protocol stack distributed across the daemons would see
// the channel. This is what lets one in-process core.Store drive real
// TCP: the store's n protocol endpoints live on n distinct nodes.
func (c *Cluster) Factory() network.Factory {
	return func(name string, cfg network.Config) (network.Link, error) {
		parts := make([]*tcpLink, len(c.nodes))
		for i, node := range c.nodes {
			l, err := node.Factory()(name, cfg)
			if err != nil {
				for j := 0; j < i; j++ {
					parts[j].Close()
				}
				return nil, err
			}
			parts[i] = l.(*tcpLink)
		}
		return &clusterLink{cluster: c, parts: parts, endpoints: cfg.Procs}, nil
	}
}

// clusterLink presents one logical channel built on every cluster node
// as a single network.Link.
type clusterLink struct {
	cluster   *Cluster
	parts     []*tcpLink
	endpoints int
}

var _ network.Link = (*clusterLink)(nil)

func (cl *clusterLink) owner(endpoint int) int { return endpoint % len(cl.parts) }

func (cl *clusterLink) Send(from, to int, kind string, payload any, bytes int) error {
	if from < 0 || from >= cl.endpoints || to < 0 || to >= cl.endpoints {
		return fmt.Errorf("transport: endpoint out of range: %d -> %d (of %d)", from, to, cl.endpoints)
	}
	return cl.parts[cl.owner(from)].Send(from, to, kind, payload, bytes)
}

func (cl *clusterLink) Broadcast(from int, kind string, payload any, bytes int) error {
	if from < 0 || from >= cl.endpoints {
		return fmt.Errorf("transport: endpoint %d out of range (of %d)", from, cl.endpoints)
	}
	return cl.parts[cl.owner(from)].Broadcast(from, kind, payload, bytes)
}

func (cl *clusterLink) Recv(p int) <-chan network.Message {
	return cl.parts[cl.owner(p)].Recv(p)
}

// Stats merges the per-node channel stats. Send-side counters sum
// cleanly; Reconnects is each node's node-wide count, summed.
func (cl *clusterLink) Stats() network.Stats {
	var st network.Stats
	for _, p := range cl.parts {
		st.Merge(p.Stats())
	}
	return st
}

func (cl *clusterLink) Procs() int { return cl.endpoints }

// Down reports whether any cluster node's writer toward p's owner is
// in reconnect backoff — the union of the per-node views, since the
// logical channel spans every node.
func (cl *clusterLink) Down(p int) bool {
	for _, part := range cl.parts {
		if part.Down(p) {
			return true
		}
	}
	return false
}

func (cl *clusterLink) Close() {
	for _, p := range cl.parts {
		p.Close()
	}
}
