package recovery

import (
	"strings"
	"sync"
	"testing"
	"time"

	"moc/internal/network"
	"moc/internal/object"
)

// fakeState is an in-memory recovery.State with the same adoption rule as
// the protocols: a checkpoint is installed iff it is strictly fresher
// than the local applied count.
type fakeState struct {
	mu  sync.Mutex
	cks []Checkpoint
}

func newFakeState(applied ...int64) *fakeState {
	s := &fakeState{cks: make([]Checkpoint, len(applied))}
	for p, a := range applied {
		s.cks[p] = Checkpoint{
			Values:  []object.Value{object.Value(100*p + 1), object.Value(100*p + 2)},
			TS:      []int64{a, a},
			Applied: a,
		}
	}
	return s
}

func (s *fakeState) Snapshot(proc int) Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck := s.cks[proc]
	return Checkpoint{
		Values:  append([]object.Value(nil), ck.Values...),
		TS:      append([]int64(nil), ck.TS...),
		Applied: ck.Applied,
	}
}

func (s *fakeState) Adopt(proc int, ck Checkpoint) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ck.Applied <= s.cks[proc].Applied {
		return false
	}
	s.cks[proc] = ck
	return true
}

func (s *fakeState) applied(proc int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cks[proc].Applied
}

func newService(t *testing.T, st State, procs int, faults *network.Faults) *Service {
	t.Helper()
	svc, err := New(Config{
		Procs:    procs,
		Seed:     41,
		MaxDelay: 500 * time.Microsecond,
		Faults:   faults,
		State:    st,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestRecoverAdoptsFreshest: with peers at different applied counts the
// restarted process must install the single freshest checkpoint offered —
// values, version vector and applied count — not merely any fresher one.
func TestRecoverAdoptsFreshest(t *testing.T) {
	st := newFakeState(2, 5, 9)
	svc := newService(t, st, 3, nil)

	adopted, applied, err := svc.Recover(0, 5*time.Second)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !adopted {
		t.Fatal("stale process did not adopt a checkpoint")
	}
	if applied != 9 {
		t.Fatalf("Recover reported applied = %d, want 9 (freshest peer)", applied)
	}
	got := st.Snapshot(0)
	if got.Applied != 9 {
		t.Fatalf("adopted applied = %d, want 9 (freshest peer)", got.Applied)
	}
	// The installed snapshot must be peer 2's, wholesale.
	if got.Values[0] != 201 || got.Values[1] != 202 {
		t.Fatalf("adopted values = %v, want peer 2's [201 202]", got.Values)
	}
	if got.TS[0] != 9 || got.TS[1] != 9 {
		t.Fatalf("adopted version vector = %v, want peer 2's [9 9]", got.TS)
	}
	if svc.Adopted() != 1 {
		t.Fatalf("Adopted() = %d, want 1", svc.Adopted())
	}
}

// TestRecoverRejectsStale: a process whose local state is at least as
// fresh as every offer must keep its own replica — the transfer happens,
// but nothing is installed.
func TestRecoverRejectsStale(t *testing.T) {
	st := newFakeState(10, 3, 5)
	svc := newService(t, st, 3, nil)

	adopted, _, err := svc.Recover(0, 5*time.Second)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if adopted {
		t.Fatal("stale peer checkpoint was adopted over fresher local state")
	}
	if got := st.applied(0); got != 10 {
		t.Fatalf("local applied clobbered: %d, want 10", got)
	}
	if svc.Adopted() != 0 {
		t.Fatalf("Adopted() = %d, want 0", svc.Adopted())
	}
}

// TestRecoverIdempotent: replaying the same transfer is a no-op — the
// first Recover installs the freshest checkpoint, the second finds local
// state already as fresh and installs nothing.
func TestRecoverIdempotent(t *testing.T) {
	st := newFakeState(0, 7, 7)
	svc := newService(t, st, 3, nil)

	adopted, _, err := svc.Recover(0, 5*time.Second)
	if err != nil || !adopted {
		t.Fatalf("first Recover = (%v, %v), want adoption", adopted, err)
	}
	again, applied, err := svc.Recover(0, 5*time.Second)
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if again {
		t.Fatal("replayed transfer installed a checkpoint twice")
	}
	if applied != 7 {
		t.Fatalf("replayed Recover reported applied = %d, want 7", applied)
	}
	if got := st.applied(0); got != 7 {
		t.Fatalf("applied after replay = %d, want 7", got)
	}
	if svc.Adopted() != 1 {
		t.Fatalf("Adopted() = %d after replay, want 1", svc.Adopted())
	}
}

// TestRecoverNoLivePeer: when the transfer network counts every peer as
// crashed, Recover must fail loudly rather than hang or adopt nothing
// silently.
func TestRecoverNoLivePeer(t *testing.T) {
	st := newFakeState(0, 9)
	svc := newService(t, st, 2, &network.Faults{Crashes: []network.Crash{
		{Proc: 1, At: 0, Restart: time.Hour},
	}})

	if svc.Up(1) {
		t.Fatal("peer 1 should be down under the crash schedule")
	}
	_, _, err := svc.Recover(0, 100*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "no live peer") {
		t.Fatalf("Recover with all peers down = %v, want no-live-peer error", err)
	}
	if got := st.applied(0); got != 0 {
		t.Fatalf("applied changed with no live peer: %d", got)
	}
}

// TestRecoverArgAndLifecycleErrors pins the error surface: out-of-range
// processes are rejected, and a closed service refuses transfers.
func TestRecoverArgAndLifecycleErrors(t *testing.T) {
	st := newFakeState(0, 1)
	svc, err := New(Config{Procs: 2, State: st})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, _, err := svc.Recover(-1, time.Second); err == nil {
		t.Fatal("Recover(-1) accepted")
	}
	if _, _, err := svc.Recover(2, time.Second); err == nil {
		t.Fatal("Recover(out of range) accepted")
	}
	svc.Close()
	svc.Close() // idempotent
	if _, _, err := svc.Recover(0, time.Second); err != ErrClosed {
		t.Fatalf("Recover after Close = %v, want ErrClosed", err)
	}
}

// TestNewValidation: the constructor rejects a missing state and a bad
// process count.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Procs: 0, State: newFakeState(0)}); err == nil {
		t.Fatal("Procs=0 accepted")
	}
	if _, err := New(Config{Procs: 2}); err == nil {
		t.Fatal("nil State accepted")
	}
}

// hangState wraps fakeState so one peer accepts the solicitation but
// never answers it: its Snapshot blocks until the test releases it.
// This models a hung-but-connected daemon, which is a different failure
// from a crash — the transfer network still counts it as live, so it is
// solicited, and only the timeout saves the recovering process.
type hangState struct {
	*fakeState
	hung    int
	release chan struct{}
}

func (s *hangState) Snapshot(proc int) Checkpoint {
	if proc == s.hung {
		<-s.release
	}
	return s.fakeState.Snapshot(proc)
}

// TestRecoverHungPeerTimesOutAndUsesNext: the freshest peer hangs
// mid-transfer, so Recover must ride out the timeout and adopt the best
// checkpoint among the peers that actually responded — not block
// forever and not fail outright.
func TestRecoverHungPeerTimesOutAndUsesNext(t *testing.T) {
	st := &hangState{fakeState: newFakeState(0, 5, 9), hung: 2, release: make(chan struct{})}
	svc := newService(t, st, 3, nil)
	// LIFO cleanup: the hung Snapshot is released before svc.Close waits
	// on the serve goroutines, so shutdown cannot deadlock.
	t.Cleanup(func() { close(st.release) })

	const timeout = 400 * time.Millisecond
	start := time.Now()
	adopted, applied, err := svc.Recover(0, timeout)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Recover with hung peer: %v", err)
	}
	if !adopted || applied != 5 {
		t.Fatalf("Recover = (adopted=%v, applied=%d), want adoption of responsive peer 1 (applied 5)", adopted, applied)
	}
	if got := st.applied(0); got != 5 {
		t.Fatalf("installed applied = %d, want 5", got)
	}
	if elapsed < timeout {
		t.Fatalf("Recover returned in %v, before the %v timeout — it cannot know the hung peer is silent earlier", elapsed, timeout)
	}
	if elapsed > timeout+2*time.Second {
		t.Fatalf("Recover took %v, far beyond the %v timeout: hung peer was waited on, not timed out", elapsed, timeout)
	}
}
