package recovery

import "moc/internal/wire"

// Transfer requests and responses may cross a real serializing
// transport (internal/transport); register them with the wire registry
// under their stable tags (the registry also performs the gob
// registration for the `-codec=gob` fallback).
func init() {
	wire.Register(wire.TagXferReq, xferReq{})
	wire.Register(wire.TagXferResp, xferResp{})
}

// MarshalWire implements wire.Marshaler.
func (m xferReq) MarshalWire(b []byte) ([]byte, error) {
	return wire.AppendVarint(b, m.ReqID), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *xferReq) UnmarshalWire(d *wire.Decoder) error {
	m.ReqID = d.Varint()
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (m xferResp) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, m.ReqID)
	b = wire.AppendInt64s(b, m.CK.Values)
	b = wire.AppendInt64s(b, m.CK.TS)
	return wire.AppendVarint(b, m.CK.Applied), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *xferResp) UnmarshalWire(d *wire.Decoder) error {
	m.ReqID = d.Varint()
	m.CK.Values = d.Int64s()
	m.CK.TS = d.Int64s()
	m.CK.Applied = d.Varint()
	return d.Err()
}
