package recovery

import "encoding/gob"

// Transfer requests and responses may cross a real serializing
// transport (internal/transport); register them with gob.
func init() {
	gob.Register(xferReq{})
	gob.Register(xferResp{})
}
