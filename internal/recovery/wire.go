package recovery

import "moc/internal/wire"

// Transfer requests and responses may cross a real serializing
// transport (internal/transport); register them with the wire registry
// (which performs the gob registration).
func init() {
	wire.Register(xferReq{})
	wire.Register(xferResp{})
}
