// Package recovery implements checkpointed state transfer for
// crash-recovery: a restarting process rejoins by fetching a version-
// vector checkpoint — replica values, per-object version vector, and the
// count of total-order updates applied — from a live peer, adopting the
// freshest one offered, and then replaying the missed total-order
// updates its broadcast layer redelivers (the protocol's delivery loop
// skips updates at or below the checkpoint's applied count, so nothing
// is applied twice).
//
// Correctness leans on the version-vector machinery of Section 5 of
// Mittal & Garg (1998): a checkpoint with applied count K reflects
// exactly the first K updates of the atomic-broadcast total order, so
// adopting it is indistinguishable from having applied those K updates
// locally — the per-object versions (P5.3) and the reads-from mapping
// derived from them (D5.1) are identical. Recovery therefore preserves
// the proof obligations the monitor checks across the crash boundary.
package recovery

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"moc/internal/network"
	"moc/internal/object"
)

// Checkpoint is one replica snapshot offered for adoption.
type Checkpoint struct {
	// Values are the replica's object values, indexed by object ID.
	Values []object.Value
	// TS is the replica's per-object version vector.
	TS []int64
	// Applied is how many total-order updates the snapshot reflects:
	// exactly the first Applied deliveries of the broadcast order.
	Applied int64
}

// State is the replica store the service checkpoints — implemented by
// the m-SC and m-linearizability protocols.
type State interface {
	// Snapshot captures process proc's current checkpoint.
	Snapshot(proc int) Checkpoint
	// Adopt installs ck into process proc if it is strictly fresher than
	// the local state (ck.Applied greater than the local applied count),
	// reporting whether it was installed.
	Adopt(proc int, ck Checkpoint) bool
}

// Config parameterizes New.
type Config struct {
	// Procs is the number of processes.
	Procs int
	// Seed, MinDelay, MaxDelay parameterize the transfer network.
	Seed               int64
	MinDelay, MaxDelay time.Duration
	// Faults should carry the same crash schedule as the protocol
	// networks so a crashed peer cannot serve checkpoints.
	Faults *network.Faults
	// State is the replica store to checkpoint. Required.
	State State
	// Links optionally supplies the transfer-network transport (channel
	// name "recovery"); nil uses the simulated network stack.
	Links network.Factory
}

// xferReq asks a peer for its current checkpoint. (Wire payloads carry
// exported fields so a serializing transport can marshal them.)
type xferReq struct {
	ReqID int64
}

// xferResp carries the peer's checkpoint back.
type xferResp struct {
	ReqID int64
	CK    Checkpoint
}

// ckArrival pairs a response with its sender for freshest-peer choice.
type ckArrival struct {
	reqID int64
	from  int
	ck    Checkpoint
}

// ErrClosed is returned by Recover after Close.
var ErrClosed = errors.New("recovery: closed")

// Service answers and issues checkpoint transfers over its own network.
// Create with New; always Close.
type Service struct {
	cfg     Config
	net     network.Link
	waiters []chan ckArrival
	nextID  atomic.Int64
	adopted atomic.Int64
	stop    chan struct{}
	closed  atomic.Bool
	wg      sync.WaitGroup
	recovMu []sync.Mutex // one Recover at a time per process
}

// New starts the transfer service.
func New(cfg Config) (*Service, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("recovery: invalid proc count %d", cfg.Procs)
	}
	if cfg.State == nil {
		return nil, errors.New("recovery: state is required")
	}
	link, err := cfg.Links.Build("recovery", network.Config{
		Procs:    cfg.Procs,
		Seed:     cfg.Seed,
		MinDelay: cfg.MinDelay,
		MaxDelay: cfg.MaxDelay,
		Faults:   cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:     cfg,
		net:     link,
		waiters: make([]chan ckArrival, cfg.Procs),
		stop:    make(chan struct{}),
		recovMu: make([]sync.Mutex, cfg.Procs),
	}
	for i := range s.waiters {
		s.waiters[i] = make(chan ckArrival, cfg.Procs)
	}
	for p := 0; p < cfg.Procs; p++ {
		s.wg.Add(1)
		go s.serve(p)
	}
	return s, nil
}

// serve answers transfer requests at endpoint p and routes responses to
// a waiting Recover call.
func (s *Service) serve(p int) {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case msg := <-s.net.Recv(p):
			switch m := msg.Payload.(type) {
			case xferReq:
				ck := s.cfg.State.Snapshot(p)
				bytes := 16 + 16*len(ck.Values)
				_ = s.net.Send(p, msg.From, "recov.ck", xferResp{ReqID: m.ReqID, CK: ck}, bytes)
			case xferResp:
				select {
				case s.waiters[p] <- ckArrival{reqID: m.ReqID, from: msg.From, ck: m.CK}:
				default: // stale response for a finished Recover
				}
			}
		}
	}
}

// Recover runs one state transfer for a restarted process: it asks every
// live peer for a checkpoint, waits up to timeout for responses
// (finishing early once all solicited peers answer), and adopts the
// freshest checkpoint received if it is fresher than the local state.
// It reports whether a checkpoint was adopted and the freshest offered
// applied count (how many total-order deliveries the adopted state
// already covers — the broadcast resume point for a rejoining process);
// reaching no peer within the timeout is an error. A peer that accepts
// the solicitation but never responds (hung, not crashed) simply never
// lands in the response set: the timeout fires and the freshest of the
// responsive peers wins. The caller must ensure no operation is in
// flight at proc (the store serializes this under the process mutex).
func (s *Service) Recover(proc int, timeout time.Duration) (bool, int64, error) {
	if proc < 0 || proc >= s.cfg.Procs {
		return false, 0, fmt.Errorf("recovery: invalid process %d", proc)
	}
	if s.closed.Load() {
		return false, 0, ErrClosed
	}
	s.recovMu[proc].Lock()
	defer s.recovMu[proc].Unlock()

	reqID := s.nextID.Add(1)
	// Drain stale arrivals from any previous recovery.
	for {
		select {
		case <-s.waiters[proc]:
			continue
		default:
		}
		break
	}
	asked := 0
	for q := 0; q < s.cfg.Procs; q++ {
		if q == proc || s.net.Down(q) {
			continue
		}
		if err := s.net.Send(proc, q, "recov.req", xferReq{ReqID: reqID}, 16); err != nil {
			return false, 0, err
		}
		asked++
	}
	if asked == 0 {
		return false, 0, errors.New("recovery: no live peer to recover from")
	}

	var best *Checkpoint
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	got := 0
collect:
	for got < asked {
		select {
		case arr := <-s.waiters[proc]:
			if arr.reqID != reqID {
				continue
			}
			got++
			if best == nil || arr.ck.Applied > best.Applied {
				ck := arr.ck
				best = &ck
			}
		case <-deadline.C:
			break collect
		case <-s.stop:
			return false, 0, ErrClosed
		}
	}
	if best == nil {
		return false, 0, fmt.Errorf("recovery: no checkpoint received within %v", timeout)
	}
	if !s.cfg.State.Adopt(proc, *best) {
		return false, best.Applied, nil // local state already as fresh (short outage)
	}
	s.adopted.Add(1)
	return true, best.Applied, nil
}

// Up reports whether proc is currently up on the transfer network. A
// Recover issued while the transfer network still counts proc as
// crashed loses every request and response silently, so callers acting
// on a restart schedule should wait for Up before recovering.
func (s *Service) Up(proc int) bool { return !s.net.Down(proc) }

// Adopted reports how many checkpoints have been installed.
func (s *Service) Adopted() int64 { return s.adopted.Load() }

// Traffic returns the transfer network's counters.
func (s *Service) Traffic() network.Stats { return s.net.Stats() }

// Close shuts the service down.
func (s *Service) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.stop)
	s.net.Close()
	s.wg.Wait()
}
