package verify

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"moc/internal/monitor"
	"moc/internal/shard"
)

// ServiceConfig parameterizes the verification service.
type ServiceConfig struct {
	// Level overrides the monitor level; zero derives it from the first
	// Hello's consistency string ("mlin" → MLinLevel, else MSCLevel).
	Level monitor.Level
	// Window is the pipeline's GC window in released records; zero
	// retains everything.
	Window int
	// SlackNs is the merge watermark slack; zero uses DefaultSlackNs.
	SlackNs int64
}

// Service is the mocmon core: it accepts record streams on one
// listener, drives a single Pipeline, and serves a JSON-lines status
// RPC (status / violations / stats / shutdown) on another — the same
// shape as mocrpc, so campaign drivers script it the same way.
//
// The store parameters (object registry, consistency condition) are
// learned from the first stream's Hello; later streams must announce
// the same ones or are rejected.
type Service struct {
	cfg ServiceConfig

	streamLn net.Listener
	rpcLn    net.Listener

	mu          sync.Mutex
	pipe        *Pipeline
	consistency string
	objects     []string
	shards      string
	rejected    int64
	conns       map[net.Conn]struct{}

	wg       sync.WaitGroup
	stop     chan struct{}
	stopOnce sync.Once
	onStop   func()
}

// NewService starts a service on the given listeners. onStop, if
// non-nil, runs once when a shutdown RPC arrives (mocmon uses it to
// exit its main loop).
func NewService(streamLn, rpcLn net.Listener, cfg ServiceConfig, onStop func()) *Service {
	s := &Service{
		cfg:      cfg,
		streamLn: streamLn,
		rpcLn:    rpcLn,
		stop:     make(chan struct{}),
		onStop:   onStop,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptStreams()
	if rpcLn != nil {
		s.wg.Add(1)
		go s.acceptRPC()
	}
	return s
}

// Close stops both listeners, closes live connections, and waits for
// their handlers.
func (s *Service) Close() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.streamLn.Close()
		if s.rpcLn != nil {
			s.rpcLn.Close()
		}
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

// track registers a live connection for Close; it reports false when
// the service is already stopping.
func (s *Service) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.stop:
		return false
	default:
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Service) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Pipeline returns the service's pipeline once the first stream has
// created it (nil before that).
func (s *Service) Pipeline() *Pipeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pipe
}

// pipelineFor returns the pipeline for a stream's Hello, creating it on
// first use and rejecting parameter mismatches after that.
func (s *Service) pipelineFor(h Hello) (*Pipeline, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pipe == nil {
		level := s.cfg.Level
		if level == 0 {
			level = monitor.MSCLevel
			if h.Consistency == "mlin" {
				level = monitor.MLinLevel
			}
		}
		numShards := 1
		if h.Shards != "" {
			m, err := shard.ParseSpec(h.Shards)
			if err != nil {
				s.rejected++
				return nil, fmt.Errorf("stream node %d announced shard map %q: %v", h.Node, h.Shards, err)
			}
			if m.Objects() != len(h.Objects) {
				s.rejected++
				return nil, fmt.Errorf("stream node %d shard map %q covers %d objects, Hello lists %d",
					h.Node, h.Shards, m.Objects(), len(h.Objects))
			}
			numShards = m.Shards()
		}
		s.pipe = NewPipeline(PipelineConfig{
			NumObjects: len(h.Objects),
			Level:      level,
			Window:     s.cfg.Window,
			SlackNs:    s.cfg.SlackNs,
			Shards:     numShards,
		})
		s.consistency = h.Consistency
		s.objects = append([]string(nil), h.Objects...)
		s.shards = h.Shards
		return s.pipe, nil
	}
	if h.Consistency != s.consistency || len(h.Objects) != len(s.objects) {
		s.rejected++
		return nil, fmt.Errorf("stream node %d announced (%s, %d objects), service is (%s, %d objects)",
			h.Node, h.Consistency, len(h.Objects), s.consistency, len(s.objects))
	}
	if h.Shards != s.shards {
		s.rejected++
		return nil, fmt.Errorf("stream node %d announced shard map %q, service is %q", h.Node, h.Shards, s.shards)
	}
	for i, name := range h.Objects {
		if name != s.objects[i] {
			s.rejected++
			return nil, fmt.Errorf("stream node %d object %d is %q, service has %q", h.Node, i, name, s.objects[i])
		}
	}
	return s.pipe, nil
}

func (s *Service) acceptStreams() {
	defer s.wg.Done()
	for {
		conn, err := s.streamLn.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveStream(conn)
		}()
	}
}

func (s *Service) serveStream(conn net.Conn) {
	var scratch []byte
	v, err := ReadMsg(conn, &scratch)
	if err != nil {
		return
	}
	hello, ok := v.(Hello)
	if !ok {
		return
	}
	pipe, err := s.pipelineFor(hello)
	if err != nil {
		fmt.Printf("mocmon: rejected stream: %v\n", err)
		return
	}
	next := pipe.OpenStream(hello.Node, hello.Gen, hello.NextSeq)
	if err := WriteMsg(conn, Ack{NextSeq: next}); err != nil {
		return
	}
	for {
		v, err := ReadMsg(conn, &scratch)
		if err != nil {
			return // disconnect: the stream resumes on reconnect
		}
		switch msg := v.(type) {
		case Batch:
			next := pipe.Push(hello.Node, msg)
			if err := WriteMsg(conn, Ack{NextSeq: next}); err != nil {
				return
			}
		case Fin:
			pipe.FinStream(hello.Node, hello.Gen)
			WriteMsg(conn, Ack{NextSeq: msg.NextSeq})
			return
		default:
			return
		}
	}
}

// rpcRequest is one JSON-lines status request.
type rpcRequest struct {
	Op    string `json:"op"`
	Limit int    `json:"limit,omitempty"`
}

// VJSON is a violation in RPC form.
type VJSON struct {
	Property string `json:"property"`
	Detail   string `json:"detail"`
}

// rpcResponse is one JSON-lines status response.
type rpcResponse struct {
	OK          bool     `json:"ok"`
	Err         string   `json:"error,omitempty"`
	Consistency string   `json:"consistency,omitempty"`
	Objects     []string `json:"objects,omitempty"`
	Shards      string   `json:"shards,omitempty"`
	Violations  *int     `json:"violations,omitempty"`
	Observed    int64    `json:"observed,omitempty"`
	Stats       *Stats   `json:"stats,omitempty"`
	List        []VJSON  `json:"list,omitempty"`
}

func (s *Service) acceptRPC() {
	defer s.wg.Done()
	for {
		conn, err := s.rpcLn.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveRPC(conn)
		}()
	}
}

func (s *Service) serveRPC(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req rpcRequest
		if err := json.Unmarshal(line, &req); err != nil {
			enc.Encode(rpcResponse{Err: "bad request: " + err.Error()})
			continue
		}
		if err := enc.Encode(s.handleRPC(req)); err != nil {
			return
		}
		if req.Op == "shutdown" {
			return
		}
	}
}

func (s *Service) handleRPC(req rpcRequest) rpcResponse {
	pipe := s.Pipeline()
	switch req.Op {
	case "status":
		s.mu.Lock()
		resp := rpcResponse{OK: true, Consistency: s.consistency, Objects: s.objects, Shards: s.shards}
		s.mu.Unlock()
		n := 0
		if pipe != nil {
			st := pipe.Snapshot()
			n = st.Violations
			resp.Observed = st.Released
		}
		resp.Violations = &n
		return resp
	case "stats":
		resp := rpcResponse{OK: true}
		if pipe != nil {
			st := pipe.Snapshot()
			resp.Stats = &st
		}
		return resp
	case "violations":
		resp := rpcResponse{OK: true}
		if pipe != nil {
			vs := pipe.Violations()
			if req.Limit > 0 && len(vs) > req.Limit {
				vs = vs[:req.Limit]
			}
			resp.List = make([]VJSON, len(vs))
			for i, v := range vs {
				resp.List[i] = VJSON{Property: v.Property, Detail: v.Detail}
			}
		}
		return resp
	case "shutdown":
		if s.onStop != nil {
			s.onStop()
		}
		return rpcResponse{OK: true}
	default:
		return rpcResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
