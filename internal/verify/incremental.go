package verify

import (
	"fmt"

	"moc/internal/history"
	"moc/internal/monitor"
	"moc/internal/mop"
	"moc/internal/object"
)

// Incremental is the online Theorem 7 checker. The paper's exact m-SC
// and m-lin deciders are NP-complete (Theorems 1–2), but under a
// WW-constraint — all update m-operations totally ordered, which is
// exactly what the atomic broadcast's delivery sequence provides —
// Theorem 7 makes admissibility equivalent to legality, a polynomial
// property. Legality of the constrained history is acyclicity of the
// precedence graph over its m-operations:
//
//	po — process order (consecutive m-operations of one process);
//	ww — the broadcast total order (consecutive delivery sequences);
//	wr — writer of version v of x precedes every reader of v (D5.1);
//	rw — a reader of version v of x precedes the writer of v+1 (the
//	     paper's ~rw repair relation, Figure 3).
//
// Records are inserted one at a time, in merged response order; each
// insertion adds O(footprint) edges and maintains a topological level
// assignment incrementally (levels only ever rise; an edge whose level
// repair propagates back to its own source is a cycle). A detected
// cycle is reported as a "Thm7" violation naming the record whose
// insertion closed it.
//
// Compact garbage-collects the closed prefix: versions below the floor
// (one less than the lowest version any process currently observes —
// anything older would already trip the monitor's P5.3 monotonicity
// check) and nodes older than the response-time horizon are retired.
// Retirement is what bounds memory on unbounded histories; the price,
// documented in DESIGN.md §10, is that a cycle spanning more than the
// retained window can no longer be observed. References from live
// records into the retired prefix are counted, not hidden.
type Incremental struct {
	numObjects int
	// shards is the number of broadcast lanes the records' sequence
	// numbers were composed over (1 = the single global total order).
	// With K > 1 there is one ww chain per lane: an update joins the
	// chain of every shard its footprint touches plus the lane encoded
	// in its composite sequence number (Seq mod K), and composite
	// sequence order restricted to one lane's members is exactly that
	// lane's deterministic schedule. A single global chain would invent
	// orderings the composed schedules never enforced and report false
	// cycles against process order.
	shards int

	nextID int64
	nodes  map[int64]*inode
	order  []int64 // insertion order (merged response order), holes allowed

	lastOfProc map[int]int64

	// writerOf[x][v] is the node that established version v of x.
	writerOf []map[int64]int64
	// pendingWR[x][v] are readers of version v awaiting its writer.
	pendingWR []map[int64][]int64
	// pendingRW[x][v] are readers of v-1 awaiting v's writer.
	pendingRW []map[int64][]int64

	// Per-lane seq index of live update nodes, ascending.
	seqs     [][]int64
	seqNode  []map[int64]int64
	seqAbove []int64 // per lane: highest retired delivery sequence + 1

	floors []int64 // per object: versions below are retired

	observed      int
	edges         int64
	retired       int64
	danglingReads int64
	retiredRefs   int64
	highWater     int

	violations []monitor.Violation
}

type ov struct {
	x object.ID
	v int64
}

type inode struct {
	id     int64
	proc   int
	update bool
	seq    int64
	lanes  []int // ww chains this node was inserted into
	inv    int64
	resp   int64
	lvl    int64
	out    []int64
	wrote  []ov
}

// NewIncremental creates a checker for a system with numObjects objects
// and a single broadcast total order.
func NewIncremental(numObjects int) *Incremental {
	return NewIncrementalSharded(numObjects, 1)
}

// NewIncrementalSharded creates a checker for records whose sequence
// numbers were composed over the given number of shard lanes (object id
// mod shards); shards <= 1 means the single global total order.
func NewIncrementalSharded(numObjects, shards int) *Incremental {
	if shards < 1 {
		shards = 1
	}
	c := &Incremental{
		numObjects: numObjects,
		shards:     shards,
		nodes:      make(map[int64]*inode),
		lastOfProc: make(map[int]int64),
		writerOf:   make([]map[int64]int64, numObjects),
		pendingWR:  make([]map[int64][]int64, numObjects),
		pendingRW:  make([]map[int64][]int64, numObjects),
		seqs:       make([][]int64, shards),
		seqNode:    make([]map[int64]int64, shards),
		seqAbove:   make([]int64, shards),
		floors:     make([]int64, numObjects),
	}
	for l := range c.seqNode {
		c.seqNode[l] = make(map[int64]int64)
		c.seqAbove[l] = -1 << 62
	}
	for x := range c.writerOf {
		c.writerOf[x] = make(map[int64]int64)
		c.pendingWR[x] = make(map[int64][]int64)
		c.pendingRW[x] = make(map[int64][]int64)
	}
	return c
}

// lanesOf returns the ww chains an update with the given footprint and
// composite sequence number belongs to: every shard its footprint
// touches, plus the emitting lane encoded in the sequence number (which
// covers a session anchor outside the footprint). Sorted ascending.
func (c *Incremental) lanesOf(rec mop.Record) []int {
	if c.shards == 1 {
		return []int{0}
	}
	member := make([]bool, c.shards)
	member[int(rec.Seq%int64(c.shards))] = true
	for _, x := range rec.Footprint.IDs() {
		member[int(x)%c.shards] = true
	}
	var lanes []int
	for l, ok := range member {
		if ok {
			lanes = append(lanes, l)
		}
	}
	return lanes
}

// Observe inserts the next record (merged response order) and returns
// the number of new violations it introduced.
func (c *Incremental) Observe(rec mop.Record) int {
	before := len(c.violations)
	c.observed++
	if rec.TSStart == nil || rec.TSEnd == nil {
		return 0 // tag-based records carry no version order
	}

	id := c.nextID
	c.nextID++
	n := &inode{id: id, proc: rec.Proc, update: rec.Update, seq: -1, inv: rec.Inv, resp: rec.Resp}
	c.nodes[id] = n
	c.order = append(c.order, id)
	if len(c.nodes) > c.highWater {
		c.highWater = len(c.nodes)
	}

	// Process order.
	if prev, ok := c.lastOfProc[rec.Proc]; ok {
		c.addEdge(prev, id, "po", rec)
	}
	c.lastOfProc[rec.Proc] = id

	// Broadcast order (the constraint Theorem 7 needs): one chain per
	// lane; unsharded records all land in lane 0.
	if rec.Update && rec.Seq >= 0 {
		n.seq = rec.Seq
		for _, lane := range c.lanesOf(rec) {
			if rec.Seq < c.seqAbove[lane] {
				c.retiredRefs++
				continue
			}
			if _, dup := c.seqNode[lane][rec.Seq]; dup {
				// Duplicate delivery sequence: the monitor reports it as
				// P5.2; linking both would corrupt the ww chain, so skip.
				c.retiredRefs++
				continue
			}
			c.insertSeq(lane, rec.Seq, id)
			n.lanes = append(n.lanes, lane)
			if pred, ok := c.seqNeighbor(lane, rec.Seq, -1); ok {
				c.addEdge(c.seqNode[lane][pred], id, "ww", rec)
			}
			if succ, ok := c.seqNeighbor(lane, rec.Seq, +1); ok {
				c.addEdge(id, c.seqNode[lane][succ], "ww", rec)
			}
		}
	}

	// Reads: wr edge from the version's writer, rw edge to the next
	// version's writer (present or pending).
	for _, op := range history.ExternalReads(rec.Ops) {
		x := op.Obj
		if int(x) >= c.numObjects {
			continue
		}
		v := rec.TSStart.Get(x)
		if v < c.floors[x] {
			c.retiredRefs++
			continue
		}
		if v > 0 {
			if w, ok := c.writerOf[x][v]; ok {
				c.addEdge(w, id, "wr", rec)
			} else {
				c.pendingWR[x][v] = append(c.pendingWR[x][v], id)
			}
		}
		if w, ok := c.writerOf[x][v+1]; ok {
			c.addEdge(id, w, "rw", rec)
		} else {
			c.pendingRW[x][v+1] = append(c.pendingRW[x][v+1], id)
		}
	}

	// Writes: register versions, resolve waiting readers.
	for x, v := range rec.VersionedWrites() {
		if int(x) >= c.numObjects || v < c.floors[x] {
			continue
		}
		if _, dup := c.writerOf[x][v]; !dup {
			c.writerOf[x][v] = id
		}
		n.wrote = append(n.wrote, ov{x: x, v: v})
		for _, r := range c.pendingWR[x][v] {
			c.addEdge(id, r, "wr", rec)
		}
		delete(c.pendingWR[x], v)
		for _, r := range c.pendingRW[x][v] {
			c.addEdge(r, id, "rw", rec)
		}
		delete(c.pendingRW[x], v)
	}

	return len(c.violations) - before
}

// addEdge inserts u -> v and repairs the topological levels. If the
// repair wave reaches back to u, the edge closed a cycle: the history
// prefix has no legal linearization under the WW-constraint, so by
// Theorem 7 it is not admissible. The edge is then removed so checking
// can continue past the violation.
func (c *Incremental) addEdge(u, v int64, kind string, rec mop.Record) {
	if u == v {
		return
	}
	un, vn := c.nodes[u], c.nodes[v]
	if un == nil || vn == nil {
		return
	}
	un.out = append(un.out, v)
	c.edges++
	if vn.lvl > un.lvl {
		return
	}
	vn.lvl = un.lvl + 1
	queue := []int64{v}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		wn := c.nodes[w]
		if wn == nil {
			continue
		}
		for _, x := range wn.out {
			xn := c.nodes[x]
			if xn == nil || xn.lvl > wn.lvl {
				continue
			}
			if x == u {
				un.out = un.out[:len(un.out)-1]
				c.edges--
				c.violations = append(c.violations, monitor.Violation{
					Property: "Thm7",
					Detail: fmt.Sprintf(
						"%s edge closes a precedence cycle: record at P%d (inv %d, resp %d, seq %d) cannot be linearized under the broadcast total order",
						kind, rec.Proc, rec.Inv, rec.Resp, rec.Seq),
				})
				return
			}
			xn.lvl = wn.lvl + 1
			queue = append(queue, x)
		}
	}
}

func (c *Incremental) insertSeq(lane int, seq, id int64) {
	c.seqNode[lane][seq] = id
	s := c.seqs[lane]
	i := len(s)
	for i > 0 && s[i-1] > seq {
		i--
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = seq
	c.seqs[lane] = s
}

// seqNeighbor returns the nearest live delivery sequence on the given
// side of seq within one lane's chain.
func (c *Incremental) seqNeighbor(lane int, seq int64, dir int) (int64, bool) {
	s := c.seqs[lane]
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// s[lo] == seq (it was just inserted).
	if dir < 0 {
		if lo > 0 {
			return s[lo-1], true
		}
		return 0, false
	}
	if lo+1 < len(s) {
		return s[lo+1], true
	}
	return 0, false
}

// Compact retires the closed prefix: every version of x below floors[x]
// and every node that responded before horizon, is not its process's
// latest, and wrote nothing at or above the floor. floors comes from
// the monitor's per-process high-water marks (Monitor.VersionFloors),
// which makes retirement sound relative to P5.3: any later record
// observing a retired version would already be a monotonicity
// violation.
func (c *Incremental) Compact(horizon int64, floors []int64) {
	for x := 0; x < c.numObjects && x < len(floors); x++ {
		if floors[x] <= c.floors[x] {
			continue
		}
		c.floors[x] = floors[x]
		for v := range c.writerOf[x] {
			if v < floors[x] {
				delete(c.writerOf[x], v)
			}
		}
		for v, waiters := range c.pendingWR[x] {
			if v < floors[x] {
				// The version was observably established (readers saw
				// it) but its writer's record never streamed — lost to
				// a kill. Honest accounting, not a violation.
				c.danglingReads += int64(len(waiters))
				delete(c.pendingWR[x], v)
			}
		}
		for v := range c.pendingRW[x] {
			if v < floors[x] {
				delete(c.pendingRW[x], v)
			}
		}
	}

	keep := c.order[:0]
	for _, id := range c.order {
		n := c.nodes[id]
		if n == nil {
			continue
		}
		retire := n.resp < horizon && c.lastOfProc[n.proc] != id
		for _, w := range n.wrote {
			if retire && w.v >= c.floors[w.x] {
				retire = false
			}
		}
		if !retire {
			keep = append(keep, id)
			continue
		}
		for _, lane := range n.lanes {
			c.removeSeq(lane, n.seq)
			if n.seq >= c.seqAbove[lane] {
				c.seqAbove[lane] = n.seq + 1
			}
		}
		c.edges -= int64(len(n.out))
		delete(c.nodes, id)
		c.retired++
	}
	c.order = keep
}

func (c *Incremental) removeSeq(lane int, seq int64) {
	delete(c.seqNode[lane], seq)
	s := c.seqs[lane]
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == seq {
		c.seqs[lane] = append(s[:lo], s[lo+1:]...)
	}
}

// IncrementalStats is a snapshot of the checker's footprint.
type IncrementalStats struct {
	Observed      int   `json:"observed"`
	LiveNodes     int   `json:"liveNodes"`
	HighWater     int   `json:"highWaterNodes"`
	LiveEdges     int64 `json:"liveEdges"`
	Retired       int64 `json:"retired"`
	DanglingReads int64 `json:"danglingReads"`
	RetiredRefs   int64 `json:"retiredRefs"`
}

// Stats reports the checker's current footprint.
func (c *Incremental) Stats() IncrementalStats {
	return IncrementalStats{
		Observed:      c.observed,
		LiveNodes:     len(c.nodes),
		HighWater:     c.highWater,
		LiveEdges:     c.edges,
		Retired:       c.retired,
		DanglingReads: c.danglingReads,
		RetiredRefs:   c.retiredRefs,
	}
}

// Violations returns the violations detected so far.
func (c *Incremental) Violations() []monitor.Violation {
	out := make([]monitor.Violation, len(c.violations))
	copy(out, c.violations)
	return out
}
