package verify

import (
	"runtime"
	"sync"

	"moc/internal/monitor"
	"moc/internal/mop"
)

// PipelineConfig parameterizes a verification pipeline.
type PipelineConfig struct {
	// NumObjects is the registry size (every stream must agree).
	NumObjects int
	// Level selects the monitor's obligations; use MLinLevel for "mlin"
	// stores, MSCLevel otherwise.
	Level monitor.Level
	// Window is how many released records the incremental checker
	// retains before the garbage collector may retire older ones. Zero
	// means no GC (everything is retained — offline use).
	Window int
	// SlackNs is the merge watermark slack in nanoseconds: the largest
	// intra-node sink-order inversion absorbed without a feed-order
	// report. Zero picks a safe default for TCP streams.
	SlackNs int64
	// Shards is the number of broadcast lanes the records' sequence
	// numbers were composed over (object id mod Shards); 0 or 1 means
	// the single global total order. Every stream must agree.
	Shards int
}

// DefaultSlackNs absorbs the scheduling jitter between a record's
// response timestamp being taken and its RecordSink call: measured
// inversions are microseconds; 25ms is three orders of magnitude of
// headroom and delays detection imperceptibly.
const DefaultSlackNs = 25e6

// compactEvery divides the window: GC runs every Window/compactEvery
// released records, so retained state stays within ~(1+1/compactEvery)
// of the window.
const compactEvery = 4

// Pipeline is the shared online-verification path: merge per-node
// streams into global response order, feed the Section 5 monitor and
// the incremental Theorem 7 checker, and garbage-collect the closed
// prefix every window. It is safe for concurrent use; both mocmon
// (records over TCP) and moccheck -stream (records from trace files)
// drive the same code.
type Pipeline struct {
	cfg PipelineConfig

	mu           sync.Mutex
	merger       *Merger
	mon          *monitor.Monitor
	inc          *Incremental
	ring         []int64 // Resp of the last Window released records
	released     int64
	sinceCompact int
	compactions  int64
	heapHW       uint64
}

// NewPipeline creates a pipeline.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	if cfg.SlackNs == 0 {
		cfg.SlackNs = DefaultSlackNs
	}
	p := &Pipeline{
		cfg:    cfg,
		merger: NewMerger(),
		mon:    monitor.NewMonitor(cfg.NumObjects, cfg.Level),
		inc:    NewIncrementalSharded(cfg.NumObjects, cfg.Shards),
	}
	if cfg.Window > 0 {
		p.ring = make([]int64, cfg.Window)
	}
	return p
}

// OpenStream registers or resumes a node stream (Hello) and returns the
// sequence number to Ack.
func (p *Pipeline) OpenStream(node int, gen, helloNext int64) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.merger.OpenStream(node, gen, helloNext)
}

// Push feeds one batch, advances the merge, and returns the sequence
// number to Ack.
func (p *Pipeline) Push(node int, b Batch) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	next := p.merger.Push(node, b)
	p.drain()
	return next
}

// FinStream ends a node stream cleanly and releases whatever its
// watermark was holding back.
func (p *Pipeline) FinStream(node int, gen int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.merger.FinStream(node, gen)
	p.drain()
}

// Observe bypasses the merger and feeds one record directly, for
// callers that already hold a response-ordered stream (moccheck
// -stream after its own merge sort).
func (p *Pipeline) Observe(rec mop.Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.feed(rec)
}

func (p *Pipeline) drain() {
	for _, rec := range p.merger.Release(p.cfg.SlackNs) {
		p.feed(rec)
	}
}

func (p *Pipeline) feed(rec mop.Record) {
	p.mon.Observe(rec)
	p.inc.Observe(rec)
	if len(p.ring) > 0 {
		p.ring[p.released%int64(len(p.ring))] = rec.Resp
		p.released++
		p.sinceCompact++
		if p.sinceCompact >= len(p.ring)/compactEvery && p.released >= int64(len(p.ring)) {
			p.sinceCompact = 0
			p.compact(rec.Resp)
		}
	} else {
		p.released++
	}
}

// compact retires state older than the window: the horizon is the
// response time of the oldest record still inside it, and the version
// floors come from the monitor's per-process high-water marks (sound
// per P5.3 — see Monitor.VersionFloors).
func (p *Pipeline) compact(nowResp int64) {
	horizon := p.ring[p.released%int64(len(p.ring))] // oldest retained
	if horizon > nowResp {
		horizon = nowResp
	}
	floors := p.mon.VersionFloors()
	p.mon.Compact(horizon, floors)
	p.inc.Compact(horizon, floors)
	p.compactions++
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > p.heapHW {
		p.heapHW = ms.HeapAlloc
	}
}

// Finish drains every buffer (Release with all streams fin'd), runs the
// monitor's deferred end-of-run checks, and returns all violations.
//
// The deferred check — every version read was established by some
// writer — only indicts the history when the feed is complete: every
// stream Fin'd cleanly and no daemon was killed mid-generation. On a
// lossy feed the still-unresolved starts are counted as dangling
// (Stats) instead of reported, because their writers' records plausibly
// died with a daemon rather than never existing.
func (p *Pipeline) Finish() []monitor.Violation {
	p.mu.Lock()
	defer p.mu.Unlock()
	clean := p.merger.CleanEnd()
	for _, s := range p.merger.Streams() {
		p.merger.FinStream(s.Node, s.Gen)
	}
	p.drain()
	if !clean {
		p.mon.DropUnresolved()
	}
	vs := p.mon.Finish()
	return append(vs, p.inc.Violations()...)
}

// Violations returns the violations found so far (monitor first, then
// the incremental checker's).
func (p *Pipeline) Violations() []monitor.Violation {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append(p.mon.Violations(), p.inc.Violations()...)
}

// Stats is the pipeline's status snapshot.
type Stats struct {
	Released    int64               `json:"released"`
	Buffered    int                 `json:"buffered"`
	Watermark   int64               `json:"watermark"`
	Late        int64               `json:"late"`
	Dups        int64               `json:"dups"`
	Superseded  int64               `json:"supersededGens"`
	Violations  int                 `json:"violations"`
	Compactions int64               `json:"compactions"`
	HeapHW      uint64              `json:"heapHighWaterBytes"`
	Monitor     monitor.MemStats    `json:"monitor"`
	Checker     IncrementalStats    `json:"checker"`
	Streams     []StreamState       `json:"streams"`
	VioSample   []monitor.Violation `json:"-"`
}

// Snapshot returns the pipeline's current stats.
func (p *Pipeline) Snapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	mark, ok := p.merger.Watermark()
	if !ok {
		mark = -1
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapHW := p.heapHW
	if ms.HeapAlloc > heapHW {
		heapHW = ms.HeapAlloc
	}
	return Stats{
		Released:    p.released,
		Buffered:    p.merger.Buffered(),
		Watermark:   mark,
		Late:        p.merger.Late(),
		Dups:        p.merger.Dups(),
		Superseded:  p.merger.Superseded(),
		Violations:  len(p.mon.Violations()) + len(p.inc.Violations()),
		Compactions: p.compactions,
		HeapHW:      heapHW,
		Monitor:     p.mon.Mem(),
		Checker:     p.inc.Stats(),
		Streams:     p.merger.Streams(),
	}
}
