package verify

import (
	"bytes"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"moc/internal/core"
	"moc/internal/history"
	"moc/internal/monitor"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/timestamp"
)

func ts(vals ...int64) timestamp.TS { return timestamp.TS(vals) }

func mkRec(proc int, update bool, seq, inv, resp int64, start, end timestamp.TS, ops ...history.Op) mop.Record {
	return mop.Record{
		Proc: proc, Update: update, Seq: seq, Ops: ops,
		TSStart: start, TSEnd: end,
		Footprint: object.FullSet(len(start)),
		Inv:       inv, Resp: resp,
	}
}

func wOp(x object.ID, v int64) history.Op { return history.Op{Kind: history.Write, Obj: x, Val: v} }
func rOp(x object.ID, v int64) history.Op { return history.Op{Kind: history.Read, Obj: x, Val: v} }

func hasProp(vs []monitor.Violation, prop string) bool {
	for _, v := range vs {
		if v.Property == prop {
			return true
		}
	}
	return false
}

func TestWireRoundTrip(t *testing.T) {
	rec := mkRec(2, true, 7, 100, 230, ts(0, 3), ts(1, 3), wOp(0, 41), rOp(1, 9))
	rec.Level = history.LevelQuorum
	rec.IsConsistent = true
	rec.Responders = []int{0, 2}
	wr, ok := ToWire(rec)
	if !ok {
		t.Fatal("ToWire rejected a version-vector record")
	}

	msgs := []any{
		Hello{Node: 1, Gen: 42, Consistency: "mlin", Objects: []string{"x", "y"}, NextSeq: 9},
		Ack{NextSeq: 17},
		Batch{FirstSeq: 9, Recs: []Rec{wr}},
		Fin{NextSeq: 10},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatalf("WriteMsg(%T): %v", m, err)
		}
	}
	var scratch []byte
	for _, want := range msgs {
		got, err := ReadMsg(&buf, &scratch)
		if err != nil {
			t.Fatalf("ReadMsg: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %#v, want %#v", got, want)
		}
	}

	back := wr.FromWire()
	if back.Proc != rec.Proc || back.Seq != rec.Seq || back.Level != rec.Level ||
		!back.IsConsistent || back.Inv != rec.Inv || back.Resp != rec.Resp {
		t.Fatalf("FromWire scalar mismatch: %+v vs %+v", back, rec)
	}
	if !reflect.DeepEqual(back.Ops, rec.Ops) || !reflect.DeepEqual(back.Responders, rec.Responders) {
		t.Fatalf("FromWire ops/responders mismatch")
	}
	if !reflect.DeepEqual(back.Footprint.IDs(), rec.Footprint.IDs()) {
		t.Fatalf("FromWire footprint mismatch: %v vs %v", back.Footprint.IDs(), rec.Footprint.IDs())
	}

	if _, ok := ToWire(mop.Record{Proc: 1}); ok {
		t.Fatal("ToWire accepted a tag-based record")
	}
}

// TestMergerGlobalOrder: per-node streams with intra-node inversions
// merge into one globally response-ordered stream.
func TestMergerGlobalOrder(t *testing.T) {
	m := NewMerger()
	m.OpenStream(0, 1, 0)
	m.OpenStream(1, 1, 0)

	toRec := func(resp int64) Rec {
		r, _ := ToWire(mkRec(0, false, -1, resp-1, resp, ts(0), ts(0), rOp(0, 0)))
		return r
	}
	// Node 0 ships resps 10, 30, 20 (an inversion inside one batch
	// would have been sorted by the writer; across batches it lands in
	// the heap). Node 1 ships 15, 25.
	m.Push(0, Batch{FirstSeq: 0, Recs: []Rec{toRec(10), toRec(30)}})
	m.Push(0, Batch{FirstSeq: 2, Recs: []Rec{toRec(20)}})
	m.Push(1, Batch{FirstSeq: 0, Recs: []Rec{toRec(15), toRec(25)}})

	// Release point = min(max marks) = min(30, 25) = 25 with zero slack.
	out := m.Release(0)
	var resps []int64
	for _, r := range out {
		resps = append(resps, r.Resp)
	}
	if want := []int64{10, 15, 20, 25}; !reflect.DeepEqual(resps, want) {
		t.Fatalf("released %v, want %v", resps, want)
	}
	// The rest drains once both streams fin.
	m.FinStream(0, 1)
	m.FinStream(1, 1)
	out = m.Release(0)
	if len(out) != 1 || out[0].Resp != 30 {
		t.Fatalf("drain released %v records, want the resp-30 one", out)
	}
	if m.Late() != 0 {
		t.Fatalf("late = %d on an orderly merge", m.Late())
	}
}

// TestMergerResumeDedup: a resend overlapping what the merge already
// has is dropped by sequence number, not fed twice.
func TestMergerResumeDedup(t *testing.T) {
	m := NewMerger()
	if next := m.OpenStream(0, 1, 0); next != 0 {
		t.Fatalf("fresh stream acked %d, want 0", next)
	}
	rec := func(resp int64) Rec {
		r, _ := ToWire(mkRec(0, false, -1, resp-1, resp, ts(0), ts(0), rOp(0, 0)))
		return r
	}
	m.Push(0, Batch{FirstSeq: 0, Recs: []Rec{rec(10), rec(20)}})
	// Reconnect, same generation: service wants 2.
	if next := m.OpenStream(0, 1, 0); next != 2 {
		t.Fatalf("resume acked %d, want 2", next)
	}
	// Writer resends 1 and 2: 1 is a duplicate.
	if next := m.Push(0, Batch{FirstSeq: 1, Recs: []Rec{rec(20), rec(30)}}); next != 3 {
		t.Fatalf("after resend ack = %d, want 3", next)
	}
	if m.Dups() != 1 {
		t.Fatalf("dups = %d, want 1", m.Dups())
	}
	m.FinStream(0, 1)
	if got := len(m.Release(0)); got != 3 {
		t.Fatalf("released %d records, want 3 unique", got)
	}
}

// TestIncrementalCleanRun: a correct single-order history grows no
// cycles.
func TestIncrementalCleanRun(t *testing.T) {
	c := NewIncremental(2)
	recs := []mop.Record{
		mkRec(0, true, 0, 0, 10, ts(0, 0), ts(1, 0), wOp(0, 1)),
		mkRec(1, true, 1, 5, 20, ts(1, 0), ts(1, 1), wOp(1, 2)),
		mkRec(0, false, -1, 15, 30, ts(1, 1), ts(1, 1), rOp(0, 1), rOp(1, 2)),
		mkRec(1, true, 2, 25, 40, ts(1, 1), ts(2, 1), wOp(0, 3)),
	}
	for _, r := range recs {
		if c.Observe(r) != 0 {
			t.Fatalf("violation on clean record %+v: %v", r, c.Violations())
		}
	}
	st := c.Stats()
	if st.Observed != 4 || st.LiveNodes != 4 {
		t.Fatalf("stats %+v", st)
	}
}

// TestIncrementalDetectsWriteSkewCycle: the classic anomaly — two
// processes each write one object then read the other's object stale —
// is a po/ww/rw cycle no single total order explains, caught online by
// the Theorem 7 checker (it violates neither version accounting nor
// per-process monotonicity, so the monitor alone would pass it at m-SC
// level).
func TestIncrementalDetectsWriteSkewCycle(t *testing.T) {
	c := NewIncremental(2)
	recs := []mop.Record{
		mkRec(0, true, 0, 0, 10, ts(0, 0), ts(1, 0), wOp(0, 1)),    // P0: W(x)
		mkRec(1, true, 1, 0, 12, ts(0, 0), ts(0, 1), wOp(1, 2)),    // P1: W(y), blind to W(x)
		mkRec(0, false, -1, 20, 21, ts(1, 0), ts(1, 0), rOp(1, 0)), // P0: R(y) stale
		mkRec(1, false, -1, 22, 23, ts(0, 1), ts(0, 1), rOp(0, 0)), // P1: R(x) stale
	}
	total := 0
	for _, r := range recs {
		total += c.Observe(r)
	}
	if total == 0 || !hasProp(c.Violations(), "Thm7") {
		t.Fatalf("write-skew cycle not flagged: %v", c.Violations())
	}
	// The report names the record whose insertion closed the cycle.
	if vs := c.Violations(); !bytes.Contains([]byte(vs[len(vs)-1].Detail), []byte("P1")) {
		t.Fatalf("violation does not identify the offending record: %v", vs)
	}
}

// TestIncrementalGCBoundsMemory: with Compact engaged the retained
// graph stays near the window while the history grows without bound.
func TestIncrementalGCBoundsMemory(t *testing.T) {
	const n, window = 4000, 128
	c := NewIncremental(1)
	floors := []int64{0}
	for i := 0; i < n; i++ {
		v := int64(i)
		rec := mkRec(0, true, v, v*10, v*10+5, ts(v), ts(v+1), wOp(0, int64(i)))
		if c.Observe(rec) != 0 {
			t.Fatalf("violation on clean record %d: %v", i, c.Violations())
		}
		if i%window == 0 && i > window {
			floors[0] = int64(i - window)
			c.Compact(rec.Resp-int64(window)*10, floors)
		}
	}
	st := c.Stats()
	if st.HighWater > 3*window {
		t.Fatalf("high water %d for window %d: GC not engaged (%+v)", st.HighWater, window, st)
	}
	if st.Retired == 0 || st.LiveNodes > 2*window {
		t.Fatalf("GC stats %+v", st)
	}
	if len(c.Violations()) != 0 {
		t.Fatalf("clean run flagged: %v", c.Violations())
	}
}

// storeRecords runs a sim store and returns its records in response
// order plus the registry size.
func storeRecords(t *testing.T, cons core.Consistency, seed int64) ([]mop.Record, int) {
	t.Helper()
	s, err := core.New(core.Config{
		Procs: 3, Objects: []string{"x", "y", "z"},
		Consistency: cons, Seed: seed, MaxDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *core.Process) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if j%2 == 0 {
					if err := p.Write(object.ID(j%3), object.Value(i*100+j+1)); err != nil {
						t.Errorf("write: %v", err)
					}
				} else if _, err := p.MultiRead(0, 1, 2); err != nil {
					t.Errorf("read: %v", err)
				}
			}
		}(i, p)
	}
	wg.Wait()
	recs := s.Records()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Resp < recs[j].Resp })
	return recs, s.Registry().Len()
}

// TestPipelineCleanStoreRun: a real (simulated) m-lin run split across
// three streams, pushed as batches, verifies clean end to end.
func TestPipelineCleanStoreRun(t *testing.T) {
	recs, n := storeRecords(t, core.MLinearizable, 7)
	p := NewPipeline(PipelineConfig{NumObjects: n, Level: monitor.MLinLevel, SlackNs: 1})

	// Round-robin split of a response-sorted list keeps each node
	// stream response-sorted, like real daemons.
	streams := make([][]Rec, 3)
	for i, r := range recs {
		wr, ok := ToWire(r)
		if !ok {
			t.Fatalf("record %d has no version vectors", i)
		}
		streams[i%3] = append(streams[i%3], wr)
	}
	for node, s := range streams {
		p.OpenStream(node, 1, 0)
		_ = s
	}
	for batchStart := 0; ; batchStart += 4 {
		any := false
		for node, s := range streams {
			if batchStart >= len(s) {
				continue
			}
			any = true
			end := batchStart + 4
			if end > len(s) {
				end = len(s)
			}
			p.Push(node, Batch{FirstSeq: int64(batchStart), Recs: s[batchStart:end]})
		}
		if !any {
			break
		}
	}
	if vs := p.Finish(); len(vs) != 0 {
		t.Fatalf("clean m-lin run flagged: %v", vs)
	}
	if st := p.Snapshot(); st.Released != int64(len(recs)) || st.Late != 0 {
		t.Fatalf("released %d of %d, late %d", st.Released, len(recs), st.Late)
	}
}

// TestServiceFlagsInjectedStaleRead: end-to-end over loopback TCP — a
// clean write stream plus one injected stale read; the service must
// flag it online and name the offender through the status RPC.
func TestServiceFlagsInjectedStaleRead(t *testing.T) {
	streamLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rpcLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(streamLn, rpcLn, ServiceConfig{SlackNs: 1}, nil)
	defer svc.Close()

	objects := []string{"x"}
	w, _ := ToWire(mkRec(0, true, 0, 0, 10, ts(0), ts(1), wOp(0, 1)))
	// P1 reads x at version 0 at inv 20 — after the write's response at
	// 10. Lemma 16 says a fresh read must start at >= 1.
	stale, _ := ToWire(mkRec(1, false, -1, 20, 21, ts(0), ts(0), rOp(0, 0)))

	if err := SendRecords(streamLn.Addr().String(), 0, "mlin", objects, []Rec{w}); err != nil {
		t.Fatalf("send writes: %v", err)
	}
	if err := SendRecords(streamLn.Addr().String(), 1, "mlin", objects, []Rec{stale}); err != nil {
		t.Fatalf("send stale read: %v", err)
	}

	cl, err := DialStatus(rpcLn.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	observed, nv, cons, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if cons != "mlin" || observed != 2 {
		t.Fatalf("status = (%d observed, %q), want (2, mlin)", observed, cons)
	}
	if nv == 0 {
		t.Fatal("injected stale read not flagged")
	}
	vs, err := cl.Violations(0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range vs {
		if v.Property == "Lemma16" && bytes.Contains([]byte(v.Detail), []byte("P1")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Lemma16 violation naming P1: %v", vs)
	}

	// A stream announcing mismatched store parameters is rejected.
	if err := SendRecords(streamLn.Addr().String(), 2, "msc", objects, nil); err == nil {
		t.Fatal("mismatched consistency stream accepted")
	}
}

// TestStreamWriterDeliversAndReconnects: the daemon-side sink batches,
// ships, survives a service restart, and resumes from the Ack.
func TestStreamWriterDeliversAndReconnects(t *testing.T) {
	streamLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := streamLn.Addr().String()
	svc := NewService(streamLn, nil, ServiceConfig{SlackNs: 1}, nil)

	w := NewStreamWriter(WriterConfig{
		Addr: addr, Node: 0, Consistency: "mlin", Objects: []string{"x"},
		BatchRecords: 16, FlushInterval: 5 * time.Millisecond,
	})
	mk := func(i int) mop.Record {
		v := int64(i)
		return mkRec(0, true, v, v*10, v*10+5, ts(v), ts(v+1), wOp(0, v))
	}
	for i := 0; i < 100; i++ {
		w.Append(mk(i))
	}
	waitReleased := func(s *Service, want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if pipe := s.Pipeline(); pipe != nil {
				if st := pipe.Snapshot(); st.Released >= want {
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("service never released %d records", want)
	}
	// The live stream holds the watermark at its own mark, so all but
	// the tail release; close enough to assert progress.
	waitReleased(svc, 50)
	svc.Close()

	// Service restart on the same address: the writer redials, replays
	// everything unacked, and the new service (fresh state) verifies
	// the tail it asked for.
	streamLn2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	svc2 := NewService(streamLn2, nil, ServiceConfig{SlackNs: 1}, nil)
	defer svc2.Close()
	for i := 100; i < 200; i++ {
		w.Append(mk(i))
	}
	w.Close()
	waitReleased(svc2, 100)
	// Online checks stay clean; the deferred end-of-run check flags
	// exactly the resume boundary — the first record the new service
	// saw starts from a version whose writer only the old service
	// verified. Honest accounting, not a false positive elsewhere.
	if vs := svc2.Pipeline().Violations(); len(vs) != 0 {
		t.Fatalf("clean writer stream flagged online: %v", vs)
	}
	vs := svc2.Pipeline().Finish()
	if len(vs) != 1 || vs[0].Property != "D5.1" || !bytes.Contains([]byte(vs[0].Detail), []byte("version 100")) {
		t.Fatalf("want exactly the boundary D5.1 for version 100, got %v", vs)
	}
	sent, skipped, reconnects := w.Stats()
	if sent == 0 || skipped != 0 || reconnects < 2 {
		t.Fatalf("writer stats sent=%d skipped=%d reconnects=%d", sent, skipped, reconnects)
	}
}

// TestPipelineWindowGC: the pipeline compacts on its own once the
// window fills.
func TestPipelineWindowGC(t *testing.T) {
	p := NewPipeline(PipelineConfig{NumObjects: 1, Level: monitor.MLinLevel, Window: 64, SlackNs: 1})
	for i := 0; i < 2000; i++ {
		v := int64(i)
		p.Observe(mkRec(0, true, v, v*10, v*10+5, ts(v), ts(v+1), wOp(0, v)))
	}
	st := p.Snapshot()
	if st.Compactions == 0 || st.Checker.Retired == 0 {
		t.Fatalf("window GC never engaged: %+v", st)
	}
	if st.Checker.HighWater > 3*64 {
		t.Fatalf("checker high water %d for window 64", st.Checker.HighWater)
	}
	if vs := p.Finish(); len(vs) != 0 {
		t.Fatalf("clean run flagged: %v", vs)
	}
}
