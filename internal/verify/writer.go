package verify

import (
	"net"
	"sort"
	"sync"
	"time"

	"moc/internal/mop"
)

// WriterConfig parameterizes a StreamWriter.
type WriterConfig struct {
	// Addr is the mocmon stream listener address.
	Addr string
	// Node is this daemon's process id.
	Node int
	// Consistency is the store's condition string ("msc"/"mlin"),
	// announced in the Hello so the service checks stream agreement.
	Consistency string
	// Objects is the registry name list, announced in the Hello.
	Objects []string
	// Shards is the store's shard-map spec (core.Store.ShardSpec, ""
	// when unsharded), announced in the Hello.
	Shards string
	// BatchRecords caps one Batch message; a full buffer flushes
	// immediately. Zero means 512.
	BatchRecords int
	// FlushInterval bounds how long a record waits for its batch to
	// fill. Zero means 20ms.
	FlushInterval time.Duration
	// DialTimeout bounds one connection attempt; reconnects back off to
	// one attempt per second. Zero means 2s.
	DialTimeout time.Duration
}

// StreamWriter is the mocd side of the record stream: a RecordSink that
// batches completed records and ships them to the verification service,
// surviving service restarts and its own disconnects.
//
// Records are buffered, sorted by response time (fixing the sink-order
// inversions core's lock-free sink call permits, within one flush
// window), stamped with contiguous per-generation sequence numbers at
// flush time, and retained until the service Acks them — a reconnect
// replays everything unacked, and the service drops resend duplicates
// by sequence number. Append never blocks on the network: with the
// service down, records accumulate in memory (the retention buffer is
// the resume guarantee; a daemon outliving its service for long enough
// to matter is a deployment problem the stats make visible).
type StreamWriter struct {
	cfg WriterConfig
	gen int64

	mu       sync.Mutex
	pending  []mop.Record // unsequenced, unsorted
	retained []Rec        // sequenced, awaiting Ack
	firstRet int64        // sequence number of retained[0]
	nextSeq  int64
	skipped  int64 // records with no version vectors (never streamed)
	sent     int64
	closed   bool

	kick   chan struct{}
	done   chan struct{}
	exited chan struct{}

	statMu     sync.Mutex
	reconnects int64
}

// NewStreamWriter starts a stream writer; its background loop connects
// (and reconnects) to the service on its own.
func NewStreamWriter(cfg WriterConfig) *StreamWriter {
	if cfg.BatchRecords <= 0 {
		cfg.BatchRecords = 512
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 20 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	w := &StreamWriter{
		cfg:    cfg,
		gen:    time.Now().UnixNano(),
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	go w.loop()
	return w
}

// Append is the RecordSink: it enqueues one completed record. Safe for
// concurrent use; never blocks on the network.
func (w *StreamWriter) Append(rec mop.Record) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	if rec.TSStart == nil || rec.TSEnd == nil {
		w.skipped++
		return
	}
	w.pending = append(w.pending, rec)
	if len(w.pending) >= w.cfg.BatchRecords {
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
}

// Close flushes what it can, sends the Fin, and stops the loop. The
// store must be drained first so no Append races the final flush.
func (w *StreamWriter) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	<-w.exited
}

// Stats reports (records shipped, records skipped for having no version
// vectors, reconnects).
func (w *StreamWriter) Stats() (sent, skipped, reconnects int64) {
	w.mu.Lock()
	sent, skipped = w.sent, w.skipped
	w.mu.Unlock()
	w.statMu.Lock()
	reconnects = w.reconnects
	w.statMu.Unlock()
	return
}

// seal moves pending into retained: sorted by response time, stamped
// with the next sequence numbers. Returns the retained tail to send.
func (w *StreamWriter) seal() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.pending) == 0 {
		return
	}
	sort.SliceStable(w.pending, func(i, j int) bool { return w.pending[i].Resp < w.pending[j].Resp })
	for _, rec := range w.pending {
		r, ok := ToWire(rec)
		if !ok {
			w.skipped++
			continue
		}
		w.retained = append(w.retained, r)
		w.nextSeq++
	}
	w.pending = w.pending[:0]
}

// unsent returns the retained suffix from seq on, as one batch.
func (w *StreamWriter) unsent(seq int64) (Batch, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq < w.firstRet {
		seq = w.firstRet
	}
	i := seq - w.firstRet
	if i >= int64(len(w.retained)) {
		return Batch{}, false
	}
	recs := w.retained[i:]
	if len(recs) > 4*w.cfg.BatchRecords {
		recs = recs[:4*w.cfg.BatchRecords]
	}
	out := Batch{FirstSeq: seq, Recs: make([]Rec, len(recs))}
	copy(out.Recs, recs)
	return out, true
}

// ack drops retained records below next.
func (w *StreamWriter) ack(next int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if next <= w.firstRet {
		return
	}
	n := next - w.firstRet
	if n > int64(len(w.retained)) {
		n = int64(len(w.retained))
	}
	w.sent += n
	w.retained = append([]Rec(nil), w.retained[n:]...)
	w.firstRet += n
}

func (w *StreamWriter) loop() {
	defer close(w.exited)
	var conn net.Conn
	var scratch []byte
	sendSeq := int64(0)
	ticker := time.NewTicker(w.cfg.FlushInterval)
	defer ticker.Stop()

	var nextDial time.Time
	connect := func() bool {
		if conn != nil {
			return true
		}
		if time.Now().Before(nextDial) {
			return false
		}
		c, err := net.DialTimeout("tcp", w.cfg.Addr, w.cfg.DialTimeout)
		if err != nil {
			nextDial = time.Now().Add(500 * time.Millisecond)
			return false
		}
		w.mu.Lock()
		hello := Hello{
			Node: w.cfg.Node, Gen: w.gen,
			Consistency: w.cfg.Consistency, Objects: w.cfg.Objects,
			Shards:  w.cfg.Shards,
			NextSeq: w.firstRet,
		}
		w.mu.Unlock()
		if err := WriteMsg(c, hello); err != nil {
			c.Close()
			return false
		}
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		v, err := ReadMsg(c, &scratch)
		c.SetReadDeadline(time.Time{})
		ack, ok := v.(Ack)
		if err != nil || !ok {
			c.Close()
			return false
		}
		w.ack(ack.NextSeq)
		sendSeq = ack.NextSeq
		conn = c
		w.statMu.Lock()
		w.reconnects++
		w.statMu.Unlock()
		return true
	}
	drop := func() {
		if conn != nil {
			conn.Close()
			conn = nil
		}
	}
	flush := func() {
		w.seal()
		if !connect() {
			return
		}
		for {
			b, ok := w.unsent(sendSeq)
			if !ok {
				return
			}
			if err := WriteMsg(conn, b); err != nil {
				drop()
				return
			}
			sendSeq = b.FirstSeq + int64(len(b.Recs))
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			v, err := ReadMsg(conn, &scratch)
			conn.SetReadDeadline(time.Time{})
			ack, okAck := v.(Ack)
			if err != nil || !okAck {
				drop()
				return
			}
			w.ack(ack.NextSeq)
		}
	}

	for {
		select {
		case <-w.done:
			flush()
			if conn != nil {
				w.mu.Lock()
				fin := Fin{NextSeq: w.nextSeq}
				w.mu.Unlock()
				WriteMsg(conn, fin)
				// Give the Fin a moment to land before tearing down.
				conn.SetReadDeadline(time.Now().Add(2 * time.Second))
				ReadMsg(conn, &scratch)
				conn.Close()
			}
			return
		case <-ticker.C:
			flush()
		case <-w.kick:
			flush()
		}
	}
}
