// Package verify is the live verification subsystem: mocd daemons
// stream every completed m-operation record to a continuously-running
// monitor service (cmd/mocmon), which merges the per-node streams into
// one global response-order stream, feeds the Section 5 proof-obligation
// monitor (internal/monitor) and an incremental Theorem 7 checker, and
// garbage-collects closed window prefixes so memory stays bounded for
// unbounded histories.
//
// The wire protocol is four message kinds over the internal/wire binary
// codec, framed as [4-byte big-endian length][any slot]:
//
//	Hello — opens a stream: node id, generation, store parameters, and
//	        the first sequence number the writer holds. The service
//	        replies with an Ack naming the sequence it wants next, so a
//	        reconnecting writer resumes exactly where the service left
//	        off (records below the ack were already verified).
//	Batch — a contiguous run of records starting at FirstSeq. Batches
//	        are idempotent: the service drops the prefix it has seen.
//	Ack   — service → writer: everything below NextSeq is safely in the
//	        merge; the writer may drop its retained copies.
//	Fin   — writer → service: clean end of stream (the daemon drained);
//	        the stream stops holding the merge watermark back.
//
// Sequence numbers are per process *generation*: a restarted daemon
// announces a new Gen and starts at 0 — its lost in-flight records are
// gone, which the service accounts (a new generation closes the old
// stream) rather than hides.
package verify

import (
	"encoding/binary"
	"fmt"
	"io"

	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/timestamp"
	"moc/internal/wire"
)

func init() {
	wire.Register(wire.TagMonHello, Hello{})
	wire.Register(wire.TagMonBatch, Batch{})
	wire.Register(wire.TagMonAck, Ack{})
	wire.Register(wire.TagMonFin, Fin{})
}

// Hello opens one record stream.
type Hello struct {
	// Node is the daemon's process id (its -id).
	Node int
	// Gen identifies the daemon incarnation (nanoseconds at writer
	// start); sequence numbers are only comparable within one Gen.
	Gen int64
	// Consistency is the store's condition string (core.Consistency);
	// every stream of one service must agree.
	Consistency string
	// Objects is the registry name list; every stream must agree.
	Objects []string
	// Shards is the store's shard-map spec (core.Store.ShardSpec, e.g.
	// "mod:8/4"), empty for an unsharded store; every stream must agree,
	// since records stamped under different shard maps carry
	// incomparable sequence numbers.
	Shards string
	// NextSeq is the lowest sequence number the writer still holds. The
	// service's Ack may ask for anything >= this.
	NextSeq int64
}

// Ack tells the writer which sequence number the service wants next.
type Ack struct {
	NextSeq int64
}

// Batch carries a contiguous run of records.
type Batch struct {
	FirstSeq int64
	Recs     []Rec
}

// Fin closes a stream cleanly after the daemon drained.
type Fin struct {
	// NextSeq is one past the last record of the stream.
	NextSeq int64
}

// Rec is the wire form of one mop.Record. Only the version-vector
// protocols stream (same restriction as the trace files); Result is
// deliberately absent — the checkers consume operations and timestamps,
// not opaque return values.
type Rec struct {
	Proc         int
	Update       bool
	IsConsistent bool
	Seq          int64
	Level        int
	Ops          []history.Op
	TSStart      []int64
	TSEnd        []int64
	Footprint    []int64
	Inv          int64
	Resp         int64
	Responders   []int64
}

// ToWire converts a captured record to its stream form. The second
// return is false for tag-based records (no version vectors), which the
// stream skips and counts, mirroring core.Trace.
func ToWire(rec mop.Record) (Rec, bool) {
	if rec.TSStart == nil || rec.TSEnd == nil {
		return Rec{}, false
	}
	out := Rec{
		Proc: rec.Proc, Update: rec.Update, IsConsistent: rec.IsConsistent,
		Seq: rec.Seq, Level: int(rec.Level), Ops: rec.Ops,
		TSStart: rec.TSStart, TSEnd: rec.TSEnd,
		Inv: rec.Inv, Resp: rec.Resp,
	}
	for _, id := range rec.Footprint.IDs() {
		out.Footprint = append(out.Footprint, int64(id))
	}
	for _, r := range rec.Responders {
		out.Responders = append(out.Responders, int64(r))
	}
	return out, true
}

// FromWire converts a stream record back to the raw form.
func (r Rec) FromWire() mop.Record {
	rec := mop.Record{
		Proc: r.Proc, Update: r.Update, IsConsistent: r.IsConsistent,
		Seq: r.Seq, Level: history.Level(r.Level), Ops: r.Ops,
		TSStart: timestamp.TS(r.TSStart), TSEnd: timestamp.TS(r.TSEnd),
		Inv: r.Inv, Resp: r.Resp,
	}
	ids := make([]object.ID, len(r.Footprint))
	for i, x := range r.Footprint {
		ids[i] = object.ID(x)
	}
	rec.Footprint = object.NewSet(ids...)
	for _, p := range r.Responders {
		rec.Responders = append(rec.Responders, int(p))
	}
	return rec
}

// MarshalWire implements wire.Marshaler.
func (h Hello) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, int64(h.Node))
	b = wire.AppendVarint(b, h.Gen)
	b = wire.AppendString(b, h.Consistency)
	b = wire.AppendUvarint(b, uint64(len(h.Objects)))
	for _, name := range h.Objects {
		b = wire.AppendString(b, name)
	}
	b = wire.AppendString(b, h.Shards)
	return wire.AppendVarint(b, h.NextSeq), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (h *Hello) UnmarshalWire(d *wire.Decoder) error {
	h.Node = d.Int()
	h.Gen = d.Varint()
	h.Consistency = d.String()
	n := d.ArrayLen(1)
	for i := 0; i < n && d.Err() == nil; i++ {
		h.Objects = append(h.Objects, d.String())
	}
	h.Shards = d.String()
	h.NextSeq = d.Varint()
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (a Ack) MarshalWire(b []byte) ([]byte, error) {
	return wire.AppendVarint(b, a.NextSeq), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *Ack) UnmarshalWire(d *wire.Decoder) error {
	a.NextSeq = d.Varint()
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (f Fin) MarshalWire(b []byte) ([]byte, error) {
	return wire.AppendVarint(b, f.NextSeq), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (f *Fin) UnmarshalWire(d *wire.Decoder) error {
	f.NextSeq = d.Varint()
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (t Batch) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, t.FirstSeq)
	b = wire.AppendUvarint(b, uint64(len(t.Recs)))
	for _, r := range t.Recs {
		b = appendRec(b, r)
	}
	return b, nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (t *Batch) UnmarshalWire(d *wire.Decoder) error {
	t.FirstSeq = d.Varint()
	n := d.ArrayLen(8) // a record is at least flags+a handful of varints
	if n > 0 {
		t.Recs = make([]Rec, 0, n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		t.Recs = append(t.Recs, decodeRec(d))
	}
	return d.Err()
}

const (
	recFlagUpdate     = 1 << 0
	recFlagConsistent = 1 << 1
)

func appendRec(b []byte, r Rec) []byte {
	var flags uint64
	if r.Update {
		flags |= recFlagUpdate
	}
	if r.IsConsistent {
		flags |= recFlagConsistent
	}
	b = wire.AppendUvarint(b, flags)
	b = wire.AppendVarint(b, int64(r.Proc))
	b = wire.AppendVarint(b, r.Seq)
	b = wire.AppendUvarint(b, uint64(r.Level))
	b = wire.AppendUvarint(b, uint64(len(r.Ops)))
	for _, op := range r.Ops {
		kind := uint64(0)
		if op.Kind == history.Write {
			kind = 1
		}
		b = wire.AppendUvarint(b, kind)
		b = wire.AppendVarint(b, int64(op.Obj))
		b = wire.AppendVarint(b, op.Val)
	}
	b = wire.AppendInt64s(b, r.TSStart)
	b = wire.AppendInt64s(b, r.TSEnd)
	b = wire.AppendInt64s(b, r.Footprint)
	b = wire.AppendVarint(b, r.Inv)
	b = wire.AppendVarint(b, r.Resp)
	return wire.AppendInt64s(b, r.Responders)
}

func decodeRec(d *wire.Decoder) Rec {
	var r Rec
	flags := d.Uvarint()
	r.Update = flags&recFlagUpdate != 0
	r.IsConsistent = flags&recFlagConsistent != 0
	r.Proc = d.Int()
	r.Seq = d.Varint()
	r.Level = int(d.Uvarint())
	n := d.ArrayLen(3)
	for i := 0; i < n && d.Err() == nil; i++ {
		kind := history.Read
		if d.Uvarint() == 1 {
			kind = history.Write
		}
		r.Ops = append(r.Ops, history.Op{Kind: kind, Obj: object.ID(d.Varint()), Val: d.Varint()})
	}
	r.TSStart = d.Int64s()
	r.TSEnd = d.Int64s()
	r.Footprint = d.Int64s()
	r.Inv = d.Varint()
	r.Resp = d.Varint()
	r.Responders = d.Int64s()
	return r
}

// maxMsg bounds one stream message, mirroring the transport's frame cap.
const maxMsg = 32 << 20

// WriteMsg frames and writes one message (a registered wire type).
func WriteMsg(w io.Writer, v any) error {
	buf := make([]byte, 4, 256)
	buf, err := wire.AppendAny(buf, v)
	if err != nil {
		return err
	}
	if len(buf)-4 > maxMsg {
		return fmt.Errorf("verify: message %T is %d bytes (limit %d)", v, len(buf)-4, maxMsg)
	}
	binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
	_, err = w.Write(buf)
	return err
}

// ReadMsg reads one framed message into *scratch (grown and reused) and
// decodes it. A hostile length prefix fails before any allocation.
func ReadMsg(r io.Reader, scratch *[]byte) (any, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxMsg {
		return nil, fmt.Errorf("verify: bad message length %d", n)
	}
	if cap(*scratch) < int(n) {
		*scratch = make([]byte, n)
	}
	body := (*scratch)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	d := wire.NewDecoder(body)
	v := d.Any()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("verify: decode message: %w", err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("verify: %d trailing bytes after message", d.Remaining())
	}
	return v, nil
}
