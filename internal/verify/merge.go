package verify

import (
	"container/heap"

	"moc/internal/mop"
)

// Merger folds per-node record streams into one global response-order
// stream. Each node's records arrive approximately response-ordered
// (core calls RecordSink outside the store mutex, so two lanes
// completing microseconds apart can invert), so records are buffered in
// a per-node min-heap keyed by response time and released only up to
// the global watermark:
//
//	release point = min over live streams of (max Resp seen − slack)
//
// The slack absorbs intra-node sink-order inversions; a record arriving
// below the release point anyway (an inversion larger than the slack)
// is still released — immediately, out of global order — and the
// downstream monitor reports the feed-order break rather than the
// merger hiding it. A stream stops holding the watermark once it Fins
// (clean daemon drain) or is superseded by a newer generation of the
// same node (the daemon was killed and restarted).
type Merger struct {
	streams map[int]*stream
	late    int64
	lastOut int64
	unclean int64 // generations superseded without a Fin (daemon killed)
}

type stream struct {
	node    int
	gen     int64
	nextSeq int64 // next sequence number the merge wants
	buf     recHeap
	mark    int64 // max Resp seen on this stream
	fin     bool
	dups    int64
}

// NewMerger creates an empty merger.
func NewMerger() *Merger {
	return &Merger{streams: make(map[int]*stream), lastOut: -1 << 62}
}

// OpenStream registers (or resumes) node's stream for the given
// generation and returns the sequence number the merge wants next — the
// Ack for the stream's Hello. Reconnecting with the generation the
// merger already knows resumes mid-stream; a new generation supersedes
// the old one (its buffered records stay merged, it just stops holding
// the watermark) and starts at helloNext.
func (m *Merger) OpenStream(node int, gen, helloNext int64) int64 {
	s := m.streams[node]
	if s != nil && s.gen == gen {
		return s.nextSeq
	}
	if s != nil {
		// Superseded generation: whatever it buffered is still real;
		// only its watermark hold ends. Merge the remnant into the new
		// stream's buffer. Without a Fin first, the old generation's
		// tail is lost (the daemon was killed) — remember that, so the
		// end-of-run checks know the feed was lossy.
		if !s.fin {
			m.unclean++
		}
		s.fin = true
	}
	ns := &stream{node: node, gen: gen, nextSeq: helloNext, mark: -1 << 62}
	if s != nil {
		ns.buf = s.buf
		if s.mark > ns.mark {
			ns.mark = s.mark
		}
		ns.dups = s.dups
	}
	m.streams[node] = ns
	return ns.nextSeq
}

// Push feeds one batch from node's current stream and returns the next
// sequence number wanted (the Ack). Records below the wanted sequence
// are duplicates of a resend and dropped; a gap above it (which the
// writer-side protocol never produces) is accepted and counted as lost
// ground by the caller's Ack semantics.
func (m *Merger) Push(node int, b Batch) int64 {
	s := m.streams[node]
	if s == nil {
		return 0
	}
	for i, r := range b.Recs {
		seq := b.FirstSeq + int64(i)
		if seq < s.nextSeq {
			s.dups++
			continue
		}
		s.nextSeq = seq + 1
		rec := r.FromWire()
		heap.Push(&s.buf, rec)
		if rec.Resp > s.mark {
			s.mark = rec.Resp
		}
	}
	return s.nextSeq
}

// FinStream marks node's stream cleanly ended; it stops holding the
// release point back.
func (m *Merger) FinStream(node int, gen int64) {
	if s := m.streams[node]; s != nil && s.gen == gen {
		s.fin = true
	}
}

// Release pops every buffered record at or below the release point, in
// global response order. slack is the inversion allowance in clock
// units (nanoseconds).
func (m *Merger) Release(slack int64) []mop.Record {
	point := int64(1<<62 - 1)
	live := false
	for _, s := range m.streams {
		if s.fin {
			continue
		}
		live = true
		if s.mark == -1<<62 {
			return nil // a live stream has shown nothing yet
		}
		if s.mark-slack < point {
			point = s.mark - slack
		}
	}
	if !live && len(m.streams) == 0 {
		return nil
	}
	// With every stream fin'd nothing holds the release point (it stays
	// at +inf) and the buffers drain completely.
	var out []mop.Record
	for {
		var best *stream
		for _, s := range m.streams {
			if s.buf.Len() == 0 || s.buf.recs[0].Resp > point {
				continue
			}
			if best == nil || s.buf.recs[0].Resp < best.buf.recs[0].Resp {
				best = s
			}
		}
		if best == nil {
			return out
		}
		rec := heap.Pop(&best.buf).(mop.Record)
		if rec.Resp < m.lastOut {
			m.late++
		} else {
			m.lastOut = rec.Resp
		}
		out = append(out, rec)
	}
}

// Buffered returns the number of records awaiting release.
func (m *Merger) Buffered() int {
	n := 0
	for _, s := range m.streams {
		n += s.buf.Len()
	}
	return n
}

// Watermark returns the current release point with zero slack, or
// false when no live stream has reported yet.
func (m *Merger) Watermark() (int64, bool) {
	point := int64(1<<62 - 1)
	any := false
	for _, s := range m.streams {
		if s.fin {
			continue
		}
		if s.mark == -1<<62 {
			return 0, false
		}
		any = true
		if s.mark < point {
			point = s.mark
		}
	}
	return point, any
}

// CleanEnd reports whether the feed is known complete: every stream
// Fin'd on its own and no generation was superseded without one. Only
// then can an unresolved start be blamed on the history rather than on
// records the feed lost.
func (m *Merger) CleanEnd() bool {
	if m.unclean > 0 {
		return false
	}
	for _, s := range m.streams {
		if !s.fin {
			return false
		}
	}
	return true
}

// Superseded returns how many stream generations were replaced by a
// newer one without a clean Fin — one per daemon death observed through
// the stream protocol (the restarted daemon Hellos with a fresh gen).
func (m *Merger) Superseded() int64 { return m.unclean }

// Late returns how many records were released below an earlier release
// point (inversions larger than the slack); Dups the resend duplicates
// dropped.
func (m *Merger) Late() int64 { return m.late }

// Dups returns the resend duplicates dropped across all streams.
func (m *Merger) Dups() int64 {
	var n int64
	for _, s := range m.streams {
		n += s.dups
	}
	return n
}

// StreamState describes one stream for the status RPC.
type StreamState struct {
	Node     int   `json:"node"`
	Gen      int64 `json:"gen"`
	NextSeq  int64 `json:"nextSeq"`
	Buffered int   `json:"buffered"`
	Mark     int64 `json:"watermark"`
	Fin      bool  `json:"fin"`
}

// Streams reports the per-node stream states.
func (m *Merger) Streams() []StreamState {
	out := make([]StreamState, 0, len(m.streams))
	for _, s := range m.streams {
		mark := s.mark
		if mark == -1<<62 {
			mark = -1
		}
		out = append(out, StreamState{
			Node: s.node, Gen: s.gen, NextSeq: s.nextSeq,
			Buffered: s.buf.Len(), Mark: mark, Fin: s.fin,
		})
	}
	return out
}

// recHeap is a min-heap of records by response time.
type recHeap struct {
	recs []mop.Record
}

func (h recHeap) Len() int           { return len(h.recs) }
func (h recHeap) Less(i, j int) bool { return h.recs[i].Resp < h.recs[j].Resp }
func (h recHeap) Swap(i, j int)      { h.recs[i], h.recs[j] = h.recs[j], h.recs[i] }
func (h *recHeap) Push(x any)        { h.recs = append(h.recs, x.(mop.Record)) }
func (h *recHeap) Pop() any {
	old := h.recs
	n := len(old)
	rec := old[n-1]
	old[n-1] = mop.Record{}
	h.recs = old[:n-1]
	return rec
}
