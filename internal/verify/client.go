package verify

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client is a JSON-lines client for the service's status RPC.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

// DialStatus connects to a service's status RPC address.
func DialStatus(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &Client{conn: conn, enc: json.NewEncoder(conn), sc: sc}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(req rpcRequest) (rpcResponse, error) {
	if err := c.enc.Encode(req); err != nil {
		return rpcResponse{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return rpcResponse{}, err
		}
		return rpcResponse{}, fmt.Errorf("verify: status connection closed")
	}
	var resp rpcResponse
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return rpcResponse{}, err
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("verify: %s", resp.Err)
	}
	return resp, nil
}

// Status returns (records verified, violation count, consistency).
func (c *Client) Status() (observed int64, violations int, consistency string, err error) {
	resp, err := c.call(rpcRequest{Op: "status"})
	if err != nil {
		return 0, 0, "", err
	}
	n := 0
	if resp.Violations != nil {
		n = *resp.Violations
	}
	return resp.Observed, n, resp.Consistency, nil
}

// Stats returns the pipeline's full snapshot (zero before any stream
// connected).
func (c *Client) Stats() (Stats, error) {
	resp, err := c.call(rpcRequest{Op: "stats"})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, nil
	}
	return *resp.Stats, nil
}

// Violations returns up to limit violations (0 = all).
func (c *Client) Violations(limit int) ([]VJSON, error) {
	resp, err := c.call(rpcRequest{Op: "violations", Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.List, nil
}

// Shutdown asks the service to stop.
func (c *Client) Shutdown() error {
	_, err := c.call(rpcRequest{Op: "shutdown"})
	return err
}

// SendRecords opens a one-shot stream as the given node, ships recs,
// and Fins. It is the injection hook the smoke tests and chaos
// campaigns use to plant a known-bad record and assert the service
// flags it online.
func SendRecords(addr string, node int, consistency string, objects []string, recs []Rec) error {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	var scratch []byte
	gen := time.Now().UnixNano()
	if err := WriteMsg(conn, Hello{Node: node, Gen: gen, Consistency: consistency, Objects: objects}); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if v, err := ReadMsg(conn, &scratch); err != nil {
		return err
	} else if _, ok := v.(Ack); !ok {
		return fmt.Errorf("verify: expected Ack to Hello, got %T", v)
	}
	if err := WriteMsg(conn, Batch{FirstSeq: 0, Recs: recs}); err != nil {
		return err
	}
	if v, err := ReadMsg(conn, &scratch); err != nil {
		return err
	} else if _, ok := v.(Ack); !ok {
		return fmt.Errorf("verify: expected Ack to Batch, got %T", v)
	}
	if err := WriteMsg(conn, Fin{NextSeq: int64(len(recs))}); err != nil {
		return err
	}
	ReadMsg(conn, &scratch)
	return nil
}
