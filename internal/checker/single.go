package checker

import (
	"errors"

	"moc/internal/history"
	"moc/internal/object"
)

// ErrNotSingleObject is returned by SingleObjectLinearizable when some
// m-operation spans more than one object.
var ErrNotSingleObject = errors.New("checker: history contains multi-object m-operations")

// ForcedClosure computes the fixpoint of the forcing rules over the base
// relation: edges that must hold in *every* legal sequential extension,
// given the known reads-from relation. For each interfering triple
// (α, β, γ) — α reads some object from β and γ also writes it — γ cannot
// be placed between β and α, so:
//
//	β ~> γ  forces  α ~> γ     (γ after the read's source ⇒ γ after the read)
//	γ ~> α  forces  γ ~> β     (γ before the reader ⇒ γ before the source)
//
// The result is the transitive closure of base plus all derived edges.
// If the result is cyclic the history is certainly not admissible w.r.t.
// base (soundness: every derived edge must hold in every legal
// extension). The converse holds for single-object histories (Misra
// [19]) but cannot hold in general for multi-object m-operations: the
// rules are a polynomial unit-propagation, while Theorem 2 shows
// m-linearizability with known reads-from is NP-complete. Section 3's
// weaker observation — that acyclicity of the *base* relation ~>H does
// not imply admissibility — is exhibited by
// TestUnplaceableMultiObjectHistory.
func ForcedClosure(h *history.History, base *history.Relation) (*history.Relation, bool) {
	rel := base.Clone().TransitiveClosure()
	for changed := true; changed; {
		changed = false
		h.InterferingTriples(func(alpha, beta history.ID, _ object.ID, gamma history.ID) bool {
			if rel.Has(beta, gamma) && !rel.Has(alpha, gamma) {
				rel.Add(alpha, gamma)
				changed = true
			}
			if rel.Has(gamma, alpha) && !rel.Has(gamma, beta) {
				rel.Add(gamma, beta)
				changed = true
			}
			return true
		})
		if changed {
			rel.TransitiveClosure()
		}
	}
	// Detect cycles: the closure of a cyclic relation orders some pair in
	// both directions.
	for a := 0; a < rel.Len(); a++ {
		cyclic := false
		rel.Successors(history.ID(a), func(b history.ID) {
			if rel.Has(b, history.ID(a)) {
				cyclic = true
			}
		})
		if cyclic {
			return rel, false
		}
	}
	return rel, true
}

// SingleObjectLinearizable decides linearizability for histories in which
// every m-operation accesses exactly one object — the traditional
// concurrent-objects model. With the reads-from relation known this is
// polynomial (Misra [19]): compute the forced closure of real-time ∪
// reads-from ∪ process order; the history is linearizable iff the closure
// is acyclic. The witness is any topological extension.
//
// This is the tractable baseline experiment E3 contrasts with the
// NP-complete multi-object case.
func SingleObjectLinearizable(h *history.History) (Result, error) {
	for _, m := range h.MOps()[1:] {
		if m.Objects().Len() > 1 {
			return Result{}, ErrNotSingleObject
		}
	}
	base := history.MLinearizableBase.Build(h)
	forced, acyclic := ForcedClosure(h, base)
	if !acyclic {
		return Result{}, nil
	}
	order, ok := forced.TopoOrder()
	if !ok {
		return Result{}, nil
	}
	witness := history.Sequence(order)
	if legal, _ := witness.ReplayLegal(h); !legal {
		// For single-object histories the forced closure is complete, so
		// a topological extension that fails replay indicates the
		// greedy extension picked an order that needs the per-object
		// write order refined; fall back to the exact decider, which is
		// fast once the forced edges are supplied.
		return Decide(h, history.MLinearizableBase, &Options{ExtraOrder: forced})
	}
	return Result{Admissible: true, Witness: witness}, nil
}
