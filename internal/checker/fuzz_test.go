package checker

import (
	"testing"

	"moc/internal/history"
	"moc/internal/object"
)

// FuzzDecide hardens the exact decider: arbitrary bytes are decoded into
// small histories; on every one, for every consistency condition, Decide
// must not panic, any witness must replay legal and respect the base
// relation, and the condition hierarchy must hold (m-lin ⟹ m-normal ⟹
// m-SC, since each base relation contains the previous).
func FuzzDecide(f *testing.F) {
	f.Add([]byte{0x01, 0x82, 0x13})
	f.Add([]byte{0x00, 0x00, 0x80, 0x80})
	f.Add([]byte{0xff, 0x41, 0x07, 0x33, 0x5a})
	f.Add([]byte{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc})

	f.Fuzz(func(t *testing.T, data []byte) {
		h := historyFromBytes(data)
		if h == nil {
			return
		}
		lin, err := MLinearizable(h)
		if err != nil {
			t.Fatalf("MLinearizable: %v", err)
		}
		norm, err := MNormal(h)
		if err != nil {
			t.Fatalf("MNormal: %v", err)
		}
		sc, err := MSequentiallyConsistent(h)
		if err != nil {
			t.Fatalf("MSC: %v", err)
		}
		// Hierarchy: the m-lin base contains the m-normal base, which
		// contains the m-SC base, so admissibility propagates downward.
		if lin.Admissible && !norm.Admissible {
			t.Fatalf("m-linearizable but not m-normal:\n%v", h.MOps()[1:])
		}
		if norm.Admissible && !sc.Admissible {
			t.Fatalf("m-normal but not m-SC:\n%v", h.MOps()[1:])
		}
		for _, res := range []struct {
			r    Result
			base history.BaseRelation
		}{
			{lin, history.MLinearizableBase},
			{norm, history.MNormalBase},
			{sc, history.MSequentialBase},
		} {
			if !res.r.Admissible {
				continue
			}
			if ok, bad := res.r.Witness.ReplayLegal(h); !ok {
				t.Fatalf("witness fails replay at %d", int(bad))
			}
			if !res.r.Witness.RespectsRelation(res.base.Build(h)) {
				t.Fatal("witness violates base relation")
			}
		}
		// Causal is weaker than all three.
		causal, err := MCausallyConsistent(h)
		if err != nil {
			t.Fatalf("MCausal: %v", err)
		}
		if sc.Admissible && !causal.Consistent {
			t.Fatal("m-SC but not m-causal")
		}
	})
}

// historyFromBytes decodes a byte string into a small 2-object history:
// each byte encodes (proc: 2 bits, kind: 1 bit, object: 1 bit, value
// source: 2 bits). Values read are drawn from the values written so far
// (or the initial value), so reads-from inference succeeds on most
// inputs; undecodable strings return nil.
func historyFromBytes(data []byte) *history.History {
	if len(data) == 0 || len(data) > 7 {
		return nil
	}
	b := history.NewBuilder(object.Sequential(2))
	written := [][]object.Value{{0}, {0}}
	next := object.Value(1)
	// Per-process clocks drift independently, so m-operations of
	// different processes overlap and genuine concurrency is exercised.
	procClock := make([]int64, 4)
	for _, raw := range data {
		p := int(raw & 0x3)
		x := object.ID((raw >> 2) & 0x1)
		isWrite := (raw>>3)&0x1 == 1
		pick := int(raw >> 4)
		inv := procClock[p] + int64(pick%2)
		resp := inv + 1 + int64(pick%4)*3
		procClock[p] = resp + 1
		if isWrite {
			b.Add(p, inv, resp, history.W(x, next))
			written[x] = append(written[x], next)
			next++
		} else {
			v := written[x][pick%len(written[x])]
			b.Add(p, inv, resp, history.R(x, v))
		}
	}
	h, err := b.Build()
	if err != nil {
		return nil
	}
	return h
}
