package checker

import (
	"errors"
	"fmt"

	"moc/internal/history"
	"moc/internal/object"
)

// Constraint names the execution constraints of Section 4.
type Constraint int

// Constraints (D4.8–D4.10).
const (
	OO Constraint = iota + 1 // conflicting m-operations ordered
	WW                       // update m-operations ordered
	WO                       // updates writing a common object ordered
)

// String names the constraint.
func (c Constraint) String() string {
	switch c {
	case OO:
		return "OO"
	case WW:
		return "WW"
	case WO:
		return "WO"
	default:
		return fmt.Sprintf("Constraint(%d)", int(c))
	}
}

// ErrConstraintViolated is returned when the supplied relation does not
// put the history under the requested constraint, so Theorem 7 does not
// apply.
var ErrConstraintViolated = errors.New("checker: history is not under the requested constraint")

// RWClosure computes the logical read-write precedence ~rw of D4.11 with
// respect to the (transitively closed) relation rel:
//
//	α ~rw~> γ  iff  ∃β: interfere(H, α, β, γ) ∧ β ~>H γ
//
// i.e. whenever γ overwrites an object α read from β and γ follows β, any
// legal sequentialization must place γ after α.
func RWClosure(h *history.History, rel *history.Relation) *history.Relation {
	rw := history.NewRelation(h.Len())
	h.InterferingTriples(func(alpha, beta history.ID, _ object.ID, gamma history.ID) bool {
		if rel.Has(beta, gamma) {
			rw.Add(alpha, gamma)
		}
		return true
	})
	return rw
}

// ExtendedRelation computes ~H+ of D4.12: the transitive closure of
// rel ∪ ~rw. rel must already be transitively closed.
func ExtendedRelation(h *history.History, rel *history.Relation) *history.Relation {
	ext := rel.Clone()
	ext.Union(RWClosure(h, rel))
	return ext.TransitiveClosure()
}

// ConstraintResult is the outcome of the polynomial Theorem 7 check.
type ConstraintResult struct {
	Admissible bool
	// Ordered reports whether ~>H (base ∪ sync, closed) is acyclic, i.e.
	// an irreflexive partial order as the model requires. A cyclic ~>H
	// (e.g. a read claiming a source that follows it in the ww order)
	// is inadmissible outright.
	Ordered bool
	// Legal reports D4.6 legality of the history w.r.t. the closed
	// relation; by Theorem 7 it coincides with Admissible when the
	// history is under the OO- or WW-constraint and ~>H is a partial
	// order.
	Legal bool
	// Witness is a legal sequential extension (Lemma 5), present iff
	// Admissible.
	Witness history.Sequence
	// Violation names one interfering triple (α, β, γ) proving
	// non-legality when Legal is false.
	Violation [3]history.ID
}

// AdmissibleUnderConstraint is AdmissibleUnderConstraintBase with the
// m-sequential-consistency base relation (process order ∪ reads-from),
// matching the protocols' D5.3.
func AdmissibleUnderConstraint(h *history.History, sync *history.Relation, c Constraint) (ConstraintResult, error) {
	return AdmissibleUnderConstraintBase(h, history.MSequentialBase, sync, c)
}

// AdmissibleUnderConstraintBase implements the Section 4 pipeline for an
// arbitrary base relation (use history.MLinearizableBase to verify
// m-linearizability per D5.8's ~>H = rf ∪ real-time ∪ ww). sync is the
// synchronization order the underlying system enforced (for the
// Section 5 protocols, the atomic-broadcast order of the update
// m-operations); ~>H is taken as base ∪ sync. The function:
//
//  1. closes ~>H and verifies the history is under the given constraint
//     (returning ErrConstraintViolated otherwise);
//  2. checks legality (D4.6) — by Lemma 6 necessary, by Lemmas 3–5
//     sufficient for admissibility;
//  3. when legal, builds ~H+ (D4.12) and extracts a witness by
//     topological sort, independently re-validated by replay.
//
// Everything here is polynomial in the size of the history, in contrast
// with Decide.
func AdmissibleUnderConstraintBase(h *history.History, base history.BaseRelation, sync *history.Relation, c Constraint) (ConstraintResult, error) {
	rel := base.Build(h)
	if sync != nil {
		rel.Union(sync)
	}
	closed := rel.TransitiveClosure()

	under := false
	switch c {
	case OO:
		under = h.SatisfiesOO(closed)
	case WW:
		under = h.SatisfiesWW(closed)
	case WO:
		under = h.SatisfiesWO(closed)
	default:
		return ConstraintResult{}, fmt.Errorf("checker: unknown constraint %d", int(c))
	}
	if !under {
		return ConstraintResult{}, fmt.Errorf("%w: %s", ErrConstraintViolated, c)
	}

	// ~>H must be an irreflexive partial order; a cycle (a read sourced
	// from an m-operation that follows it) is inadmissible outright.
	for a := 0; a < closed.Len(); a++ {
		if closed.Has(history.ID(a), history.ID(a)) {
			return ConstraintResult{}, nil
		}
	}

	res := ConstraintResult{Ordered: true, Legal: h.LegalWRT(closed)}
	if !res.Legal {
		a, b, g, _ := h.IllegalTriple(closed)
		res.Violation = [3]history.ID{a, b, g}
		return res, nil
	}

	ext := ExtendedRelation(h, closed)
	order, ok := ext.TopoOrder()
	if !ok {
		// Lemmas 3 and 4 prove ~H+ is acyclic for legal histories under
		// OO or WW; a cycle here indicates either the weaker WO input or
		// an internal inconsistency.
		cycle := ext.FindCycle()
		return res, fmt.Errorf("checker: extended relation ~H+ cyclic (cycle %v) despite legality under %s", cycle, c)
	}
	witness := history.Sequence(order)
	if legal, bad := witness.ReplayLegal(h); !legal {
		return res, fmt.Errorf("checker: internal: Theorem 7 witness fails replay at %d", int(bad))
	}
	res.Admissible = true
	res.Witness = witness
	return res, nil
}

// SyncFromUpdates builds a synchronization relation that totally orders
// the given update m-operations in slice order (the initial m-operation
// is implicitly first). This is how protocol recordings communicate their
// atomic-broadcast delivery order to the checker.
func SyncFromUpdates(h *history.History, updates []history.ID) *history.Relation {
	sync := history.NewRelation(h.Len())
	prev := history.InitID
	for _, u := range updates {
		sync.Add(prev, u)
		prev = u
	}
	return sync
}
