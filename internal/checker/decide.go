// Package checker decides the consistency conditions of Mittal & Garg
// (1998) for recorded histories.
//
// It contains three deciders:
//
//   - Decide: the exact decision procedure for m-sequential consistency,
//     m-linearizability and m-normality. The problems are NP-complete
//     (Theorems 1 and 2), so Decide performs a memoized backtracking
//     search over the linear extensions of ~>H with legality pruning; it
//     is exponential in the worst case (experiment E3 measures this) but
//     returns a verifiable certificate — a legal sequential witness —
//     whenever the history is admissible.
//
//   - AdmissibleUnderConstraint: the polynomial-time path of Section 4.
//     For histories under the OO- or WW-constraint, Theorem 7 reduces
//     admissibility to legality; the witness is produced by closing ~>H
//     with the logical read-write precedence ~rw (D4.11–D4.12) and
//     topologically sorting (Lemma 5).
//
//   - SingleObjectLinearizable: the polynomial special case the paper
//     contrasts against (Misra [19]): when every m-operation touches a
//     single object and the reads-from relation is known, linearizability
//     is decidable in polynomial time. Theorem 2 shows this tractability
//     is destroyed by multi-object operations.
package checker

import (
	"errors"
	"fmt"

	"moc/internal/history"
	"moc/internal/object"
)

// ErrBudget is returned by Decide when the node budget is exhausted
// before the search concludes.
var ErrBudget = errors.New("checker: search node budget exhausted")

// Heuristic selects the order in which Decide tries ready candidates.
type Heuristic int

// Heuristics. TimeOrder explores candidates by ascending invocation time,
// which tends to follow the real execution and terminates quickly on
// histories produced by the Section 5 protocols; IDOrder is the naive
// baseline used by the ablation benchmark.
const (
	TimeOrder Heuristic = iota + 1
	IDOrder
)

// Options tune the exact decision procedure.
type Options struct {
	// Heuristic defaults to TimeOrder.
	Heuristic Heuristic
	// MaxNodes bounds the number of search nodes (0 = unlimited).
	MaxNodes int
	// ExtraOrder, when non-nil, is an additional synchronization order
	// the witness must respect (e.g. a protocol's atomic-broadcast
	// order). It is unioned into ~>H before the search.
	ExtraOrder *history.Relation
	// Memoize enables the visited-state cache (default on via Decide's
	// wrappers; the ablation benchmark turns it off).
	DisableMemo bool
}

// Stats reports the work the search performed.
type Stats struct {
	Nodes    int // search tree nodes expanded
	MemoHits int // states skipped because an equivalent state failed before
}

// Result is the outcome of a decision.
type Result struct {
	Admissible bool
	// Witness is a legal sequential history equivalent to the input that
	// respects ~>H; valid only when Admissible.
	Witness history.Sequence
	Stats   Stats
}

// MSequentiallyConsistent reports whether h is m-sequentially consistent
// (admissible w.r.t. process order ∪ reads-from; Section 2.3).
func MSequentiallyConsistent(h *history.History) (Result, error) {
	return Decide(h, history.MSequentialBase, nil)
}

// MLinearizable reports whether h is m-linearizable (admissible w.r.t.
// process order ∪ reads-from ∪ real-time order; Section 2.3).
func MLinearizable(h *history.History) (Result, error) {
	return Decide(h, history.MLinearizableBase, nil)
}

// MNormal reports whether h is m-normal (admissible w.r.t. process order
// ∪ reads-from ∪ object order; Section 2.3).
func MNormal(h *history.History) (Result, error) {
	return Decide(h, history.MNormalBase, nil)
}

// Decide searches for a legal sequential history equivalent to h that
// respects the base relation (plus opts.ExtraOrder). It implements the
// generic admissibility test of D4.7.
func Decide(h *history.History, base history.BaseRelation, opts *Options) (Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Heuristic == 0 {
		o.Heuristic = TimeOrder
	}

	rel := base.Build(h)
	if o.ExtraOrder != nil {
		rel.Union(o.ExtraOrder)
	}

	n := h.Len()
	s := &search{
		h:         h,
		rel:       rel,
		opts:      o,
		indeg:     make([]int, n),
		placed:    make([]bool, n),
		lastW:     make([]history.ID, h.Registry().Len()),
		order:     make([]history.ID, 0, n),
		memo:      make(map[string]struct{}),
		maskWords: (n + 63) / 64,
	}
	for i := range s.lastW {
		s.lastW[i] = -1
	}
	for from := 0; from < n; from++ {
		rel.Successors(history.ID(from), func(to history.ID) {
			s.indeg[to]++
		})
	}
	// A cycle in ~>H means no linear extension exists at all.
	if !rel.Acyclic() {
		return Result{Stats: s.stats}, nil
	}

	found, err := s.run()
	if err != nil {
		return Result{Stats: s.stats}, err
	}
	if !found {
		return Result{Stats: s.stats}, nil
	}
	witness := make(history.Sequence, len(s.order))
	copy(witness, s.order)
	if ok, bad := witness.ReplayLegal(h); !ok {
		// The search invariant guarantees legality; failing here means a
		// checker bug, which must never be reported as "admissible".
		return Result{Stats: s.stats}, fmt.Errorf("checker: internal: witness fails replay at %d", int(bad))
	}
	return Result{Admissible: true, Witness: witness, Stats: s.stats}, nil
}

type search struct {
	h         *history.History
	rel       *history.Relation
	opts      Options
	indeg     []int
	placed    []bool
	lastW     []history.ID
	order     []history.ID
	memo      map[string]struct{}
	stats     Stats
	maskWords int
}

// run performs the DFS. It returns whether a complete legal extension was
// found; s.order holds it on success.
func (s *search) run() (bool, error) {
	if len(s.order) == s.h.Len() {
		return true, nil
	}
	if s.opts.MaxNodes > 0 && s.stats.Nodes >= s.opts.MaxNodes {
		return false, ErrBudget
	}
	s.stats.Nodes++

	if !s.opts.DisableMemo {
		key := s.stateKey()
		if _, failed := s.memo[key]; failed {
			s.stats.MemoHits++
			return false, nil
		}
		defer func() {
			// Only failure states are recorded; success unwinds
			// immediately without further lookups.
			if len(s.order) != s.h.Len() {
				s.memo[key] = struct{}{}
			}
		}()
	}

	for _, cand := range s.candidates() {
		m := s.h.MOp(cand)
		// Place cand.
		s.placed[cand] = true
		s.order = append(s.order, cand)
		var savedWriters []history.ID
		var savedObjs []object.ID
		for _, x := range m.WObjects().IDs() {
			savedObjs = append(savedObjs, x)
			savedWriters = append(savedWriters, s.lastW[x])
			s.lastW[x] = cand
		}
		s.rel.Successors(cand, func(to history.ID) { s.indeg[to]-- })

		found, err := s.run()
		if err != nil || found {
			return found, err
		}

		// Undo.
		s.rel.Successors(cand, func(to history.ID) { s.indeg[to]++ })
		for i := len(savedObjs) - 1; i >= 0; i-- {
			s.lastW[savedObjs[i]] = savedWriters[i]
		}
		s.order = s.order[:len(s.order)-1]
		s.placed[cand] = false
	}
	return false, nil
}

// candidates returns the IDs that are ready (all predecessors placed) and
// legally placeable (every external read's source is the current last
// writer of that object), in heuristic order.
func (s *search) candidates() []history.ID {
	var out []history.ID
	for id := 0; id < s.h.Len(); id++ {
		if s.placed[id] || s.indeg[id] != 0 {
			continue
		}
		if !s.placeable(history.ID(id)) {
			continue
		}
		out = append(out, history.ID(id))
	}
	if s.opts.Heuristic == TimeOrder {
		// Insertion sort by invocation time (candidate lists are short).
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && s.h.MOp(out[j]).Inv < s.h.MOp(out[j-1]).Inv; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
	}
	return out
}

func (s *search) placeable(id history.ID) bool {
	m := s.h.MOp(id)
	for _, x := range m.RObjects().IDs() {
		src, ok := s.h.ReadsFromSource(id, x)
		if !ok || s.lastW[x] != src {
			return false
		}
	}
	return true
}

// stateKey encodes (placed set, last-writer vector): future feasibility
// depends only on these, so failed states can be memoized.
func (s *search) stateKey() string {
	buf := make([]byte, 0, s.maskWords*8+len(s.lastW)*4)
	var word uint64
	for i, p := range s.placed {
		if p {
			word |= 1 << (uint(i) % 64)
		}
		if i%64 == 63 || i == len(s.placed)-1 {
			for b := 0; b < 8; b++ {
				buf = append(buf, byte(word>>(8*b)))
			}
			word = 0
		}
	}
	for _, w := range s.lastW {
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return string(buf)
}
