package checker

import (
	"math/rand"
	"testing"

	"moc/internal/history"
	"moc/internal/object"
	"moc/internal/shard"
)

// shardSet returns the objects the shard map assigns to shard s.
func shardSet(m *shard.Map, s int) object.Set {
	var ids []object.ID
	for x := 0; x < m.Objects(); x++ {
		if m.Of(object.ID(x)) == s {
			ids = append(ids, object.ID(x))
		}
	}
	return object.NewSet(ids...)
}

// TestShardRestrictionPreservesAdmissibility is the decomposition half
// of the composition law (Gotsman & Burckhardt): if a history is
// admissible, so is its projection onto each shard's objects — the
// admissibility witness projects. Histories are generated from a serial
// schedule (admissible by construction, confirmed with the exact
// decider), with cross-shard m-operations and overlapping real-time
// windows, then each per-shard restriction is re-decided under the same
// base relation.
func TestShardRestrictionPreservesAdmissibility(t *testing.T) {
	const numObjects, numShards = 4, 2
	smap, err := shard.NewMap(numObjects, numShards)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	bases := []struct {
		name string
		base history.BaseRelation
	}{
		{"msc", history.MSequentialBase},
		{"mlin", history.MLinearizableBase},
	}
	for trial := 0; trial < 30; trial++ {
		h := randomSerialHistory(t, rng, numObjects)
		for _, tc := range bases {
			res, err := Decide(h, tc.base, nil)
			if err != nil {
				t.Fatalf("trial %d: decide full %s: %v", trial, tc.name, err)
			}
			if !res.Admissible {
				t.Fatalf("trial %d: serially generated history not %s-admissible", trial, tc.name)
			}
			for s := 0; s < numShards; s++ {
				sub, _, err := h.RestrictToObjects(shardSet(smap, s))
				if err != nil {
					t.Fatalf("trial %d: restrict to shard %d: %v", trial, s, err)
				}
				subRes, err := Decide(sub, tc.base, nil)
				if err != nil {
					t.Fatalf("trial %d: decide shard %d %s: %v", trial, s, tc.name, err)
				}
				if !subRes.Admissible {
					t.Fatalf("trial %d: %s admissible globally but shard %d restriction is not",
						trial, tc.name, s)
				}
			}
		}
	}
}

// TestShardCompositionMLinSingleShardOps is the composition half, the
// locality property m-linearizability inherits from linearizability
// (Herlihy & Wing): when every m-operation stays within one shard, the
// full history is m-linearizable exactly when each per-shard projection
// is — treat each shard as one coarse object and the classic locality
// argument goes through. This is the law the sharded store leans on to
// run single-shard operations on independent broadcast lanes with no
// cross-lane coordination at all. Histories here are adversarial, not
// serial: reads may pick any previously written value, so plenty of
// trials are inadmissible and both directions of the equivalence are
// exercised.
func TestShardCompositionMLinSingleShardOps(t *testing.T) {
	const numObjects, numShards = 4, 2
	smap, err := shard.NewMap(numObjects, numShards)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	admissible, violated := 0, 0
	for trial := 0; trial < 60; trial++ {
		h := randomSingleShardHistory(t, rng, smap)
		res, err := Decide(h, history.MLinearizableBase, nil)
		if err != nil {
			t.Fatalf("trial %d: decide full: %v", trial, err)
		}
		allShards := true
		for s := 0; s < numShards; s++ {
			sub, _, err := h.RestrictToObjects(shardSet(smap, s))
			if err != nil {
				t.Fatalf("trial %d: restrict to shard %d: %v", trial, s, err)
			}
			subRes, err := Decide(sub, history.MLinearizableBase, nil)
			if err != nil {
				t.Fatalf("trial %d: decide shard %d: %v", trial, s, err)
			}
			if !subRes.Admissible {
				allShards = false
			}
		}
		if res.Admissible != allShards {
			t.Fatalf("trial %d: locality broken: full m-lin=%v, all shard restrictions m-lin=%v",
				trial, res.Admissible, allShards)
		}
		if res.Admissible {
			admissible++
		} else {
			violated++
		}
	}
	if admissible == 0 || violated == 0 {
		t.Fatalf("generator not adversarial enough: %d admissible, %d violated", admissible, violated)
	}
}

// TestShardCompositionFailsForMSC pins the gap the cross-shard ordering
// layer exists to close: m-sequential consistency is NOT compositional,
// even with every m-operation confined to a single shard. The classic
// store-buffer interleaving — P0 writes x then reads y stale, P1 writes
// y then reads x stale — is m-SC on each shard separately but has no
// global legal interleaving. Per-shard lanes alone would admit it;
// that is why the sharded protocol still runs each process's operations
// through its session anchor rather than trusting shard locality.
func TestShardCompositionFailsForMSC(t *testing.T) {
	reg := object.Sequential(2) // object 0 → shard 0, object 1 → shard 1
	smap, err := shard.NewMap(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := history.NewBuilder(reg)
	b.Add(0, 0, 1, history.W(0, 1))              // P0: W(x)1
	b.Add(0, 2, 3, history.R(1, object.Initial)) // P0: R(y)=0 — misses P1's write
	b.Add(1, 0, 1, history.W(1, 1))              // P1: W(y)1
	b.Add(1, 2, 3, history.R(0, object.Initial)) // P1: R(x)=0 — misses P0's write
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	res, err := Decide(h, history.MSequentialBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admissible {
		t.Fatal("store-buffer history must not be m-sequentially consistent")
	}
	for s := 0; s < 2; s++ {
		sub, _, err := h.RestrictToObjects(shardSet(smap, s))
		if err != nil {
			t.Fatalf("restrict to shard %d: %v", s, err)
		}
		subRes, err := Decide(sub, history.MSequentialBase, nil)
		if err != nil {
			t.Fatalf("decide shard %d: %v", s, err)
		}
		if !subRes.Admissible {
			t.Fatalf("shard %d restriction should be m-SC on its own", s)
		}
	}
}

// randomSerialHistory generates a history from a random serial schedule
// of multi-object m-operations: every write value is distinct, every
// read observes the serially-current value, and invocation times follow
// the schedule with response times stretched to overlap later
// operations on other processes. The schedule itself is a legal witness
// that respects real time, so the history is admissible under every
// base relation the deciders use.
func randomSerialHistory(t *testing.T, rng *rand.Rand, numObjects int) *history.History {
	t.Helper()
	reg := object.Sequential(numObjects)
	b := history.NewBuilder(reg)
	current := make([]object.Value, numObjects) // serially-current value per object
	next := object.Value(1)
	lastResp := map[int]int64{}
	prevInv := int64(-1)
	n := 5 + rng.Intn(5)
	for k := 0; k < n; k++ {
		p := rng.Intn(3)
		// Invocations strictly follow the schedule (and each process's
		// own last response), so every real-time edge agrees with the
		// serial order and the schedule stays a valid witness; stretched
		// responses still overlap later operations on other processes.
		inv := int64(10 * k)
		if inv <= prevInv {
			inv = prevInv + 1
		}
		if last, ok := lastResp[p]; ok && inv <= last {
			inv = last + 1
		}
		prevInv = inv
		resp := inv + 1 + int64(rng.Intn(15))
		lastResp[p] = resp

		var ops []history.Op
		for _, x := range pickObjects(rng, numObjects) {
			if rng.Intn(2) == 0 {
				ops = append(ops, history.W(x, next))
				current[x] = next
				next++
			} else {
				ops = append(ops, history.R(x, current[x]))
			}
		}
		b.Add(p, inv, resp, ops...)
	}
	h, err := b.Build()
	if err != nil {
		t.Fatalf("randomSerialHistory: %v", err)
	}
	return h
}

// randomSingleShardHistory generates histories whose m-operations each
// touch objects of exactly one shard, with reads free to observe any
// value ever written to the object — stale reads included — so the
// result is frequently inadmissible.
func randomSingleShardHistory(t *testing.T, rng *rand.Rand, smap *shard.Map) *history.History {
	t.Helper()
	reg := object.Sequential(smap.Objects())
	b := history.NewBuilder(reg)
	written := make([][]object.Value, smap.Objects())
	for x := range written {
		written[x] = []object.Value{object.Initial}
	}
	next := object.Value(1)
	lastResp := map[int]int64{}
	n := 4 + rng.Intn(4)
	for k := 0; k < n; k++ {
		p := rng.Intn(2)
		inv := int64(10 * k)
		if last, ok := lastResp[p]; ok && inv <= last {
			inv = last + 1
		}
		resp := inv + 1 + int64(rng.Intn(15))
		lastResp[p] = resp

		s := rng.Intn(smap.Shards())
		objs := shardSet(smap, s).IDs()
		var ops []history.Op
		seen := map[object.ID]bool{}
		for _, x := range objs {
			if rng.Intn(2) == 0 || seen[x] {
				continue
			}
			seen[x] = true
			if rng.Intn(2) == 0 {
				ops = append(ops, history.W(x, next))
				written[x] = append(written[x], next)
				next++
			} else {
				vals := written[x]
				ops = append(ops, history.R(x, vals[rng.Intn(len(vals))]))
			}
		}
		if len(ops) == 0 {
			x := objs[rng.Intn(len(objs))]
			ops = append(ops, history.W(x, next))
			written[x] = append(written[x], next)
			next++
		}
		b.Add(p, inv, resp, ops...)
	}
	h, err := b.Build()
	if err != nil {
		t.Fatalf("randomSingleShardHistory: %v", err)
	}
	return h
}

// pickObjects returns a nonempty random subset of the object space, in
// ascending order (an m-operation's footprint).
func pickObjects(rng *rand.Rand, numObjects int) []object.ID {
	var out []object.ID
	for x := 0; x < numObjects; x++ {
		if rng.Intn(2) == 0 {
			out = append(out, object.ID(x))
		}
	}
	if len(out) == 0 {
		out = append(out, object.ID(rng.Intn(numObjects)))
	}
	return out
}
