package checker

import (
	"errors"
	"testing"

	"moc/internal/history"
	"moc/internal/object"
)

// buildH is a helper assembling a history from a spec list.
type opSpec struct {
	proc      int
	inv, resp int64
	ops       []history.Op
}

func buildH(t *testing.T, reg *object.Registry, specs []opSpec) (*history.History, []history.ID) {
	t.Helper()
	b := history.NewBuilder(reg)
	ids := make([]history.ID, len(specs))
	for i, s := range specs {
		ids[i] = b.Add(s.proc, s.inv, s.resp, s.ops...)
	}
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return h, ids
}

func TestMSequentialClassicExample(t *testing.T) {
	// The canonical sequentially consistent but not linearizable history:
	//   P1: w(x)1 [0,10]
	//   P2: r(x)0 [20,30]   (stale read, after w in real time)
	reg := object.MustRegistry("x")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},
		{2, 20, 30, []history.Op{history.R(0, 0)}},
	})
	sc, err := MSequentiallyConsistent(h)
	if err != nil {
		t.Fatalf("MSC: %v", err)
	}
	if !sc.Admissible {
		t.Fatal("stale read must be m-sequentially consistent")
	}
	lin, err := MLinearizable(h)
	if err != nil {
		t.Fatalf("MLin: %v", err)
	}
	if lin.Admissible {
		t.Fatal("stale read after response must not be m-linearizable")
	}
}

func TestMNormalBetweenSCAndLin(t *testing.T) {
	// m-normality orders non-overlapping m-operations only when they share
	// an object. A stale read of x after a write of x violates m-normality
	// too; a stale read of x after a write of *y* does not.
	reg := object.MustRegistry("x", "y")
	sameObj, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},
		{2, 20, 30, []history.Op{history.R(0, 0)}},
	})
	res, err := MNormal(sameObj)
	if err != nil {
		t.Fatalf("MNormal: %v", err)
	}
	if res.Admissible {
		t.Fatal("stale read of the written object violates m-normality")
	}

	// P1 writes x, later P2 reads y stale relative to an even earlier
	// write of y by P1 — construct: P1: w(y)1 [0,5]; P1: w(x)2 [10,15];
	// P2: r(y)0 [20,30]. Real-time forces w(y)1 -> r(y)0 for m-lin (not
	// normality? They share object y! Use disjoint-object staleness:
	// P3 writes x, P2 reads y stale only w.r.t. real-time against the x
	// writer.
	disjoint, _ := buildH(t, reg, []opSpec{
		{1, 0, 5, []history.Op{history.W(1, 1)}},                    // w(y)1
		{3, 10, 15, []history.Op{history.W(0, 2)}},                  // w(x)2
		{2, 20, 30, []history.Op{history.R(1, 1), history.R(0, 0)}}, // r(y)1 r(x)0: stale x
	})
	normal, err := MNormal(disjoint)
	if err != nil {
		t.Fatalf("MNormal: %v", err)
	}
	if normal.Admissible {
		t.Fatal("reader shares object x with the x-writer; object order applies")
	}
	_ = res
}

func TestMNormalWeakerThanMLin(t *testing.T) {
	// The separation the paper states ("m-normality is less restrictive
	// ... it does not order two non-overlapping m-operations unless they
	// act on a common object"): α=w(x)1 finishes before β=w(y)2 starts —
	// on disjoint objects, so only real-time (not object) order relates
	// them. A reader γ overlapping both observes β's write but misses
	// α's: admissible for m-normality (order β, γ, α works) but not for
	// m-linearizability (α must precede β, so γ cannot read x=0 after y=2).
	reg := object.MustRegistry("x", "y")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},                  // α = w(x)1
		{2, 20, 30, []history.Op{history.W(1, 2)}},                 // β = w(y)2
		{3, 5, 60, []history.Op{history.R(1, 2), history.R(0, 0)}}, // γ = r(y)2 r(x)0
	})
	lin, err := MLinearizable(h)
	if err != nil {
		t.Fatalf("MLin: %v", err)
	}
	if lin.Admissible {
		t.Fatal("inverted observation of real-time-ordered writers must violate m-linearizability")
	}
	norm, err := MNormal(h)
	if err != nil {
		t.Fatalf("MNormal: %v", err)
	}
	if !norm.Admissible {
		t.Fatal("m-normality does not order disjoint-object writers; history should be m-normal")
	}
	sc, err := MSequentiallyConsistent(h)
	if err != nil {
		t.Fatalf("MSC: %v", err)
	}
	if !sc.Admissible {
		t.Fatal("m-SC must also admit it")
	}
}

func TestWitnessRespectsBaseRelation(t *testing.T) {
	reg := object.MustRegistry("x", "y")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1), history.W(1, 2)}},
		{2, 20, 30, []history.Op{history.R(0, 1)}},
		{1, 40, 50, []history.Op{history.R(1, 2)}},
	})
	res, err := MLinearizable(h)
	if err != nil {
		t.Fatalf("MLin: %v", err)
	}
	if !res.Admissible {
		t.Fatal("expected admissible")
	}
	base := history.MLinearizableBase.Build(h)
	if !res.Witness.RespectsRelation(base) {
		t.Fatalf("witness %v violates base relation", res.Witness)
	}
	if ok, _ := res.Witness.ReplayLegal(h); !ok {
		t.Fatalf("witness %v not legal", res.Witness)
	}
}

func TestUnplaceableMultiObjectHistory(t *testing.T) {
	// Section 3 remark: acyclic ~>H yet not admissible. Both writers write
	// {x, y}; r1 wants x from w1 and y from w2; r2 wants the reverse.
	reg := object.MustRegistry("x", "y")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 100, []history.Op{history.W(0, 1), history.W(1, 1)}}, // w1
		{2, 0, 100, []history.Op{history.W(0, 2), history.W(1, 2)}}, // w2
		{3, 0, 100, []history.Op{history.R(0, 1), history.R(1, 2)}}, // r1
		{4, 0, 100, []history.Op{history.R(0, 2), history.R(1, 1)}}, // r2
	})
	base := history.MSequentialBase.Build(h)
	if !base.Acyclic() {
		t.Fatal("base relation should be acyclic")
	}
	res, err := MSequentiallyConsistent(h)
	if err != nil {
		t.Fatalf("MSC: %v", err)
	}
	if res.Admissible {
		t.Fatal("history must not be m-sequentially consistent")
	}
}

func TestDCASStyleAtomicityDetection(t *testing.T) {
	// A DCAS-style m-operation must see a consistent pair. Reader sees
	// x from the first update but y from the second — torn read, never
	// admissible since each update writes both objects.
	reg := object.MustRegistry("x", "y")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1), history.W(1, 10)}},
		{1, 20, 30, []history.Op{history.W(0, 2), history.W(1, 20)}},
		{2, 0, 40, []history.Op{history.R(0, 1), history.R(1, 20)}}, // torn
	})
	res, err := MSequentiallyConsistent(h)
	if err != nil {
		t.Fatalf("MSC: %v", err)
	}
	if res.Admissible {
		t.Fatal("torn multi-object read accepted")
	}
}

func TestDecideRespectsExtraOrder(t *testing.T) {
	// Two writes of x by different processes, one reader each: without
	// extra ordering both interleavings work; an ExtraOrder forcing the
	// reader's source last makes it inadmissible.
	reg := object.MustRegistry("x")
	h, ids := buildH(t, reg, []opSpec{
		{1, 0, 100, []history.Op{history.W(0, 1)}},
		{2, 0, 100, []history.Op{history.W(0, 2)}},
		{3, 0, 100, []history.Op{history.R(0, 1)}},
	})
	plain, err := Decide(h, history.MSequentialBase, nil)
	if err != nil || !plain.Admissible {
		t.Fatalf("plain decide = %+v, %v", plain, err)
	}
	extra := history.NewRelation(h.Len())
	extra.Add(ids[2], ids[1]) // reader before w(x)2
	constrained, err := Decide(h, history.MSequentialBase, &Options{ExtraOrder: extra})
	if err != nil || !constrained.Admissible {
		t.Fatalf("constrained decide = %+v, %v", constrained, err)
	}
	if !constrained.Witness.RespectsRelation(extra) {
		t.Fatal("witness ignores ExtraOrder")
	}
	// Forcing w(x)2 between w(x)1 and its reader is inadmissible.
	bad := history.NewRelation(h.Len())
	bad.Add(ids[0], ids[1])
	bad.Add(ids[1], ids[2])
	res, err := Decide(h, history.MSequentialBase, &Options{ExtraOrder: bad})
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if res.Admissible {
		t.Fatal("impossible ExtraOrder accepted")
	}
}

func TestDecideCyclicBaseRejected(t *testing.T) {
	reg := object.MustRegistry("x")
	h, ids := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},
		{2, 20, 30, []history.Op{history.W(0, 2)}},
	})
	cyc := history.NewRelation(h.Len())
	cyc.Add(ids[0], ids[1])
	cyc.Add(ids[1], ids[0])
	res, err := Decide(h, history.MSequentialBase, &Options{ExtraOrder: cyc})
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if res.Admissible {
		t.Fatal("cyclic relation accepted")
	}
}

func TestDecideNodeBudget(t *testing.T) {
	// An ambiguous many-writer history forces search; a budget of 1 node
	// must abort with ErrBudget.
	reg := object.MustRegistry("x", "y")
	var specs []opSpec
	for p := 1; p <= 6; p++ {
		specs = append(specs, opSpec{p, 0, 1000, []history.Op{history.W(0, int64(p)), history.W(1, int64(p))}})
	}
	specs = append(specs, opSpec{7, 0, 1000, []history.Op{history.R(0, 1), history.R(1, 6)}})
	h, _ := buildH(t, reg, specs)
	_, err := Decide(h, history.MSequentialBase, &Options{MaxNodes: 1})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestDecideHeuristicsAgree(t *testing.T) {
	reg := object.MustRegistry("x", "y")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},
		{2, 5, 15, []history.Op{history.W(1, 2)}},
		{1, 20, 30, []history.Op{history.R(1, 2), history.W(0, 3)}},
		{2, 25, 40, []history.Op{history.R(0, 1)}},
	})
	for _, heur := range []Heuristic{TimeOrder, IDOrder} {
		res, err := Decide(h, history.MLinearizableBase, &Options{Heuristic: heur})
		if err != nil {
			t.Fatalf("heuristic %d: %v", heur, err)
		}
		if !res.Admissible {
			t.Fatalf("heuristic %d: inadmissible", heur)
		}
	}
	// Memo disabled must agree too.
	res, err := Decide(h, history.MLinearizableBase, &Options{DisableMemo: true})
	if err != nil || !res.Admissible {
		t.Fatalf("memo-off decide = %+v, %v", res, err)
	}
}

func TestDecideStatsPopulated(t *testing.T) {
	reg := object.MustRegistry("x")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},
		{2, 20, 30, []history.Op{history.R(0, 1)}},
	})
	res, err := MLinearizable(h)
	if err != nil {
		t.Fatalf("MLin: %v", err)
	}
	if res.Stats.Nodes == 0 {
		t.Fatal("Stats.Nodes not populated")
	}
}

func TestFigure1IsMLinearizable(t *testing.T) {
	fig, err := history.Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	res, err := MLinearizable(fig.H)
	if err != nil {
		t.Fatalf("MLin: %v", err)
	}
	if !res.Admissible {
		t.Fatal("Figure 1's history should be m-linearizable")
	}
}

func TestFigure2IsMSequentiallyConsistent(t *testing.T) {
	fig, err := history.Figure2()
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	res, err := Decide(fig.H, history.MSequentialBase, &Options{ExtraOrder: fig.WW})
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if !res.Admissible {
		t.Fatal("H1 with its WW order should be m-sequentially consistent")
	}
	// The witness must avoid Figure 3's trap: β before δ.
	pos := map[history.ID]int{}
	for i, id := range res.Witness {
		pos[id] = i
	}
	if pos[fig.Beta] > pos[fig.Delta] {
		t.Fatalf("witness %v places β after δ — would be nonlegal", res.Witness)
	}
}
