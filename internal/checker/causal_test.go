package checker

import (
	"testing"

	"moc/internal/history"
	"moc/internal/object"
)

func TestMCausalAcceptsSequential(t *testing.T) {
	reg := object.MustRegistry("x")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},
		{2, 20, 30, []history.Op{history.R(0, 1)}},
	})
	res, err := MCausallyConsistent(h)
	if err != nil {
		t.Fatalf("MCausallyConsistent: %v", err)
	}
	if !res.Consistent {
		t.Fatal("sequential history rejected")
	}
	if len(res.Witnesses) != 2 {
		t.Fatalf("witnesses = %v", res.Witnesses)
	}
}

func TestMCausalAcceptsDivergentObservationOrders(t *testing.T) {
	// The defining causal-but-not-sequentially-consistent history:
	// concurrent writes w(x)1 and w(x)2; one reader sees 1 then 2, the
	// other 2 then 1. No single serialization exists, but each process's
	// view has one.
	reg := object.MustRegistry("x")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 100, []history.Op{history.W(0, 1)}},
		{2, 0, 100, []history.Op{history.W(0, 2)}},
		{3, 10, 20, []history.Op{history.R(0, 1)}},
		{3, 30, 40, []history.Op{history.R(0, 2)}},
		{4, 10, 20, []history.Op{history.R(0, 2)}},
		{4, 30, 40, []history.Op{history.R(0, 1)}},
	})
	sc, err := MSequentiallyConsistent(h)
	if err != nil {
		t.Fatalf("MSC: %v", err)
	}
	if sc.Admissible {
		t.Fatal("divergent observation orders cannot be m-sequentially consistent")
	}
	causal, err := MCausallyConsistent(h)
	if err != nil {
		t.Fatalf("MCausal: %v", err)
	}
	if !causal.Consistent {
		t.Fatal("divergent observation of concurrent writes must be m-causal")
	}
}

func TestMCausalRejectsCausalViolation(t *testing.T) {
	// w(x)1 at P1, then P1 writes y=2 (causally after). P2 reads y=2 but
	// then reads x=0: it observed the effect without its cause.
	reg := object.MustRegistry("x", "y")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},
		{1, 20, 30, []history.Op{history.W(1, 2)}},
		{2, 40, 50, []history.Op{history.R(1, 2)}},
		{2, 60, 70, []history.Op{history.R(0, 0)}},
	})
	res, err := MCausallyConsistent(h)
	if err != nil {
		t.Fatalf("MCausal: %v", err)
	}
	if res.Consistent {
		t.Fatal("effect-without-cause accepted as m-causal")
	}
	if res.BadProc != 2 {
		t.Fatalf("BadProc = %d, want 2", res.BadProc)
	}
}

func TestMCausalRejectsTransitiveViolation(t *testing.T) {
	// Causality through a third process's read: P1 writes x; P2 reads x
	// and writes y; P3 sees y but then reads x stale.
	reg := object.MustRegistry("x", "y")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},
		{2, 20, 30, []history.Op{history.R(0, 1)}},
		{2, 40, 50, []history.Op{history.W(1, 2)}},
		{3, 60, 70, []history.Op{history.R(1, 2)}},
		{3, 80, 90, []history.Op{history.R(0, 0)}},
	})
	res, err := MCausallyConsistent(h)
	if err != nil {
		t.Fatalf("MCausal: %v", err)
	}
	if res.Consistent {
		t.Fatal("transitive causal violation accepted")
	}
}

func TestMCausalWeakerThanMSC(t *testing.T) {
	// Every m-sequentially consistent history must be m-causal.
	fig, err := history.Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	causal, err := MCausallyConsistent(fig.H)
	if err != nil {
		t.Fatalf("MCausal: %v", err)
	}
	if !causal.Consistent {
		t.Fatal("an m-linearizable history must be m-causal")
	}
}

func TestMCausalMultiObjectAtomicity(t *testing.T) {
	// m-causal consistency still requires m-operations to be atomic: a
	// torn observation of a two-object update is rejected even per view.
	reg := object.MustRegistry("x", "y")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1), history.W(1, 10)}},
		{1, 20, 30, []history.Op{history.W(0, 2), history.W(1, 20)}},
		{2, 40, 50, []history.Op{history.R(0, 1), history.R(1, 20)}}, // torn
	})
	res, err := MCausallyConsistent(h)
	if err != nil {
		t.Fatalf("MCausal: %v", err)
	}
	if res.Consistent {
		t.Fatal("torn multi-object read accepted as m-causal")
	}
}

func TestRestrictClosureViolation(t *testing.T) {
	reg := object.MustRegistry("x")
	h, ids := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},
		{2, 20, 30, []history.Op{history.R(0, 1)}},
	})
	// Excluding the writer while keeping its reader must fail.
	if _, _, err := h.Restrict([]history.ID{ids[1]}); err == nil {
		t.Fatal("non-closed restriction accepted")
	}
	// Including both succeeds and preserves the reads-from edge.
	sub, mapping, err := h.Restrict([]history.ID{ids[0], ids[1]})
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if !sub.ReadsFromRel(mapping[ids[0]], mapping[ids[1]]) {
		t.Fatal("restriction lost reads-from")
	}
	if _, _, err := h.Restrict([]history.ID{99}); err == nil {
		t.Fatal("invalid id accepted")
	}
}
