package checker

import (
	"fmt"

	"moc/internal/history"
)

// CausalResult is the outcome of the m-causal-consistency check.
type CausalResult struct {
	Consistent bool
	// BadProc names the first process whose view has no legal
	// serialization (valid when !Consistent).
	BadProc int
	// Witnesses maps each process to a legal serialization of its view
	// (its own m-operations plus all updates), in the view's local IDs.
	Witnesses map[int]history.Sequence
}

// MCausallyConsistent decides m-causal consistency — the weaker condition
// the paper's introduction attributes to Raynal et al for multi-object
// transactions, lifted here to the m-operation model exactly as causal
// memory lifts to causal consistency:
//
// A history is m-causally consistent iff, for every process p, the
// sub-history consisting of all update m-operations plus p's own
// m-operations is admissible with respect to the causal order — the
// transitive closure of process order ∪ reads-from over the FULL history
// (so causality transmitted through other processes' queries is
// retained).
//
// Unlike m-sequential consistency, different processes may observe
// concurrent updates in different orders; unlike per-process coherence,
// causally related updates must be observed in causal order everywhere.
// m-sequential consistency implies m-causal consistency (a single global
// serialization works for every view).
//
// The per-view decision reuses the exact decider, so this is exponential
// in the worst case, like the conditions of Theorems 1–2.
func MCausallyConsistent(h *history.History) (CausalResult, error) {
	// Causal order on the full history.
	causal := history.MSequentialBase.Build(h).TransitiveClosure()

	updates := h.Updates()
	res := CausalResult{Consistent: true, BadProc: -1, Witnesses: make(map[int]history.Sequence)}
	for _, p := range h.Procs() {
		view := make([]history.ID, 0, len(updates)+4)
		seen := make(map[history.ID]bool, len(updates)+4)
		for _, u := range updates {
			view = append(view, u)
			seen[u] = true
		}
		for _, id := range h.ProcOps(p) {
			if !seen[id] {
				view = append(view, id)
			}
		}
		sub, mapping, err := h.Restrict(view)
		if err != nil {
			return CausalResult{}, fmt.Errorf("checker: causal view of P%d: %w", p, err)
		}
		rel := history.RemapRelation(causal, mapping, sub.Len())
		dec, err := Decide(sub, history.BaseRelation{}, &Options{ExtraOrder: rel})
		if err != nil {
			return CausalResult{}, fmt.Errorf("checker: causal view of P%d: %w", p, err)
		}
		if !dec.Admissible {
			return CausalResult{Consistent: false, BadProc: p}, nil
		}
		res.Witnesses[p] = dec.Witness
	}
	return res, nil
}
