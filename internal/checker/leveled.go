package checker

import (
	"fmt"

	"moc/internal/history"
)

// MixedResult is the outcome of MixedLevels.
type MixedResult struct {
	// Consistent is true when both component checks accept.
	Consistent bool
	// Full is the m-sequential-consistency verdict over the whole
	// history (every level guarantees at least m-SC).
	Full Result
	// Strong is the m-linearizability verdict over the restriction to
	// update m-operations and strong-level queries (quorum, all, and
	// level-less legacy operations). Zero-valued when the full check
	// already failed.
	Strong Result
	// StrongOps counts the m-operations of the strong restriction
	// (excluding the initial m-operation).
	StrongOps int
}

// MixedLevels decides consistency of a history whose queries carry
// per-request consistency levels, by composing the unchanged exact
// deciders (DESIGN.md §9):
//
//   - the full history — every operation, whatever its level — must be
//     m-sequentially consistent: ONE reads are served from a replica
//     that applies the one global total order of updates, and the
//     session floor keeps strong and weak reads of one process
//     mutually monotonic;
//   - the restriction to updates and strong-level queries (certified
//     quorum or all, plus level-less legacy operations) must be
//     m-linearizable: those reads paid for the real-time guarantee.
//
// The restriction is always reads-from closed because only updates
// write. Queries certified LevelOne — requested ONE, or force-completed
// below a majority — appear only in the m-SC check.
func MixedLevels(h *history.History) (MixedResult, error) {
	full, err := MSequentiallyConsistent(h)
	if err != nil {
		return MixedResult{}, fmt.Errorf("checker: mixed levels: full m-SC check: %w", err)
	}
	if !full.Admissible {
		return MixedResult{Full: full}, nil
	}

	strong := make([]history.ID, 0, h.Len())
	for _, m := range h.MOps()[1:] {
		if m.IsUpdate() || m.Level.Strong() {
			strong = append(strong, m.ID)
		}
	}
	sub, _, err := h.Restrict(strong)
	if err != nil {
		return MixedResult{Full: full}, fmt.Errorf("checker: mixed levels: restrict to strong subset: %w", err)
	}
	strongRes, err := MLinearizable(sub)
	if err != nil {
		return MixedResult{Full: full}, fmt.Errorf("checker: mixed levels: strong m-lin check: %w", err)
	}
	return MixedResult{
		Consistent: strongRes.Admissible,
		Full:       full,
		Strong:     strongRes,
		StrongOps:  len(strong),
	}, nil
}
