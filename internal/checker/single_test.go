package checker

import (
	"errors"
	"math/rand"
	"testing"

	"moc/internal/history"
	"moc/internal/object"
)

func TestSingleObjectLinearizableBasic(t *testing.T) {
	reg := object.MustRegistry("x")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},
		{2, 20, 30, []history.Op{history.R(0, 1)}},
	})
	res, err := SingleObjectLinearizable(h)
	if err != nil {
		t.Fatalf("SingleObjectLinearizable: %v", err)
	}
	if !res.Admissible {
		t.Fatal("trivially linearizable history rejected")
	}
}

func TestSingleObjectLinearizableStaleRead(t *testing.T) {
	reg := object.MustRegistry("x")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},
		{2, 20, 30, []history.Op{history.R(0, 0)}}, // stale after response
	})
	res, err := SingleObjectLinearizable(h)
	if err != nil {
		t.Fatalf("SingleObjectLinearizable: %v", err)
	}
	if res.Admissible {
		t.Fatal("stale read accepted")
	}
}

func TestSingleObjectNewOldInversion(t *testing.T) {
	// Two sequential reads observing new then old value: not linearizable.
	reg := object.MustRegistry("x")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 100, []history.Op{history.W(0, 1)}},
		{2, 10, 20, []history.Op{history.R(0, 1)}},
		{2, 30, 40, []history.Op{history.R(0, 0)}},
	})
	res, err := SingleObjectLinearizable(h)
	if err != nil {
		t.Fatalf("SingleObjectLinearizable: %v", err)
	}
	if res.Admissible {
		t.Fatal("new-old inversion accepted")
	}
}

func TestSingleObjectRejectsMultiObject(t *testing.T) {
	reg := object.MustRegistry("x", "y")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1), history.W(1, 2)}},
	})
	if _, err := SingleObjectLinearizable(h); !errors.Is(err, ErrNotSingleObject) {
		t.Fatalf("err = %v, want ErrNotSingleObject", err)
	}
}

func TestForcedClosureCatchesTornPairObservation(t *testing.T) {
	// Two writers of {x, y} observed in opposite orders by two readers:
	// the forcing rules derive both w1 ~> w2 and w2 ~> w1, so the forced
	// closure is cyclic, and the exact decider agrees the history is
	// inadmissible.
	reg := object.MustRegistry("x", "y")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 100, []history.Op{history.W(0, 1), history.W(1, 1)}},
		{2, 0, 100, []history.Op{history.W(0, 2), history.W(1, 2)}},
		{3, 0, 100, []history.Op{history.R(0, 1), history.R(1, 2)}},
		{4, 0, 100, []history.Op{history.R(0, 2), history.R(1, 1)}},
	})
	base := history.MLinearizableBase.Build(h)
	if _, acyclic := ForcedClosure(h, base); acyclic {
		t.Fatal("forcing rules should derive the w1/w2 ordering conflict")
	}
	res, err := MLinearizable(h)
	if err != nil {
		t.Fatalf("MLinearizable: %v", err)
	}
	if res.Admissible {
		t.Fatal("history must not be m-linearizable")
	}
}

// TestForcedClosureSoundnessDifferential: whenever the forced closure of
// a random multi-object history is cyclic, the exact decider must reject
// too (the derived edges are consequences of legality, so a cycle proves
// inadmissibility — but NOT vice versa; by Theorem 2 no polynomial rule
// set can be complete for multi-object histories).
func TestForcedClosureSoundnessDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cyclicSeen := 0
	for trial := 0; trial < 300; trial++ {
		h := randomMultiObjectHistory(t, rng)
		base := history.MSequentialBase.Build(h)
		_, acyclic := ForcedClosure(h, base)
		if acyclic {
			continue
		}
		cyclicSeen++
		res, err := MSequentiallyConsistent(h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Admissible {
			t.Fatalf("trial %d: forced closure cyclic but history admissible — forcing rule unsound", trial)
		}
	}
	if cyclicSeen == 0 {
		t.Fatal("degenerate: no cyclic forced closures sampled")
	}
}

func randomMultiObjectHistory(t *testing.T, rng *rand.Rand) *history.History {
	t.Helper()
	reg := object.Sequential(2 + rng.Intn(2))
	b := history.NewBuilder(reg)
	n := 4 + rng.Intn(5)
	nextVal := object.Value(1)
	written := make(map[object.ID][]object.Value)
	for x := 0; x < reg.Len(); x++ {
		written[object.ID(x)] = []object.Value{object.Initial}
	}
	for i := 0; i < n; i++ {
		var ops []history.Op
		touched := map[object.ID]bool{}
		for j := 0; j < 1+rng.Intn(2); j++ {
			x := object.ID(rng.Intn(reg.Len()))
			if touched[x] {
				continue
			}
			touched[x] = true
			if rng.Intn(2) == 0 {
				ops = append(ops, history.W(x, nextVal))
				written[x] = append(written[x], nextVal)
				nextVal++
			} else {
				ops = append(ops, history.R(x, written[x][rng.Intn(len(written[x]))]))
			}
		}
		b.Add(i+1, 0, 1000, ops...)
	}
	h, err := b.Build()
	if err != nil {
		t.Fatalf("random multi-object history: %v", err)
	}
	return h
}

func TestForcedClosureSoundRejection(t *testing.T) {
	// When the forced closure IS cyclic, the exact decider must agree
	// (soundness of the forcing rules).
	reg := object.MustRegistry("x")
	h, _ := buildH(t, reg, []opSpec{
		{1, 0, 10, []history.Op{history.W(0, 1)}},
		{2, 20, 30, []history.Op{history.R(0, 0)}},
	})
	base := history.MLinearizableBase.Build(h)
	if _, acyclic := ForcedClosure(h, base); acyclic {
		t.Fatal("expected cyclic forced closure for stale read")
	}
	res, err := MLinearizable(h)
	if err != nil {
		t.Fatalf("MLinearizable: %v", err)
	}
	if res.Admissible {
		t.Fatal("exact decider disagrees with sound rejection")
	}
}

// TestSingleObjectDifferential cross-validates the polynomial checker
// against the exact decider on random single-object register histories.
func TestSingleObjectDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	agree, admissibleCount := 0, 0
	for trial := 0; trial < 400; trial++ {
		h := randomSingleObjectHistory(t, rng)
		fast, err := SingleObjectLinearizable(h)
		if err != nil {
			t.Fatalf("trial %d: fast: %v", trial, err)
		}
		exact, err := MLinearizable(h)
		if err != nil {
			t.Fatalf("trial %d: exact: %v", trial, err)
		}
		if fast.Admissible != exact.Admissible {
			t.Fatalf("trial %d: fast=%v exact=%v for history %v",
				trial, fast.Admissible, exact.Admissible, h.MOps()[1:])
		}
		agree++
		if exact.Admissible {
			admissibleCount++
		}
	}
	if admissibleCount == 0 || admissibleCount == agree {
		t.Fatalf("degenerate differential test: %d/%d admissible", admissibleCount, agree)
	}
}

// randomSingleObjectHistory builds a history of single-object reads and
// writes with randomized concurrency; reads observe the value of a random
// previously issued write (or the initial value), which yields a healthy
// mix of admissible and inadmissible histories.
func randomSingleObjectHistory(t *testing.T, rng *rand.Rand) *history.History {
	t.Helper()
	reg := object.MustRegistry("x")
	b := history.NewBuilder(reg)
	procs := 2 + rng.Intn(3)
	perProc := 1 + rng.Intn(3)
	writeVals := []object.Value{object.Initial}
	nextVal := object.Value(1)
	clock := make([]int64, procs)
	for p := 0; p < procs; p++ {
		clock[p] = int64(rng.Intn(5))
	}
	for i := 0; i < procs*perProc; i++ {
		p := rng.Intn(procs)
		inv := clock[p] + int64(rng.Intn(10))
		resp := inv + 1 + int64(rng.Intn(15))
		clock[p] = resp + 1
		if rng.Intn(2) == 0 {
			b.Add(p, inv, resp, history.W(0, nextVal))
			writeVals = append(writeVals, nextVal)
			nextVal++
		} else {
			v := writeVals[rng.Intn(len(writeVals))]
			b.Add(p, inv, resp, history.R(0, v))
		}
	}
	h, err := b.Build()
	if err != nil {
		t.Fatalf("random history: %v", err)
	}
	return h
}
