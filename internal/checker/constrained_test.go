package checker

import (
	"errors"
	"strings"
	"testing"

	"moc/internal/history"
	"moc/internal/object"
)

func TestConstraintString(t *testing.T) {
	if OO.String() != "OO" || WW.String() != "WW" || WO.String() != "WO" {
		t.Fatal("constraint names wrong")
	}
	if !strings.Contains(Constraint(9).String(), "9") {
		t.Fatal("unknown constraint should render its number")
	}
}

func TestRWClosureFigure2(t *testing.T) {
	fig, err := history.Figure2()
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	h := fig.H
	rel := history.MSequentialBase.Build(h).Union(fig.WW).TransitiveClosure()
	rw := RWClosure(h, rel)
	// interfere(H1, β, α, δ) with α ~>H δ forces β ~rw~> δ (D4.11).
	if !rw.Has(fig.Beta, fig.Delta) {
		t.Fatal("missing β ~rw~> δ")
	}
	// interfere(H1, α, init, γ): α reads x from init, γ writes x,
	// init ~>H γ, forcing α ~rw~> γ.
	if !rw.Has(fig.Alpha, fig.Gamma) {
		t.Fatal("missing α ~rw~> γ")
	}
}

func TestExtendedRelationAcyclicForLegalWW(t *testing.T) {
	fig, err := history.Figure2()
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	rel := history.MSequentialBase.Build(fig.H).Union(fig.WW).TransitiveClosure()
	ext := ExtendedRelation(fig.H, rel)
	if _, ok := ext.TopoOrder(); !ok {
		t.Fatal("Lemma 4 violated: ~H+ cyclic for a legal WW history")
	}
}

func TestAdmissibleUnderConstraintWW(t *testing.T) {
	fig, err := history.Figure2()
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	res, err := AdmissibleUnderConstraint(fig.H, fig.WW, WW)
	if err != nil {
		t.Fatalf("AdmissibleUnderConstraint: %v", err)
	}
	if !res.Legal || !res.Admissible {
		t.Fatalf("H1 under WW should be legal and admissible: %+v", res)
	}
	if ok, bad := res.Witness.ReplayLegal(fig.H); !ok {
		t.Fatalf("witness fails replay at %d", int(bad))
	}
	// Cross-check against the exact decider (Theorem 7 agreement).
	exact, err := Decide(fig.H, history.MSequentialBase, &Options{ExtraOrder: fig.WW})
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if exact.Admissible != res.Admissible {
		t.Fatal("Theorem 7 result disagrees with exact decider")
	}
}

func TestAdmissibleUnderConstraintDetectsIllegal(t *testing.T) {
	// β reads y from α, δ writes y, and the sync order interleaves δ
	// between them AND orders β w.r.t. δ so legality fails: make δ
	// precede β by process order. P1: α w(y)2; P1: δ w(y)3; P1: β r(y)2.
	reg := object.MustRegistry("y")
	b := history.NewBuilder(reg)
	alpha := b.Add(1, 0, 10, history.W(0, 2))
	delta := b.Add(1, 20, 30, history.W(0, 3))
	beta := b.Add(1, 40, 50, history.R(0, 2))
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sync := SyncFromUpdates(h, []history.ID{alpha, delta})
	res, err := AdmissibleUnderConstraint(h, sync, WW)
	if err != nil {
		t.Fatalf("AdmissibleUnderConstraint: %v", err)
	}
	if res.Legal || res.Admissible {
		t.Fatalf("stale read past an interposed write must be illegal: %+v", res)
	}
	if res.Violation[0] != beta || res.Violation[1] != alpha || res.Violation[2] != delta {
		t.Fatalf("Violation = %v, want (β, α, δ)", res.Violation)
	}
	// Agreement with the exact decider.
	exact, err := Decide(h, history.MSequentialBase, nil)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if exact.Admissible {
		t.Fatal("exact decider disagrees: history cannot be admissible")
	}
}

func TestAdmissibleUnderConstraintRejectsUnconstrained(t *testing.T) {
	// Two unordered updates: not under WW; the function must refuse.
	reg := object.MustRegistry("x", "y")
	b := history.NewBuilder(reg)
	b.Add(1, 0, 100, history.W(0, 1))
	b.Add(2, 0, 100, history.W(1, 2))
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := AdmissibleUnderConstraint(h, nil, WW); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("err = %v, want ErrConstraintViolated", err)
	}
}

func TestAdmissibleUnderConstraintOO(t *testing.T) {
	// Under OO every conflicting pair must be ordered; supply a sync that
	// orders queries against updates too.
	reg := object.MustRegistry("x")
	b := history.NewBuilder(reg)
	w1 := b.Add(1, 0, 10, history.W(0, 1))
	q := b.Add(2, 20, 30, history.R(0, 1))
	w2 := b.Add(1, 40, 50, history.W(0, 2))
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sync := history.NewRelation(h.Len())
	sync.Add(w1, q)
	sync.Add(q, w2)
	sync.Add(w1, w2)
	res, err := AdmissibleUnderConstraint(h, sync, OO)
	if err != nil {
		t.Fatalf("OO: %v", err)
	}
	if !res.Admissible {
		t.Fatal("OO-constrained legal history should be admissible")
	}
	// Without the query edges the history is not under OO.
	if _, err := AdmissibleUnderConstraint(h, SyncFromUpdates(h, []history.ID{w1, w2}), OO); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("err = %v, want ErrConstraintViolated", err)
	}
}

func TestAdmissibleUnderConstraintUnknownConstraint(t *testing.T) {
	reg := object.MustRegistry("x")
	b := history.NewBuilder(reg)
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := AdmissibleUnderConstraint(h, nil, Constraint(42)); err == nil {
		t.Fatal("unknown constraint accepted")
	}
}

func TestSyncFromUpdatesChainsFromInit(t *testing.T) {
	reg := object.MustRegistry("x")
	b := history.NewBuilder(reg)
	u1 := b.Add(1, 0, 10, history.W(0, 1))
	u2 := b.Add(2, 20, 30, history.W(0, 2))
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sync := SyncFromUpdates(h, []history.ID{u2, u1})
	if !sync.Has(history.InitID, u2) || !sync.Has(u2, u1) {
		t.Fatal("sync chain wrong")
	}
	if sync.Has(u1, u2) {
		t.Fatal("sync contains reverse edge")
	}
}
