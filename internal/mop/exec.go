package mop

import "moc/internal/history"

// ExecOptions carries the per-request execution knobs of the unified
// Exec entry point. The zero value requests the store's default
// behavior, which matches what the pre-options Execute signatures did.
type ExecOptions struct {
	// Level selects the consistency level for query m-operations:
	// history.LevelOne reads only the local replica, history.LevelQuorum
	// completes at a majority of replicas, history.LevelAll waits for
	// every replica (the store default). Updates ignore the level — they
	// always flow through the atomic broadcast's total order.
	Level history.Level
}

// Outcome is the completion of an asynchronously issued m-operation:
// the record captured at the issuing process, or the error that
// prevented execution.
type Outcome struct {
	Rec Record
	Err error
}
