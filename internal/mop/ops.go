package mop

import (
	"sort"

	"moc/internal/object"
)

// This file provides the declarative multi-object operations the paper
// motivates in Section 1, plus the read/write primitives. All are
// deterministic and serializable-by-value, so every replica applies them
// identically.

// ReadOp reads a single object; result is the object.Value read.
type ReadOp struct {
	X object.ID
}

// Run implements Procedure.
func (o ReadOp) Run(txn Txn) any { return txn.Read(o.X) }

// MayWrite implements Procedure.
func (o ReadOp) MayWrite() bool { return false }

// Footprint implements Procedure.
func (o ReadOp) Footprint() object.Set { return object.NewSet(o.X) }

// WriteOp writes a single object; result is nil.
type WriteOp struct {
	X object.ID
	V object.Value
}

// Run implements Procedure.
func (o WriteOp) Run(txn Txn) any { txn.Write(o.X, o.V); return nil }

// MayWrite implements Procedure.
func (o WriteOp) MayWrite() bool { return true }

// Footprint implements Procedure.
func (o WriteOp) Footprint() object.Set { return object.NewSet(o.X) }

// MultiRead atomically reads several objects; result is []object.Value in
// the order of Xs. It is the paper's atomic multi-object snapshot.
type MultiRead struct {
	Xs []object.ID
}

// Run implements Procedure.
func (o MultiRead) Run(txn Txn) any {
	out := make([]object.Value, len(o.Xs))
	for i, x := range o.Xs {
		out[i] = txn.Read(x)
	}
	return out
}

// MayWrite implements Procedure.
func (o MultiRead) MayWrite() bool { return false }

// Footprint implements Procedure.
func (o MultiRead) Footprint() object.Set { return object.NewSet(o.Xs...) }

// Sum atomically reads several objects and returns their sum — the
// paper's example of a multi-method over registers; result is
// object.Value.
type Sum struct {
	Xs []object.ID
}

// Run implements Procedure.
func (o Sum) Run(txn Txn) any {
	var total object.Value
	for _, x := range o.Xs {
		total += txn.Read(x)
	}
	return total
}

// MayWrite implements Procedure.
func (o Sum) MayWrite() bool { return false }

// Footprint implements Procedure.
func (o Sum) Footprint() object.Set { return object.NewSet(o.Xs...) }

// MAssign is the atomic m-register assignment of Section 1: writes every
// (object, value) pair atomically; result is nil. Assignments are applied
// in ascending object order for determinism.
type MAssign struct {
	Writes map[object.ID]object.Value
}

// Run implements Procedure.
func (o MAssign) Run(txn Txn) any {
	xs := make([]object.ID, 0, len(o.Writes))
	for x := range o.Writes {
		xs = append(xs, x)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	for _, x := range xs {
		txn.Write(x, o.Writes[x])
	}
	return nil
}

// MayWrite implements Procedure.
func (o MAssign) MayWrite() bool { return true }

// Footprint implements Procedure.
func (o MAssign) Footprint() object.Set {
	xs := make([]object.ID, 0, len(o.Writes))
	for x := range o.Writes {
		xs = append(xs, x)
	}
	return object.NewSet(xs...)
}

// CAS is single-object compare-and-swap; result is bool (whether the swap
// happened).
type CAS struct {
	X        object.ID
	Old, New object.Value
}

// Run implements Procedure.
func (o CAS) Run(txn Txn) any {
	if txn.Read(o.X) != o.Old {
		return false
	}
	txn.Write(o.X, o.New)
	return true
}

// MayWrite implements Procedure.
func (o CAS) MayWrite() bool { return true }

// Footprint implements Procedure.
func (o CAS) Footprint() object.Set { return object.NewSet(o.X) }

// DCAS is the double compare-and-swap of Section 1 (footnote 1): it
// "atomically updates locations addr1 and addr2 to values new1 and new2
// respectively if addr1 holds value old1 and addr2 holds old2 when the
// operation is invoked"; result is bool.
type DCAS struct {
	X1, X2     object.ID
	Old1, Old2 object.Value
	New1, New2 object.Value
}

// Run implements Procedure.
func (o DCAS) Run(txn Txn) any {
	if txn.Read(o.X1) != o.Old1 || txn.Read(o.X2) != o.Old2 {
		return false
	}
	txn.Write(o.X1, o.New1)
	txn.Write(o.X2, o.New2)
	return true
}

// MayWrite implements Procedure.
func (o DCAS) MayWrite() bool { return true }

// Footprint implements Procedure.
func (o DCAS) Footprint() object.Set { return object.NewSet(o.X1, o.X2) }

// Transfer is the database-flavoured motivation of Section 1: atomically
// move Amount from From to To if funds suffice; result is bool.
type Transfer struct {
	From, To object.ID
	Amount   object.Value
}

// Run implements Procedure.
func (o Transfer) Run(txn Txn) any {
	bal := txn.Read(o.From)
	if bal < o.Amount {
		return false
	}
	txn.Write(o.From, bal-o.Amount)
	txn.Write(o.To, txn.Read(o.To)+o.Amount)
	return true
}

// MayWrite implements Procedure.
func (o Transfer) MayWrite() bool { return true }

// Footprint implements Procedure.
func (o Transfer) Footprint() object.Set { return object.NewSet(o.From, o.To) }

// Func wraps an arbitrary deterministic function as a Procedure, with an
// explicitly declared footprint and write capability.
type Func struct {
	Objects object.Set
	Writes  bool
	Body    func(txn Txn) any
}

// Run implements Procedure.
func (o Func) Run(txn Txn) any { return o.Body(txn) }

// MayWrite implements Procedure.
func (o Func) MayWrite() bool { return o.Writes }

// Footprint implements Procedure.
func (o Func) Footprint() object.Set { return o.Objects }

// Compile-time interface checks.
var (
	_ Procedure = ReadOp{}
	_ Procedure = WriteOp{}
	_ Procedure = MultiRead{}
	_ Procedure = Sum{}
	_ Procedure = MAssign{}
	_ Procedure = CAS{}
	_ Procedure = DCAS{}
	_ Procedure = Transfer{}
	_ Procedure = Func{}
)

// PayloadBytes estimates the wire size of shipping a procedure: a nominal
// header plus one slot per footprint object. Used for traffic accounting.
func PayloadBytes(p Procedure) int {
	return 16 + 16*p.Footprint().Len()
}
