// Package mop defines the executable form of m-operations: deterministic
// procedures of reads and writes over shared objects (Section 2.1:
// "Intuitively, an m-operation is a 'deterministic procedure' of read and
// write operations on shared objects").
//
// A Procedure declares, ahead of execution, a conservative footprint (the
// objects it may touch) and whether it may write. The Section 5 protocols
// use MayWrite for the conservative update classification ("We take a
// conservative approach and treat an m-operation as an update m-operation
// if it can potentially write to some object") and the footprint for the
// relevant-objects-only query optimization noted at the end of
// Section 5.2.
//
// The package also provides the declarative multi-object operations the
// paper motivates: double compare-and-swap (DCAS), atomic m-register
// assignment, multi-object reads, and read-modify-write transfers.
package mop

import (
	"errors"
	"fmt"

	"moc/internal/history"
	"moc/internal/object"
)

// Txn is the interface a Procedure runs against: atomic access to the
// executing process's copy of the shared objects.
type Txn interface {
	// Read returns the current value of x.
	Read(x object.ID) object.Value
	// Write sets x to v.
	Write(x object.ID, v object.Value)
}

// Procedure is a deterministic m-operation. Run must be a pure function
// of the values it reads: every process applies update procedures to its
// own replica and all replicas must transition identically.
type Procedure interface {
	// Run executes the m-operation and returns its result (the res
	// output parameter of the paper's α(arg, res)).
	Run(txn Txn) any
	// MayWrite reports whether the procedure can potentially write to
	// some object. Procedures returning false must never call Write.
	MayWrite() bool
	// Footprint is a superset of the objects Run may access.
	Footprint() object.Set
}

// Recorder executes procedures against a value slice while capturing the
// operation sequence in the paper's r(x)v / w(x)v form. It enforces the
// Procedure contract: accesses outside the footprint and writes by
// non-updates are recorded as violations.
type Recorder struct {
	values    []object.Value
	footprint object.Set
	mayWrite  bool
	ops       []history.Op
	// opsBuf backs ops for the common short procedures so recording a
	// handful of accesses costs no extra allocation on the apply path.
	opsBuf [4]history.Op
	err    error
}

var _ Txn = (*Recorder)(nil)

// Contract violations detected by the Recorder.
var (
	ErrOutsideFootprint = errors.New("mop: access outside declared footprint")
	ErrQueryWrote       = errors.New("mop: procedure with MayWrite()==false performed a write")
)

// NewRecorder wraps values (mutated in place) for executing p.
func NewRecorder(values []object.Value, p Procedure) *Recorder {
	r := &Recorder{values: values, footprint: p.Footprint(), mayWrite: p.MayWrite()}
	r.ops = r.opsBuf[:0]
	return r
}

// Read implements Txn.
func (r *Recorder) Read(x object.ID) object.Value {
	if !r.check(x) {
		return 0
	}
	v := r.values[x]
	r.ops = append(r.ops, history.R(x, v))
	return v
}

// Write implements Txn.
func (r *Recorder) Write(x object.ID, v object.Value) {
	if !r.check(x) {
		return
	}
	if !r.mayWrite {
		if r.err == nil {
			r.err = fmt.Errorf("%w: object %d", ErrQueryWrote, int(x))
		}
		return
	}
	r.values[x] = v
	r.ops = append(r.ops, history.W(x, v))
}

func (r *Recorder) check(x object.ID) bool {
	if x < 0 || int(x) >= len(r.values) {
		if r.err == nil {
			r.err = fmt.Errorf("mop: object %d out of range", int(x))
		}
		return false
	}
	if !r.footprint.Contains(x) {
		if r.err == nil {
			r.err = fmt.Errorf("%w: object %d", ErrOutsideFootprint, int(x))
		}
		return false
	}
	return r.err == nil
}

// Ops returns the captured operation sequence.
func (r *Recorder) Ops() []history.Op { return r.ops }

// WroteAny reports whether any write was recorded.
func (r *Recorder) WroteAny() bool {
	for _, op := range r.ops {
		if op.Kind == history.Write {
			return true
		}
	}
	return false
}

// Written returns the set of objects written.
func (r *Recorder) Written() object.Set {
	var buf [8]object.ID
	ids := buf[:0]
	for _, op := range r.ops {
		if op.Kind == history.Write {
			ids = append(ids, op.Obj)
		}
	}
	// NewSet copies, so handing it the stack buffer is safe.
	return object.NewSet(ids...)
}

// Err reports the first contract violation, if any.
func (r *Recorder) Err() error { return r.err }
