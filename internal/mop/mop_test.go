package mop

import (
	"errors"
	"testing"

	"moc/internal/history"
	"moc/internal/object"
)

func run(t *testing.T, values []object.Value, p Procedure) (*Recorder, any) {
	t.Helper()
	r := NewRecorder(values, p)
	res := p.Run(r)
	return r, res
}

func TestReadOp(t *testing.T) {
	vals := []object.Value{7, 8}
	r, res := run(t, vals, ReadOp{X: 1})
	if r.Err() != nil {
		t.Fatalf("Err: %v", r.Err())
	}
	if res.(object.Value) != 8 {
		t.Fatalf("result = %v", res)
	}
	ops := r.Ops()
	if len(ops) != 1 || ops[0] != history.R(1, 8) {
		t.Fatalf("ops = %v", ops)
	}
	if r.WroteAny() {
		t.Fatal("read reported a write")
	}
}

func TestWriteOp(t *testing.T) {
	vals := []object.Value{0}
	r, _ := run(t, vals, WriteOp{X: 0, V: 42})
	if r.Err() != nil {
		t.Fatalf("Err: %v", r.Err())
	}
	if vals[0] != 42 {
		t.Fatalf("value = %d", vals[0])
	}
	if !r.Written().Equal(object.NewSet(0)) {
		t.Fatalf("Written = %v", r.Written())
	}
}

func TestMultiReadAndSum(t *testing.T) {
	vals := []object.Value{1, 2, 3}
	_, res := run(t, vals, MultiRead{Xs: []object.ID{0, 2}})
	got := res.([]object.Value)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("MultiRead = %v", got)
	}
	_, sum := run(t, vals, Sum{Xs: []object.ID{0, 1, 2}})
	if sum.(object.Value) != 6 {
		t.Fatalf("Sum = %v", sum)
	}
}

func TestMAssignDeterministicOrder(t *testing.T) {
	vals := make([]object.Value, 4)
	p := MAssign{Writes: map[object.ID]object.Value{3: 30, 0: 10, 2: 20}}
	r, _ := run(t, vals, p)
	if r.Err() != nil {
		t.Fatalf("Err: %v", r.Err())
	}
	ops := r.Ops()
	if len(ops) != 3 {
		t.Fatalf("ops = %v", ops)
	}
	// Ascending object order regardless of map iteration.
	if ops[0].Obj != 0 || ops[1].Obj != 2 || ops[2].Obj != 3 {
		t.Fatalf("write order = %v", ops)
	}
	if !p.Footprint().Equal(object.NewSet(0, 2, 3)) {
		t.Fatalf("footprint = %v", p.Footprint())
	}
}

func TestCASSemantics(t *testing.T) {
	vals := []object.Value{5}
	_, ok := run(t, vals, CAS{X: 0, Old: 5, New: 6})
	if !ok.(bool) || vals[0] != 6 {
		t.Fatalf("successful CAS: ok=%v vals=%v", ok, vals)
	}
	r, ok2 := run(t, vals, CAS{X: 0, Old: 5, New: 7})
	if ok2.(bool) || vals[0] != 6 {
		t.Fatalf("failed CAS mutated state: ok=%v vals=%v", ok2, vals)
	}
	if r.WroteAny() {
		t.Fatal("failed CAS recorded a write")
	}
}

func TestDCASSemantics(t *testing.T) {
	vals := []object.Value{1, 2}
	_, ok := run(t, vals, DCAS{X1: 0, X2: 1, Old1: 1, Old2: 2, New1: 10, New2: 20})
	if !ok.(bool) || vals[0] != 10 || vals[1] != 20 {
		t.Fatalf("successful DCAS: %v %v", ok, vals)
	}
	_, ok2 := run(t, vals, DCAS{X1: 0, X2: 1, Old1: 10, Old2: 99, New1: 0, New2: 0})
	if ok2.(bool) || vals[0] != 10 || vals[1] != 20 {
		t.Fatalf("failed DCAS mutated state: %v %v", ok2, vals)
	}
}

func TestTransferSemantics(t *testing.T) {
	vals := []object.Value{100, 0}
	_, ok := run(t, vals, Transfer{From: 0, To: 1, Amount: 30})
	if !ok.(bool) || vals[0] != 70 || vals[1] != 30 {
		t.Fatalf("transfer: %v %v", ok, vals)
	}
	_, ok2 := run(t, vals, Transfer{From: 0, To: 1, Amount: 1000})
	if ok2.(bool) || vals[0] != 70 {
		t.Fatalf("overdraft allowed: %v %v", ok2, vals)
	}
	if vals[0]+vals[1] != 100 {
		t.Fatalf("conservation violated: %v", vals)
	}
}

func TestFuncProcedure(t *testing.T) {
	vals := []object.Value{3, 4}
	p := Func{
		Objects: object.NewSet(0, 1),
		Writes:  true,
		Body: func(txn Txn) any {
			a, b := txn.Read(0), txn.Read(1)
			txn.Write(0, b)
			txn.Write(1, a)
			return a + b
		},
	}
	r, res := run(t, vals, p)
	if r.Err() != nil {
		t.Fatalf("Err: %v", r.Err())
	}
	if res.(object.Value) != 7 || vals[0] != 4 || vals[1] != 3 {
		t.Fatalf("swap result: %v %v", res, vals)
	}
}

func TestRecorderRejectsFootprintEscape(t *testing.T) {
	vals := []object.Value{0, 0}
	p := Func{
		Objects: object.NewSet(0),
		Writes:  true,
		Body: func(txn Txn) any {
			txn.Write(1, 5) // outside footprint
			return nil
		},
	}
	r, _ := run(t, vals, p)
	if !errors.Is(r.Err(), ErrOutsideFootprint) {
		t.Fatalf("Err = %v, want ErrOutsideFootprint", r.Err())
	}
	if vals[1] != 0 {
		t.Fatal("out-of-footprint write applied")
	}
}

func TestRecorderRejectsQueryWrite(t *testing.T) {
	vals := []object.Value{0}
	p := Func{
		Objects: object.NewSet(0),
		Writes:  false,
		Body: func(txn Txn) any {
			txn.Write(0, 1)
			return nil
		},
	}
	r, _ := run(t, vals, p)
	if !errors.Is(r.Err(), ErrQueryWrote) {
		t.Fatalf("Err = %v, want ErrQueryWrote", r.Err())
	}
	if vals[0] != 0 {
		t.Fatal("query write applied")
	}
}

func TestRecorderOutOfRange(t *testing.T) {
	vals := []object.Value{0}
	p := Func{
		Objects: object.NewSet(5),
		Writes:  false,
		Body:    func(txn Txn) any { return txn.Read(5) },
	}
	r, _ := run(t, vals, p)
	if r.Err() == nil {
		t.Fatal("out-of-range access accepted")
	}
}

func TestRecorderStopsAfterError(t *testing.T) {
	vals := []object.Value{1, 2}
	p := Func{
		Objects: object.NewSet(0),
		Writes:  true,
		Body: func(txn Txn) any {
			txn.Write(1, 9) // violation
			txn.Write(0, 7) // must be suppressed after the violation
			return nil
		},
	}
	r, _ := run(t, vals, p)
	if r.Err() == nil {
		t.Fatal("violation not detected")
	}
	if vals[0] != 1 {
		t.Fatal("write after violation applied — replicas would diverge nondeterministically")
	}
}

func TestMayWriteDeclarations(t *testing.T) {
	updates := []Procedure{
		WriteOp{}, MAssign{}, CAS{}, DCAS{}, Transfer{},
	}
	queries := []Procedure{
		ReadOp{}, MultiRead{}, Sum{},
	}
	for _, p := range updates {
		if !p.MayWrite() {
			t.Errorf("%T must declare MayWrite", p)
		}
	}
	for _, p := range queries {
		if p.MayWrite() {
			t.Errorf("%T must not declare MayWrite", p)
		}
	}
}

func TestPayloadBytesScalesWithFootprint(t *testing.T) {
	small := PayloadBytes(ReadOp{X: 0})
	large := PayloadBytes(MultiRead{Xs: []object.ID{0, 1, 2, 3}})
	if large <= small {
		t.Fatalf("payload bytes: small=%d large=%d", small, large)
	}
}
