package mop

import "encoding/gob"

// The declarative procedures are serializable-by-value, so they can
// cross a real wire inside protocol payloads (internal/transport's gob
// codec). Func is deliberately absent: a closure cannot be marshalled,
// so Func-based m-operations only run over the in-process simulated
// network.
func init() {
	gob.Register(ReadOp{})
	gob.Register(WriteOp{})
	gob.Register(MultiRead{})
	gob.Register(Sum{})
	gob.Register(MAssign{})
	gob.Register(CAS{})
	gob.Register(DCAS{})
	gob.Register(Transfer{})
}
