package mop

import (
	"sort"

	"moc/internal/object"
	"moc/internal/wire"
)

// The declarative procedures are serializable-by-value, so they can
// cross a real wire inside protocol payloads; register them with the
// wire registry under their stable tags (the registry also performs the
// gob registration for the `-codec=gob` fallback). Func is deliberately
// absent: a closure cannot be marshalled, so Func-based m-operations
// only run over the in-process simulated network.
func init() {
	wire.Register(wire.TagReadOp, ReadOp{})
	wire.Register(wire.TagWriteOp, WriteOp{})
	wire.Register(wire.TagMultiRead, MultiRead{})
	wire.Register(wire.TagSum, Sum{})
	wire.Register(wire.TagMAssign, MAssign{})
	wire.Register(wire.TagCAS, CAS{})
	wire.Register(wire.TagDCAS, DCAS{})
	wire.Register(wire.TagTransfer, Transfer{})
}

func appendIDs(b []byte, ids []object.ID) []byte {
	b = wire.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = wire.AppendVarint(b, int64(id))
	}
	return b
}

func decodeIDs(d *wire.Decoder) []object.ID {
	n := d.ArrayLen(1)
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]object.ID, n)
	for i := range out {
		out[i] = object.ID(d.Varint())
	}
	return out
}

// MarshalWire implements wire.Marshaler.
func (o ReadOp) MarshalWire(b []byte) ([]byte, error) {
	return wire.AppendVarint(b, int64(o.X)), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (o *ReadOp) UnmarshalWire(d *wire.Decoder) error {
	o.X = object.ID(d.Varint())
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (o WriteOp) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, int64(o.X))
	return wire.AppendVarint(b, o.V), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (o *WriteOp) UnmarshalWire(d *wire.Decoder) error {
	o.X = object.ID(d.Varint())
	o.V = d.Varint()
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (o MultiRead) MarshalWire(b []byte) ([]byte, error) {
	return appendIDs(b, o.Xs), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (o *MultiRead) UnmarshalWire(d *wire.Decoder) error {
	o.Xs = decodeIDs(d)
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (o Sum) MarshalWire(b []byte) ([]byte, error) {
	return appendIDs(b, o.Xs), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (o *Sum) UnmarshalWire(d *wire.Decoder) error {
	o.Xs = decodeIDs(d)
	return d.Err()
}

// MarshalWire implements wire.Marshaler. Entries are encoded in
// ascending object order so identical assignments produce identical
// bytes (map iteration order must not leak onto the wire).
func (o MAssign) MarshalWire(b []byte) ([]byte, error) {
	xs := make([]object.ID, 0, len(o.Writes))
	for x := range o.Writes {
		xs = append(xs, x)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	b = wire.AppendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = wire.AppendVarint(b, int64(x))
		b = wire.AppendVarint(b, o.Writes[x])
	}
	return b, nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (o *MAssign) UnmarshalWire(d *wire.Decoder) error {
	n := d.ArrayLen(2)
	if d.Err() != nil || n == 0 {
		return d.Err()
	}
	o.Writes = make(map[object.ID]object.Value, n)
	for i := 0; i < n; i++ {
		x := object.ID(d.Varint())
		o.Writes[x] = d.Varint()
	}
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (o CAS) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, int64(o.X))
	b = wire.AppendVarint(b, o.Old)
	return wire.AppendVarint(b, o.New), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (o *CAS) UnmarshalWire(d *wire.Decoder) error {
	o.X = object.ID(d.Varint())
	o.Old = d.Varint()
	o.New = d.Varint()
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (o DCAS) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, int64(o.X1))
	b = wire.AppendVarint(b, int64(o.X2))
	b = wire.AppendVarint(b, o.Old1)
	b = wire.AppendVarint(b, o.Old2)
	b = wire.AppendVarint(b, o.New1)
	return wire.AppendVarint(b, o.New2), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (o *DCAS) UnmarshalWire(d *wire.Decoder) error {
	o.X1 = object.ID(d.Varint())
	o.X2 = object.ID(d.Varint())
	o.Old1 = d.Varint()
	o.Old2 = d.Varint()
	o.New1 = d.Varint()
	o.New2 = d.Varint()
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (o Transfer) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, int64(o.From))
	b = wire.AppendVarint(b, int64(o.To))
	return wire.AppendVarint(b, o.Amount), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (o *Transfer) UnmarshalWire(d *wire.Decoder) error {
	o.From = object.ID(d.Varint())
	o.To = object.ID(d.Varint())
	o.Amount = d.Varint()
	return d.Err()
}
