package mop

import "moc/internal/wire"

// The declarative procedures are serializable-by-value, so they can
// cross a real wire inside protocol payloads (internal/transport's gob
// codec); register them with the wire registry (which performs the gob
// registration). Func is deliberately absent: a closure cannot be
// marshalled, so Func-based m-operations only run over the in-process
// simulated network.
func init() {
	wire.Register(ReadOp{})
	wire.Register(WriteOp{})
	wire.Register(MultiRead{})
	wire.Register(Sum{})
	wire.Register(MAssign{})
	wire.Register(CAS{})
	wire.Register(DCAS{})
	wire.Register(Transfer{})
}
