package mop

import (
	"moc/internal/history"
	"moc/internal/object"
	"moc/internal/timestamp"
)

// Record is what a protocol captures about one executed m-operation at
// its issuing process: the operation sequence actually performed, the
// version-vector timestamps at the start and finish events (Section 5's
// ts(start(α)) and ts(finish(α))), the real-time invocation and response
// instants, and — for updates — the atomic-broadcast delivery sequence
// number, which totally orders all update m-operations (the ~ww order).
//
// Records are the raw material the trace recorder assembles into a
// history.History: the reads-from relation is derived from the
// timestamps exactly as in D5.1/D5.6 — α reads x from the m-operation
// that produced version ts(start(α))[x] of x.
type Record struct {
	Proc   int
	Update bool
	// Seq is the total-order position for updates synchronized by atomic
	// broadcast; -1 for queries and for protocols that synchronize per
	// object instead of globally.
	Seq     int64
	Ops     []history.Op
	TSStart timestamp.TS
	TSEnd   timestamp.TS
	// Footprint is the set of objects for which TSStart/TSEnd carry
	// meaningful versions. For the Section 5 protocols the local copy is
	// a full consistent snapshot, so the footprint is all objects; the
	// object-locking protocol only snapshots the objects it locked.
	Footprint object.Set
	Inv       int64 // nanoseconds since run start
	Resp      int64
	Result    any

	// Level is the certified consistency level the protocol delivered
	// for this m-operation (history.LevelDefault for protocols that
	// predate levels). Updates are always history.LevelAll: the atomic
	// broadcast gives them the full total-order guarantee.
	Level history.Level
	// Responders lists, in ascending order, the processes whose replica
	// state this m-operation observed: the issuer for local reads, the
	// replicas that answered the query round for quorum/all reads.
	// Nil for updates and for protocols that predate levels.
	Responders []int
	// IsConsistent reports whether the requested level's contract was
	// met: all n replicas answered for ALL, a majority for QUORUM. A
	// force-completed (timed-out) query below its requirement records
	// false and is certified at the weaker level it actually achieved.
	IsConsistent bool

	// SourceTags, when non-nil, names the writer of every externally
	// read object directly. Protocols whose replicas may apply
	// concurrent updates in different orders (the causal protocol) have
	// no per-object total version order, so the version-vector scheme of
	// D5.1 does not apply; they tag writes instead.
	SourceTags map[object.ID]WriteTag
	// WriteTags, when non-nil, names the tags this record's writes
	// established (paired with SourceTags).
	WriteTags map[object.ID]WriteTag
}

// WriteTag identifies a write by its issuing process and that process's
// per-update sequence number.
type WriteTag struct {
	Proc int
	Seq  int64
}

// InitTag is the tag of the imaginary initial m-operation's writes.
var InitTag = WriteTag{Proc: -1, Seq: 0}

// VersionedWrites returns, per object the record wrote, the version it
// established (TSEnd's entry for that object). This is the (object,
// version) → writer mapping material used to derive reads-from.
func (r Record) VersionedWrites() map[object.ID]int64 {
	out := make(map[object.ID]int64)
	seen := make(map[object.ID]bool)
	for _, op := range r.Ops {
		if op.Kind == history.Write && !seen[op.Obj] {
			seen[op.Obj] = true
			out[op.Obj] = r.TSEnd.Get(op.Obj)
		}
	}
	return out
}
