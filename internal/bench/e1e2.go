package bench

import (
	"fmt"
	"io"

	"moc/internal/checker"
	"moc/internal/history"
)

// runE1 regenerates Figure 1: the example history with m-operations
// α, β, δ, η, μ, and every relation the paper reads off it.
func runE1(w io.Writer, _ bool) error {
	fig, err := history.Figure1()
	if err != nil {
		return err
	}
	h := fig.H

	fmt.Fprintln(w, "m-operations (paper-figure timeline):")
	if err := h.Timeline(w); err != nil {
		return err
	}

	t := newTable(w)
	t.row("relation", "pair", "holds")
	check := func(name, pair string, got, want bool) {
		status := "ok"
		if got != want {
			status = "MISMATCH"
		}
		t.row(name, pair, fmt.Sprintf("%v (%s)", got, status))
	}
	check("process order", "alpha ~P~> beta", h.ProcessOrderRel(fig.Alpha, fig.Beta), true)
	check("reads-from", "alpha ~rf~> delta", h.ReadsFromRel(fig.Alpha, fig.Delta), true)
	check("reads-from", "eta ~rf~> delta", h.ReadsFromRel(fig.Eta, fig.Delta), true)
	check("real-time", "alpha ~t~> mu", h.RealTimeRel(fig.Alpha, fig.Mu), true)
	check("real-time", "eta ~t~> beta", h.RealTimeRel(fig.Eta, fig.Beta), true)
	check("object order", "eta ~X~> beta", h.ObjectOrderRel(fig.Eta, fig.Beta), true)
	check("conflict (D4.1)", "alpha vs eta", h.MOp(fig.Alpha).Conflicts(h.MOp(fig.Eta)), true)
	check("interfere (D4.2)", "(delta, eta, alpha)?", h.Interfere(fig.Delta, fig.Eta, fig.Alpha), true)
	t.flush()

	res, err := checker.MLinearizable(h)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "m-linearizable: %v; witness: %s\n", res.Admissible, res.Witness)
	return nil
}

// runE2 regenerates Figures 2 and 3: the history H1 under the
// WW-constraint, the nonlegal naive extension S1, and the ~rw repair.
func runE2(w io.Writer, _ bool) error {
	fig, err := history.Figure2()
	if err != nil {
		return err
	}
	h := fig.H

	fmt.Fprintln(w, "history H1 (Figure 2):")
	for _, m := range h.MOps()[1:] {
		fmt.Fprintf(w, "  %s\n", m)
	}
	fmt.Fprintln(w, "WW synchronization: alpha -> gamma -> delta")

	legal, bad := fig.S1.ReplayLegal(h)
	fmt.Fprintf(w, "naive extension S1 = %s: legal=%v (fails at m-operation %d — Figure 3)\n",
		fig.S1, legal, int(bad))

	rel := history.MSequentialBase.Build(h).Union(fig.WW).TransitiveClosure()
	rw := checker.RWClosure(h, rel)
	fmt.Fprintln(w, "logical read-write precedence ~rw (D4.11):")
	for from := 0; from < rw.Len(); from++ {
		rw.Successors(history.ID(from), func(to history.ID) {
			fmt.Fprintf(w, "  %s ~rw~> %s\n", label(h, history.ID(from)), label(h, to))
		})
	}

	res, err := checker.AdmissibleUnderConstraint(h, fig.WW, checker.WW)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Theorem 7 check: under WW, legal=%v => admissible=%v; witness: %s\n",
		res.Legal, res.Admissible, res.Witness)
	return nil
}

func label(h *history.History, id history.ID) string {
	m := h.MOp(id)
	if m == nil {
		return fmt.Sprintf("m%d", int(id))
	}
	if m.Label != "" {
		return m.Label
	}
	return fmt.Sprintf("m%d", int(id))
}
