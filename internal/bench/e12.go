package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"moc/internal/checker"
	"moc/internal/core"
	"moc/internal/history"
	"moc/internal/object"
)

// runE12 measures the consistency hierarchy empirically: the same racing
// workload is run on each protocol, and every recorded history is
// checked against all three conditions with the exact deciders. The
// expected inclusion chain (Section 2.3, plus the causal extension):
//
//	m-linearizable ⟹ m-sequentially consistent ⟹ m-causal
//
// and each protocol should achieve exactly its level: the causal
// protocol passes m-causal always but m-SC only sometimes (concurrent
// updates observed in different orders); the m-SC protocol passes m-SC
// always but m-lin only sometimes (stale local queries); the m-lin
// protocols pass everything. Cost falls as guarantees weaken: causal
// updates are local (no round trip at all).
func runE12(w io.Writer, quick bool) error {
	trials := 30
	if quick {
		trials = 8
	}
	type row struct {
		cons                  core.Consistency
		causalOK, scOK, linOK int
		updateMean            time.Duration
	}
	consistencies := []core.Consistency{
		core.MCausal, core.MSequential, core.MLinearizable,
	}
	var rows []row
	for _, cons := range consistencies {
		r := row{cons: cons}
		var updTotal time.Duration
		var updCount int
		for trial := 0; trial < trials; trial++ {
			h, updDur, n, err := runRacingTrial(cons, int64(trial))
			if err != nil {
				return err
			}
			updTotal += updDur
			updCount += n

			causal, err := checker.MCausallyConsistent(h)
			if err != nil {
				return err
			}
			sc, err := checker.MSequentiallyConsistent(h)
			if err != nil {
				return err
			}
			lin, err := checker.MLinearizable(h)
			if err != nil {
				return err
			}
			if sc.Admissible && !causal.Consistent {
				return fmt.Errorf("bench: hierarchy violated: m-SC but not m-causal")
			}
			if lin.Admissible && !sc.Admissible {
				return fmt.Errorf("bench: hierarchy violated: m-lin but not m-SC")
			}
			if causal.Consistent {
				r.causalOK++
			}
			if sc.Admissible {
				r.scOK++
			}
			if lin.Admissible {
				r.linOK++
			}
		}
		if updCount > 0 {
			r.updateMean = updTotal / time.Duration(updCount)
		}
		rows = append(rows, r)
	}

	t := newTable(w)
	t.row("protocol", "m-causal", "m-SC", "m-lin", "update mean")
	for _, r := range rows {
		t.row(r.cons,
			fmt.Sprintf("%d/%d", r.causalOK, trials),
			fmt.Sprintf("%d/%d", r.scOK, trials),
			fmt.Sprintf("%d/%d", r.linOK, trials),
			r.updateMean.Round(time.Microsecond))
	}
	t.flush()
	if rows[0].causalOK != trials || rows[1].scOK != trials || rows[2].linOK != trials {
		return fmt.Errorf("bench: a protocol failed its own guarantee")
	}
	fmt.Fprintln(w, "expected shape: each protocol scores 100% at its own level; the columns to")
	fmt.Fprintln(w, "its right drop below 100%; update latency falls as guarantees weaken")
	return nil
}

// runRacingTrial runs the E12 racing scenario: two concurrent writers of
// one object plus two polling readers — the scenario that separates all
// three conditions. Returns the history, total update latency and update
// count.
func runRacingTrial(cons core.Consistency, seed int64) (h *history.History, updDur time.Duration, updCount int, err error) {
	s, err := core.New(core.Config{
		Procs: 4, Objects: []string{"x"}, Consistency: cons,
		Seed: seed, MaxDelay: 10 * time.Millisecond,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	defer s.Close()

	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for wr := 0; wr < 2; wr++ {
		p, perr := s.Process(wr)
		if perr != nil {
			return nil, 0, 0, perr
		}
		wg.Add(1)
		go func(wr int, p *core.Process) {
			defer wg.Done()
			t0 := time.Now()
			if err := p.Write(object.ID(0), object.Value(wr+1)); err != nil {
				errCh <- err
				return
			}
			mu.Lock()
			updDur += time.Since(t0)
			updCount++
			mu.Unlock()
		}(wr, p)
	}
	for r := 2; r < 4; r++ {
		p, perr := s.Process(r)
		if perr != nil {
			return nil, 0, 0, perr
		}
		wg.Add(1)
		go func(p *core.Process) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if _, err := p.Read(0); err != nil {
					errCh <- err
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(p)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, 0, 0, err
	default:
	}
	hist, err := s.History()
	if err != nil {
		return nil, 0, 0, err
	}
	return hist, updDur, updCount, nil
}
