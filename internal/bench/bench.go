// Package bench is the experiment harness: one runner per experiment of
// DESIGN.md's per-experiment index (E1–E10), each regenerating a figure
// or claim of Mittal & Garg (1998) as a printed table or trace. The
// runners are shared by cmd/mocbench and the root bench_test.go.
package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the experiment identifier (e.g. "E3").
	ID string
	// Title summarizes what is reproduced.
	Title string
	// Run executes the experiment, writing its table/trace to w. When
	// quick is true, sizes are reduced (used by unit tests and -short).
	Run func(w io.Writer, quick bool) error
	// JSON, when non-nil, runs the experiment's measurement and returns
	// a machine-readable report (mocbench -json). Experiment/Title/Quick
	// are filled in by RunJSON.
	JSON func(quick bool) (Report, error)
}

// Experiments returns all experiments in ID order.
func Experiments() []Experiment {
	exps := []Experiment{
		{ID: "E1", Title: "Figure 1: example history and its relations", Run: runE1},
		{ID: "E2", Title: "Figures 2-3: WW-constraint, nonlegal extension, ~rw repair", Run: runE2},
		{ID: "E3", Title: "Theorems 1-2: exact checking is exponential; Theorem 7 and Misra are polynomial", Run: runE3},
		{ID: "E4", Title: "Theorem 7: admissible iff legal under the WW-constraint (randomized)", Run: runE4},
		{ID: "E5", Title: "Figures 4-5: m-sequential-consistency protocol executions", Run: runE5},
		{ID: "E6", Title: "Figures 6-7: m-linearizability protocol executions", Run: runE6},
		{ID: "E7", Title: "Protocol cost model: query/update latency and throughput", Run: runE7, JSON: e7JSON},
		{ID: "E8", Title: "Theorem 2: schedule <-> history reduction (randomized)", Run: runE8},
		{ID: "E9", Title: "Section 5.2: relevant-objects-only query payloads", Run: runE9},
		{ID: "E10", Title: "Section 1: multi-object operations vs an aggregate object", Run: runE10},
		{ID: "E11", Title: "Section 4: OO-constraint locking protocol vs the broadcast protocols", Run: runE11},
		{ID: "E12", Title: "Consistency hierarchy: m-lin => m-SC => m-causal, protocol by protocol", Run: runE12},
		{ID: "E13", Title: "Availability under crash-stop failures: bounded queries with 0, 1, f crashed", Run: runE13, JSON: e13JSON},
		{ID: "E14", Title: "Protocol cost model over real loopback TCP (internal/transport)", Run: runE14, JSON: e14JSON},
		{ID: "E15", Title: "Batched, pipelined updates: throughput and latency vs batch size", Run: runE15, JSON: e15JSON},
		{ID: "E16", Title: "Sharded object space: ops/s vs shard count under a fixed per-coordinator egress budget", Run: runE16, JSON: e16JSON},
		{ID: "E17", Title: "Binary wire codec vs gob: TCP update throughput and send-path allocations", Run: runE17, JSON: e17JSON},
		{ID: "E18", Title: "Availability under chaos: socket faults, SIGKILL, and checkpoint rejoin over loopback TCP", Run: runE18, JSON: e18JSON},
		{ID: "E19", Title: "Per-request consistency levels: query latency at ONE/QUORUM/ALL with one degraded peer", Run: runE19, JSON: e19JSON},
		{ID: "E20", Title: "Live verification: verified records/s and retained state vs GC window, in-process + streamed TCP", Run: runE20, JSON: e20JSON},
		{ID: "A1", Title: "Ablation: sequencer vs Lamport atomic broadcast", Run: runAblationBroadcast},
		{ID: "A2", Title: "Ablation: checker heuristics and memoization", Run: runAblationChecker},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Run executes the experiment with the given ID.
func Run(id string, w io.Writer, quick bool) error {
	for _, e := range Experiments() {
		if e.ID == id {
			fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
			return e.Run(w, quick)
		}
	}
	return fmt.Errorf("bench: unknown experiment %q", id)
}

// RunAll executes every experiment.
func RunAll(w io.Writer, quick bool) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
		if err := e.Run(w, quick); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// table is a small helper around tabwriter.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() }
