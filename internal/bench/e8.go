package bench

import (
	"fmt"
	"io"
	"math/rand"

	"moc/internal/workload"
)

// runE8 exercises the Theorem 2 reduction on random schedules: the
// history-based decisions (view serializability via m-sequential
// consistency, strict view serializability via m-linearizability) are
// tabulated together with the polynomial conflict-serializability
// baseline, and the classical containments are asserted:
//
//	strict view serializable ⊆ view serializable
//	conflict serializable ⊆ view serializable
//
// (Conflict serializability does NOT imply strictness: the serialization
// the conflict graph forces may invert non-overlapping transactions,
// e.g. w1(x) r2(x) w3(y) w1(y).)
func runE8(w io.Writer, quick bool) error {
	trials := 300
	if quick {
		trials = 60
	}
	rng := rand.New(rand.NewSource(17))
	var vsr, strictVSR, csr, total int
	for i := 0; i < trials; i++ {
		s := workload.RandomSchedule(rng, 4, 3, 5)
		okVSR, _, err := s.ViewSerializable()
		if err != nil {
			return err
		}
		okStrict, _, err := s.StrictViewSerializable()
		if err != nil {
			return err
		}
		okCSR, _ := s.ConflictSerializable()

		if okStrict && !okVSR {
			return fmt.Errorf("bench: schedule %s strict-VSR but not VSR", s)
		}
		if okCSR && !okVSR {
			return fmt.Errorf("bench: schedule %s conflict-serializable but not VSR", s)
		}
		total++
		if okVSR {
			vsr++
		}
		if okStrict {
			strictVSR++
		}
		if okCSR {
			csr++
		}
	}
	t := newTable(w)
	t.row("random schedules", total)
	t.row("view serializable (via m-SC reduction)", vsr)
	t.row("strict view serializable (via m-lin reduction, Theorem 2)", strictVSR)
	t.row("conflict serializable (polynomial baseline)", csr)
	t.flush()
	fmt.Fprintln(w, "expected shape: strict-VSR <= VSR and CSR <= VSR, containments strict on large samples")
	return nil
}
