package bench

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"moc/internal/core"
	"moc/internal/history"
	"moc/internal/monitor"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/timestamp"
	"moc/internal/transport"
	"moc/internal/verify"
)

// E20 benchmarks verification itself, now that it is a networked
// component (cmd/mocmon): how many records per second the online
// pipeline (merge -> Section 5 monitor -> incremental Theorem 7
// checker) verifies, and how its retained state scales with the GC
// window. Two series:
//
//   - Window sweep: a synthetic, legal-by-construction m-lin record
//     stream is fed straight into verify.Pipeline at several window
//     sizes, including 0 (no GC, offline mode). The retained-state
//     high-water must track the window, not the history length.
//   - TCP stream: the acceptance run. Three store processes over real
//     loopback TCP (the E15/E17 deployment) run an update-only
//     pipelined workload; every completed record goes through a
//     per-node verify.StreamWriter — batches, acks, resume, exactly
//     what mocd -monitor ships — into a verify.Service on its own TCP
//     listener. >= 1M update records on the full run, zero violations,
//     windowed GC engaged, heap high-water reported.
//
// The claims BENCH_E20.json pins: windowed runs compact and hold their
// retained state strictly below the unbounded run's (which grows with
// the history); the TCP run verifies >= 1M records with zero
// violations and bounded retained state.

// e20SweepParams are the window sweep's fixed parameters.
var e20SweepParams = struct {
	Procs, Objects int
	Windows        []int
	Records        int
}{Procs: 6, Objects: 8, Windows: []int{0, 4096, 16384, 65536}, Records: 250_000}

// e20TCPParams are the TCP acceptance run's fixed parameters.
var e20TCPParams = struct {
	Procs, Objects, Inflight, Batch int
	Window                          int
	BatchWindow                     time.Duration
	Records                         int
}{Procs: 3, Objects: 8, Inflight: 32, Batch: 32, Window: 16384, BatchWindow: 200 * time.Microsecond, Records: 1_050_000}

// e20Gen produces a legal m-lin record stream in response order: one
// global timeline, single-object writes whose value equals the version
// they establish, and every fifth m-operation a two-object ALL-level
// query reading the current snapshot. Legal by construction, so every
// violation the pipeline reports on it is a checker bug.
type e20Gen struct {
	objects int
	cur     timestamp.TS
	foot    object.Set
	t       int64
	seq     int64
	i       int
}

func newE20Gen(objects int) *e20Gen {
	return &e20Gen{
		objects: objects,
		cur:     timestamp.New(objects),
		foot:    object.FullSet(objects),
	}
}

func (g *e20Gen) next(procs int) mop.Record {
	i := g.i
	g.i++
	inv := g.t
	g.t += 2
	rec := mop.Record{
		Proc:      i % procs,
		Footprint: g.foot,
		Inv:       inv,
		Resp:      inv + 1,
		Level:     history.LevelAll,
	}
	if i%5 == 4 {
		x := object.ID(i % g.objects)
		y := object.ID((i + 3) % g.objects)
		rec.Seq = -1
		rec.Ops = []history.Op{
			history.R(x, g.cur.Get(x)),
			history.R(y, g.cur.Get(y)),
		}
		rec.TSStart = g.cur.Clone()
		rec.TSEnd = rec.TSStart
		rec.IsConsistent = true
		return rec
	}
	x := object.ID(i % g.objects)
	rec.Update = true
	rec.Seq = g.seq
	g.seq++
	rec.TSStart = g.cur.Clone()
	g.cur.Set(x, g.cur.Get(x)+1)
	rec.TSEnd = g.cur.Clone()
	rec.Ops = []history.Op{history.W(x, g.cur.Get(x))}
	return rec
}

// e20Point is one measured cell (either series).
type e20Point struct {
	Window        int
	Records       int64
	RecsPerSec    float64
	Compactions   int64
	CheckerHW     int
	MonUnresHW    int
	MonPending    int
	HeapHW        uint64
	Violations    int
	UpdatesPerSec float64 // TCP only: store-side update throughput
}

// e20Sweep measures one window size on the synthetic stream.
func e20Sweep(window, records int) (e20Point, error) {
	p := verify.NewPipeline(verify.PipelineConfig{
		NumObjects: e20SweepParams.Objects,
		Level:      monitor.MLinLevel,
		Window:     window,
	})
	g := newE20Gen(e20SweepParams.Objects)
	start := time.Now()
	for i := 0; i < records; i++ {
		p.Observe(g.next(e20SweepParams.Procs))
	}
	vs := p.Finish()
	elapsed := time.Since(start)
	st := p.Snapshot()
	if len(vs) != 0 {
		return e20Point{}, fmt.Errorf("E20 sweep window %d: %d violations on a legal stream: %v", window, len(vs), vs[0])
	}
	return e20Point{
		Window:      window,
		Records:     st.Released,
		RecsPerSec:  float64(records) / elapsed.Seconds(),
		Compactions: st.Compactions,
		CheckerHW:   st.Checker.HighWater,
		MonUnresHW:  st.Monitor.UnresolvedHW,
		MonPending:  st.Monitor.Pending,
		HeapHW:      st.HeapHW,
	}, nil
}

// e20TCP runs the acceptance deployment: the E15/E17 TCP store shape
// with every record streamed to a live verification service.
func e20TCP(quick bool) (e20Point, error) {
	pr := e20TCPParams
	records := pr.Records
	if quick {
		records = 30_000
	}
	opsPerWorker := (records + pr.Procs*pr.Inflight - 1) / (pr.Procs * pr.Inflight)
	total := pr.Procs * pr.Inflight * opsPerWorker

	streamLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return e20Point{}, err
	}
	svc := verify.NewService(streamLn, nil, verify.ServiceConfig{Window: pr.Window}, nil)
	defer svc.Close()

	names := make([]string, pr.Objects)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	writers := make([]*verify.StreamWriter, pr.Procs)
	for id := range writers {
		writers[id] = verify.NewStreamWriter(verify.WriterConfig{
			Addr: streamLn.Addr().String(), Node: id,
			Consistency: "msc", Objects: names,
			BatchRecords: 1024, FlushInterval: 5 * time.Millisecond,
		})
	}

	cluster, err := transport.NewCluster(pr.Procs)
	if err != nil {
		return e20Point{}, err
	}
	defer cluster.Close()
	s, err := core.New(core.Config{
		Procs:            pr.Procs,
		Objects:          names,
		Consistency:      core.MSequential,
		Seed:             20,
		DisableRecording: true,
		MaxInflight:      pr.Inflight,
		BatchSize:        pr.Batch,
		BatchWindow:      pr.BatchWindow,
		Links:            cluster.Factory(),
		RecordSink: func(rec mop.Record) {
			writers[rec.Proc%pr.Procs].Append(rec)
		},
	})
	if err != nil {
		return e20Point{}, err
	}
	defer s.Close()

	errs := make(chan error, pr.Procs*pr.Inflight)
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < pr.Procs; pid++ {
		proc, err := s.Process(pid)
		if err != nil {
			return e20Point{}, err
		}
		for w := 0; w < pr.Inflight; w++ {
			wg.Add(1)
			go func(pid, w int, proc *core.Process) {
				defer wg.Done()
				for i := 0; i < opsPerWorker; i++ {
					op := mop.WriteOp{
						X: object.ID((w*opsPerWorker + i) % pr.Objects),
						V: object.Value(1000*pid + 10*w + i),
					}
					if _, err := proc.Exec(op, core.ExecOptions{}); err != nil {
						errs <- err
						return
					}
				}
			}(pid, w, proc)
		}
	}
	wg.Wait()
	driveElapsed := time.Since(start)
	select {
	case err := <-errs:
		return e20Point{}, err
	default:
	}

	// Drain: store first (no more Appends), then the writers (final
	// flush + Fin), then the service (streams are complete).
	s.Close()
	for _, w := range writers {
		w.Close()
	}
	svc.Close()
	pipe := svc.Pipeline()
	if pipe == nil {
		return e20Point{}, fmt.Errorf("E20 tcp: no stream ever reached the service")
	}
	vs := pipe.Finish()
	verifyElapsed := time.Since(start)
	st := pipe.Snapshot()
	if len(vs) != 0 {
		return e20Point{}, fmt.Errorf("E20 tcp: %d violations on a clean run: %v", len(vs), vs[0])
	}
	if st.Released != int64(total) {
		return e20Point{}, fmt.Errorf("E20 tcp: service released %d of %d records", st.Released, total)
	}
	return e20Point{
		Window:        pr.Window,
		Records:       st.Released,
		RecsPerSec:    float64(total) / verifyElapsed.Seconds(),
		Compactions:   st.Compactions,
		CheckerHW:     st.Checker.HighWater,
		MonUnresHW:    st.Monitor.UnresolvedHW,
		MonPending:    st.Monitor.Pending,
		HeapHW:        st.HeapHW,
		UpdatesPerSec: float64(total) / driveElapsed.Seconds(),
	}, nil
}

// e20Check pins the experiment's claims.
func e20Check(sweep []e20Point, tcp e20Point, quick bool) error {
	var unbounded *e20Point
	for i := range sweep {
		if sweep[i].Window == 0 {
			unbounded = &sweep[i]
		}
	}
	if unbounded == nil {
		return fmt.Errorf("E20: sweep is missing the unbounded (window 0) cell")
	}
	if unbounded.Compactions != 0 {
		return fmt.Errorf("E20: unbounded cell compacted %d times", unbounded.Compactions)
	}
	for _, pt := range sweep {
		if pt.Window == 0 {
			continue
		}
		if pt.Compactions == 0 {
			return fmt.Errorf("E20: window %d never compacted over %d records", pt.Window, pt.Records)
		}
		if pt.CheckerHW >= unbounded.CheckerHW {
			return fmt.Errorf("E20: window %d retained %d nodes, not below the unbounded run's %d",
				pt.Window, pt.CheckerHW, unbounded.CheckerHW)
		}
		if pt.CheckerHW > 2*pt.Window {
			return fmt.Errorf("E20: window %d retained %d nodes — GC is not keeping up", pt.Window, pt.CheckerHW)
		}
	}
	if tcp.Violations != 0 {
		return fmt.Errorf("E20 tcp: %d violations", tcp.Violations)
	}
	if !quick && tcp.Records < 1_000_000 {
		return fmt.Errorf("E20 tcp: %d records streamed, acceptance needs >= 1M", tcp.Records)
	}
	if tcp.Compactions == 0 {
		return fmt.Errorf("E20 tcp: windowed GC never engaged")
	}
	if tcp.CheckerHW > 2*tcp.Window {
		return fmt.Errorf("E20 tcp: retained %d nodes against a %d window — GC is not keeping up", tcp.CheckerHW, tcp.Window)
	}
	return nil
}

// e20Results runs both series, shared by the text and JSON emitters.
func e20Results(quick bool) ([]e20Point, e20Point, error) {
	windows := e20SweepParams.Windows
	records := e20SweepParams.Records
	if quick {
		windows = []int{0, 2048}
		records = 8_000
	}
	var sweep []e20Point
	for _, w := range windows {
		pt, err := e20Sweep(w, records)
		if err != nil {
			return nil, e20Point{}, err
		}
		sweep = append(sweep, pt)
	}
	tcp, err := e20TCP(quick)
	if err != nil {
		return nil, e20Point{}, err
	}
	if err := e20Check(sweep, tcp, quick); err != nil {
		return nil, e20Point{}, err
	}
	return sweep, tcp, nil
}

// runE20 prints both series.
//
// Expected shape: verified records/s roughly flat across windows (GC is
// cheap), retained state (checker live-node high-water, monitor
// unresolved high-water) tracking the window while the unbounded cell
// grows with the history; the TCP cell streams the full run through
// real sockets with zero violations.
func runE20(w io.Writer, quick bool) error {
	sweep, tcp, err := e20Results(quick)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "synthetic m-lin stream, %d procs, %d objects:\n",
		e20SweepParams.Procs, e20SweepParams.Objects)
	tb := newTable(w)
	tb.row("window", "records", "recs/s", "compactions", "checkerHW", "monUnresHW", "heapHW")
	for _, pt := range sweep {
		tb.row(pt.Window, pt.Records, fmt.Sprintf("%.0f", pt.RecsPerSec),
			pt.Compactions, pt.CheckerHW, pt.MonUnresHW, fmtBytes(pt.HeapHW))
	}
	tb.flush()
	fmt.Fprintf(w, "loopback TCP, %d store procs x %d lanes, batch %d, per-node record streams:\n",
		e20TCPParams.Procs, e20TCPParams.Inflight, e20TCPParams.Batch)
	tb = newTable(w)
	tb.row("window", "records", "updates/s", "verified/s", "compactions", "checkerHW", "heapHW")
	tb.row(tcp.Window, tcp.Records, fmt.Sprintf("%.0f", tcp.UpdatesPerSec),
		fmt.Sprintf("%.0f", tcp.RecsPerSec), tcp.Compactions, tcp.CheckerHW, fmtBytes(tcp.HeapHW))
	tb.flush()
	fmt.Fprintln(w, "expected shape: retained state tracks the window (the unbounded cell grows")
	fmt.Fprintln(w, "with the history); the TCP run verifies the full update stream with zero")
	fmt.Fprintln(w, "violations and the GC engaged")
	return nil
}

// fmtBytes renders a byte count at MB granularity for the tables.
func fmtBytes(b uint64) string {
	return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
}

// e20JSON emits both series as one report.
func e20JSON(quick bool) (Report, error) {
	sweep, tcp, err := e20Results(quick)
	if err != nil {
		return Report{}, err
	}
	sweepSeries := Series{Name: "synthetic-window-sweep"}
	for _, pt := range sweep {
		sweepSeries.Points = append(sweepSeries.Points, map[string]any{
			"window":           pt.Window,
			"records":          pt.Records,
			"recsPerSec":       pt.RecsPerSec,
			"compactions":      pt.Compactions,
			"checkerHighWater": pt.CheckerHW,
			"monUnresolvedHW":  pt.MonUnresHW,
			"heapHWBytes":      pt.HeapHW,
		})
	}
	tcpSeries := Series{Name: "tcp-stream", Points: []map[string]any{{
		"window":           tcp.Window,
		"records":          tcp.Records,
		"updatesPerSec":    tcp.UpdatesPerSec,
		"verifiedPerSec":   tcp.RecsPerSec,
		"compactions":      tcp.Compactions,
		"checkerHighWater": tcp.CheckerHW,
		"monUnresolvedHW":  tcp.MonUnresHW,
		"heapHWBytes":      tcp.HeapHW,
		"violations":       tcp.Violations,
	}}}
	return Report{
		Parameters: map[string]any{
			"sweepProcs":     e20SweepParams.Procs,
			"sweepObjects":   e20SweepParams.Objects,
			"sweepWindows":   e20SweepParams.Windows,
			"sweepRecords":   e20SweepParams.Records,
			"sweepLevel":     "m-linearizable",
			"tcpProcs":       e20TCPParams.Procs,
			"tcpInflight":    e20TCPParams.Inflight,
			"tcpBatch":       e20TCPParams.Batch,
			"tcpWindow":      e20TCPParams.Window,
			"tcpRecords":     e20TCPParams.Records,
			"tcpConsistency": "m-sequential",
			"transport":      "in-process + tcp-loopback",
		},
		Series: []Series{sweepSeries, tcpSeries},
	}, nil
}
