package bench

import (
	"fmt"
	"io"
	"testing"
	"time"

	"moc/internal/mop"
	"moc/internal/transport"
)

// E17 measures what retiring gob from the hot path buys: the same
// batched, pipelined TCP update workload as E15, swept over the frame
// body codec ("binary" vs "gob"), plus a direct measurement of the
// send-path encode cost (ns and allocations per frame) for each codec.
// The binary cells are the current default wire path; the gob cells are
// the pre-E17 path kept behind -codec=gob, so the sweep is a controlled
// before/after on one axis.

// E17Result is one cell of the codec x batch-size sweep.
type E17Result struct {
	Codec     string // "binary" or "gob"
	BatchSize int
	Ops       int
	OpsPerSec float64
	P50, P99  time.Duration
	Mean      time.Duration
}

// E17Encode is the isolated send-path encode cost for one codec,
// measured over transport.BenchEncodeFrame with a representative
// pre-boxed update payload (so only the encoder's own allocations are
// charged).
type E17Encode struct {
	Codec       string
	NsPerOp     float64
	AllocsPerOp float64
	FrameBytes  int
}

// e17Sizes reuses the E15 cell shape (3 procs, 32 pipelined lanes,
// update-only) restricted to the TCP batch sizes the codec comparison
// targets; batch 32 is the cell BENCH_E15.json's headline number came
// from.
func e17Sizes(quick bool) e15Params {
	p := e15Sizes(false)
	p.batchSizes = []int{8, 32}
	// E15's 960 updates/proc finish in ~25ms at these rates, so TCP
	// dialing and goroutine spin-up dominate the clock; run 4x longer so
	// the cell measures the steady state the codec comparison is about.
	p.opsPerProc = 3840
	if quick {
		p.batchSizes = []int{8}
		p.opsPerProc = 160
	}
	return p
}

// e17Runs is how often each cell is repeated; the fastest run is
// reported. On a shared host, co-scheduling and GC noise only ever
// subtract throughput, so best-of-N is the least-biased capacity
// estimate, and both codecs get the same treatment so the comparison
// stays fair.
func e17Runs(quick bool) int {
	if quick {
		return 1
	}
	return 3
}

// e17EncodeCost measures the per-frame encode cost of one codec in
// isolation. The payload is boxed once outside the measured loop: the
// send path receives an `any`, so the concrete-to-interface conversion
// is the caller's cost, not the codec's.
func e17EncodeCost(codec string) (E17Encode, error) {
	var payload any = mop.WriteOp{X: 3, V: 42}
	size, err := transport.BenchEncodeFrame(codec, payload)
	if err != nil {
		return E17Encode{}, err
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if _, err := transport.BenchEncodeFrame(codec, payload); err != nil {
			panic(err)
		}
	})
	const rounds = 20000
	t0 := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := transport.BenchEncodeFrame(codec, payload); err != nil {
			return E17Encode{}, err
		}
	}
	ns := float64(time.Since(t0).Nanoseconds()) / rounds
	return E17Encode{Codec: codec, NsPerOp: ns, AllocsPerOp: allocs, FrameBytes: size}, nil
}

// e17Results runs the codec sweep plus the encode-cost probes, shared
// by the text and JSON emitters.
func e17Results(quick bool) ([]E17Result, []E17Encode, e15Params, error) {
	p := e17Sizes(quick)
	runs := e17Runs(quick)
	var results []E17Result
	for _, codec := range []string{transport.CodecBinary, transport.CodecGob} {
		for _, batch := range p.batchSizes {
			res, err := runE15Cell("tcp", codec, batch, p, 42)
			if err != nil {
				return nil, nil, p, err
			}
			for i := 1; i < runs; i++ {
				again, err := runE15Cell("tcp", codec, batch, p, 42)
				if err != nil {
					return nil, nil, p, err
				}
				if again.OpsPerSec > res.OpsPerSec {
					res = again
				}
			}
			results = append(results, E17Result{
				Codec:     codec,
				BatchSize: res.BatchSize,
				Ops:       res.Ops,
				OpsPerSec: res.OpsPerSec,
				P50:       res.P50,
				P99:       res.P99,
				Mean:      res.Mean,
			})
		}
	}
	var encodes []E17Encode
	for _, codec := range []string{transport.CodecBinary, transport.CodecGob} {
		e, err := e17EncodeCost(codec)
		if err != nil {
			return nil, nil, p, err
		}
		encodes = append(encodes, e)
	}
	return results, encodes, p, nil
}

// runE17 prints the codec comparison.
//
// Expected shape: the binary codec encodes a frame in tens of
// nanoseconds with zero allocations where gob takes microseconds and
// dozens of allocations (its per-frame type descriptors and reflection
// are exactly the overhead the hand-rolled codec removes), and
// end-to-end TCP update throughput at each batch size is strictly
// higher under the binary codec.
func runE17(w io.Writer, quick bool) error {
	results, encodes, p, err := e17Results(quick)
	if err != nil {
		return err
	}
	base := make(map[int]float64)
	for _, r := range results {
		if r.Codec == transport.CodecGob {
			base[r.BatchSize] = r.OpsPerSec
		}
	}
	tb := newTable(w)
	tb.row("codec", "batch", "ops/s", "vs gob", "p50", "p99")
	for _, r := range results {
		speed := "1.00x"
		if b := base[r.BatchSize]; b > 0 {
			speed = fmt.Sprintf("%.2fx", r.OpsPerSec/b)
		}
		tb.row(r.Codec, r.BatchSize,
			fmt.Sprintf("%.0f", r.OpsPerSec), speed,
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	}
	tb.flush()
	fmt.Fprintln(w)
	tb = newTable(w)
	tb.row("codec", "encode ns/frame", "allocs/frame", "frame bytes")
	for _, e := range encodes {
		tb.row(e.Codec, fmt.Sprintf("%.0f", e.NsPerOp),
			fmt.Sprintf("%.0f", e.AllocsPerOp), e.FrameBytes)
	}
	tb.flush()
	fmt.Fprintf(w, "procs=%d inflight=%d updates/proc=%d window=%v, loopback TCP, update-only\n",
		p.procs, p.inflight, p.opsPerProc, p.window)
	fmt.Fprintln(w, "expected shape: binary encodes in tens of ns with 0 allocs/frame where gob")
	fmt.Fprintln(w, "pays reflection and per-frame descriptors; end-to-end ops/s is higher under")
	fmt.Fprintln(w, "binary at every batch size")
	return nil
}

// e17JSON emits the sweep as a report, one series per codec plus an
// encode-cost series.
func e17JSON(quick bool) (Report, error) {
	results, encodes, p, err := e17Results(quick)
	if err != nil {
		return Report{}, err
	}
	series := map[string]*Series{}
	var order []string
	for _, r := range results {
		s, ok := series[r.Codec]
		if !ok {
			s = &Series{Name: r.Codec}
			series[r.Codec] = s
			order = append(order, r.Codec)
		}
		s.Points = append(s.Points, map[string]any{
			"batchSize": r.BatchSize,
			"ops":       r.Ops,
			"opsPerSec": r.OpsPerSec,
			"p50Ns":     durNs(r.P50),
			"p99Ns":     durNs(r.P99),
			"meanNs":    durNs(r.Mean),
		})
	}
	enc := &Series{Name: "encode-path"}
	for _, e := range encodes {
		enc.Points = append(enc.Points, map[string]any{
			"codec":       e.Codec,
			"nsPerFrame":  e.NsPerOp,
			"allocsPerOp": e.AllocsPerOp,
			"frameBytes":  e.FrameBytes,
		})
	}
	var out []Series
	for _, name := range order {
		out = append(out, *series[name])
	}
	out = append(out, *enc)
	return Report{
		Parameters: map[string]any{
			"consistency": "m-sequential",
			"procs":       p.procs, "inflight": p.inflight,
			"updatesPerProc": p.opsPerProc, "batchSizes": p.batchSizes,
			"windowNs": durNs(p.window), "objects": 8, "seed": 42,
			"transport":     "tcp-loopback",
			"codecs":        []string{transport.CodecBinary, transport.CodecGob},
			"runsPerCell":   e17Runs(quick),
			"encodePayload": fmt.Sprintf("%T", mop.WriteOp{}),
		},
		Series: out,
	}, nil
}
