package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"moc/internal/core"
	"moc/internal/workload"
)

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 22 {
		t.Fatalf("experiment count = %d, want 22", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "A1", "A2"} {
		if !seen[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestRunJSONReports(t *testing.T) {
	if testing.Short() {
		t.Skip("runs measurement experiments; skipped in -short")
	}
	if got := jsonIDs(); len(got) != 9 || got[0] != "E13" || got[1] != "E14" || got[2] != "E15" || got[3] != "E16" || got[4] != "E17" || got[5] != "E18" || got[6] != "E19" || got[7] != "E20" || got[8] != "E7" {
		t.Fatalf("jsonIDs() = %v, want [E13 E14 E15 E16 E17 E18 E19 E20 E7]", got)
	}
	for _, id := range jsonIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			rep, err := RunJSON(id, true)
			if err != nil {
				t.Fatalf("RunJSON(%s): %v", id, err)
			}
			if rep.Experiment != id || rep.Title == "" || !rep.Quick {
				t.Fatalf("report header not filled: %+v", rep)
			}
			if len(rep.Series) == 0 || len(rep.Series[0].Points) == 0 {
				t.Fatalf("report has no data: %+v", rep)
			}
			if len(rep.Parameters) == 0 {
				t.Fatalf("report has no parameters: %+v", rep)
			}
		})
	}
}

func TestRunJSONUnsupported(t *testing.T) {
	if _, err := RunJSON("E1", true); err == nil {
		t.Fatal("E1 has no JSON report but RunJSON accepted it")
	}
	if _, err := RunJSON("E99", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("E99", &buf, true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestEveryExperimentRunsQuick executes every experiment in quick mode and
// sanity-checks the output. This doubles as an end-to-end test of the
// whole repository: model, checkers, protocols, workloads.
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow-ish; skipped in -short")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s failed: %v\noutput:\n%s", e.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestE1OutputMentionsRelations(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("E1", &buf, true); err != nil {
		t.Fatalf("E1: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"alpha", "reads-from", "object order", "m-linearizable: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("E1 reports a relation mismatch:\n%s", out)
	}
}

func TestE2OutputShowsRepair(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("E2", &buf, true); err != nil {
		t.Fatalf("E2: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"legal=false", "~rw~>", "admissible=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("E2 output missing %q:\n%s", want, out)
		}
	}
}

func TestE3ShowsGrowth(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("E3", &buf, true); err != nil {
		t.Fatalf("E3: %v", err)
	}
	if !strings.Contains(buf.String(), "not admissible") {
		t.Errorf("E3 output missing verdicts:\n%s", buf.String())
	}
}

func TestRunMixShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// The E7 headline claim: with a visible network delay, m-SC queries
	// are much faster than m-lin queries (which pay a round trip), while
	// update latency is comparable.
	mix := workload.Mix{ReadFrac: 0.5, Span: 2, OpsPerProc: 12}
	const delay = 2 * time.Millisecond
	msc, err := RunMix(core.MSequential, 3, 4, mix, delay, 1)
	if err != nil {
		t.Fatalf("RunMix msc: %v", err)
	}
	lin, err := RunMix(core.MLinearizable, 3, 4, mix, delay, 1)
	if err != nil {
		t.Fatalf("RunMix mlin: %v", err)
	}
	if msc.QueryMsgs != 0 {
		t.Errorf("m-SC queries sent %d messages, want 0", msc.QueryMsgs)
	}
	if lin.QueryMsgs == 0 {
		t.Error("m-lin queries sent no messages")
	}
	if lin.QueryMean < delay {
		t.Errorf("m-lin query mean %v below one-way delay %v", lin.QueryMean, delay)
	}
	if msc.QueryMean*4 > lin.QueryMean {
		t.Errorf("query latency separation too small: msc=%v mlin=%v", msc.QueryMean, lin.QueryMean)
	}
	if msc.UpdateMean < delay || lin.UpdateMean < delay {
		t.Errorf("update latencies below one-way delay: msc=%v mlin=%v", msc.UpdateMean, lin.UpdateMean)
	}
}
