package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"moc/internal/core"
	"moc/internal/monitor"
	"moc/internal/mop"
	"moc/internal/network"
	"moc/internal/object"
	"moc/internal/transport"
	"moc/internal/verify"
	"moc/internal/workload"
)

// E16 measures what sharding the object space actually buys: ordering
// capacity. Every cell drives the same closed-loop, shard-affine update
// workload while each lane coordinator's egress is held to a fixed
// modeled NIC budget — network.Faults.Bandwidth on the simulated
// network, transport.Faults.Bandwidth (the same token-bucket model on
// real sockets) over loopback TCP. A single total order funnels every
// update's dissemination through one coordinator NIC; K shards spread
// it over K coordinators, so single-shard-op throughput scales with the
// shard count until the issuing processes (or the shared CPU) run out.
// The egress budget is what makes the measurement honest on a
// single-core host: wall-clock CPU parallelism cannot scale there, but
// ordering capacity — the resource the ROADMAP names as the scaling
// cap, and the one a real deployment exhausts first — can, because it
// is priced in modeled time that the benchmark never CPU-saturates.
//
// A cross-shard penalty cell repeats the widest sweep point with a
// fraction of two-shard m-operations (the ticket/commit merge path),
// and a recorded verification cell replays a mixed sharded workload
// with history capture on, requiring the unchanged exact checker
// (Store.Verify) and the mocmon pipeline (verify.Pipeline, the live
// incremental checker) to accept it with zero violations.

// E16Result is one cell of the shard-count sweep.
type E16Result struct {
	Transport string // "sim" or "tcp"
	Shards    int
	CrossFrac float64 // fraction of eligible ops spanning two shards
	Ops       int
	CrossOps  int // ops that actually spanned two shards
	OpsPerSec float64
	P50, P99  time.Duration
	Mean      time.Duration
	// Throttled counts sends that waited on the modeled egress NIC —
	// nonzero everywhere here, since the budget is what binds.
	Throttled int64
}

// e16Params sizes the sweep.
type e16Params struct {
	shardCounts  []int
	procs        int
	objects      int
	inflight     int
	opsPerWorker int
	crossFrac    float64       // the penalty cell's two-shard fraction
	bandwidth    int64         // modeled egress budget, bytes/s per NIC
	maxDelay     time.Duration // sim propagation delay bound
	runs         int           // best-of-N per cell
}

func e16Sizes(quick bool) e16Params {
	p := e16Params{
		shardCounts:  []int{1, 2, 4, 8},
		procs:        4,
		objects:      16,
		inflight:     16,
		opsPerWorker: 40,
		crossFrac:    0.10,
		bandwidth:    300_000,
		maxDelay:     100 * time.Microsecond,
		runs:         2,
	}
	if quick {
		p.shardCounts = []int{1, 4}
		p.opsPerWorker = 12
		p.runs = 1
	}
	return p
}

// runE16Cell runs one sweep cell: an update-only closed loop of
// p.inflight worker loops per process against the process's home
// shard's objects. Process p's home lane is (p+1) mod shards — offset
// so that over TCP no process is colocated with its own lane's
// coordinator node (lane s's coordinator endpoint lives on node s
// here): a colocated issuer's updates would complete through the
// node-local delivery path without ever crossing the throttled wire,
// and the cell would measure CPU, not ordering capacity. With
// crossFrac > 0, workers whose home shard has an upward neighbor
// additionally issue that fraction of two-shard MAssigns spanning
// (home, home+1). Crossing upward keeps the session anchor — which
// compresses to the lowest involved shard — at the home lane, so the
// measured fraction stays the configured one; crossing downward would
// pin the anchor below home and promote every later single-shard update
// of that process into the merge path.
func runE16Cell(transportKind string, shards int, crossFrac float64, p e16Params, seed int64) (E16Result, error) {
	names := make([]string, p.objects)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	cfg := core.Config{
		Procs:            p.procs,
		Objects:          names,
		Consistency:      core.MSequential,
		Seed:             seed,
		DisableRecording: true,
		MaxInflight:      p.inflight,
	}
	if shards > 1 {
		cfg.Shards = shards
	}
	var cluster *transport.Cluster
	if transportKind == "tcp" {
		var err error
		cluster, err = transport.NewFaultyCluster(p.procs, transport.Faults{Seed: seed, Bandwidth: p.bandwidth})
		if err != nil {
			return E16Result{}, err
		}
		defer cluster.Close()
		cfg.Links = cluster.Factory()
	} else {
		cfg.MaxDelay = p.maxDelay
		cfg.Faults = &network.Faults{Bandwidth: p.bandwidth}
	}
	s, err := core.New(cfg)
	if err != nil {
		return E16Result{}, err
	}
	defer s.Close()

	k := shards
	if k < 1 {
		k = 1
	}
	total := p.procs * p.inflight * p.opsPerWorker
	latNs := make([][]int64, p.procs*p.inflight)
	var crossOps atomic.Int64
	errs := make(chan error, p.procs*p.inflight)
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < p.procs; pid++ {
		proc, err := s.Process(pid)
		if err != nil {
			return E16Result{}, err
		}
		home := (pid + 1) % k
		var pool []object.ID
		for x := 0; x < p.objects; x++ {
			if x%k == home {
				pool = append(pool, object.ID(x))
			}
		}
		var foreign []object.ID
		if crossFrac > 0 && home+1 < k {
			for x := 0; x < p.objects; x++ {
				if x%k == home+1 {
					foreign = append(foreign, object.ID(x))
				}
			}
		}
		for w := 0; w < p.inflight; w++ {
			wg.Add(1)
			slot := pid*p.inflight + w
			go func(pid, w, slot int, proc *core.Process, pool, foreign []object.ID) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(1000*slot)))
				ns := make([]int64, 0, p.opsPerWorker)
				for i := 0; i < p.opsPerWorker; i++ {
					x := pool[(w*p.opsPerWorker+i)%len(pool)]
					v := object.Value(1000*pid + 10*w + i)
					var op mop.Procedure = mop.WriteOp{X: x, V: v}
					if len(foreign) > 0 && rng.Float64() < crossFrac {
						y := foreign[rng.Intn(len(foreign))]
						op = mop.MAssign{Writes: map[object.ID]object.Value{x: v, y: v}}
						crossOps.Add(1)
					}
					t0 := time.Now()
					if _, err := proc.Exec(op, core.ExecOptions{}); err != nil {
						errs <- err
						return
					}
					ns = append(ns, time.Since(t0).Nanoseconds())
				}
				latNs[slot] = ns
			}(pid, w, slot, proc, pool, foreign)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return E16Result{}, err
	default:
	}

	var all []int64
	for _, ns := range latNs {
		all = append(all, ns...)
	}
	return E16Result{
		Transport: transportKind,
		Shards:    shards,
		CrossFrac: crossFrac,
		Ops:       total,
		CrossOps:  int(crossOps.Load()),
		OpsPerSec: float64(total) / elapsed.Seconds(),
		P50:       percentile(all, 0.50),
		P99:       percentile(all, 0.99),
		Mean:      mean(all),
		Throttled: s.NetStats().Throttled,
	}, nil
}

// e16BestOf reruns a cell and keeps the highest-throughput run: the
// modeled egress budget sets a ceiling, so noise only subtracts.
func e16BestOf(transportKind string, shards int, crossFrac float64, p e16Params) (E16Result, error) {
	var best E16Result
	for r := 0; r < p.runs; r++ {
		res, err := runE16Cell(transportKind, shards, crossFrac, p, 42+int64(r))
		if err != nil {
			return E16Result{}, err
		}
		if r == 0 || res.OpsPerSec > best.OpsPerSec {
			best = res
		}
	}
	return best, nil
}

// E16Verified is the recorded verification cell's outcome.
type E16Verified struct {
	Ops          int
	CrossOps     int
	Accepted     bool // Store.Verify: the unchanged exact checker
	Violations   int  // verify.Pipeline: the live mocmon engine
	ShardSpec    string
	CheckerNote  string
	PipelineNote string
}

// runE16Verified replays a mixed sharded workload (queries, multi-object
// updates, downward cross-shard spans — the session-anchor promotion
// path included) with recording on, then requires acceptance twice
// over: by the exact admissibility checker behind Store.Verify, and by
// the incremental online checker behind mocmon (verify.Pipeline with
// the records fed in response order, exactly like moccheck -stream).
func runE16Verified(quick bool) (E16Verified, error) {
	const shards, procs, objects = 4, 4, 16
	opsPerProc := 60
	if quick {
		opsPerProc = 24
	}
	names := make([]string, objects)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	s, err := core.New(core.Config{
		Procs:       procs,
		Objects:     names,
		Consistency: core.MSequential,
		Seed:        7,
		Shards:      shards,
		MaxDelay:    200 * time.Microsecond,
	})
	if err != nil {
		return E16Verified{}, err
	}
	defer s.Close()

	mix := workload.ShardMix{ReadFrac: 0.3, Span: 2, OpsPerProc: opsPerProc, Shards: shards, CrossFrac: 0.2}
	plans := mix.Plan(procs, objects, rand.New(rand.NewSource(7)))
	cross := 0
	for _, plan := range plans {
		for _, op := range plan {
			shardsSeen := map[int]bool{}
			for _, x := range op.Objs {
				shardsSeen[int(x)%shards] = true
			}
			if len(shardsSeen) > 1 {
				cross++
			}
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, procs)
	for pid := range plans {
		proc, err := s.Process(pid)
		if err != nil {
			return E16Verified{}, err
		}
		wg.Add(1)
		go func(proc *core.Process, plan []workload.Op) {
			defer wg.Done()
			for _, op := range plan {
				var pr mop.Procedure
				if op.Query {
					pr = mop.MultiRead{Xs: op.Objs}
				} else {
					writes := make(map[object.ID]object.Value, len(op.Objs))
					for i, x := range op.Objs {
						writes[x] = op.Vals[i]
					}
					pr = mop.MAssign{Writes: writes}
				}
				if _, err := proc.Exec(pr, core.ExecOptions{}); err != nil {
					errs <- err
					return
				}
			}
		}(proc, plans[pid])
	}
	wg.Wait()
	select {
	case err := <-errs:
		return E16Verified{}, err
	default:
	}

	out := E16Verified{Ops: procs * opsPerProc, CrossOps: cross, ShardSpec: s.ShardSpec()}
	res, err := s.Verify()
	if err != nil {
		return E16Verified{}, err
	}
	out.Accepted = res.OK
	out.CheckerNote = fmt.Sprintf("legal witness of %d events", len(res.Witness))
	if !res.OK {
		return out, fmt.Errorf("bench: E16 sharded history rejected by the exact checker")
	}

	recs := s.Records()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Resp < recs[j].Resp })
	pipe := verify.NewPipeline(verify.PipelineConfig{
		NumObjects: objects,
		Level:      monitor.MSCLevel,
		Shards:     shards,
	})
	for _, rec := range recs {
		pipe.Observe(rec)
	}
	vs := pipe.Finish()
	out.Violations = len(vs)
	if len(vs) > 0 {
		out.PipelineNote = vs[0].String()
		return out, fmt.Errorf("bench: E16 sharded history rejected by the mocmon pipeline: %d violations, first: %s", len(vs), vs[0])
	}
	return out, nil
}

// e16Results runs the full sweep (scaling rows, then the cross-shard
// penalty cell per transport at the widest usable shard count), shared
// by the text and JSON emitters.
func e16Results(quick bool) ([]E16Result, E16Verified, e16Params, error) {
	p := e16Sizes(quick)
	var results []E16Result
	for _, tk := range []string{"sim", "tcp"} {
		for _, k := range p.shardCounts {
			res, err := e16BestOf(tk, k, 0, p)
			if err != nil {
				return nil, E16Verified{}, p, err
			}
			results = append(results, res)
		}
		// The penalty cell: widest shard count that the processes can
		// still load (lanes beyond the issuing processes sit idle).
		penalty := p.procs
		for _, k := range p.shardCounts {
			if k <= p.procs && k > 1 {
				penalty = k
			}
		}
		res, err := e16BestOf(tk, penalty, p.crossFrac, p)
		if err != nil {
			return nil, E16Verified{}, p, err
		}
		results = append(results, res)
	}
	ver, err := runE16Verified(quick)
	if err != nil {
		return results, ver, p, err
	}
	return results, ver, p, nil
}

// runE16 prints the shard-count sweep.
//
// Expected shape: single-shard-op throughput scales near-linearly in
// the shard count on both transports — every update is disseminated by
// its lane's coordinator, so the binding resource is coordinator egress
// and K lanes have K coordinator NICs — with >= 2.5x at 4 shards over
// the 1-shard baseline, then a plateau once lanes outnumber the issuing
// processes. The cross-shard cell pays for tickets and commits on two
// lanes plus the apply barrier, so it lands below its all-single
// counterpart but well above the 1-shard baseline: the merge taxes the
// operations that need it without serializing the lanes.
func runE16(w io.Writer, quick bool) error {
	results, ver, p, err := e16Results(quick)
	if err != nil {
		return err
	}
	base := make(map[string]float64)
	for _, r := range results {
		if r.Shards == 1 && r.CrossFrac == 0 {
			base[r.Transport] = r.OpsPerSec
		}
	}
	tb := newTable(w)
	tb.row("transport", "shards", "cross", "ops/s", "speedup", "p50", "p99", "cross-ops", "throttled")
	for _, r := range results {
		speed := "1.00x"
		if b := base[r.Transport]; b > 0 {
			speed = fmt.Sprintf("%.2fx", r.OpsPerSec/b)
		}
		tb.row(r.Transport, r.Shards,
			fmt.Sprintf("%.0f%%", 100*r.CrossFrac),
			fmt.Sprintf("%.0f", r.OpsPerSec), speed,
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			r.CrossOps, r.Throttled)
	}
	tb.flush()
	fmt.Fprintf(w, "procs=%d objects=%d inflight=%d updates/worker=%d egress=%dB/s (modeled per-NIC budget)\n",
		p.procs, p.objects, p.inflight, p.opsPerWorker, p.bandwidth)
	fmt.Fprintf(w, "verified cell: %d recorded ops (%d cross-shard) on %s — exact checker accepted=%v, mocmon pipeline violations=%d\n",
		ver.Ops, ver.CrossOps, ver.ShardSpec, ver.Accepted, ver.Violations)
	fmt.Fprintln(w, "expected shape: ops/s grows near-linearly with the shard count (each lane's")
	fmt.Fprintln(w, "coordinator disseminates on its own egress budget), >= 2.5x at 4 shards on both")
	fmt.Fprintln(w, "transports, plateauing once lanes outnumber the issuing processes; the")
	fmt.Fprintln(w, "cross-shard cell sits below its all-single counterpart but far above 1 shard")
	return nil
}

// e16JSON emits the sweep as a report: one series per transport for the
// scaling rows, one per transport for the cross-shard penalty cell.
func e16JSON(quick bool) (Report, error) {
	results, ver, p, err := e16Results(quick)
	if err != nil {
		return Report{}, err
	}
	series := map[string]*Series{}
	var order []string
	for _, r := range results {
		name := r.Transport
		if r.CrossFrac > 0 {
			name += "-cross"
		}
		s, ok := series[name]
		if !ok {
			s = &Series{Name: name}
			series[name] = s
			order = append(order, name)
		}
		s.Points = append(s.Points, map[string]any{
			"shards":    r.Shards,
			"crossFrac": r.CrossFrac,
			"ops":       r.Ops,
			"crossOps":  r.CrossOps,
			"opsPerSec": r.OpsPerSec,
			"p50Ns":     durNs(r.P50),
			"p99Ns":     durNs(r.P99),
			"meanNs":    durNs(r.Mean),
			"throttled": r.Throttled,
		})
	}
	var out []Series
	for _, name := range order {
		out = append(out, *series[name])
	}
	return Report{
		Parameters: map[string]any{
			"consistency": core.MSequential.String(),
			"procs":       p.procs, "objects": p.objects,
			"inflight": p.inflight, "updatesPerWorker": p.opsPerWorker,
			"shardCounts": p.shardCounts, "crossFrac": p.crossFrac,
			"egressBytesPerSec": p.bandwidth,
			"maxDelayNs":        durNs(p.maxDelay),
			"runsPerCell":       p.runs,
			"transports":        []string{"sim", "tcp-loopback"},
			"verified": map[string]any{
				"ops":                    ver.Ops,
				"crossOps":               ver.CrossOps,
				"shardSpec":              ver.ShardSpec,
				"exactCheckerAccepted":   ver.Accepted,
				"mocmonViolations":       ver.Violations,
				"mocmonPipelineLevel":    "msc",
				"recordedFeedOrder":      "response order (moccheck -stream discipline)",
				"exactCheckerConclusion": ver.CheckerNote,
			},
		},
		Series: out,
	}, nil
}
