package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"moc/internal/core"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/workload"
)

// latencies aggregates per-operation latencies.
type latencies struct {
	mu      sync.Mutex
	queryNs []int64
	updNs   []int64
}

func (l *latencies) add(query bool, ns int64) {
	l.mu.Lock()
	if query {
		l.queryNs = append(l.queryNs, ns)
	} else {
		l.updNs = append(l.updNs, ns)
	}
	l.mu.Unlock()
}

func mean(ns []int64) time.Duration {
	if len(ns) == 0 {
		return 0
	}
	var sum int64
	for _, v := range ns {
		sum += v
	}
	return time.Duration(sum / int64(len(ns)))
}

// MixResult is one row of the E7 table.
type MixResult struct {
	Consistency core.Consistency
	Procs       int
	ReadFrac    float64
	QueryMean   time.Duration
	UpdateMean  time.Duration
	Throughput  float64 // m-operations per second
	QueryMsgs   int64
}

// RunMix drives one protocol configuration through a workload mix and
// measures latency and throughput. Exported for bench_test.go.
func RunMix(cons core.Consistency, procs, objects int, mix workload.Mix, delay time.Duration, seed int64) (MixResult, error) {
	names := make([]string, objects)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	s, err := core.New(core.Config{
		Procs: procs, Objects: names, Consistency: cons,
		Seed: seed, MinDelay: delay, MaxDelay: delay,
		DisableRecording: true,
	})
	if err != nil {
		return MixResult{}, err
	}
	defer s.Close()

	plans := mix.Plan(procs, objects, rand.New(rand.NewSource(seed)))
	var lat latencies
	var wg sync.WaitGroup
	errs := make(chan error, procs)
	start := time.Now()
	for p := 0; p < procs; p++ {
		proc, err := s.Process(p)
		if err != nil {
			return MixResult{}, err
		}
		wg.Add(1)
		go func(plan []workload.Op, proc *core.Process) {
			defer wg.Done()
			for _, op := range plan {
				var pr mop.Procedure
				if op.Query {
					pr = mop.MultiRead{Xs: op.Objs}
				} else {
					pr = planUpdate(op)
				}
				t0 := time.Now()
				if _, err := proc.Exec(pr, core.ExecOptions{}); err != nil {
					errs <- err
					return
				}
				lat.add(op.Query, time.Since(t0).Nanoseconds())
			}
		}(plans[p], proc)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return MixResult{}, err
	default:
	}

	total := procs * mix.OpsPerProc
	return MixResult{
		Consistency: cons,
		Procs:       procs,
		ReadFrac:    mix.ReadFrac,
		QueryMean:   mean(lat.queryNs),
		UpdateMean:  mean(lat.updNs),
		Throughput:  float64(total) / elapsed.Seconds(),
		QueryMsgs:   s.QueryTraffic().Messages,
	}, nil
}

func planUpdate(op workload.Op) mop.Procedure {
	writes := make(map[object.ID]object.Value, len(op.Objs))
	for i, x := range op.Objs {
		writes[x] = op.Vals[i]
	}
	return mop.MAssign{Writes: writes}
}

// e7Params are the cell dimensions of the E7 (and, minus the simulated
// delay, E14) cost tables.
type e7Params struct {
	delay     time.Duration
	procsList []int
	fracs     []float64
	ops       int
}

func e7Sizes(quick bool) e7Params {
	if quick {
		return e7Params{delay: time.Millisecond, procsList: []int{2, 4}, fracs: []float64{0.5}, ops: 10}
	}
	return e7Params{delay: 2 * time.Millisecond, procsList: []int{2, 4, 8}, fracs: []float64{0.5, 0.9}, ops: 30}
}

// e7Results runs every cell of the cost table. Shared by the text and
// JSON emitters.
func e7Results(quick bool) ([]MixResult, e7Params, error) {
	p := e7Sizes(quick)
	var results []MixResult
	for _, cons := range []core.Consistency{core.MSequential, core.MLinearizable} {
		for _, procs := range p.procsList {
			for _, frac := range p.fracs {
				res, err := RunMix(cons, procs, 8,
					workload.Mix{ReadFrac: frac, Span: 2, OpsPerProc: p.ops}, p.delay, 42)
				if err != nil {
					return nil, p, err
				}
				results = append(results, res)
			}
		}
	}
	return results, p, nil
}

// mixTable prints cost-model rows in the shared E7/E14 format.
func mixTable(w io.Writer, results []MixResult) {
	t := newTable(w)
	t.row("consistency", "procs", "read%", "query mean", "update mean", "ops/s", "query msgs")
	for _, res := range results {
		t.row(res.Consistency, res.Procs, int(res.ReadFrac*100),
			res.QueryMean.Round(time.Microsecond),
			res.UpdateMean.Round(time.Microsecond),
			fmt.Sprintf("%.0f", res.Throughput),
			res.QueryMsgs)
	}
	t.flush()
}

// runE7 prints the protocol cost table: for each (consistency, procs,
// read fraction), mean query latency, mean update latency and
// throughput, under a fixed per-message delay so round trips are visible.
//
// Expected shape: m-SC query latency ~ 0 (local) regardless of n; m-lin
// query latency ~ 2x the one-way delay (a round trip) and grows slightly
// with n (stragglers); update latency comparable for both.
func runE7(w io.Writer, quick bool) error {
	results, _, err := e7Results(quick)
	if err != nil {
		return err
	}
	mixTable(w, results)
	fmt.Fprintln(w, "expected shape: m-sequential query latency ~0 and 0 query msgs;")
	fmt.Fprintln(w, "m-linearizable query latency ~1 RTT with 2n msgs per query; update latency similar for both")
	return nil
}

// e7JSON emits the cost table as a report, one series per consistency.
func e7JSON(quick bool) (Report, error) {
	results, p, err := e7Results(quick)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Parameters: map[string]any{
			"delayNs": durNs(p.delay), "procs": p.procsList, "readFracs": p.fracs,
			"opsPerProc": p.ops, "objects": 8, "span": 2, "seed": 42,
		},
		Series: mixSeries(results),
	}, nil
}

// mixSeries groups MixResults into one series per consistency.
func mixSeries(results []MixResult) []Series {
	byCons := map[string]*Series{}
	var order []string
	for _, r := range results {
		name := r.Consistency.String()
		s, ok := byCons[name]
		if !ok {
			s = &Series{Name: name}
			byCons[name] = s
			order = append(order, name)
		}
		s.Points = append(s.Points, mixPoint(r))
	}
	out := make([]Series, 0, len(order))
	for _, name := range order {
		out = append(out, *byCons[name])
	}
	return out
}
