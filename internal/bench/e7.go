package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"moc/internal/core"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/workload"
)

// latencies aggregates per-operation latencies.
type latencies struct {
	mu      sync.Mutex
	queryNs []int64
	updNs   []int64
}

func (l *latencies) add(query bool, ns int64) {
	l.mu.Lock()
	if query {
		l.queryNs = append(l.queryNs, ns)
	} else {
		l.updNs = append(l.updNs, ns)
	}
	l.mu.Unlock()
}

func mean(ns []int64) time.Duration {
	if len(ns) == 0 {
		return 0
	}
	var sum int64
	for _, v := range ns {
		sum += v
	}
	return time.Duration(sum / int64(len(ns)))
}

// MixResult is one row of the E7 table.
type MixResult struct {
	Consistency core.Consistency
	Procs       int
	ReadFrac    float64
	QueryMean   time.Duration
	UpdateMean  time.Duration
	Throughput  float64 // m-operations per second
	QueryMsgs   int64
}

// RunMix drives one protocol configuration through a workload mix and
// measures latency and throughput. Exported for bench_test.go.
func RunMix(cons core.Consistency, procs, objects int, mix workload.Mix, delay time.Duration, seed int64) (MixResult, error) {
	names := make([]string, objects)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	s, err := core.New(core.Config{
		Procs: procs, Objects: names, Consistency: cons,
		Seed: seed, MinDelay: delay, MaxDelay: delay,
		DisableRecording: true,
	})
	if err != nil {
		return MixResult{}, err
	}
	defer s.Close()

	plans := mix.Plan(procs, objects, rand.New(rand.NewSource(seed)))
	var lat latencies
	var wg sync.WaitGroup
	errs := make(chan error, procs)
	start := time.Now()
	for p := 0; p < procs; p++ {
		proc, err := s.Process(p)
		if err != nil {
			return MixResult{}, err
		}
		wg.Add(1)
		go func(plan []workload.Op, proc *core.Process) {
			defer wg.Done()
			for _, op := range plan {
				var pr mop.Procedure
				if op.Query {
					pr = mop.MultiRead{Xs: op.Objs}
				} else {
					pr = planUpdate(op)
				}
				t0 := time.Now()
				if _, err := proc.Execute(pr); err != nil {
					errs <- err
					return
				}
				lat.add(op.Query, time.Since(t0).Nanoseconds())
			}
		}(plans[p], proc)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return MixResult{}, err
	default:
	}

	total := procs * mix.OpsPerProc
	return MixResult{
		Consistency: cons,
		Procs:       procs,
		ReadFrac:    mix.ReadFrac,
		QueryMean:   mean(lat.queryNs),
		UpdateMean:  mean(lat.updNs),
		Throughput:  float64(total) / elapsed.Seconds(),
		QueryMsgs:   s.QueryTraffic().Messages,
	}, nil
}

func planUpdate(op workload.Op) mop.Procedure {
	writes := make(map[object.ID]object.Value, len(op.Objs))
	for i, x := range op.Objs {
		writes[x] = op.Vals[i]
	}
	return mop.MAssign{Writes: writes}
}

// runE7 prints the protocol cost table: for each (consistency, procs,
// read fraction), mean query latency, mean update latency and
// throughput, under a fixed per-message delay so round trips are visible.
//
// Expected shape: m-SC query latency ~ 0 (local) regardless of n; m-lin
// query latency ~ 2x the one-way delay (a round trip) and grows slightly
// with n (stragglers); update latency comparable for both.
func runE7(w io.Writer, quick bool) error {
	delay := 2 * time.Millisecond
	procsList := []int{2, 4, 8}
	fracs := []float64{0.5, 0.9}
	ops := 30
	if quick {
		procsList = []int{2, 4}
		fracs = []float64{0.5}
		ops = 10
		delay = time.Millisecond
	}

	t := newTable(w)
	t.row("consistency", "procs", "read%", "query mean", "update mean", "ops/s", "query msgs")
	for _, cons := range []core.Consistency{core.MSequential, core.MLinearizable} {
		for _, procs := range procsList {
			for _, frac := range fracs {
				res, err := RunMix(cons, procs, 8,
					workload.Mix{ReadFrac: frac, Span: 2, OpsPerProc: ops}, delay, 42)
				if err != nil {
					return err
				}
				t.row(res.Consistency, res.Procs, int(frac*100),
					res.QueryMean.Round(time.Microsecond),
					res.UpdateMean.Round(time.Microsecond),
					fmt.Sprintf("%.0f", res.Throughput),
					res.QueryMsgs)
			}
		}
	}
	t.flush()
	fmt.Fprintln(w, "expected shape: m-sequential query latency ~0 and 0 query msgs;")
	fmt.Fprintln(w, "m-linearizable query latency ~1 RTT with 2n msgs per query; update latency similar for both")
	return nil
}
