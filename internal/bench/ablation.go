package bench

import (
	"fmt"
	"io"
	"time"

	"moc/internal/checker"
	"moc/internal/core"
	"moc/internal/history"
	"moc/internal/workload"
)

// runAblationBroadcast compares the two atomic-broadcast substrates
// (DESIGN.md ablation 1): the fixed sequencer pays 1 + n messages per
// broadcast and two network hops of latency; the Lamport all-ack
// protocol pays n-1 data messages plus (n-1)^2 acks but has no special
// process.
func runAblationBroadcast(w io.Writer, quick bool) error {
	procsList := []int{2, 4, 8}
	ops := 20
	if quick {
		procsList = []int{2, 4}
		ops = 8
	}
	t := newTable(w)
	t.row("procs", "broadcast", "msgs/update", "update mean", "ops/s")
	for _, procs := range procsList {
		for _, kind := range []core.BroadcastKind{core.SequencerBroadcast, core.LamportBroadcast, core.TokenBroadcast} {
			res, msgsPerUpdate, err := runBroadcastWorkload(procs, ops, kind)
			if err != nil {
				return err
			}
			name := "sequencer"
			switch kind {
			case core.LamportBroadcast:
				name = "lamport"
			case core.TokenBroadcast:
				name = "token"
			}
			t.row(procs, name, msgsPerUpdate, res.UpdateMean.Round(time.Microsecond),
				fmt.Sprintf("%.0f", res.Throughput))
		}
	}
	t.flush()
	fmt.Fprintln(w, "expected shape: lamport message count grows quadratically with procs; sequencer")
	fmt.Fprintln(w, "linearly; token pays rotation latency but few messages per update under load")
	return nil
}

func runBroadcastWorkload(procs, ops int, kind core.BroadcastKind) (MixResult, int64, error) {
	names := []string{"x0", "x1", "x2", "x3"}
	s, err := core.New(core.Config{
		Procs: procs, Objects: names, Consistency: core.MSequential,
		Broadcast: kind, Seed: 21, MinDelay: 200 * time.Microsecond,
		MaxDelay: 200 * time.Microsecond, DisableRecording: true,
	})
	if err != nil {
		return MixResult{}, 0, err
	}
	defer s.Close()

	start := time.Now()
	var updNs []int64
	for i := 0; i < ops; i++ {
		for pi := 0; pi < procs; pi++ {
			p, err := s.Process(pi)
			if err != nil {
				return MixResult{}, 0, err
			}
			t0 := time.Now()
			if err := p.Write(0, int64(i)); err != nil {
				return MixResult{}, 0, err
			}
			updNs = append(updNs, time.Since(t0).Nanoseconds())
		}
	}
	elapsed := time.Since(start)
	msgs, _ := s.BroadcastCost()
	total := int64(ops * procs)
	return MixResult{
		UpdateMean: mean(updNs),
		Throughput: float64(total) / elapsed.Seconds(),
	}, msgs / total, nil
}

// runAblationChecker compares the exact decider's search heuristics and
// memoization (DESIGN.md ablation 3) on the adversarial torn-reader
// family.
func runAblationChecker(w io.Writer, quick bool) error {
	sizes := []int{5, 7, 9}
	if quick {
		sizes = []int{4, 6}
	}
	t := newTable(w)
	t.row("writers", "variant", "nodes", "memo hits", "time")
	for _, n := range sizes {
		h, err := workload.TornReaderFamily(n)
		if err != nil {
			return err
		}
		variants := []struct {
			name string
			opts checker.Options
		}{
			{"time-order + memo", checker.Options{Heuristic: checker.TimeOrder}},
			{"id-order + memo", checker.Options{Heuristic: checker.IDOrder}},
			{"time-order, no memo", checker.Options{Heuristic: checker.TimeOrder, DisableMemo: true, MaxNodes: 3_000_000}},
		}
		for _, v := range variants {
			start := time.Now()
			res, err := checker.Decide(h, history.MSequentialBase, &v.opts)
			elapsed := time.Since(start)
			cell := fmt.Sprintf("%d", res.Stats.Nodes)
			if err != nil {
				cell = fmt.Sprintf("%d (budget hit)", res.Stats.Nodes)
			}
			t.row(n, v.name, cell, res.Stats.MemoHits, elapsed)
		}
	}
	t.flush()
	fmt.Fprintln(w, "expected shape: memoization collapses the factorial search to ~2^n states;")
	fmt.Fprintln(w, "without it the node count explodes (budget-capped)")
	return nil
}
