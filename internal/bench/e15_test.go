package bench

import (
	"testing"

	"moc/internal/transport"
)

// benchE15Cell runs one sweep cell under the Go benchmark harness; the
// CI bench smoke (`go test -bench=. -benchtime=1x ./internal/bench/...`)
// uses it to keep the batched update path exercised per PR.
func benchE15Cell(b *testing.B, transportKind string, batch int) {
	b.Helper()
	p := e15Sizes(true)
	for i := 0; i < b.N; i++ {
		res, err := runE15Cell(transportKind, transport.CodecBinary, batch, p, 42)
		if err != nil {
			b.Fatalf("runE15Cell(%s, %d): %v", transportKind, batch, err)
		}
		b.ReportMetric(res.OpsPerSec, "ops/s")
		if batch > 1 && res.Flushes == 0 {
			b.Fatalf("batching enabled but no flushes metered: %+v", res)
		}
	}
}

func BenchmarkE15UnbatchedTCP(b *testing.B) { benchE15Cell(b, "tcp", 1) }
func BenchmarkE15Batch8TCP(b *testing.B)    { benchE15Cell(b, "tcp", 8) }
func BenchmarkE15Batch8Sim(b *testing.B)    { benchE15Cell(b, "sim", 8) }
