package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"moc/internal/core"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/transport"
)

// E15 measures the batched, pipelined update path: closed-loop update
// throughput and latency percentiles as a function of the broadcast
// batch size, over the simulated network and over real loopback TCP.
// Every cell drives the same pipelined workload (MaxInflight worker
// loops per process, update-only); only the batching knobs vary, with
// batch size 1 being exactly the unbatched seed behavior.

// E15Result is one cell of the batch-size sweep.
type E15Result struct {
	Transport string // "sim" or "tcp"
	BatchSize int
	Ops       int
	OpsPerSec float64
	P50, P99  time.Duration
	Mean      time.Duration
	// Flushes/Batches/BatchedUpdates are the abcast.Batcher meters:
	// total flushes, multi-update flushes, and updates riding in them.
	Flushes, Batches, BatchedUpdates int64
	// NetBatches/NetBatchedFrames are the transport writer's coalescing
	// meters (zero on the simulated network).
	NetBatches, NetBatchedFrames int64
}

// e15Params sizes the sweep.
type e15Params struct {
	batchSizes []int
	procs      int
	inflight   int
	opsPerProc int
	window     time.Duration
}

func e15Sizes(quick bool) e15Params {
	p := e15Params{
		batchSizes: []int{1, 2, 4, 8, 16, 32},
		procs:      3,
		inflight:   32,
		opsPerProc: 960,
		window:     200 * time.Microsecond,
	}
	if quick {
		p.batchSizes = []int{1, 8}
		p.opsPerProc = 160
	}
	return p
}

// percentile returns the q-quantile of ns (nearest-rank on a sorted
// copy), zero when empty.
func percentile(ns []int64, q float64) time.Duration {
	if len(ns) == 0 {
		return 0
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return time.Duration(sorted[idx])
}

// runE15Cell runs one sweep cell: an update-only closed loop with
// p.inflight synchronous worker loops per process (the pipelining lanes
// admit exactly that many concurrent updates), measuring per-operation
// latency from issue to completion. codec selects the TCP frame-body
// encoding (ignored on the simulated network); E15 always uses the
// default, E17 sweeps it.
func runE15Cell(transportKind, codec string, batch int, p e15Params, seed int64) (E15Result, error) {
	const objects = 8
	names := make([]string, objects)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	cfg := core.Config{
		Procs:            p.procs,
		Objects:          names,
		Consistency:      core.MSequential,
		Seed:             seed,
		DisableRecording: true,
		MaxInflight:      p.inflight,
	}
	if batch > 1 {
		cfg.BatchSize = batch
		cfg.BatchWindow = p.window
	}
	var cluster *transport.Cluster
	if transportKind == "tcp" {
		var err error
		cluster, err = transport.NewClusterWithCodec(p.procs, codec)
		if err != nil {
			return E15Result{}, err
		}
		defer cluster.Close()
		cfg.Links = cluster.Factory()
	} else {
		cfg.MaxDelay = 100 * time.Microsecond
	}
	s, err := core.New(cfg)
	if err != nil {
		return E15Result{}, err
	}
	defer s.Close()

	opsPerWorker := p.opsPerProc / p.inflight
	if opsPerWorker == 0 {
		opsPerWorker = 1
	}
	total := p.procs * p.inflight * opsPerWorker
	latNs := make([][]int64, p.procs*p.inflight)
	errs := make(chan error, p.procs*p.inflight)
	var wg sync.WaitGroup
	start := time.Now()
	for pid := 0; pid < p.procs; pid++ {
		proc, err := s.Process(pid)
		if err != nil {
			return E15Result{}, err
		}
		for w := 0; w < p.inflight; w++ {
			wg.Add(1)
			slot := pid*p.inflight + w
			go func(pid, w, slot int, proc *core.Process) {
				defer wg.Done()
				ns := make([]int64, 0, opsPerWorker)
				for i := 0; i < opsPerWorker; i++ {
					op := mop.WriteOp{
						X: object.ID((w*opsPerWorker + i) % objects),
						V: object.Value(1000*pid + 10*w + i),
					}
					t0 := time.Now()
					if _, err := proc.Exec(op, core.ExecOptions{}); err != nil {
						errs <- err
						return
					}
					ns = append(ns, time.Since(t0).Nanoseconds())
				}
				latNs[slot] = ns
			}(pid, w, slot, proc)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return E15Result{}, err
	default:
	}

	var all []int64
	for _, ns := range latNs {
		all = append(all, ns...)
	}
	flushes, batches, batched := s.BatchStats()
	net := s.NetStats()
	return E15Result{
		Transport: transportKind,
		BatchSize: batch,
		Ops:       total,
		OpsPerSec: float64(total) / elapsed.Seconds(),
		P50:       percentile(all, 0.50),
		P99:       percentile(all, 0.99),
		Mean:      mean(all),
		Flushes:   flushes, Batches: batches, BatchedUpdates: batched,
		NetBatches: net.Batches, NetBatchedFrames: net.BatchedFrames,
	}, nil
}

// e15Results runs the full sweep, shared by the text and JSON emitters.
func e15Results(quick bool) ([]E15Result, e15Params, error) {
	p := e15Sizes(quick)
	var results []E15Result
	for _, tk := range []string{"sim", "tcp"} {
		for _, batch := range p.batchSizes {
			res, err := runE15Cell(tk, transport.CodecBinary, batch, p, 42)
			if err != nil {
				return nil, p, err
			}
			results = append(results, res)
		}
	}
	return results, p, nil
}

// runE15 prints the batch-size sweep.
//
// Expected shape: throughput rises with batch size on both transports —
// one ordered broadcast (and, over TCP, one coalesced socket write)
// carries many updates, so the per-message protocol cost is amortized —
// with ≥ 2x gain by batch 8 over loopback TCP; p50 latency stays within
// the same order because the window only delays an update while its
// batch fills under continuous pipelined load.
func runE15(w io.Writer, quick bool) error {
	results, p, err := e15Results(quick)
	if err != nil {
		return err
	}
	base := make(map[string]float64)
	for _, r := range results {
		if r.BatchSize == 1 {
			base[r.Transport] = r.OpsPerSec
		}
	}
	tb := newTable(w)
	tb.row("transport", "batch", "ops/s", "speedup", "p50", "p99", "flushes", "batches", "batched-upd", "net-batches")
	for _, r := range results {
		speed := "1.00x"
		if b := base[r.Transport]; b > 0 {
			speed = fmt.Sprintf("%.2fx", r.OpsPerSec/b)
		}
		tb.row(r.Transport, r.BatchSize,
			fmt.Sprintf("%.0f", r.OpsPerSec), speed,
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			r.Flushes, r.Batches, r.BatchedUpdates, r.NetBatches)
	}
	tb.flush()
	fmt.Fprintf(w, "procs=%d inflight=%d updates/proc=%d window=%v (batch 1 = unbatched seed path)\n",
		p.procs, p.inflight, p.opsPerProc, p.window)
	fmt.Fprintln(w, "expected shape: ops/s grows with batch size (one ordered broadcast carries many")
	fmt.Fprintln(w, "updates; over TCP the writer additionally coalesces frames), >= 2x by batch 8 on")
	fmt.Fprintln(w, "loopback TCP; p50 stays in the same order under continuous pipelined load")
	return nil
}

// e15JSON emits the sweep as a report, one series per transport.
func e15JSON(quick bool) (Report, error) {
	results, p, err := e15Results(quick)
	if err != nil {
		return Report{}, err
	}
	series := map[string]*Series{}
	var order []string
	for _, r := range results {
		s, ok := series[r.Transport]
		if !ok {
			s = &Series{Name: r.Transport}
			series[r.Transport] = s
			order = append(order, r.Transport)
		}
		s.Points = append(s.Points, map[string]any{
			"batchSize":        r.BatchSize,
			"ops":              r.Ops,
			"opsPerSec":        r.OpsPerSec,
			"p50Ns":            durNs(r.P50),
			"p99Ns":            durNs(r.P99),
			"meanNs":           durNs(r.Mean),
			"flushes":          r.Flushes,
			"batches":          r.Batches,
			"batchedUpdates":   r.BatchedUpdates,
			"netBatches":       r.NetBatches,
			"netBatchedFrames": r.NetBatchedFrames,
		})
	}
	var out []Series
	for _, name := range order {
		out = append(out, *series[name])
	}
	return Report{
		Parameters: map[string]any{
			"consistency": core.MSequential.String(),
			"procs":       p.procs, "inflight": p.inflight,
			"updatesPerProc": p.opsPerProc, "batchSizes": p.batchSizes,
			"windowNs": durNs(p.window), "objects": 8, "seed": 42,
			"transports": []string{"sim", "tcp-loopback"},
		},
		Series: out,
	}, nil
}
