package bench

import (
	"fmt"
	"io"
	"time"

	"moc/internal/core"
	"moc/internal/object"
)

// runE9 measures the Section 5.2 closing optimization: query responses
// carrying only the relevant objects instead of whole copies. The
// per-query byte cost of the whole-copy protocol grows linearly with the
// total number of objects; the relevant-only cost depends only on the
// query footprint.
func runE9(w io.Writer, quick bool) error {
	objectCounts := []int{8, 32, 128}
	if quick {
		objectCounts = []int{8, 32}
	}
	const procs = 4
	const queries = 20
	const span = 2

	t := newTable(w)
	t.row("objects", "mode", "bytes/query", "msgs/query")
	for _, objs := range objectCounts {
		for _, relevant := range []bool{false, true} {
			bytesPerQ, msgsPerQ, err := measureQueryCost(objs, procs, queries, span, relevant)
			if err != nil {
				return err
			}
			mode := "whole-copy (Fig. 6)"
			if relevant {
				mode = "relevant-only"
			}
			t.row(objs, mode, bytesPerQ, msgsPerQ)
		}
	}
	t.flush()
	fmt.Fprintln(w, "expected shape: whole-copy bytes grow linearly with object count;")
	fmt.Fprintln(w, "relevant-only bytes stay flat (footprint-sized); message counts identical")
	return nil
}

func measureQueryCost(objs, procs, queries, span int, relevant bool) (int64, int64, error) {
	names := make([]string, objs)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	s, err := core.New(core.Config{
		Procs: procs, Objects: names, Consistency: core.MLinearizable,
		Seed: 3, RelevantOnly: relevant, DisableRecording: true,
	})
	if err != nil {
		return 0, 0, err
	}
	defer s.Close()
	p, err := s.Process(0)
	if err != nil {
		return 0, 0, err
	}
	// Touch some state first so responses carry real versions.
	if err := p.Write(0, 1); err != nil {
		return 0, 0, err
	}
	before := s.QueryTraffic()
	for i := 0; i < queries; i++ {
		xs := make([]object.ID, span)
		for j := range xs {
			xs[j] = object.ID((i + j) % objs)
		}
		if _, err := p.MultiRead(xs...); err != nil {
			return 0, 0, err
		}
	}
	after := s.QueryTraffic()
	return (after.Bytes - before.Bytes) / int64(queries),
		(after.Messages - before.Messages) / int64(queries), nil
}

// runE10 quantifies the Section 1 argument against modelling
// multi-methods with one aggregate object ("this results in loss of
// locality and concurrency"): the same DCAS workload is run natively
// (two-object m-operations) and in aggregate emulation (every operation
// spans all objects). The aggregate loses on every axis the paper
// names: broadcast payloads, query payloads, and the ability of the
// relevant-only optimization to help at all.
func runE10(w io.Writer, quick bool) error {
	objectCounts := []int{8, 32}
	if quick {
		objectCounts = []int{8}
	}
	const procs = 4
	const opsPerProc = 10

	t := newTable(w)
	t.row("objects", "model", "bcast bytes/op", "query bytes/op", "wall time")
	for _, objs := range objectCounts {
		for _, aggregate := range []bool{false, true} {
			res, err := runDCASWorkload(objs, procs, opsPerProc, aggregate)
			if err != nil {
				return err
			}
			model := "native multi-object"
			if aggregate {
				model = "aggregate object"
			}
			t.row(objs, model, res.bcastBytesPerOp, res.queryBytesPerOp, res.elapsed.Round(time.Millisecond))
		}
	}
	t.flush()
	fmt.Fprintln(w, "expected shape: aggregate-object costs grow with total object count;")
	fmt.Fprintln(w, "native multi-object costs depend only on the operations' footprints")
	return nil
}

type dcasResult struct {
	bcastBytesPerOp int64
	queryBytesPerOp int64
	elapsed         time.Duration
}

// runDCASWorkload performs pairwise DCAS increments plus pair audits.
// In aggregate mode every operation is widened to span all objects —
// the "aggregate object that represents the state of all objects" the
// paper warns against.
func runDCASWorkload(objs, procs, opsPerProc int, aggregate bool) (dcasResult, error) {
	names := make([]string, objs)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	s, err := core.New(core.Config{
		Procs: procs, Objects: names, Consistency: core.MLinearizable,
		Seed: 5, RelevantOnly: true, DisableRecording: true,
	})
	if err != nil {
		return dcasResult{}, err
	}
	defer s.Close()

	allObjs := make([]object.ID, objs)
	for i := range allObjs {
		allObjs[i] = object.ID(i)
	}

	start := time.Now()
	var updates, queriesDone int64
	for i := 0; i < opsPerProc; i++ {
		for pi := 0; pi < procs; pi++ {
			p, err := s.Process(pi)
			if err != nil {
				return dcasResult{}, err
			}
			x1 := object.ID((pi * 2) % objs)
			x2 := object.ID((pi*2 + 1) % objs)
			if aggregate {
				// The aggregate model forces every operation to span the
				// whole state.
				vals, err := p.MultiRead(allObjs...)
				if err != nil {
					return dcasResult{}, err
				}
				queriesDone++
				writes := make(map[object.ID]object.Value, objs)
				for j, x := range allObjs {
					v := vals[j]
					if x == x1 || x == x2 {
						v++
					}
					writes[x] = v
				}
				if err := p.MAssign(writes); err != nil {
					return dcasResult{}, err
				}
				updates++
			} else {
				vals, err := p.MultiRead(x1, x2)
				if err != nil {
					return dcasResult{}, err
				}
				queriesDone++
				if _, err := p.DCAS(x1, x2, vals[0], vals[1], vals[0]+1, vals[1]+1); err != nil {
					return dcasResult{}, err
				}
				updates++
			}
		}
	}
	elapsed := time.Since(start)

	qt := s.QueryTraffic()
	var res dcasResult
	res.elapsed = elapsed
	if queriesDone > 0 {
		res.queryBytesPerOp = qt.Bytes / queriesDone
	}
	if _, bcastBytes := s.BroadcastCost(); updates > 0 {
		res.bcastBytesPerOp = bcastBytes / updates
	}
	return res, nil
}
