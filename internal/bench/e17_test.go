package bench

import (
	"testing"

	"moc/internal/transport"
)

// benchE17Cell runs one codec-sweep cell under the Go benchmark
// harness; the CI bench smoke uses it to keep both wire codecs
// exercised end-to-end per PR.
func benchE17Cell(b *testing.B, codec string, batch int) {
	b.Helper()
	p := e17Sizes(true)
	for i := 0; i < b.N; i++ {
		res, err := runE15Cell("tcp", codec, batch, p, 42)
		if err != nil {
			b.Fatalf("runE15Cell(tcp, %s, %d): %v", codec, batch, err)
		}
		b.ReportMetric(res.OpsPerSec, "ops/s")
	}
}

func BenchmarkE17BinaryBatch8TCP(b *testing.B) { benchE17Cell(b, transport.CodecBinary, 8) }
func BenchmarkE17GobBatch8TCP(b *testing.B)    { benchE17Cell(b, transport.CodecGob, 8) }
