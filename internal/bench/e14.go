package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"moc/internal/core"
	"moc/internal/mop"
	"moc/internal/transport"
	"moc/internal/workload"
)

// RunMixTCP mirrors RunMix over real loopback TCP: an in-process
// cluster of n transport nodes (one kernel socket mesh, one node per
// protocol process) carries every protocol message through the full
// serialize → TCP → deserialize path, and per-message latency is
// whatever the kernel provides instead of a simulated delay. Process
// p's operations are issued at store process p, whose endpoints live on
// transport node p — the same placement cmd/mocd uses, minus the
// process boundary.
func RunMixTCP(cons core.Consistency, procs, objects int, mix workload.Mix, seed int64) (MixResult, error) {
	names := make([]string, objects)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	cluster, err := transport.NewCluster(procs)
	if err != nil {
		return MixResult{}, err
	}
	defer cluster.Close()
	s, err := core.New(core.Config{
		Procs: procs, Objects: names, Consistency: cons,
		Seed: seed, Links: cluster.Factory(),
		DisableRecording: true,
	})
	if err != nil {
		return MixResult{}, err
	}
	defer s.Close()

	plans := mix.Plan(procs, objects, rand.New(rand.NewSource(seed)))
	var lat latencies
	var wg sync.WaitGroup
	errs := make(chan error, procs)
	start := time.Now()
	for p := 0; p < procs; p++ {
		proc, err := s.Process(p)
		if err != nil {
			return MixResult{}, err
		}
		wg.Add(1)
		go func(plan []workload.Op, proc *core.Process) {
			defer wg.Done()
			for _, op := range plan {
				var pr mop.Procedure
				if op.Query {
					pr = mop.MultiRead{Xs: op.Objs}
				} else {
					pr = planUpdate(op)
				}
				t0 := time.Now()
				if _, err := proc.Exec(pr, core.ExecOptions{}); err != nil {
					errs <- err
					return
				}
				lat.add(op.Query, time.Since(t0).Nanoseconds())
			}
		}(plans[p], proc)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return MixResult{}, err
	default:
	}

	total := procs * mix.OpsPerProc
	return MixResult{
		Consistency: cons,
		Procs:       procs,
		ReadFrac:    mix.ReadFrac,
		QueryMean:   mean(lat.queryNs),
		UpdateMean:  mean(lat.updNs),
		Throughput:  float64(total) / elapsed.Seconds(),
		QueryMsgs:   s.QueryTraffic().Messages,
	}, nil
}

// e14Results runs every cell of the TCP cost table. The dimensions are
// E7's; the simulated per-message delay does not apply (loopback TCP
// sets the pace).
func e14Results(quick bool) ([]MixResult, e7Params, error) {
	p := e7Sizes(quick)
	var results []MixResult
	for _, cons := range []core.Consistency{core.MSequential, core.MLinearizable} {
		for _, procs := range p.procsList {
			for _, frac := range p.fracs {
				res, err := RunMixTCP(cons, procs, 8,
					workload.Mix{ReadFrac: frac, Span: 2, OpsPerProc: p.ops}, 42)
				if err != nil {
					return nil, p, err
				}
				results = append(results, res)
			}
		}
	}
	return results, p, nil
}

// runE14 reruns the E7 cost model over real loopback TCP instead of the
// simulated network.
//
// Expected shape: the same latency gap as E7, set by real kernel
// round-trips instead of a configured delay — m-SC queries stay local
// (microseconds, 0 query messages); m-lin queries pay a genuine TCP
// round-trip to every process (2n query messages) and sit well above
// the m-SC query latency; update latency is comparable for both.
func runE14(w io.Writer, quick bool) error {
	results, _, err := e14Results(quick)
	if err != nil {
		return err
	}
	mixTable(w, results)
	fmt.Fprintln(w, "expected shape: same gap as E7 over real TCP — m-sequential query latency is")
	fmt.Fprintln(w, "local (~µs, 0 query msgs); m-linearizable queries pay a kernel round-trip to")
	fmt.Fprintln(w, "all n processes (2n msgs); update latency similar for both")
	return nil
}

// e14JSON emits the TCP cost table as a report, one series per
// consistency.
func e14JSON(quick bool) (Report, error) {
	results, p, err := e14Results(quick)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Parameters: map[string]any{
			"transport": "tcp-loopback", "procs": p.procsList, "readFracs": p.fracs,
			"opsPerProc": p.ops, "objects": 8, "span": 2, "seed": 42,
		},
		Series: mixSeries(results),
	}, nil
}
