package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"moc/internal/core"
	"moc/internal/network"
	"moc/internal/object"
)

// runE13 measures availability under crash-stop process failures: the
// same query workload is issued at the live processes while 0, 1 or f
// (= ⌈n/2⌉−1) processes are crashed, for the m-SC and m-lin protocols.
//
// Expected shape: m-SC queries are local (action A3), so crashes of
// other processes leave their latency untouched. m-lin queries round-trip
// to all n processes (A3–A6); with crashed responders each query must
// burn its full deadline-and-retry budget, (1+QueryRetries)×QueryTimeout,
// before completing with the live responses — latency jumps from ~1 RTT
// to the deadline budget, but completion stays 100% (the bounded-query
// change; Figure 6's unbounded wait would hang forever). Every recorded
// history must still pass its consistency verification: a response set
// containing the issuer (self-delivery is immune to crash windows) plus
// any process that delivered the latest relevant update merges to a
// fresh-enough version vector (P5.6–P5.8).
func runE13(w io.Writer, quick bool) error {
	rows, procs, err := e13Results(quick)
	if err != nil {
		return err
	}
	t := newTable(w)
	t.row("protocol", "crashed", "queries", "completed", "query mean", "query max")
	for _, r := range rows {
		t.row(r.cons, fmt.Sprintf("%d/%d", r.crashed, procs),
			r.queries, r.completed,
			r.queryMean.Round(10*time.Microsecond), r.queryMax.Round(10*time.Microsecond))
		if r.completed != r.queries {
			return fmt.Errorf("bench: E13 %s with %d crashed: only %d/%d queries completed",
				r.cons, r.crashed, r.completed, r.queries)
		}
	}
	t.flush()
	fmt.Fprintln(w, "expected shape: m-SC query latency is flat (local queries); m-lin queries")
	fmt.Fprintln(w, "pay the (1+retries)x deadline budget once responders are dead, but complete")
	fmt.Fprintln(w, "100% either way, and every history still verifies")
	return nil
}

// e13JSON emits the availability measurement as a report, one series
// per consistency.
func e13JSON(quick bool) (Report, error) {
	rows, procs, err := e13Results(quick)
	if err != nil {
		return Report{}, err
	}
	byCons := map[string]*Series{}
	var order []string
	for _, r := range rows {
		name := r.cons.String()
		s, ok := byCons[name]
		if !ok {
			s = &Series{Name: name}
			byCons[name] = s
			order = append(order, name)
		}
		s.Points = append(s.Points, map[string]any{
			"crashed":     r.crashed,
			"queries":     r.queries,
			"completed":   r.completed,
			"queryMeanNs": durNs(r.queryMean),
			"queryMaxNs":  durNs(r.queryMax),
		})
	}
	rep := Report{
		Parameters: map[string]any{
			"procs": procs, "seed": 13,
			"queryTimeoutNs": durNs(5 * time.Millisecond), "queryRetries": 1,
		},
	}
	for _, name := range order {
		rep.Series = append(rep.Series, *byCons[name])
	}
	return rep, nil
}

// e13Row is one availability-table row.
type e13Row struct {
	cons                core.Consistency
	crashed             int
	queries, completed  int
	queryMean, queryMax time.Duration
}

// e13Results runs the availability measurement. Shared by the text and
// JSON emitters.
func e13Results(quick bool) ([]e13Row, int, error) {
	const procs = 5
	queriesPerProc := 4
	if quick {
		queriesPerProc = 2
	}
	crashCounts := []int{0, 1, procs/2 - (1 - procs%2)} // 0, 1, ⌈n/2⌉−1
	if crashCounts[2] <= crashCounts[1] {
		crashCounts = crashCounts[:2]
	}

	var rows []e13Row
	for _, cons := range []core.Consistency{core.MSequential, core.MLinearizable} {
		for _, k := range crashCounts {
			r := e13Row{cons: cons, crashed: k}
			var total time.Duration
			cfg := core.Config{
				Procs:       procs,
				Objects:     []string{"x0", "x1", "x2", "x3"},
				Consistency: cons,
				Seed:        13,
				MaxDelay:    time.Millisecond,
				// Fixed bounded-query budget across all rows so the k=0
				// baseline and the degraded rows are comparable.
				QueryTimeout: 5 * time.Millisecond,
				QueryRetries: 1,
			}
			if k > 0 {
				// The last k processes crash right after startup and never
				// restart; the workload runs at the survivors only.
				faults := &network.Faults{}
				for c := 0; c < k; c++ {
					faults.Crashes = append(faults.Crashes, network.Crash{
						Proc: procs - 1 - c, At: time.Millisecond,
					})
				}
				cfg.Faults = faults
			}
			s, err := core.New(cfg)
			if err != nil {
				return nil, 0, err
			}
			// Let the crash instants pass so every query below runs in the
			// degraded configuration.
			time.Sleep(5 * time.Millisecond)

			live := procs - k
			var mu sync.Mutex
			var wg sync.WaitGroup
			errCh := make(chan error, live)
			for pi := 0; pi < live; pi++ {
				p, perr := s.Process(pi)
				if perr != nil {
					s.Close()
					return nil, 0, perr
				}
				wg.Add(1)
				go func(pi int, p *core.Process) {
					defer wg.Done()
					if err := p.Write(object.ID(pi%4), object.Value(pi+1)); err != nil {
						errCh <- err
						return
					}
					for q := 0; q < queriesPerProc; q++ {
						t0 := time.Now()
						_, err := p.MultiRead(object.ID(q%4), object.ID((q+1)%4))
						d := time.Since(t0)
						mu.Lock()
						if err == nil {
							r.completed++
							total += d
							if d > r.queryMax {
								r.queryMax = d
							}
						}
						r.queries++
						mu.Unlock()
						if err != nil {
							errCh <- err
							return
						}
					}
				}(pi, p)
			}
			wg.Wait()
			select {
			case err := <-errCh:
				s.Close()
				return nil, 0, err
			default:
			}
			res, err := s.Verify()
			s.Close()
			if err != nil {
				return nil, 0, err
			}
			if !res.OK {
				return nil, 0, fmt.Errorf("bench: E13 %s run with %d crashed fails verification", cons, k)
			}
			if r.completed > 0 {
				r.queryMean = total / time.Duration(r.completed)
			}
			rows = append(rows, r)
		}
	}

	return rows, procs, nil
}
