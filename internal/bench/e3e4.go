package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"moc/internal/checker"
	"moc/internal/history"
	"moc/internal/object"
	"moc/internal/workload"
)

// runE3 measures the complexity separation of Theorems 1-2 vs Theorem 7
// and Misra's polynomial special case:
//
//   - the exact decider on the torn-reader NO-family grows exponentially
//     in the number of writers;
//   - the same instances, viewed as WW-constrained executions (the
//     atomic-broadcast order supplied), are decided by the polynomial
//     Theorem 7 legality check;
//   - single-object register histories of comparable size are decided in
//     polynomial time (Misra [19]).
func runE3(w io.Writer, quick bool) error {
	sizes := []int{3, 5, 7, 9, 11}
	if quick {
		sizes = []int{3, 5, 7}
	}

	t := newTable(w)
	t.row("writers", "exact nodes", "exact time", "Thm7 time", "exact result", "Thm7 result")
	for _, n := range sizes {
		h, err := workload.TornReaderFamily(n)
		if err != nil {
			return err
		}
		start := time.Now()
		exact, err := checker.MSequentiallyConsistent(h)
		if err != nil {
			return err
		}
		exactTime := time.Since(start)

		// The same history under the WW-constraint: updates synchronized
		// in index order (what the Figure 4 protocol would enforce).
		sync := checker.SyncFromUpdates(h, h.Updates())
		start = time.Now()
		poly, err := checker.AdmissibleUnderConstraint(h, sync, checker.WW)
		if err != nil {
			return err
		}
		polyTime := time.Since(start)
		t.row(n, exact.Stats.Nodes, exactTime, polyTime,
			admissible(exact.Admissible), admissible(poly.Admissible))
	}
	t.flush()

	fmt.Fprintln(w, "\nMisra contrast: single-object histories with known reads-from (polynomial):")
	t2 := newTable(w)
	t2.row("operations", "poly time", "exact nodes", "agreement")
	rng := rand.New(rand.NewSource(7))
	sizes2 := []int{10, 20, 40}
	if quick {
		sizes2 = []int{10, 20}
	}
	for _, n := range sizes2 {
		h := randomRegisterHistory(rng, n)
		start := time.Now()
		fast, err := checker.SingleObjectLinearizable(h)
		if err != nil {
			return err
		}
		polyTime := time.Since(start)
		exact, err := checker.MLinearizable(h)
		if err != nil {
			return err
		}
		agree := "yes"
		if fast.Admissible != exact.Admissible {
			agree = "NO"
		}
		t2.row(n, polyTime, exact.Stats.Nodes, agree)
	}
	t2.flush()
	return nil
}

func admissible(b bool) string {
	if b {
		return "admissible"
	}
	return "not admissible"
}

// randomRegisterHistory builds a single-object read/write history with
// randomized concurrency for the Misra contrast. Reads observe values
// whose writers were invoked before the read responds, so the base
// relation stays acyclic and the deciders actually search.
func randomRegisterHistory(rng *rand.Rand, n int) *history.History {
	reg := object.MustRegistry("x")
	b := history.NewBuilder(reg)
	procs := 3
	clock := make([]int64, procs)
	type write struct {
		v   object.Value
		inv int64
	}
	writes := []write{{v: object.Initial, inv: -1}}
	next := object.Value(1)
	for i := 0; i < n; i++ {
		p := rng.Intn(procs)
		inv := clock[p] + int64(rng.Intn(4))
		resp := inv + 1 + int64(rng.Intn(6))
		clock[p] = resp + 1
		if rng.Intn(2) == 0 {
			b.Add(p, inv, resp, history.W(0, next))
			writes = append(writes, write{v: next, inv: inv})
			next++
		} else {
			// Candidates: values whose writer was invoked before this
			// read responds (could plausibly be observed); prefer recent
			// ones so most, but not all, histories are admissible.
			var cands []object.Value
			for _, wv := range writes {
				if wv.inv < resp {
					cands = append(cands, wv.v)
				}
			}
			pick := cands[len(cands)-1-rng.Intn(minInt(3, len(cands)))]
			b.Add(p, inv, resp, history.R(0, pick))
		}
	}
	h, err := b.Build()
	if err != nil {
		// Regenerate on the rare unbuildable draw.
		return randomRegisterHistory(rng, n)
	}
	return h
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runE4 randomizes Theorem 7: over many WW-constrained runs (intact and
// corrupted), the polynomial legality decision must agree with the exact
// decider, and admissible ⟺ legal.
func runE4(w io.Writer, quick bool) error {
	trials := 200
	if quick {
		trials = 40
	}
	rng := rand.New(rand.NewSource(11))
	var intactAdmissible, corruptedRejected, corrupted, agree, total int
	for i := 0; i < trials; i++ {
		run, err := workload.GenerateConstrainedRun(workload.ConstrainedRunConfig{
			Procs: 3, Objects: 3, OpsPerProc: 3, ReadFrac: 0.5, MaxSpan: 2,
		}, rng)
		if err != nil {
			return err
		}
		type cse struct {
			h       *history.History
			corrupt bool
		}
		cases := []cse{{run.H, false}}
		if c, ok := workload.CorruptRead(run, rng); ok {
			cases = append(cases, cse{c, true})
		}
		for _, c := range cases {
			sync := checker.SyncFromUpdates(c.h, run.UpdateOrder)
			poly, err := checker.AdmissibleUnderConstraint(c.h, sync, checker.WW)
			if err != nil {
				return err
			}
			exact, err := checker.Decide(c.h, history.MSequentialBase, &checker.Options{ExtraOrder: sync})
			if err != nil {
				return err
			}
			total++
			if poly.Admissible == exact.Admissible {
				agree++
			}
			if !c.corrupt && poly.Admissible {
				intactAdmissible++
			}
			if c.corrupt {
				corrupted++
				if !poly.Admissible {
					corruptedRejected++
				}
			}
		}
	}
	t := newTable(w)
	t.row("histories checked", total)
	t.row("Theorem 7 agrees with exact decider", fmt.Sprintf("%d/%d", agree, total))
	t.row("intact runs admissible", fmt.Sprintf("%d/%d", intactAdmissible, total-corrupted))
	t.row("corrupted runs rejected", fmt.Sprintf("%d/%d", corruptedRejected, corrupted))
	t.flush()
	if agree != total {
		return fmt.Errorf("bench: Theorem 7 disagreement (%d/%d)", agree, total)
	}
	if intactAdmissible != total-corrupted {
		return fmt.Errorf("bench: an intact WW-constrained run was inadmissible")
	}
	return nil
}
