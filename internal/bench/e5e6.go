package bench

import (
	"fmt"
	"io"
	"time"

	"moc/internal/checker"
	"moc/internal/core"
	"moc/internal/object"
)

// runE5 exercises the Figure 4 protocol (m-sequential consistency) in the
// style of Figure 5: writers race with a local reader. Every recorded
// history must verify m-sequentially consistent (Theorem 15); some local
// reads are stale, so a fraction of histories fail m-linearizability —
// the separation between the two conditions.
func runE5(w io.Writer, quick bool) error {
	trials := 60
	if quick {
		trials = 15
	}
	var stale, mscOK, mlinOK int
	for trial := 0; trial < trials; trial++ {
		s, err := core.New(core.Config{
			Procs: 3, Objects: []string{"x", "y"}, Consistency: core.MSequential,
			Seed: int64(trial), MaxDelay: 15 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		p0, _ := s.Process(0)
		p1, _ := s.Process(1)
		p2, _ := s.Process(2)
		x, _ := s.Object("x")
		y, _ := s.Object("y")

		// Figure 5's shape: two updates, then an immediate local query at
		// a third process.
		if err := p0.MAssign(map[object.ID]object.Value{x: 1, y: 3}); err != nil {
			return err
		}
		if err := p1.Write(x, 4); err != nil {
			return err
		}
		got, err := p2.MultiRead(x, y)
		if err != nil {
			return err
		}
		if got[0] != 4 || got[1] != 3 {
			stale++
		}

		res, err := s.Verify()
		if err != nil {
			return err
		}
		if res.OK {
			mscOK++
		}
		lin, err := checker.MLinearizable(res.History)
		if err != nil {
			return err
		}
		if lin.Admissible {
			mlinOK++
		}
		s.Close()
	}
	t := newTable(w)
	t.row("trials", trials)
	t.row("local query observed stale state", fmt.Sprintf("%d/%d", stale, trials))
	t.row("verified m-sequentially consistent (Theorem 15)", fmt.Sprintf("%d/%d", mscOK, trials))
	t.row("also m-linearizable", fmt.Sprintf("%d/%d", mlinOK, trials))
	t.flush()
	if mscOK != trials {
		return fmt.Errorf("bench: an m-SC protocol run failed verification")
	}
	fmt.Fprintln(w, "expected shape: 100% m-SC; staleness > 0 and m-linearizability < 100% (local queries)")
	return nil
}

// runE6 exercises the Figure 6 protocol (m-linearizability) in the style
// of Figure 7: after an update responds, every query anywhere returns the
// new state; every recorded history verifies m-linearizable (Theorem 20).
func runE6(w io.Writer, quick bool) error {
	trials := 40
	if quick {
		trials = 10
	}
	var stale, linOK int
	for trial := 0; trial < trials; trial++ {
		s, err := core.New(core.Config{
			Procs: 3, Objects: []string{"x", "y"}, Consistency: core.MLinearizable,
			Seed: int64(trial), MaxDelay: 15 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		p0, _ := s.Process(0)
		p1, _ := s.Process(1)
		p2, _ := s.Process(2)
		x, _ := s.Object("x")
		y, _ := s.Object("y")

		// Figure 7's shape: α = w(x)1 w(y)3 at P1, β = w(x)4 at P2, then
		// a query at P3 that must observe x=4, y=3.
		if err := p0.MAssign(map[object.ID]object.Value{x: 1, y: 3}); err != nil {
			return err
		}
		if err := p1.Write(x, 4); err != nil {
			return err
		}
		got, err := p2.MultiRead(x, y)
		if err != nil {
			return err
		}
		if got[0] != 4 || got[1] != 3 {
			stale++
		}

		res, err := s.Verify()
		if err != nil {
			return err
		}
		if res.OK {
			linOK++
		}
		if trial == 0 {
			fmt.Fprintln(w, "sample trace (Figure 7 shape):")
			for _, m := range res.History.MOps()[1:] {
				fmt.Fprintf(w, "  %s\n", m)
			}
		}
		s.Close()
	}
	t := newTable(w)
	t.row("trials", trials)
	t.row("query observed stale state", fmt.Sprintf("%d/%d", stale, trials))
	t.row("verified m-linearizable (Theorem 20)", fmt.Sprintf("%d/%d", linOK, trials))
	t.flush()
	if stale != 0 {
		return fmt.Errorf("bench: m-lin query observed stale state")
	}
	if linOK != trials {
		return fmt.Errorf("bench: an m-lin protocol run failed verification")
	}
	fmt.Fprintln(w, "expected shape: 0 stale reads; 100% m-linearizable")
	return nil
}
