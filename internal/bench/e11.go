package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"moc/internal/core"
	"moc/internal/object"
)

// runE11 compares the three protocol implementations — Figure 4 (m-SC,
// replicated + broadcast), Figure 6 (m-lin, replicated + broadcast +
// query round) and the OO-constraint locking protocol (sharded, no
// broadcast) — on two workloads:
//
//   - contended: every m-operation touches the same object pair;
//   - disjoint: each process works on its own object pair.
//
// Expected shape: the locking protocol's cost tracks *per-object
// contention* — disjoint workloads recover several-fold versus contended
// ones (lock queueing disappears), while its base latency pays one RTT
// per footprint object (sequential ordered acquisition). The broadcast
// protocols are insensitive to which objects are touched — their updates
// serialize through the global total order regardless — so contended and
// disjoint rows are identical for them. This is Section 4's trade-off
// made concrete: WW-constraint systems synchronize globally, OO-
// constraint systems only where operations actually conflict.
func runE11(w io.Writer, quick bool) error {
	const procs = 4
	ops := 16
	delay := 2 * time.Millisecond
	if quick {
		ops = 6
		delay = time.Millisecond
	}

	t := newTable(w)
	t.row("protocol", "workload", "update mean", "ops/s", "verified")
	for _, cons := range []core.Consistency{core.MSequential, core.MLinearizable, core.MLinearizableLocking} {
		for _, disjoint := range []bool{false, true} {
			name := "contended"
			if disjoint {
				name = "disjoint"
			}
			res, err := runContentionWorkload(cons, procs, ops, delay, disjoint)
			if err != nil {
				return err
			}
			t.row(cons, name, res.updateMean.Round(time.Microsecond),
				fmt.Sprintf("%.0f", res.throughput), res.verified)
		}
	}
	t.flush()
	fmt.Fprintln(w, "expected shape: broadcast rows identical across workloads (global serialization);")
	fmt.Fprintln(w, "locking row recovers several-fold from contended to disjoint (per-object queueing only)")
	return nil
}

type contentionResult struct {
	updateMean time.Duration
	throughput float64
	verified   bool
}

func runContentionWorkload(cons core.Consistency, procs, ops int, delay time.Duration, disjoint bool) (contentionResult, error) {
	numObjects := 2 * procs
	names := make([]string, numObjects)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	s, err := core.New(core.Config{
		Procs: procs, Objects: names, Consistency: cons,
		Seed: 31, MinDelay: delay, MaxDelay: delay,
	})
	if err != nil {
		return contentionResult{}, err
	}
	defer s.Close()

	var mu sync.Mutex
	var updNs []int64
	var wg sync.WaitGroup
	errs := make(chan error, procs)
	start := time.Now()
	for pi := 0; pi < procs; pi++ {
		p, err := s.Process(pi)
		if err != nil {
			return contentionResult{}, err
		}
		wg.Add(1)
		go func(pi int, p *core.Process) {
			defer wg.Done()
			x1, x2 := object.ID(0), object.ID(1)
			if disjoint {
				x1, x2 = object.ID(2*pi), object.ID(2*pi+1)
			}
			for i := 0; i < ops; i++ {
				t0 := time.Now()
				err := p.MAssign(map[object.ID]object.Value{
					x1: object.Value(pi*1000 + i + 1),
					x2: object.Value(pi*1000 + i + 1),
				})
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				updNs = append(updNs, time.Since(t0).Nanoseconds())
				mu.Unlock()
			}
		}(pi, p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return contentionResult{}, err
	default:
	}

	res, err := s.Verify()
	if err != nil {
		return contentionResult{}, err
	}
	return contentionResult{
		updateMean: mean(updNs),
		throughput: float64(procs*ops) / elapsed.Seconds(),
		verified:   res.OK,
	}, nil
}
