package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"moc/internal/chaos"
)

// E18 measures availability under chaos on the real deployment: three
// mocd daemons on loopback TCP with socket-level fault injection
// (resets, frame corruption, a timed partition window), one SIGKILL at
// the phase A/B boundary and a checkpoint-transfer rejoin at B/C. A
// paced workload driven through chaos-hardened mocrpc clients records
// every attempt into a 100ms availability timeline, and the daemons'
// kill-safe trace files — including the victim's pre-kill generation —
// are merged and validated by the unchanged exact checkers. The pacing
// is deliberate: the exact checkers are exponential in the worst case,
// so the campaign bounds the merged history rather than maximizing
// throughput.

// e18Config is the seeded campaign. Quick shrinks the phases to the
// chaos-smoke sizes; the full run matches the committed BENCH_E18.json
// (~200 records, still comfortably inside exact-checker range).
func e18Config(quick bool) chaos.CampaignConfig {
	cfg := chaos.CampaignConfig{
		Cluster: chaos.ClusterConfig{
			N:           3,
			Objects:     []string{"a", "b", "c"},
			Consistency: "msc",
			Seed:        23,
			ResetProb:   0.05,
			CorruptProb: 0.05,
			// Node 1 loses its link to node 0 (the sequencer host) for a
			// window inside phase A: its updates stall and resume on heal.
			PartitionNode: 1,
			Partitions:    "0@250ms:600ms",
			// A corrupted checkpoint response is lost (the codec closes the
			// connection); bound the restart tail instead of waiting the
			// full mocd default for a straggler that will never arrive.
			RecoverWait: time.Second,
		},
		Kill:        2,
		PhaseA:      2 * time.Second,
		PhaseB:      1500 * time.Millisecond,
		PhaseC:      2 * time.Second,
		Pace:        50 * time.Millisecond,
		ReadFrac:    0.5,
		CallTimeout: 2 * time.Second,
	}
	if quick {
		cfg.PhaseA = 900 * time.Millisecond
		cfg.PhaseB = 700 * time.Millisecond
		cfg.PhaseC = 900 * time.Millisecond
		cfg.Pace = 60 * time.Millisecond
	}
	return cfg
}

// e18Results builds a mocd binary, runs the campaign, and returns the
// result — shared by the text and JSON emitters.
func e18Results(quick bool) (*chaos.CampaignResult, chaos.CampaignConfig, error) {
	cfg := e18Config(quick)
	dir, err := os.MkdirTemp("", "e18")
	if err != nil {
		return nil, cfg, err
	}
	defer os.RemoveAll(dir)
	bin, err := chaos.BuildMocd(dir, false)
	if err != nil {
		return nil, cfg, err
	}
	cfg.Cluster.MocdBin = bin
	cfg.Cluster.Dir = dir
	res, err := chaos.RunCampaign(cfg)
	if err != nil {
		if res != nil {
			for i, log := range res.Logs {
				fmt.Fprintf(os.Stderr, "E18 daemon %d output:\n%s\n", i, log)
			}
		}
		return nil, cfg, err
	}
	return res, cfg, nil
}

// runE18 prints the campaign summary and the availability timeline.
//
// Expected shape: availability stays near 100% through the partition
// window (the partitioned daemon's updates stall but retry through),
// dips for the killed daemon's share of the load across phase B, and
// returns to 100% after the checkpoint rejoin; the merged history —
// spanning the kill — is accepted by the exact checker.
func runE18(w io.Writer, quick bool) error {
	res, cfg, err := e18Results(quick)
	if err != nil {
		return err
	}
	tb := newTable(w)
	tb.row("attempts", "ok", "unavailable", "indeterminate", "p50", "p99", "records", "accepted")
	tb.row(res.Attempts, res.OK, res.Unavailable, res.Indeterminate,
		res.P50.Round(time.Microsecond), res.P99.Round(time.Microsecond),
		res.Records, res.Accepted)
	tb.flush()
	fmt.Fprintf(w, "schedule: SIGKILL node %d at %v, restart at %v; recoveries=%d\n",
		cfg.Kill, res.KillAt.Round(time.Millisecond), res.RestartAt.Round(time.Millisecond),
		res.Recoveries)
	fmt.Fprintf(w, "injected: %d resets, %d corruptions, %d partition refusals (seed %d)\n",
		res.FaultResets, res.FaultCorrupted, res.PartitionRefusals, cfg.Cluster.Seed)
	fmt.Fprintln(w, "availability timeline (ok/attempts per 100ms bucket):")
	for _, b := range res.Buckets {
		marker := ""
		if res.KillAt >= b.Start && res.KillAt < b.Start+100*time.Millisecond {
			marker = "  <- SIGKILL"
		}
		if res.RestartAt >= b.Start && res.RestartAt < b.Start+100*time.Millisecond {
			marker += "  <- restart"
		}
		fmt.Fprintf(w, "  %6v  %3d/%-3d%s\n", b.Start.Round(time.Millisecond), b.OK, b.Attempts, marker)
	}
	fmt.Fprintln(w, "expected shape: availability dips for the killed daemon's share of the load")
	fmt.Fprintln(w, "during phase B and recovers after checkpoint rejoin; the merged kill-spanning")
	fmt.Fprintln(w, "history is accepted by the unchanged exact checker")
	if !res.Accepted {
		return fmt.Errorf("E18: exact checker rejected the merged chaos history (%d records)", res.Records)
	}
	if res.Recoveries < 1 {
		return fmt.Errorf("E18: the killed daemon did not rejoin via checkpoint transfer")
	}
	return nil
}

// e18JSON emits the campaign as a report: a summary series plus the
// full availability timeline.
func e18JSON(quick bool) (Report, error) {
	res, cfg, err := e18Results(quick)
	if err != nil {
		return Report{}, err
	}
	if !res.Accepted {
		return Report{}, fmt.Errorf("E18: exact checker rejected the merged chaos history (%d records)", res.Records)
	}
	summary := Series{Name: "summary", Points: []map[string]any{{
		"attempts":          res.Attempts,
		"ok":                res.OK,
		"unavailable":       res.Unavailable,
		"indeterminate":     res.Indeterminate,
		"serverErrors":      res.ServerErrors,
		"p50Ns":             durNs(res.P50),
		"p99Ns":             durNs(res.P99),
		"killAtNs":          durNs(res.KillAt),
		"restartAtNs":       durNs(res.RestartAt),
		"recoveries":        res.Recoveries,
		"faultResets":       res.FaultResets,
		"faultCorrupted":    res.FaultCorrupted,
		"partitionRefusals": res.PartitionRefusals,
		"records":           res.Records,
		"accepted":          res.Accepted,
	}}}
	timeline := Series{Name: "availability-timeline"}
	for _, b := range res.Buckets {
		timeline.Points = append(timeline.Points, map[string]any{
			"startNs":       durNs(b.Start),
			"attempts":      b.Attempts,
			"ok":            b.OK,
			"unavailable":   b.Unavailable,
			"indeterminate": b.Indeterminate,
		})
	}
	return Report{
		Parameters: map[string]any{
			"consistency": "m-sequential",
			"daemons":     cfg.Cluster.N,
			"objects":     len(cfg.Cluster.Objects),
			"seed":        cfg.Cluster.Seed,
			"resetProb":   cfg.Cluster.ResetProb,
			"corruptProb": cfg.Cluster.CorruptProb,
			"partition": fmt.Sprintf("node %d: %s",
				cfg.Cluster.PartitionNode, cfg.Cluster.Partitions),
			"kill":          cfg.Kill,
			"phaseANs":      durNs(cfg.PhaseA),
			"phaseBNs":      durNs(cfg.PhaseB),
			"phaseCNs":      durNs(cfg.PhaseC),
			"paceNs":        durNs(cfg.Pace),
			"readFrac":      cfg.ReadFrac,
			"callTimeoutNs": durNs(cfg.CallTimeout),
			"recoverWaitNs": durNs(cfg.Cluster.RecoverWait),
			"bucketNs":      durNs(100 * time.Millisecond),
			"transport":     "tcp-loopback",
		},
		Series: []Series{summary, timeline},
	}, nil
}
