package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"moc/internal/abcast"
	"moc/internal/chaos"
	"moc/internal/history"
	"moc/internal/mlin"
	"moc/internal/mocrpc"
	"moc/internal/mop"
	"moc/internal/network"
	"moc/internal/object"
)

// E19 measures what the per-request consistency levels buy: query
// latency at ONE, QUORUM and ALL when one of three replicas is degraded.
// Two deployments of the same shape:
//
//   - Simulated: the third process's query endpoint is crashed from the
//     start (its replica still applies updates through the broadcast
//     plane). An ALL query can never gather it and force-completes at
//     the bounded-query timeout; a QUORUM query completes from the live
//     majority at network speed; a ONE query reads locally.
//   - Loopback TCP: three mocd daemons, the third started with
//     -faultdelay so every frame it sends its peers is late. An ALL
//     query pays that delay on every round; a QUORUM query completes
//     without the slow peer, which is the SC-ABD trade the redesigned
//     Exec API exposes.
//
// The claim BENCH_E19.json pins: QUORUM query p99 strictly below ALL
// query p99 with one slow or crashed peer, in both deployments.

// e19Point is one level's measured latency distribution.
type e19Point struct {
	Level          string
	N              int
	P50, P99, Mean time.Duration
}

// e19Levels are the measured levels, weakest first.
var e19Levels = []history.Level{history.LevelOne, history.LevelQuorum, history.LevelAll}

func e19Stats(level string, ns []int64) e19Point {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	var sum int64
	for _, n := range ns {
		sum += n
	}
	mean := time.Duration(0)
	if len(ns) > 0 {
		mean = time.Duration(sum / int64(len(ns)))
	}
	return e19Point{
		Level: level,
		N:     len(ns),
		P50:   percentile(ns, 0.50),
		P99:   percentile(ns, 0.99),
		Mean:  mean,
	}
}

// e19SimParams are the simulated variant's fixed parameters, shared by
// the runner and the JSON report.
var e19SimParams = struct {
	Procs        int
	MaxDelay     time.Duration
	QueryTimeout time.Duration
	Retries      int
	Crashed      int
}{Procs: 3, MaxDelay: time.Millisecond, QueryTimeout: 12 * time.Millisecond, Retries: 1, Crashed: 2}

// e19Sim runs the crashed-peer variant on the simulated network.
func e19Sim(quick bool) ([]e19Point, error) {
	reg := object.Sequential(4)
	b, err := abcast.NewSequencer(abcast.SequencerConfig{
		Procs: e19SimParams.Procs, Seed: 19, MaxDelay: e19SimParams.MaxDelay,
	})
	if err != nil {
		return nil, err
	}
	p, err := mlin.New(mlin.Config{
		Procs: e19SimParams.Procs, Reg: reg, Broadcast: b,
		Seed: 20, MaxDelay: e19SimParams.MaxDelay,
		QueryTimeout: e19SimParams.QueryTimeout, QueryRetries: e19SimParams.Retries,
		// The victim's query endpoint is down from the start; the
		// broadcast plane is a separate network, so its replica keeps
		// applying updates — it just never answers (or acks).
		Faults: &network.Faults{Crashes: []network.Crash{{Proc: e19SimParams.Crashed}}},
	})
	if err != nil {
		return nil, err
	}
	defer p.Close()

	for x := 0; x < reg.Len(); x++ {
		if _, err := p.Exec(0, mop.WriteOp{X: object.ID(x), V: object.Value(x + 1)}, mop.ExecOptions{}); err != nil {
			return nil, fmt.Errorf("E19 sim seed: %w", err)
		}
	}

	counts := map[history.Level]int{
		history.LevelOne:    400,
		history.LevelQuorum: 400,
		history.LevelAll:    120, // each force-completes at the timeout budget
	}
	if quick {
		counts = map[history.Level]int{
			history.LevelOne: 60, history.LevelQuorum: 60, history.LevelAll: 20,
		}
	}
	var out []e19Point
	for _, level := range e19Levels {
		// Warm the path (first query pays setup noise).
		for i := 0; i < 3; i++ {
			if _, err := p.Exec(0, mop.ReadOp{X: 0}, mop.ExecOptions{Level: level}); err != nil {
				return nil, err
			}
		}
		ns := make([]int64, 0, counts[level])
		for i := 0; i < counts[level]; i++ {
			start := time.Now()
			rec, err := p.Exec(0, mop.ReadOp{X: object.ID(i % reg.Len())}, mop.ExecOptions{Level: level})
			if err != nil {
				return nil, fmt.Errorf("E19 sim %s query: %w", level, err)
			}
			ns = append(ns, time.Since(start).Nanoseconds())
			if want := object.Value(i%reg.Len() + 1); rec.Result.(object.Value) != want {
				return nil, fmt.Errorf("E19 sim %s query read %v, want %v", level, rec.Result, want)
			}
		}
		out = append(out, e19Stats(level.String(), ns))
	}
	return out, nil
}

// e19TCPParams are the loopback-TCP variant's fixed parameters.
var e19TCPParams = struct {
	N            int
	SlowNode     int
	FaultDelay   time.Duration
	QueryTimeout time.Duration
}{N: 3, SlowNode: 2, FaultDelay: 25 * time.Millisecond, QueryTimeout: 400 * time.Millisecond}

// e19TCP runs the slow-peer variant on a real mocd cluster.
func e19TCP(quick bool) ([]e19Point, error) {
	dir, err := os.MkdirTemp("", "e19")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	bin, err := chaos.BuildMocd(dir, false)
	if err != nil {
		return nil, err
	}
	cluster, err := chaos.Launch(chaos.ClusterConfig{
		MocdBin: bin, Dir: dir,
		N:           e19TCPParams.N,
		Objects:     []string{"a", "b", "c", "d"},
		Consistency: "mlin",
		Seed:        19,
		// The slow daemon still answers — QueryTimeout only backstops a
		// genuinely lost round and sits well above the injected delay.
		QueryTimeout: e19TCPParams.QueryTimeout,
		SlowNode:     e19TCPParams.SlowNode,
		FaultDelay:   e19TCPParams.FaultDelay,
		RecoverWait:  500 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	c, err := mocrpc.Dial(cluster.ClientAddrs()[0], 10*time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	objs := []string{"a", "b", "c", "d"}
	if _, err := c.Exec("massign", objs, []int64{1, 2, 3, 4}, ""); err != nil {
		return nil, fmt.Errorf("E19 tcp seed: %w", err)
	}

	perLevel := 200
	if quick {
		perLevel = 40
	}
	var out []e19Point
	for _, level := range e19Levels {
		lvl := level.String()
		for i := 0; i < 3; i++ { // warm the path
			if _, err := c.Exec("read", []string{"a"}, nil, lvl); err != nil {
				return nil, err
			}
		}
		ns := make([]int64, 0, perLevel)
		for i := 0; i < perLevel; i++ {
			start := time.Now()
			resp, err := c.Exec("read", []string{objs[i%len(objs)]}, nil, lvl)
			if err != nil {
				return nil, fmt.Errorf("E19 tcp %s query: %w", lvl, err)
			}
			ns = append(ns, time.Since(start).Nanoseconds())
			if resp.Level != lvl {
				return nil, fmt.Errorf("E19 tcp %s query certified %q — the slow peer was not merely slow", lvl, resp.Level)
			}
			if resp.Value == nil || *resp.Value != int64(i%len(objs)+1) {
				return nil, fmt.Errorf("E19 tcp %s query read %v", lvl, resp.Value)
			}
		}
		out = append(out, e19Stats(lvl, ns))
	}
	return out, nil
}

// e19Check pins the experiment's claim on one variant's points.
func e19Check(variant string, pts []e19Point) error {
	byLevel := map[string]e19Point{}
	for _, pt := range pts {
		byLevel[pt.Level] = pt
	}
	q, a := byLevel[history.LevelQuorum.String()], byLevel[history.LevelAll.String()]
	if q.N == 0 || a.N == 0 {
		return fmt.Errorf("E19 %s: missing quorum/all measurements", variant)
	}
	if q.P99 >= a.P99 {
		return fmt.Errorf("E19 %s: quorum p99 %v is not strictly below all p99 %v with a degraded peer",
			variant, q.P99, a.P99)
	}
	return nil
}

// runE19 prints both variants' latency tables.
//
// Expected shape: ONE at local-read speed, QUORUM at the fast
// majority's round-trip, ALL held up by the degraded peer — by the
// force-complete timeout budget in the simulated variant, by the
// injected frame delay on TCP.
func runE19(w io.Writer, quick bool) error {
	sim, err := e19Sim(quick)
	if err != nil {
		return err
	}
	tcp, err := e19TCP(quick)
	if err != nil {
		return err
	}
	for _, v := range []struct {
		name string
		pts  []e19Point
	}{
		{fmt.Sprintf("simulated, query endpoint of process %d crashed (query timeout %v × %d retries)",
			e19SimParams.Crashed, e19SimParams.QueryTimeout, e19SimParams.Retries), sim},
		{fmt.Sprintf("loopback TCP, daemon %d slowed by %v per outbound frame",
			e19TCPParams.SlowNode, e19TCPParams.FaultDelay), tcp},
	} {
		fmt.Fprintf(w, "%s:\n", v.name)
		tb := newTable(w)
		tb.row("level", "queries", "p50", "p99", "mean")
		for _, pt := range v.pts {
			tb.row(pt.Level, pt.N,
				pt.P50.Round(time.Microsecond), pt.P99.Round(time.Microsecond),
				pt.Mean.Round(time.Microsecond))
		}
		tb.flush()
	}
	fmt.Fprintln(w, "expected shape: ONE reads locally, QUORUM completes from the live majority,")
	fmt.Fprintln(w, "ALL pays for the degraded peer — the timeout budget when it is crashed, the")
	fmt.Fprintln(w, "injected delay when it is slow")
	if err := e19Check("sim", sim); err != nil {
		return err
	}
	return e19Check("tcp", tcp)
}

// e19JSON emits both variants as one report.
func e19JSON(quick bool) (Report, error) {
	sim, err := e19Sim(quick)
	if err != nil {
		return Report{}, err
	}
	tcp, err := e19TCP(quick)
	if err != nil {
		return Report{}, err
	}
	if err := e19Check("sim", sim); err != nil {
		return Report{}, err
	}
	if err := e19Check("tcp", tcp); err != nil {
		return Report{}, err
	}
	series := make([]Series, 0, 2)
	for _, v := range []struct {
		name string
		pts  []e19Point
	}{{"sim-crashed-peer", sim}, {"tcp-slow-peer", tcp}} {
		s := Series{Name: v.name}
		for _, pt := range v.pts {
			s.Points = append(s.Points, map[string]any{
				"level":  pt.Level,
				"n":      pt.N,
				"p50Ns":  durNs(pt.P50),
				"p99Ns":  durNs(pt.P99),
				"meanNs": durNs(pt.Mean),
			})
		}
		series = append(series, s)
	}
	return Report{
		Parameters: map[string]any{
			"consistency":       "m-linearizable",
			"levels":            []string{"one", "quorum", "all"},
			"simProcs":          e19SimParams.Procs,
			"simCrashedProc":    e19SimParams.Crashed,
			"simMaxDelayNs":     durNs(e19SimParams.MaxDelay),
			"simQueryTimeoutNs": durNs(e19SimParams.QueryTimeout),
			"simQueryRetries":   e19SimParams.Retries,
			"tcpDaemons":        e19TCPParams.N,
			"tcpSlowNode":       e19TCPParams.SlowNode,
			"tcpFaultDelayNs":   durNs(e19TCPParams.FaultDelay),
			"tcpQueryTimeoutNs": durNs(e19TCPParams.QueryTimeout),
			"transport":         "sim + tcp-loopback",
		},
		Series: series,
	}, nil
}
