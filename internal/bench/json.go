package bench

import (
	"fmt"
	"time"
)

// Report is the machine-readable result of one experiment run, written
// by `mocbench -json` as BENCH_<id>.json. Experiments that measure
// (rather than trace figures) attach a JSON builder; the text and JSON
// paths share the same measurement code, so a report is the data behind
// the printed table, not a re-run.
type Report struct {
	Experiment string         `json:"experiment"`
	Title      string         `json:"title"`
	Quick      bool           `json:"quick"`
	Parameters map[string]any `json:"parameters"`
	Series     []Series       `json:"series"`
}

// Series is one named sequence of measurement points.
type Series struct {
	Name   string           `json:"name"`
	Points []map[string]any `json:"points"`
}

// RunJSON runs the measurement behind experiment id and returns its
// report. Experiments without a JSON builder (the figure traces) return
// an error naming the ones that have one.
func RunJSON(id string, quick bool) (Report, error) {
	for _, e := range Experiments() {
		if e.ID != id {
			continue
		}
		if e.JSON == nil {
			return Report{}, fmt.Errorf("bench: experiment %s has no JSON report (supported: %v)", id, jsonIDs())
		}
		rep, err := e.JSON(quick)
		if err != nil {
			return Report{}, err
		}
		rep.Experiment, rep.Title, rep.Quick = e.ID, e.Title, quick
		return rep, nil
	}
	return Report{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// jsonIDs lists the experiments that support JSON reports.
func jsonIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		if e.JSON != nil {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

// mixPoint renders one MixResult as a JSON measurement point.
func mixPoint(r MixResult) map[string]any {
	return map[string]any{
		"consistency":  r.Consistency.String(),
		"procs":        r.Procs,
		"readFrac":     r.ReadFrac,
		"queryMeanNs":  r.QueryMean.Nanoseconds(),
		"updateMeanNs": r.UpdateMean.Nanoseconds(),
		"opsPerSec":    r.Throughput,
		"queryMsgs":    r.QueryMsgs,
	}
}

// durNs converts for JSON points (0 stays 0).
func durNs(d time.Duration) int64 { return d.Nanoseconds() }
