//go:build !race

package bench

import (
	"testing"

	"moc/internal/transport"
)

// TestE17EncodeCostSeparatesCodecs pins the send-path claim the
// experiment exists to document: the binary codec encodes a frame with
// zero heap allocations, gob does not. Excluded under the race
// detector, which disables sync.Pool reuse and so charges the pooled
// frame buffer to every encode.
func TestE17EncodeCostSeparatesCodecs(t *testing.T) {
	bin, err := e17EncodeCost(transport.CodecBinary)
	if err != nil {
		t.Fatalf("binary encode cost: %v", err)
	}
	if bin.AllocsPerOp != 0 {
		t.Fatalf("binary encode allocs/frame = %g, want 0", bin.AllocsPerOp)
	}
	gob, err := e17EncodeCost(transport.CodecGob)
	if err != nil {
		t.Fatalf("gob encode cost: %v", err)
	}
	if gob.AllocsPerOp <= bin.AllocsPerOp {
		t.Fatalf("gob encode allocs/frame = %g, want more than binary's %g",
			gob.AllocsPerOp, bin.AllocsPerOp)
	}
}
