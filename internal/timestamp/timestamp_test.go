package timestamp

import (
	"testing"
	"testing/quick"

	"moc/internal/object"
)

func TestNewIsAllZero(t *testing.T) {
	ts := New(4)
	if len(ts) != 4 {
		t.Fatalf("len = %d, want 4", len(ts))
	}
	for i, v := range ts {
		if v != 0 {
			t.Fatalf("entry %d = %d, want 0", i, v)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	ts := New(2)
	c := ts.Clone()
	c.Bump(0)
	if ts.Get(0) != 0 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestBumpAndGetSet(t *testing.T) {
	ts := New(3)
	ts.Bump(1)
	ts.Bump(1)
	ts.Set(2, 7)
	if ts.Get(0) != 0 || ts.Get(1) != 2 || ts.Get(2) != 7 {
		t.Fatalf("ts = %v", ts)
	}
}

func TestPointwiseOrder(t *testing.T) {
	a := TS{1, 2, 3}
	b := TS{1, 3, 3}
	if !a.LessEq(b) || a.Equal(b) {
		t.Fatal("expected a ≤ b and a ≠ b")
	}
	if !a.Less(b) {
		t.Fatal("expected a < b")
	}
	if b.Less(a) || b.LessEq(a) {
		t.Fatal("b should not be ≤ a")
	}
	if !a.LessEq(a) || a.Less(a) {
		t.Fatal("reflexivity of ≤ / irreflexivity of < violated")
	}
}

func TestIncomparableVectors(t *testing.T) {
	a := TS{1, 0}
	b := TS{0, 1}
	if a.LessEq(b) || b.LessEq(a) {
		t.Fatal("incomparable vectors reported as ordered")
	}
	if a.Comparable(b) {
		t.Fatal("Comparable = true for incomparable vectors")
	}
	if !a.Comparable(a) {
		t.Fatal("Comparable = false for equal vectors")
	}
}

func TestDifferentLengthsIncomparable(t *testing.T) {
	a := TS{1, 2}
	b := TS{1, 2, 3}
	if a.Equal(b) || a.LessEq(b) || b.LessEq(a) {
		t.Fatal("vectors of different lengths must be incomparable")
	}
}

func TestLexLess(t *testing.T) {
	cases := []struct {
		a, b TS
		want bool
	}{
		{TS{1, 0}, TS{0, 9}, false},
		{TS{0, 9}, TS{1, 0}, true},
		{TS{1, 2}, TS{1, 2}, false},
		{TS{1, 2}, TS{1, 3}, true},
		{TS{1}, TS{1, 0}, true},
	}
	for _, c := range cases {
		if got := c.a.LexLess(c.b); got != c.want {
			t.Errorf("LexLess(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMergeMax(t *testing.T) {
	a := TS{1, 5, 0}
	b := TS{3, 2, 0}
	a.MergeMax(b)
	want := TS{3, 5, 0}
	if !a.Equal(want) {
		t.Fatalf("MergeMax = %v, want %v", a, want)
	}
}

func TestMergeMaxShorterOther(t *testing.T) {
	a := TS{1, 1, 1}
	a.MergeMax(TS{5})
	if !a.Equal(TS{5, 1, 1}) {
		t.Fatalf("MergeMax with shorter vector = %v", a)
	}
}

func TestSumAndString(t *testing.T) {
	ts := TS{1, 2, 3}
	if ts.Sum() != 6 {
		t.Fatalf("Sum = %d, want 6", ts.Sum())
	}
	if got := ts.String(); got != "[1 2 3]" {
		t.Fatalf("String = %q", got)
	}
}

func TestBumpMakesStrictlyGreater(t *testing.T) {
	ts := New(3)
	before := ts.Clone()
	ts.Bump(object.ID(2))
	if !before.Less(ts) {
		t.Fatal("Bump did not produce a strictly greater vector")
	}
}

// Property: MergeMax is an upper bound of both operands and idempotent.
func TestMergeMaxProperties(t *testing.T) {
	f := func(xs, ys [4]uint8) bool {
		a, b := fromArray(xs), fromArray(ys)
		m := a.Clone()
		m.MergeMax(b)
		if !a.LessEq(m) || !b.LessEq(m) {
			return false
		}
		again := m.Clone()
		again.MergeMax(b)
		return again.Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: pointwise ≤ is antisymmetric and transitive on random vectors.
func TestPointwisePartialOrderProperties(t *testing.T) {
	f := func(xs, ys, zs [4]uint8) bool {
		a, b, c := fromArray(xs), fromArray(ys), fromArray(zs)
		if a.LessEq(b) && b.LessEq(a) && !a.Equal(b) {
			return false // antisymmetry
		}
		if a.LessEq(b) && b.LessEq(c) && !a.LessEq(c) {
			return false // transitivity
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LexLess is a strict total order (trichotomy) on equal-length
// vectors.
func TestLexTotalOrderProperty(t *testing.T) {
	f := func(xs, ys [4]uint8) bool {
		a, b := fromArray(xs), fromArray(ys)
		lt, gt, eq := a.LexLess(b), b.LexLess(a), a.Equal(b)
		count := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fromArray(xs [4]uint8) TS {
	ts := New(4)
	for i, x := range xs {
		ts[i] = int64(x)
	}
	return ts
}
