// Package timestamp implements the per-object version vectors that the
// Section 5 protocols of Mittal & Garg (1998) associate with every
// m-operation: "The timestamp is a vector of integers with one entry for
// every object. Intuitively, it represents the version of an object."
//
// The package provides the exact order relations the paper's proofs use:
//
//   - pointwise ≤ and < (P5.3–P5.8, D5.1–D5.7): ts ≤ ts' iff every entry
//     of ts is ≤ the corresponding entry of ts'; ts < ts' iff ts ≤ ts' and
//     they differ;
//   - lexicographic comparison, which the paper mentions for ordering;
//   - componentwise merge (action A5 of Figure 6 keeps the freshest
//     version of every object when combining query responses).
package timestamp

import (
	"fmt"
	"strings"

	"moc/internal/object"
)

// TS is a version vector with one version counter per registered object.
// The zero-length TS is only valid for a system with zero objects; create
// instances with New.
type TS []int64

// New returns the all-zero timestamp for n objects, the version vector of
// the imaginary initial m-operation.
func New(n int) TS { return make(TS, n) }

// Clone returns an independent copy of ts.
func (ts TS) Clone() TS {
	out := make(TS, len(ts))
	copy(out, ts)
	return out
}

// Bump increments the version of object x (the "ts[x]++" of action A2).
func (ts TS) Bump(x object.ID) { ts[x]++ }

// Get returns the version of object x.
func (ts TS) Get(x object.ID) int64 { return ts[x] }

// Set assigns version v to object x.
func (ts TS) Set(x object.ID, v int64) { ts[x] = v }

// Equal reports whether ts and other agree on every entry. Timestamps of
// different lengths are never equal.
func (ts TS) Equal(other TS) bool {
	if len(ts) != len(other) {
		return false
	}
	for i := range ts {
		if ts[i] != other[i] {
			return false
		}
	}
	return true
}

// LessEq reports the paper's pointwise order: ts ≤ other iff every entry
// of ts is less than or equal to the corresponding entry of other.
// Vectors of different lengths are incomparable.
func (ts TS) LessEq(other TS) bool {
	if len(ts) != len(other) {
		return false
	}
	for i := range ts {
		if ts[i] > other[i] {
			return false
		}
	}
	return true
}

// Less reports the paper's pointwise strict order: ts ≤ other and
// ts ≠ other.
func (ts TS) Less(other TS) bool {
	return ts.LessEq(other) && !ts.Equal(other)
}

// Comparable reports whether ts and other are ordered by the pointwise
// order in either direction. Snapshots taken along a single total order of
// updates are always comparable; divergent replicas are not.
func (ts TS) Comparable(other TS) bool {
	return ts.LessEq(other) || other.LessEq(ts)
}

// LexLess reports lexicographic order, the total order the paper mentions
// as an alternative ("We order timestamps lexicographically"). It is used
// when a deterministic tiebreak over incomparable vectors is required.
func (ts TS) LexLess(other TS) bool {
	n := len(ts)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if ts[i] != other[i] {
			return ts[i] < other[i]
		}
	}
	return len(ts) < len(other)
}

// MergeMax sets every entry of ts to the maximum of ts and other: the
// componentwise "select the most recent version for all objects" of action
// A5 in Figure 6. The receiver is modified in place.
func (ts TS) MergeMax(other TS) {
	for i := range ts {
		if i < len(other) && other[i] > ts[i] {
			ts[i] = other[i]
		}
	}
}

// Sum returns the total number of versions across all objects, i.e. the
// number of write operations applied so far. Useful as a cheap progress
// metric in tests.
func (ts TS) Sum() int64 {
	var total int64
	for _, v := range ts {
		total += v
	}
	return total
}

// String renders the vector as "[v0 v1 ...]".
func (ts TS) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range ts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(']')
	return b.String()
}
