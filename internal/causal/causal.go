// Package causal implements m-causal consistency — the weaker condition
// the paper's introduction attributes to Raynal et al's generalization of
// causal memory to multi-object transactions. It is a documented
// *extension beyond the paper's own protocols*, included to place the
// paper's conditions in the consistency hierarchy experiment (E12):
//
//	m-linearizability  ⊂  m-sequential consistency  ⊂  m-causal consistency
//
// Protocol: no global synchronization at all. Each process applies its
// own update m-operations immediately (responding locally!) and
// disseminates them with a vector-clock-stamped broadcast; receivers
// delay application until causally ready (all of the sender's earlier
// updates and everything the sender had seen are applied). Queries read
// the local replica. Concurrent updates may be applied in different
// orders at different replicas — executions are m-causally consistent
// but in general NOT m-sequentially consistent, and replicas need not
// converge.
//
// Because there is no per-object total version order, reads-from cannot
// be derived from version vectors (D5.1); writes are tagged with
// (writer process, per-writer sequence) instead, and records carry the
// tags directly.
package causal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/network"
	"moc/internal/object"
)

// Config parameterizes the protocol.
type Config struct {
	// Procs is the number of processes.
	Procs int
	// Reg is the shared-object registry.
	Reg *object.Registry
	// Seed, MinDelay and MaxDelay parameterize the dissemination network.
	Seed               int64
	MinDelay, MaxDelay time.Duration
	// Faults optionally injects delivery faults; the reliable layer then
	// keeps dissemination exactly-once (duplicates would re-apply
	// updates).
	Faults *network.Faults
	// Clock returns nanoseconds since the run origin; must be monotonic.
	Clock func() int64
}

// Protocol is a running instance.
type Protocol struct {
	cfg    Config
	net    network.Link
	states []*procState
	stop   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

type procState struct {
	mu     sync.Mutex
	values []object.Value
	tags   []mop.WriteTag // writer tag per object
	vc     []int64        // vc[q] = #updates from q applied locally
	mySeq  int64          // own update counter
	// buffered holds updates not yet causally ready.
	buffered []updateMsg
}

type updateMsg struct {
	from int
	seq  int64   // sender's update sequence (1-based)
	deps []int64 // sender's vector clock BEFORE this update, per process
	proc mop.Procedure
}

// ErrClosed is returned by Execute after Close.
var ErrClosed = errors.New("causal: protocol closed")

// New starts the protocol: one dissemination loop per process.
func New(cfg Config) (*Protocol, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("causal: invalid proc count %d", cfg.Procs)
	}
	if cfg.Reg == nil {
		return nil, errors.New("causal: registry is required")
	}
	if cfg.Clock == nil {
		origin := time.Now()
		cfg.Clock = func() int64 { return time.Since(origin).Nanoseconds() }
	}
	net, err := network.NewLink(network.Config{
		Procs:    cfg.Procs,
		Seed:     cfg.Seed,
		MinDelay: cfg.MinDelay,
		MaxDelay: cfg.MaxDelay,
		Faults:   cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		cfg:    cfg,
		net:    net,
		states: make([]*procState, cfg.Procs),
		stop:   make(chan struct{}),
	}
	for i := range p.states {
		st := &procState{
			values: make([]object.Value, cfg.Reg.Len()),
			tags:   make([]mop.WriteTag, cfg.Reg.Len()),
			vc:     make([]int64, cfg.Procs),
		}
		for x := range st.tags {
			st.tags[x] = mop.InitTag
		}
		p.states[i] = st
	}
	for i := 0; i < cfg.Procs; i++ {
		p.wg.Add(1)
		go p.deliveryLoop(i)
	}
	return p, nil
}

// Exec runs procedure pr as an m-operation of process proc. Updates
// apply locally and respond immediately; dissemination is asynchronous.
// The protocol has no replica-count knob, so only the zero consistency
// level is accepted. Callers must not invoke Exec concurrently for the
// same process.
func (p *Protocol) Exec(proc int, pr mop.Procedure, opts mop.ExecOptions) (mop.Record, error) {
	if opts.Level != history.LevelDefault {
		return mop.Record{}, fmt.Errorf("causal: consistency level %q requires an m-lin store", opts.Level)
	}
	if p.closed.Load() {
		return mop.Record{}, ErrClosed
	}
	if proc < 0 || proc >= p.cfg.Procs {
		return mop.Record{}, fmt.Errorf("causal: invalid process %d", proc)
	}
	st := p.states[proc]
	inv := p.cfg.Clock()

	st.mu.Lock()
	if !pr.MayWrite() {
		rec, err := p.applyLocked(st, pr, proc, mop.WriteTag{})
		st.mu.Unlock()
		if err != nil {
			return mop.Record{}, err
		}
		rec.Inv = inv
		rec.Resp = p.cfg.Clock()
		return rec, nil
	}

	// Update: stamp with the NEXT own sequence, apply locally, then
	// disseminate with the pre-update vector clock as dependencies.
	deps := make([]int64, len(st.vc))
	copy(deps, st.vc)
	tag := mop.WriteTag{Proc: proc, Seq: st.mySeq + 1}
	rec, err := p.applyLocked(st, pr, proc, tag)
	if err != nil {
		st.mu.Unlock()
		return mop.Record{}, err
	}
	st.mySeq++
	st.vc[proc]++
	st.mu.Unlock()

	msg := updateMsg{from: proc, seq: tag.Seq, deps: deps, proc: pr}
	for q := 0; q < p.cfg.Procs; q++ {
		if q == proc {
			continue
		}
		if err := p.net.Send(proc, q, "causal.update", msg, mop.PayloadBytes(pr)+8*p.cfg.Procs); err != nil {
			return mop.Record{}, fmt.Errorf("causal: disseminate: %w", err)
		}
	}
	rec.Inv = inv
	rec.Resp = p.cfg.Clock()
	return rec, nil
}

// applyLocked runs pr against st (locked). For updates, tag is the write
// tag to install; for queries it is ignored.
func (p *Protocol) applyLocked(st *procState, pr mop.Procedure, proc int, tag mop.WriteTag) (mop.Record, error) {
	// Updates run against the live replica but are rolled back on a
	// contract violation: an aborted update is never disseminated, so
	// leaving partial effects locally would silently diverge the
	// replicas.
	var backup []object.Value
	if pr.MayWrite() {
		backup = make([]object.Value, len(st.values))
		copy(backup, st.values)
	}
	rec := mop.NewRecorder(st.values, pr)
	result := pr.Run(rec)
	if err := rec.Err(); err != nil {
		if backup != nil {
			copy(st.values, backup)
		}
		return mop.Record{}, err
	}
	// st.tags is untouched by Run (only values change), so reading the
	// tags here still observes the pre-write state for external reads.
	sources := make(map[object.ID]mop.WriteTag)
	for _, op := range history.ExternalReads(rec.Ops()) {
		sources[op.Obj] = st.tags[op.Obj]
	}
	writeTags := make(map[object.ID]mop.WriteTag)
	for _, x := range rec.Written().IDs() {
		st.tags[x] = tag
		writeTags[x] = tag
	}
	return mop.Record{
		Proc:       proc,
		Update:     len(writeTags) > 0 || pr.MayWrite(),
		Seq:        -1,
		Ops:        rec.Ops(),
		Footprint:  pr.Footprint(),
		Result:     result,
		SourceTags: sources,
		WriteTags:  writeTags,
	}, nil
}

// deliveryLoop applies remote updates in causal order.
func (p *Protocol) deliveryLoop(proc int) {
	defer p.wg.Done()
	st := p.states[proc]
	for {
		select {
		case <-p.stop:
			return
		case raw := <-p.net.Recv(proc):
			msg, ok := raw.Payload.(updateMsg)
			if !ok {
				continue
			}
			st.mu.Lock()
			st.buffered = append(st.buffered, msg)
			p.drainLocked(st, proc)
			st.mu.Unlock()
		}
	}
}

// drainLocked applies every buffered update that is causally ready,
// repeating until a fixpoint.
func (p *Protocol) drainLocked(st *procState, proc int) {
	for progress := true; progress; {
		progress = false
		keep := st.buffered[:0]
		for _, msg := range st.buffered {
			if p.readyLocked(st, msg) {
				tag := mop.WriteTag{Proc: msg.from, Seq: msg.seq}
				// Remote application: the record is discarded (only the
				// issuer records its m-operations); a contract violation
				// was already surfaced at the issuer and the partial
				// effects are deterministic.
				_, _ = p.applyLocked(st, msg.proc, msg.from, tag)
				st.vc[msg.from]++
				progress = true
			} else {
				keep = append(keep, msg)
			}
		}
		st.buffered = keep
	}
}

// readyLocked implements the causal delivery condition: the sender's
// previous update is applied, and everything the sender had seen when it
// issued this update is applied here too.
func (p *Protocol) readyLocked(st *procState, msg updateMsg) bool {
	if st.vc[msg.from] != msg.seq-1 {
		return false
	}
	for q, d := range msg.deps {
		if q == msg.from {
			continue
		}
		if st.vc[q] < d {
			return false
		}
	}
	return true
}

// LocalVC returns a copy of process proc's vector clock (test
// instrumentation).
func (p *Protocol) LocalVC(proc int) []int64 {
	st := p.states[proc]
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]int64, len(st.vc))
	copy(out, st.vc)
	return out
}

// Traffic returns the dissemination network's counters.
func (p *Protocol) Traffic() network.Stats { return p.net.Stats() }

// Close shuts the protocol down.
func (p *Protocol) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
	p.net.Close()
	p.wg.Wait()
}
