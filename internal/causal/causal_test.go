package causal

import (
	"testing"
	"time"

	"moc/internal/mop"
	"moc/internal/object"
)

func newProtocol(t *testing.T, procs int, maxDelay time.Duration) *Protocol {
	t.Helper()
	p, err := New(Config{Procs: procs, Reg: object.Sequential(3), Seed: 7, MaxDelay: maxDelay})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Procs: 0, Reg: object.Sequential(1)}); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, err := New(Config{Procs: 1}); err == nil {
		t.Fatal("missing registry accepted")
	}
}

func TestLocalUpdateIsImmediate(t *testing.T) {
	// Causal updates respond without any round trip, even with huge
	// network delays.
	p, err := New(Config{
		Procs: 3, Reg: object.Sequential(1),
		Seed: 1, MinDelay: time.Hour, MaxDelay: 2 * time.Hour,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	start := time.Now()
	rec, err := p.Exec(0, mop.WriteOp{X: 0, V: 5}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("local update took %v", elapsed)
	}
	if rec.WriteTags[0] != (mop.WriteTag{Proc: 0, Seq: 1}) {
		t.Fatalf("write tag = %+v", rec.WriteTags[0])
	}
	// Own read sees it immediately.
	q, err := p.Exec(0, mop.ReadOp{X: 0}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if q.Result.(object.Value) != 5 {
		t.Fatalf("read = %v", q.Result)
	}
	if q.SourceTags[0] != (mop.WriteTag{Proc: 0, Seq: 1}) {
		t.Fatalf("source tag = %+v", q.SourceTags[0])
	}
}

func TestEventualDelivery(t *testing.T) {
	p := newProtocol(t, 3, time.Millisecond)
	if _, err := p.Exec(0, mop.WriteOp{X: 1, V: 9}, mop.ExecOptions{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	deadline := time.After(5 * time.Second)
	for {
		rec, err := p.Exec(2, mop.ReadOp{X: 1}, mop.ExecOptions{})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if rec.Result.(object.Value) == 9 {
			return
		}
		select {
		case <-deadline:
			t.Fatal("update never delivered")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestCausalDeliveryOrder(t *testing.T) {
	// P0 writes x then y (causally ordered). No process may ever observe
	// the y-write without the x-write.
	for trial := int64(0); trial < 25; trial++ {
		p, err := New(Config{
			Procs: 3, Reg: object.Sequential(3),
			Seed: trial, MaxDelay: 3 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := p.Exec(0, mop.WriteOp{X: 0, V: 1}, mop.ExecOptions{}); err != nil {
			t.Fatalf("w1: %v", err)
		}
		if _, err := p.Exec(0, mop.WriteOp{X: 1, V: 2}, mop.ExecOptions{}); err != nil {
			t.Fatalf("w2: %v", err)
		}
		for i := 0; i < 30; i++ {
			rec, err := p.Exec(1, mop.MultiRead{Xs: []object.ID{0, 1}}, mop.ExecOptions{})
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			vals := rec.Result.([]object.Value)
			if vals[1] == 2 && vals[0] != 1 {
				t.Fatalf("trial %d: causal violation: saw y=2 without x=1 (%v)", trial, vals)
			}
			if vals[1] == 2 {
				break
			}
		}
		p.Close()
	}
}

func TestTransitiveCausality(t *testing.T) {
	// P0 writes x; P1 reads it and then writes y: the y-write causally
	// depends on the x-write THROUGH P1's read. P2 must never see y
	// without x.
	for trial := int64(0); trial < 20; trial++ {
		p, err := New(Config{
			Procs: 3, Reg: object.Sequential(2),
			Seed: trial + 100, MaxDelay: 3 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := p.Exec(0, mop.WriteOp{X: 0, V: 1}, mop.ExecOptions{}); err != nil {
			t.Fatalf("w(x): %v", err)
		}
		// P1 waits until it sees x=1, then writes y.
		deadline := time.After(5 * time.Second)
		for {
			rec, err := p.Exec(1, mop.ReadOp{X: 0}, mop.ExecOptions{})
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if rec.Result.(object.Value) == 1 {
				break
			}
			select {
			case <-deadline:
				t.Fatal("x never reached P1")
			case <-time.After(100 * time.Microsecond):
			}
		}
		if _, err := p.Exec(1, mop.WriteOp{X: 1, V: 2}, mop.ExecOptions{}); err != nil {
			t.Fatalf("w(y): %v", err)
		}
		for i := 0; i < 50; i++ {
			rec, err := p.Exec(2, mop.MultiRead{Xs: []object.ID{0, 1}}, mop.ExecOptions{})
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			vals := rec.Result.([]object.Value)
			if vals[1] == 2 && vals[0] != 1 {
				t.Fatalf("trial %d: transitive causality violated: %v", trial, vals)
			}
			if vals[1] == 2 {
				break
			}
		}
		p.Close()
	}
}

func TestVectorClockProgress(t *testing.T) {
	p := newProtocol(t, 2, 0)
	for i := 0; i < 3; i++ {
		if _, err := p.Exec(0, mop.WriteOp{X: 0, V: object.Value(i + 1)}, mop.ExecOptions{}); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		vc := p.LocalVC(1)
		if vc[0] == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("P1 vc = %v, want [3 0]", vc)
		case <-time.After(time.Millisecond):
		}
	}
	if vc := p.LocalVC(0); vc[0] != 3 || vc[1] != 0 {
		t.Fatalf("P0 vc = %v", vc)
	}
}

func TestAbortRollsBackLocally(t *testing.T) {
	p := newProtocol(t, 2, 0)
	bad := mop.Func{
		Objects: object.NewSet(0),
		Writes:  true,
		Body: func(txn mop.Txn) any {
			txn.Write(0, 99)
			txn.Write(2, 1) // footprint escape after a write
			return nil
		},
	}
	if _, err := p.Exec(0, bad, mop.ExecOptions{}); err == nil {
		t.Fatal("violation not reported")
	}
	rec, err := p.Exec(0, mop.ReadOp{X: 0}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if rec.Result.(object.Value) != 0 {
		t.Fatalf("aborted write leaked: %v", rec.Result)
	}
}

func TestExecuteValidationAndClose(t *testing.T) {
	p, err := New(Config{Procs: 1, Reg: object.Sequential(1), Seed: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := p.Exec(7, mop.ReadOp{X: 0}, mop.ExecOptions{}); err == nil {
		t.Fatal("invalid process accepted")
	}
	p.Close()
	if _, err := p.Exec(0, mop.ReadOp{X: 0}, mop.ExecOptions{}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

func TestTrafficAccounted(t *testing.T) {
	p := newProtocol(t, 3, 0)
	if _, err := p.Exec(0, mop.WriteOp{X: 0, V: 1}, mop.ExecOptions{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if st := p.Traffic(); st.Messages != 2 { // n-1 dissemination messages
		t.Fatalf("messages = %d, want 2", st.Messages)
	}
	// Queries are free.
	if _, err := p.Exec(1, mop.ReadOp{X: 0}, mop.ExecOptions{}); err != nil {
		t.Fatalf("read: %v", err)
	}
	if st := p.Traffic(); st.Messages != 2 {
		t.Fatalf("query generated traffic: %d", st.Messages)
	}
}
