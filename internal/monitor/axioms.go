// Package monitor provides runtime verification for protocol executions,
// complementing the offline checkers:
//
//   - ValidateAxioms re-checks the Section 5 proof obligations
//     (P5.2–P5.4, P5.16/P5.17/P5.27/P5.28, and Lemma 16's real-time
//     property for m-linearizability) directly against the raw records a
//     run produced. Where the paper *proves* these properties hold for
//     its protocols, the validator *measures* that they hold for this
//     implementation — and pinpoints the first violated property if a
//     protocol change breaks one.
//
//   - Monitor (monitor.go) is a streaming checker that consumes records
//     as operations complete and flags consistency violations online,
//     without ever building the full history or running the NP-hard
//     decider.
package monitor

import (
	"fmt"
	"sort"

	"moc/internal/mop"
	"moc/internal/object"
)

// Violation describes one failed proof obligation.
type Violation struct {
	// Property names the paper's property, e.g. "P5.4".
	Property string
	// Detail is a human-readable description.
	Detail string
}

func (v Violation) String() string { return v.Property + ": " + v.Detail }

// Level selects which obligations apply.
type Level int

// Levels.
const (
	// MSCLevel checks the obligations common to both protocols.
	MSCLevel Level = iota + 1
	// MLinLevel additionally checks Lemma 16's real-time property
	// (resp(β) < inv(α) ⟹ ts(finish(β)) ≤ ts(start(α))), which only the
	// Figure 6 protocol guarantees.
	MLinLevel
)

// String names the level.
func (l Level) String() string {
	switch l {
	case MSCLevel:
		return "m-SC"
	case MLinLevel:
		return "m-lin"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ValidateAxioms checks the Section 5 properties against a quiesced
// run's records (any order; they are sorted internally). numObjects is
// the registry size. The returned slice is empty iff every obligation
// holds.
func ValidateAxioms(recs []mop.Record, numObjects int, level Level) []Violation {
	var out []Violation
	report := func(prop, format string, args ...any) {
		out = append(out, Violation{Property: prop, Detail: fmt.Sprintf(format, args...)})
	}

	sorted := make([]mop.Record, 0, len(recs))
	for _, r := range recs {
		// Tag-based records (the causal protocol) carry no version
		// vectors; the P5.x obligations are defined over the
		// version-vector protocols only.
		if r.TSStart != nil && r.TSEnd != nil {
			sorted = append(sorted, r)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Inv < sorted[j].Inv })

	// P5.16/P5.17 (and their Figure 6 counterparts P5.27/P5.28): within
	// one m-operation, written objects advance by exactly one version,
	// unwritten footprint objects not at all.
	for i, r := range sorted {
		written := writeSet(r)
		for _, x := range r.Footprint.IDs() {
			start, end := r.TSStart.Get(x), r.TSEnd.Get(x)
			if written[x] {
				if end != start+1 {
					report("P5.17", "record %d (P%d): wrote %d but version moved %d -> %d", i, r.Proc, int(x), start, end)
				}
			} else if start != end {
				report("P5.16", "record %d (P%d): did not write %d but version moved %d -> %d", i, r.Proc, int(x), start, end)
			}
		}
	}

	// P5.2/P5.13: update m-operations are totally ordered — broadcast
	// protocols stamp distinct sequence numbers; per-object protocols
	// (Seq == -1) are instead checked per object below.
	seqs := make(map[int64]int)
	for i, r := range sorted {
		if !r.Update || r.Seq < 0 {
			continue
		}
		if j, dup := seqs[r.Seq]; dup {
			report("P5.2", "records %d and %d share delivery sequence %d", j, i, r.Seq)
		}
		seqs[r.Seq] = i
	}

	// Version uniqueness: every (object, version>0) has exactly one
	// writer. This is the foundation of D5.1's reads-from derivation.
	type ov struct {
		x object.ID
		v int64
	}
	writers := make(map[ov]int)
	for i, r := range sorted {
		for x, v := range r.VersionedWrites() {
			key := ov{x, v}
			if j, dup := writers[key]; dup {
				report("D5.1", "version %d of object %d written by records %d and %d", v, int(x), j, i)
			}
			writers[key] = i
		}
	}

	// P5.3/P5.4 along process order: for consecutive m-operations β, α of
	// one process, ts(β) ≤ ts(α) on the common footprint, strictly on
	// objects α writes.
	byProc := make(map[int][]mop.Record)
	for _, r := range sorted {
		byProc[r.Proc] = append(byProc[r.Proc], r)
	}
	for p, rs := range byProc {
		for i := 1; i < len(rs); i++ {
			prev, cur := rs[i-1], rs[i]
			common := prev.Footprint.Intersect(cur.Footprint)
			curWrites := writeSet(cur)
			for _, x := range common.IDs() {
				if prev.TSEnd.Get(x) > cur.TSEnd.Get(x) {
					report("P5.3", "P%d: ts regressed on object %d: %d then %d",
						p, int(x), prev.TSEnd.Get(x), cur.TSEnd.Get(x))
				}
				if curWrites[x] && prev.TSEnd.Get(x) >= cur.TSEnd.Get(x) {
					report("P5.4", "P%d: write to %d did not advance version past predecessor (%d vs %d)",
						p, int(x), prev.TSEnd.Get(x), cur.TSEnd.Get(x))
				}
			}
		}
	}

	// P5.3/P5.4 along the ww order (broadcast-synchronized updates).
	var updates []mop.Record
	for _, r := range sorted {
		if r.Update && r.Seq >= 0 {
			updates = append(updates, r)
		}
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].Seq < updates[j].Seq })
	for i := 1; i < len(updates); i++ {
		prev, cur := updates[i-1], updates[i]
		common := prev.Footprint.Intersect(cur.Footprint)
		for _, x := range common.IDs() {
			if prev.TSEnd.Get(x) > cur.TSEnd.Get(x) {
				report("P5.3", "ww order: ts regressed on object %d between seq %d and %d",
					int(x), prev.Seq, cur.Seq)
			}
		}
		for x := range cur.VersionedWrites() {
			if common.Contains(x) && prev.TSEnd.Get(x) >= cur.TSEnd.Get(x) {
				report("P5.4", "ww order: seq %d write to %d not past seq %d", cur.Seq, int(x), prev.Seq)
			}
		}
	}

	// Lemma 16 (m-linearizability only): β responded before α was
	// invoked ⟹ ts(finish(β)) ≤ ts(start(α)) on the common footprint.
	// Only the strong restriction owes this (checker.MixedLevels):
	// queries certified LevelOne — requested ONE, or force-completed
	// below a majority — bought the m-SC guarantee only, so they neither
	// bound later records nor are bound themselves.
	if level == MLinLevel {
		for i, a := range sorted {
			if !a.Level.Strong() {
				continue
			}
			for j, b := range sorted {
				if i == j || b.Resp >= a.Inv || !b.Level.Strong() {
					continue
				}
				common := b.Footprint.Intersect(a.Footprint)
				for _, x := range common.IDs() {
					if b.TSEnd.Get(x) > a.TSStart.Get(x) {
						report("Lemma16",
							"record %d (P%d) invoked after record %d (P%d) responded but starts at version %d < %d of object %d",
							i, a.Proc, j, b.Proc, a.TSStart.Get(x), b.TSEnd.Get(x), int(x))
					}
				}
			}
		}
	}

	// Versions never exceed the number of writes observed (sanity bound).
	maxVersion := make([]int64, numObjects)
	for _, r := range sorted {
		for x, v := range r.VersionedWrites() {
			if int(x) < numObjects && v > maxVersion[x] {
				maxVersion[x] = v
			}
		}
	}
	for _, r := range sorted {
		for _, x := range r.Footprint.IDs() {
			if int(x) < numObjects && r.TSStart.Get(x) > maxVersion[x] {
				report("D5.1", "P%d read version %d of object %d but only %d versions were ever written",
					r.Proc, r.TSStart.Get(x), int(x), maxVersion[x])
			}
		}
	}
	return out
}

func writeSet(r mop.Record) map[object.ID]bool {
	out := make(map[object.ID]bool)
	for x := range r.VersionedWrites() {
		out[x] = true
	}
	return out
}
