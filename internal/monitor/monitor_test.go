package monitor

import (
	"sort"
	"sync"
	"testing"
	"time"

	"moc/internal/core"
	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/timestamp"
)

// runStore drives a mixed workload and returns its records sorted by
// response time (the monitor's feed order).
func runStore(t *testing.T, cons core.Consistency, seed int64, maxDelay time.Duration) ([]mop.Record, int) {
	t.Helper()
	s, err := core.New(core.Config{
		Procs: 3, Objects: []string{"x", "y", "z"},
		Consistency: cons, Seed: seed, MaxDelay: maxDelay,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *core.Process) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				if j%2 == 0 {
					if err := p.Write(object.ID(j%3), object.Value(i*100+j+1)); err != nil {
						t.Errorf("write: %v", err)
					}
				} else if _, err := p.MultiRead(0, 1, 2); err != nil {
					t.Errorf("read: %v", err)
				}
			}
		}(i, p)
	}
	wg.Wait()
	recs := s.Records()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Resp < recs[j].Resp })
	return recs, s.Registry().Len()
}

func TestAxiomsHoldForMLinProtocol(t *testing.T) {
	recs, n := runStore(t, core.MLinearizable, 1, 2*time.Millisecond)
	if v := ValidateAxioms(recs, n, MLinLevel); len(v) != 0 {
		t.Fatalf("violations on a correct m-lin run: %v", v)
	}
}

func TestAxiomsHoldForMSCProtocolAtMSCLevel(t *testing.T) {
	recs, n := runStore(t, core.MSequential, 2, 2*time.Millisecond)
	if v := ValidateAxioms(recs, n, MSCLevel); len(v) != 0 {
		t.Fatalf("violations on a correct m-SC run: %v", v)
	}
}

// TestAxiomsCatchStaleMSCAtMLinLevel: the m-SC protocol does NOT satisfy
// Lemma 16; a stale local read must be flagged when validated at the
// m-lin level. (This is the separation of E5, detected by the validator
// instead of the NP-hard checker.)
func TestAxiomsCatchStaleMSCAtMLinLevel(t *testing.T) {
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		s, err := core.New(core.Config{
			Procs: 2, Objects: []string{"x"}, Consistency: core.MSequential,
			Seed: seed, MaxDelay: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		p0, _ := s.Process(0)
		p1, _ := s.Process(1)
		if err := p0.Write(0, 1); err != nil {
			t.Fatalf("write: %v", err)
		}
		v, err := p1.Read(0)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		recs := s.Records()
		s.Close()
		if v != 0 {
			continue
		}
		found = true
		sort.Slice(recs, func(i, j int) bool { return recs[i].Resp < recs[j].Resp })
		violations := ValidateAxioms(recs, 1, MLinLevel)
		if len(violations) == 0 {
			t.Fatal("stale m-SC read not flagged at m-lin level")
		}
		if violations[0].Property != "Lemma16" {
			t.Fatalf("expected Lemma16 violation, got %v", violations)
		}
		// At the m-SC level the same records are clean.
		if v := ValidateAxioms(recs, 1, MSCLevel); len(v) != 0 {
			t.Fatalf("m-SC level flagged a legitimate m-SC run: %v", v)
		}
	}
	if !found {
		t.Fatal("no stale read produced in 40 trials")
	}
}

func mkRecord(proc int, update bool, seq int64, inv, resp int64, fp object.Set, start, end timestamp.TS, ops ...history.Op) mop.Record {
	return mop.Record{
		Proc: proc, Update: update, Seq: seq, Ops: ops,
		TSStart: start, TSEnd: end, Footprint: fp, Inv: inv, Resp: resp,
	}
}

func ts(vals ...int64) timestamp.TS {
	out := timestamp.New(len(vals))
	copy(out, vals)
	return out
}

func TestAxiomsDetectVersionSkip(t *testing.T) {
	// A write advancing the version by 2 violates P5.17.
	recs := []mop.Record{
		mkRecord(0, true, 0, 1, 2, object.FullSet(1), ts(0), ts(2), history.W(0, 5)),
	}
	v := ValidateAxioms(recs, 1, MSCLevel)
	if len(v) == 0 || v[0].Property != "P5.17" {
		t.Fatalf("violations = %v", v)
	}
}

func TestAxiomsDetectPhantomAdvance(t *testing.T) {
	// A query whose versions move violates P5.16.
	recs := []mop.Record{
		mkRecord(0, false, -1, 1, 2, object.FullSet(1), ts(0), ts(1), history.R(0, 0)),
	}
	v := ValidateAxioms(recs, 1, MSCLevel)
	if len(v) == 0 || v[0].Property != "P5.16" {
		t.Fatalf("violations = %v", v)
	}
}

func TestAxiomsDetectDuplicateSeq(t *testing.T) {
	recs := []mop.Record{
		mkRecord(0, true, 7, 1, 2, object.FullSet(1), ts(0), ts(1), history.W(0, 1)),
		mkRecord(1, true, 7, 3, 4, object.FullSet(1), ts(1), ts(2), history.W(0, 2)),
	}
	v := ValidateAxioms(recs, 1, MSCLevel)
	if !hasProperty(v, "P5.2") {
		t.Fatalf("violations = %v", v)
	}
}

func TestAxiomsDetectDuplicateVersionWriter(t *testing.T) {
	recs := []mop.Record{
		mkRecord(0, true, 0, 1, 2, object.FullSet(1), ts(0), ts(1), history.W(0, 1)),
		mkRecord(1, true, 1, 3, 4, object.FullSet(1), ts(0), ts(1), history.W(0, 2)),
	}
	v := ValidateAxioms(recs, 1, MSCLevel)
	if !hasProperty(v, "D5.1") {
		t.Fatalf("violations = %v", v)
	}
}

func TestAxiomsDetectProcessRegression(t *testing.T) {
	recs := []mop.Record{
		mkRecord(0, false, -1, 1, 2, object.FullSet(1), ts(5), ts(5), history.R(0, 0)),
		mkRecord(0, false, -1, 3, 4, object.FullSet(1), ts(3), ts(3), history.R(0, 0)),
	}
	v := ValidateAxioms(recs, 1, MSCLevel)
	if !hasProperty(v, "P5.3") {
		t.Fatalf("violations = %v", v)
	}
}

func TestAxiomsDetectReadOfNonexistentVersion(t *testing.T) {
	recs := []mop.Record{
		mkRecord(0, false, -1, 1, 2, object.FullSet(1), ts(9), ts(9), history.R(0, 0)),
	}
	v := ValidateAxioms(recs, 1, MSCLevel)
	if !hasProperty(v, "D5.1") {
		t.Fatalf("violations = %v", v)
	}
}

func hasProperty(vs []Violation, prop string) bool {
	for _, v := range vs {
		if v.Property == prop {
			return true
		}
	}
	return false
}

func TestMonitorCleanRun(t *testing.T) {
	recs, n := runStore(t, core.MLinearizable, 3, time.Millisecond)
	m := NewMonitor(n, MLinLevel)
	for _, rec := range recs {
		if bad := m.Observe(rec); bad != 0 {
			t.Fatalf("violation on clean record: %v", m.Violations())
		}
	}
	if v := m.Finish(); len(v) != 0 {
		t.Fatalf("Finish violations: %v", v)
	}
	if m.Observed() != len(recs) {
		t.Fatalf("Observed = %d, want %d", m.Observed(), len(recs))
	}
}

func TestMonitorMSCRunAtMSCLevel(t *testing.T) {
	recs, n := runStore(t, core.MSequential, 4, time.Millisecond)
	m := NewMonitor(n, MSCLevel)
	for _, rec := range recs {
		m.Observe(rec)
	}
	if v := m.Finish(); len(v) != 0 {
		t.Fatalf("violations on clean m-SC run: %v", v)
	}
}

func TestMonitorDetectsStaleReadOnline(t *testing.T) {
	// Hand-built stream: an update completes, then a later-invoked query
	// starts from the old version — Lemma 16 violation, caught online.
	m := NewMonitor(1, MLinLevel)
	m.Observe(mkRecord(0, true, 0, 1, 2, object.FullSet(1), ts(0), ts(1), history.W(0, 5)))
	bad := m.Observe(mkRecord(1, false, -1, 10, 11, object.FullSet(1), ts(0), ts(0), history.R(0, 0)))
	if bad == 0 || !hasProperty(m.Violations(), "Lemma16") {
		t.Fatalf("stale read not caught online: %v", m.Violations())
	}
}

func TestMonitorAllowsConcurrentStaleness(t *testing.T) {
	// A query that OVERLAPS the update (inv before the update's resp) may
	// legitimately miss it.
	m := NewMonitor(1, MLinLevel)
	m.Observe(mkRecord(0, true, 0, 1, 10, object.FullSet(1), ts(0), ts(1), history.W(0, 5)))
	bad := m.Observe(mkRecord(1, false, -1, 5, 11, object.FullSet(1), ts(0), ts(0), history.R(0, 0)))
	if bad != 0 {
		t.Fatalf("concurrent miss flagged: %v", m.Violations())
	}
}

func TestMonitorDetectsFeedOrderViolation(t *testing.T) {
	m := NewMonitor(1, MSCLevel)
	m.Observe(mkRecord(0, false, -1, 5, 9, object.FullSet(1), ts(0), ts(0), history.R(0, 0)))
	m.Observe(mkRecord(0, false, -1, 1, 2, object.FullSet(1), ts(0), ts(0), history.R(0, 0)))
	if !hasProperty(m.Violations(), "feed") {
		t.Fatalf("out-of-order feed not flagged: %v", m.Violations())
	}
}

func TestMonitorDetectsPhantomVersionAtFinish(t *testing.T) {
	m := NewMonitor(1, MSCLevel)
	m.Observe(mkRecord(0, false, -1, 1, 2, object.FullSet(1), ts(4), ts(4), history.R(0, 0)))
	v := m.Finish()
	if !hasProperty(v, "D5.1") {
		t.Fatalf("phantom version not flagged at Finish: %v", v)
	}
}

func TestMonitorDetectsDoubleEstablish(t *testing.T) {
	m := NewMonitor(1, MSCLevel)
	m.Observe(mkRecord(0, true, 0, 1, 2, object.FullSet(1), ts(0), ts(1), history.W(0, 1)))
	bad := m.Observe(mkRecord(1, true, 1, 3, 4, object.FullSet(1), ts(0), ts(1), history.W(0, 2)))
	if bad == 0 || !hasProperty(m.Violations(), "D5.1") {
		t.Fatalf("double establish not flagged: %v", m.Violations())
	}
}

func TestMonitorBoundsCheck(t *testing.T) {
	m := NewMonitor(1, MSCLevel)
	m.Observe(mkRecord(0, false, -1, 1, 2, object.NewSet(5), ts(0), ts(0)))
	if !hasProperty(m.Violations(), "bounds") {
		t.Fatalf("out-of-range object not flagged: %v", m.Violations())
	}
}

func TestMonitorSkipsTagBasedRecords(t *testing.T) {
	m := NewMonitor(1, MLinLevel)
	rec := mop.Record{
		Proc: 0, Update: true, Seq: -1,
		Ops:        []history.Op{history.W(0, 1)},
		Footprint:  object.FullSet(1),
		WriteTags:  map[object.ID]mop.WriteTag{0: {Proc: 0, Seq: 1}},
		SourceTags: map[object.ID]mop.WriteTag{},
	}
	if bad := m.Observe(rec); bad != 0 {
		t.Fatalf("tag-based record flagged: %v", m.Violations())
	}
	if m.Observed() != 1 {
		t.Fatal("tag-based record not counted")
	}
	if v := m.Finish(); len(v) != 0 {
		t.Fatalf("Finish violations: %v", v)
	}
}

func TestAxiomsSkipTagBasedRecords(t *testing.T) {
	recs := []mop.Record{{
		Proc: 0, Update: true, Seq: -1,
		Ops:       []history.Op{history.W(0, 1)},
		Footprint: object.FullSet(1),
		WriteTags: map[object.ID]mop.WriteTag{0: {Proc: 0, Seq: 1}},
	}}
	if v := ValidateAxioms(recs, 1, MLinLevel); len(v) != 0 {
		t.Fatalf("tag-based records flagged: %v", v)
	}
}
