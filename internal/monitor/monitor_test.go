package monitor

import (
	"sort"
	"sync"
	"testing"
	"time"

	"moc/internal/core"
	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/timestamp"
)

// runStore drives a mixed workload and returns its records sorted by
// response time (the monitor's feed order).
func runStore(t *testing.T, cons core.Consistency, seed int64, maxDelay time.Duration) ([]mop.Record, int) {
	t.Helper()
	s, err := core.New(core.Config{
		Procs: 3, Objects: []string{"x", "y", "z"},
		Consistency: cons, Seed: seed, MaxDelay: maxDelay,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *core.Process) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				if j%2 == 0 {
					if err := p.Write(object.ID(j%3), object.Value(i*100+j+1)); err != nil {
						t.Errorf("write: %v", err)
					}
				} else if _, err := p.MultiRead(0, 1, 2); err != nil {
					t.Errorf("read: %v", err)
				}
			}
		}(i, p)
	}
	wg.Wait()
	recs := s.Records()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Resp < recs[j].Resp })
	return recs, s.Registry().Len()
}

func TestAxiomsHoldForMLinProtocol(t *testing.T) {
	recs, n := runStore(t, core.MLinearizable, 1, 2*time.Millisecond)
	if v := ValidateAxioms(recs, n, MLinLevel); len(v) != 0 {
		t.Fatalf("violations on a correct m-lin run: %v", v)
	}
}

func TestAxiomsHoldForMSCProtocolAtMSCLevel(t *testing.T) {
	recs, n := runStore(t, core.MSequential, 2, 2*time.Millisecond)
	if v := ValidateAxioms(recs, n, MSCLevel); len(v) != 0 {
		t.Fatalf("violations on a correct m-SC run: %v", v)
	}
}

// TestAxiomsCatchStaleMSCAtMLinLevel: the m-SC protocol does NOT satisfy
// Lemma 16; a stale local read must be flagged when validated at the
// m-lin level. (This is the separation of E5, detected by the validator
// instead of the NP-hard checker.)
func TestAxiomsCatchStaleMSCAtMLinLevel(t *testing.T) {
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		s, err := core.New(core.Config{
			Procs: 2, Objects: []string{"x"}, Consistency: core.MSequential,
			Seed: seed, MaxDelay: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		p0, _ := s.Process(0)
		p1, _ := s.Process(1)
		if err := p0.Write(0, 1); err != nil {
			t.Fatalf("write: %v", err)
		}
		v, err := p1.Read(0)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		recs := s.Records()
		s.Close()
		if v != 0 {
			continue
		}
		found = true
		sort.Slice(recs, func(i, j int) bool { return recs[i].Resp < recs[j].Resp })
		violations := ValidateAxioms(recs, 1, MLinLevel)
		if len(violations) == 0 {
			t.Fatal("stale m-SC read not flagged at m-lin level")
		}
		if violations[0].Property != "Lemma16" {
			t.Fatalf("expected Lemma16 violation, got %v", violations)
		}
		// At the m-SC level the same records are clean.
		if v := ValidateAxioms(recs, 1, MSCLevel); len(v) != 0 {
			t.Fatalf("m-SC level flagged a legitimate m-SC run: %v", v)
		}
	}
	if !found {
		t.Fatal("no stale read produced in 40 trials")
	}
}

func mkRecord(proc int, update bool, seq int64, inv, resp int64, fp object.Set, start, end timestamp.TS, ops ...history.Op) mop.Record {
	return mop.Record{
		Proc: proc, Update: update, Seq: seq, Ops: ops,
		TSStart: start, TSEnd: end, Footprint: fp, Inv: inv, Resp: resp,
	}
}

func ts(vals ...int64) timestamp.TS {
	out := timestamp.New(len(vals))
	copy(out, vals)
	return out
}

func TestAxiomsDetectVersionSkip(t *testing.T) {
	// A write advancing the version by 2 violates P5.17.
	recs := []mop.Record{
		mkRecord(0, true, 0, 1, 2, object.FullSet(1), ts(0), ts(2), history.W(0, 5)),
	}
	v := ValidateAxioms(recs, 1, MSCLevel)
	if len(v) == 0 || v[0].Property != "P5.17" {
		t.Fatalf("violations = %v", v)
	}
}

func TestAxiomsDetectPhantomAdvance(t *testing.T) {
	// A query whose versions move violates P5.16.
	recs := []mop.Record{
		mkRecord(0, false, -1, 1, 2, object.FullSet(1), ts(0), ts(1), history.R(0, 0)),
	}
	v := ValidateAxioms(recs, 1, MSCLevel)
	if len(v) == 0 || v[0].Property != "P5.16" {
		t.Fatalf("violations = %v", v)
	}
}

func TestAxiomsDetectDuplicateSeq(t *testing.T) {
	recs := []mop.Record{
		mkRecord(0, true, 7, 1, 2, object.FullSet(1), ts(0), ts(1), history.W(0, 1)),
		mkRecord(1, true, 7, 3, 4, object.FullSet(1), ts(1), ts(2), history.W(0, 2)),
	}
	v := ValidateAxioms(recs, 1, MSCLevel)
	if !hasProperty(v, "P5.2") {
		t.Fatalf("violations = %v", v)
	}
}

func TestAxiomsDetectDuplicateVersionWriter(t *testing.T) {
	recs := []mop.Record{
		mkRecord(0, true, 0, 1, 2, object.FullSet(1), ts(0), ts(1), history.W(0, 1)),
		mkRecord(1, true, 1, 3, 4, object.FullSet(1), ts(0), ts(1), history.W(0, 2)),
	}
	v := ValidateAxioms(recs, 1, MSCLevel)
	if !hasProperty(v, "D5.1") {
		t.Fatalf("violations = %v", v)
	}
}

func TestAxiomsDetectProcessRegression(t *testing.T) {
	recs := []mop.Record{
		mkRecord(0, false, -1, 1, 2, object.FullSet(1), ts(5), ts(5), history.R(0, 0)),
		mkRecord(0, false, -1, 3, 4, object.FullSet(1), ts(3), ts(3), history.R(0, 0)),
	}
	v := ValidateAxioms(recs, 1, MSCLevel)
	if !hasProperty(v, "P5.3") {
		t.Fatalf("violations = %v", v)
	}
}

func TestAxiomsDetectReadOfNonexistentVersion(t *testing.T) {
	recs := []mop.Record{
		mkRecord(0, false, -1, 1, 2, object.FullSet(1), ts(9), ts(9), history.R(0, 0)),
	}
	v := ValidateAxioms(recs, 1, MSCLevel)
	if !hasProperty(v, "D5.1") {
		t.Fatalf("violations = %v", v)
	}
}

func hasProperty(vs []Violation, prop string) bool {
	for _, v := range vs {
		if v.Property == prop {
			return true
		}
	}
	return false
}

func TestMonitorCleanRun(t *testing.T) {
	recs, n := runStore(t, core.MLinearizable, 3, time.Millisecond)
	m := NewMonitor(n, MLinLevel)
	for _, rec := range recs {
		if bad := m.Observe(rec); bad != 0 {
			t.Fatalf("violation on clean record: %v", m.Violations())
		}
	}
	if v := m.Finish(); len(v) != 0 {
		t.Fatalf("Finish violations: %v", v)
	}
	if m.Observed() != len(recs) {
		t.Fatalf("Observed = %d, want %d", m.Observed(), len(recs))
	}
}

func TestMonitorMSCRunAtMSCLevel(t *testing.T) {
	recs, n := runStore(t, core.MSequential, 4, time.Millisecond)
	m := NewMonitor(n, MSCLevel)
	for _, rec := range recs {
		m.Observe(rec)
	}
	if v := m.Finish(); len(v) != 0 {
		t.Fatalf("violations on clean m-SC run: %v", v)
	}
}

func TestMonitorDetectsStaleReadOnline(t *testing.T) {
	// Hand-built stream: an update completes, then a later-invoked query
	// starts from the old version — Lemma 16 violation, caught online.
	m := NewMonitor(1, MLinLevel)
	m.Observe(mkRecord(0, true, 0, 1, 2, object.FullSet(1), ts(0), ts(1), history.W(0, 5)))
	bad := m.Observe(mkRecord(1, false, -1, 10, 11, object.FullSet(1), ts(0), ts(0), history.R(0, 0)))
	if bad == 0 || !hasProperty(m.Violations(), "Lemma16") {
		t.Fatalf("stale read not caught online: %v", m.Violations())
	}
}

func TestMonitorAllowsConcurrentStaleness(t *testing.T) {
	// A query that OVERLAPS the update (inv before the update's resp) may
	// legitimately miss it.
	m := NewMonitor(1, MLinLevel)
	m.Observe(mkRecord(0, true, 0, 1, 10, object.FullSet(1), ts(0), ts(1), history.W(0, 5)))
	bad := m.Observe(mkRecord(1, false, -1, 5, 11, object.FullSet(1), ts(0), ts(0), history.R(0, 0)))
	if bad != 0 {
		t.Fatalf("concurrent miss flagged: %v", m.Violations())
	}
}

func TestMonitorDetectsFeedOrderViolation(t *testing.T) {
	m := NewMonitor(1, MSCLevel)
	m.Observe(mkRecord(0, false, -1, 5, 9, object.FullSet(1), ts(0), ts(0), history.R(0, 0)))
	m.Observe(mkRecord(0, false, -1, 1, 2, object.FullSet(1), ts(0), ts(0), history.R(0, 0)))
	if !hasProperty(m.Violations(), "feed") {
		t.Fatalf("out-of-order feed not flagged: %v", m.Violations())
	}
}

func TestMonitorDetectsPhantomVersionAtFinish(t *testing.T) {
	m := NewMonitor(1, MSCLevel)
	m.Observe(mkRecord(0, false, -1, 1, 2, object.FullSet(1), ts(4), ts(4), history.R(0, 0)))
	v := m.Finish()
	if !hasProperty(v, "D5.1") {
		t.Fatalf("phantom version not flagged at Finish: %v", v)
	}
}

func TestMonitorDetectsDoubleEstablish(t *testing.T) {
	m := NewMonitor(1, MSCLevel)
	m.Observe(mkRecord(0, true, 0, 1, 2, object.FullSet(1), ts(0), ts(1), history.W(0, 1)))
	bad := m.Observe(mkRecord(1, true, 1, 3, 4, object.FullSet(1), ts(0), ts(1), history.W(0, 2)))
	if bad == 0 || !hasProperty(m.Violations(), "D5.1") {
		t.Fatalf("double establish not flagged: %v", m.Violations())
	}
}

func TestMonitorBoundsCheck(t *testing.T) {
	m := NewMonitor(1, MSCLevel)
	m.Observe(mkRecord(0, false, -1, 1, 2, object.NewSet(5), ts(0), ts(0)))
	if !hasProperty(m.Violations(), "bounds") {
		t.Fatalf("out-of-range object not flagged: %v", m.Violations())
	}
}

func TestMonitorSkipsTagBasedRecords(t *testing.T) {
	m := NewMonitor(1, MLinLevel)
	rec := mop.Record{
		Proc: 0, Update: true, Seq: -1,
		Ops:        []history.Op{history.W(0, 1)},
		Footprint:  object.FullSet(1),
		WriteTags:  map[object.ID]mop.WriteTag{0: {Proc: 0, Seq: 1}},
		SourceTags: map[object.ID]mop.WriteTag{},
	}
	if bad := m.Observe(rec); bad != 0 {
		t.Fatalf("tag-based record flagged: %v", m.Violations())
	}
	if m.Observed() != 1 {
		t.Fatal("tag-based record not counted")
	}
	if v := m.Finish(); len(v) != 0 {
		t.Fatalf("Finish violations: %v", v)
	}
}

func TestAxiomsSkipTagBasedRecords(t *testing.T) {
	recs := []mop.Record{{
		Proc: 0, Update: true, Seq: -1,
		Ops:       []history.Op{history.W(0, 1)},
		Footprint: object.FullSet(1),
		WriteTags: map[object.ID]mop.WriteTag{0: {Proc: 0, Seq: 1}},
	}}
	if v := ValidateAxioms(recs, 1, MLinLevel); len(v) != 0 {
		t.Fatalf("tag-based records flagged: %v", v)
	}
}

// TestMonitorConcurrentResponseDoesNotBindEarlierInvocation: the feed
// is response-ordered but invocation times are not monotone in it — a
// slow update responds after a later-invoked fast one (write-quorum acks
// race). Lemma 16 only binds a record to responses that precede its
// *invocation*, so the slow update must not be held to the fast one's
// finish, even when a third record — invoked after the fast response,
// fed in between — has already proven that response "completed". (A
// running-accumulator baseline flushed per fed record gets exactly this
// wrong: the in-between record folds the fast finish into the baseline,
// which then flags the slow, earlier-invoked update when it finally
// arrives.) A record genuinely invoked after those responses IS bound.
func TestMonitorConcurrentResponseDoesNotBindEarlierInvocation(t *testing.T) {
	u1 := mkRecord(0, true, 1, 10, 20, object.FullSet(1), ts(0), ts(1), history.W(0, 1))
	// slow: invoked at 100, sequenced at slot 2, responds last at 400.
	slow := mkRecord(1, true, 2, 100, 400, object.FullSet(1), ts(1), ts(2), history.W(0, 2))
	// fast: invoked at 150 (slow already in flight), slot 3, responds 200.
	fast := mkRecord(2, true, 3, 150, 200, object.FullSet(1), ts(2), ts(3), history.W(0, 3))
	// mid: invoked at 250, after fast responded.
	mid := mkRecord(0, true, 4, 250, 300, object.FullSet(1), ts(3), ts(4), history.W(0, 4))

	m := NewMonitor(1, MLinLevel)
	for _, r := range []mop.Record{u1, fast, mid, slow} { // feed = resp order
		m.Observe(r)
	}
	if v := m.Finish(); len(v) != 0 {
		t.Fatalf("concurrent responses bound an earlier invocation: %v", v)
	}

	// Same feed plus a stale query invoked at 350 — after fast (200) and
	// mid (300) responded — starting at version 3 < mid's finish 4: a
	// genuine Lemma 16 violation, and the only one.
	stale := mkRecord(3, false, -1, 350, 380, object.FullSet(1), ts(3), ts(3), history.R(0, 0))
	m = NewMonitor(1, MLinLevel)
	for _, r := range []mop.Record{u1, fast, mid, stale, slow} {
		m.Observe(r)
	}
	vs := m.Finish()
	if len(vs) != 1 || vs[0].Property != "Lemma16" {
		t.Fatalf("want exactly the stale query's Lemma16 violation, got %v", vs)
	}

	// The offline validator agrees on both histories.
	if v := ValidateAxioms([]mop.Record{u1, fast, mid, slow}, 1, MLinLevel); len(v) != 0 {
		t.Fatalf("offline validator flagged the admissible history: %v", v)
	}
	if v := ValidateAxioms([]mop.Record{u1, fast, mid, stale, slow}, 1, MLinLevel); !hasProperty(v, "Lemma16") {
		t.Fatalf("offline validator missed the stale query: %v", v)
	}
}

// leveled returns rec with a certified consistency level, mirroring how
// the mlin protocol stamps records.
func leveled(rec mop.Record, l history.Level, consistent bool) mop.Record {
	rec.Level = l
	rec.IsConsistent = consistent
	return rec
}

// TestMonitorSkipsWeakCertifiedReads: a ONE-certified stale read bought
// only the m-SC guarantee, so the monitor must not hold it to Lemma 16
// even at the m-lin level — mirroring checker.MixedLevels, which keeps
// weak queries out of the strong restriction.
func TestMonitorSkipsWeakCertifiedReads(t *testing.T) {
	m := NewMonitor(1, MLinLevel)
	m.Observe(leveled(mkRecord(0, true, 0, 1, 2, object.FullSet(1), ts(0), ts(1), history.W(0, 5)), history.LevelAll, true))
	bad := m.Observe(leveled(mkRecord(1, false, -1, 10, 11, object.FullSet(1), ts(0), ts(0), history.R(0, 0)), history.LevelOne, true))
	if bad != 0 {
		t.Fatalf("ONE-certified stale read flagged at m-lin level: %v", m.Violations())
	}
	// The identical record certified strong IS a violation.
	bad = m.Observe(leveled(mkRecord(2, false, -1, 20, 21, object.FullSet(1), ts(0), ts(0), history.R(0, 0)), history.LevelQuorum, true))
	if bad == 0 || !hasProperty(m.Violations(), "Lemma16") {
		t.Fatalf("QUORUM-certified stale read not flagged: %v", m.Violations())
	}
}

// TestMonitorSkipsForceCompletedReads: a query that requested a strong
// level but was force-completed below a majority is certified LevelOne
// with IsConsistent=false; the monitor checks it at the certified
// level, not the requested one.
func TestMonitorSkipsForceCompletedReads(t *testing.T) {
	m := NewMonitor(1, MLinLevel)
	m.Observe(leveled(mkRecord(0, true, 0, 1, 2, object.FullSet(1), ts(0), ts(1), history.W(0, 5)), history.LevelAll, true))
	bad := m.Observe(leveled(mkRecord(1, false, -1, 10, 11, object.FullSet(1), ts(0), ts(0), history.R(0, 0)), history.LevelOne, false))
	if bad != 0 {
		t.Fatalf("force-completed (certified ONE) stale read flagged: %v", m.Violations())
	}
	if v := m.Finish(); len(v) != 0 {
		t.Fatalf("Finish violations: %v", v)
	}
}

// TestMonitorWeakReadsDoNotRaiseBaseline: a weak read's observed
// versions must not bind later strong reads — only strong responses
// enter the completed-response baseline.
func TestMonitorWeakReadsDoNotRaiseBaseline(t *testing.T) {
	m := NewMonitor(1, MLinLevel)
	// A writer establishes version 1, but its update record has not
	// completed yet; a ONE read at the writer's replica observes it.
	m.Observe(leveled(mkRecord(0, true, 0, 1, 2, object.FullSet(1), ts(0), ts(1), history.W(0, 5)), history.LevelAll, true))
	m.Observe(leveled(mkRecord(0, false, -1, 3, 4, object.FullSet(1), ts(1), ts(1), history.R(0, 5)), history.LevelOne, true))
	// A strong read invoked after the weak read responded may still
	// start below the weak read's versions (it owes nothing to a weak
	// observation)... but not below the strong update's.
	bad := m.Observe(leveled(mkRecord(1, false, -1, 10, 11, object.FullSet(1), ts(1), ts(1), history.R(0, 5)), history.LevelAll, true))
	if bad != 0 {
		t.Fatalf("strong read at the strong baseline flagged: %v", m.Violations())
	}
	if v := m.Finish(); len(v) != 0 {
		t.Fatalf("Finish violations: %v", v)
	}
}

// TestAxiomsLeveledRestriction is the ValidateAxioms face of the same
// contract: weak-certified queries are exempt from Lemma 16 in both
// directions.
func TestAxiomsLeveledRestriction(t *testing.T) {
	recs := []mop.Record{
		leveled(mkRecord(0, true, 0, 1, 2, object.FullSet(1), ts(0), ts(1), history.W(0, 5)), history.LevelAll, true),
		leveled(mkRecord(1, false, -1, 10, 11, object.FullSet(1), ts(0), ts(0), history.R(0, 0)), history.LevelOne, true),
	}
	if v := ValidateAxioms(recs, 1, MLinLevel); len(v) != 0 {
		t.Fatalf("weak stale read flagged by ValidateAxioms: %v", v)
	}
	recs[1] = leveled(recs[1], history.LevelQuorum, true)
	if v := ValidateAxioms(recs, 1, MLinLevel); !hasProperty(v, "Lemma16") {
		t.Fatalf("strong stale read not flagged by ValidateAxioms: %v", v)
	}
}

// TestMonitorCleanMixedLevelRun drives the real store at mixed
// per-request levels and validates the records at the m-lin level: the
// certified levels plus the read barrier must keep the stream clean.
func TestMonitorCleanMixedLevelRun(t *testing.T) {
	s, err := core.New(core.Config{
		Procs: 3, Objects: []string{"x", "y", "z"},
		Consistency: core.MLinearizable, Seed: 11, MaxDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	levels := []history.Level{history.LevelOne, history.LevelQuorum, history.LevelAll}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *core.Process) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if j%2 == 0 {
					if err := p.Write(object.ID(j%3), object.Value(i*100+j+1)); err != nil {
						t.Errorf("write: %v", err)
					}
				} else if _, err := p.Exec(mop.MultiRead{Xs: []object.ID{0, 1, 2}},
					core.ExecOptions{Level: levels[(i+j)%3]}); err != nil {
					t.Errorf("read: %v", err)
				}
			}
		}(i, p)
	}
	wg.Wait()
	recs := s.Records()
	n := s.Registry().Len()
	s.Close()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Resp < recs[j].Resp })
	if v := ValidateAxioms(recs, n, MLinLevel); len(v) != 0 {
		t.Fatalf("violations on a clean mixed-level run: %v", v)
	}
	m := NewMonitor(n, MLinLevel)
	for _, rec := range recs {
		m.Observe(rec)
	}
	if v := m.Finish(); len(v) != 0 {
		t.Fatalf("monitor violations on a clean mixed-level run: %v", v)
	}
}

// TestMonitorCleanBatchedPipelinedRun: the monitor's obligations must
// hold under group commit (BatchSize/BatchWindow) and pipelining
// (MaxInflight lanes, recorded as virtual process ids) — today's other
// monitor tests only cover unbatched, one-op-per-process runs. Each
// process keeps a full window of updates in flight via ExecAsync, so
// lane renumbering is actually exercised, and the streamed feed (resp
// order) must come out clean both online and under ValidateAxioms.
func TestMonitorCleanBatchedPipelinedRun(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cons  core.Consistency
		level Level
	}{
		{"mlin", core.MLinearizable, MLinLevel},
		{"msc", core.MSequential, MSCLevel},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := core.New(core.Config{
				Procs: 3, Objects: []string{"x", "y", "z"},
				Consistency: tc.cons, Seed: 42, MaxDelay: 2 * time.Millisecond,
				BatchSize: 4, BatchWindow: 200 * time.Microsecond, MaxInflight: 3,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer s.Close()

			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				p, _ := s.Process(i)
				wg.Add(1)
				go func(i int, p *core.Process) {
					defer wg.Done()
					for round := 0; round < 4; round++ {
						// Fill every lane before waiting on any future.
						var fs []*core.Future
						for lane := 0; lane < 3; lane++ {
							x := object.ID((round + lane) % 3)
							f, err := p.ExecAsync(mop.WriteOp{X: x, V: object.Value(100*i + 10*round + lane)}, core.ExecOptions{})
							if err != nil {
								t.Errorf("ExecAsync: %v", err)
								return
							}
							fs = append(fs, f)
						}
						for _, f := range fs {
							if _, err := f.Wait(); err != nil {
								t.Errorf("Wait: %v", err)
							}
						}
						if _, err := p.MultiRead(0, 1, 2); err != nil {
							t.Errorf("MultiRead: %v", err)
						}
					}
				}(i, p)
			}
			wg.Wait()

			recs := s.Records()
			sort.Slice(recs, func(i, j int) bool { return recs[i].Resp < recs[j].Resp })
			n := s.Registry().Len()

			virtual := map[int]bool{}
			for _, r := range recs {
				virtual[r.Proc] = true
			}
			if len(virtual) <= 3 {
				t.Fatalf("pipelining never engaged: only %d recorded process ids", len(virtual))
			}

			if v := ValidateAxioms(recs, n, tc.level); len(v) != 0 {
				t.Fatalf("axioms violated on a batched pipelined run: %v", v)
			}
			m := NewMonitor(n, tc.level)
			for _, r := range recs {
				m.Observe(r)
			}
			if v := m.Finish(); len(v) != 0 {
				t.Fatalf("monitor flagged a clean batched pipelined run: %v", v)
			}
		})
	}
}

// TestMonitorIdleProcessDoesNotPinFloors: a process that stops issuing
// records (a finished worker, a disconnected client) is dropped by
// Compact once its last response falls behind the horizon, so it no
// longer holds VersionFloors' minimum — and thus the monitor's and the
// incremental checker's retained state — at its frozen position.
func TestMonitorIdleProcessDoesNotPinFloors(t *testing.T) {
	m := NewMonitor(1, MSCLevel)
	ts := func(v int64) timestamp.TS { return timestamp.TS{v} }
	upd := func(proc int, seq, v, inv, resp int64) mop.Record {
		return mop.Record{
			Proc: proc, Update: true, Seq: seq,
			Ops:     []history.Op{history.W(0, v)},
			TSStart: ts(v - 1), TSEnd: ts(v),
			Footprint: object.FullSet(1),
			Inv:       inv, Resp: resp,
		}
	}
	m.Observe(upd(0, 0, 1, 0, 10)) // P0 writes once, then goes silent
	for i := int64(0); i < 5; i++ {
		m.Observe(upd(1, 1+i, 2+i, 20+10*i, 25+10*i))
	}
	if f := m.VersionFloors(); f[0] != 0 {
		t.Fatalf("floors = %v with P0 still tracked, want [0]", f)
	}
	// Horizon 15 is past P0's last response: P0 is forgotten and the
	// floor jumps to P1's position.
	m.Compact(15, m.VersionFloors())
	if f := m.VersionFloors(); f[0] != 5 {
		t.Fatalf("floors = %v after pruning the idle P0, want [5]", f)
	}
	if v := m.Finish(); len(v) != 0 {
		t.Fatalf("clean run flagged: %v", v)
	}
}
