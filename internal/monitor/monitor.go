package monitor

import (
	"fmt"

	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/timestamp"
)

// Monitor is a streaming consistency checker: records are fed in
// response order (the order operations complete), and violations are
// detected online with O(footprint) work per record — no history
// reconstruction, no NP-hard search. It decides a *sufficient* set of
// conditions: a flagged run is certainly inconsistent; an unflagged run
// has passed every obligation the Section 5 proofs rest on.
//
// What it checks per record:
//
//   - version accounting (P5.16/P5.17): writes advance versions by one;
//   - version availability: a record never starts from a version that
//     was not yet established by some completed or concurrent update
//     (versions are registered as update records arrive);
//   - per-process monotonicity (process order ⊆ ~>H with P5.3): a
//     process's observed versions never regress;
//   - real-time freshness (m-lin level, Lemma 16): a record invoked
//     after another record's response must start at versions ≥ the
//     earlier record's finish, on their common footprint.
//
// The zero Monitor is not usable; create instances with NewMonitor.
type Monitor struct {
	numObjects int
	level      Level

	// maxSeen[x] is the highest version of x any observed record has
	// established.
	maxSeen timestamp.TS
	// writers[x][v] marks that version v of x has a known writer.
	writers []map[int64]bool
	// lastEndByProc[p] is the footprint-restricted high-water mark of
	// process p's observations.
	lastEndByProc map[int]timestamp.TS
	// completedMax is the pointwise maximum of TSEnd over all records
	// observed so far (fed in response order, this is the Lemma 16
	// baseline for later invocations).
	completedMax timestamp.TS
	// lastResp guards the feed-order contract.
	lastResp int64
	// pending holds completed records whose TSEnd has not yet been
	// folded into completedMax (folding happens once a later invocation
	// proves real-time precedence).
	pending []pendingEnd
	// starts remembers every (proc, object, version) a record started
	// from, for the end-of-run availability check.
	starts []startObs

	observed   int
	violations []Violation
}

type startObs struct {
	proc int
	x    object.ID
	v    int64
}

// NewMonitor creates a streaming monitor for a system with numObjects
// objects at the given level.
func NewMonitor(numObjects int, level Level) *Monitor {
	m := &Monitor{
		numObjects:    numObjects,
		level:         level,
		maxSeen:       timestamp.New(numObjects),
		writers:       make([]map[int64]bool, numObjects),
		lastEndByProc: make(map[int]timestamp.TS),
		completedMax:  timestamp.New(numObjects),
		lastResp:      -1,
	}
	for x := range m.writers {
		m.writers[x] = map[int64]bool{0: true} // the initial m-operation
	}
	return m
}

// Observe feeds the next completed record. Records must arrive in
// non-decreasing response order; Observe reports (via the violation
// list) any obligation the record breaks. It returns the number of new
// violations this record introduced.
func (m *Monitor) Observe(rec mop.Record) int {
	before := len(m.violations)
	if rec.TSStart == nil || rec.TSEnd == nil {
		// Tag-based records (the causal protocol) carry no version
		// vectors; the monitor's obligations are defined over the
		// version-vector protocols only. Count, but don't check.
		m.observed++
		return 0
	}
	if rec.Resp < m.lastResp {
		m.report("feed", "record at P%d fed out of response order (%d after %d)", rec.Proc, rec.Resp, m.lastResp)
	}
	m.lastResp = rec.Resp
	m.observed++

	writes := rec.VersionedWrites()

	// Version accounting within the record.
	for _, x := range rec.Footprint.IDs() {
		if int(x) >= m.numObjects {
			m.report("bounds", "P%d touched unknown object %d", rec.Proc, int(x))
			continue
		}
		start, end := rec.TSStart.Get(x), rec.TSEnd.Get(x)
		if v, ok := writes[x]; ok {
			if end != start+1 || v != end {
				m.report("P5.17", "P%d wrote %d: versions %d -> %d (declared %d)", rec.Proc, int(x), start, end, v)
			}
		} else if start != end {
			m.report("P5.16", "P%d did not write %d but versions moved %d -> %d", rec.Proc, int(x), start, end)
		}
	}

	// Register established versions; duplicates indicate divergence.
	for x, v := range writes {
		if int(x) >= m.numObjects {
			continue
		}
		if m.writers[x][v] {
			m.report("D5.1", "version %d of object %d established twice", v, int(x))
		}
		m.writers[x][v] = true
		if v > m.maxSeen.Get(x) {
			m.maxSeen.Set(x, v)
		}
	}

	// Version availability: the starting versions must exist. A record
	// may legitimately start from a version whose writer's record has
	// not completed yet (the writer's own Execute may still be waiting),
	// but never from a version beyond any that will ever exist — we
	// approximate with "at most one ahead of the established maximum per
	// writer in flight" being unverifiable online, so we check the
	// weaker, always-sound bound: reads of versions that were
	// established are fine; reads of versions more than the total
	// observed writes ahead are flagged at Finish.
	for _, x := range rec.Footprint.IDs() {
		if int(x) >= m.numObjects {
			continue
		}
		v := rec.TSStart.Get(x)
		if v < 0 {
			m.report("D5.1", "P%d starts at negative version %d of object %d", rec.Proc, v, int(x))
			continue
		}
		m.starts = append(m.starts, startObs{proc: rec.Proc, x: x, v: v})
	}

	// Per-process monotonicity.
	if prev, ok := m.lastEndByProc[rec.Proc]; ok {
		for _, x := range rec.Footprint.IDs() {
			if int(x) >= m.numObjects {
				continue
			}
			if rec.TSEnd.Get(x) < prev.Get(x) {
				m.report("P5.3", "P%d regressed on object %d: %d after %d",
					rec.Proc, int(x), rec.TSEnd.Get(x), prev.Get(x))
			}
		}
	} else {
		m.lastEndByProc[rec.Proc] = timestamp.New(m.numObjects)
	}
	procTS := m.lastEndByProc[rec.Proc]
	for _, x := range rec.Footprint.IDs() {
		if int(x) < m.numObjects && rec.TSEnd.Get(x) > procTS.Get(x) {
			procTS.Set(x, rec.TSEnd.Get(x))
		}
	}

	// Real-time freshness (Lemma 16): fed in response order, every
	// previously observed record responded before this one did; those
	// that responded before this one's *invocation* bound its start.
	// completedMax tracks the pointwise max TSEnd of records whose
	// response precedes the current invocation — maintained lazily via
	// the pending list below.
	if m.level == MLinLevel {
		m.flushPending(rec.Inv)
		for _, x := range rec.Footprint.IDs() {
			if int(x) >= m.numObjects {
				continue
			}
			if rec.TSStart.Get(x) < m.completedEnd(x, rec) {
				m.report("Lemma16", "P%d invoked at %d starts at version %d of object %d; an earlier response established %d",
					rec.Proc, rec.Inv, rec.TSStart.Get(x), int(x), m.completedEnd(x, rec))
			}
		}
	}
	m.pending = append(m.pending, pendingEnd{resp: rec.Resp, ts: rec.TSEnd.Clone(), fp: rec.Footprint})

	return len(m.violations) - before
}

type pendingEnd struct {
	resp int64
	ts   timestamp.TS
	fp   object.Set
}

// flushPending folds every pending record that responded strictly before
// inv into completedMax.
func (m *Monitor) flushPending(inv int64) {
	keep := m.pending[:0]
	for _, p := range m.pending {
		if p.resp < inv {
			for _, x := range p.fp.IDs() {
				if int(x) < m.numObjects && p.ts.Get(x) > m.completedMax.Get(x) {
					m.completedMax.Set(x, p.ts.Get(x))
				}
			}
		} else {
			keep = append(keep, p)
		}
	}
	m.pending = keep
}

func (m *Monitor) completedEnd(x object.ID, rec mop.Record) int64 {
	return m.completedMax.Get(x)
}

// Finish completes the stream and runs the deferred end-of-run check:
// every version any record started from must have been established by
// some writer (a record may observe a version before its writer's own
// Execute completes, so this check cannot run online).
func (m *Monitor) Finish() []Violation {
	for _, s := range m.starts {
		if !m.writers[s.x][s.v] {
			m.report("D5.1", "P%d started from version %d of object %d, which no writer established",
				s.proc, s.v, int(s.x))
		}
	}
	m.starts = nil
	return m.Violations()
}

// Observed returns the number of records fed so far.
func (m *Monitor) Observed() int { return m.observed }

// Violations returns the violations detected so far.
func (m *Monitor) Violations() []Violation {
	out := make([]Violation, len(m.violations))
	copy(out, m.violations)
	return out
}

func (m *Monitor) report(prop, format string, args ...any) {
	m.violations = append(m.violations, Violation{
		Property: prop,
		Detail:   fmt.Sprintf(format, args...),
	})
}
