package monitor

import (
	"fmt"
	"sort"

	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/timestamp"
)

// Monitor is a streaming consistency checker: records are fed in
// response order (the order operations complete), and violations are
// detected online with O(footprint) work per record — no history
// reconstruction, no NP-hard search. It decides a *sufficient* set of
// conditions: a flagged run is certainly inconsistent; an unflagged run
// has passed every obligation the Section 5 proofs rest on.
//
// What it checks per record:
//
//   - version accounting (P5.16/P5.17): writes advance versions by one;
//   - version availability: a record never starts from a version that
//     was not yet established by some completed or concurrent update
//     (versions are registered as update records arrive);
//   - per-process monotonicity (process order ⊆ ~>H with P5.3): a
//     process's observed versions never regress;
//   - real-time freshness (m-lin level, Lemma 16): a record invoked
//     after another record's response must start at versions ≥ the
//     earlier record's finish, on their common footprint.
//
// Leveled records (PR 8) are held to their *certified* level, mirroring
// checker.MixedLevels: a query certified below quorum (LevelOne —
// requested ONE, or force-completed short of a majority) bought only the
// m-SC guarantee, so at MLinLevel it is neither checked against the
// Lemma 16 baseline nor folded into it. Everything it still owes (P5.16,
// monotonicity, version availability) is checked as usual.
//
// The zero Monitor is not usable; create instances with NewMonitor.
type Monitor struct {
	numObjects int
	level      Level

	// maxSeen[x] is the highest version of x any observed record has
	// established.
	maxSeen timestamp.TS
	// writers[x][v] marks that version v of x has a known writer.
	writers []map[int64]bool
	// lastEndByProc[p] is the footprint-restricted high-water mark of
	// process p's observations.
	lastEndByProc map[int]timestamp.TS
	// lastRespByProc[p] is the response time of process p's latest
	// record. Compact drops processes silent since before its horizon —
	// a process that stopped issuing (a finished worker, a disconnected
	// client) must not pin VersionFloors' minimum forever, or retained
	// state grows with the history instead of the window.
	lastRespByProc map[int]int64
	// lastResp guards the feed-order contract.
	lastResp int64
	// ends holds every strong record's finish, in feed (= response)
	// order; ends[i].cum is the pointwise maximum of TSEnd — restricted
	// to each record's footprint — over entries 0..i. The Lemma 16
	// baseline for a record invoked at t is the cumulative max of the
	// prefix of entries that responded strictly before t, found by
	// binary search. Invocation times are NOT monotone in feed order (a
	// slow operation responds after a later-invoked fast one), so a
	// single running accumulator is unsound: flushing it for one
	// record's invocation would leak responses concurrent with an
	// earlier-invoked record still in flight into that record's
	// baseline, flagging admissible histories. Only maintained at
	// MLinLevel — the m-SC obligations never consult it.
	ends []strongEnd
	// unresolved holds the (object, version) starting points whose
	// writer has not yet been observed. An entry resolves (and is
	// dropped) the moment the writer's record arrives; whatever remains
	// at Finish is a D5.1 violation. Keeping only the unresolved set —
	// rather than every start ever observed — is what bounds memory on
	// long histories.
	unresolved map[verKey][]int
	// floors[x]: versions of x below this are garbage-collected
	// (Compact). A start below the floor is treated as resolved: every
	// process has already observed past it, so an unwritten version
	// there would have been caught before the floor rose.
	floors []int64

	observed      int
	danglingReads int64
	unresolvedHW  int
	violations    []Violation
}

type verKey struct {
	x object.ID
	v int64
}

// NewMonitor creates a streaming monitor for a system with numObjects
// objects at the given level.
func NewMonitor(numObjects int, level Level) *Monitor {
	m := &Monitor{
		numObjects:     numObjects,
		level:          level,
		maxSeen:        timestamp.New(numObjects),
		writers:        make([]map[int64]bool, numObjects),
		lastEndByProc:  make(map[int]timestamp.TS),
		lastRespByProc: make(map[int]int64),
		lastResp:       -1,
		unresolved:     make(map[verKey][]int),
		floors:         make([]int64, numObjects),
	}
	for x := range m.writers {
		m.writers[x] = map[int64]bool{0: true} // the initial m-operation
	}
	return m
}

// Observe feeds the next completed record. Records must arrive in
// non-decreasing response order; Observe reports (via the violation
// list) any obligation the record breaks. It returns the number of new
// violations this record introduced.
func (m *Monitor) Observe(rec mop.Record) int {
	before := len(m.violations)
	if rec.TSStart == nil || rec.TSEnd == nil {
		// Tag-based records (the causal protocol) carry no version
		// vectors; the monitor's obligations are defined over the
		// version-vector protocols only. Count, but don't check.
		m.observed++
		return 0
	}
	if rec.Resp < m.lastResp {
		m.report("feed", "record at P%d fed out of response order (%d after %d)", rec.Proc, rec.Resp, m.lastResp)
	}
	m.lastResp = rec.Resp
	m.lastRespByProc[rec.Proc] = rec.Resp
	m.observed++

	writes := rec.VersionedWrites()

	// Version accounting within the record.
	for _, x := range rec.Footprint.IDs() {
		if int(x) >= m.numObjects {
			m.report("bounds", "P%d touched unknown object %d", rec.Proc, int(x))
			continue
		}
		start, end := rec.TSStart.Get(x), rec.TSEnd.Get(x)
		if v, ok := writes[x]; ok {
			if end != start+1 || v != end {
				m.report("P5.17", "P%d wrote %d: versions %d -> %d (declared %d)", rec.Proc, int(x), start, end, v)
			}
		} else if start != end {
			m.report("P5.16", "P%d did not write %d but versions moved %d -> %d", rec.Proc, int(x), start, end)
		}
	}

	// Register established versions; duplicates indicate divergence.
	for x, v := range writes {
		if int(x) >= m.numObjects {
			continue
		}
		if m.writers[x][v] {
			m.report("D5.1", "version %d of object %d established twice", v, int(x))
		}
		m.writers[x][v] = true
		delete(m.unresolved, verKey{x: x, v: v})
		if v > m.maxSeen.Get(x) {
			m.maxSeen.Set(x, v)
		}
	}

	// Version availability: the starting versions must exist. A record
	// may legitimately start from a version whose writer's record has
	// not completed yet (the writer's own Execute may still be waiting),
	// so availability is checked eagerly but resolved lazily: a start
	// from a not-yet-established version joins the unresolved set and is
	// discharged when its writer's record arrives; whatever remains at
	// Finish is flagged.
	for _, x := range rec.Footprint.IDs() {
		if int(x) >= m.numObjects {
			continue
		}
		v := rec.TSStart.Get(x)
		if v < 0 {
			m.report("D5.1", "P%d starts at negative version %d of object %d", rec.Proc, v, int(x))
			continue
		}
		if v < m.floors[x] || m.writers[x][v] {
			continue
		}
		key := verKey{x: x, v: v}
		m.unresolved[key] = append(m.unresolved[key], rec.Proc)
		if len(m.unresolved) > m.unresolvedHW {
			m.unresolvedHW = len(m.unresolved)
		}
	}

	// Per-process monotonicity.
	if prev, ok := m.lastEndByProc[rec.Proc]; ok {
		for _, x := range rec.Footprint.IDs() {
			if int(x) >= m.numObjects {
				continue
			}
			if rec.TSEnd.Get(x) < prev.Get(x) {
				m.report("P5.3", "P%d regressed on object %d: %d after %d",
					rec.Proc, int(x), rec.TSEnd.Get(x), prev.Get(x))
			}
		}
	} else {
		m.lastEndByProc[rec.Proc] = timestamp.New(m.numObjects)
	}
	procTS := m.lastEndByProc[rec.Proc]
	for _, x := range rec.Footprint.IDs() {
		if int(x) < m.numObjects && rec.TSEnd.Get(x) > procTS.Get(x) {
			procTS.Set(x, rec.TSEnd.Get(x))
		}
	}

	// Real-time freshness (Lemma 16): only records that responded
	// strictly before this one's *invocation* bound its start — records
	// fed earlier but still in flight at the invocation are concurrent
	// and bind nothing. The baseline is the cumulative footprint max of
	// the resp-sorted prefix of strong ends (see the ends field).
	// Records certified below quorum bought only the m-SC guarantee
	// (mirroring checker.MixedLevels' strong restriction): they are
	// neither held to the baseline nor allowed to raise it.
	if m.level == MLinLevel && rec.Level.Strong() {
		if base := m.endsBefore(rec.Inv); base != nil {
			for _, x := range rec.Footprint.IDs() {
				if int(x) >= m.numObjects {
					continue
				}
				if rec.TSStart.Get(x) < base.Get(x) {
					m.report("Lemma16", "P%d invoked at %d starts at version %d of object %d; an earlier response established %d",
						rec.Proc, rec.Inv, rec.TSStart.Get(x), int(x), base.Get(x))
				}
			}
		}
		m.pushEnd(rec)
	}

	return len(m.violations) - before
}

// strongEnd is one strong record's finish in the resp-sorted ends list.
type strongEnd struct {
	resp int64
	cum  timestamp.TS
}

// endsBefore returns the cumulative TSEnd max over strong records that
// responded strictly before inv, or nil when none are retained (no
// baseline — also the straggler case, an invocation older than the
// compaction horizon, where the dropped prefix's bound is unknown and
// under-binding is the side that cannot flag an admissible history).
func (m *Monitor) endsBefore(inv int64) timestamp.TS {
	i := sort.Search(len(m.ends), func(j int) bool { return m.ends[j].resp >= inv })
	if i == 0 {
		return nil
	}
	return m.ends[i-1].cum
}

// pushEnd appends rec's finish to the ends list, folding its footprint
// components into the cumulative max. The entry's resp is clamped to
// keep the list sorted even after a feed-order violation (already
// reported above).
func (m *Monitor) pushEnd(rec mop.Record) {
	var cum timestamp.TS
	resp := rec.Resp
	if n := len(m.ends); n > 0 {
		cum = m.ends[n-1].cum.Clone()
		if last := m.ends[n-1].resp; resp < last {
			resp = last
		}
	} else {
		cum = timestamp.New(m.numObjects)
	}
	for _, x := range rec.Footprint.IDs() {
		if int(x) < m.numObjects && rec.TSEnd.Get(x) > cum.Get(x) {
			cum.Set(x, rec.TSEnd.Get(x))
		}
	}
	m.ends = append(m.ends, strongEnd{resp: resp, cum: cum})
}

// Finish completes the stream and runs the deferred end-of-run check:
// every version any record started from must have been established by
// some writer (a record may observe a version before its writer's own
// Execute completes, so this check cannot run online).
func (m *Monitor) Finish() []Violation {
	keys := make([]verKey, 0, len(m.unresolved))
	for key := range m.unresolved {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].x != keys[j].x {
			return keys[i].x < keys[j].x
		}
		return keys[i].v < keys[j].v
	})
	for _, key := range keys {
		for _, proc := range m.unresolved[key] {
			m.report("D5.1", "P%d started from version %d of object %d, which no writer established",
				proc, key.v, int(key.x))
		}
	}
	m.unresolved = make(map[verKey][]int)
	return m.Violations()
}

// Unresolved returns how many observed starting versions still await
// their writer's record.
func (m *Monitor) Unresolved() int { return len(m.unresolved) }

// DropUnresolved counts every still-unresolved start as dangling (the
// feed is known lossy — records died with a killed daemon — so their
// missing writers indict the feed, not the history) and clears them,
// so a subsequent Finish reports only what a complete feed proves.
func (m *Monitor) DropUnresolved() {
	for _, procs := range m.unresolved {
		m.danglingReads += int64(len(procs))
	}
	m.unresolved = make(map[verKey][]int)
}

// VersionFloors returns, per object, one less than the lowest version
// any observed process currently stands at — the highest version that
// every process has moved past. A later record observing anything below
// the floor would already be a P5.3 monotonicity violation, which is
// what makes garbage-collecting those versions sound. With no
// observations yet the floors are zero. Processes silent for a full
// window are excluded (Compact drops them), so an idle client cannot
// pin the floors — and the memory behind them — forever.
func (m *Monitor) VersionFloors() []int64 {
	floors := make([]int64, m.numObjects)
	first := true
	for _, ts := range m.lastEndByProc {
		for x := range floors {
			v := ts.Get(object.ID(x)) - 1
			if first || v < floors[x] {
				floors[x] = v
			}
		}
		first = false
	}
	if first {
		return floors
	}
	for x := range floors {
		if floors[x] < 0 {
			floors[x] = 0
		}
	}
	return floors
}

// Compact garbage-collects state below the given per-object version
// floors (normally VersionFloors, possibly clamped by the caller).
// Writer registrations below the floor are dropped; unresolved starts
// below it can no longer be discharged — their writers' records never
// arrived (lost to a crash) — and are counted as dangling rather than
// reported as violations, since a lossy stream is not an inconsistent
// history. Floors never regress.
//
// respHorizon additionally retires strong ends that responded before
// it. Their bound survives in the retained entries' cumulative maxima,
// so only invocations older than the horizon itself lose their
// baseline (endsBefore returns nil for those) — the windowed-checking
// contract: pairs separated by more than the window go unchecked, never
// mis-flagged.
func (m *Monitor) Compact(respHorizon int64, floors []int64) {
	if n := sort.Search(len(m.ends), func(j int) bool { return m.ends[j].resp >= respHorizon }); n > 0 {
		m.ends = append(m.ends[:0:0], m.ends[n:]...)
	}
	// Forget processes silent since before the horizon: a finished
	// worker or disconnected client must not pin VersionFloors' minimum
	// forever. If such a process returns it is checked as fresh — its
	// per-process monotonicity restarts, which is the windowed-checking
	// contract's under-checking side, never a false report (starts below
	// the floor are treated as resolved in Observe).
	for p, r := range m.lastRespByProc {
		if r < respHorizon {
			delete(m.lastRespByProc, p)
			delete(m.lastEndByProc, p)
		}
	}
	for x := 0; x < m.numObjects && x < len(floors); x++ {
		if floors[x] <= m.floors[x] {
			continue
		}
		m.floors[x] = floors[x]
		for v := range m.writers[x] {
			if v < floors[x] {
				delete(m.writers[x], v)
			}
		}
	}
	for key, procs := range m.unresolved {
		if key.v < m.floors[key.x] {
			m.danglingReads += int64(len(procs))
			delete(m.unresolved, key)
		}
	}
}

// MemStats is a snapshot of the monitor's retained state.
type MemStats struct {
	LiveWriters   int   `json:"liveWriters"`
	Unresolved    int   `json:"unresolvedStarts"`
	UnresolvedHW  int   `json:"unresolvedHighWater"`
	Pending       int   `json:"pendingEnds"`
	DanglingReads int64 `json:"danglingReads"`
}

// Mem reports the monitor's current footprint.
func (m *Monitor) Mem() MemStats {
	live := 0
	for _, ws := range m.writers {
		live += len(ws)
	}
	return MemStats{
		LiveWriters:   live,
		Unresolved:    len(m.unresolved),
		UnresolvedHW:  m.unresolvedHW,
		Pending:       len(m.ends),
		DanglingReads: m.danglingReads,
	}
}

// Observed returns the number of records fed so far.
func (m *Monitor) Observed() int { return m.observed }

// Violations returns the violations detected so far.
func (m *Monitor) Violations() []Violation {
	out := make([]Violation, len(m.violations))
	copy(out, m.violations)
	return out
}

func (m *Monitor) report(prop, format string, args ...any) {
	m.violations = append(m.violations, Violation{
		Property: prop,
		Detail:   fmt.Sprintf(format, args...),
	})
}
