package oolock

import (
	"sync"
	"testing"
	"time"

	"moc/internal/mop"
	"moc/internal/object"
)

func newProtocol(t *testing.T, procs, objects int, maxDelay time.Duration) *Protocol {
	t.Helper()
	p, err := New(Config{
		Procs: procs, Reg: object.Sequential(objects),
		Seed: 42, MaxDelay: maxDelay,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Procs: 0, Reg: object.Sequential(1)}); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, err := New(Config{Procs: 1}); err == nil {
		t.Fatal("missing registry accepted")
	}
}

func TestHomeAssignment(t *testing.T) {
	p := newProtocol(t, 3, 7, 0)
	for x := 0; x < 7; x++ {
		if got := p.Home(object.ID(x)); got != x%3 {
			t.Fatalf("Home(%d) = %d, want %d", x, got, x%3)
		}
	}
}

func TestWriteThenRead(t *testing.T) {
	p := newProtocol(t, 2, 4, time.Millisecond)
	rec, err := p.Exec(0, mop.WriteOp{X: 3, V: 9}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if !rec.Update || rec.Seq != -1 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.TSStart.Get(3) != 0 || rec.TSEnd.Get(3) != 1 {
		t.Fatalf("versions %v -> %v", rec.TSStart, rec.TSEnd)
	}
	q, err := p.Exec(1, mop.ReadOp{X: 3}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if q.Result.(object.Value) != 9 {
		t.Fatalf("read = %v", q.Result)
	}
	if q.TSStart.Get(3) != 1 {
		t.Fatalf("read version = %d", q.TSStart.Get(3))
	}
}

func TestFreshReadAfterResponse(t *testing.T) {
	// m-linearizability: once a write responds, every later read (any
	// process) observes it.
	for trial := int64(0); trial < 20; trial++ {
		p, err := New(Config{
			Procs: 3, Reg: object.Sequential(2),
			Seed: trial, MaxDelay: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := p.Exec(0, mop.WriteOp{X: 0, V: trial + 1}, mop.ExecOptions{}); err != nil {
			t.Fatalf("write: %v", err)
		}
		rec, err := p.Exec(1, mop.ReadOp{X: 0}, mop.ExecOptions{})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got := rec.Result.(object.Value); got != trial+1 {
			t.Fatalf("trial %d: stale read %d", trial, got)
		}
		p.Close()
	}
}

func TestDCASAtomicUnderContention(t *testing.T) {
	p := newProtocol(t, 4, 2, time.Millisecond)
	var wg sync.WaitGroup
	const rounds = 12
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				snap, err := p.Exec(w, mop.MultiRead{Xs: []object.ID{0, 1}}, mop.ExecOptions{})
				if err != nil {
					t.Errorf("snap: %v", err)
					return
				}
				vals := snap.Result.([]object.Value)
				if vals[0] != vals[1] {
					t.Errorf("torn snapshot: %v", vals)
					return
				}
				if _, err := p.Exec(w, mop.DCAS{
					X1: 0, X2: 1, Old1: vals[0], Old2: vals[1],
					New1: vals[0] + 1, New2: vals[1] + 1,
				}, mop.ExecOptions{}); err != nil {
					t.Errorf("dcas: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	final, err := p.Exec(0, mop.MultiRead{Xs: []object.ID{0, 1}}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("final: %v", err)
	}
	vals := final.Result.([]object.Value)
	if vals[0] != vals[1] {
		t.Fatalf("final torn: %v", vals)
	}
	if vals[0] == 0 {
		t.Fatal("no DCAS ever succeeded")
	}
}

func TestVersionsPerObjectIndependent(t *testing.T) {
	p := newProtocol(t, 2, 3, 0)
	for i := 0; i < 3; i++ {
		if _, err := p.Exec(0, mop.WriteOp{X: 0, V: object.Value(i + 1)}, mop.ExecOptions{}); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if _, err := p.Exec(1, mop.WriteOp{X: 2, V: 7}, mop.ExecOptions{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	rec, err := p.Exec(0, mop.MultiRead{Xs: []object.ID{0, 1, 2}}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if rec.TSStart.Get(0) != 3 || rec.TSStart.Get(1) != 0 || rec.TSStart.Get(2) != 1 {
		t.Fatalf("versions = %v", rec.TSStart)
	}
}

func TestAbortOnContractViolationLeavesStateUntouched(t *testing.T) {
	p := newProtocol(t, 2, 2, 0)
	bad := mop.Func{
		Objects: object.NewSet(0),
		Writes:  true,
		Body: func(txn mop.Txn) any {
			txn.Write(0, 42)
			txn.Write(1, 43) // outside footprint: violation after a write
			return nil
		},
	}
	if _, err := p.Exec(0, bad, mop.ExecOptions{}); err == nil {
		t.Fatal("violation not reported")
	}
	// The write to object 0 must have been rolled back (abort): version 0.
	rec, err := p.Exec(1, mop.MultiRead{Xs: []object.ID{0, 1}}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	vals := rec.Result.([]object.Value)
	if vals[0] != 0 || vals[1] != 0 {
		t.Fatalf("aborted operation leaked writes: %v", vals)
	}
	if rec.TSStart.Get(0) != 0 {
		t.Fatalf("aborted operation bumped a version: %v", rec.TSStart)
	}
	// And the locks must have been released (this read completed).
}

func TestUnknownFootprintObjectRejected(t *testing.T) {
	p := newProtocol(t, 2, 2, 0)
	if _, err := p.Exec(0, mop.ReadOp{X: 9}, mop.ExecOptions{}); err == nil {
		t.Fatal("unknown object accepted")
	}
}

func TestExecuteValidationAndClose(t *testing.T) {
	p, err := New(Config{Procs: 1, Reg: object.Sequential(1), Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := p.Exec(5, mop.ReadOp{X: 0}, mop.ExecOptions{}); err == nil {
		t.Fatal("invalid process accepted")
	}
	p.Close()
	if _, err := p.Exec(0, mop.ReadOp{X: 0}, mop.ExecOptions{}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

func TestDisjointFootprintsProceedConcurrently(t *testing.T) {
	// Two long sequences on disjoint objects must not serialize against
	// each other — the whole point of per-object synchronization. With a
	// fixed per-message delay, 2×k sequential ops would take ~2x the
	// wall-time of two concurrent disjoint sequences.
	p := newProtocol(t, 2, 2, 2*time.Millisecond)
	const k = 8
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < k; i++ {
				if _, err := p.Exec(w, mop.WriteOp{X: object.ID(w), V: object.Value(i)}, mop.ExecOptions{}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	concurrent := time.Since(start)

	// Same ops issued strictly sequentially from one process.
	start = time.Now()
	for w := 0; w < 2; w++ {
		for i := 0; i < k; i++ {
			if _, err := p.Exec(0, mop.WriteOp{X: object.ID(w), V: object.Value(i)}, mop.ExecOptions{}); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
	}
	sequential := time.Since(start)
	if concurrent > sequential {
		t.Fatalf("disjoint concurrent ops slower than sequential: %v vs %v", concurrent, sequential)
	}
}

func TestTrafficAccounted(t *testing.T) {
	p := newProtocol(t, 2, 2, 0)
	if _, err := p.Exec(0, mop.MultiRead{Xs: []object.ID{0, 1}}, mop.ExecOptions{}); err != nil {
		t.Fatalf("read: %v", err)
	}
	st := p.Traffic()
	// 2 locks + 2 grants + 2 releases.
	if st.Messages != 6 {
		t.Fatalf("messages = %d, want 6", st.Messages)
	}
}
