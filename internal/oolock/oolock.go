// Package oolock implements m-linearizability under the OO-constraint of
// Section 4 — synchronization "only at each object level" — as an
// alternative to the Figure 6 broadcast protocol:
//
//   - every object has a home process (owner); the home holds the only
//     authoritative copy plus the object's version counter and an
//     exclusive FIFO lock;
//   - an m-operation locks its footprint in ascending object order
//     (global order ⇒ no deadlock), receiving each object's value and
//     version with the grant;
//   - with all locks held it runs locally, then releases each lock,
//     shipping written values back to the homes (which bump versions).
//
// This is conservative strict two-phase locking over a sharded store:
// every m-operation takes effect at a single instant while holding all
// its locks, between its invocation and response — hence the executions
// are m-linearizable. Conflicting m-operations are ordered by the
// per-object lock/version order, so the history is under the
// OO-constraint (not the WW-constraint: two updates on disjoint objects
// are never synchronized), and its verification exercises the OO branch
// of Theorem 7.
//
// Compared with Figure 6: queries pay lock round-trips but only to their
// footprint's homes (no n-process broadcast), updates need no atomic
// broadcast at all, and there is no full replication — the classic
// sharding-vs-replication trade-off.
package oolock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/network"
	"moc/internal/object"
	"moc/internal/timestamp"
)

// Config parameterizes the protocol.
type Config struct {
	// Procs is the number of processes; object x is homed at x mod Procs.
	Procs int
	// Reg is the shared-object registry.
	Reg *object.Registry
	// Seed, MinDelay and MaxDelay parameterize the network.
	Seed               int64
	MinDelay, MaxDelay time.Duration
	// Faults optionally injects delivery faults; the reliable layer then
	// keeps lock grants and releases exactly-once.
	Faults *network.Faults
	// Clock returns nanoseconds since the run origin; must be monotonic.
	Clock func() int64
}

// Protocol is a running instance.
type Protocol struct {
	cfg    Config
	net    network.Link
	homes  []*homeState // indexed by process
	client []*clientState
	stop   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
	nextID atomic.Int64
}

// homeState is one process's authoritative objects.
type homeState struct {
	mu   sync.Mutex
	objs map[object.ID]*objState
}

type objState struct {
	value   object.Value
	version int64
	locked  bool
	holder  int64 // reqID of the current holder (valid when locked)
	queue   []waiter
}

type waiter struct {
	reqID int64
	from  int
}

// clientState tracks a process's in-flight lock acquisitions.
type clientState struct {
	mu      sync.Mutex
	pending map[int64]chan grantMsg
}

type lockReq struct {
	reqID int64
	x     object.ID
}

type grantMsg struct {
	reqID   int64
	x       object.ID
	value   object.Value
	version int64
}

type releaseMsg struct {
	reqID    int64
	x        object.ID
	wrote    bool
	newValue object.Value
}

// ErrClosed is returned by Execute after Close.
var ErrClosed = errors.New("oolock: protocol closed")

// New starts the protocol: one message loop per process.
func New(cfg Config) (*Protocol, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("oolock: invalid proc count %d", cfg.Procs)
	}
	if cfg.Reg == nil {
		return nil, errors.New("oolock: registry is required")
	}
	if cfg.Clock == nil {
		origin := time.Now()
		cfg.Clock = func() int64 { return time.Since(origin).Nanoseconds() }
	}
	net, err := network.NewLink(network.Config{
		Procs:    cfg.Procs,
		Seed:     cfg.Seed,
		MinDelay: cfg.MinDelay,
		MaxDelay: cfg.MaxDelay,
		Faults:   cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		cfg:    cfg,
		net:    net,
		homes:  make([]*homeState, cfg.Procs),
		client: make([]*clientState, cfg.Procs),
		stop:   make(chan struct{}),
	}
	for i := 0; i < cfg.Procs; i++ {
		p.homes[i] = &homeState{objs: make(map[object.ID]*objState)}
		p.client[i] = &clientState{pending: make(map[int64]chan grantMsg)}
	}
	for x := 0; x < cfg.Reg.Len(); x++ {
		home := p.homes[x%cfg.Procs]
		home.objs[object.ID(x)] = &objState{value: object.Initial}
	}
	for i := 0; i < cfg.Procs; i++ {
		p.wg.Add(1)
		go p.messageLoop(i)
	}
	return p, nil
}

// Home returns the process that owns object x.
func (p *Protocol) Home(x object.ID) int { return int(x) % p.cfg.Procs }

// Exec runs procedure pr as an m-operation of process proc: lock the
// footprint in ascending order, run, write back, unlock. The protocol
// shards objects across homes instead of replicating them, so there is
// no replica count to tune — only the zero consistency level is
// accepted. Callers must not invoke Exec concurrently for the same
// process.
func (p *Protocol) Exec(proc int, pr mop.Procedure, opts mop.ExecOptions) (mop.Record, error) {
	if opts.Level != history.LevelDefault {
		return mop.Record{}, fmt.Errorf("oolock: consistency level %q requires an m-lin store", opts.Level)
	}
	if p.closed.Load() {
		return mop.Record{}, ErrClosed
	}
	if proc < 0 || proc >= p.cfg.Procs {
		return mop.Record{}, fmt.Errorf("oolock: invalid process %d", proc)
	}
	fp := pr.Footprint()
	objs := fp.IDs() // ascending: the global lock order
	for _, x := range objs {
		if int(x) >= p.cfg.Reg.Len() {
			return mop.Record{}, fmt.Errorf("oolock: unknown object %d in footprint", int(x))
		}
	}

	reqID := p.nextID.Add(1)
	grants := make(chan grantMsg, 1)
	cl := p.client[proc]
	cl.mu.Lock()
	cl.pending[reqID] = grants
	cl.mu.Unlock()
	defer func() {
		cl.mu.Lock()
		delete(cl.pending, reqID)
		cl.mu.Unlock()
	}()

	inv := p.cfg.Clock()

	// Growing phase: acquire in ascending object order.
	values := make([]object.Value, p.cfg.Reg.Len())
	tsStart := timestamp.New(p.cfg.Reg.Len())
	var requested []object.ID
	for _, x := range objs {
		requested = append(requested, x)
		if err := p.net.Send(proc, p.Home(x), "oolock.lock", lockReq{reqID: reqID, x: x}, 16); err != nil {
			p.releaseAll(proc, reqID, nil, requested, nil)
			return mop.Record{}, fmt.Errorf("oolock: lock %d: %w", int(x), err)
		}
		select {
		case g := <-grants:
			if g.x != x {
				p.releaseAll(proc, reqID, nil, requested, nil)
				return mop.Record{}, fmt.Errorf("oolock: grant for %d while waiting for %d", int(g.x), int(x))
			}
			values[x] = g.value
			tsStart.Set(x, g.version)
		case <-p.stop:
			return mop.Record{}, ErrClosed
		}
	}

	// Execute locally with all locks held.
	rec := mop.NewRecorder(values, pr)
	result := pr.Run(rec)
	written := rec.Written()
	contractErr := rec.Err()

	// Shrinking phase: write back and unlock. On a contract violation
	// the m-operation aborts: locks are released without any write, so
	// the shared state is untouched (all-or-nothing).
	tsEnd := tsStart.Clone()
	var releaseWrites object.Set
	if contractErr == nil {
		releaseWrites = written
		for _, x := range written.IDs() {
			tsEnd.Bump(x)
		}
	}
	p.releaseAll(proc, reqID, values, objs, &releaseWrites)
	if contractErr != nil {
		return mop.Record{}, contractErr
	}

	return mop.Record{
		Proc:      proc,
		Update:    !written.Empty(),
		Seq:       -1, // no global order: synchronization is per object
		Ops:       rec.Ops(),
		TSStart:   tsStart,
		TSEnd:     tsEnd,
		Footprint: fp,
		Inv:       inv,
		Resp:      p.cfg.Clock(),
		Result:    result,
	}, nil
}

// releaseAll sends release messages for every object in objs. writes is
// the set of objects whose new values must be installed (nil = none).
func (p *Protocol) releaseAll(proc int, reqID int64, values []object.Value, objs []object.ID, writes *object.Set) {
	for _, x := range objs {
		msg := releaseMsg{reqID: reqID, x: x}
		if writes != nil && writes.Contains(x) {
			msg.wrote = true
			msg.newValue = values[x]
		}
		// Failures only happen at shutdown, when the homes are gone too.
		_ = p.net.Send(proc, p.Home(x), "oolock.release", msg, 24)
	}
}

// messageLoop serves process i's roles: home (lock/release handling) and
// client (grant routing).
func (p *Protocol) messageLoop(i int) {
	defer p.wg.Done()
	home := p.homes[i]
	cl := p.client[i]
	for {
		select {
		case <-p.stop:
			return
		case msg := <-p.net.Recv(i):
			switch m := msg.Payload.(type) {
			case lockReq:
				home.mu.Lock()
				st, ok := home.objs[m.x]
				if !ok {
					home.mu.Unlock()
					continue // not this home's object; ignore
				}
				if st.locked {
					st.queue = append(st.queue, waiter{reqID: m.reqID, from: msg.From})
					home.mu.Unlock()
					continue
				}
				st.locked = true
				st.holder = m.reqID
				g := grantMsg{reqID: m.reqID, x: m.x, value: st.value, version: st.version}
				home.mu.Unlock()
				if err := p.net.Send(i, msg.From, "oolock.grant", g, 32); err != nil {
					return
				}
			case releaseMsg:
				home.mu.Lock()
				st, ok := home.objs[m.x]
				if !ok {
					home.mu.Unlock()
					continue
				}
				if !st.locked || st.holder != m.reqID {
					// Not the holder: an aborting m-operation cancelling
					// a still-queued request. Remove it from the queue
					// so it is never granted to a caller that has gone.
					for qi, w := range st.queue {
						if w.reqID == m.reqID {
							st.queue = append(st.queue[:qi], st.queue[qi+1:]...)
							break
						}
					}
					home.mu.Unlock()
					continue
				}
				if m.wrote {
					st.value = m.newValue
					st.version++
				}
				var next *waiter
				if len(st.queue) > 0 {
					w := st.queue[0]
					st.queue = st.queue[1:]
					next = &w
					st.holder = w.reqID // stays locked for the next holder
				} else {
					st.locked = false
					st.holder = 0
				}
				var g grantMsg
				if next != nil {
					g = grantMsg{reqID: next.reqID, x: m.x, value: st.value, version: st.version}
				}
				home.mu.Unlock()
				if next != nil {
					if err := p.net.Send(i, next.from, "oolock.grant", g, 32); err != nil {
						return
					}
				}
			case grantMsg:
				cl.mu.Lock()
				ch, ok := cl.pending[m.reqID]
				cl.mu.Unlock()
				if ok {
					select {
					case ch <- m:
					case <-p.stop:
						return
					}
				}
			}
		}
	}
}

// Traffic returns the protocol's network counters.
func (p *Protocol) Traffic() network.Stats { return p.net.Stats() }

// Close shuts the protocol down.
func (p *Protocol) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
	p.net.Close()
	p.wg.Wait()
}
