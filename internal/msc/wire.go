package msc

import "moc/internal/wire"

// The update payload crosses the broadcast channel, which may be a real
// serializing transport (internal/transport); register it with the
// wire registry (which performs the gob registration).
func init() {
	wire.Register(updatePayload{})
}
