package msc

import "encoding/gob"

// The update payload crosses the broadcast channel, which may be a real
// serializing transport (internal/transport); register it with gob.
func init() {
	gob.Register(updatePayload{})
}
