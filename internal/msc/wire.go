package msc

import (
	"fmt"

	"moc/internal/mop"
	"moc/internal/wire"
)

// The update payload crosses the broadcast channel, which may be a real
// serializing transport (internal/transport); register it with the wire
// registry under its stable tag (the registry also performs the gob
// registration for the `-codec=gob` fallback).
func init() {
	wire.Register(wire.TagMSCUpdate, updatePayload{})
}

// MarshalWire implements wire.Marshaler.
func (m updatePayload) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, m.ReqID)
	b = wire.AppendVarint(b, int64(m.From))
	return wire.AppendAny(b, m.Proc)
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *updatePayload) UnmarshalWire(d *wire.Decoder) error {
	m.ReqID = d.Varint()
	m.From = d.Int()
	v := d.Any()
	if err := d.Err(); err != nil {
		return err
	}
	pr, ok := v.(mop.Procedure)
	if !ok {
		return fmt.Errorf("msc: wire payload procedure slot holds %T", v)
	}
	m.Proc = pr
	return nil
}
