package msc

import (
	"sync"
	"testing"

	"moc/internal/mop"
	"moc/internal/object"
)

// TestRecordsDeclareHonestFootprints pins the per-object-locking
// contract: records carry the procedure's declared footprint, not a
// full-set over-approximation, and a query's timestamp vector is
// meaningful on exactly those entries.
func TestRecordsDeclareHonestFootprints(t *testing.T) {
	p := newProtocol(t, 1, 0)
	if _, err := p.Exec(0, mop.WriteOp{X: 2, V: 7}, mop.ExecOptions{}); err != nil {
		t.Fatalf("update: %v", err)
	}
	rec, err := p.Exec(0, mop.ReadOp{X: 2}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	want := object.NewSet(2)
	if !rec.Footprint.Equal(want) {
		t.Fatalf("query footprint = %v, want %v", rec.Footprint, want)
	}
	if got := rec.TSStart.Get(2); got != 1 {
		t.Fatalf("query TSStart[2] = %d, want 1 (one prior write)", got)
	}
	urec, err := p.Exec(0, mop.WriteOp{X: 1, V: 9}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if !urec.Footprint.Equal(object.NewSet(1)) {
		t.Fatalf("update footprint = %v, want {1}", urec.Footprint)
	}
}

// TestDisjointQueriesRunDuringUpdates hammers one process with updates
// on objects {0,1} and concurrent queries on disjoint objects {2,3} and
// overlapping ones. Under the race detector this is the regression test
// for the per-object lock split: footprint-disjoint queries take no
// writer lock, so any missing synchronization on values/ts surfaces as
// a reported race, and any ordering mistake as a deadlock or a torn
// multi-object read.
func TestDisjointQueriesRunDuringUpdates(t *testing.T) {
	p := newProtocol(t, 2, 0)
	const rounds = 300
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // writer lane: transfers within {0,1}
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := p.Exec(0, mop.Transfer{From: 0, To: 1, Amount: 1}, mop.ExecOptions{}); err != nil {
				t.Errorf("transfer: %v", err)
				return
			}
		}
	}()
	go func() { // disjoint queries: {2,3} never blocks on the writer
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := p.Exec(0, mop.Sum{Xs: []object.ID{2, 3}}, mop.ExecOptions{}); err != nil {
				t.Errorf("disjoint sum: %v", err)
				return
			}
		}
	}()
	go func() { // overlapping queries: {0,1} must see atomic snapshots
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			rec, err := p.Exec(0, mop.Sum{Xs: []object.ID{0, 1}}, mop.ExecOptions{})
			if err != nil {
				t.Errorf("overlapping sum: %v", err)
				return
			}
			// Transfers conserve the total: a torn read (one object
			// pre-transfer, the other post) breaks the invariant.
			if got := rec.Result.(object.Value); got != 0 {
				t.Errorf("transfer total = %d, want 0 — torn footprint snapshot", got)
				return
			}
		}
	}()
	wg.Wait()
}
