// Package msc implements the m-sequential-consistency protocol of
// Figure 4 of Mittal & Garg (1998), an extension of the Attiya–Welch
// construction to multi-object operations:
//
//	(A1) an update m-operation is atomically broadcast to all processes;
//	(A2) on delivery, each process applies it to its local copy of the
//	     shared objects, bumping the version timestamp of every object
//	     written; the issuing process generates the response;
//	(A3) a query m-operation reads the issuing process's local copy
//	     directly — no communication at all.
//
// Queries are therefore local and fast but may observe stale state;
// Theorem 15 proves every execution is m-sequentially consistent, and
// the recorded histories are re-verified by the checker in tests.
package msc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"moc/internal/abcast"
	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/recovery"
	"moc/internal/timestamp"
)

// Config parameterizes the protocol.
type Config struct {
	// Procs is the number of processes.
	Procs int
	// Reg is the shared-object registry.
	Reg *object.Registry
	// Broadcast is the atomic broadcast service; the protocol takes
	// ownership and closes it.
	Broadcast abcast.Broadcaster
	// Clock returns nanoseconds since the run origin; it must be
	// monotonic. Defaults to a time.Since-based clock.
	Clock func() int64
}

// Protocol is a running instance of the Figure 4 protocol.
type Protocol struct {
	cfg    Config
	states []*procState
	stop   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
	nextID atomic.Int64
}

// procState is one process's replica. Two lock levels split the old
// process-wide mutex so queries on disjoint footprints never contend
// with updates:
//
//   - mu serializes the writers (the delivery loop's applies and
//     checkpoint adoption) and guards pending/applied. Whole-replica
//     readers (Snapshot, LocalTS) also take it: with every writer
//     excluded, the full values/ts vectors are stable.
//   - locks[x] guards values[x] and ts[x] against concurrent queries:
//     writers additionally write-lock their footprint, queries
//     read-lock theirs — and nothing else. A query over {y} proceeds
//     while an update writes {x}.
//
// Acquisition order is mu first, then object locks in ascending ID
// order; queries take only object locks, ascending. One global order
// means no deadlock. This split is sound for history well-formedness
// because every consumer of a Record is footprint-scoped: the trace
// reads-from derivation and the monitor axioms only inspect timestamp
// entries inside Record.Footprint, which applyFootprint now declares
// honestly instead of over-approximating with the full object set.
type procState struct {
	mu      sync.Mutex
	locks   []sync.RWMutex // one per object; guards values[x] and ts[x]
	values  []object.Value
	ts      timestamp.TS
	pending map[int64]*pendingUpdate
	// applied counts the total-order updates reflected in values/ts: the
	// replica state equals the first applied deliveries of the broadcast
	// order. A recovery checkpoint advances it past the crash outage; the
	// delivery loop then skips redelivered updates below it.
	applied int64
}

// footprintIDs returns fp's ids clipped to the replica's object range,
// ascending (Set.IDs is sorted — the shared lock-acquisition order).
// Out-of-range ids carry no lock; the Recorder rejects their accesses
// before any state is touched, so skipping them is race-safe.
func (st *procState) footprintIDs(fp object.Set) []object.ID {
	ids := fp.IDs()
	n := object.ID(len(st.values))
	lo := 0
	for lo < len(ids) && ids[lo] < 0 {
		lo++
	}
	hi := len(ids)
	for hi > lo && ids[hi-1] >= n {
		hi--
	}
	return ids[lo:hi]
}

// pendingUpdate tracks one in-flight update from issuance (A1) to the
// issuer's apply (A2): the completion channel and the invocation
// timestamp captured at submit time.
type pendingUpdate struct {
	done chan mop.Outcome
	inv  int64
}

// updatePayload is the broadcast wire payload; exported fields let a
// serializing transport (internal/transport) marshal it.
type updatePayload struct {
	ReqID int64
	From  int
	Proc  mop.Procedure
}

// RoutingFootprint lets a sharded broadcast group (internal/shard)
// route the update by the objects it touches.
func (m updatePayload) RoutingFootprint() []object.ID {
	return m.Proc.Footprint().IDs()
}

// queryToucher is implemented by the sharded broadcast group: queries
// report their footprints so the group can anchor the issuing process's
// next update after the per-shard prefixes the query observed.
type queryToucher interface {
	TouchQuery(proc int, fp []object.ID)
}

// ErrClosed is returned by Exec after Close.
var ErrClosed = errors.New("msc: protocol closed")

// New starts the protocol: one delivery loop (action A2) per process.
func New(cfg Config) (*Protocol, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("msc: invalid proc count %d", cfg.Procs)
	}
	if cfg.Reg == nil || cfg.Broadcast == nil {
		return nil, errors.New("msc: registry and broadcaster are required")
	}
	if cfg.Clock == nil {
		origin := time.Now()
		cfg.Clock = func() int64 { return time.Since(origin).Nanoseconds() }
	}
	p := &Protocol{
		cfg:    cfg,
		states: make([]*procState, cfg.Procs),
		stop:   make(chan struct{}),
	}
	for i := range p.states {
		p.states[i] = &procState{
			locks:   make([]sync.RWMutex, cfg.Reg.Len()),
			values:  make([]object.Value, cfg.Reg.Len()),
			ts:      timestamp.New(cfg.Reg.Len()),
			pending: make(map[int64]*pendingUpdate),
		}
	}
	for i := 0; i < cfg.Procs; i++ {
		p.wg.Add(1)
		go p.deliveryLoop(i)
	}
	return p, nil
}

// Exec runs procedure pr as an m-operation of process proc and blocks
// until the response event. The protocol's queries are local by
// construction (A3), so the only levels it accepts are the zero level
// and history.LevelOne — both name the Figure 4 behavior; the quorum
// and all levels need the m-lin query round and are rejected. Each
// sequential thread of control (Section 2.1) corresponds to one caller;
// distinct callers may share a process id concurrently only through
// ExecAsync's pipelined update path (the store layer keeps their
// recorded histories well-formed by modelling each issuing lane as its
// own process).
func (p *Protocol) Exec(proc int, pr mop.Procedure, opts mop.ExecOptions) (mop.Record, error) {
	switch opts.Level {
	case history.LevelDefault, history.LevelOne:
	default:
		return mop.Record{}, fmt.Errorf("msc: consistency level %q requires an m-lin store", opts.Level)
	}
	if pr.MayWrite() {
		done, err := p.ExecAsync(proc, pr, opts)
		if err != nil {
			return mop.Record{}, err
		}
		select {
		case out := <-done:
			return out.Rec, out.Err
		case <-p.stop:
			return mop.Record{}, ErrClosed
		}
	}
	if p.closed.Load() {
		return mop.Record{}, ErrClosed
	}
	if proc < 0 || proc >= p.cfg.Procs {
		return mop.Record{}, fmt.Errorf("msc: invalid process %d", proc)
	}
	return p.executeQuery(proc, pr, opts.Level)
}

// ExecAsync submits an update m-operation (A1) without waiting for
// the issuer's apply (A2) and returns a one-shot completion channel:
// the pipelined issuance path. Any number of updates may be in flight
// per process; the broadcast order fixes their relative order, and each
// completes with Inv stamped at submission and Resp at local apply.
// Close fulfills every still-pending completion with ErrClosed.
func (p *Protocol) ExecAsync(proc int, pr mop.Procedure, _ mop.ExecOptions) (<-chan mop.Outcome, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	if proc < 0 || proc >= p.cfg.Procs {
		return nil, fmt.Errorf("msc: invalid process %d", proc)
	}
	if !pr.MayWrite() {
		return nil, errors.New("msc: ExecAsync requires an update m-operation")
	}
	st := p.states[proc]
	reqID := p.nextID.Add(1)
	pu := &pendingUpdate{done: make(chan mop.Outcome, 1), inv: p.cfg.Clock()}
	st.mu.Lock()
	st.pending[reqID] = pu
	st.mu.Unlock()

	payload := updatePayload{ReqID: reqID, From: proc, Proc: pr}
	if err := p.cfg.Broadcast.Broadcast(proc, payload, mop.PayloadBytes(pr)); err != nil {
		st.mu.Lock()
		delete(st.pending, reqID)
		st.mu.Unlock()
		return nil, fmt.Errorf("msc: broadcast: %w", err)
	}
	return pu.done, nil
}

// executeQuery implements A3: apply to the local copy, atomically over
// the query's footprint. Queries take only the per-object read locks of
// their declared footprint — never the writer mutex — in the shared
// ascending order, two-phase: every lock is held before the first read
// and released only after the record is complete, so the footprint
// snapshot is atomic even though disjoint queries and updates run
// concurrently. The Recorder blocks any access outside the footprint
// before it touches state, which is what makes footprint-scoped locking
// race-safe against a misdeclared procedure.
func (p *Protocol) executeQuery(proc int, pr mop.Procedure, level history.Level) (mop.Record, error) {
	st := p.states[proc]
	inv := p.cfg.Clock()
	fp := pr.Footprint()
	ids := st.footprintIDs(fp)
	// Under a sharded broadcaster, anchor the process's next update
	// after the per-shard prefixes this query is about to observe:
	// reading shard B then writing shard A must order the write after
	// the observed state, which independent lanes alone do not give.
	if toucher, ok := p.cfg.Broadcast.(queryToucher); ok {
		toucher.TouchQuery(proc, ids)
	}
	for _, x := range ids {
		st.locks[x].RLock()
	}
	// The timestamp vector is full-length but only footprint entries are
	// populated — entries outside the held locks may be mid-write, and
	// no consumer of a query record looks beyond its footprint.
	tsStart := timestamp.New(len(st.ts))
	for _, x := range ids {
		tsStart.Set(x, st.ts.Get(x))
	}
	rec := mop.NewRecorder(st.values, pr)
	result := pr.Run(rec)
	err := rec.Err()
	ops := rec.Ops()
	for i := len(ids) - 1; i >= 0; i-- {
		st.locks[ids[i]].RUnlock()
	}
	if err != nil {
		return mop.Record{}, err
	}
	// An explicit ONE is certified as such; the zero level keeps its
	// pre-level identity (checked at the store's native condition, which
	// for this protocol is the same m-SC guarantee).
	certified := history.LevelDefault
	if level == history.LevelOne {
		certified = history.LevelOne
	}
	return mop.Record{
		Proc:         proc,
		Update:       false,
		Seq:          -1,
		Ops:          ops,
		TSStart:      tsStart,
		TSEnd:        tsStart.Clone(), // queries bump nothing
		Footprint:    fp,
		Result:       result,
		Inv:          inv,
		Resp:         p.cfg.Clock(),
		Level:        certified,
		Responders:   []int{proc},
		IsConsistent: true,
	}, nil
}

// deliveryLoop implements A2 for one process.
func (p *Protocol) deliveryLoop(proc int) {
	defer p.wg.Done()
	st := p.states[proc]
	for {
		select {
		case <-p.stop:
			return
		case d := <-p.cfg.Broadcast.Deliveries(proc):
			payload, ok := d.Payload.(updatePayload)
			if !ok {
				continue
			}
			st.mu.Lock()
			if d.Shards == nil && d.Seq < st.applied {
				// Already covered by an adopted recovery checkpoint: the
				// effects are in the replica state, so applying again would
				// double-count. An issuer still waiting locally (it crashed
				// between broadcast and delivery) gets an error outcome.
				// Sharded composite Seqs are not monotone per replica
				// stream (and recovery is disabled under sharding), so the
				// skip only applies to single-lane deliveries.
				var pu *pendingUpdate
				if payload.From == proc {
					pu = st.pending[payload.ReqID]
					delete(st.pending, payload.ReqID)
				}
				st.mu.Unlock()
				if pu != nil {
					pu.done <- mop.Outcome{Err: errors.New("msc: update subsumed by recovery checkpoint")}
				}
				continue
			}
			rec, err := st.applyUpdate(payload.Proc, payload.From, d.Seq)
			if d.Shards == nil {
				st.applied = d.Seq + 1
			}
			var pu *pendingUpdate
			if payload.From == proc {
				pu = st.pending[payload.ReqID]
				delete(st.pending, payload.ReqID)
			}
			st.mu.Unlock()
			if pu != nil {
				// A2: "the issuing process generates the response" — Resp is
				// stamped at local apply time, Inv was stamped at submission.
				rec.Inv = pu.inv
				rec.Resp = p.cfg.Clock()
				rec.Level = history.LevelAll
				rec.IsConsistent = true
				pu.done <- mop.Outcome{Rec: rec, Err: err}
			}
		}
	}
}

// applyUpdate runs update pr against the replica (A2), bumping version
// timestamps for written objects, and captures the Record. The caller
// must hold st.mu (the writer mutex); applyUpdate additionally
// write-locks the footprint so concurrent footprint-disjoint queries
// keep running. The full-vector timestamp clones are race-safe even for
// entries outside the footprint: st.mu excludes every other writer, and
// queries only read.
//
// A contract violation (write by a query, footprint escape) aborts the
// remaining accesses deterministically — every replica observes the same
// prefix of effects — so replicas stay identical; the error is reported
// to the issuer.
func (st *procState) applyUpdate(pr mop.Procedure, proc int, seq int64) (mop.Record, error) {
	fp := pr.Footprint()
	ids := st.footprintIDs(fp)
	for _, x := range ids {
		st.locks[x].Lock()
	}
	tsStart := st.ts.Clone()
	rec := mop.NewRecorder(st.values, pr)
	result := pr.Run(rec)
	for _, x := range rec.Written().IDs() {
		st.ts.Bump(x)
	}
	tsEnd := st.ts.Clone()
	for i := len(ids) - 1; i >= 0; i-- {
		st.locks[ids[i]].Unlock()
	}
	if err := rec.Err(); err != nil {
		return mop.Record{}, err
	}
	return mop.Record{
		Proc:      proc,
		Update:    seq >= 0,
		Seq:       seq,
		Ops:       rec.Ops(),
		TSStart:   tsStart,
		TSEnd:     tsEnd,
		Footprint: fp,
		Result:    result,
	}, nil
}

// Snapshot captures process proc's current checkpoint for state
// transfer (recovery.State). Holding the writer mutex is enough for a
// stable full-vector read: every mutator of values/ts holds it, and
// concurrent queries only read.
func (p *Protocol) Snapshot(proc int) recovery.Checkpoint {
	st := p.states[proc]
	st.mu.Lock()
	defer st.mu.Unlock()
	return recovery.Checkpoint{
		Values:  append([]object.Value(nil), st.values...),
		TS:      append([]int64(nil), st.ts...),
		Applied: st.applied,
	}
}

// Adopt installs ck into process proc if it is strictly fresher than the
// local replica state (recovery.State). The delivery loop skips the
// redelivered updates the checkpoint subsumes.
func (p *Protocol) Adopt(proc int, ck recovery.Checkpoint) bool {
	st := p.states[proc]
	st.mu.Lock()
	defer st.mu.Unlock()
	if ck.Applied <= st.applied || len(ck.Values) != len(st.values) || len(ck.TS) != len(st.ts) {
		return false
	}
	// Adoption rewrites every object, so unlike a footprint-scoped
	// update it must write-lock the whole replica against in-flight
	// queries.
	for i := range st.locks {
		st.locks[i].Lock()
	}
	copy(st.values, ck.Values)
	copy(st.ts, ck.TS)
	for i := len(st.locks) - 1; i >= 0; i-- {
		st.locks[i].Unlock()
	}
	st.applied = ck.Applied
	return true
}

// LocalTS returns a copy of process proc's current version vector
// (test instrumentation).
func (p *Protocol) LocalTS(proc int) timestamp.TS {
	st := p.states[proc]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ts.Clone()
}

// Close shuts the protocol down, including the broadcaster it owns.
// Every still-pending asynchronous completion is fulfilled with
// ErrClosed so no pipelined issuer waits forever.
func (p *Protocol) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
	p.cfg.Broadcast.Close()
	p.wg.Wait()
	for _, st := range p.states {
		st.mu.Lock()
		for id, pu := range st.pending {
			pu.done <- mop.Outcome{Err: ErrClosed}
			delete(st.pending, id)
		}
		st.mu.Unlock()
	}
}
