package msc

import (
	"sync"
	"testing"
	"time"

	"moc/internal/abcast"
	"moc/internal/mop"
	"moc/internal/network/testutil"
	"moc/internal/object"
)

func newProtocol(t *testing.T, procs int, maxDelay time.Duration) *Protocol {
	t.Helper()
	reg := object.Sequential(4)
	b, err := abcast.NewSequencer(abcast.SequencerConfig{Procs: procs, Seed: 42, MaxDelay: maxDelay})
	if err != nil {
		t.Fatalf("NewSequencer: %v", err)
	}
	p, err := New(Config{Procs: procs, Reg: reg, Broadcast: b})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestNewValidation(t *testing.T) {
	reg := object.Sequential(1)
	if _, err := New(Config{Procs: 0, Reg: reg}); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, err := New(Config{Procs: 1}); err == nil {
		t.Fatal("missing registry/broadcaster accepted")
	}
}

func TestUpdateThenLocalQuery(t *testing.T) {
	p := newProtocol(t, 3, 0)
	rec, err := p.Exec(0, mop.WriteOp{X: 0, V: 7}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if !rec.Update || rec.Seq < 0 {
		t.Fatalf("update record = %+v", rec)
	}
	if rec.TSEnd.Get(0) != rec.TSStart.Get(0)+1 {
		t.Fatalf("version not bumped: %v -> %v", rec.TSStart, rec.TSEnd)
	}
	// The issuer's own query must see its own write (process order).
	q, err := p.Exec(0, mop.ReadOp{X: 0}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if q.Update || q.Seq != -1 {
		t.Fatalf("query record = %+v", q)
	}
	if q.Result.(object.Value) != 7 {
		t.Fatalf("query result = %v", q.Result)
	}
	if q.Inv <= rec.Resp {
		t.Fatal("event times not monotone across m-operations of one process")
	}
}

func TestQueryIsPurelyLocal(t *testing.T) {
	// With an enormous broadcast delay, queries still return immediately.
	p := newProtocol(t, 2, 0)
	start := time.Now()
	if _, err := p.Exec(1, mop.ReadOp{X: 0}, mop.ExecOptions{}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("local query took %v", elapsed)
	}
}

func TestAllReplicasConverge(t *testing.T) {
	p := newProtocol(t, 4, time.Millisecond)
	var wg sync.WaitGroup
	for proc := 0; proc < 4; proc++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := p.Exec(proc, mop.WriteOp{X: object.ID(proc % 4), V: object.Value(proc*100 + i)}, mop.ExecOptions{}); err != nil {
					t.Errorf("P%d update %d: %v", proc, i, err)
					return
				}
			}
		}(proc)
	}
	wg.Wait()
	// After quiescing (all updates were delivered at their issuers; other
	// replicas may lag briefly), poll until all timestamps agree. On
	// timeout the helper dumps the broadcast transport counters, so a
	// hung delivery is diagnosable.
	testutil.Eventually(t, 10*time.Second, func() bool {
		ts0 := p.LocalTS(0)
		for proc := 1; proc < 4; proc++ {
			if !p.LocalTS(proc).Equal(ts0) {
				return false
			}
		}
		return ts0.Sum() == 40
	}, testutil.Source("broadcast", p.cfg.Broadcast.NetStats))
}

func TestDCASThroughProtocol(t *testing.T) {
	p := newProtocol(t, 2, time.Millisecond)
	if _, err := p.Exec(0, mop.MAssign{Writes: map[object.ID]object.Value{0: 1, 1: 2}}, mop.ExecOptions{}); err != nil {
		t.Fatalf("seed: %v", err)
	}
	rec, err := p.Exec(1, mop.DCAS{X1: 0, X2: 1, Old1: 1, Old2: 2, New1: 10, New2: 20}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("DCAS: %v", err)
	}
	if !rec.Result.(bool) {
		t.Fatal("DCAS should succeed after assignment")
	}
	rec2, err := p.Exec(0, mop.DCAS{X1: 0, X2: 1, Old1: 1, Old2: 2, New1: 0, New2: 0}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("DCAS2: %v", err)
	}
	if rec2.Result.(bool) {
		t.Fatal("stale DCAS should fail")
	}
}

func TestConservativeUpdateClassification(t *testing.T) {
	// A failed CAS writes nothing but MayWrite()==true: it must still be
	// broadcast (Update=true, a delivery sequence assigned) and must not
	// bump any version.
	p := newProtocol(t, 2, 0)
	rec, err := p.Exec(0, mop.CAS{X: 0, Old: 99, New: 1}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("CAS: %v", err)
	}
	if !rec.Update || rec.Seq < 0 {
		t.Fatalf("conservative update not broadcast: %+v", rec)
	}
	if !rec.TSStart.Equal(rec.TSEnd) {
		t.Fatal("no-write update bumped a version")
	}
}

func TestContractViolationSurfacesToIssuer(t *testing.T) {
	p := newProtocol(t, 2, 0)
	bad := mop.Func{
		Objects: object.NewSet(0),
		Writes:  true,
		Body:    func(txn mop.Txn) any { txn.Write(3, 1); return nil },
	}
	if _, err := p.Exec(0, bad, mop.ExecOptions{}); err == nil {
		t.Fatal("footprint escape not reported")
	}
	// The protocol must remain usable afterwards.
	if _, err := p.Exec(0, mop.WriteOp{X: 0, V: 1}, mop.ExecOptions{}); err != nil {
		t.Fatalf("protocol wedged after violation: %v", err)
	}
}

func TestExecuteValidation(t *testing.T) {
	p := newProtocol(t, 2, 0)
	if _, err := p.Exec(5, mop.ReadOp{X: 0}, mop.ExecOptions{}); err == nil {
		t.Fatal("invalid process accepted")
	}
}

func TestExecuteAfterClose(t *testing.T) {
	reg := object.Sequential(1)
	b, err := abcast.NewSequencer(abcast.SequencerConfig{Procs: 1, Seed: 1})
	if err != nil {
		t.Fatalf("NewSequencer: %v", err)
	}
	p, err := New(Config{Procs: 1, Reg: reg, Broadcast: b})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p.Close()
	if _, err := p.Exec(0, mop.ReadOp{X: 0}, mop.ExecOptions{}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

func TestStaleLocalReadIsPossible(t *testing.T) {
	// The defining behaviour of the Figure 4 protocol: after an update
	// responds at P0, P1's local query may still see the old value. With
	// a long broadcast delay this is virtually guaranteed... except at
	// the issuer, whose response itself waits for delivery. Repeat until
	// observed.
	reg := object.Sequential(1)
	stale := false
	for trial := 0; trial < 40 && !stale; trial++ {
		b, err := abcast.NewSequencer(abcast.SequencerConfig{
			Procs: 2, Seed: int64(trial), MinDelay: 0, MaxDelay: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewSequencer: %v", err)
		}
		p, err := New(Config{Procs: 2, Reg: reg, Broadcast: b})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := p.Exec(0, mop.WriteOp{X: 0, V: 1}, mop.ExecOptions{}); err != nil {
			t.Fatalf("update: %v", err)
		}
		rec, err := p.Exec(1, mop.ReadOp{X: 0}, mop.ExecOptions{})
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		if rec.Result.(object.Value) == 0 {
			stale = true
		}
		p.Close()
	}
	if !stale {
		t.Fatal("no stale local read observed in 40 trials — query locality broken?")
	}
}
