// Package wire is the registry of every payload type that may cross
// the TCP transport inside a gob-encoded frame. Protocol packages
// (abcast, msc, mlin, recovery, mop) register their wire structs here
// instead of calling gob.Register directly; the registry both performs
// the gob registration and remembers the concrete type, so tests can
// enumerate every registered kind and prove each one round-trips
// through the codec. A payload type that skips Register would decode
// as "gob: name not registered" the first time it crossed a real wire
// — the enumeration makes that a compile-adjacent test failure
// instead of a runtime surprise.
package wire

import (
	"encoding/gob"
	"reflect"
	"sync"
)

var (
	mu    sync.Mutex
	types []reflect.Type
	seen  = make(map[reflect.Type]bool)
)

// Register records v's concrete type and registers it with gob.
// Idempotent per type; safe for concurrent use (registration happens
// in package init functions, but tests may call it too).
func Register(v any) {
	gob.Register(v)
	t := reflect.TypeOf(v)
	mu.Lock()
	defer mu.Unlock()
	if !seen[t] {
		seen[t] = true
		types = append(types, t)
	}
}

// Types returns the concrete types registered so far, in registration
// order. The slice is a copy; callers may not mutate registry state
// through it.
func Types() []reflect.Type {
	mu.Lock()
	defer mu.Unlock()
	out := make([]reflect.Type, len(types))
	copy(out, types)
	return out
}
