// Package wire is the registry of every payload type that may cross
// the TCP transport inside a frame, and the hand-rolled binary codec
// those frames use on the hot path. Protocol packages (abcast, msc,
// mlin, recovery, mop) register their wire structs here with a stable
// numeric tag instead of calling gob.Register directly; the registry
// performs the gob registration (for the `-codec=gob` fallback),
// remembers the concrete type, and indexes it by tag so the binary
// codec can marshal `any` payload slots without reflection on the
// encode path. Tests enumerate every registered kind and prove each one
// round-trips through both codecs. A payload type that skips Register
// would fail to encode the first time it crossed a real wire — the
// enumeration makes that a compile-adjacent test failure instead of a
// runtime surprise.
//
// Tags are part of the wire format and must never be renumbered; see
// tags.go for the authoritative allocation table.
package wire

import (
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
)

// Tag is the stable numeric identity of one registered payload kind on
// the wire. Tags 0–15 are reserved for the codec's built-in value
// encodings (nil, bool, integers, strings, ...); registered kinds start
// at 16.
type Tag uint16

// Marshaler is implemented by every registered payload type: append the
// binary encoding of the receiver to b and return the extended slice.
// The only failure mode is a nested `any` slot holding an unregistered
// type.
type Marshaler interface {
	MarshalWire(b []byte) ([]byte, error)
}

// Unmarshaler is implemented by the pointer type of every registered
// payload kind: decode the receiver from d, consuming exactly the bytes
// MarshalWire produced. Implementations must be panic-free on truncated
// or corrupt input — return d.Err() instead.
type Unmarshaler interface {
	UnmarshalWire(d *Decoder) error
}

type registration struct {
	typ reflect.Type
	tag Tag
}

var (
	regMu sync.Mutex
	types []reflect.Type
	// byType maps a concrete payload type to its tag; byTag maps back.
	// Both are copy-on-write maps republished under regMu so the encode
	// hot path reads them without locking.
	byType atomic.Pointer[map[reflect.Type]Tag]
	byTag  atomic.Pointer[map[Tag]reflect.Type]
)

func init() {
	empty1 := make(map[reflect.Type]Tag)
	empty2 := make(map[Tag]reflect.Type)
	byType.Store(&empty1)
	byTag.Store(&empty2)
}

// Register records v's concrete type under the given stable tag,
// registers it with gob (the fallback codec), and verifies the codec
// contract: v must implement Marshaler and *T must implement
// Unmarshaler. Registration happens in package init functions, so
// violations panic — they are programming errors, caught the first time
// any test imports the package.
func Register(tag Tag, v any) {
	if tag < FirstKindTag {
		panic(fmt.Sprintf("wire: tag %d is inside the built-in range [0,%d)", tag, FirstKindTag))
	}
	if _, ok := v.(Marshaler); !ok {
		panic(fmt.Sprintf("wire: %T does not implement wire.Marshaler", v))
	}
	t := reflect.TypeOf(v)
	if _, ok := reflect.New(t).Interface().(Unmarshaler); !ok {
		panic(fmt.Sprintf("wire: *%v does not implement wire.Unmarshaler", t))
	}
	gob.Register(v)

	regMu.Lock()
	defer regMu.Unlock()
	oldByType, oldByTag := *byType.Load(), *byTag.Load()
	if prev, dup := oldByType[t]; dup {
		if prev != tag {
			panic(fmt.Sprintf("wire: %v registered twice with tags %d and %d", t, prev, tag))
		}
		return // idempotent re-registration
	}
	if prev, dup := oldByTag[tag]; dup {
		panic(fmt.Sprintf("wire: tag %d claimed by both %v and %v", tag, prev, t))
	}
	newByType := make(map[reflect.Type]Tag, len(oldByType)+1)
	for k, val := range oldByType {
		newByType[k] = val
	}
	newByType[t] = tag
	newByTag := make(map[Tag]reflect.Type, len(oldByTag)+1)
	for k, val := range oldByTag {
		newByTag[k] = val
	}
	newByTag[tag] = t
	byType.Store(&newByType)
	byTag.Store(&newByTag)
	types = append(types, t)
}

// Types returns the concrete types registered so far, in registration
// order. The slice is a copy; callers may not mutate registry state
// through it.
func Types() []reflect.Type {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]reflect.Type, len(types))
	copy(out, types)
	return out
}

// TagOf returns the registered tag for v's concrete type.
func TagOf(v any) (Tag, bool) {
	tag, ok := (*byType.Load())[reflect.TypeOf(v)]
	return tag, ok
}

// typeOf returns the concrete type registered under tag.
func typeOf(tag Tag) (reflect.Type, bool) {
	t, ok := (*byTag.Load())[tag]
	return t, ok
}
