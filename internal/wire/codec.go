package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
)

// This file is the binary codec: append-style encoding primitives that
// write into caller-provided buffers (so the transport's send path can
// run allocation-free out of a buffer pool) and a bounds-checked,
// panic-free Decoder for the receive path. Integers travel as varints,
// strings and byte slices as length-prefixed runs, and `any` slots as a
// uvarint tag (built-in 0–15 or a registered kind) followed by the
// value's own encoding.

// ErrUnknownType is returned when an `any` slot holds a type that is
// neither a built-in nor registered with the wire registry.
var ErrUnknownType = errors.New("wire: payload type not registered")

// ErrTruncated is the Decoder's error for inputs that end before the
// value they promise.
var ErrTruncated = errors.New("wire: truncated input")

// ErrCorrupt is the Decoder's error for inputs that are well-sized but
// structurally invalid (bad varint, unknown tag, oversized count).
var ErrCorrupt = errors.New("wire: corrupt input")

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v as a zigzag varint.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendString appends s as a length-prefixed run of bytes.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends p as a length-prefixed run of bytes.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendInt64s appends vs as a count-prefixed run of varints.
func AppendInt64s(b []byte, vs []int64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.AppendVarint(b, v)
	}
	return b
}

// AppendAny appends one `any` value slot: a uvarint tag followed by the
// value's encoding. Built-in scalars get the reserved tags 0–15; every
// other type must be registered (its Marshaler encodes the body).
func AppendAny(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return binary.AppendUvarint(b, uint64(tagNil)), nil
	case bool:
		if x {
			return binary.AppendUvarint(b, uint64(tagTrue)), nil
		}
		return binary.AppendUvarint(b, uint64(tagFalse)), nil
	case int64:
		b = binary.AppendUvarint(b, uint64(tagInt64))
		return binary.AppendVarint(b, x), nil
	case int:
		b = binary.AppendUvarint(b, uint64(tagInt))
		return binary.AppendVarint(b, int64(x)), nil
	case string:
		b = binary.AppendUvarint(b, uint64(tagString))
		return AppendString(b, x), nil
	case []byte:
		b = binary.AppendUvarint(b, uint64(tagBytes))
		return AppendBytes(b, x), nil
	case float64:
		b = binary.AppendUvarint(b, uint64(tagFloat64))
		return binary.BigEndian.AppendUint64(b, math.Float64bits(x)), nil
	case uint64:
		b = binary.AppendUvarint(b, uint64(tagUint64))
		return binary.AppendUvarint(b, x), nil
	case []int64:
		b = binary.AppendUvarint(b, uint64(tagInt64s))
		return AppendInt64s(b, x), nil
	}
	tag, ok := TagOf(v)
	if !ok {
		return nil, fmt.Errorf("%w: %T", ErrUnknownType, v)
	}
	b = binary.AppendUvarint(b, uint64(tag))
	return v.(Marshaler).MarshalWire(b)
}

// Decoder consumes a binary-codec byte run. All methods are panic-free:
// the first structural problem latches an error, every later read
// returns zero values, and Err reports the failure. Byte-slice reads
// alias the input buffer (zero-copy); callers that retain them beyond
// the buffer's lifetime must copy.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder over buf.
func NewDecoder(buf []byte) Decoder { return Decoder{buf: buf} }

// Err returns the first error the decoder hit, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many undecoded bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uvarint decodes one unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(fmt.Errorf("%w: uvarint overflow at offset %d", ErrCorrupt, d.off))
		}
		return 0
	}
	d.off += n
	return v
}

// Varint decodes one zigzag varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(fmt.Errorf("%w: varint overflow at offset %d", ErrCorrupt, d.off))
		}
		return 0
	}
	d.off += n
	return v
}

// Int decodes one varint as an int.
func (d *Decoder) Int() int { return int(d.Varint()) }

// take returns the next n bytes of the buffer (aliased, not copied).
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.fail(ErrTruncated)
		return nil
	}
	out := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return out
}

// String decodes one length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return ""
	}
	return string(d.take(int(n)))
}

// Bytes decodes one length-prefixed byte run, aliasing the input.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	return d.take(int(n))
}

// Float64 decodes one big-endian float64.
func (d *Decoder) Float64() float64 {
	b := d.take(8)
	if d.err != nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// ArrayLen decodes a count prefix and validates it against the bytes
// actually remaining: each element needs at least elemMin bytes, so a
// count promising more elements than the input can hold is corrupt —
// this is what keeps a hostile length from forcing a huge allocation
// before any element is even decoded.
func (d *Decoder) ArrayLen(elemMin int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64(d.Remaining()/elemMin) {
		d.fail(fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrCorrupt, n, d.Remaining()))
		return 0
	}
	return int(n)
}

// Int64s decodes a count-prefixed run of varints.
func (d *Decoder) Int64s() []int64 {
	n := d.ArrayLen(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.Varint()
		if d.err != nil {
			return nil
		}
	}
	return out
}

// Any decodes one `any` value slot (the inverse of AppendAny).
func (d *Decoder) Any() any {
	tag := Tag(d.Uvarint())
	if d.err != nil {
		return nil
	}
	switch tag {
	case tagNil:
		return nil
	case tagFalse:
		return false
	case tagTrue:
		return true
	case tagInt64:
		return d.Varint()
	case tagInt:
		return d.Int()
	case tagString:
		return d.String()
	case tagBytes:
		b := d.Bytes()
		if b == nil {
			return []byte(nil)
		}
		// Copy: the decoded value may outlive the frame buffer.
		return append([]byte(nil), b...)
	case tagFloat64:
		return d.Float64()
	case tagUint64:
		return d.Uvarint()
	case tagInt64s:
		return d.Int64s()
	}
	typ, ok := typeOf(tag)
	if !ok {
		d.fail(fmt.Errorf("%w: unknown wire tag %d", ErrCorrupt, tag))
		return nil
	}
	pv := reflect.New(typ)
	if err := pv.Interface().(Unmarshaler).UnmarshalWire(d); err != nil {
		d.fail(err)
		return nil
	}
	if d.err != nil {
		return nil
	}
	return pv.Elem().Interface()
}
