package wire

// The authoritative tag allocation table. Tags are written to the wire
// (as the leading uvarint of every `any` value slot), so they are part
// of the frame format: NEVER renumber or reuse a tag — retire it and
// allocate the next free number in the owner package's block. Each
// protocol package owns one block and registers its (unexported) types
// against these constants in its wire.go.
const (
	// 0–15: built-in value encodings, owned by the codec itself
	// (codec.go). These never correspond to registered types.
	tagNil     Tag = 0
	tagFalse   Tag = 1
	tagTrue    Tag = 2
	tagInt64   Tag = 3
	tagInt     Tag = 4
	tagString  Tag = 5
	tagBytes   Tag = 6
	tagFloat64 Tag = 7
	tagUint64  Tag = 8
	tagInt64s  Tag = 9

	// FirstKindTag is the first tag available to registered kinds.
	FirstKindTag Tag = 16

	// 16–39: abcast (atomic broadcast protocols and the batching layer).
	TagSeqRequest    Tag = 16
	TagSeqOrder      Tag = 17
	TagSeqSubmit     Tag = 18
	TagSeqHB         Tag = 19
	TagSeqSyncReq    Tag = 20
	TagSeqSyncResp   Tag = 21
	TagSeqNewView    Tag = 22
	TagLamportSubmit Tag = 23
	TagLamportData   Tag = 24
	TagLamportAck    Tag = 25
	TagTokenMsg      Tag = 26
	TagTokenOrder    Tag = 27
	TagTokHB         Tag = 28
	TagTokSyncReq    Tag = 29
	TagTokSyncResp   Tag = 30
	TagTokCatchup    Tag = 31
	TagBatchMsg      Tag = 32

	// 40–47: msc (m-sequential consistency, Figure 4).
	TagMSCUpdate Tag = 40

	// 48–55: mlin (m-linearizability, Figure 6).
	TagMLinUpdate    Tag = 48
	TagMLinQueryMsg  Tag = 49
	TagMLinQueryResp Tag = 50
	TagMLinApplyAck  Tag = 51

	// 56–63: recovery (checkpoint transfer).
	TagXferReq  Tag = 56
	TagXferResp Tag = 57

	// 64–95: mop (declarative procedures riding inside update payloads).
	TagReadOp    Tag = 64
	TagWriteOp   Tag = 65
	TagMultiRead Tag = 66
	TagSum       Tag = 67
	TagMAssign   Tag = 68
	TagCAS       Tag = 69
	TagDCAS      Tag = 70
	TagTransfer  Tag = 71

	// 96–111: verify (record streaming to the live verification service).
	TagMonHello Tag = 96
	TagMonBatch Tag = 97
	TagMonAck   Tag = 98
	TagMonFin   Tag = 99

	// 112–119: shard (cross-shard ticket/commit merge).
	TagShardTicket Tag = 112
	TagShardCommit Tag = 113

	// 1000+: test-only payloads (network/testutil).
	TagConformance Tag = 1000
)
