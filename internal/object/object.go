// Package object defines shared-object identities and values for the
// multi-object distributed-operation model of Mittal & Garg (1998).
//
// Objects are referred to by name (a human-readable string) and, within a
// fixed Registry, by a dense integer index. The dense index is what the
// timestamp vectors of the paper's Section 5 protocols are indexed by, so
// all components that exchange version vectors must share one Registry.
package object

import (
	"fmt"
	"sort"
)

// ID is the dense index of a shared object within a Registry. The paper
// writes objects as x, y, z, ...; here each such object is an ID.
type ID int

// Value is the value stored in a shared object. The paper's examples use
// small integers; int64 is general enough for every workload in this
// repository (register contents, account balances, stack node links, ...).
type Value = int64

// Initial is the value every object holds after the imaginary initial
// m-operation of Section 2.1 ("initial value of all objects is 0").
const Initial Value = 0

// Registry maps object names to dense IDs. A Registry is immutable after
// construction (build it with NewRegistry), which makes it safe for
// concurrent use by every process of a simulated system without locking.
type Registry struct {
	names   []string
	indexOf map[string]ID
}

// NewRegistry builds a registry for the given object names. Duplicate
// names are rejected so that IDs are unambiguous.
func NewRegistry(names []string) (*Registry, error) {
	r := &Registry{
		names:   make([]string, len(names)),
		indexOf: make(map[string]ID, len(names)),
	}
	copy(r.names, names)
	for i, n := range r.names {
		if n == "" {
			return nil, fmt.Errorf("object %d: empty name", i)
		}
		if prev, dup := r.indexOf[n]; dup {
			return nil, fmt.Errorf("object %q: duplicate of object %d", n, prev)
		}
		r.indexOf[n] = ID(i)
	}
	return r, nil
}

// MustRegistry is NewRegistry for static, programmer-controlled name lists
// (examples, tests). It panics on the errors NewRegistry would report,
// which can only arise from a malformed literal.
func MustRegistry(names ...string) *Registry {
	r, err := NewRegistry(names)
	if err != nil {
		panic(err)
	}
	return r
}

// Sequential builds a registry of n objects named "x0".."x<n-1>". It is
// the convenient form for generated workloads.
func Sequential(n int) *Registry {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	r, err := NewRegistry(names)
	if err != nil {
		// Unreachable: generated names are non-empty and unique.
		panic(err)
	}
	return r
}

// Len reports the number of registered objects.
func (r *Registry) Len() int { return len(r.names) }

// Name returns the name of object id, or a diagnostic placeholder if id is
// out of range (so that formatting corrupt data never panics).
func (r *Registry) Name(id ID) string {
	if id < 0 || int(id) >= len(r.names) {
		return fmt.Sprintf("obj#%d", int(id))
	}
	return r.names[id]
}

// Lookup returns the ID for name and whether it is registered.
func (r *Registry) Lookup(name string) (ID, bool) {
	id, ok := r.indexOf[name]
	return id, ok
}

// Names returns a copy of all registered names in ID order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Set is an immutable set of object IDs, the representation used for the
// paper's objects(α), wobjects(α) and robjects(α). The zero value is the
// empty set.
type Set struct {
	sorted []ID
}

// NewSet builds a set from ids, deduplicating and sorting.
func NewSet(ids ...ID) Set {
	if len(ids) == 0 {
		return Set{}
	}
	sorted := make([]ID, len(ids))
	copy(sorted, ids)
	// Insertion sort: footprints are tiny, and this runs on the protocol
	// apply path where sort.Slice's closure and reflection allocations
	// are measurable.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:1]
	for _, id := range sorted[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return Set{sorted: out}
}

// FullSet returns the set {0, ..., n-1} of every object of an n-object
// registry.
func FullSet(n int) Set {
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(i)
	}
	return Set{sorted: ids}
}

// Len reports the number of elements.
func (s Set) Len() int { return len(s.sorted) }

// Empty reports whether the set has no elements (the paper's "= φ").
func (s Set) Empty() bool { return len(s.sorted) == 0 }

// Contains reports membership of id.
func (s Set) Contains(id ID) bool {
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] >= id })
	return i < len(s.sorted) && s.sorted[i] == id
}

// IDs returns the elements in ascending order. The returned slice is a
// copy; mutating it does not affect the set.
func (s Set) IDs() []ID {
	out := make([]ID, len(s.sorted))
	copy(out, s.sorted)
	return out
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	merged := make([]ID, 0, len(s.sorted)+len(t.sorted))
	merged = append(merged, s.sorted...)
	merged = append(merged, t.sorted...)
	return NewSet(merged...)
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var out []ID
	i, j := 0, 0
	for i < len(s.sorted) && j < len(t.sorted) {
		switch {
		case s.sorted[i] < t.sorted[j]:
			i++
		case s.sorted[i] > t.sorted[j]:
			j++
		default:
			out = append(out, s.sorted[i])
			i++
			j++
		}
	}
	return Set{sorted: out}
}

// Intersects reports whether s ∩ t ≠ φ without allocating.
func (s Set) Intersects(t Set) bool {
	i, j := 0, 0
	for i < len(s.sorted) && j < len(t.sorted) {
		switch {
		case s.sorted[i] < t.sorted[j]:
			i++
		case s.sorted[i] > t.sorted[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	if len(s.sorted) != len(t.sorted) {
		return false
	}
	for i := range s.sorted {
		if s.sorted[i] != t.sorted[i] {
			return false
		}
	}
	return true
}

// String renders the set using registry-free numeric names, e.g. "{1, 4}".
func (s Set) String() string {
	out := "{"
	for i, id := range s.sorted {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%d", int(id))
	}
	return out + "}"
}
