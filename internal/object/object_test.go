package object

import (
	"testing"
	"testing/quick"
)

func TestNewRegistryRejectsDuplicates(t *testing.T) {
	if _, err := NewRegistry([]string{"x", "y", "x"}); err == nil {
		t.Fatal("expected error for duplicate name")
	}
}

func TestNewRegistryRejectsEmptyName(t *testing.T) {
	if _, err := NewRegistry([]string{"x", ""}); err == nil {
		t.Fatal("expected error for empty name")
	}
}

func TestRegistryLookupAndName(t *testing.T) {
	r := MustRegistry("x", "y", "z")
	if r.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", r.Len())
	}
	id, ok := r.Lookup("y")
	if !ok || id != 1 {
		t.Fatalf("Lookup(y) = %d, %v; want 1, true", id, ok)
	}
	if _, ok := r.Lookup("w"); ok {
		t.Fatal("Lookup(w) succeeded for unregistered name")
	}
	if got := r.Name(2); got != "z" {
		t.Fatalf("Name(2) = %q, want z", got)
	}
	if got := r.Name(99); got != "obj#99" {
		t.Fatalf("Name(99) = %q, want placeholder", got)
	}
	if got := r.Name(-1); got != "obj#-1" {
		t.Fatalf("Name(-1) = %q, want placeholder", got)
	}
}

func TestRegistryNamesIsACopy(t *testing.T) {
	r := MustRegistry("x", "y")
	names := r.Names()
	names[0] = "mutated"
	if r.Name(0) != "x" {
		t.Fatal("mutating Names() result leaked into registry")
	}
}

func TestSequentialRegistry(t *testing.T) {
	r := Sequential(4)
	if r.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", r.Len())
	}
	id, ok := r.Lookup("x3")
	if !ok || id != 3 {
		t.Fatalf("Lookup(x3) = %d, %v", id, ok)
	}
}

func TestSetDeduplicatesAndSorts(t *testing.T) {
	s := NewSet(3, 1, 3, 2, 1)
	want := []ID{1, 2, 3}
	got := s.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
	}
}

func TestSetMembership(t *testing.T) {
	s := NewSet(1, 4, 9)
	for _, id := range []ID{1, 4, 9} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false, want true", id)
		}
	}
	for _, id := range []ID{0, 2, 5, 10} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true, want false", id)
		}
	}
}

func TestEmptySet(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("zero Set is not empty")
	}
	if s.Contains(0) {
		t.Fatal("empty set claims membership")
	}
	if s.Intersects(NewSet(1, 2)) {
		t.Fatal("empty set intersects")
	}
	if !s.Equal(NewSet()) {
		t.Fatal("empty sets not equal")
	}
}

func TestSetUnionIntersect(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(3, 4)
	u := a.Union(b)
	if !u.Equal(NewSet(1, 2, 3, 4)) {
		t.Fatalf("Union = %v", u)
	}
	i := a.Intersect(b)
	if !i.Equal(NewSet(3)) {
		t.Fatalf("Intersect = %v", i)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects = false, want true")
	}
	if a.Intersects(NewSet(7, 8)) {
		t.Fatal("Intersects = true for disjoint sets")
	}
}

func TestSetString(t *testing.T) {
	if got := NewSet(2, 1).String(); got != "{1, 2}" {
		t.Fatalf("String() = %q", got)
	}
	if got := NewSet().String(); got != "{}" {
		t.Fatalf("String() = %q", got)
	}
}

// Property: Intersects agrees with Intersect().Empty() for arbitrary sets.
func TestSetIntersectsMatchesIntersect(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := setFromBytes(xs)
		b := setFromBytes(ys)
		return a.Intersects(b) == !a.Intersect(b).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Union is commutative and contains both operands.
func TestSetUnionProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := setFromBytes(xs)
		b := setFromBytes(ys)
		u := a.Union(b)
		if !u.Equal(b.Union(a)) {
			return false
		}
		for _, id := range a.IDs() {
			if !u.Contains(id) {
				return false
			}
		}
		for _, id := range b.IDs() {
			if !u.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect elements belong to both operands.
func TestSetIntersectProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := setFromBytes(xs)
		b := setFromBytes(ys)
		for _, id := range a.Intersect(b).IDs() {
			if !a.Contains(id) || !b.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func setFromBytes(xs []uint8) Set {
	ids := make([]ID, len(xs))
	for i, x := range xs {
		ids[i] = ID(x % 16)
	}
	return NewSet(ids...)
}
