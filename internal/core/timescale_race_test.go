//go:build race

package core

// crashTimeScale stretches every timing constant of the crash-test
// schedules under the race detector. The failover and bounded-query
// correctness arguments are explicitly conditional on timing (see
// failover.go): the detection timeout and the query deadline must
// dominate the worst-case delivery-plus-processing delay, or a live
// process can be falsely suspected (and excluded from ack quorums) and
// a query can time out before slow-but-live responders answer. -race
// dilates message processing roughly an order of magnitude, which
// breaks that dominance at the wall-clock constants used in normal
// builds. Scaling the whole schedule — crash instants, detection
// timeout, query deadline, and workload phase boundaries together —
// keeps the same relative structure (suspicion still matures inside
// each crash window, failover is still exercised) while restoring the
// headroom the timing assumption requires.
const crashTimeScale = 4
