package core

import (
	"sync"
	"testing"
	"time"

	"moc/internal/checker"
	"moc/internal/object"
)

func TestCausalStoreBasics(t *testing.T) {
	s := newStore(t, Config{Procs: 2, Consistency: MCausal, Seed: 1})
	p0, _ := s.Process(0)
	x, _ := s.Object("x")
	if err := p0.Write(x, 7); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v, err := p0.Read(x)
	if err != nil || v != 7 {
		t.Fatalf("Read = %d, %v", v, err)
	}
	if msgs, _ := s.BroadcastCost(); msgs != 0 {
		t.Fatal("causal store should have no broadcaster")
	}
}

func TestCausalStoreVerifies(t *testing.T) {
	s := newStore(t, Config{
		Procs: 3, Consistency: MCausal, Seed: 2, MaxDelay: 2 * time.Millisecond,
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if j%2 == 0 {
					if err := p.Write(object.ID(j%3), object.Value(i*100+j+1)); err != nil {
						t.Errorf("write: %v", err)
					}
				} else if _, err := p.MultiRead(0, 1, 2); err != nil {
					t.Errorf("read: %v", err)
				}
			}
		}(i, p)
	}
	wg.Wait()

	res, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.OK {
		t.Fatal("causal protocol produced a non-m-causal history")
	}
}

// TestCausalHierarchySeparation hunts for a run of the causal protocol
// that is m-causal but NOT m-sequentially consistent — two processes
// observing concurrent writes in opposite orders. This is the E12
// hierarchy separation.
func TestCausalHierarchySeparation(t *testing.T) {
	foundSplit := false
	for seed := int64(0); seed < 120 && !foundSplit; seed++ {
		s, err := New(Config{
			Procs: 4, Objects: []string{"x"}, Consistency: MCausal,
			Seed: seed, MinDelay: 0, MaxDelay: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}

		// P0 and P1 write x concurrently; P2 and P3 poll and may observe
		// the two writes in opposite orders.
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			p, _ := s.Process(w)
			wg.Add(1)
			go func(w int, p *Process) {
				defer wg.Done()
				if err := p.Write(0, object.Value(w+1)); err != nil {
					t.Errorf("write: %v", err)
				}
			}(w, p)
		}
		for r := 2; r < 4; r++ {
			p, _ := s.Process(r)
			wg.Add(1)
			go func(p *Process) {
				defer wg.Done()
				for i := 0; i < 12; i++ {
					if _, err := p.Read(0); err != nil {
						t.Errorf("read: %v", err)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}(p)
		}
		wg.Wait()

		res, err := s.Verify()
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if !res.OK {
			t.Fatal("causal protocol violated m-causal consistency")
		}
		sc, err := checker.MSequentiallyConsistent(res.History)
		if err != nil {
			t.Fatalf("MSC: %v", err)
		}
		if !sc.Admissible {
			foundSplit = true
		}
		s.Close()
	}
	if !foundSplit {
		t.Fatal("no causal-but-not-sequentially-consistent run found in 120 seeds")
	}
}

func TestCausalStoreMultiObjectAtomicity(t *testing.T) {
	// Even the weakest protocol keeps m-operations atomic: pairs written
	// together are always observed together.
	s := newStore(t, Config{
		Procs: 3, Objects: []string{"x", "y"}, Consistency: MCausal,
		Seed: 9, MaxDelay: 2 * time.Millisecond,
	})
	x, _ := s.Object("x")
	y, _ := s.Object("y")
	var wg sync.WaitGroup
	p0, _ := s.Process(0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 10; i++ {
			if err := p0.MAssign(map[object.ID]object.Value{x: object.Value(i), y: object.Value(i)}); err != nil {
				t.Errorf("assign: %v", err)
			}
		}
	}()
	for r := 1; r < 3; r++ {
		p, _ := s.Process(r)
		wg.Add(1)
		go func(p *Process) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				vals, err := p.MultiRead(x, y)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if vals[0] != vals[1] {
					t.Errorf("torn read under causal: %v", vals)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	res, err := s.Verify()
	if err != nil || !res.OK {
		t.Fatalf("Verify = %+v, %v", res, err)
	}
}
