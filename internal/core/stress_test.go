package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"moc/internal/object"
	"moc/internal/workload"
)

// TestStressEightProcesses scales each protocol to 8 processes × 24
// m-operations under randomized delays and verifies the result with the
// polynomial procedure (the exact decider would be too slow at this
// size — which is itself the paper's point).
func TestStressEightProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short")
	}
	for _, cons := range []Consistency{MSequential, MLinearizable, MLinearizableLocking} {
		cons := cons
		t.Run(cons.String(), func(t *testing.T) {
			t.Parallel()
			const procs = 8
			names := make([]string, 6)
			for i := range names {
				names[i] = string(rune('a' + i))
			}
			s, err := New(Config{
				Procs: procs, Objects: names, Consistency: cons,
				Seed: 77, MaxDelay: 500 * time.Microsecond,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer s.Close()

			var wg sync.WaitGroup
			errCh := make(chan error, procs)
			for pi := 0; pi < procs; pi++ {
				p, _ := s.Process(pi)
				wg.Add(1)
				go func(pi int, p *Process) {
					defer wg.Done()
					for j := 0; j < 24; j++ {
						var err error
						switch j % 3 {
						case 0:
							err = p.MAssign(map[object.ID]object.Value{
								object.ID((pi + j) % 6):     object.Value(pi*1000 + j + 1),
								object.ID((pi + j + 1) % 6): object.Value(pi*1000 + j + 500),
							})
						case 1:
							_, err = p.MultiRead(object.ID(j%6), object.ID((j+2)%6))
						default:
							_, err = p.CAS(object.ID(j%6), 0, object.Value(pi*1000+j+900))
						}
						if err != nil {
							errCh <- err
							return
						}
					}
				}(pi, p)
			}
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}

			res, err := s.Verify()
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if !res.OK {
				t.Fatalf("%v stress run failed verification", cons)
			}
			if got := res.History.Len() - 1; got != procs*24 {
				t.Fatalf("recorded %d m-operations, want %d", got, procs*24)
			}
		})
	}
}

// TestSameProcessExecutesSerialize: Execute calls racing on ONE Process
// handle must serialize (processes are sequential threads of control) —
// otherwise the recorded subhistory would overlap and History() would
// reject it as non-well-formed.
func TestSameProcessExecutesSerialize(t *testing.T) {
	s := newStore(t, Config{Procs: 1, Consistency: MLinearizable, Seed: 31})
	p, _ := s.Process(0)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := p.Write(0, object.Value(g*100+i+1)); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	h, err := s.History()
	if err != nil {
		t.Fatalf("History: %v (same-process executions overlapped?)", err)
	}
	if h.Len()-1 != 40 {
		t.Fatalf("recorded %d, want 40", h.Len()-1)
	}
	res, err := s.Verify()
	if err != nil || !res.OK {
		t.Fatalf("Verify = %+v, %v", res, err)
	}
}

// TestHotContentionWorkload drives a skewed (hot-set) mix through the
// locking protocol — the adversarial case for per-object locking — and
// verifies correctness is unaffected.
func TestHotContentionWorkload(t *testing.T) {
	s := newStore(t, Config{
		Procs: 4, Objects: []string{"h0", "h1", "c0", "c1", "c2", "c3"},
		Consistency: MLinearizableLocking, Seed: 33,
	})
	mix := workload.Mix{ReadFrac: 0.3, Span: 2, OpsPerProc: 8, HotFrac: 0.8, HotObjects: 2}
	plans := mix.Plan(4, 6, newRand(33))
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for pi := 0; pi < 4; pi++ {
		p, _ := s.Process(pi)
		wg.Add(1)
		go func(plan []workload.Op, p *Process) {
			defer wg.Done()
			for _, op := range plan {
				var err error
				if op.Query {
					_, err = p.MultiRead(op.Objs...)
				} else {
					writes := make(map[object.ID]object.Value, len(op.Objs))
					for i, x := range op.Objs {
						writes[x] = op.Vals[i]
					}
					err = p.MAssign(writes)
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(plans[pi], p)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	res, err := s.Verify()
	if err != nil || !res.OK {
		t.Fatalf("Verify = %+v, %v", res, err)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
