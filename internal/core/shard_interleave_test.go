package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"moc/internal/checker"
	"moc/internal/monitor"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/shard"
	"moc/internal/verify"
)

// TestShardInterleaving is the randomized cross-shard harness: seeded
// workloads mixing single-shard operations (which ride one broadcast
// lane untouched) with cross-shard m-operations (ordered by the
// two-phase ticket/merge), across both broadcast consistencies, several
// broadcast implementations, shard counts, and — on m-linearizable
// stores — randomized per-request query levels. Every run is then held
// to the full verification stack:
//
//   - Store.Verify, the polynomial sharded path (per-object version
//     chains under the OO-constraint);
//   - the trace roundtrip (Trace → MergeTraces → BuildHistory) followed
//     by the UNCHANGED exact deciders — the sharded store composes
//     per-shard total orders, and the checkers must accept the merged
//     history without knowing shards exist;
//   - the online pipeline mocmon runs (Section 5 monitor + incremental
//     Theorem 7 checker), which must report zero violations.
//
// Short mode keeps a couple of seeds per case for `make quick`; the
// full run is the soak `make verify` uses.
func TestShardInterleaving(t *testing.T) {
	seeds := int64(5)
	opsPerProc := 6
	if testing.Short() {
		seeds, opsPerProc = 2, 4
	}
	const procs = 3
	names := []string{"o0", "o1", "o2", "o3", "o4", "o5", "o6", "o7"}

	type tcase struct {
		cons   Consistency
		bcast  BroadcastKind
		shards int
	}
	var cases []tcase
	for _, cons := range []Consistency{MSequential, MLinearizable} {
		cases = append(cases,
			tcase{cons, SequencerBroadcast, 2},
			tcase{cons, TokenBroadcast, 4},
			tcase{cons, LamportBroadcast, 2},
		)
	}
	bcastName := map[BroadcastKind]string{
		SequencerBroadcast: "seq", LamportBroadcast: "lamport", TokenBroadcast: "token",
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%v-%s-s%d", tc.cons, bcastName[tc.bcast], tc.shards), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < seeds; seed++ {
				runShardInterleaving(t, tc.cons, tc.bcast, tc.shards, procs, names, opsPerProc, seed)
			}
		})
	}
}

func runShardInterleaving(t *testing.T, cons Consistency, bcast BroadcastKind, shards, procs int, names []string, opsPerProc int, seed int64) {
	t.Helper()
	// Odd-seed m-linearizable runs randomize per-request query levels;
	// those are held to the mixed condition (m-SC overall, m-lin on the
	// strong subset) — a ONE query is allowed to read stale, so the
	// full-strength m-lin deciders do not apply to them. Even seeds stay
	// strong-only and exercise the polynomial sharded Verify path.
	leveled := cons == MLinearizable && seed%2 == 1
	s, err := New(Config{
		Procs: procs, Objects: names, Consistency: cons, Broadcast: bcast,
		Shards: shards, Seed: seed, MaxDelay: 300 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("seed %d: New: %v", seed, err)
	}
	defer s.Close()
	smap := s.ShardMap()

	// Per-process plans are drawn up front from one seeded source, so a
	// failing (cons, bcast, shards, seed) tuple replays exactly.
	rng := rand.New(rand.NewSource(seed*1000 + int64(shards)))
	plans := make([][]shardPlannedOp, procs)
	nextVal := object.Value(1)
	for pi := range plans {
		for j := 0; j < opsPerProc; j++ {
			op := planShardOp(rng, smap, len(names), leveled)
			for i := range op.vals {
				op.vals[i] = nextVal
				nextVal++
			}
			plans[pi] = append(plans[pi], op)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, procs)
	for pi := 0; pi < procs; pi++ {
		p, _ := s.Process(pi)
		wg.Add(1)
		go func(plan []shardPlannedOp, p *Process) {
			defer wg.Done()
			for _, op := range plan {
				var pr mop.Procedure
				if op.query {
					pr = mop.MultiRead{Xs: op.objs}
				} else {
					writes := make(map[object.ID]object.Value, len(op.objs))
					for i, x := range op.objs {
						writes[x] = op.vals[i]
					}
					pr = mop.MAssign{Writes: writes}
				}
				if _, err := p.Exec(pr, ExecOptions{Level: op.level}); err != nil {
					errCh <- err
					return
				}
			}
		}(plans[pi], p)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("seed %d: %v", seed, err)
	default:
	}

	// Layer 1: the store's own guarantee — the polynomial sharded path
	// for single-level runs, the exact mixed deciders for leveled ones.
	if leveled {
		res, err := s.VerifyLeveled()
		if err != nil {
			t.Fatalf("seed %d: VerifyLeveled: %v", seed, err)
		}
		if !res.OK {
			t.Fatalf("seed %d: sharded leveled %v store failed mixed-level verification", seed, bcast)
		}
	} else {
		res, err := s.Verify()
		if err != nil {
			t.Fatalf("seed %d: Verify: %v", seed, err)
		}
		if !res.OK {
			t.Fatalf("seed %d: sharded %v/%v store failed its own verification", seed, cons, bcast)
		}
	}

	// Layer 2: trace roundtrip into the unchanged exact deciders.
	tr, err := s.Trace(0)
	if err != nil {
		t.Fatalf("seed %d: Trace: %v", seed, err)
	}
	if tr.Shards != s.ShardSpec() || tr.Shards == "" {
		t.Fatalf("seed %d: trace shard spec %q, store %q", seed, tr.Shards, s.ShardSpec())
	}
	recs, reg, mergedCons, err := MergeTraces(tr)
	if err != nil {
		t.Fatalf("seed %d: MergeTraces: %v", seed, err)
	}
	if mergedCons != cons {
		t.Fatalf("seed %d: merged consistency %v, want %v", seed, mergedCons, cons)
	}
	h, _, err := BuildHistory(reg, recs)
	if err != nil {
		t.Fatalf("seed %d: BuildHistory: %v", seed, err)
	}
	switch {
	case cons == MSequential:
		exact, err := checker.MSequentiallyConsistent(h)
		if err != nil {
			t.Fatalf("seed %d: exact m-SC: %v", seed, err)
		}
		if !exact.Admissible {
			t.Fatalf("seed %d: merged sharded history rejected by the exact m-SC decider", seed)
		}
	case leveled:
		// Queries carried randomized per-request levels, so the mixed
		// condition applies: m-SC overall, m-lin on the strong subset.
		mixed, err := checker.MixedLevels(h)
		if err != nil {
			t.Fatalf("seed %d: exact mixed: %v", seed, err)
		}
		if !mixed.Consistent {
			t.Fatalf("seed %d: merged sharded history rejected by the exact mixed-level deciders", seed)
		}
	default:
		exact, err := checker.MLinearizable(h)
		if err != nil {
			t.Fatalf("seed %d: exact m-lin: %v", seed, err)
		}
		if !exact.Admissible {
			t.Fatalf("seed %d: merged sharded history rejected by the exact m-lin decider", seed)
		}
	}

	// Layer 3: the live pipeline (merge → monitor → incremental checker)
	// exactly as mocmon would consume the streamed records.
	level := monitor.MSCLevel
	if cons == MLinearizable {
		level = monitor.MLinLevel
	}
	sorted := s.Records()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Resp < sorted[j].Resp })
	pipe := verify.NewPipeline(verify.PipelineConfig{
		NumObjects: len(names), Level: level, Shards: shards,
	})
	for _, rec := range sorted {
		pipe.Observe(rec)
	}
	if vs := pipe.Finish(); len(vs) != 0 {
		t.Fatalf("seed %d: online pipeline violations on a sharded run: %v", seed, vs)
	}
}

// shardPlannedOp is one pre-drawn m-operation of the interleaving
// workload.
type shardPlannedOp struct {
	objs  []object.ID
	vals  []object.Value // filled with globally distinct values for updates
	query bool
	level Level
}

// planShardOp draws one operation: half the time a single-shard
// footprint (1–2 objects of one shard), otherwise a cross-shard one
// (one object from each of 2–3 distinct shards, or fewer when the map
// has fewer). In leveled runs queries get a random per-request level.
func planShardOp(rng *rand.Rand, smap *shard.Map, numObjects int, leveled bool) shardPlannedOp {
	var op shardPlannedOp
	byShard := make([][]object.ID, smap.Shards())
	for x := 0; x < numObjects; x++ {
		s := smap.Of(object.ID(x))
		byShard[s] = append(byShard[s], object.ID(x))
	}
	if rng.Intn(2) == 0 {
		s := rng.Intn(smap.Shards())
		objs := byShard[s]
		op.objs = append(op.objs, objs[rng.Intn(len(objs))])
		if len(objs) > 1 && rng.Intn(2) == 0 {
			for {
				x := objs[rng.Intn(len(objs))]
				if x != op.objs[0] {
					op.objs = append(op.objs, x)
					break
				}
			}
		}
	} else {
		want := 2 + rng.Intn(2)
		if want > smap.Shards() {
			want = smap.Shards()
		}
		perm := rng.Perm(smap.Shards())
		for _, s := range perm[:want] {
			objs := byShard[s]
			op.objs = append(op.objs, objs[rng.Intn(len(objs))])
		}
	}
	op.query = rng.Intn(100) < 40
	op.vals = make([]object.Value, len(op.objs))
	if op.query && leveled {
		op.level = []Level{One, Quorum, All}[rng.Intn(3)]
	}
	return op
}
