package core

import (
	"sort"
	"sync"
	"testing"
	"time"

	"moc/internal/checker"
	"moc/internal/monitor"
	"moc/internal/object"
)

func TestLockingStoreBasics(t *testing.T) {
	s := newStore(t, Config{Procs: 2, Consistency: MLinearizableLocking, Seed: 1})
	p0, _ := s.Process(0)
	p1, _ := s.Process(1)
	x, _ := s.Object("x")
	y, _ := s.Object("y")

	if err := p0.MAssign(map[object.ID]object.Value{x: 1, y: 2}); err != nil {
		t.Fatalf("MAssign: %v", err)
	}
	ok, err := p1.DCAS(x, y, 1, 2, 10, 20)
	if err != nil || !ok {
		t.Fatalf("DCAS = %v, %v", ok, err)
	}
	vals, err := p0.MultiRead(x, y)
	if err != nil || vals[0] != 10 || vals[1] != 20 {
		t.Fatalf("MultiRead = %v, %v", vals, err)
	}
	if msgs, _ := s.BroadcastCost(); msgs != 0 {
		t.Fatal("locking store should have no broadcast traffic")
	}
	if s.LockTraffic().Messages == 0 {
		t.Fatal("locking store traffic unaccounted")
	}
}

func TestLockingStoreVerifiesOOTheorem7(t *testing.T) {
	s := newStore(t, Config{
		Procs: 4, Consistency: MLinearizableLocking,
		Seed: 2, MaxDelay: time.Millisecond,
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				if j%2 == 0 {
					if err := p.Write(object.ID(j%3), object.Value(i*100+j+1)); err != nil {
						t.Errorf("write: %v", err)
					}
				} else if _, err := p.MultiRead(0, 1, 2); err != nil {
					t.Errorf("read: %v", err)
				}
			}
		}(i, p)
	}
	wg.Wait()

	res, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.OK {
		t.Fatal("locking protocol produced a non-m-linearizable history")
	}
	// Agreement with the exact decider.
	exact, err := checker.MLinearizable(res.History)
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	if !exact.Admissible {
		t.Fatal("exact decider disagrees with OO Theorem 7 verification")
	}
}

func TestLockingStoreAxiomsAndMonitor(t *testing.T) {
	s := newStore(t, Config{
		Procs: 3, Consistency: MLinearizableLocking,
		Seed: 3, MaxDelay: time.Millisecond,
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if err := p.Write(object.ID((i+j)%3), object.Value(i*10+j+1)); err != nil {
					t.Errorf("write: %v", err)
				}
				if _, err := p.Sum(0, 1); err != nil {
					t.Errorf("sum: %v", err)
				}
			}
		}(i, p)
	}
	wg.Wait()

	recs := s.Records()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Resp < recs[j].Resp })
	if v := monitor.ValidateAxioms(recs, s.Registry().Len(), monitor.MLinLevel); len(v) != 0 {
		t.Fatalf("axiom violations on a locking run: %v", v)
	}
	m := monitor.NewMonitor(s.Registry().Len(), monitor.MLinLevel)
	for _, rec := range recs {
		m.Observe(rec)
	}
	if v := m.Finish(); len(v) != 0 {
		t.Fatalf("monitor violations: %v", v)
	}
}

func TestLockingStoreDisjointConcurrency(t *testing.T) {
	// The OO-constraint's selling point: updates on disjoint objects are
	// not globally synchronized. Exercise heavy disjoint traffic and
	// verify the history is still m-linearizable.
	s := newStore(t, Config{
		Procs: 2, Objects: []string{"a", "b"},
		Consistency: MLinearizableLocking, Seed: 4,
	})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		p, _ := s.Process(w)
		wg.Add(1)
		go func(w int, p *Process) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if err := p.Write(object.ID(w), object.Value(i+1)); err != nil {
					t.Errorf("write: %v", err)
				}
			}
		}(w, p)
	}
	wg.Wait()
	res, err := s.Verify()
	if err != nil || !res.OK {
		t.Fatalf("Verify = %+v, %v", res, err)
	}
}

func TestLockingStoreTransferConservation(t *testing.T) {
	s := newStore(t, Config{
		Procs: 3, Objects: []string{"a", "b", "c"},
		Consistency: MLinearizableLocking, Seed: 5, MaxDelay: time.Millisecond,
	})
	p0, _ := s.Process(0)
	if err := p0.MAssign(map[object.ID]object.Value{0: 100, 1: 100, 2: 100}); err != nil {
		t.Fatalf("seed: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				from := object.ID((i + j) % 3)
				to := object.ID((i + j + 1) % 3)
				if _, err := p.Transfer(from, to, object.Value(1+j%5)); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
				total, err := p.Sum(0, 1, 2)
				if err != nil {
					t.Errorf("sum: %v", err)
					return
				}
				if total != 300 {
					t.Errorf("conservation violated: %d", total)
					return
				}
			}
		}(i, p)
	}
	wg.Wait()
	res, err := s.Verify()
	if err != nil || !res.OK {
		t.Fatalf("Verify = %+v, %v", res, err)
	}
}
