package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"moc/internal/checker"
	"moc/internal/object"
)

func newStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Objects == nil {
		cfg.Objects = []string{"x", "y", "z"}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Procs: 0, Objects: []string{"x"}}); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, err := New(Config{Procs: 1, Objects: []string{"x", "x"}}); err == nil {
		t.Fatal("duplicate objects accepted")
	}
	if _, err := New(Config{Procs: 1, Objects: []string{"x"}, Consistency: Consistency(9)}); err == nil {
		t.Fatal("unknown consistency accepted")
	}
	if _, err := New(Config{Procs: 1, Objects: []string{"x"}, Broadcast: BroadcastKind(9)}); err == nil {
		t.Fatal("unknown broadcast accepted")
	}
}

func TestBasicReadWrite(t *testing.T) {
	for _, cons := range []Consistency{MSequential, MLinearizable} {
		t.Run(cons.String(), func(t *testing.T) {
			s := newStore(t, Config{Procs: 2, Consistency: cons, Seed: 1})
			x, err := s.Object("x")
			if err != nil {
				t.Fatalf("Object: %v", err)
			}
			p0, err := s.Process(0)
			if err != nil {
				t.Fatalf("Process: %v", err)
			}
			if err := p0.Write(x, 42); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, err := p0.Read(x)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if got != 42 {
				t.Fatalf("Read = %d, want 42", got)
			}
		})
	}
}

func TestObjectAndProcessValidation(t *testing.T) {
	s := newStore(t, Config{Procs: 1, Seed: 2})
	if _, err := s.Object("nope"); err == nil {
		t.Fatal("unknown object accepted")
	}
	if _, err := s.Process(5); err == nil {
		t.Fatal("invalid process accepted")
	}
	if s.Procs() != 1 {
		t.Fatalf("Procs = %d", s.Procs())
	}
}

func TestConvenienceOperations(t *testing.T) {
	s := newStore(t, Config{Procs: 1, Seed: 3})
	p, _ := s.Process(0)
	x, _ := s.Object("x")
	y, _ := s.Object("y")

	if err := p.MAssign(map[object.ID]object.Value{x: 10, y: 20}); err != nil {
		t.Fatalf("MAssign: %v", err)
	}
	vals, err := p.MultiRead(x, y)
	if err != nil || vals[0] != 10 || vals[1] != 20 {
		t.Fatalf("MultiRead = %v, %v", vals, err)
	}
	sum, err := p.Sum(x, y)
	if err != nil || sum != 30 {
		t.Fatalf("Sum = %d, %v", sum, err)
	}
	ok, err := p.CAS(x, 10, 11)
	if err != nil || !ok {
		t.Fatalf("CAS = %v, %v", ok, err)
	}
	ok, err = p.DCAS(x, y, 11, 20, 1, 2)
	if err != nil || !ok {
		t.Fatalf("DCAS = %v, %v", ok, err)
	}
	ok, err = p.Transfer(y, x, 2)
	if err != nil || !ok {
		t.Fatalf("Transfer = %v, %v", ok, err)
	}
	got, _ := p.Read(x)
	if got != 3 {
		t.Fatalf("x = %d after transfer, want 3", got)
	}
}

func TestHistoryReconstruction(t *testing.T) {
	s := newStore(t, Config{Procs: 2, Consistency: MLinearizable, Seed: 4})
	p0, _ := s.Process(0)
	p1, _ := s.Process(1)
	x, _ := s.Object("x")

	if err := p0.Write(x, 5); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if v, err := p1.Read(x); err != nil || v != 5 {
		t.Fatalf("Read = %d, %v", v, err)
	}

	h, err := s.History()
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	// init + write + read.
	if h.Len() != 3 {
		t.Fatalf("history len = %d", h.Len())
	}
	// The read must read from the write, not from init.
	updates, err := s.UpdateOrder()
	if err != nil {
		t.Fatalf("UpdateOrder: %v", err)
	}
	if len(updates) != 1 {
		t.Fatalf("updates = %v", updates)
	}
	queries := h.Queries()
	if len(queries) != 1 {
		t.Fatalf("queries = %v", queries)
	}
	if src, ok := h.ReadsFromSource(queries[0], x); !ok || src != updates[0] {
		t.Fatalf("read source = %d, %v", int(src), ok)
	}
}

func TestVerifyMLinearizable(t *testing.T) {
	s := newStore(t, Config{Procs: 3, Consistency: MLinearizable, Seed: 5, MaxDelay: 2 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			x := object.ID(i % 3)
			for j := 0; j < 6; j++ {
				if j%2 == 0 {
					if err := p.Write(x, object.Value(i*100+j)); err != nil {
						t.Errorf("write: %v", err)
					}
				} else {
					if _, err := p.MultiRead(0, 1, 2); err != nil {
						t.Errorf("read: %v", err)
					}
				}
			}
		}(i, p)
	}
	wg.Wait()

	res, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.OK {
		t.Fatal("m-linearizable store produced a non-m-linearizable history (Theorem 20 violated)")
	}
	// Cross-check with the exact (NP-hard) decider.
	exact, err := checker.MLinearizable(res.History)
	if err != nil {
		t.Fatalf("exact check: %v", err)
	}
	if !exact.Admissible {
		t.Fatal("exact checker disagrees with Theorem 7 verification")
	}
}

func TestVerifyMSequential(t *testing.T) {
	s := newStore(t, Config{Procs: 3, Consistency: MSequential, Seed: 6, MaxDelay: 2 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				if j%2 == 0 {
					if err := p.Write(object.ID(i%3), object.Value(i*100+j)); err != nil {
						t.Errorf("write: %v", err)
					}
				} else if _, err := p.Sum(0, 1, 2); err != nil {
					t.Errorf("sum: %v", err)
				}
			}
		}(i, p)
	}
	wg.Wait()

	res, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.OK {
		t.Fatal("m-SC store produced a non-m-SC history (Theorem 15 violated)")
	}
	exact, err := checker.MSequentiallyConsistent(res.History)
	if err != nil {
		t.Fatalf("exact check: %v", err)
	}
	if !exact.Admissible {
		t.Fatal("exact checker disagrees")
	}
}

// TestMSCIsNotMLinearizable demonstrates the separation between the two
// protocols: a stale local read of the Figure 4 protocol yields a history
// that is m-sequentially consistent but NOT m-linearizable.
func TestMSCIsNotMLinearizable(t *testing.T) {
	foundStale := false
	for trial := 0; trial < 40 && !foundStale; trial++ {
		s := newStore(t, Config{
			Procs: 2, Objects: []string{"x"}, Consistency: MSequential,
			Seed: int64(trial), MaxDelay: 30 * time.Millisecond,
		})
		p0, _ := s.Process(0)
		p1, _ := s.Process(1)
		x, _ := s.Object("x")
		if err := p0.Write(x, 1); err != nil {
			t.Fatalf("write: %v", err)
		}
		v, err := p1.Read(x)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if v != 0 {
			continue // not stale this time
		}
		foundStale = true

		res, err := s.Verify()
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if !res.OK {
			t.Fatal("stale read must still be m-sequentially consistent")
		}
		lin, err := checker.MLinearizable(res.History)
		if err != nil {
			t.Fatalf("MLinearizable: %v", err)
		}
		if lin.Admissible {
			t.Fatal("a stale read after a responded update cannot be m-linearizable")
		}
	}
	if !foundStale {
		t.Fatal("no stale read observed in 40 trials")
	}
}

func TestLamportBroadcastStore(t *testing.T) {
	s := newStore(t, Config{
		Procs: 3, Consistency: MLinearizable, Broadcast: LamportBroadcast,
		Seed: 8, MaxDelay: time.Millisecond,
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if err := p.Write(object.ID(j%3), object.Value(i*10+j)); err != nil {
					t.Errorf("write: %v", err)
				}
			}
		}(i, p)
	}
	wg.Wait()
	res, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.OK {
		t.Fatal("Lamport-broadcast store not m-linearizable")
	}
}

func TestDCASConcurrencyNoTornReads(t *testing.T) {
	// Concurrent DCAS pairs (x, y) must always be seen consistent:
	// every MultiRead observes x == y.
	s := newStore(t, Config{
		Procs: 4, Objects: []string{"x", "y"}, Consistency: MLinearizable,
		Seed: 9, MaxDelay: time.Millisecond,
	})
	x, _ := s.Object("x")
	y, _ := s.Object("y")
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(p *Process) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				vals, err := p.MultiRead(x, y)
				if err != nil {
					t.Errorf("read pair: %v", err)
					return
				}
				if _, err := p.DCAS(x, y, vals[0], vals[1], vals[0]+1, vals[1]+1); err != nil {
					t.Errorf("DCAS: %v", err)
					return
				}
			}
		}(p)
	}
	for i := 2; i < 4; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(p *Process) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				vals, err := p.MultiRead(x, y)
				if err != nil {
					t.Errorf("audit: %v", err)
					return
				}
				if vals[0] != vals[1] {
					t.Errorf("torn read: x=%d y=%d", vals[0], vals[1])
					return
				}
			}
		}(p)
	}
	wg.Wait()
	res, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.OK {
		t.Fatal("history not m-linearizable")
	}
}

func TestHistoryErrorsWhenRecordingDisabled(t *testing.T) {
	s := newStore(t, Config{Procs: 1, Seed: 10, DisableRecording: true})
	p, _ := s.Process(0)
	if err := p.Write(0, 1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := s.History(); !errors.Is(err, ErrRecordingDisabled) {
		t.Fatalf("err = %v, want ErrRecordingDisabled", err)
	}
}

func TestExecuteAfterClose(t *testing.T) {
	s, err := New(Config{Procs: 1, Objects: []string{"x"}, Seed: 11})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p, _ := s.Process(0)
	s.Close()
	if _, err := p.Read(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestQueryTrafficByConsistency(t *testing.T) {
	msc := newStore(t, Config{Procs: 3, Consistency: MSequential, Seed: 12})
	p, _ := msc.Process(0)
	if _, err := p.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if msc.QueryTraffic().Messages != 0 {
		t.Fatal("m-SC queries must be local (no traffic)")
	}

	lin := newStore(t, Config{Procs: 3, Consistency: MLinearizable, Seed: 13})
	pl, _ := lin.Process(0)
	if _, err := pl.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if lin.QueryTraffic().Messages == 0 {
		t.Fatal("m-lin queries must generate traffic")
	}
}

func TestRelevantOnlyStoreVerifies(t *testing.T) {
	s := newStore(t, Config{
		Procs: 3, Consistency: MLinearizable, RelevantOnly: true,
		Seed: 14, MaxDelay: time.Millisecond,
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				if j%2 == 0 {
					if err := p.Write(object.ID(j%3), object.Value(i*10+j)); err != nil {
						t.Errorf("write: %v", err)
					}
				} else if _, err := p.Read(object.ID((j + i) % 3)); err != nil {
					t.Errorf("read: %v", err)
				}
			}
		}(i, p)
	}
	wg.Wait()
	res, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.OK {
		t.Fatal("relevant-only m-lin store not m-linearizable — Section 5.2 optimization broken")
	}
}

func TestVerifyWitnessRespectsSemantics(t *testing.T) {
	s := newStore(t, Config{Procs: 2, Consistency: MLinearizable, Seed: 15})
	p0, _ := s.Process(0)
	x, _ := s.Object("x")
	for i := 1; i <= 5; i++ {
		if err := p0.Write(x, object.Value(i)); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	res, err := s.Verify()
	if err != nil || !res.OK {
		t.Fatalf("Verify = %+v, %v", res, err)
	}
	finals := res.Witness.Replay(res.History)
	if finals[x] != 5 {
		t.Fatalf("witness replay final x = %d, want 5", finals[x])
	}
}

func TestVerifyExactAgreesWithVerify(t *testing.T) {
	for _, cons := range []Consistency{MSequential, MLinearizable, MLinearizableLocking, MCausal} {
		s := newStore(t, Config{Procs: 2, Consistency: cons, Seed: 41})
		p0, _ := s.Process(0)
		p1, _ := s.Process(1)
		if err := p0.Write(0, 1); err != nil {
			t.Fatalf("%v: write: %v", cons, err)
		}
		if _, err := p1.Read(0); err != nil {
			t.Fatalf("%v: read: %v", cons, err)
		}
		fast, err := s.Verify()
		if err != nil {
			t.Fatalf("%v: Verify: %v", cons, err)
		}
		exact, err := s.VerifyExact()
		if err != nil {
			t.Fatalf("%v: VerifyExact: %v", cons, err)
		}
		if fast.OK != exact.OK {
			t.Fatalf("%v: Verify=%v VerifyExact=%v", cons, fast.OK, exact.OK)
		}
		if !exact.OK {
			t.Fatalf("%v: run failed exact verification", cons)
		}
	}
}
