package core

import (
	"fmt"

	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/timestamp"
)

// Trace is the JSON-serializable dump of one store's (or one daemon's)
// recorded execution: the raw protocol records plus the configuration
// needed to interpret them. Traces from the daemons of one cluster are
// combined with MergeTraces into the record set BuildHistory (and thus
// the checkers) consume. Only the version-vector protocols (MSequential,
// MLinearizable) are supported — the tag-based causal records are not
// part of the wire format, matching the Links restriction.
type Trace struct {
	// Node identifies the dumping process (daemon index); informational.
	Node int `json:"node"`
	// Consistency is the store's condition ("m-sequential" or
	// "m-linearizable"); merged traces must agree.
	Consistency string `json:"consistency"`
	// Objects is the registry name list, in ID order; merged traces must
	// agree.
	Objects []string `json:"objects"`
	// Shards is the canonical shard-map spec (shard.Map.Spec, e.g.
	// "mod:8/4") of a sharded store, empty when unsharded. Records from
	// stores with different shard maps carry incomparable sequence
	// numbers, so merged traces must agree.
	Shards string `json:"shards,omitempty"`
	// Records are the m-operations this process executed.
	Records []TraceRecord `json:"records"`
}

// TraceRecord is the wire form of one mop.Record.
type TraceRecord struct {
	Proc      int       `json:"proc"`
	Update    bool      `json:"update"`
	Seq       int64     `json:"seq"`
	Ops       []TraceOp `json:"ops"`
	TSStart   []int64   `json:"tsStart"`
	TSEnd     []int64   `json:"tsEnd"`
	Footprint []int     `json:"footprint"`
	Inv       int64     `json:"inv"`
	Resp      int64     `json:"resp"`
	// Level is the certified consistency level ("one", "quorum", "all");
	// empty for level-less legacy records, which the checkers hold to the
	// store's native condition.
	Level      string `json:"level,omitempty"`
	Responders []int  `json:"responders,omitempty"`
	Consistent bool   `json:"consistent,omitempty"`
}

// TraceOp is the wire form of one read or write within an m-operation.
type TraceOp struct {
	Kind string       `json:"kind"` // "r" or "w"
	Obj  int          `json:"obj"`
	Val  object.Value `json:"val"`
}

// Trace dumps the store's recorded execution for cross-process merging.
// The store must be quiescent (no Execute in flight), like History.
func (s *Store) Trace(node int) (Trace, error) {
	if s.cfg.DisableRecording {
		return Trace{}, ErrRecordingDisabled
	}
	if s.cfg.Consistency != MSequential && s.cfg.Consistency != MLinearizable {
		return Trace{}, fmt.Errorf("core: trace dump is not supported for %v", s.cfg.Consistency)
	}
	s.mu.Lock()
	if s.inFlight != 0 {
		s.mu.Unlock()
		return Trace{}, ErrInFlight
	}
	recs := make([]mop.Record, len(s.records))
	copy(recs, s.records)
	s.mu.Unlock()

	tr := Trace{
		Node:        node,
		Consistency: s.cfg.Consistency.String(),
		Objects:     s.reg.Names(),
		Shards:      s.ShardSpec(),
		Records:     make([]TraceRecord, 0, len(recs)),
	}
	for _, rec := range recs {
		tr.Records = append(tr.Records, toTraceRecord(rec))
	}
	return tr, nil
}

// toTraceRecord converts one raw protocol record to its wire form.
func toTraceRecord(rec mop.Record) TraceRecord {
	wr := TraceRecord{
		Proc: rec.Proc, Update: rec.Update, Seq: rec.Seq,
		TSStart: rec.TSStart, TSEnd: rec.TSEnd,
		Inv: rec.Inv, Resp: rec.Resp,
		Level: rec.Level.String(), Responders: rec.Responders,
		Consistent: rec.IsConsistent,
	}
	for _, op := range rec.Ops {
		wr.Ops = append(wr.Ops, TraceOp{Kind: op.Kind.String(), Obj: int(op.Obj), Val: op.Val})
	}
	for _, id := range rec.Footprint.IDs() {
		wr.Footprint = append(wr.Footprint, int(id))
	}
	return wr
}

// fromTraceRecord converts one wire record back to the raw form.
func fromTraceRecord(wr TraceRecord) (mop.Record, error) {
	level, err := history.ParseLevel(wr.Level)
	if err != nil {
		return mop.Record{}, fmt.Errorf("core: trace record: %w", err)
	}
	rec := mop.Record{
		Proc: wr.Proc, Update: wr.Update, Seq: wr.Seq,
		TSStart: timestamp.TS(wr.TSStart), TSEnd: timestamp.TS(wr.TSEnd),
		Inv: wr.Inv, Resp: wr.Resp,
		Level: level, Responders: wr.Responders, IsConsistent: wr.Consistent,
	}
	for _, op := range wr.Ops {
		switch op.Kind {
		case "r":
			rec.Ops = append(rec.Ops, history.R(object.ID(op.Obj), op.Val))
		case "w":
			rec.Ops = append(rec.Ops, history.W(object.ID(op.Obj), op.Val))
		default:
			return mop.Record{}, fmt.Errorf("core: trace op kind %q", op.Kind)
		}
	}
	ids := make([]object.ID, 0, len(wr.Footprint))
	for _, x := range wr.Footprint {
		ids = append(ids, object.ID(x))
	}
	rec.Footprint = object.NewSet(ids...)
	return rec, nil
}

// MergeTraces combines per-process trace dumps into one record set and
// the registry and consistency condition they were captured under. The
// traces must agree on both; records come back ready for BuildHistory.
func MergeTraces(traces ...Trace) ([]mop.Record, *object.Registry, Consistency, error) {
	if len(traces) == 0 {
		return nil, nil, 0, fmt.Errorf("core: no traces to merge")
	}
	first := traces[0]
	var cons Consistency
	switch first.Consistency {
	case MSequential.String():
		cons = MSequential
	case MLinearizable.String():
		cons = MLinearizable
	default:
		return nil, nil, 0, fmt.Errorf("core: unsupported consistency %q in trace", first.Consistency)
	}
	reg, err := object.NewRegistry(first.Objects)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: trace registry: %w", err)
	}
	var recs []mop.Record
	for _, tr := range traces {
		if tr.Consistency != first.Consistency {
			return nil, nil, 0, fmt.Errorf("core: trace consistency mismatch: node %d has %q, node %d has %q",
				first.Node, first.Consistency, tr.Node, tr.Consistency)
		}
		if len(tr.Objects) != len(first.Objects) {
			return nil, nil, 0, fmt.Errorf("core: trace object-list mismatch between nodes %d and %d", first.Node, tr.Node)
		}
		for i, name := range tr.Objects {
			if name != first.Objects[i] {
				return nil, nil, 0, fmt.Errorf("core: trace object-list mismatch between nodes %d and %d", first.Node, tr.Node)
			}
		}
		if tr.Shards != first.Shards {
			// Sequence numbers are composed per shard map; records
			// stamped under different maps (or one sharded, one not)
			// cannot be ordered against each other.
			return nil, nil, 0, fmt.Errorf("core: trace shard-map mismatch: node %d has %q, node %d has %q",
				first.Node, first.Shards, tr.Node, tr.Shards)
		}
		for _, wr := range tr.Records {
			rec, err := fromTraceRecord(wr)
			if err != nil {
				return nil, nil, 0, err
			}
			recs = append(recs, rec)
		}
	}
	return recs, reg, cons, nil
}
