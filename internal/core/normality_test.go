package core

import (
	"sync"
	"testing"
	"time"

	"moc/internal/checker"
	"moc/internal/history"
	"moc/internal/object"
)

// TestMLinProtocolAlsoMNormal verifies the paper's Section 2.3 remark:
// "the protocol for m-linearizability also implements m-normality"
// (m-linearizability implies m-normality, since object order ⊆ real-time
// order).
func TestMLinProtocolAlsoMNormal(t *testing.T) {
	s := newStore(t, Config{
		Procs: 3, Consistency: MLinearizable, Seed: 21, MaxDelay: time.Millisecond,
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if j%2 == 0 {
					if err := p.Write(object.ID(j%3), object.Value(i*10+j+1)); err != nil {
						t.Errorf("write: %v", err)
					}
				} else if _, err := p.MultiRead(0, 1); err != nil {
					t.Errorf("read: %v", err)
				}
			}
		}(i, p)
	}
	wg.Wait()

	h, err := s.History()
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	norm, err := checker.MNormal(h)
	if err != nil {
		t.Fatalf("MNormal: %v", err)
	}
	if !norm.Admissible {
		t.Fatal("m-lin protocol execution must be m-normal")
	}
}

// TestTheorem7HoldsForMNormality exercises the paper's claim that "the
// results of Section 3 and Section 4 also hold for m-normality": the
// constrained admissibility pipeline with the m-normal base relation
// agrees with the exact m-normality decider on protocol histories.
func TestTheorem7HoldsForMNormality(t *testing.T) {
	s := newStore(t, Config{
		Procs: 3, Consistency: MSequential, Seed: 22, MaxDelay: time.Millisecond,
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				if err := p.Write(object.ID((i+j)%3), object.Value(i*10+j+1)); err != nil {
					t.Errorf("write: %v", err)
				}
				if _, err := p.Read(object.ID(j % 3)); err != nil {
					t.Errorf("read: %v", err)
				}
			}
		}(i, p)
	}
	wg.Wait()

	h, err := s.History()
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	updates, err := s.UpdateOrder()
	if err != nil {
		t.Fatalf("UpdateOrder: %v", err)
	}
	sync := checker.SyncFromUpdates(h, updates)
	poly, err := checker.AdmissibleUnderConstraintBase(h, history.MNormalBase, sync, checker.WW)
	if err != nil {
		t.Fatalf("poly m-normal: %v", err)
	}
	exact, err := checker.Decide(h, history.MNormalBase, &checker.Options{ExtraOrder: sync})
	if err != nil {
		t.Fatalf("exact m-normal: %v", err)
	}
	// The m-SC protocol does NOT guarantee m-normality (a stale local
	// read of a shared object violates object order), so the assertion
	// is agreement between the polynomial and exact deciders — Theorem 7
	// extended to m-normality — not admissibility itself.
	if poly.Admissible != exact.Admissible {
		t.Fatalf("Theorem 7 for m-normality disagrees: poly=%v exact=%v",
			poly.Admissible, exact.Admissible)
	}
}
