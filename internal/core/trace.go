package core

import (
	"errors"
	"fmt"
	"sort"

	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/object"
)

// ErrInFlight is returned by History/Verify while Execute calls are
// still outstanding.
var ErrInFlight = errors.New("core: m-operations still in flight; quiesce before building the history")

// ErrRecordingDisabled is returned when the store was configured with
// DisableRecording.
var ErrRecordingDisabled = errors.New("core: recording disabled")

// buildHistory reconstructs the execution history from the captured
// records, caching the raw material for sync-relation derivation.
func (s *Store) buildHistory() (*history.History, []history.ID, error) {
	if s.cfg.DisableRecording {
		return nil, nil, ErrRecordingDisabled
	}
	s.mu.Lock()
	if s.inFlight != 0 {
		s.mu.Unlock()
		return nil, nil, ErrInFlight
	}
	recs := make([]mop.Record, len(s.records))
	copy(recs, s.records)
	s.mu.Unlock()

	h, updateIDs, br, err := buildFromRecords(s.reg, recs)
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	s.lastBuild = br
	s.mu.Unlock()
	return h, updateIDs, nil
}

// BuildHistory reconstructs an execution history from raw protocol
// records — typically records merged from several processes' trace
// dumps (MergeTraces). The records must cover a quiescent execution and
// carry timestamps from a shared clock (Config.Epoch). The returned IDs
// are the update m-operations in atomic-broadcast delivery order (the
// ~ww order).
func BuildHistory(reg *object.Registry, recs []mop.Record) (*history.History, []history.ID, error) {
	h, updateIDs, _, err := buildFromRecords(reg, recs)
	return h, updateIDs, err
}

// buildFromRecords is the shared reconstruction: the reads-from relation
// is derived exactly as in D5.1/D5.6 — the version vector at an
// m-operation's start event names, per object, the version it read;
// versions are mapped to writers by replaying the update m-operations in
// atomic-broadcast delivery order (version 0 is the imaginary initial
// m-operation). It mutates recs (sorting by invocation time).
func buildFromRecords(reg *object.Registry, recs []mop.Record) (*history.History, []history.ID, *buildResult, error) {
	// Deterministic builder order: by invocation time (unique within one
	// store by construction of s.now; merged multi-store records rely on
	// the shared epoch).
	sort.Slice(recs, func(i, j int) bool { return recs[i].Inv < recs[j].Inv })

	b := history.NewBuilder(reg)
	ids := make([]history.ID, len(recs))
	for i, rec := range recs {
		ids[i] = b.Add(rec.Proc, rec.Inv, rec.Resp, rec.Ops...)
		// The certified per-request consistency level rides into the
		// history so the leveled checker can hold each query to the
		// condition it was actually served at.
		b.SetLevel(ids[i], rec.Level)
	}

	// Collect the globally-ordered updates (broadcast protocols stamp a
	// delivery sequence; the object-locking protocol synchronizes per
	// object and stamps -1, so it contributes no global order).
	type upd struct {
		seq int64
		idx int
	}
	var updates []upd
	for i, rec := range recs {
		if rec.Update && rec.Seq >= 0 {
			updates = append(updates, upd{seq: rec.Seq, idx: i})
		}
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].seq < updates[j].seq })
	for i := 1; i < len(updates); i++ {
		if updates[i].seq == updates[i-1].seq {
			a, b := recs[updates[i-1].idx], recs[updates[i].idx]
			return nil, nil, nil, fmt.Errorf("core: duplicate delivery sequence %d (issuers %d and %d)", updates[i].seq, a.Proc, b.Proc)
		}
	}

	// Map (object, version) to the writer: every update record carries,
	// per written object, the version it established (TSEnd). This works
	// for both the globally-ordered broadcast protocols and protocols
	// that synchronize per object. Protocols without a per-object total
	// version order (causal) tag writes instead; tags map to writers
	// directly.
	writerOf := make([]map[int64]history.ID, reg.Len())
	for x := range writerOf {
		writerOf[x] = map[int64]history.ID{0: history.InitID}
	}
	writerByTag := map[mop.WriteTag]history.ID{mop.InitTag: history.InitID}
	updateIDs := make([]history.ID, 0, len(updates))
	for i, rec := range recs {
		if rec.WriteTags != nil {
			for _, tag := range rec.WriteTags {
				if prev, dup := writerByTag[tag]; dup && prev != ids[i] {
					return nil, nil, nil, fmt.Errorf("core: write tag %+v used by both %d and %d",
						tag, int(prev), int(ids[i]))
				}
				writerByTag[tag] = ids[i]
			}
			continue
		}
		for x, v := range rec.VersionedWrites() {
			if prev, dup := writerOf[x][v]; dup {
				return nil, nil, nil, fmt.Errorf("core: version %d of %s written by both %d and %d",
					v, reg.Name(x), int(prev), int(ids[i]))
			}
			writerOf[x][v] = ids[i]
		}
	}
	for _, u := range updates {
		updateIDs = append(updateIDs, ids[u.idx])
	}

	// Reads-from: per D5.1/D5.6 for version-vector protocols, directly
	// from the recorded tags otherwise.
	for i, rec := range recs {
		if rec.SourceTags != nil {
			for x, tag := range rec.SourceTags {
				writer, ok := writerByTag[tag]
				if !ok {
					return nil, nil, nil, fmt.Errorf(
						"core: m-operation at P%d read %s from unknown write tag %+v",
						rec.Proc, reg.Name(x), tag)
				}
				b.SetReadsFrom(ids[i], x, writer)
			}
			continue
		}
		for _, op := range history.ExternalReads(rec.Ops) {
			v := rec.TSStart.Get(op.Obj)
			writer, ok := writerOf[op.Obj][v]
			if !ok {
				return nil, nil, nil, fmt.Errorf(
					"core: m-operation at P%d read version %d of %s, which no recorded update wrote",
					rec.Proc, v, reg.Name(op.Obj))
			}
			b.SetReadsFrom(ids[i], op.Obj, writer)
		}
	}

	h, err := b.Build()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: build history: %w", err)
	}
	return h, updateIDs, &buildResult{h: h, recs: recs, ids: ids}, nil
}

// buildResult caches the most recent reconstruction's raw material for
// sync-relation derivation. Guarded by s.mu via buildHistory's caller
// pattern (buildHistory itself is only entered after quiescence).
type buildResult struct {
	h    *history.History
	recs []mop.Record
	ids  []history.ID
}

// ooSync derives the per-object synchronization order the locking
// protocol enforced, from the recorded version numbers: for every object
// x, the writer of version v precedes every holder that observed v,
// which precedes the writer of version v+1. The result puts the history
// under the OO-constraint (every conflicting pair shares an object and
// is chained through its version order).
func ooSync(br *buildResult, numObjects int) *history.Relation {
	sync := history.NewRelation(br.h.Len())
	for x := 0; x < numObjects; x++ {
		xid := object.ID(x)
		writerOf := map[int64]history.ID{0: history.InitID}
		maxV := int64(0)
		for i, rec := range br.recs {
			if v, ok := rec.VersionedWrites()[xid]; ok {
				writerOf[v] = br.ids[i]
				if v > maxV {
					maxV = v
				}
			}
		}
		// Writer chain.
		for v := int64(1); v <= maxV; v++ {
			if prev, ok := writerOf[v-1]; ok {
				if cur, ok2 := writerOf[v]; ok2 {
					sync.Add(prev, cur)
				}
			}
		}
		// Readers between consecutive writers.
		for i, rec := range br.recs {
			if !rec.Footprint.Contains(xid) {
				continue
			}
			if _, wrote := rec.VersionedWrites()[xid]; wrote {
				continue
			}
			v := rec.TSStart.Get(xid)
			if w, ok := writerOf[v]; ok {
				sync.Add(w, br.ids[i])
			}
			if next, ok := writerOf[v+1]; ok {
				sync.Add(br.ids[i], next)
			}
		}
	}
	return sync
}
