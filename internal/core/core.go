// Package core is the paper's primary contribution as a usable library:
// a replicated multi-object shared memory whose operations are
// m-operations — atomic procedures spanning several objects — with a
// pluggable consistency condition (m-sequential consistency or
// m-linearizability, Section 2.3 of Mittal & Garg 1998), implemented by
// the Section 5 protocols over a simulated asynchronous network.
//
// A Store runs n processes, each holding a full replica. Every executed
// m-operation is recorded; History() reconstructs the formal execution
// history (with the exact reads-from relation, derived from the
// protocols' version-vector timestamps per D5.1/D5.6), and Verify()
// re-checks the appropriate consistency condition with the polynomial
// Theorem 7 procedure.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"moc/internal/abcast"
	"moc/internal/causal"
	"moc/internal/checker"
	"moc/internal/history"
	"moc/internal/mlin"
	"moc/internal/mop"
	"moc/internal/msc"
	"moc/internal/network"
	"moc/internal/object"
	"moc/internal/oolock"
	"moc/internal/recovery"
	"moc/internal/shard"
)

// Consistency selects the condition the store implements.
type Consistency int

// Consistency conditions (Section 2.3).
const (
	// MSequential: queries are local, updates atomically broadcast
	// (Figure 4).
	MSequential Consistency = iota + 1
	// MLinearizable: queries additionally collect the freshest versions
	// from all processes (Figure 6).
	MLinearizable
	// MLinearizableLocking: m-linearizability under the OO-constraint —
	// per-object homes with ordered exclusive locking instead of atomic
	// broadcast (internal/oolock). No replication, no broadcaster.
	MLinearizableLocking
	// MCausal: m-causal consistency (extension beyond the paper's own
	// protocols; see internal/causal) — updates apply locally and
	// disseminate with causal ordering; no synchronization at all.
	MCausal
)

// String names the consistency condition.
func (c Consistency) String() string {
	switch c {
	case MSequential:
		return "m-sequential"
	case MLinearizable:
		return "m-linearizable"
	case MLinearizableLocking:
		return "m-linearizable-locking"
	case MCausal:
		return "m-causal"
	default:
		return fmt.Sprintf("Consistency(%d)", int(c))
	}
}

// BroadcastKind selects the atomic broadcast implementation.
type BroadcastKind int

// Broadcast implementations.
const (
	// SequencerBroadcast uses a fixed sequencer (default).
	SequencerBroadcast BroadcastKind = iota + 1
	// LamportBroadcast uses Lamport-clock all-ack total ordering.
	LamportBroadcast
	// TokenBroadcast uses a circulating token to assign sequence numbers.
	TokenBroadcast
)

// Config parameterizes New.
type Config struct {
	// Procs is the number of processes (replicas). Required.
	Procs int
	// Objects names the shared objects. Required.
	Objects []string
	// Consistency defaults to MLinearizable.
	Consistency Consistency
	// Broadcast defaults to SequencerBroadcast.
	Broadcast BroadcastKind
	// Seed drives all network randomness.
	Seed int64
	// MinDelay and MaxDelay bound per-message network delays.
	MinDelay, MaxDelay time.Duration
	// Faults optionally injects delivery faults (drops, duplicates, delay
	// spikes, partitions) into every network the store runs on; the
	// reliable transport layer then restores exactly-once delivery, so
	// the consistency guarantees hold over lossy links too. NetStats
	// reports the fault and retransmission counters.
	Faults *network.Faults
	// Links optionally substitutes a real transport for the simulated
	// network: every logical channel the protocols open ("abcast",
	// "mlin.query", "recovery") is built through the factory instead of
	// network.NewLink. This is how cmd/mocd runs the store over TCP
	// (internal/transport). Nil keeps the simulated network. A factory
	// cannot be combined with Faults (fault injection is a property of
	// the simulated network) and is only supported for the broadcast
	// protocols (MSequential, MLinearizable).
	Links network.Factory
	// Epoch, when non-zero, anchors the store's clock: Inv/Resp record
	// timestamps are nanoseconds since Epoch instead of since store
	// construction. Daemons of one cluster share an epoch so their
	// records are real-time comparable when traces are merged.
	Epoch time.Time
	// RelevantOnly enables the Section 5.2 query-payload optimization
	// (m-linearizable stores only).
	RelevantOnly bool
	// FD configures heartbeat failure detection and coordinator failover
	// in the atomic-broadcast layer (sequencer failover, token
	// regeneration, Lamport ack-quorum exclusion). When nil and the fault
	// schedule includes process crashes, a default detector is enabled
	// automatically so a crashed coordinator cannot stall the store.
	FD *abcast.FDConfig
	// QueryTimeout bounds m-linearizable query round-trips: after it
	// expires the query re-solicits missing responders up to QueryRetries
	// times, then completes with the responses of the live processes.
	// Defaults (crash schedules only) to a bound comfortably above the
	// worst-case delivery delay; zero without crashes keeps the unbounded
	// Figure 6 wait.
	QueryTimeout time.Duration
	// QueryRetries is the number of re-solicitations for a bounded query
	// (default 3 when QueryTimeout is defaulted).
	QueryRetries int
	// DisableRecording turns off history capture (benchmarks that only
	// measure protocol cost).
	DisableRecording bool
	// BatchSize and BatchWindow enable group commit in the broadcast
	// layer: updates queued within one window (or until BatchSize is
	// reached) travel as a single BatchMsg frame through the atomic
	// broadcaster and are applied as a contiguous run of the delivery
	// order. Zero values keep today's one-frame-per-update behavior.
	// Broadcast consistencies only (MSequential, MLinearizable). In a
	// multi-daemon deployment every daemon must use the same values.
	BatchSize   int
	BatchWindow time.Duration
	// MaxInflight is how many update m-operations one Process may have
	// outstanding at once (pipelined issuance). Each concurrent slot is
	// recorded as its own issuing lane — a virtual process id — so
	// histories stay well-formed. Default 1 (today's one-at-a-time
	// behavior). Broadcast consistencies only.
	MaxInflight int
	// Recovery forces the checkpoint-transfer service on even without a
	// simulated crash schedule, so a store running over real links
	// (Links) can rejoin a cluster after a process-level kill via
	// Store.Recover. Requires the unbatched fixed-sequencer broadcast:
	// rejoin fast-forwards the sequencer's delivery sequence to the
	// adopted checkpoint's applied count, which is only meaningful when
	// one delivery is one update and sequence numbers are assigned by
	// the dedicated sequencer endpoint. (With a simulated crash
	// schedule the service is created automatically; this knob is for
	// deployments whose crashes are real.)
	Recovery bool
	// RecordSink, when non-nil, receives every completed m-operation
	// record as it is captured (after lane renumbering), concurrently
	// with execution. Daemons use it to append records to a crash-safe
	// trace file so a SIGKILL loses at most the operations still in
	// flight. The sink is called outside the store's record mutex and
	// must be safe for concurrent use.
	RecordSink func(mop.Record)
	// Shards partitions the object space into this many shards (object
	// id mod Shards), each with its own independent atomic-broadcast
	// lane; 0 or 1 keeps the single total order. Operations touching one
	// shard ride that shard's lane untouched; operations spanning
	// several are merged into every involved shard's schedule by a
	// ticket/commit round (internal/shard), so per-shard schedules stay
	// deterministic across replicas and disjoint shards never wait on
	// each other. Broadcast consistencies only (MSequential,
	// MLinearizable); incompatible with Recovery, scheduled crash
	// faults, and an explicit FD config (per-lane failover is not
	// coordinated). Requires Shards <= len(Objects).
	Shards int
}

// Level is the per-request consistency level of the unified Exec entry
// point (re-exported from internal/history, where the checkers consume
// it). The zero level requests the store's default: the full guarantee
// of its configured consistency condition.
type Level = history.Level

// Per-request consistency levels.
const (
	// One reads only the issuing process's local replica (m-SC
	// guarantee; the Figure 4 query rule).
	One = history.LevelOne
	// Quorum completes a query once a majority ⌈(n+1)/2⌉ of replicas
	// answered (m-linearizable stores only).
	Quorum = history.LevelQuorum
	// All waits for every replica — the Figure 6 rule and the default
	// for m-linearizable stores.
	All = history.LevelAll
)

// ExecOptions carries the per-request knobs of Exec (re-exported from
// internal/mop, where the protocols consume it).
type ExecOptions = mop.ExecOptions

// Result is what an executed m-operation returns: the procedure's value
// plus the consistency metadata of the execution — which level was
// actually delivered, which replicas answered, and whether the
// requested level's contract was met.
type Result struct {
	// Value is the procedure's return value.
	Value any
	// Level is the certified consistency level: the strongest level the
	// responder count actually supports. Equal to the requested level
	// unless the query was force-completed short of it.
	Level Level
	// Responders lists, ascending, the processes whose replica state the
	// operation observed. Nil for updates.
	Responders []int
	// IsConsistent reports whether the requested level's contract was
	// met (always true for ONE and for updates).
	IsConsistent bool
}

// executor abstracts the protocol implementations behind the unified
// options-struct entry point.
type executor interface {
	Exec(proc int, pr mop.Procedure, opts mop.ExecOptions) (mop.Record, error)
	Close()
}

// awaitFunc blocks until an asynchronously issued update completes.
type awaitFunc func() (mop.Record, error)

// submitFunc issues one update m-operation without waiting (the msc and
// mlin ExecAsync paths, adapted to a common shape).
type submitFunc func(proc int, pr mop.Procedure, opts mop.ExecOptions) (awaitFunc, error)

// Store is a replicated multi-object shared memory.
type Store struct {
	cfg        Config
	reg        *object.Registry
	exec       executor
	submit     submitFunc         // non-nil iff the executor pipelines updates
	bcast      abcast.Broadcaster // nil for the locking protocol
	smap       *shard.Map         // non-nil iff Config.Shards > 1
	mlinImpl   *mlin.Protocol     // non-nil iff Consistency == MLinearizable
	lockImpl   *oolock.Protocol   // non-nil iff Consistency == MLinearizableLocking
	causalImpl *causal.Protocol   // non-nil iff Consistency == MCausal
	procs      []*Process
	stopCh     chan struct{} // closed by Close; releases lane waiters

	// recov serves checkpointed state transfer for crash recovery; the
	// watcher goroutines trigger a Recover for every scheduled restart.
	recov     *recovery.Service
	watchStop chan struct{}
	watchWg   sync.WaitGroup

	lastNano atomic.Int64
	origin   time.Time

	mu        sync.Mutex
	records   []mop.Record
	inFlight  int
	lastBuild *buildResult // most recent reconstruction (quiescent state)

	closed atomic.Bool
}

// Process is a handle to one process of the store. By default each
// process executes one m-operation at a time (Section 2.1); concurrent
// Exec calls on the same Process are serialized. With
// Config.MaxInflight > 1, up to that many update m-operations may be
// outstanding concurrently via ExecAsync (or concurrent Exec calls):
// each outstanding slot is an issuing lane, and an operation completing
// on lane l > 0 is recorded under the virtual process id id + l*Procs,
// so every lane remains a sequential thread of control and recorded
// histories stay well-formed.
type Process struct {
	store *Store
	id    int
	// lanes holds one token per issuing lane; acquiring a token admits
	// one in-flight operation. Capacity is Config.MaxInflight (min 1).
	lanes chan int
}

// Future is the pending completion of an ExecAsync call.
type Future struct {
	done   chan struct{}
	result Result
	err    error
}

// Wait blocks until the operation completes and returns its result with
// the execution's consistency metadata.
func (f *Future) Wait() (Result, error) {
	<-f.done
	return f.result, f.err
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("core: store closed")

// New builds and starts a store.
func New(cfg Config) (*Store, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("core: invalid proc count %d", cfg.Procs)
	}
	reg, err := object.NewRegistry(cfg.Objects)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Consistency == 0 {
		cfg.Consistency = MLinearizable
	}
	if cfg.Broadcast == 0 {
		cfg.Broadcast = SequencerBroadcast
	}
	if cfg.Links != nil {
		if cfg.Faults != nil {
			return nil, errors.New("core: Links cannot be combined with Faults (fault injection is simulated-network only)")
		}
		if cfg.Consistency != MSequential && cfg.Consistency != MLinearizable {
			return nil, fmt.Errorf("core: Links is not supported for %v (broadcast protocols only)", cfg.Consistency)
		}
	}
	if cfg.BatchSize < 0 || cfg.BatchWindow < 0 || cfg.MaxInflight < 0 {
		return nil, errors.New("core: BatchSize, BatchWindow and MaxInflight must be non-negative")
	}
	batching := cfg.BatchSize > 1 || cfg.BatchWindow > 0
	if (batching || cfg.MaxInflight > 1) &&
		cfg.Consistency != MSequential && cfg.Consistency != MLinearizable {
		return nil, fmt.Errorf("core: batching and pipelining are not supported for %v (broadcast protocols only)", cfg.Consistency)
	}
	if cfg.Recovery {
		if cfg.Consistency != MSequential && cfg.Consistency != MLinearizable {
			return nil, fmt.Errorf("core: Recovery is not supported for %v (broadcast protocols only)", cfg.Consistency)
		}
		if cfg.Broadcast != SequencerBroadcast && cfg.Broadcast != 0 {
			return nil, errors.New("core: Recovery requires SequencerBroadcast (rejoin fast-forwards the sequencer delivery sequence)")
		}
		if batching {
			return nil, errors.New("core: Recovery cannot be combined with batching (the checkpoint applied count is in per-update delivery units)")
		}
		if cfg.FD != nil {
			return nil, errors.New("core: Recovery drives rejoin explicitly and cannot be combined with FD failover")
		}
	}

	hasCrashes := cfg.Faults != nil && len(cfg.Faults.Crashes) > 0
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("core: invalid shard count %d", cfg.Shards)
	}
	if cfg.Shards > 1 {
		if cfg.Consistency != MSequential && cfg.Consistency != MLinearizable {
			return nil, fmt.Errorf("core: Shards is not supported for %v (broadcast protocols only)", cfg.Consistency)
		}
		if cfg.Recovery {
			return nil, errors.New("core: Shards cannot be combined with Recovery (checkpoints carry a single total-order prefix)")
		}
		if hasCrashes {
			return nil, errors.New("core: Shards cannot be combined with scheduled crash faults (per-lane failover is not coordinated; kill real daemons instead)")
		}
		if cfg.FD != nil {
			return nil, errors.New("core: Shards cannot be combined with FD (per-lane failover is not coordinated)")
		}
	}

	// With scheduled crashes, default the failure detector (so a crashed
	// coordinator cannot stall the broadcast layer) and bound query
	// round-trips (so a crashed responder cannot stall a query). The
	// timing constants follow failover.go's assumption: detection timeout
	// well above the worst-case delivery delay plus retransmission.
	if hasCrashes {
		spike := cfg.Faults.DelaySpike
		if cfg.FD == nil {
			interval := 2 * time.Millisecond
			if d := 2 * cfg.MaxDelay; d > interval {
				interval = d
			}
			cfg.FD = &abcast.FDConfig{Interval: interval, Timeout: 10*interval + 8*(cfg.MaxDelay+spike)}
		}
		if cfg.QueryTimeout <= 0 {
			cfg.QueryTimeout = 10*time.Millisecond + 8*(cfg.MaxDelay+spike)
			if cfg.QueryRetries == 0 {
				cfg.QueryRetries = 3
			}
		}
	}

	origin := time.Now()
	if !cfg.Epoch.IsZero() {
		origin = cfg.Epoch
	}
	s := &Store{cfg: cfg, reg: reg, origin: origin, stopCh: make(chan struct{})}

	if cfg.Consistency == MCausal {
		p, err := causal.New(causal.Config{
			Procs: cfg.Procs, Reg: reg,
			Seed: cfg.Seed, MinDelay: cfg.MinDelay, MaxDelay: cfg.MaxDelay,
			Faults: cfg.Faults,
			Clock:  s.now,
		})
		if err != nil {
			return nil, err
		}
		s.exec, s.causalImpl = p, p
		s.makeProcs()
		return s, nil
	}

	if cfg.Consistency == MLinearizableLocking {
		p, err := oolock.New(oolock.Config{
			Procs: cfg.Procs, Reg: reg,
			Seed: cfg.Seed, MinDelay: cfg.MinDelay, MaxDelay: cfg.MaxDelay,
			Faults: cfg.Faults,
			Clock:  s.now,
		})
		if err != nil {
			return nil, err
		}
		s.exec, s.lockImpl = p, p
		s.makeProcs()
		return s, nil
	}

	// makeLane builds one atomic-broadcast instance on the given channel
	// with the given seed. endpoint >= 0 places a sequencer lane's
	// coordinator endpoint there (sharded lanes spread coordinators over
	// the daemons: endpoint e is owned by daemon e mod len(addrs)); an
	// unsharded sequencer keeps the default endpoint and may combine
	// with FD failover.
	makeLane := func(channel string, seed int64, endpoint int) (abcast.Broadcaster, error) {
		var lane abcast.Broadcaster
		var err error
		switch cfg.Broadcast {
		case SequencerBroadcast:
			scfg := abcast.SequencerConfig{
				Procs: cfg.Procs, Seed: seed, MinDelay: cfg.MinDelay, MaxDelay: cfg.MaxDelay,
				Faults: cfg.Faults, FD: cfg.FD, Links: cfg.Links, Channel: channel,
			}
			if endpoint >= 0 {
				scfg.Endpoint = endpoint
			}
			lane, err = abcast.NewSequencer(scfg)
		case LamportBroadcast:
			lane, err = abcast.NewLamport(abcast.LamportConfig{
				Procs: cfg.Procs, Seed: seed, MinDelay: cfg.MinDelay, MaxDelay: cfg.MaxDelay,
				Faults: cfg.Faults, FD: cfg.FD, Links: cfg.Links, Channel: channel,
			})
		case TokenBroadcast:
			lane, err = abcast.NewToken(abcast.TokenConfig{
				Procs: cfg.Procs, Seed: seed, MinDelay: cfg.MinDelay, MaxDelay: cfg.MaxDelay,
				Faults: cfg.Faults, FD: cfg.FD, Links: cfg.Links, Channel: channel,
			})
		default:
			return nil, fmt.Errorf("core: unknown broadcast kind %d", int(cfg.Broadcast))
		}
		if err != nil {
			return nil, err
		}
		if batching {
			// Group commit: coalesce updates submitted within one window
			// (or until BatchSize) into a single BatchMsg broadcast
			// frame. The Batcher is itself a conforming Broadcaster, so
			// the layers above are untouched.
			lane = abcast.NewBatcher(lane, abcast.BatchConfig{
				Window: cfg.BatchWindow, Size: cfg.BatchSize,
			})
		}
		return lane, nil
	}

	var bcast abcast.Broadcaster
	if cfg.Shards > 1 {
		// One independent broadcast lane per shard, composed by the
		// ticket/commit merge group. Sequencer lanes spread their
		// coordinator endpoints (Procs+shard) so killing one daemon
		// stalls only the lanes it coordinates.
		smap, merr := shard.NewMap(reg.Len(), cfg.Shards)
		if merr != nil {
			return nil, fmt.Errorf("core: %w", merr)
		}
		lanes := make([]abcast.Broadcaster, cfg.Shards)
		for i := range lanes {
			lanes[i], err = makeLane(fmt.Sprintf("abcast.s%d", i), cfg.Seed+int64(1000*(i+1)), cfg.Procs+i)
			if err != nil {
				for _, l := range lanes[:i] {
					l.Close()
				}
				return nil, err
			}
		}
		bcast, err = shard.NewGroup(shard.GroupConfig{Procs: cfg.Procs, Map: smap, Lanes: lanes})
		if err != nil {
			for _, l := range lanes {
				l.Close()
			}
			return nil, err
		}
		s.smap = smap
	} else {
		bcast, err = makeLane("", cfg.Seed, -1)
		if err != nil {
			return nil, err
		}
	}

	switch cfg.Consistency {
	case MSequential:
		var p *msc.Protocol
		p, err = msc.New(msc.Config{
			Procs: cfg.Procs, Reg: reg, Broadcast: bcast, Clock: s.now,
		})
		if err == nil {
			s.exec = p
			s.submit = func(proc int, pr mop.Procedure, opts mop.ExecOptions) (awaitFunc, error) {
				ch, err := p.ExecAsync(proc, pr, opts)
				if err != nil {
					return nil, err
				}
				return func() (mop.Record, error) { out := <-ch; return out.Rec, out.Err }, nil
			}
		}
	case MLinearizable:
		var p *mlin.Protocol
		p, err = mlin.New(mlin.Config{
			Procs: cfg.Procs, Reg: reg, Broadcast: bcast,
			Seed: cfg.Seed + 1, MinDelay: cfg.MinDelay, MaxDelay: cfg.MaxDelay,
			Faults: cfg.Faults, Links: cfg.Links,
			RelevantOnly: cfg.RelevantOnly, Clock: s.now,
			QueryTimeout: cfg.QueryTimeout, QueryRetries: cfg.QueryRetries,
			Shards: cfg.Shards,
		})
		if err == nil {
			s.exec, s.mlinImpl = p, p
			s.submit = func(proc int, pr mop.Procedure, opts mop.ExecOptions) (awaitFunc, error) {
				ch, err := p.ExecAsync(proc, pr, opts)
				if err != nil {
					return nil, err
				}
				return func() (mop.Record, error) { out := <-ch; return out.Rec, out.Err }, nil
			}
		}
	default:
		bcast.Close()
		return nil, fmt.Errorf("core: unknown consistency %d", int(cfg.Consistency))
	}
	if err != nil {
		bcast.Close()
		return nil, err
	}

	s.bcast = bcast
	s.makeProcs()

	// Checkpointed recovery: when crashes with restarts are scheduled —
	// or Config.Recovery forces the service on for deployments whose
	// crashes are real (kill -9 of a daemon) — run a state-transfer
	// service and, for scheduled restarts, trigger a Recover under the
	// process lanes so no operation runs at the rejoining process until
	// its state is fresh. Real deployments call Store.Recover instead.
	if hasCrashes || cfg.Recovery {
		state, ok := s.exec.(recovery.State)
		if !ok && cfg.Recovery {
			s.exec.Close()
			return nil, fmt.Errorf("core: Recovery is not supported for %v (executor has no checkpoint state)", cfg.Consistency)
		}
		if ok {
			s.recov, err = recovery.New(recovery.Config{
				Procs: cfg.Procs, State: state,
				Seed: cfg.Seed + 2, MinDelay: cfg.MinDelay, MaxDelay: cfg.MaxDelay,
				Faults: cfg.Faults, Links: cfg.Links,
			})
			if err != nil {
				s.exec.Close()
				return nil, err
			}
		}
		if hasCrashes && s.recov != nil {
			s.watchStop = make(chan struct{})
			for _, cr := range cfg.Faults.Crashes {
				if cr.Restart <= 0 {
					continue
				}
				s.watchWg.Add(1)
				go s.watchRestart(cr.Proc, cr.Restart)
			}
		}
	}
	return s, nil
}

// makeProcs builds the process handles, seeding each with one lane
// token per permitted in-flight operation.
func (s *Store) makeProcs() {
	inflight := s.cfg.MaxInflight
	if inflight < 1 {
		inflight = 1
	}
	s.procs = make([]*Process, s.cfg.Procs)
	for i := range s.procs {
		p := &Process{store: s, id: i, lanes: make(chan int, inflight)}
		for l := 0; l < inflight; l++ {
			p.lanes <- l
		}
		s.procs[i] = p
	}
}

// watchRestart sleeps until just after the scheduled restart instant and
// runs one checkpointed recovery for the rejoining process. Every
// issuing lane is held across the transfer — the process is quiesced —
// so the first post-restart operation observes the recovered state.
func (s *Store) watchRestart(proc int, at time.Duration) {
	defer s.watchWg.Done()
	timer := time.NewTimer(at - time.Since(s.origin))
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-s.watchStop:
		return
	}
	// The transfer network's fault clock starts at its creation, which
	// trails s.origin by the store's construction time, so the nominal
	// restart instant can land marginally inside the network's crash
	// window — where every transfer request is silently dropped. Poll
	// until the network itself reports the process up.
	for !s.recov.Up(proc) {
		select {
		case <-time.After(500 * time.Microsecond):
		case <-s.watchStop:
			return
		}
	}
	p := s.procs[proc]
	held := make([]int, 0, cap(p.lanes))
	defer func() {
		for _, l := range held {
			p.lanes <- l
		}
	}()
	for len(held) < cap(p.lanes) {
		select {
		case l := <-p.lanes:
			held = append(held, l)
		case <-s.watchStop:
			return
		}
	}
	// Generous bound: Recover returns as soon as all live peers answer.
	_, _, _ = s.recov.Recover(proc, 2*time.Second)
}

// Recover runs one checkpoint transfer for process proc against its
// live peers: the deployment rejoin path, called by a daemon that was
// killed and restarted (Config.Recovery). Every issuing lane is held
// across the transfer so no operation observes half-recovered state.
// When a checkpoint is adopted, the broadcast layer's delivery stream
// for proc is fast-forwarded to the checkpoint's applied count — the
// orders below it were applied by the checkpoint's donor and, over a
// real transport, will never be re-sent to this process. Reports
// whether a checkpoint was adopted (false with nil error means the
// local state was already at least as fresh — e.g. a cold cluster
// where nothing has been written yet).
func (s *Store) Recover(proc int, timeout time.Duration) (bool, error) {
	if s.recov == nil {
		return false, errors.New("core: recovery service not enabled (set Config.Recovery)")
	}
	if proc < 0 || proc >= len(s.procs) {
		return false, fmt.Errorf("core: invalid process %d", proc)
	}
	p := s.procs[proc]
	held := make([]int, 0, cap(p.lanes))
	defer func() {
		for _, l := range held {
			p.lanes <- l
		}
	}()
	for len(held) < cap(p.lanes) {
		select {
		case l := <-p.lanes:
			held = append(held, l)
		case <-s.stopCh:
			return false, ErrClosed
		}
	}
	adopted, applied, err := s.recov.Recover(proc, timeout)
	if err != nil {
		return false, err
	}
	if adopted {
		if r, ok := s.bcast.(abcast.Resumer); ok {
			r.Resume(proc, applied)
		}
	}
	return adopted, nil
}

// Drain quiesces the store for a graceful shutdown: it acquires every
// issuing lane of every process, so it returns only once all in-flight
// m-operations have completed (and their records have reached the
// RecordSink). New operations block on the empty lanes and are failed
// by the subsequent Close. Drain is terminal — the lanes are never
// released, so the only sensible successor is Close.
func (s *Store) Drain(timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for _, p := range s.procs {
		for i := 0; i < cap(p.lanes); i++ {
			select {
			case <-p.lanes:
			case <-deadline.C:
				return fmt.Errorf("core: drain timed out after %v with operations still in flight", timeout)
			case <-s.stopCh:
				return ErrClosed
			}
		}
	}
	return nil
}

// now is a strictly increasing clock: real monotonic time, nudged forward
// by at least 1ns per reading so that event times are unique and
// well-formedness (resp < inv of the next m-operation) always holds.
func (s *Store) now() int64 {
	real := time.Since(s.origin).Nanoseconds()
	for {
		last := s.lastNano.Load()
		if real <= last {
			real = last + 1
		}
		if s.lastNano.CompareAndSwap(last, real) {
			return real
		}
	}
}

// Registry returns the store's object registry.
func (s *Store) Registry() *object.Registry { return s.reg }

// Consistency returns the configured consistency condition.
func (s *Store) Consistency() Consistency { return s.cfg.Consistency }

// Object resolves an object name to its ID.
func (s *Store) Object(name string) (object.ID, error) {
	id, ok := s.reg.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("core: unknown object %q", name)
	}
	return id, nil
}

// Process returns the handle for process i.
func (s *Store) Process(i int) (*Process, error) {
	if i < 0 || i >= len(s.procs) {
		return nil, fmt.Errorf("core: invalid process %d", i)
	}
	return s.procs[i], nil
}

// Procs returns the number of processes.
func (s *Store) Procs() int { return s.cfg.Procs }

// ShardMap returns the store's shard map, nil when the object space is
// unsharded (Config.Shards <= 1).
func (s *Store) ShardMap() *shard.Map { return s.smap }

// ShardSpec returns the canonical shard-map spec string recorded in
// trace headers ("" when unsharded); merged traces must agree on it.
func (s *Store) ShardSpec() string {
	if s.smap == nil {
		return ""
	}
	return s.smap.Spec()
}

// Close shuts down the protocol and all its goroutines.
func (s *Store) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.stopCh) // release lane waiters
	if s.watchStop != nil {
		close(s.watchStop)
	}
	if s.recov != nil {
		s.recov.Close() // unblocks any in-flight Recover
	}
	// Close the executor before waiting for the restart watchers: a
	// watcher blocks on the process mutex, which an in-flight Execute
	// holds until the executor's shutdown errors it out — waiting first
	// would deadlock a Close issued while operations are still running.
	s.exec.Close()
	s.watchWg.Wait()
}

// Recoveries reports how many checkpoints restarted processes have
// adopted (zero without crash injection).
func (s *Store) Recoveries() int64 {
	if s.recov == nil {
		return 0
	}
	return s.recov.Adopted()
}

// RecoveryTraffic returns the state-transfer network's counters
// (zero-valued without crash injection).
func (s *Store) RecoveryTraffic() network.Stats {
	if s.recov == nil {
		return network.Stats{ByKind: map[string]network.KindStats{}}
	}
	return s.recov.Traffic()
}

// BroadcastCost returns the atomic-broadcast network traffic incurred so
// far as (messages, bytes); zero for the locking protocol, which has no
// broadcaster.
func (s *Store) BroadcastCost() (int64, int64) {
	if s.bcast == nil {
		return 0, 0
	}
	return s.bcast.MessageCost()
}

// BatchStats reports the broadcast-layer group-commit meters: total
// flushes, flushes that coalesced two or more updates, and the updates
// those multi-item batches carried. All zero when batching is off.
func (s *Store) BatchStats() (flushes, batches, batched int64) {
	if b, ok := s.bcast.(*abcast.Batcher); ok {
		return b.BatchStats()
	}
	return 0, 0, 0
}

// LockTraffic returns the locking protocol's network counters (zero for
// the broadcast protocols).
func (s *Store) LockTraffic() network.Stats {
	if s.lockImpl == nil {
		return network.Stats{ByKind: map[string]network.KindStats{}}
	}
	return s.lockImpl.Traffic()
}

// QueryTraffic returns the m-linearizable query network's counters
// (zero-valued for m-sequential stores, whose queries are local).
func (s *Store) QueryTraffic() network.Stats {
	if s.mlinImpl == nil {
		return network.Stats{ByKind: map[string]network.KindStats{}}
	}
	return s.mlinImpl.QueryTraffic()
}

// NetStats aggregates transport counters — including fault-injection
// drops/duplicates and reliable-layer retransmissions — across every
// network the store runs on (broadcast, query, locking, dissemination).
// In a fault-free run the Dropped/Duplicated/Retransmitted counters are
// all zero.
func (s *Store) NetStats() network.Stats {
	var st network.Stats
	if s.bcast != nil {
		st.Merge(s.bcast.NetStats())
	}
	if s.mlinImpl != nil {
		st.Merge(s.mlinImpl.QueryTraffic())
	}
	if s.lockImpl != nil {
		st.Merge(s.lockImpl.Traffic())
	}
	if s.causalImpl != nil {
		st.Merge(s.causalImpl.Traffic())
	}
	if s.recov != nil {
		st.Merge(s.recov.Traffic())
	}
	return st
}

// Exec runs pr as an m-operation of this process and returns its
// result with the execution's consistency metadata. opts.Level selects
// the per-request consistency level for queries (the zero options value
// keeps the store's full guarantee). With the default MaxInflight of 1
// concurrent calls serialize on the single issuing lane, preserving the
// one-operation-at-a-time contract; with more lanes they pipeline.
func (p *Process) Exec(pr mop.Procedure, opts ExecOptions) (Result, error) {
	f, err := p.ExecAsync(pr, opts)
	if err != nil {
		return Result{}, err
	}
	return f.Wait()
}

// ExecAsync issues pr without waiting for its response. The call
// blocks only while every issuing lane is occupied (MaxInflight
// operations already outstanding); the returned Future resolves when
// the operation's response event occurs. An operation in flight on
// lane l > 0 is recorded under the virtual process id id + l*Procs —
// each lane is a sequential thread of control, so histories with
// pipelining remain well-formed and checkable.
func (p *Process) ExecAsync(pr mop.Procedure, opts ExecOptions) (*Future, error) {
	s := p.store
	if s.closed.Load() {
		return nil, ErrClosed
	}
	var lane int
	select {
	case lane = <-p.lanes:
	case <-s.stopCh:
		return nil, ErrClosed
	}

	s.noteStart()
	f := &Future{done: make(chan struct{})}
	finish := func(rec *mop.Record, err error) {
		if err != nil {
			s.noteEnd(nil)
			f.err = err
		} else {
			if lane > 0 {
				rec.Proc = p.id + lane*s.cfg.Procs
			}
			s.noteEnd(rec)
			f.result = Result{
				Value:        rec.Result,
				Level:        rec.Level,
				Responders:   rec.Responders,
				IsConsistent: rec.IsConsistent,
			}
		}
		p.lanes <- lane
		close(f.done)
	}

	// Updates go through the protocol's pipelined submit path when the
	// executor has one: issuance happens here (so broadcast order follows
	// call order), only the wait is deferred.
	if s.submit != nil && pr.MayWrite() {
		wait, err := s.submit(p.id, pr, opts)
		if err != nil {
			s.noteEnd(nil)
			p.lanes <- lane
			return nil, err
		}
		go func() {
			rec, err := wait()
			finish(&rec, err)
		}()
		return f, nil
	}

	// Queries (and executors without a submit path) run synchronously in
	// the completion goroutine, still occupying the lane.
	go func() {
		rec, err := s.exec.Exec(p.id, pr, opts)
		finish(&rec, err)
	}()
	return f, nil
}

func (s *Store) noteStart() {
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
}

func (s *Store) noteEnd(rec *mop.Record) {
	s.mu.Lock()
	s.inFlight--
	if rec != nil && !s.cfg.DisableRecording {
		s.records = append(s.records, *rec)
	}
	s.mu.Unlock()
	if rec != nil && s.cfg.RecordSink != nil {
		s.cfg.RecordSink(*rec)
	}
}

// Convenience operations built on Exec. Each takes the store's default
// level; use Exec directly for per-request levels.

// Read atomically reads one object.
func (p *Process) Read(x object.ID) (object.Value, error) {
	res, err := p.Exec(mop.ReadOp{X: x}, ExecOptions{})
	if err != nil {
		return 0, err
	}
	return res.Value.(object.Value), nil
}

// Write atomically writes one object.
func (p *Process) Write(x object.ID, v object.Value) error {
	_, err := p.Exec(mop.WriteOp{X: x, V: v}, ExecOptions{})
	return err
}

// MultiRead atomically reads several objects.
func (p *Process) MultiRead(xs ...object.ID) ([]object.Value, error) {
	res, err := p.Exec(mop.MultiRead{Xs: xs}, ExecOptions{})
	if err != nil {
		return nil, err
	}
	return res.Value.([]object.Value), nil
}

// Sum atomically sums several objects.
func (p *Process) Sum(xs ...object.ID) (object.Value, error) {
	res, err := p.Exec(mop.Sum{Xs: xs}, ExecOptions{})
	if err != nil {
		return 0, err
	}
	return res.Value.(object.Value), nil
}

// MAssign atomically writes several objects.
func (p *Process) MAssign(writes map[object.ID]object.Value) error {
	_, err := p.Exec(mop.MAssign{Writes: writes}, ExecOptions{})
	return err
}

// CAS atomically compare-and-swaps one object.
func (p *Process) CAS(x object.ID, old, new object.Value) (bool, error) {
	res, err := p.Exec(mop.CAS{X: x, Old: old, New: new}, ExecOptions{})
	if err != nil {
		return false, err
	}
	return res.Value.(bool), nil
}

// DCAS atomically double-compare-and-swaps two objects (Section 1).
func (p *Process) DCAS(x1, x2 object.ID, old1, old2, new1, new2 object.Value) (bool, error) {
	res, err := p.Exec(mop.DCAS{X1: x1, X2: x2, Old1: old1, Old2: old2, New1: new1, New2: new2}, ExecOptions{})
	if err != nil {
		return false, err
	}
	return res.Value.(bool), nil
}

// Transfer atomically moves amount between two objects if funds suffice.
func (p *Process) Transfer(from, to object.ID, amount object.Value) (bool, error) {
	res, err := p.Exec(mop.Transfer{From: from, To: to, Amount: amount}, ExecOptions{})
	if err != nil {
		return false, err
	}
	return res.Value.(bool), nil
}

// VerifyResult reports the outcome of Verify.
type VerifyResult struct {
	// OK is true when the recorded history satisfies the store's
	// configured consistency condition.
	OK bool
	// Witness is the legal sequential history found.
	Witness history.Sequence
	// History is the reconstructed execution history.
	History *history.History
}

// Verify reconstructs the recorded history and checks it against the
// store's consistency condition using the polynomial Theorem 7 procedure
// (the protocol's atomic-broadcast order puts every history under the
// WW-constraint). An error indicates the verification could not run;
// OK=false with nil error indicates a genuine consistency violation —
// which, per Theorems 15 and 20, would be a protocol bug.
func (s *Store) Verify() (VerifyResult, error) {
	h, updates, err := s.buildHistory()
	if err != nil {
		return VerifyResult{}, err
	}
	if s.cfg.Consistency == MCausal {
		// m-causal consistency has no Theorem 7 shortcut; the exact
		// per-view decider is used (runs are kept small in tests).
		res, err := checker.MCausallyConsistent(h)
		if err != nil {
			return VerifyResult{History: h}, err
		}
		return VerifyResult{OK: res.Consistent, History: h}, nil
	}

	if s.cfg.Consistency == MLinearizableLocking {
		// The locking protocol synchronizes per object: the history is
		// under the OO-constraint, with the sync order derived from the
		// per-object version chains (Theorem 7, OO branch).
		s.mu.Lock()
		br := s.lastBuild
		s.mu.Unlock()
		sync := ooSync(br, s.reg.Len())
		res, err := checker.AdmissibleUnderConstraintBase(h, history.MLinearizableBase, sync, checker.OO)
		if err != nil {
			return VerifyResult{History: h}, err
		}
		return VerifyResult{OK: res.Admissible, Witness: res.Witness, History: h}, nil
	}

	base := history.MSequentialBase
	if s.cfg.Consistency == MLinearizable {
		base = history.MLinearizableBase
	}
	if s.smap != nil {
		// A sharded store enforces no single global update order: each
		// object's writes are ordered by its shard's schedule, and a
		// chain over the composite sequence numbers would contradict
		// process order whenever a busy shard's slot counter runs ahead
		// of an idle one's. The per-object version chains are exactly
		// the order the composed schedules did enforce, and they put
		// the history under the OO-constraint (Theorem 7, OO branch —
		// the same derivation the locking protocol uses).
		s.mu.Lock()
		br := s.lastBuild
		s.mu.Unlock()
		sync := ooSync(br, s.reg.Len())
		res, err := checker.AdmissibleUnderConstraintBase(h, base, sync, checker.OO)
		if err != nil {
			return VerifyResult{History: h}, err
		}
		return VerifyResult{OK: res.Admissible, Witness: res.Witness, History: h}, nil
	}
	sync := checker.SyncFromUpdates(h, updates)
	res, err := checker.AdmissibleUnderConstraintBase(h, base, sync, checker.WW)
	if err != nil {
		return VerifyResult{History: h}, err
	}
	return VerifyResult{OK: res.Admissible, Witness: res.Witness, History: h}, nil
}

// History reconstructs the formal execution history from the records.
// All Execute calls must have returned (the store must be quiescent).
func (s *Store) History() (*history.History, error) {
	h, _, err := s.buildHistory()
	return h, err
}

// VerifyExact re-checks the store's consistency condition with the
// exact (NP-hard) decider instead of the polynomial Theorem 7 procedure.
// Intended for small runs and test harnesses; Verify is the production
// path.
func (s *Store) VerifyExact() (VerifyResult, error) {
	h, _, err := s.buildHistory()
	if err != nil {
		return VerifyResult{}, err
	}
	switch s.cfg.Consistency {
	case MCausal:
		res, err := checker.MCausallyConsistent(h)
		if err != nil {
			return VerifyResult{History: h}, err
		}
		return VerifyResult{OK: res.Consistent, History: h}, nil
	case MSequential:
		res, err := checker.MSequentiallyConsistent(h)
		if err != nil {
			return VerifyResult{History: h}, err
		}
		return VerifyResult{OK: res.Admissible, Witness: res.Witness, History: h}, nil
	default: // MLinearizable, MLinearizableLocking
		res, err := checker.MLinearizable(h)
		if err != nil {
			return VerifyResult{History: h}, err
		}
		return VerifyResult{OK: res.Admissible, Witness: res.Witness, History: h}, nil
	}
}

// VerifyLeveled re-checks a mixed-level execution with the exact
// deciders: the full history against m-sequential consistency and the
// restriction to updates plus strong-level queries against
// m-linearizability (checker.MixedLevels). This is the verification
// entry point for m-linearizable stores that served per-request levels;
// for single-level runs it is equivalent to VerifyExact at the
// corresponding condition.
func (s *Store) VerifyLeveled() (VerifyResult, error) {
	h, _, err := s.buildHistory()
	if err != nil {
		return VerifyResult{}, err
	}
	res, err := checker.MixedLevels(h)
	if err != nil {
		return VerifyResult{History: h}, err
	}
	witness := res.Full.Witness
	if res.Consistent {
		witness = res.Strong.Witness
	}
	return VerifyResult{OK: res.Consistent, Witness: witness, History: h}, nil
}

// UpdateOrder returns the atomic-broadcast delivery order of the update
// m-operations of the recorded history, as history IDs (the ~ww order).
func (s *Store) UpdateOrder() ([]history.ID, error) {
	_, updates, err := s.buildHistory()
	return updates, err
}

// Records returns a copy of the raw protocol records captured so far, in
// capture order. The axiom validator and the streaming monitor consume
// these directly.
func (s *Store) Records() []mop.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]mop.Record, len(s.records))
	copy(out, s.records)
	return out
}
