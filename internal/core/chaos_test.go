package core

import (
	"sync"
	"testing"
	"time"

	"moc/internal/network"
	"moc/internal/network/testutil"
	"moc/internal/object"
)

// chaosFaults is the adversarial delivery profile from the acceptance
// criteria: 20% drops, 5% duplicates, occasional delay spikes, and one
// 50ms partition isolating process 0 from the rest. The reliable layer
// must absorb all of it.
func chaosFaults() *network.Faults {
	heal := 50 * time.Millisecond
	if testing.Short() {
		heal = 15 * time.Millisecond
	}
	return &network.Faults{
		DropProb:       0.2,
		DupProb:        0.05,
		DelaySpikeProb: 0.05,
		DelaySpike:     2 * time.Millisecond,
		Partitions:     []network.Partition{{Side: []int{0}, Start: 0, Heal: heal}},
		RTO:            3 * time.Millisecond,
	}
}

// runChaosWorkload drives a small concurrent multi-process workload
// (kept small: the histories are re-checked with the exact NP-hard
// deciders) and returns after all processes quiesce.
func runChaosWorkload(t *testing.T, s *Store) {
	t.Helper()
	opsPerProc := 5
	if testing.Short() {
		opsPerProc = 3
	}
	var wg sync.WaitGroup
	for i := 0; i < s.Procs(); i++ {
		p, err := s.Process(i)
		if err != nil {
			t.Fatalf("Process(%d): %v", i, err)
		}
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			for j := 0; j < opsPerProc; j++ {
				switch j % 3 {
				case 0:
					if err := p.MAssign(map[object.ID]object.Value{
						object.ID(j % 3):       object.Value(100*i + j),
						object.ID((j + 1) % 3): object.Value(100*i + j + 1),
					}); err != nil {
						t.Errorf("proc %d massign: %v", i, err)
						return
					}
				case 1:
					if _, err := p.MultiRead(object.ID(i%3), object.ID((i+1)%3)); err != nil {
						t.Errorf("proc %d multiread: %v", i, err)
						return
					}
				default:
					if err := p.Write(object.ID((i+j)%3), object.Value(i*10+j)); err != nil {
						t.Errorf("proc %d write: %v", i, err)
						return
					}
				}
			}
		}(i, p)
	}
	wg.Wait()
}

// waitForRetransmissions polls until the reliable layer has resent at
// least one dropped frame. Protocols that respond locally (m-causal)
// can finish the workload before the first retransmission timer fires,
// so the counters need a moment to become visible. On timeout the
// helper dumps the store's merged transport counters.
func waitForRetransmissions(t *testing.T, s *Store) {
	t.Helper()
	testutil.Eventually(t, 10*time.Second, func() bool {
		return s.NetStats().Retransmitted > 0
	}, testutil.Source("store transports", s.NetStats))
}

// TestChaosAllConsistencyModes runs every consistency mode over the
// lossy, duplicating, partitioned network and asserts the recorded
// histories still pass the exact consistency checkers — the paper's
// claims must survive adversarial delivery once retransmission restores
// exactly-once links.
func TestChaosAllConsistencyModes(t *testing.T) {
	for _, cons := range []Consistency{MSequential, MLinearizable, MLinearizableLocking, MCausal} {
		t.Run(cons.String(), func(t *testing.T) {
			t.Parallel()
			s := newStore(t, Config{
				Procs:       3,
				Consistency: cons,
				Seed:        71,
				MaxDelay:    time.Millisecond,
				Faults:      chaosFaults(),
			})
			runChaosWorkload(t, s)
			waitForRetransmissions(t, s)

			exact, err := s.VerifyExact()
			if err != nil {
				t.Fatalf("VerifyExact: %v", err)
			}
			if !exact.OK {
				t.Fatalf("history under faults fails exact %s checker — protocol bug exposed by lossy links", cons)
			}
			fast, err := s.Verify()
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if !fast.OK {
				t.Fatalf("history under faults fails Theorem 7 %s verification", cons)
			}

			ns := s.NetStats()
			if ns.Dropped == 0 {
				t.Errorf("fault run reported zero drops: %+v", ns)
			}
			if ns.Retransmitted == 0 {
				t.Errorf("fault run reported zero retransmissions: %+v", ns)
			}
		})
	}
}

// TestChaosAllBroadcasts runs the m-sequential store over each of the
// three atomic-broadcast implementations under faults: the sequencer's
// ordering traffic, Lamport's data/ack mesh, and the circulating token
// must all survive loss and duplication.
func TestChaosAllBroadcasts(t *testing.T) {
	for _, bc := range []struct {
		name string
		kind BroadcastKind
	}{
		{"sequencer", SequencerBroadcast},
		{"lamport", LamportBroadcast},
		{"token", TokenBroadcast},
	} {
		t.Run(bc.name, func(t *testing.T) {
			t.Parallel()
			s := newStore(t, Config{
				Procs:       3,
				Consistency: MSequential,
				Broadcast:   bc.kind,
				Seed:        73,
				MaxDelay:    time.Millisecond,
				Faults:      chaosFaults(),
			})
			runChaosWorkload(t, s)
			waitForRetransmissions(t, s)
			exact, err := s.VerifyExact()
			if err != nil {
				t.Fatalf("VerifyExact: %v", err)
			}
			if !exact.OK {
				t.Fatalf("%s broadcast under faults breaks m-sequential consistency", bc.name)
			}
			if ns := s.NetStats(); ns.Dropped == 0 || ns.Retransmitted == 0 {
				t.Errorf("fault run reported no faults: %+v", ns)
			}
		})
	}
}

// TestFaultFreeStoreHasZeroFaultCounters pins the complementary
// guarantee: without a Faults config the transport is the plain reliable
// network and every fault counter stays zero.
func TestFaultFreeStoreHasZeroFaultCounters(t *testing.T) {
	s := newStore(t, Config{
		Procs:       3,
		Consistency: MLinearizable,
		Seed:        75,
		MaxDelay:    time.Millisecond,
	})
	runChaosWorkload(t, s)
	ns := s.NetStats()
	if ns.Dropped != 0 || ns.Duplicated != 0 || ns.Retransmitted != 0 {
		t.Fatalf("fault-free run has nonzero fault counters: %+v", ns)
	}
	if ns.Messages == 0 {
		t.Fatal("no traffic recorded at all — NetStats aggregation broken")
	}
}
