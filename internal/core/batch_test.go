package core

import (
	"sync"
	"testing"
	"time"

	"moc/internal/mop"
	"moc/internal/object"
)

// batchKnobs is the batching configuration the integration tests run
// under: small enough to exercise partial-window flushes, large enough
// that bursts coalesce.
const testBatchSize = 4

const testBatchWindow = 500 * time.Microsecond

// TestBatchedChaosCheckerAccepted runs the batched update path over the
// lossy, duplicating, partitioned network for every broadcast
// implementation and both broadcast consistencies: coalesced BatchMsg
// frames must expand back into histories the unchanged exact checkers
// accept.
func TestBatchedChaosCheckerAccepted(t *testing.T) {
	for _, bc := range []struct {
		name string
		kind BroadcastKind
	}{
		{"sequencer", SequencerBroadcast},
		{"lamport", LamportBroadcast},
		{"token", TokenBroadcast},
	} {
		for _, cons := range []Consistency{MSequential, MLinearizable} {
			t.Run(bc.name+"/"+cons.String(), func(t *testing.T) {
				t.Parallel()
				s := newStore(t, Config{
					Procs:       3,
					Consistency: cons,
					Broadcast:   bc.kind,
					Seed:        91,
					MaxDelay:    time.Millisecond,
					Faults:      chaosFaults(),
					BatchSize:   testBatchSize,
					BatchWindow: testBatchWindow,
				})
				runChaosWorkload(t, s)
				waitForRetransmissions(t, s)

				exact, err := s.VerifyExact()
				if err != nil {
					t.Fatalf("VerifyExact: %v", err)
				}
				if !exact.OK {
					t.Fatalf("batched history fails exact %s checker", cons)
				}
				fast, err := s.Verify()
				if err != nil {
					t.Fatalf("Verify: %v", err)
				}
				if !fast.OK {
					t.Fatalf("batched history fails Theorem 7 %s verification", cons)
				}
				if flushes, _, _ := s.BatchStats(); flushes == 0 {
					t.Fatal("batching enabled but no flushes metered")
				}
			})
		}
	}
}

// TestBatchedCrashRecovery runs the batched path under the crash
// schedule: coalesced frames, sequencer failover, checkpointed recovery
// — and the exact checker must still accept the history. The recovery
// `applied` counters live in the expanded (renumbered) delivery space,
// which every process derives identically.
func TestBatchedCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash schedule needs its full wall-clock timeline")
	}
	s := newStore(t, Config{
		Procs:        5,
		Consistency:  MSequential,
		Broadcast:    SequencerBroadcast,
		Seed:         93,
		MaxDelay:     time.Millisecond,
		Faults:       crashFaults(),
		FD:           crashFD(),
		QueryTimeout: scaled(15 * time.Millisecond),
		QueryRetries: 2,
		BatchSize:    testBatchSize,
		BatchWindow:  testBatchWindow,
	})
	origin := time.Now()
	runCrashSchedule(t, s, origin)

	exact, err := s.VerifyExact()
	if err != nil {
		t.Fatalf("VerifyExact: %v", err)
	}
	if !exact.OK {
		t.Fatal("batched history under crashes fails exact checker")
	}
	ns := s.NetStats()
	if ns.Crashes == 0 || ns.Restarts == 0 {
		t.Fatalf("crash schedule not exercised: %+v", ns)
	}
}

// TestPipelinedUpdatesVerified drives MaxInflight parallel updates per
// process through ExecuteAsync and re-checks the history with the exact
// checkers: operations overlapping on one process id must be recorded
// under distinct issuing lanes, keeping the history well-formed and
// consistent.
func TestPipelinedUpdatesVerified(t *testing.T) {
	for _, cons := range []Consistency{MSequential, MLinearizable} {
		t.Run(cons.String(), func(t *testing.T) {
			t.Parallel()
			const inflight = 3
			s := newStore(t, Config{
				Procs:       2,
				Consistency: cons,
				Seed:        95,
				MaxDelay:    500 * time.Microsecond,
				MaxInflight: inflight,
			})

			var wg sync.WaitGroup
			for i := 0; i < s.Procs(); i++ {
				p, err := s.Process(i)
				if err != nil {
					t.Fatalf("Process(%d): %v", i, err)
				}
				wg.Add(1)
				go func(i int, p *Process) {
					defer wg.Done()
					futs := make([]*Future, 0, 2*inflight)
					for j := 0; j < 2*inflight; j++ {
						f, err := p.ExecAsync(mop.WriteOp{X: object.ID(j % 3), V: object.Value(10*i + j)}, ExecOptions{})
						if err != nil {
							t.Errorf("proc %d ExecAsync: %v", i, err)
							return
						}
						futs = append(futs, f)
					}
					for j, f := range futs {
						if _, err := f.Wait(); err != nil {
							t.Errorf("proc %d wait %d: %v", i, j, err)
						}
					}
					// A query after the pipelined burst still works.
					if _, err := p.Read(object.ID(i % 3)); err != nil {
						t.Errorf("proc %d read: %v", i, err)
					}
				}(i, p)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// The burst oversubscribes the lanes, so some operation must have
			// been recorded under a virtual lane process id.
			lanes := false
			for _, rec := range s.Records() {
				if rec.Proc >= s.Procs() {
					lanes = true
					break
				}
			}
			if !lanes {
				t.Fatalf("%d in-flight updates per process never left lane 0", 2*inflight)
			}

			exact, err := s.VerifyExact()
			if err != nil {
				t.Fatalf("VerifyExact: %v", err)
			}
			if !exact.OK {
				t.Fatalf("pipelined history fails exact %s checker", cons)
			}
			fast, err := s.Verify()
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if !fast.OK {
				t.Fatalf("pipelined history fails Theorem 7 %s verification", cons)
			}
		})
	}
}

// TestBatchedPipelinedChaos combines the whole tentpole — pipelined
// issuance feeding the batching broadcaster — under delivery faults,
// and requires multi-update batches to actually form.
func TestBatchedPipelinedChaos(t *testing.T) {
	s := newStore(t, Config{
		Procs:       3,
		Consistency: MSequential,
		Seed:        97,
		MaxDelay:    time.Millisecond,
		Faults:      chaosFaults(),
		BatchSize:   testBatchSize,
		BatchWindow: 5 * time.Millisecond,
		MaxInflight: 4,
	})

	var wg sync.WaitGroup
	for i := 0; i < s.Procs(); i++ {
		p, err := s.Process(i)
		if err != nil {
			t.Fatalf("Process(%d): %v", i, err)
		}
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			var futs []*Future
			for j := 0; j < 8; j++ {
				f, err := p.ExecAsync(mop.WriteOp{X: object.ID(j % 3), V: object.Value(100*i + j)}, ExecOptions{})
				if err != nil {
					t.Errorf("proc %d ExecAsync: %v", i, err)
					return
				}
				futs = append(futs, f)
			}
			for j, f := range futs {
				if _, err := f.Wait(); err != nil {
					t.Errorf("proc %d wait %d: %v", i, j, err)
				}
			}
		}(i, p)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	_, batches, batched := s.BatchStats()
	if batches == 0 || batched < 2 {
		t.Fatalf("pipelined burst formed no multi-update batches: batches=%d batched=%d", batches, batched)
	}
	exact, err := s.VerifyExact()
	if err != nil {
		t.Fatalf("VerifyExact: %v", err)
	}
	if !exact.OK {
		t.Fatal("batched+pipelined history fails exact checker")
	}
}

// TestBatchPipelineValidation pins the config surface: the knobs are
// broadcast-consistency only and must be non-negative.
func TestBatchPipelineValidation(t *testing.T) {
	base := Config{Procs: 2, Objects: []string{"x"}}

	bad := base
	bad.Consistency = MCausal
	bad.BatchSize = 8
	if _, err := New(bad); err == nil {
		t.Fatal("batching accepted for m-causal store")
	}
	bad = base
	bad.Consistency = MLinearizableLocking
	bad.MaxInflight = 4
	if _, err := New(bad); err == nil {
		t.Fatal("pipelining accepted for locking store")
	}
	bad = base
	bad.MaxInflight = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative MaxInflight accepted")
	}
	bad = base
	bad.BatchSize = -2
	if _, err := New(bad); err == nil {
		t.Fatal("negative BatchSize accepted")
	}

	// MaxInflight == 1 and BatchSize == 1 are the defaults spelled out:
	// fine everywhere.
	ok := base
	ok.Consistency = MCausal
	ok.MaxInflight = 1
	if s, err := New(ok); err != nil {
		t.Fatalf("MaxInflight=1 rejected: %v", err)
	} else {
		s.Close()
	}
}
