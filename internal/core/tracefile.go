package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"moc/internal/mop"
)

// TraceFileWriter streams a daemon's records to a JSON-lines trace file
// as they complete: a header line with the trace metadata, then one
// TraceRecord per line. Each record is written straight to the file (no
// user-space buffering), so everything recorded before a SIGKILL
// survives in the kernel page cache and ReadTraceFile recovers it —
// unlike Store.Trace, which needs a live, quiescent store. Wire it up
// as the store's Config.RecordSink; Append is safe for concurrent use.
type TraceFileWriter struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
	err error
}

// NewTraceFileWriter creates (truncating) the trace file at path and
// writes the header line. Node, consistency, objects, and the shard
// spec (Store.ShardSpec, "" when unsharded) must match what Store.Trace
// would report so merged files pass MergeTraces.
func NewTraceFileWriter(path string, node int, consistency Consistency, objects []string, shards string) (*TraceFileWriter, error) {
	if consistency != MSequential && consistency != MLinearizable {
		return nil, fmt.Errorf("core: trace file is not supported for %v", consistency)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &TraceFileWriter{f: f, enc: json.NewEncoder(f)}
	hdr := Trace{Node: node, Consistency: consistency.String(), Objects: objects, Shards: shards}
	if err := w.enc.Encode(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("core: trace header: %w", err)
	}
	return w, nil
}

// Append writes one record as a line. Errors are sticky and reported by
// Close; a sink must not block the protocol's completion path on them.
func (w *TraceFileWriter) Append(rec mop.Record) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	w.err = w.enc.Encode(toTraceRecord(rec))
}

// Close syncs and closes the file, returning the first error seen.
func (w *TraceFileWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	w.f = nil
	return w.err
}

// ReadTraceFile parses a trace file written by TraceFileWriter back
// into a Trace for MergeTraces. A trailing partial line — a record cut
// off mid-write by a kill — is tolerated and dropped; any earlier
// malformed line is an error. The header's records field is ignored.
func ReadTraceFile(path string) (Trace, error) {
	tr, _, err := readTraceFile(path, false)
	return tr, err
}

// ReadTraceFileLenient is ReadTraceFile in lenient mode: corrupt
// interior lines — torn by a kill landing mid-write with more appends
// racing behind it, or bytes mangled on a dying disk — are skipped and
// counted instead of aborting the parse, so one torn file does not
// abort a whole campaign merge. The count of skipped lines is returned;
// a caller that expected a clean file should treat a nonzero count as
// the error ReadTraceFile would have raised. The header must still
// parse — without it the records cannot be attributed to a node.
func ReadTraceFileLenient(path string) (Trace, int, error) {
	return readTraceFile(path, true)
}

func readTraceFile(path string, lenient bool) (Trace, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, 0, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Trace{}, 0, fmt.Errorf("core: trace file %s: %w", path, err)
		}
		return Trace{}, 0, fmt.Errorf("core: trace file %s: missing header", path)
	}
	var tr Trace
	if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
		return Trace{}, 0, fmt.Errorf("core: trace file %s header: %w", path, err)
	}
	tr.Records = nil

	skipped := 0
	var pendingErr error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The bad line had lines after it, so it was not a
			// kill-truncated tail.
			if !lenient {
				return Trace{}, 0, pendingErr
			}
			skipped++
			pendingErr = nil
		}
		var wr TraceRecord
		if err := json.Unmarshal(line, &wr); err != nil {
			// Legal as the final line (truncated by a kill); anything
			// interior is corruption.
			pendingErr = fmt.Errorf("core: trace file %s: bad record line: %w", path, err)
			continue
		}
		tr.Records = append(tr.Records, wr)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, 0, fmt.Errorf("core: trace file %s: %w", path, err)
	}
	return tr, skipped, nil
}
