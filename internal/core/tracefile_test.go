package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"moc/internal/checker"
	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/timestamp"
)

// TestTraceFileRoundTrip streams records through a RecordSink-wired
// TraceFileWriter (the daemon's -trace path), reads the file back, and
// checks the exact m-SC checker accepts the rebuilt history — the file
// must be a faithful substitute for a live Store.Trace dump.
func TestTraceFileRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "node0.trace")
	w, err := NewTraceFileWriter(path, 0, MSequential, []string{"x", "y"}, "")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Procs: 3, Objects: []string{"x", "y"},
		Consistency: MSequential, Seed: 42, MaxDelay: time.Millisecond,
		RecordSink: w.Append,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		if err := p.Write(object.ID(0), object.Value(i+1)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Sum(object.ID(0), object.ID(1)); err != nil {
			t.Fatal(err)
		}
		if err := p.MAssign(map[object.ID]object.Value{0: object.Value(10 + i), 1: object.Value(20 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	live, err := s.Trace(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(live.Records) {
		t.Fatalf("file has %d records, live trace has %d", len(back.Records), len(live.Records))
	}
	if back.Consistency != live.Consistency || len(back.Objects) != len(live.Objects) {
		t.Fatalf("file header %v/%v disagrees with live trace %v/%v",
			back.Consistency, back.Objects, live.Consistency, live.Objects)
	}

	recs, reg, cons, err := MergeTraces(back)
	if err != nil {
		t.Fatal(err)
	}
	if cons != MSequential {
		t.Fatalf("consistency = %v", cons)
	}
	h, updates, err := BuildHistory(reg, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 6 {
		t.Fatalf("got %d ordered updates, want 6", len(updates))
	}
	res, err := checker.MSequentiallyConsistent(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admissible {
		t.Fatal("trace-file history rejected by the exact m-SC checker")
	}
}

// TestReadTraceFileToleratesTruncatedTail models a SIGKILL landing
// mid-write: a partial final line is dropped, but a malformed line in
// the middle of the file is still an error.
func TestReadTraceFileToleratesTruncatedTail(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "killed.trace")
	w, err := NewTraceFileWriter(path, 1, MLinearizable, []string{"x"}, "")
	if err != nil {
		t.Fatal(err)
	}
	w.Append(mop.Record{
		Proc: 1, Update: true, Seq: 0,
		Ops:     []history.Op{history.W(object.ID(0), 7)},
		TSStart: timestamp.TS{0}, TSEnd: timestamp.TS{1},
		Footprint: object.NewSet(object.ID(0)),
		Inv:       1, Resp: 2,
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"proc":1,"update":true,"o`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tr, err := ReadTraceFile(path)
	if err != nil {
		t.Fatalf("truncated tail not tolerated: %v", err)
	}
	if tr.Node != 1 || tr.Consistency != MLinearizable.String() {
		t.Fatalf("header = %+v", tr)
	}
	if len(tr.Records) != 1 || len(tr.Records[0].Ops) != 1 || tr.Records[0].Ops[0].Val != 7 {
		t.Fatalf("records = %+v, want the one complete record", tr.Records)
	}

	// The same garbage mid-file (a complete, newline-terminated bad line
	// followed by a good one) must fail loudly.
	bad := filepath.Join(t.TempDir(), "corrupt.trace")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, append(data, []byte("\n{\"proc\":1,\"update\":false,\"ops\":[],\"tsStart\":[],\"tsEnd\":[],\"footprint\":[],\"inv\":1,\"resp\":2}\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceFile(bad); err == nil {
		t.Fatal("mid-file garbage accepted")
	}

	// Lenient mode skips and counts the same interior garbage instead of
	// aborting, keeping both complete records around it.
	tr2, skipped, err := ReadTraceFileLenient(bad)
	if err != nil {
		t.Fatalf("lenient read failed: %v", err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if len(tr2.Records) != 2 {
		t.Fatalf("lenient records = %+v, want both complete records", tr2.Records)
	}
}

// TestReadTraceFileLenientCountsOnlyInteriorLines: a truncated tail is
// a normal kill artifact, not corruption — lenient mode must not count
// it — and a clean file reports zero skips.
func TestReadTraceFileLenientCountsOnlyInteriorLines(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "clean.trace")
	w, err := NewTraceFileWriter(path, 0, MLinearizable, []string{"x"}, "")
	if err != nil {
		t.Fatal(err)
	}
	w.Append(mop.Record{
		Proc: 0, Update: true, Seq: 0,
		Ops:     []history.Op{history.W(object.ID(0), 3)},
		TSStart: timestamp.TS{0}, TSEnd: timestamp.TS{1},
		Footprint: object.NewSet(object.ID(0)),
		Inv:       1, Resp: 2,
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, skipped, err := ReadTraceFileLenient(path); err != nil || skipped != 0 {
		t.Fatalf("clean file: skipped = %d, err = %v", skipped, err)
	}

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"proc":0,"upd`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tr, skipped, err := ReadTraceFileLenient(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(tr.Records) != 1 {
		t.Fatalf("truncated tail: skipped = %d, records = %d; want 0 and 1", skipped, len(tr.Records))
	}

	// A header that does not parse is fatal even in lenient mode.
	badHdr := filepath.Join(t.TempDir(), "badhdr.trace")
	if err := os.WriteFile(badHdr, []byte("{\"node\":\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadTraceFileLenient(badHdr); err == nil {
		t.Fatal("unparsable header accepted in lenient mode")
	}
}
