package core

import (
	"encoding/json"
	"testing"
	"time"

	"moc/internal/checker"
	"moc/internal/object"
)

// TestTraceRoundTrip dumps a recorded execution as a Trace, round-trips
// it through JSON (the daemon dump path), rebuilds the history with the
// standalone BuildHistory, and checks the exact decider accepts it —
// i.e. the wire format loses nothing the checkers need.
func TestTraceRoundTrip(t *testing.T) {
	s, err := New(Config{
		Procs: 3, Objects: []string{"x", "y"},
		Consistency: MSequential, Seed: 42, MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 3; i++ {
		p, _ := s.Process(i)
		if err := p.Write(object.ID(0), object.Value(i+1)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Sum(object.ID(0), object.ID(1)); err != nil {
			t.Fatal(err)
		}
		if err := p.MAssign(map[object.ID]object.Value{0: object.Value(10 + i), 1: object.Value(20 + i)}); err != nil {
			t.Fatal(err)
		}
	}

	tr, err := s.Trace(0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}

	recs, reg, cons, err := MergeTraces(back)
	if err != nil {
		t.Fatal(err)
	}
	if cons != MSequential {
		t.Fatalf("consistency = %v", cons)
	}
	if got := len(recs); got != 9 {
		t.Fatalf("merged %d records, want 9", got)
	}
	h, updates, err := BuildHistory(reg, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 6 {
		t.Fatalf("got %d ordered updates, want 6", len(updates))
	}
	res, err := checker.MSequentiallyConsistent(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Admissible {
		t.Fatal("rebuilt history rejected by the exact m-SC checker")
	}
}
