package core

import (
	"sync"
	"testing"
	"time"

	"moc/internal/abcast"
	"moc/internal/monitor"
	"moc/internal/network"
	"moc/internal/object"
)

// scaled stretches a crash-schedule timing constant by crashTimeScale
// (1 in normal builds, larger under -race; see timescale_race_test.go).
func scaled(d time.Duration) time.Duration { return d * crashTimeScale }

// crashFaults is the acceptance-criteria adversary: delivery drops, an
// initial partition isolating process 0, and seed-driven crashes of
// ⌈n/2⌉−1 = 2 of the 5 processes — first process 0 (the initial
// sequencer leader and token holder, which also restarts and must
// recover), then process 2. The crash windows are staggered well past
// the failure-detection timeout so suspicion can mature between them,
// and the partition heals before the detector would mistake it for a
// crash. (Durations quoted in comments are the unscaled, non-race
// values.)
func crashFaults() *network.Faults {
	return &network.Faults{
		DropProb:       0.05,
		DelaySpikeProb: 0.05,
		DelaySpike:     time.Millisecond,
		Partitions:     []network.Partition{{Side: []int{0}, Start: 0, Heal: scaled(30 * time.Millisecond)}},
		Crashes: []network.Crash{
			{Proc: 0, At: scaled(60 * time.Millisecond), Restart: scaled(200 * time.Millisecond)},  // down 60–200ms
			{Proc: 2, At: scaled(320 * time.Millisecond), Restart: scaled(460 * time.Millisecond)}, // down 320–460ms
		},
		RTO: 3 * time.Millisecond,
	}
}

// crashFD is the detection timing for crashFaults. The timeout must
// dominate the longest silence a LIVE process can exhibit, which here is
// not the 30ms partition itself but its echo through the reliable layer:
// per-link FIFO holds all frames behind the oldest partition-dropped one,
// whose retransmission backoff (3, 9, 21, 45ms...) can delay it — and so
// every heartbeat behind it — to ~45ms after the run starts, or ~93ms if
// one more retransmission is dropped on top. 100ms keeps false suspicion
// (which no crash-stop detector can fully avoid) out of the schedule,
// per the timing assumption documented in failover.go. Under -race both
// constants scale with the schedule so the dominance survives the
// detector's processing dilation.
func crashFD() *abcast.FDConfig {
	return &abcast.FDConfig{Interval: scaled(2 * time.Millisecond), Timeout: scaled(100 * time.Millisecond)}
}

// crashPhase issues a burst of update and query m-operations at each of
// the given processes concurrently and waits for all of them — every
// listed process must be up for the whole phase.
func crashPhase(t *testing.T, s *Store, tag int, procs ...int) {
	t.Helper()
	var wg sync.WaitGroup
	for _, i := range procs {
		p, err := s.Process(i)
		if err != nil {
			t.Fatalf("Process(%d): %v", i, err)
		}
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			if err := p.MAssign(map[object.ID]object.Value{
				object.ID(i % 3):       object.Value(1000*tag + 10*i),
				object.ID((i + 1) % 3): object.Value(1000*tag + 10*i + 1),
			}); err != nil {
				t.Errorf("phase %d proc %d massign: %v", tag, i, err)
				return
			}
			if _, err := p.MultiRead(object.ID(i%3), object.ID((i+1)%3)); err != nil {
				t.Errorf("phase %d proc %d multiread: %v", tag, i, err)
				return
			}
			if err := p.Write(object.ID((i+2)%3), object.Value(1000*tag+10*i+2)); err != nil {
				t.Errorf("phase %d proc %d write: %v", tag, i, err)
			}
		}(i, p)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
}

// sleepUntil parks the caller until the given instant on the store's
// fault-schedule clock (time since store creation).
func sleepUntil(origin time.Time, at time.Duration) {
	if d := at - time.Since(origin); d > 0 {
		time.Sleep(d)
	}
}

// runCrashSchedule drives the phased workload around crashFaults'
// windows: ops everywhere before the first crash, ops at the survivors
// during each crash window (forcing failover / token regeneration /
// quorum exclusion), and ops everywhere — including both restarted
// processes — at the end.
func runCrashSchedule(t *testing.T, s *Store, origin time.Time) {
	t.Helper()
	crashPhase(t, s, 1, 0, 1, 2, 3, 4) // partition active, everyone up
	sleepUntil(origin, scaled(70*time.Millisecond))
	crashPhase(t, s, 2, 1, 2, 3, 4) // proc 0 down: coordinator failover
	sleepUntil(origin, scaled(225*time.Millisecond))
	crashPhase(t, s, 3, 0, 1, 2, 3, 4) // proc 0 restarted and recovered
	sleepUntil(origin, scaled(330*time.Millisecond))
	crashPhase(t, s, 4, 0, 1, 3, 4) // proc 2 down
	sleepUntil(origin, scaled(485*time.Millisecond))
	crashPhase(t, s, 5, 0, 1, 2, 3, 4) // everyone back
}

// TestCrashChaos is the tentpole acceptance test: all three atomic
// broadcasts under both replicated consistency conditions survive
// drops, a partition, and staggered crash/restart of two of five
// processes — including the initial sequencer leader and token holder —
// without hanging, and the histories still pass the exact (NP-hard)
// checkers and the Section 5 proof-obligation monitor across the crash
// boundary.
func TestCrashChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("crash schedule needs its full wall-clock timeline")
	}
	for _, bc := range []struct {
		name string
		kind BroadcastKind
	}{
		{"sequencer", SequencerBroadcast},
		{"lamport", LamportBroadcast},
		{"token", TokenBroadcast},
	} {
		for _, cons := range []Consistency{MSequential, MLinearizable} {
			t.Run(bc.name+"/"+cons.String(), func(t *testing.T) {
				t.Parallel()
				s := newStore(t, Config{
					Procs:       5,
					Consistency: cons,
					Broadcast:   bc.kind,
					Seed:        81,
					MaxDelay:    time.Millisecond,
					Faults:      crashFaults(),
					FD:          crashFD(),
					// Bounded queries: a query must not block on a crashed
					// responder for longer than the re-solicitation budget.
					QueryTimeout: scaled(15 * time.Millisecond),
					QueryRetries: 2,
				})
				origin := time.Now()
				runCrashSchedule(t, s, origin)

				exact, err := s.VerifyExact()
				if err != nil {
					t.Fatalf("VerifyExact: %v", err)
				}
				if !exact.OK {
					t.Fatalf("history under crashes fails exact %s checker", cons)
				}
				fast, err := s.Verify()
				if err != nil {
					t.Fatalf("Verify: %v", err)
				}
				if !fast.OK {
					t.Fatalf("history under crashes fails Theorem 7 %s verification", cons)
				}

				// The monitor's proof obligations must hold across the
				// crash boundary: restarted processes resume with records
				// whose version vectors extend the pre-crash ones.
				level := monitor.MSCLevel
				if cons == MLinearizable {
					level = monitor.MLinLevel
				}
				if v := monitor.ValidateAxioms(s.Records(), s.Registry().Len(), level); len(v) != 0 {
					t.Fatalf("proof obligations violated across crash boundary: %v", v)
				}

				ns := s.NetStats()
				if ns.Crashes == 0 || ns.Restarts == 0 {
					t.Fatalf("crash schedule not exercised: %+v", ns)
				}
				if ns.Dropped == 0 || ns.Retransmitted == 0 {
					t.Errorf("faulty run reported no drops/retransmissions: %+v", ns)
				}
			})
		}
	}
}

// TestCheckpointRecovery pins the state-transfer path: while process 0
// is down the survivors commit a backlog large enough that, at the
// restart instant, process 0's local copy must be behind a live peer's —
// so the recovery watcher adopts a checkpoint rather than replaying the
// whole outage from retransmissions. The slow RTO keeps redelivery from
// winning the race.
func TestCheckpointRecovery(t *testing.T) {
	faults := &network.Faults{
		Crashes: []network.Crash{{Proc: 0, At: scaled(30 * time.Millisecond), Restart: scaled(180 * time.Millisecond)}},
		RTO:     scaled(20 * time.Millisecond),
	}
	s := newStore(t, Config{
		Procs:       3,
		Consistency: MSequential,
		Seed:        83,
		MaxDelay:    time.Millisecond,
		Faults:      faults,
	})
	origin := time.Now()

	crashPhase(t, s, 1, 0, 1, 2)
	sleepUntil(origin, scaled(45*time.Millisecond))
	// Backlog while 0 is down (down 30–180ms): 30 updates the checkpoint
	// must subsume.
	for j := 0; j < 15; j++ {
		for _, i := range []int{1, 2} {
			p, _ := s.Process(i)
			if err := p.Write(object.ID(j%3), object.Value(100*i+j)); err != nil {
				t.Fatalf("backlog write proc %d: %v", i, err)
			}
		}
	}
	sleepUntil(origin, scaled(200*time.Millisecond))
	crashPhase(t, s, 2, 0, 1, 2)

	if n := s.Recoveries(); n == 0 {
		t.Fatal("restarted process adopted no checkpoint despite a large missed backlog")
	}
	if rt := s.RecoveryTraffic(); rt.Messages == 0 {
		t.Fatalf("recovery reported an adoption but no transfer traffic: %+v", rt)
	}
	exact, err := s.VerifyExact()
	if err != nil {
		t.Fatalf("VerifyExact: %v", err)
	}
	if !exact.OK {
		t.Fatal("history with checkpoint adoption fails the exact m-SC checker")
	}
	if v := monitor.ValidateAxioms(s.Records(), s.Registry().Len(), monitor.MSCLevel); len(v) != 0 {
		t.Fatalf("proof obligations violated after checkpoint adoption: %v", v)
	}
}

// TestCrashFreeRunKeepsCrashCountersZero pins the control: a faulty but
// crash-free schedule reproduces the seed behavior with Crashes and
// Restarts both zero.
func TestCrashFreeRunKeepsCrashCountersZero(t *testing.T) {
	s := newStore(t, Config{
		Procs:       3,
		Consistency: MLinearizable,
		Seed:        85,
		MaxDelay:    time.Millisecond,
		Faults:      chaosFaults(),
	})
	runChaosWorkload(t, s)
	ns := s.NetStats()
	if ns.Crashes != 0 || ns.Restarts != 0 {
		t.Fatalf("crash-free run has nonzero crash counters: %+v", ns)
	}
	if s.Recoveries() != 0 {
		t.Fatalf("crash-free run performed %d recoveries", s.Recoveries())
	}
	exact, err := s.VerifyExact()
	if err != nil {
		t.Fatalf("VerifyExact: %v", err)
	}
	if !exact.OK {
		t.Fatal("crash-free control run fails the exact checker")
	}
}
