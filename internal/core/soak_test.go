package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"moc/internal/checker"
	"moc/internal/monitor"
	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/workload"
)

// TestSoakAllProtocols drives every protocol implementation through
// randomized multi-object workloads across several seeds and validates
// each run on every applicable layer:
//
//   - Store.Verify (the protocol's own guarantee);
//   - the exact decider (cross-check, runs are small);
//   - the P5.x axiom validator and the streaming monitor (for
//     version-vector protocols);
//   - the consistency hierarchy (a verified level implies all weaker
//     levels).
//
// This is the repository's integration backstop: a regression anywhere
// in the stack (network, broadcast, protocol, recording, reconstruction,
// checker) surfaces here.
func TestSoakAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	type protoCase struct {
		cons       Consistency
		exactCheck func(*testing.T, *VerifyResult)
		monitorLvl monitor.Level
		monitored  bool
	}
	cases := []protoCase{
		{
			cons: MSequential,
			exactCheck: func(t *testing.T, res *VerifyResult) {
				exact, err := checker.MSequentiallyConsistent(res.History)
				if err != nil {
					t.Fatalf("exact: %v", err)
				}
				if !exact.Admissible {
					t.Fatal("exact m-SC check failed")
				}
			},
			monitorLvl: monitor.MSCLevel,
			monitored:  true,
		},
		{
			cons: MLinearizable,
			exactCheck: func(t *testing.T, res *VerifyResult) {
				exact, err := checker.MLinearizable(res.History)
				if err != nil {
					t.Fatalf("exact: %v", err)
				}
				if !exact.Admissible {
					t.Fatal("exact m-lin check failed")
				}
			},
			monitorLvl: monitor.MLinLevel,
			monitored:  true,
		},
		{
			cons: MLinearizableLocking,
			exactCheck: func(t *testing.T, res *VerifyResult) {
				exact, err := checker.MLinearizable(res.History)
				if err != nil {
					t.Fatalf("exact: %v", err)
				}
				if !exact.Admissible {
					t.Fatal("exact m-lin check failed (locking)")
				}
			},
			monitorLvl: monitor.MLinLevel,
			monitored:  true,
		},
		{
			cons: MCausal,
			exactCheck: func(t *testing.T, res *VerifyResult) {
				causal, err := checker.MCausallyConsistent(res.History)
				if err != nil {
					t.Fatalf("exact: %v", err)
				}
				if !causal.Consistent {
					t.Fatal("exact m-causal check failed")
				}
			},
			monitored: false,
		},
	}

	for _, pc := range cases {
		pc := pc
		t.Run(pc.cons.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 4; seed++ {
				s, err := New(Config{
					Procs: 3, Objects: []string{"x", "y", "z", "w"},
					Consistency: pc.cons, Seed: seed, MaxDelay: time.Millisecond,
				})
				if err != nil {
					t.Fatalf("seed %d: New: %v", seed, err)
				}

				mix := workload.Mix{ReadFrac: 0.4, Span: 2, OpsPerProc: 5}
				plans := mix.Plan(3, 4, rand.New(rand.NewSource(seed)))
				var wg sync.WaitGroup
				errCh := make(chan error, 3)
				for pi := 0; pi < 3; pi++ {
					p, _ := s.Process(pi)
					wg.Add(1)
					go func(plan []workload.Op, p *Process) {
						defer wg.Done()
						for _, op := range plan {
							var pr mop.Procedure
							if op.Query {
								pr = mop.MultiRead{Xs: op.Objs}
							} else {
								writes := make(map[object.ID]object.Value, len(op.Objs))
								for i, x := range op.Objs {
									writes[x] = op.Vals[i]
								}
								pr = mop.MAssign{Writes: writes}
							}
							if _, err := p.Exec(pr, ExecOptions{}); err != nil {
								errCh <- err
								return
							}
						}
					}(plans[pi], p)
				}
				wg.Wait()
				select {
				case err := <-errCh:
					t.Fatalf("seed %d: %v", seed, err)
				default:
				}

				res, err := s.Verify()
				if err != nil {
					t.Fatalf("seed %d: Verify: %v", seed, err)
				}
				if !res.OK {
					t.Fatalf("seed %d: %v verification failed", seed, pc.cons)
				}
				pc.exactCheck(t, &res)

				// Hierarchy: anything verified here must be m-causal.
				causal, err := checker.MCausallyConsistent(res.History)
				if err != nil {
					t.Fatalf("seed %d: causal: %v", seed, err)
				}
				if !causal.Consistent {
					t.Fatalf("seed %d: hierarchy violated: %v-verified but not m-causal", seed, pc.cons)
				}

				if pc.monitored {
					recs := s.Records()
					sort.Slice(recs, func(i, j int) bool { return recs[i].Resp < recs[j].Resp })
					if v := monitor.ValidateAxioms(recs, 4, pc.monitorLvl); len(v) != 0 {
						t.Fatalf("seed %d: axiom violations: %v", seed, v)
					}
					m := monitor.NewMonitor(4, pc.monitorLvl)
					for _, rec := range recs {
						m.Observe(rec)
					}
					if v := m.Finish(); len(v) != 0 {
						t.Fatalf("seed %d: monitor violations: %v", seed, v)
					}
				}
				s.Close()
			}
		})
	}
}
