//go:build !race

package core

// crashTimeScale is 1 in normal builds; see timescale_race_test.go.
const crashTimeScale = 1
