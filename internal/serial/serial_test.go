package serial

import (
	"math/rand"
	"testing"

	"moc/internal/object"
)

func mustSchedule(t *testing.T, reg *object.Registry, numTxns int, actions []Action) *Schedule {
	t.Helper()
	s, err := New(reg, numTxns, actions)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	reg := object.MustRegistry("x")
	if _, err := New(reg, 1, []Action{Rd(2, 0)}); err == nil {
		t.Fatal("invalid txn index accepted")
	}
	if _, err := New(reg, 1, []Action{Rd(1, 5)}); err == nil {
		t.Fatal("invalid entity accepted")
	}
	if _, err := New(reg, 2, []Action{Rd(1, 0)}); err == nil {
		t.Fatal("empty transaction accepted")
	}
	if _, err := New(reg, 1, []Action{Rd(1, 0)}); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestReadsFromAndFinalWriters(t *testing.T) {
	reg := object.MustRegistry("x", "y")
	// w1(x) r2(x) w2(y) r1(y) w1(y)
	s := mustSchedule(t, reg, 2, []Action{
		Wr(1, 0), Rd(2, 0), Wr(2, 1), Rd(1, 1), Wr(1, 1),
	})
	rf := s.readsFrom()
	if rf[1] != 1 {
		t.Errorf("r2(x) reads from T%d, want T1", rf[1])
	}
	if rf[3] != 2 {
		t.Errorf("r1(y) reads from T%d, want T2", rf[3])
	}
	finals := s.finalWriters()
	if finals[0] != 1 || finals[1] != 1 {
		t.Errorf("final writers = %v, want [1 1]", finals)
	}
}

func TestNonOverlapping(t *testing.T) {
	reg := object.MustRegistry("x")
	// T1 entirely before T2; T3 overlaps both? w1(x) w1(x) w2(x) w3(x) w2(x)
	s := mustSchedule(t, reg, 3, []Action{
		Wr(1, 0), Wr(1, 0), Wr(2, 0), Wr(3, 0), Wr(2, 0),
	})
	if !s.NonOverlapping(1, 2) {
		t.Error("T1 should finish before T2 starts")
	}
	if s.NonOverlapping(2, 3) || s.NonOverlapping(3, 2) {
		t.Error("T2 and T3 overlap")
	}
	if s.NonOverlapping(2, 1) {
		t.Error("T2 does not precede T1")
	}
}

func TestConflictSerializableSimple(t *testing.T) {
	reg := object.MustRegistry("x", "y")
	// Serializable: r1(x) w1(x) r2(x) w2(x)
	ok, order := mustSchedule(t, reg, 2, []Action{
		Rd(1, 0), Wr(1, 0), Rd(2, 0), Wr(2, 0),
	}).ConflictSerializable()
	if !ok || order[0] != 1 || order[1] != 2 {
		t.Fatalf("ConflictSerializable = %v, %v", ok, order)
	}
	// Classic non-serializable interleaving: r1(x) r2(x) w1(x) w2(x).
	ok, _ = mustSchedule(t, reg, 2, []Action{
		Rd(1, 0), Rd(2, 0), Wr(1, 0), Wr(2, 0),
	}).ConflictSerializable()
	if ok {
		t.Fatal("lost-update anomaly reported conflict serializable")
	}
}

func TestViewButNotConflictSerializable(t *testing.T) {
	// The classical blind-write example (Papadimitriou):
	//   r1(x) w2(x) w1(x) w3(x)
	// Conflict graph is cyclic (T1→T2 via r1-w2, T2→T1 via w2-w1), but the
	// schedule is view equivalent to the serial T1 T2 T3 (T3's final blind
	// write hides the intermediates).
	reg := object.MustRegistry("x")
	s := mustSchedule(t, reg, 3, []Action{
		Rd(1, 0), Wr(2, 0), Wr(1, 0), Wr(3, 0),
	})
	if ok, _ := s.ConflictSerializable(); ok {
		t.Fatal("blind-write schedule must not be conflict serializable")
	}
	ok, order, err := s.ViewSerializable()
	if err != nil {
		t.Fatalf("ViewSerializable: %v", err)
	}
	if !ok {
		t.Fatal("blind-write schedule must be view serializable")
	}
	if !isViewEquivalentSerial(s, order, false) {
		t.Fatalf("returned order %v is not a view-equivalent serialization", order)
	}
}

func TestNotViewSerializable(t *testing.T) {
	// r1(x) r2(x) w1(x) w2(x) r3(x): T3 reads T2's x, T1 and T2 both read
	// initial x. Any serial order putting T1 or T2 second makes its read
	// non-initial. Not view serializable.
	reg := object.MustRegistry("x")
	s := mustSchedule(t, reg, 3, []Action{
		Rd(1, 0), Rd(2, 0), Wr(1, 0), Wr(2, 0), Rd(3, 0),
	})
	ok, _, err := s.ViewSerializable()
	if err != nil {
		t.Fatalf("ViewSerializable: %v", err)
	}
	if ok {
		t.Fatal("non-view-serializable schedule accepted")
	}
}

func TestStrictnessSeparation(t *testing.T) {
	// A schedule that is view serializable but not strict view
	// serializable. Entities y, z; transactions T1..T4:
	//
	//	w3(y) w2(z) r2(y) w3(z) r1(z) w4(z)
	//
	// rf: r2(y)←T3, r1(z)←T3; final writers: y=T3, z=T4. The constraints
	// force the unique serialization T3 T1 T2 T4: T3 < T2 (reads-from y);
	// T2's blind z-write must then follow T1 (it cannot sit between T3
	// and r1(z)); T4 is last. But T2 finishes (position 2) before T1
	// starts (position 4) in the schedule, so the required serialization
	// inverts a non-overlapping pair — strictness fails.
	reg := object.MustRegistry("y", "z")
	s := mustSchedule(t, reg, 4, []Action{
		Wr(3, 0), Wr(2, 1), Rd(2, 0), Wr(3, 1), Rd(1, 1), Wr(4, 1),
	})
	ok, order, err := s.ViewSerializable()
	if err != nil {
		t.Fatalf("ViewSerializable: %v", err)
	}
	if !ok {
		t.Fatal("schedule should be view serializable")
	}
	if !isViewEquivalentSerial(s, order, false) {
		t.Fatalf("order %v not view equivalent", order)
	}
	strict, _, err := s.StrictViewSerializable()
	if err != nil {
		t.Fatalf("StrictViewSerializable: %v", err)
	}
	if strict {
		t.Fatal("schedule must not be strict view serializable (T2 < T1 in real time)")
	}
	// Sanity: the brute-force baseline agrees on both decisions.
	if !bruteForceVSR(s, false) || bruteForceVSR(s, true) {
		t.Fatal("brute-force baseline disagrees with the example's construction")
	}
}

func TestStrictViewSerializableWitnessRespectsOrder(t *testing.T) {
	reg := object.MustRegistry("x", "y")
	// Fully sequential schedule: trivially strict view serializable.
	s := mustSchedule(t, reg, 3, []Action{
		Wr(1, 0), Rd(1, 1), Wr(2, 1), Rd(2, 0), Wr(3, 0), Rd(3, 1),
	})
	ok, order, err := s.StrictViewSerializable()
	if err != nil {
		t.Fatalf("StrictViewSerializable: %v", err)
	}
	if !ok {
		t.Fatal("sequential schedule rejected")
	}
	if !isViewEquivalentSerial(s, order, true) {
		t.Fatalf("order %v not a strict view-equivalent serialization", order)
	}
}

func TestToHistoryShape(t *testing.T) {
	reg := object.MustRegistry("x", "y")
	s := mustSchedule(t, reg, 2, []Action{
		Wr(1, 0), Rd(2, 0), Wr(2, 1),
	})
	h, ids, err := s.ToHistory()
	if err != nil {
		t.Fatalf("ToHistory: %v", err)
	}
	// init + T1 + T2 + T∞.
	if h.Len() != 4 {
		t.Fatalf("history len = %d, want 4", h.Len())
	}
	// Non-overlap must carry over: T1's actions are positions 0..0, T2's
	// 1..2, so T1 < T2 in real time.
	if !h.RealTimeRel(ids[1], ids[2]) {
		t.Fatal("schedule non-overlap lost in reduction")
	}
	// T2 reads x from T1.
	if !h.ReadsFromRel(ids[1], ids[2]) {
		t.Fatal("reads-from lost in reduction")
	}
	// T∞ reads final writes: x from T1, y from T2.
	tInf := ids[s.NumTxns+1]
	if src, _ := h.ReadsFromSource(tInf, 0); src != ids[1] {
		t.Fatal("T∞ must read x from T1")
	}
	if src, _ := h.ReadsFromSource(tInf, 1); src != ids[2] {
		t.Fatal("T∞ must read y from T2")
	}
}

func TestToHistoryInternalReads(t *testing.T) {
	reg := object.MustRegistry("x")
	// w1(x) r1(x): the read is internal to T1.
	s := mustSchedule(t, reg, 1, []Action{Wr(1, 0), Rd(1, 0)})
	h, ids, err := s.ToHistory()
	if err != nil {
		t.Fatalf("ToHistory: %v", err)
	}
	if h.MOp(ids[1]).RObjects().Len() != 0 {
		t.Fatal("internal read surfaced as external in reduction")
	}
}

func TestScheduleString(t *testing.T) {
	reg := object.MustRegistry("x", "y")
	s := mustSchedule(t, reg, 2, []Action{Rd(1, 0), Wr(2, 1)})
	if got := s.String(); got != "r1(x) w2(y)" {
		t.Fatalf("String = %q", got)
	}
}

// TestReductionDifferential validates Theorem 2's equivalence on random
// schedules: the reduction-based decision matches a brute-force search
// over all serial orders, for both plain and strict view serializability.
func TestReductionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	yesPlain, yesStrict, total := 0, 0, 0
	for trial := 0; trial < 250; trial++ {
		s := randomSchedule(rng)
		gotPlain, orderPlain, err := s.ViewSerializable()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantPlain := bruteForceVSR(s, false)
		if gotPlain != wantPlain {
			t.Fatalf("trial %d (%s): view serializable: reduction=%v brute=%v",
				trial, s, gotPlain, wantPlain)
		}
		if gotPlain && !isViewEquivalentSerial(s, orderPlain, false) {
			t.Fatalf("trial %d (%s): witness %v invalid", trial, s, orderPlain)
		}

		gotStrict, orderStrict, err := s.StrictViewSerializable()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantStrict := bruteForceVSR(s, true)
		if gotStrict != wantStrict {
			t.Fatalf("trial %d (%s): strict view serializable: reduction=%v brute=%v",
				trial, s, gotStrict, wantStrict)
		}
		if gotStrict && !isViewEquivalentSerial(s, orderStrict, true) {
			t.Fatalf("trial %d (%s): strict witness %v invalid", trial, s, orderStrict)
		}
		if gotStrict && !gotPlain {
			t.Fatalf("trial %d: strict without plain is impossible", trial)
		}
		total++
		if gotPlain {
			yesPlain++
		}
		if gotStrict {
			yesStrict++
		}
	}
	if yesPlain == 0 || yesPlain == total || yesStrict == 0 {
		t.Fatalf("degenerate sampling: plain %d/%d, strict %d/%d", yesPlain, total, yesStrict, total)
	}
}

func randomSchedule(rng *rand.Rand) *Schedule {
	reg := object.Sequential(1 + rng.Intn(2))
	numTxns := 2 + rng.Intn(3)
	var actions []Action
	for t := 1; t <= numTxns; t++ {
		actions = append(actions, Action{Txn: t, Kind: ActionKind(1 + rng.Intn(2)), Obj: object.ID(rng.Intn(reg.Len()))})
	}
	for extra := rng.Intn(4); extra > 0; extra-- {
		actions = append(actions, Action{
			Txn:  1 + rng.Intn(numTxns),
			Kind: ActionKind(1 + rng.Intn(2)),
			Obj:  object.ID(rng.Intn(reg.Len())),
		})
	}
	rng.Shuffle(len(actions), func(i, j int) {
		actions[i], actions[j] = actions[j], actions[i]
	})
	s, err := New(reg, numTxns, actions)
	if err != nil {
		panic(err) // unreachable: construction is valid by design
	}
	return s
}

// bruteForceVSR enumerates all permutations of the transactions.
func bruteForceVSR(s *Schedule, strict bool) bool {
	perm := make([]int, s.NumTxns)
	for i := range perm {
		perm[i] = i + 1
	}
	var try func(k int) bool
	try = func(k int) bool {
		if k == len(perm) {
			return isViewEquivalentSerial(s, perm, strict)
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if try(k + 1) {
				perm[k], perm[i] = perm[i], perm[k]
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	return try(0)
}

// isViewEquivalentSerial checks view equivalence of s against the serial
// execution of its transactions in the given order, optionally requiring
// non-overlapping transactions to keep their schedule order (strictness).
func isViewEquivalentSerial(s *Schedule, order []int, strict bool) bool {
	if len(order) != s.NumTxns {
		return false
	}
	if strict {
		pos := make(map[int]int, len(order))
		for i, t := range order {
			pos[t] = i
		}
		for a := 1; a <= s.NumTxns; a++ {
			for b := 1; b <= s.NumTxns; b++ {
				if a != b && s.NonOverlapping(a, b) && pos[a] > pos[b] {
					return false
				}
			}
		}
	}
	// Build the serial schedule and compare reads-from per read
	// occurrence and final writers.
	var serialActs []Action
	for _, t := range order {
		serialActs = append(serialActs, s.TxnActions(t)...)
	}
	serialSched := &Schedule{Reg: s.Reg, Actions: serialActs, NumTxns: s.NumTxns}

	type readKey struct{ txn, idx int }
	collect := func(sch *Schedule) (map[readKey]int, []int) {
		rf := sch.readsFrom()
		perTxnReadIdx := make(map[int]int)
		out := make(map[readKey]int)
		for i, a := range sch.Actions {
			if a.Kind != ReadAct {
				continue
			}
			k := readKey{a.Txn, perTxnReadIdx[a.Txn]}
			perTxnReadIdx[a.Txn]++
			out[k] = rf[i]
		}
		return out, sch.finalWriters()
	}
	rfA, finA := collect(s)
	rfB, finB := collect(serialSched)
	if len(rfA) != len(rfB) {
		return false
	}
	for k, v := range rfA {
		if rfB[k] != v {
			return false
		}
	}
	for x := range finA {
		if finA[x] != finB[x] {
			return false
		}
	}
	return true
}

func TestSerializeProducesEquivalentSerial(t *testing.T) {
	reg := object.MustRegistry("x")
	s := mustSchedule(t, reg, 3, []Action{
		Rd(1, 0), Wr(2, 0), Wr(1, 0), Wr(3, 0),
	})
	ok, order, err := s.ViewSerializable()
	if err != nil || !ok {
		t.Fatalf("ViewSerializable = %v, %v", ok, err)
	}
	serial, err := s.Serialize(order)
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	if !serial.IsSerial() {
		t.Fatalf("Serialize produced non-serial schedule %s", serial)
	}
	if !isViewEquivalentSerial(s, order, false) {
		t.Fatal("serialization not view equivalent")
	}
	// A serial schedule is trivially conflict serializable in its order.
	if ok, _ := serial.ConflictSerializable(); !ok {
		t.Fatal("serial schedule not conflict serializable")
	}
}

func TestSerializeValidation(t *testing.T) {
	reg := object.MustRegistry("x")
	s := mustSchedule(t, reg, 2, []Action{Rd(1, 0), Wr(2, 0)})
	if _, err := s.Serialize([]int{1}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := s.Serialize([]int{1, 1}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, err := s.Serialize([]int{1, 5}); err == nil {
		t.Fatal("out-of-range order accepted")
	}
}

func TestIsSerial(t *testing.T) {
	reg := object.MustRegistry("x")
	serial := mustSchedule(t, reg, 2, []Action{Rd(1, 0), Wr(1, 0), Rd(2, 0)})
	if !serial.IsSerial() {
		t.Fatal("serial schedule misclassified")
	}
	interleaved := mustSchedule(t, reg, 2, []Action{Rd(1, 0), Rd(2, 0), Wr(1, 0)})
	if interleaved.IsSerial() {
		t.Fatal("interleaved schedule misclassified")
	}
}
