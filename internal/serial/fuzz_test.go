package serial

import (
	"testing"

	"moc/internal/object"
)

// FuzzScheduleDecisions hardens the serializability deciders: arbitrary
// byte strings are interpreted as schedules, and on every schedule the
// deciders must not panic, must satisfy the containments
// strict-VSR ⊆ VSR and CSR ⊆ VSR, and every returned witness must
// actually be a view-equivalent serialization.
func FuzzScheduleDecisions(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{7, 7, 7})
	f.Add([]byte{0x10, 0x21, 0x32, 0x43, 0x54})
	f.Add([]byte{255, 0, 255, 0, 13, 13})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := scheduleFromBytes(data)
		if s == nil {
			return
		}
		okVSR, orderVSR, err := s.ViewSerializable()
		if err != nil {
			t.Fatalf("ViewSerializable: %v", err)
		}
		okStrict, orderStrict, err := s.StrictViewSerializable()
		if err != nil {
			t.Fatalf("StrictViewSerializable: %v", err)
		}
		okCSR, _ := s.ConflictSerializable()

		if okStrict && !okVSR {
			t.Fatalf("schedule %s: strict-VSR without VSR", s)
		}
		if okCSR && !okVSR {
			t.Fatalf("schedule %s: CSR without VSR", s)
		}
		if okVSR && !isViewEquivalentSerial(s, orderVSR, false) {
			t.Fatalf("schedule %s: invalid VSR witness %v", s, orderVSR)
		}
		if okStrict && !isViewEquivalentSerial(s, orderStrict, true) {
			t.Fatalf("schedule %s: invalid strict witness %v", s, orderStrict)
		}
	})
}

// scheduleFromBytes decodes bytes into a small schedule: each byte is
// one action (2 bits entity, 1 bit kind, 2 bits txn). Returns nil when
// the bytes do not form a valid schedule (e.g. some txn absent).
func scheduleFromBytes(data []byte) *Schedule {
	if len(data) == 0 || len(data) > 12 {
		return nil
	}
	reg := object.Sequential(3)
	const numTxns = 3
	actions := make([]Action, 0, len(data))
	for _, b := range data {
		kind := ReadAct
		if b&0x4 != 0 {
			kind = WriteAct
		}
		actions = append(actions, Action{
			Txn:  int(b>>3)%numTxns + 1,
			Kind: kind,
			Obj:  object.ID(b % 3),
		})
	}
	s, err := New(reg, numTxns, actions)
	if err != nil {
		return nil
	}
	return s
}
