// Package serial implements the database-transaction substrate that
// Section 3 of Mittal & Garg (1998) reduces from: schedules of read/write
// actions, view equivalence, (strict) view serializability and conflict
// serializability, plus the schedule→history reduction of Theorem 2.
//
// The paper's observation is that, restricted to one m-operation per
// process, the consistency conditions collapse onto database correctness
// notions: view equivalence ↔ m-sequential consistency, strict view
// equivalence ↔ m-linearizability, conflict equivalence ↔ m-normality
// under the OO-constraint. The reduction here is the constructive half:
// strict view serializability of a schedule is decided by checking
// m-linearizability of the constructed history, which proves the latter
// NP-complete.
package serial

import (
	"errors"
	"fmt"

	"moc/internal/checker"
	"moc/internal/history"
	"moc/internal/object"
)

// ActionKind distinguishes read and write actions.
type ActionKind int

// Action kinds.
const (
	ReadAct ActionKind = iota + 1
	WriteAct
)

// Action is one step of a schedule: transaction Txn reads or writes
// entity Obj.
type Action struct {
	Txn  int // 1-based transaction index
	Kind ActionKind
	Obj  object.ID
}

// Rd constructs a read action.
func Rd(txn int, x object.ID) Action { return Action{Txn: txn, Kind: ReadAct, Obj: x} }

// Wr constructs a write action.
func Wr(txn int, x object.ID) Action { return Action{Txn: txn, Kind: WriteAct, Obj: x} }

// Schedule is an interleaved execution of transactions over a set of
// entities. Actions appear in schedule order; the subsequence of each
// transaction's actions is its program order. Transaction indices are
// 1..NumTxns; index 0 denotes the imaginary initial transaction writing
// every entity (the paper's T0 of the augmented schedule).
type Schedule struct {
	Reg     *object.Registry
	Actions []Action
	NumTxns int
}

// Errors returned by New and ToHistory.
var (
	ErrBadTxnIndex = errors.New("serial: action references invalid transaction")
	ErrBadEntity   = errors.New("serial: action references invalid entity")
	ErrEmptyTxn    = errors.New("serial: transaction has no actions")
	// ErrIncoherentReads marks a schedule in which one transaction reads
	// the same entity from two different writers (with no own write in
	// between) — impossible in any serial execution, hence trivially not
	// view serializable.
	ErrIncoherentReads = errors.New("serial: transaction reads one entity from two writers")
)

// New validates and constructs a schedule over numTxns transactions.
func New(reg *object.Registry, numTxns int, actions []Action) (*Schedule, error) {
	seen := make([]bool, numTxns+1)
	for i, a := range actions {
		if a.Txn < 1 || a.Txn > numTxns {
			return nil, fmt.Errorf("%w: action %d txn %d", ErrBadTxnIndex, i, a.Txn)
		}
		if a.Obj < 0 || int(a.Obj) >= reg.Len() {
			return nil, fmt.Errorf("%w: action %d entity %d", ErrBadEntity, i, int(a.Obj))
		}
		seen[a.Txn] = true
	}
	for t := 1; t <= numTxns; t++ {
		if !seen[t] {
			return nil, fmt.Errorf("%w: T%d", ErrEmptyTxn, t)
		}
	}
	s := &Schedule{Reg: reg, NumTxns: numTxns}
	s.Actions = make([]Action, len(actions))
	copy(s.Actions, actions)
	return s, nil
}

// readsFrom computes, for every read action (by position), the
// transaction it reads from: the writer of the most recent preceding
// write to the same entity, or 0 (the initial transaction).
//
// A read that follows its own transaction's write to the same entity
// reads from its own transaction; such internal reads are recorded as
// (txn, txn) pairs and ignored by equivalence.
func (s *Schedule) readsFrom() []int {
	last := make([]int, s.Reg.Len())
	rf := make([]int, len(s.Actions))
	for i, a := range s.Actions {
		switch a.Kind {
		case ReadAct:
			rf[i] = last[a.Obj]
		case WriteAct:
			last[a.Obj] = a.Txn
			rf[i] = -1
		}
	}
	return rf
}

// finalWriters returns, per entity, the transaction whose write is last
// in the schedule (0 if only the initial transaction wrote it).
func (s *Schedule) finalWriters() []int {
	last := make([]int, s.Reg.Len())
	for _, a := range s.Actions {
		if a.Kind == WriteAct {
			last[a.Obj] = a.Txn
		}
	}
	return last
}

// span returns the schedule positions of each transaction's first and
// last action (indexed 1..NumTxns).
func (s *Schedule) span() (first, last []int) {
	first = make([]int, s.NumTxns+1)
	last = make([]int, s.NumTxns+1)
	for t := range first {
		first[t] = -1
	}
	for i, a := range s.Actions {
		if first[a.Txn] < 0 {
			first[a.Txn] = i
		}
		last[a.Txn] = i
	}
	return first, last
}

// NonOverlapping reports whether Ti finishes before Tj starts in the
// schedule (the paper's non-overlap condition for strictness).
func (s *Schedule) NonOverlapping(ti, tj int) bool {
	first, last := s.span()
	return last[ti] < first[tj]
}

// TxnActions returns transaction t's actions in program order.
func (s *Schedule) TxnActions(t int) []Action {
	var out []Action
	for _, a := range s.Actions {
		if a.Txn == t {
			out = append(out, a)
		}
	}
	return out
}

// String renders the schedule as "r1(x) w2(y) ...".
func (s *Schedule) String() string {
	out := ""
	for i, a := range s.Actions {
		if i > 0 {
			out += " "
		}
		k := "r"
		if a.Kind == WriteAct {
			k = "w"
		}
		out += fmt.Sprintf("%s%d(%s)", k, a.Txn, s.Reg.Name(a.Obj))
	}
	return out
}

// ToHistory performs the Theorem 2 construction: a distributed system
// with one process per transaction, each executing a single m-operation
// whose operations mirror the transaction's actions in order. The first
// and last actions of a transaction define the invocation and response
// events, so two transactions are non-overlapping in the schedule iff
// the corresponding m-operations are non-overlapping in the history.
//
// The history is implicitly augmented: history.InitID plays T0 (writing
// every entity), and a final all-reading m-operation plays T∞, pinning
// the final writes so that view equivalence coincides with legality. The
// returned map sends transaction indices (0 and 1..NumTxns) to
// m-operation IDs; the T∞ m-operation is the last ID.
//
// Write values are synthesized as unique integers per (txn, entity) so
// that the reads-from relation of the history is exactly the schedule's.
func (s *Schedule) ToHistory() (*history.History, map[int]history.ID, error) {
	b := history.NewBuilder(s.Reg)
	first, last := s.span()
	rf := s.readsFrom()

	// Value synthesized for transaction t's write to entity x.
	val := func(t int, x object.ID) object.Value {
		if t == 0 {
			return object.Initial
		}
		return object.Value(t)*object.Value(s.Reg.Len()) + object.Value(x) + 1
	}

	ids := make(map[int]history.ID, s.NumTxns+2)
	ids[0] = history.InitID
	type rfEdge struct {
		x   object.ID
		src int
	}
	rfEdges := make(map[int][]rfEdge)

	for t := 1; t <= s.NumTxns; t++ {
		var ops []history.Op
		ownWrites := make(map[object.ID]bool)
		extSrc := make(map[object.ID]int)
		for i, a := range s.Actions {
			if a.Txn != t {
				continue
			}
			switch a.Kind {
			case ReadAct:
				src := rf[i]
				if ownWrites[a.Obj] && src != t {
					// The transaction wrote the entity, yet the schedule
					// interleaved another writer before this read. A
					// serial execution would return the own write, so no
					// serialization can reproduce this read.
					return nil, nil, fmt.Errorf("%w: T%d entity %s reads T%d after own write",
						ErrIncoherentReads, t, s.Reg.Name(a.Obj), src)
				}
				if src == t {
					// Internal read: reads own write; mirror the value.
					ops = append(ops, history.R(a.Obj, val(t, a.Obj)))
				} else {
					if prev, seen := extSrc[a.Obj]; seen && prev != src {
						return nil, nil, fmt.Errorf("%w: T%d entity %s reads T%d then T%d",
							ErrIncoherentReads, t, s.Reg.Name(a.Obj), prev, src)
					}
					extSrc[a.Obj] = src
					ops = append(ops, history.R(a.Obj, val(src, a.Obj)))
					rfEdges[t] = append(rfEdges[t], rfEdge{a.Obj, src})
				}
			case WriteAct:
				ownWrites[a.Obj] = true
				ops = append(ops, history.W(a.Obj, val(t, a.Obj)))
			}
		}
		id := b.Add(t, int64(first[t]), int64(last[t]), ops...)
		ids[t] = id
	}

	// T∞: reads the final write of every entity, after everything.
	finals := s.finalWriters()
	var finalOps []history.Op
	for x := 0; x < s.Reg.Len(); x++ {
		finalOps = append(finalOps, history.R(object.ID(x), val(finals[x], object.ID(x))))
	}
	tInfTime := int64(len(s.Actions)) + 1
	tInf := b.Add(s.NumTxns+1, tInfTime, tInfTime+1, finalOps...)
	ids[s.NumTxns+1] = tInf

	for t, edges := range rfEdges {
		for _, e := range edges {
			b.SetReadsFrom(ids[t], e.x, ids[e.src])
		}
	}
	for x := 0; x < s.Reg.Len(); x++ {
		b.SetReadsFrom(tInf, object.ID(x), ids[finals[x]])
	}

	h, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("serial: reduction: %w", err)
	}
	return h, ids, nil
}

// ViewSerializable reports whether the schedule is view equivalent to
// some serial schedule, by deciding m-sequential consistency of the
// reduction (each process holds one m-operation, so process order is
// empty and admissibility w.r.t. reads-from alone is exactly view
// serializability of the augmented schedule). NP-complete.
func (s *Schedule) ViewSerializable() (bool, []int, error) {
	h, ids, err := s.ToHistory()
	if errors.Is(err, ErrIncoherentReads) {
		return false, nil, nil
	}
	if err != nil {
		return false, nil, err
	}
	res, err := checker.Decide(h, history.MSequentialBase, &checker.Options{
		ExtraOrder: s.finalLastOrder(h, ids),
	})
	if err != nil {
		return false, nil, err
	}
	if !res.Admissible {
		return false, nil, nil
	}
	return true, witnessToTxnOrder(res.Witness, ids, s.NumTxns), nil
}

// StrictViewSerializable reports whether the schedule is view equivalent
// to a serial schedule preserving the order of non-overlapping
// transactions, by deciding m-linearizability of the reduction
// (Theorem 2). NP-complete.
func (s *Schedule) StrictViewSerializable() (bool, []int, error) {
	h, ids, err := s.ToHistory()
	if errors.Is(err, ErrIncoherentReads) {
		return false, nil, nil
	}
	if err != nil {
		return false, nil, err
	}
	// Real time already places T∞ after everything; the explicit order is
	// still supplied for uniformity with the m-SC case.
	res, err := checker.Decide(h, history.MLinearizableBase, &checker.Options{
		ExtraOrder: s.finalLastOrder(h, ids),
	})
	if err != nil {
		return false, nil, err
	}
	if !res.Admissible {
		return false, nil, nil
	}
	return true, witnessToTxnOrder(res.Witness, ids, s.NumTxns), nil
}

// finalLastOrder builds the ordering that pins the augmentation: T∞
// after every transaction. Without it, an unread blind write could be
// sequenced after T∞, defeating the final-write comparison of view
// equivalence.
func (s *Schedule) finalLastOrder(h *history.History, ids map[int]history.ID) *history.Relation {
	extra := history.NewRelation(h.Len())
	tInf := ids[s.NumTxns+1]
	for t := 1; t <= s.NumTxns; t++ {
		extra.Add(ids[t], tInf)
	}
	return extra
}

func witnessToTxnOrder(w history.Sequence, ids map[int]history.ID, numTxns int) []int {
	back := make(map[history.ID]int, len(ids))
	for t, id := range ids {
		back[id] = t
	}
	var order []int
	for _, id := range w {
		if t, ok := back[id]; ok && t >= 1 && t <= numTxns {
			order = append(order, t)
		}
	}
	return order
}

// ConflictSerializable reports whether the schedule's conflict graph
// (Ti → Tj iff some action of Ti conflicts with and precedes some action
// of Tj) is acyclic — the polynomial sufficient condition classical
// concurrency control enforces. Conflict serializability implies view
// serializability, not conversely (blind writes).
func (s *Schedule) ConflictSerializable() (bool, []int) {
	g := history.NewRelation(s.NumTxns + 1)
	for i, a := range s.Actions {
		for _, b := range s.Actions[i+1:] {
			if a.Txn == b.Txn || a.Obj != b.Obj {
				continue
			}
			if a.Kind == WriteAct || b.Kind == WriteAct {
				g.Add(history.ID(a.Txn), history.ID(b.Txn))
			}
		}
	}
	order, ok := g.TopoOrder()
	if !ok {
		return false, nil
	}
	var txns []int
	for _, id := range order {
		if id >= 1 {
			txns = append(txns, int(id))
		}
	}
	return true, txns
}

// Serialize materializes the serial schedule executing the transactions
// in the given order (each transaction's actions contiguous, in program
// order). Combined with the order returned by ViewSerializable /
// StrictViewSerializable this produces an equivalent serial execution.
func (s *Schedule) Serialize(order []int) (*Schedule, error) {
	if len(order) != s.NumTxns {
		return nil, fmt.Errorf("serial: order has %d transactions, schedule has %d", len(order), s.NumTxns)
	}
	seen := make(map[int]bool, len(order))
	var actions []Action
	for _, t := range order {
		if t < 1 || t > s.NumTxns || seen[t] {
			return nil, fmt.Errorf("serial: order is not a permutation (transaction %d)", t)
		}
		seen[t] = true
		actions = append(actions, s.TxnActions(t)...)
	}
	return New(s.Reg, s.NumTxns, actions)
}

// IsSerial reports whether the schedule is serial: every transaction's
// actions are contiguous.
func (s *Schedule) IsSerial() bool {
	last := -1
	done := make(map[int]bool, s.NumTxns)
	for _, a := range s.Actions {
		if a.Txn != last {
			if done[a.Txn] {
				return false
			}
			if last > 0 {
				done[last] = true
			}
			last = a.Txn
		}
	}
	return true
}
