// Package shard partitions the object space into independently
// sequenced shards and composes their per-shard total orders into one
// global order sound for the paper's §4 constraints.
//
// The theory hook: Theorem 7 only needs a total order per *conflicting*
// object set (the OO-constraint), not one global sequencer. Objects are
// partitioned by a static modular map; every m-operation whose
// footprint stays inside one shard rides that shard's atomic-broadcast
// lane untouched, and cross-shard m-operations are merged into the
// involved lanes with a two-phase ticket/commit (Skeen-style) keyed on
// (shard set, per-shard ticket sequence), so any two conflicting
// updates — which necessarily share an object, hence a shard — are
// ordered by that shard's schedule. Gotsman & Burckhardt's composition
// of global operation sequencing is the blueprint for arguing the
// stitched order is globally m-SC/m-lin admissible (see DESIGN.md §11).
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"moc/internal/object"
)

// Map is the static object→shard partition: object x lives on shard
// x mod K. It is pure routing metadata — deterministic, panic-free for
// any input (hostile object IDs from the wire are clamped by modular
// reduction), and cheap enough to sit on every dispatch path.
type Map struct {
	objects int
	shards  int
}

// NewMap builds the modular partition of an objects-sized space into
// shards lanes. Every shard must own at least one object, so the lane
// fan-out never exceeds the object count.
func NewMap(objects, shards int) (*Map, error) {
	if objects < 1 {
		return nil, fmt.Errorf("shard: need at least one object, got %d", objects)
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", shards)
	}
	if shards > objects {
		return nil, fmt.Errorf("shard: %d shards over %d objects leaves empty shards", shards, objects)
	}
	return &Map{objects: objects, shards: shards}, nil
}

// Shards is the number of shards (lanes).
func (m *Map) Shards() int { return m.shards }

// Objects is the size of the object space the map was built for.
func (m *Map) Objects() int { return m.objects }

// Of routes one object ID to its shard. Total and panic-free: IDs
// outside [0, objects) — including negative ones from hostile input —
// reduce modularly into a valid shard, so routing can run before
// validation without becoming a crash vector.
func (m *Map) Of(x object.ID) int {
	s := int(x) % m.shards
	if s < 0 {
		s += m.shards
	}
	return s
}

// ShardsOf maps a footprint to its sorted, duplicate-free shard set.
// The empty footprint routes to shard 0 (a no-op m-operation still
// needs a home lane so its delivery is totally ordered somewhere).
func (m *Map) ShardsOf(ids []object.ID) []int {
	if len(ids) == 0 {
		return []int{0}
	}
	seen := make([]bool, m.shards)
	out := make([]int, 0, len(ids))
	for _, x := range ids {
		s := m.Of(x)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// Spec renders the partition as a string ("mod:K/N") for trace headers
// and cross-node agreement checks: two maps compose only if their specs
// are equal.
func (m *Map) Spec() string {
	return "mod:" + strconv.Itoa(m.shards) + "/" + strconv.Itoa(m.objects)
}

// ParseSpec inverts Spec.
func ParseSpec(spec string) (*Map, error) {
	rest, ok := strings.CutPrefix(spec, "mod:")
	if !ok {
		return nil, fmt.Errorf("shard: unknown map spec %q", spec)
	}
	k, n, ok := strings.Cut(rest, "/")
	if !ok {
		return nil, fmt.Errorf("shard: malformed map spec %q", spec)
	}
	shards, err := strconv.Atoi(k)
	if err != nil {
		return nil, fmt.Errorf("shard: malformed map spec %q: %v", spec, err)
	}
	objects, err := strconv.Atoi(n)
	if err != nil {
		return nil, fmt.Errorf("shard: malformed map spec %q: %v", spec, err)
	}
	return NewMap(objects, shards)
}
