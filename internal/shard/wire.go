package shard

import "moc/internal/wire"

func init() {
	wire.Register(wire.TagShardTicket, Ticket{})
	wire.Register(wire.TagShardCommit, Commit{})
}

// MarshalWire implements wire.Marshaler. The nested payload rides as an
// `any` slot, like BatchMsg items.
func (m Ticket) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, m.ID)
	b = wire.AppendVarint(b, int64(m.From))
	b = wire.AppendUvarint(b, uint64(len(m.Shards)))
	for _, s := range m.Shards {
		b = wire.AppendVarint(b, int64(s))
	}
	var err error
	if b, err = wire.AppendAny(b, m.Payload); err != nil {
		return nil, err
	}
	b = wire.AppendVarint(b, int64(m.Bytes))
	return b, nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *Ticket) UnmarshalWire(d *wire.Decoder) error {
	m.ID = d.Varint()
	m.From = d.Int()
	n := d.ArrayLen(1)
	if d.Err() != nil {
		return d.Err()
	}
	if n > 0 {
		m.Shards = make([]int, n)
		for i := range m.Shards {
			m.Shards[i] = d.Int()
		}
	}
	m.Payload = d.Any()
	m.Bytes = d.Int()
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (m Commit) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, m.ID)
	b = wire.AppendVarint(b, m.Final)
	return b, nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *Commit) UnmarshalWire(d *wire.Decoder) error {
	m.ID = d.Varint()
	m.Final = d.Varint()
	return d.Err()
}
