package shard

import (
	"errors"
	"fmt"
	"sync"

	"moc/internal/abcast"
	"moc/internal/network"
	"moc/internal/object"
)

// Router is what the group needs from a broadcast payload in order to
// route it: the footprint of the m-operation it carries. The msc and
// mlin update payloads implement it. Payloads without a footprint route
// to shard 0.
type Router interface {
	RoutingFootprint() []object.ID
}

// GroupConfig parameterizes NewGroup.
type GroupConfig struct {
	// Procs is the number of processes (replicas).
	Procs int
	// Map is the object→shard partition.
	Map *Map
	// Lanes are the per-shard atomic broadcasters, len == Map.Shards().
	// The group owns them: Close closes every lane.
	Lanes []abcast.Broadcaster
}

// Group composes per-shard atomic-broadcast lanes into one Broadcaster
// whose delivery order satisfies the §4 OO-constraint without a global
// sequencer:
//
//   - A single-shard m-operation is broadcast on its shard's lane and
//     emitted the moment that lane delivers it.
//
//   - A cross-shard m-operation runs a Skeen-style two-phase merge: a
//     Ticket is broadcast on every involved lane; each replica stamps
//     the ticket with that lane's local ticket clock; when the issuer's
//     replica holds tickets from all involved lanes it commits the
//     maximum as the final rank and broadcasts a Commit on every
//     involved lane. Within a lane, a committed operation is scheduled
//     only once no pending ticket could still rank below it — the
//     classic Skeen hold-back — so each lane schedules its cross
//     operations in ascending (final, id) order, which is one global
//     total order: no two lanes ever disagree on the relative order of
//     two cross operations, and the apply barrier cannot cycle. The
//     operation is emitted when it heads every involved lane's schedule
//     at this replica. Single-shard operations arriving behind a
//     scheduled-but-unapplied operation are held in that lane's queue
//     and flushed when it applies; a pump never blocks, so commits
//     queued behind a barrier are always processed — parking the lane
//     instead is a deadlock (two cross operations sharing two lanes,
//     with their Commits arriving in opposite orders on the two lanes,
//     would park each lane at a different op and neither commit that
//     resolves the ranks would ever be drained).
//
//   - Process order across lanes is preserved by session anchoring:
//     each process's next update is promoted to include the shard of
//     its previous operation (and the shards its queries observed), so
//     consecutive operations of one process always share a lane slot
//     chain. Without this, two single-shard updates by one process on
//     different shards could apply in opposite orders at another
//     replica — an m-SC violation.
//
// Emitted Seq numbers are composite: apply-clock × shardCount + lowest
// involved shard. They are globally unique and strictly increasing
// along every shard's schedule, but not gap-free or monotone per
// replica stream; Delivery.Shards marks them as sharded.
type Group struct {
	procs int
	m     *Map
	lanes []abcast.Broadcaster
	outs  []chan abcast.Delivery
	reps  []*replica

	anchMu  sync.Mutex
	anchors [][]int // per process: shards its next update must follow

	idMu   sync.Mutex
	nextID int64

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Ticket is phase one of the cross-shard merge: it carries the
// operation's payload to every involved lane, where each replica ranks
// it with the lane's local ticket clock.
type Ticket struct {
	// ID is the globally unique cross-operation id (issuer-scoped
	// counter × procs + issuer).
	ID int64
	// From is the issuing process.
	From int
	// Shards is the sorted involved shard set.
	Shards []int
	// Payload is the wrapped broadcast payload.
	Payload any
	// Bytes is the accounted wire size of the wrapped payload.
	Bytes int
}

// Commit is phase two: the issuer's replica, having seen the ticket on
// every involved lane, fixes the operation's final rank (the maximum of
// the per-lane ticket clocks) and announces it on every involved lane.
type Commit struct {
	ID    int64
	Final int64
}

// crossOp is one in-flight cross-shard operation at one replica.
type crossOp struct {
	id      int64
	from    int
	shards  []int
	payload any
	bytes   int

	lts       map[int]int64 // per-lane local ticket clock values
	final     int64         // rank from Commit; valid once committed in any lane
	committed map[int]bool  // lanes whose Commit this replica has processed
	sent      bool          // issuer-side: Commit already broadcast
}

// schedEntry is one slot of a lane's schedule: either a cross operation
// whose lane rank is fixed (co != nil) or a held-back single-shard
// delivery that arrived behind one (single).
type schedEntry struct {
	co     *crossOp
	single abcast.Delivery
}

// replica is one process's merge state across all lanes.
type replica struct {
	mu sync.Mutex

	tclock   []int64 // per-shard ticket clocks (Skeen phase 1)
	seqClock []int64 // per-shard apply clocks (composite Seq)
	cross    map[int64]*crossOp
	pend     [][]*crossOp   // per shard: ticketed, rank not yet fixed
	sched    [][]schedEntry // per shard: scheduled, not yet emitted (FIFO)
}

// NewGroup builds the composed broadcaster over cfg.Lanes and starts
// one pump goroutine per (replica, lane).
func NewGroup(cfg GroupConfig) (*Group, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("shard: need at least one process, got %d", cfg.Procs)
	}
	if cfg.Map == nil {
		return nil, errors.New("shard: nil map")
	}
	if len(cfg.Lanes) != cfg.Map.Shards() {
		return nil, fmt.Errorf("shard: %d lanes for %d shards", len(cfg.Lanes), cfg.Map.Shards())
	}
	k := cfg.Map.Shards()
	g := &Group{
		procs:   cfg.Procs,
		m:       cfg.Map,
		lanes:   cfg.Lanes,
		outs:    make([]chan abcast.Delivery, cfg.Procs),
		reps:    make([]*replica, cfg.Procs),
		anchors: make([][]int, cfg.Procs),
		stop:    make(chan struct{}),
	}
	for p := 0; p < cfg.Procs; p++ {
		g.outs[p] = make(chan abcast.Delivery, 1024)
		g.reps[p] = &replica{
			tclock:   make([]int64, k),
			seqClock: make([]int64, k),
			cross:    make(map[int64]*crossOp),
			pend:     make([][]*crossOp, k),
			sched:    make([][]schedEntry, k),
		}
	}
	for p := 0; p < cfg.Procs; p++ {
		for s := 0; s < k; s++ {
			g.wg.Add(1)
			go g.pump(p, s)
		}
	}
	return g, nil
}

// Broadcast routes by the payload's footprint: the involved shard set
// is the footprint's shards unioned with the process's session anchor;
// one shard rides its lane directly, several run the ticket/commit
// merge. The anchor then compresses to the lowest involved shard —
// following this operation in any one of its lanes orders after it, and
// transitively after everything it was anchored on.
func (g *Group) Broadcast(from int, payload any, bytes int) error {
	if from < 0 || from >= g.procs {
		return fmt.Errorf("shard: process %d out of range", from)
	}
	var fp []object.ID
	if rt, ok := payload.(Router); ok {
		fp = rt.RoutingFootprint()
	}
	shards := g.m.ShardsOf(fp)

	g.anchMu.Lock()
	involved := unionSorted(shards, g.anchors[from])
	g.anchors[from] = involved[:1:1]
	g.anchMu.Unlock()

	if len(involved) == 1 {
		return g.lanes[involved[0]].Broadcast(from, payload, bytes)
	}

	g.idMu.Lock()
	g.nextID++
	id := g.nextID*int64(g.procs) + int64(from)
	g.idMu.Unlock()
	t := Ticket{ID: id, From: from, Shards: involved, Payload: payload, Bytes: bytes}
	for _, s := range involved {
		if err := g.lanes[s].Broadcast(from, t, bytes+ticketOverhead(len(involved))); err != nil {
			return err
		}
	}
	return nil
}

// TouchQuery records that a query by proc observed the given footprint:
// the process's next update must be ordered after the observed per-shard
// prefixes, so those shards join its anchor. Queries have no schedule
// slot of their own, so the anchor accumulates until the next update
// compresses it.
func (g *Group) TouchQuery(proc int, fp []object.ID) {
	if proc < 0 || proc >= g.procs {
		return
	}
	shards := g.m.ShardsOf(fp)
	g.anchMu.Lock()
	g.anchors[proc] = unionSorted(shards, g.anchors[proc])
	g.anchMu.Unlock()
}

// Deliveries returns process p's composed delivery stream.
func (g *Group) Deliveries(p int) <-chan abcast.Delivery { return g.outs[p] }

// MessageCost sums the lanes' traffic counters.
func (g *Group) MessageCost() (int64, int64) {
	var msgs, bytes int64
	for _, l := range g.lanes {
		m, b := l.MessageCost()
		msgs += m
		bytes += b
	}
	return msgs, bytes
}

// NetStats sums the lanes' transport counters.
func (g *Group) NetStats() network.Stats {
	var out network.Stats
	for _, l := range g.lanes {
		st := l.NetStats()
		out.Messages += st.Messages
		out.Bytes += st.Bytes
		out.Dropped += st.Dropped
		out.Duplicated += st.Duplicated
		out.Retransmitted += st.Retransmitted
		out.Throttled += st.Throttled
		out.Crashes += st.Crashes
		out.Restarts += st.Restarts
		out.Reconnects += st.Reconnects
	}
	return out
}

// Close shuts every lane down and waits for the pump goroutines before
// closing the delivery streams.
func (g *Group) Close() {
	g.closeOnce.Do(func() {
		close(g.stop)
		for _, l := range g.lanes {
			l.Close()
		}
		g.wg.Wait()
		for _, out := range g.outs {
			close(out)
		}
	})
}

// pump drains lane s's deliveries for replica r into the merge.
func (g *Group) pump(r, s int) {
	defer g.wg.Done()
	ch := g.lanes[s].Deliveries(r)
	st := g.reps[r]
	for {
		var d abcast.Delivery
		var ok bool
		select {
		case <-g.stop:
			return
		case d, ok = <-ch:
			if !ok {
				return
			}
		}
		st.mu.Lock()
		switch m := d.Payload.(type) {
		case Ticket:
			co := st.ensure(m.ID)
			if co.payload == nil {
				co.from, co.shards, co.payload, co.bytes = m.From, m.Shards, m.Payload, m.Bytes
			}
			st.tclock[s]++
			co.lts[s] = st.tclock[s]
			st.pend[s] = append(st.pend[s], co)
			if r == co.from && !co.sent && len(co.lts) == len(co.shards) {
				// This replica is the issuer's and has now ranked the op
				// in every involved lane: fix the final rank and announce
				// it. Broadcast outside the mutex (lane submission may
				// block) and exactly once.
				co.sent = true
				var final int64
				for _, t := range co.lts {
					if t > final {
						final = t
					}
				}
				g.wg.Add(1)
				go g.sendCommit(co.from, co.shards, Commit{ID: co.id, Final: final})
			}
		case Commit:
			co := st.ensure(m.ID)
			co.final = m.Final
			co.committed[s] = true
			// Lamport-style clock merge: later tickets in this lane must
			// rank above every committed final, or a new ticket could
			// slot under an already-committed op.
			if m.Final > st.tclock[s] {
				st.tclock[s] = m.Final
			}
		default:
			// Single-shard operation. If nothing is scheduled ahead of it
			// in this lane, it emits at the lane's next apply slot; behind
			// a scheduled-but-unapplied cross operation it is held back —
			// the cross op's lane rank is already fixed, so the single is
			// ordered after it at every replica.
			if len(st.sched[s]) == 0 {
				st.seqClock[s]++
				g.emitLocked(st, r, abcast.Delivery{
					Seq:     st.seqClock[s]*int64(g.m.shards) + int64(s),
					From:    d.From,
					Payload: d.Payload,
					Shards:  []int{s},
				})
			} else {
				st.sched[s] = append(st.sched[s], schedEntry{single: d})
			}
		}
		st.scheduleLocked(s)
		g.advanceLocked(st, r)
		st.mu.Unlock()
	}
}

// scheduleLocked moves shard s's eligible cross operations from pending
// to the lane schedule, in rank order: an op is eligible once its Commit
// has arrived in this lane AND no other pending ticket could still rank
// below it (Skeen's hold-back — an uncommitted ticket's final rank is
// at least its local stamp, so only a committed op that is minimal under
// (rank, id) over the whole pending set has its lane position fixed).
// Both the stamps and the commit arrivals are functions of lane s's own
// delivery prefix, so every replica schedules the lane identically; and
// because a ticket arriving after a Commit is stamped above its final
// rank, the per-lane schedule order of cross ops is ascending
// (final, id) — one global order shared by all lanes.
func (st *replica) scheduleLocked(s int) {
	for {
		co := st.minPending(s)
		if co == nil || !co.committed[s] {
			return
		}
		st.pend[s] = removeOp(st.pend[s], co)
		st.sched[s] = append(st.sched[s], schedEntry{co: co})
	}
}

// minPending returns the minimum-(rank, id) pending cross op of shard s,
// or nil. The rank of an op in lane s is final once s's Commit arrived
// and the local ticket stamp before.
func (st *replica) minPending(s int) *crossOp {
	var best *crossOp
	var bestRank, bestID int64
	for _, co := range st.pend[s] {
		rank, id := st.rank(s, co)
		if best == nil || rank < bestRank || (rank == bestRank && id < bestID) {
			best, bestRank, bestID = co, rank, id
		}
	}
	return best
}

func (st *replica) rank(s int, co *crossOp) (int64, int64) {
	if co.committed[s] {
		return co.final, co.id
	}
	return co.lts[s], co.id
}

// advanceLocked drains every lane schedule as far as it will go: held
// singles at a lane's front emit immediately, and a cross operation
// emits the moment it heads the schedule of every lane it involves.
// Lane schedules agree on the relative order of cross operations (one
// ascending (final, id) order), so the barrier can never cycle; the
// globally minimal unapplied cross op always eventually clears. The
// scan restarts after any progress because an apply pops entries from
// several lanes at once.
func (g *Group) advanceLocked(st *replica, r int) {
	for progress := true; progress; {
		progress = false
		for s := range st.sched {
			for len(st.sched[s]) > 0 {
				e := st.sched[s][0]
				if e.co == nil {
					st.sched[s] = st.sched[s][1:]
					st.seqClock[s]++
					g.emitLocked(st, r, abcast.Delivery{
						Seq:     st.seqClock[s]*int64(g.m.shards) + int64(s),
						From:    e.single.From,
						Payload: e.single.Payload,
						Shards:  []int{s},
					})
					progress = true
					continue
				}
				if !st.headsAllLanes(e.co) {
					break
				}
				g.applyCrossLocked(st, r, e.co)
				progress = true
			}
		}
	}
}

// headsAllLanes reports whether co is at the front of every involved
// lane's schedule at this replica.
func (st *replica) headsAllLanes(co *crossOp) bool {
	for _, u := range co.shards {
		if len(st.sched[u]) == 0 || st.sched[u][0].co != co {
			return false
		}
	}
	return true
}

// applyCrossLocked emits co as one merged delivery and pops it from the
// front of every involved shard's schedule. The composite apply clock
// is max over the involved shards plus one, written back to each, so
// the emitted Seq is strictly above everything already applied in any
// involved shard. Eligibility required co's Ticket and Commit on every
// involved lane, so no further messages for this id can arrive and the
// map entry is dropped.
func (g *Group) applyCrossLocked(st *replica, r int, co *crossOp) {
	var a int64
	for _, u := range co.shards {
		if st.seqClock[u] > a {
			a = st.seqClock[u]
		}
	}
	a++
	for _, u := range co.shards {
		st.seqClock[u] = a
		st.sched[u] = st.sched[u][1:]
	}
	delete(st.cross, co.id)
	g.emitLocked(st, r, abcast.Delivery{
		Seq:     a*int64(g.m.shards) + int64(co.shards[0]),
		From:    co.from,
		Payload: co.payload,
		Shards:  append([]int(nil), co.shards...),
	})
}

func (g *Group) emitLocked(st *replica, r int, d abcast.Delivery) {
	select {
	case g.outs[r] <- d:
	case <-g.stop:
	}
}

func (g *Group) sendCommit(from int, shards []int, c Commit) {
	defer g.wg.Done()
	for _, s := range shards {
		if err := g.lanes[s].Broadcast(from, c, commitBytes); err != nil {
			return
		}
	}
}

func (st *replica) ensure(id int64) *crossOp {
	co, ok := st.cross[id]
	if !ok {
		co = &crossOp{
			id:        id,
			final:     -1,
			lts:       make(map[int]int64),
			committed: make(map[int]bool),
		}
		st.cross[id] = co
	}
	return co
}

func removeOp(pend []*crossOp, co *crossOp) []*crossOp {
	for i, c := range pend {
		if c == co {
			return append(pend[:i], pend[i+1:]...)
		}
	}
	return pend
}

// unionSorted merges two sorted duplicate-free int slices.
func unionSorted(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Wire-size accounting for the merge control traffic.
const commitBytes = 16

func ticketOverhead(shards int) int { return 24 + 8*shards }
