package shard

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"moc/internal/abcast"
	"moc/internal/network"
	"moc/internal/object"
)

// memLane is a loss-free in-memory atomic broadcaster: one mutex, one
// sequence counter, synchronous fan-out. It gives every replica the
// identical per-lane total order the real broadcasters guarantee, so
// group tests exercise the merge, not the transport.
type memLane struct {
	mu     sync.Mutex
	seq    int64
	outs   []chan abcast.Delivery
	closed bool
}

func newMemLane(n int) *memLane {
	l := &memLane{outs: make([]chan abcast.Delivery, n)}
	for i := range l.outs {
		l.outs[i] = make(chan abcast.Delivery, 1<<16)
	}
	return l
}

func (l *memLane) Broadcast(from int, payload any, bytes int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return abcast.ErrClosed
	}
	d := abcast.Delivery{Seq: l.seq, From: from, Payload: payload}
	l.seq++
	for _, ch := range l.outs {
		ch <- d
	}
	return nil
}

func (l *memLane) Deliveries(p int) <-chan abcast.Delivery { return l.outs[p] }
func (l *memLane) MessageCost() (int64, int64)             { return l.seq, 0 }
func (l *memLane) NetStats() network.Stats                 { return network.Stats{Messages: l.seq} }

func (l *memLane) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for _, ch := range l.outs {
		close(ch)
	}
}

// testPayload is a routable broadcast payload.
type testPayload struct {
	ID int
	Fp []object.ID
}

func (p testPayload) RoutingFootprint() []object.ID { return p.Fp }

func newTestGroup(t *testing.T, procs, objects, shards int) *Group {
	t.Helper()
	m, err := NewMap(objects, shards)
	if err != nil {
		t.Fatal(err)
	}
	lanes := make([]abcast.Broadcaster, shards)
	for s := range lanes {
		lanes[s] = newMemLane(procs)
	}
	g, err := NewGroup(GroupConfig{Procs: procs, Map: m, Lanes: lanes})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// collect drains n deliveries per replica.
func collect(t *testing.T, g *Group, procs, n int) [][]abcast.Delivery {
	t.Helper()
	out := make([][]abcast.Delivery, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				select {
				case d := <-g.Deliveries(p):
					out[p] = append(out[p], d)
				case <-time.After(10 * time.Second):
					t.Errorf("replica %d: timed out after %d deliveries", p, i)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	return out
}

// checkComposed asserts the invariants of a composed delivery set: Seqs
// globally unique and consistent across replicas per payload, per-shard
// projections identical at every replica, and Seq strictly increasing
// along each shard's schedule.
func checkComposed(t *testing.T, got [][]abcast.Delivery, shards int) {
	t.Helper()
	for p, ds := range got {
		seen := make(map[int64]int)
		last := make([]int64, shards)
		for i, d := range ds {
			if d.Shards == nil {
				t.Fatalf("replica %d delivery %d: nil Shards from a sharded group", p, i)
			}
			id := d.Payload.(testPayload).ID
			if prev, dup := seen[d.Seq]; dup {
				t.Fatalf("replica %d: payloads %d and %d share Seq %d", p, prev, id, d.Seq)
			}
			seen[d.Seq] = id
			for _, s := range d.Shards {
				if d.Seq <= last[s] && last[s] != 0 {
					t.Fatalf("replica %d: shard %d Seq regressed %d -> %d", p, s, last[s], d.Seq)
				}
				last[s] = d.Seq
			}
		}
	}
	// Per-shard projections agree across replicas, and each payload got
	// the same Seq everywhere.
	project := func(ds []abcast.Delivery, s int) []int {
		var ids []int
		for _, d := range ds {
			for _, u := range d.Shards {
				if u == s {
					ids = append(ids, d.Payload.(testPayload).ID)
				}
			}
		}
		return ids
	}
	seqOf := make(map[int]int64)
	for _, d := range got[0] {
		seqOf[d.Payload.(testPayload).ID] = d.Seq
	}
	for p := 1; p < len(got); p++ {
		for s := 0; s < shards; s++ {
			if a, b := project(got[0], s), project(got[p], s); !reflect.DeepEqual(a, b) {
				t.Fatalf("shard %d schedule differs between replicas 0 and %d:\n %v\n %v", s, p, a, b)
			}
		}
		for _, d := range got[p] {
			if want := seqOf[d.Payload.(testPayload).ID]; d.Seq != want {
				t.Fatalf("replica %d: payload %d Seq %d, replica 0 had %d",
					p, d.Payload.(testPayload).ID, d.Seq, want)
			}
		}
	}
}

func TestGroupSingleShardOrder(t *testing.T) {
	const procs, objects, shards, ops = 3, 12, 4, 200
	g := newTestGroup(t, procs, objects, shards)
	defer g.Close()

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < ops; i++ {
		x := object.ID(rng.Intn(objects))
		from := rng.Intn(procs)
		// Reset the issuer's anchor to the op's own shard so every op
		// stays single-shard — this test isolates the fast path.
		g.anchMu.Lock()
		g.anchors[from] = nil
		g.anchMu.Unlock()
		if err := g.Broadcast(from, testPayload{ID: i, Fp: []object.ID{x}}, 8); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, g, procs, ops)
	checkComposed(t, got, shards)
	for p, ds := range got {
		for _, d := range ds {
			if len(d.Shards) != 1 {
				t.Fatalf("replica %d: single-shard op delivered with shards %v", p, d.Shards)
			}
			if int(d.Seq)%shards != d.Shards[0] {
				t.Fatalf("replica %d: composite Seq %d not congruent to shard %d", p, d.Seq, d.Shards[0])
			}
		}
	}
}

func TestGroupCrossShardMerge(t *testing.T) {
	const procs, objects, shards = 3, 12, 4
	g := newTestGroup(t, procs, objects, shards)
	defer g.Close()

	rng := rand.New(rand.NewSource(7))
	var wg sync.WaitGroup
	const perProc = 80
	for from := 0; from < procs; from++ {
		seed := rng.Int63()
		wg.Add(1)
		go func(from int, seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perProc; i++ {
				var fp []object.ID
				for len(fp) == 0 {
					for x := 0; x < objects; x++ {
						if r.Intn(objects) < 2 {
							fp = append(fp, object.ID(x))
						}
					}
				}
				id := from*perProc + i
				if err := g.Broadcast(from, testPayload{ID: id, Fp: fp}, 8); err != nil {
					t.Errorf("broadcast %d: %v", id, err)
					return
				}
			}
		}(from, seed)
	}
	wg.Wait()
	got := collect(t, g, procs, procs*perProc)
	checkComposed(t, got, shards)
}

func TestGroupSessionAnchorPreservesProcessOrder(t *testing.T) {
	const procs, objects, shards = 2, 8, 4
	for trial := 0; trial < 20; trial++ {
		g := newTestGroup(t, procs, objects, shards)
		// U1 on shard 1, then U2 on shard 2: without anchoring these ride
		// independent lanes and may apply in either order at replica 1.
		// Promotion must deliver U2 as a cross op covering shard 1.
		if err := g.Broadcast(0, testPayload{ID: 1, Fp: []object.ID{1}}, 8); err != nil {
			t.Fatal(err)
		}
		if err := g.Broadcast(0, testPayload{ID: 2, Fp: []object.ID{2}}, 8); err != nil {
			t.Fatal(err)
		}
		got := collect(t, g, procs, 2)
		for p, ds := range got {
			if a, b := ds[0].Payload.(testPayload).ID, ds[1].Payload.(testPayload).ID; a != 1 || b != 2 {
				t.Fatalf("trial %d replica %d: process order inverted: got %d then %d", trial, p, a, b)
			}
			if want := []int{1, 2}; !reflect.DeepEqual(ds[1].Shards, want) {
				t.Fatalf("trial %d replica %d: U2 not promoted: shards %v, want %v", trial, p, ds[1].Shards, want)
			}
		}
		g.Close()
	}
}

func TestGroupTouchQueryAnchors(t *testing.T) {
	const procs, objects, shards = 2, 8, 4
	g := newTestGroup(t, procs, objects, shards)
	defer g.Close()

	// A query observing shards 1 and 3 forces the next update (shard 0)
	// to be ordered after the observed prefixes: it must go out as a
	// cross op over {0, 1, 3}.
	g.TouchQuery(0, []object.ID{1, 3})
	if err := g.Broadcast(0, testPayload{ID: 1, Fp: []object.ID{0}}, 8); err != nil {
		t.Fatal(err)
	}
	got := collect(t, g, procs, 1)
	for p, ds := range got {
		if want := []int{0, 1, 3}; !reflect.DeepEqual(ds[0].Shards, want) {
			t.Fatalf("replica %d: shards %v, want %v", p, ds[0].Shards, want)
		}
	}
}

func TestGroupBroadcastValidation(t *testing.T) {
	g := newTestGroup(t, 2, 8, 2)
	defer g.Close()
	if err := g.Broadcast(-1, testPayload{ID: 1, Fp: []object.ID{0}}, 8); err == nil {
		t.Error("negative proc accepted")
	}
	if err := g.Broadcast(2, testPayload{ID: 1, Fp: []object.ID{0}}, 8); err == nil {
		t.Error("out-of-range proc accepted")
	}
}

func TestUnionSorted(t *testing.T) {
	cases := []struct{ a, b, want []int }{
		{[]int{1}, nil, []int{1}},
		{[]int{1}, []int{1}, []int{1}},
		{[]int{0, 2}, []int{1}, []int{0, 1, 2}},
		{[]int{3}, []int{0, 3, 5}, []int{0, 3, 5}},
	}
	for _, c := range cases {
		if got := unionSorted(c.a, c.b); !reflect.DeepEqual(got, c.want) {
			t.Errorf("unionSorted(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestGroupCloseIdempotent(t *testing.T) {
	g := newTestGroup(t, 2, 4, 2)
	g.Close()
	g.Close()
	if err := g.Broadcast(0, testPayload{ID: 1, Fp: []object.ID{0}}, 8); err == nil {
		t.Error("broadcast after close accepted")
	}
}
