package shard

import (
	"encoding/binary"
	"reflect"
	"testing"

	"moc/internal/object"
)

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(0, 1); err == nil {
		t.Error("NewMap(0,1) accepted")
	}
	if _, err := NewMap(8, 0); err == nil {
		t.Error("NewMap(8,0) accepted")
	}
	if _, err := NewMap(2, 4); err == nil {
		t.Error("NewMap(2,4) accepted: shards would be empty")
	}
	m, err := NewMap(8, 4)
	if err != nil {
		t.Fatalf("NewMap(8,4): %v", err)
	}
	if m.Shards() != 4 || m.Objects() != 8 {
		t.Fatalf("got %d shards / %d objects", m.Shards(), m.Objects())
	}
}

func TestMapOf(t *testing.T) {
	m, _ := NewMap(10, 3)
	for x := 0; x < 10; x++ {
		if got, want := m.Of(object.ID(x)), x%3; got != want {
			t.Errorf("Of(%d) = %d, want %d", x, got, want)
		}
	}
	// Hostile inputs reduce modularly instead of panicking.
	for _, x := range []object.ID{-1, -3, -1000, 10, 99999} {
		s := m.Of(x)
		if s < 0 || s >= 3 {
			t.Errorf("Of(%d) = %d out of range", x, s)
		}
	}
	if m.Of(-1) != 2 || m.Of(-3) != 0 {
		t.Errorf("negative reduction wrong: Of(-1)=%d Of(-3)=%d", m.Of(-1), m.Of(-3))
	}
}

func TestShardsOf(t *testing.T) {
	m, _ := NewMap(12, 4)
	cases := []struct {
		ids  []object.ID
		want []int
	}{
		{nil, []int{0}},
		{[]object.ID{5}, []int{1}},
		{[]object.ID{5, 5, 5}, []int{1}},
		{[]object.ID{7, 2, 4, 0}, []int{0, 2, 3}},
		{[]object.ID{-1, 13}, []int{1, 3}},
	}
	for _, c := range cases {
		if got := m.ShardsOf(c.ids); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ShardsOf(%v) = %v, want %v", c.ids, got, c.want)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	m, _ := NewMap(64, 8)
	got, err := ParseSpec(m.Spec())
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", m.Spec(), err)
	}
	if got.Shards() != 8 || got.Objects() != 64 {
		t.Fatalf("round trip gave %s", got.Spec())
	}
	for _, bad := range []string{"", "mod:", "mod:4", "mod:x/8", "mod:4/y", "hash:4/8", "mod:0/8", "mod:9/8"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// FuzzRouting is the shard-router fuzz target: arbitrary footprints —
// empty, duplicated, negative, and out-of-range object IDs — must route
// deterministically, without panics, to a sorted duplicate-free in-range
// shard set consistent with the per-object map.
func FuzzRouting(f *testing.F) {
	f.Add(uint8(1), uint8(1), []byte{})
	f.Add(uint8(4), uint8(16), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(3), uint8(10), []byte{255, 255, 255, 255, 255, 255, 255, 255, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(8), uint8(8), []byte{7, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 200, 1, 2, 3})
	f.Fuzz(func(t *testing.T, shards, objects uint8, raw []byte) {
		k := int(shards%16) + 1
		n := k + int(objects)
		m, err := NewMap(n, k)
		if err != nil {
			t.Fatalf("NewMap(%d,%d): %v", n, k, err)
		}
		// Raw bytes become signed IDs, 8 bytes at a time — the tail
		// contributes a short chunk so truncated inputs still route.
		var ids []object.ID
		for i := 0; i < len(raw); i += 8 {
			end := i + 8
			var chunk [8]byte
			if end > len(raw) {
				end = len(raw)
			}
			copy(chunk[:], raw[i:end])
			ids = append(ids, object.ID(int64(binary.LittleEndian.Uint64(chunk[:]))))
		}

		got := m.ShardsOf(ids)
		if again := m.ShardsOf(ids); !reflect.DeepEqual(got, again) {
			t.Fatalf("routing not deterministic: %v then %v", got, again)
		}
		if len(got) == 0 {
			t.Fatal("empty shard set")
		}
		for i, s := range got {
			if s < 0 || s >= k {
				t.Fatalf("shard %d out of range [0,%d)", s, k)
			}
			if i > 0 && got[i-1] >= s {
				t.Fatalf("shard set not sorted/unique: %v", got)
			}
		}
		// Membership agrees with the per-object map in both directions.
		want := map[int]bool{}
		if len(ids) == 0 {
			want[0] = true
		}
		for _, x := range ids {
			s := m.Of(x)
			if s < 0 || s >= k {
				t.Fatalf("Of(%d) = %d out of range", int(x), s)
			}
			want[s] = true
		}
		if len(want) != len(got) {
			t.Fatalf("shard set %v does not match per-object map %v", got, want)
		}
		for _, s := range got {
			if !want[s] {
				t.Fatalf("shard %d in set but no id routes there", s)
			}
		}
	})
}
