package mlin_test

// Leveled-query tests: per-request consistency levels against the
// Figure 6 protocol, including a peer killed mid-query. These live in
// an external test package so the recorded executions can be rebuilt
// into histories (internal/core) and validated with the composed
// leveled checker (internal/checker) without an import cycle.

import (
	"sync"
	"testing"
	"time"

	"moc/internal/abcast"
	"moc/internal/checker"
	"moc/internal/core"
	"moc/internal/history"
	"moc/internal/mlin"
	"moc/internal/mop"
	"moc/internal/network"
	"moc/internal/object"
)

// recordLog collects the records of one test execution for rebuilding.
type recordLog struct {
	mu   sync.Mutex
	recs []mop.Record
}

func (l *recordLog) add(rec mop.Record) {
	l.mu.Lock()
	l.recs = append(l.recs, rec)
	l.mu.Unlock()
}

func (l *recordLog) all() []mop.Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]mop.Record(nil), l.recs...)
}

// mustMixedConsistent rebuilds the history and runs the leveled checker.
func mustMixedConsistent(t *testing.T, reg *object.Registry, recs []mop.Record) {
	t.Helper()
	h, _, err := core.BuildHistory(reg, recs)
	if err != nil {
		t.Fatalf("BuildHistory: %v", err)
	}
	res, err := checker.MixedLevels(h)
	if err != nil {
		t.Fatalf("MixedLevels: %v", err)
	}
	if !res.Full.Admissible {
		t.Fatal("mixed-level history is not m-sequentially consistent")
	}
	if !res.Consistent {
		t.Fatal("strong subset of the mixed-level history is not m-linearizable")
	}
}

// TestQuorumCompletesWithPeerKilledMidQuery kills one peer's query
// endpoint while a stream of QUORUM queries is in flight — once the
// sequencer's process, once a plain peer — and requires every query to
// complete with a certified majority, fresh values, and a merged
// history the leveled checker accepts. ALL queries after the kill can
// only force-complete partially, and must be certified down honestly.
func TestQuorumCompletesWithPeerKilledMidQuery(t *testing.T) {
	for _, tc := range []struct {
		name   string
		victim int
	}{
		{"sequencer-peer", 0},
		{"plain-peer", 2},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			const (
				procs  = 3
				issuer = 1
				killAt = 60 * time.Millisecond
			)
			reg := object.Sequential(4)
			b, err := abcast.NewSequencer(abcast.SequencerConfig{
				Procs: procs, Seed: 42, MaxDelay: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("NewSequencer: %v", err)
			}
			p, err := mlin.New(mlin.Config{
				Procs: procs, Reg: reg, Broadcast: b,
				Seed: 7, MaxDelay: 2 * time.Millisecond,
				QueryTimeout: 150 * time.Millisecond, QueryRetries: 1,
				Faults: &network.Faults{Crashes: []network.Crash{{Proc: tc.victim, At: killAt}}},
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer p.Close()

			log := &recordLog{}
			// Seed every object, then wait until every replica applied the
			// updates: the kill only severs the victim's query endpoint
			// (the broadcast plane is a separate network), so from here on
			// every response any replica ever gives is fresh — the merged
			// history stays m-linearizable no matter which majority answers.
			for x := 0; x < reg.Len(); x++ {
				rec, err := p.Exec(issuer, mop.WriteOp{X: object.ID(x), V: object.Value(100 + x)}, mop.ExecOptions{})
				if err != nil {
					t.Fatalf("seed write %d: %v", x, err)
				}
				log.add(rec)
			}
			deadline := time.Now().Add(5 * time.Second)
			for q := 0; q < procs; q++ {
				for {
					ts := p.LocalTS(q)
					done := true
					for x := 0; x < reg.Len(); x++ {
						if ts.Get(object.ID(x)) < 1 {
							done = false
						}
					}
					if done {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("replica %d never applied the seed updates", q)
					}
					time.Sleep(time.Millisecond)
				}
			}

			// QUORUM queries straddling the kill: before, during, after.
			start := time.Now()
			for i := 0; time.Since(start) < killAt*2; i++ {
				rec, err := p.Exec(issuer, mop.MultiRead{Xs: []object.ID{0, 1, 2, 3}},
					mop.ExecOptions{Level: history.LevelQuorum})
				if err != nil {
					t.Fatalf("quorum query %d: %v", i, err)
				}
				if rec.Level != history.LevelQuorum || !rec.IsConsistent {
					t.Fatalf("quorum query %d certified (%s, %v), want (quorum, true)",
						i, rec.Level, rec.IsConsistent)
				}
				if len(rec.Responders) < 2 {
					t.Fatalf("quorum query %d had responders %v, want a majority", i, rec.Responders)
				}
				vals := rec.Result.([]object.Value)
				for x, v := range vals {
					if v != object.Value(100+x) {
						t.Fatalf("quorum query %d read x%d = %d, want %d", i, x, v, 100+x)
					}
				}
				log.add(rec)
				time.Sleep(5 * time.Millisecond)
			}

			// After the kill an ALL query cannot gather every process: it
			// force-completes at the timeout and must certify itself down
			// to the majority it actually got.
			rec, err := p.Exec(issuer, mop.ReadOp{X: 0}, mop.ExecOptions{Level: history.LevelAll})
			if err != nil {
				t.Fatalf("all query after kill: %v", err)
			}
			if rec.Level != history.LevelQuorum || rec.IsConsistent {
				t.Fatalf("all query after kill certified (%s, %v), want (quorum, false)",
					rec.Level, rec.IsConsistent)
			}
			for _, q := range rec.Responders {
				if q == tc.victim {
					t.Fatalf("dead peer %d listed among responders %v", tc.victim, rec.Responders)
				}
			}
			log.add(rec)

			// A ONE read still serves locally, instantly.
			rec, err = p.Exec(issuer, mop.ReadOp{X: 1}, mop.ExecOptions{Level: history.LevelOne})
			if err != nil {
				t.Fatalf("one query after kill: %v", err)
			}
			if rec.Level != history.LevelOne || !rec.IsConsistent {
				t.Fatalf("one query certified (%s, %v), want (one, true)", rec.Level, rec.IsConsistent)
			}
			log.add(rec)

			mustMixedConsistent(t, reg, log.all())
		})
	}
}

// TestOneLevelHistoryPassesMSC runs a concurrent multi-writer workload
// whose queries all use ONE and checks the recorded history against
// exact m-sequential consistency — the guarantee ONE degrades to.
func TestOneLevelHistoryPassesMSC(t *testing.T) {
	t.Parallel()
	const procs = 3
	reg := object.Sequential(2)
	b, err := abcast.NewSequencer(abcast.SequencerConfig{
		Procs: procs, Seed: 5, MaxDelay: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewSequencer: %v", err)
	}
	p, err := mlin.New(mlin.Config{
		Procs: procs, Reg: reg, Broadcast: b,
		Seed: 9, MaxDelay: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	log := &recordLog{}
	var wg sync.WaitGroup
	errCh := make(chan error, procs)
	for proc := 0; proc < procs; proc++ {
		proc := proc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				rec, err := p.Exec(proc, mop.WriteOp{
					X: object.ID(i % reg.Len()), V: object.Value(1 + proc*100 + i),
				}, mop.ExecOptions{})
				if err != nil {
					errCh <- err
					return
				}
				log.add(rec)
				rec, err = p.Exec(proc, mop.MultiRead{Xs: []object.ID{0, 1}},
					mop.ExecOptions{Level: history.LevelOne})
				if err != nil {
					errCh <- err
					return
				}
				if rec.Level != history.LevelOne {
					errCh <- err
					return
				}
				log.add(rec)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("workload: %v", err)
	default:
	}

	h, _, err := core.BuildHistory(reg, log.all())
	if err != nil {
		t.Fatalf("BuildHistory: %v", err)
	}
	res, err := checker.MSequentiallyConsistent(h)
	if err != nil {
		t.Fatalf("MSequentiallyConsistent: %v", err)
	}
	if !res.Admissible {
		t.Fatal("ONE-level history is not m-sequentially consistent")
	}
	// The composed checker agrees: the strong subset here is the updates
	// alone, which the broadcast totally orders.
	mixed, err := checker.MixedLevels(h)
	if err != nil {
		t.Fatalf("MixedLevels: %v", err)
	}
	if !mixed.Consistent {
		t.Fatal("update-only strong subset is not m-linearizable")
	}
}

// TestSessionFloorKeepsMixedReadsMonotonic interleaves strong and ONE
// reads at one process while another writes a monotonically increasing
// counter: a ONE read issued after a strong read must never observe an
// older value — the session floor at work. Without it the full history
// would not be m-sequentially consistent.
func TestSessionFloorKeepsMixedReadsMonotonic(t *testing.T) {
	t.Parallel()
	const procs = 3
	reg := object.Sequential(1)
	b, err := abcast.NewSequencer(abcast.SequencerConfig{
		Procs: procs, Seed: 21, MaxDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewSequencer: %v", err)
	}
	p, err := mlin.New(mlin.Config{
		Procs: procs, Reg: reg, Broadcast: b,
		Seed: 23, MaxDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	log := &recordLog{}
	stop := make(chan struct{})
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := object.Value(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			rec, err := p.Exec(0, mop.WriteOp{X: 0, V: v}, mop.ExecOptions{})
			if err != nil {
				writerErr = err
				return
			}
			log.add(rec)
		}
	}()

	for i := 0; i < 40; i++ {
		strong, err := p.Exec(1, mop.ReadOp{X: 0}, mop.ExecOptions{Level: history.LevelQuorum})
		if err != nil {
			t.Fatalf("strong read %d: %v", i, err)
		}
		log.add(strong)
		weak, err := p.Exec(1, mop.ReadOp{X: 0}, mop.ExecOptions{Level: history.LevelOne})
		if err != nil {
			t.Fatalf("one read %d: %v", i, err)
		}
		log.add(weak)
		if weak.Result.(object.Value) < strong.Result.(object.Value) {
			t.Fatalf("session floor breached: strong read saw %d, later ONE read saw %d",
				strong.Result.(object.Value), weak.Result.(object.Value))
		}
	}
	close(stop)
	wg.Wait()
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}

	mustMixedConsistent(t, reg, log.all())
}
