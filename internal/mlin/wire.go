package mlin

import (
	"fmt"

	"moc/internal/mop"
	"moc/internal/object"
	"moc/internal/wire"
)

// Update and query payloads cross the broadcast and query channels,
// which may be real serializing transports (internal/transport);
// register them with the wire registry under their stable tags (the
// registry also performs the gob registration for the `-codec=gob`
// fallback).
func init() {
	wire.Register(wire.TagMLinUpdate, updatePayload{})
	wire.Register(wire.TagMLinQueryMsg, queryMsg{})
	wire.Register(wire.TagMLinQueryResp, queryResp{})
	wire.Register(wire.TagMLinApplyAck, applyAck{})
}

// appendIDs / decodeIDs encode an []object.ID preserving nil-ness: a
// nil Objs slice means "send everything" (Figure 6 verbatim), so nil
// and empty must survive the round trip distinctly.
func appendIDs(b []byte, ids []object.ID) []byte {
	if ids == nil {
		return wire.AppendUvarint(b, 0)
	}
	b = wire.AppendUvarint(b, 1)
	b = wire.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = wire.AppendVarint(b, int64(id))
	}
	return b
}

func decodeIDs(d *wire.Decoder) []object.ID {
	if d.Uvarint() == 0 || d.Err() != nil {
		return nil
	}
	n := d.ArrayLen(1)
	out := make([]object.ID, n)
	for i := range out {
		out[i] = object.ID(d.Varint())
	}
	return out
}

// MarshalWire implements wire.Marshaler.
func (m updatePayload) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, m.ReqID)
	b = wire.AppendVarint(b, int64(m.From))
	return wire.AppendAny(b, m.Proc)
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *updatePayload) UnmarshalWire(d *wire.Decoder) error {
	m.ReqID = d.Varint()
	m.From = d.Int()
	v := d.Any()
	if err := d.Err(); err != nil {
		return err
	}
	pr, ok := v.(mop.Procedure)
	if !ok {
		return fmt.Errorf("mlin: wire payload procedure slot holds %T", v)
	}
	m.Proc = pr
	return nil
}

// MarshalWire implements wire.Marshaler.
func (m queryMsg) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, m.ReqID)
	return appendIDs(b, m.Objs), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *queryMsg) UnmarshalWire(d *wire.Decoder) error {
	m.ReqID = d.Varint()
	m.Objs = decodeIDs(d)
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (m applyAck) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, m.ReqID)
	return wire.AppendVarint(b, int64(m.From)), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *applyAck) UnmarshalWire(d *wire.Decoder) error {
	m.ReqID = d.Varint()
	m.From = d.Int()
	return d.Err()
}

// MarshalWire implements wire.Marshaler.
func (m queryResp) MarshalWire(b []byte) ([]byte, error) {
	b = wire.AppendVarint(b, m.ReqID)
	b = appendIDs(b, m.Objs)
	b = wire.AppendInt64s(b, m.Values)
	b = wire.AppendInt64s(b, m.TS)
	return wire.AppendInt64s(b, m.Applied), nil
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *queryResp) UnmarshalWire(d *wire.Decoder) error {
	m.ReqID = d.Varint()
	m.Objs = decodeIDs(d)
	m.Values = d.Int64s()
	m.TS = d.Int64s()
	m.Applied = d.Int64s()
	return d.Err()
}
