package mlin

import "moc/internal/wire"

// Update and query payloads cross the broadcast and query channels,
// which may be real serializing transports (internal/transport);
// register them with the wire registry (which performs the gob
// registration).
func init() {
	wire.Register(updatePayload{})
	wire.Register(queryMsg{})
	wire.Register(queryResp{})
}
