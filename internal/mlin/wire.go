package mlin

import "encoding/gob"

// Update and query payloads cross the broadcast and query channels,
// which may be real serializing transports (internal/transport);
// register them with gob.
func init() {
	gob.Register(updatePayload{})
	gob.Register(queryMsg{})
	gob.Register(queryResp{})
}
