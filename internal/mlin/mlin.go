// Package mlin implements the m-linearizability protocol of Figure 6 of
// Mittal & Garg (1998) for fully asynchronous systems — no clock
// synchronization or message-delay bound is assumed:
//
//	(A1) an update m-operation is atomically broadcast to all processes;
//	(A2) on delivery, each process applies it to its local copy (myX,
//	     myts), bumping written objects' versions; the issuer responds;
//	(A3) a query m-operation sends a "query" message to all processes;
//	(A4) on receiving a "query", a process replies with its local copy
//	     and timestamps;
//	(A5) the issuer merges responses, keeping the most recent version of
//	     every object (othX, othts);
//	(A6) once all processes have responded, the query reads the merged
//	     copy and responds.
//
// The query round-trip is what upgrades m-sequential consistency to
// m-linearizability (Theorem 20): a query can no longer miss an update
// whose response preceded the query's invocation in real time, because
// at least the updating process itself answers with the new version.
//
// The closing remark of Section 5.2 — "the protocol is still correct if
// only the relevant copies of the shared objects and their timestamp is
// sent" — is implemented as the RelevantOnly option and measured by
// experiment E9.
//
// # Consistency levels
//
// Exec takes a per-request consistency level that tunes step A6's
// completion rule (DESIGN.md §9):
//
//   - history.LevelAll (and LevelDefault) is Figure 6 verbatim: wait
//     for all Procs responses.
//   - history.LevelQuorum completes once a majority ⌈(n+1)/2⌉ has
//     answered (the SC-ABD read rule), so one slow or crashed peer no
//     longer sets the query latency floor.
//   - history.LevelOne skips the query round entirely and reads the
//     issuer's local copy — the Figure 4 (m-SC) query rule.
//
// QUORUM reads are only m-linearizable if updates carry a matching
// write phase: Figure 6 completes an update at the issuer's own apply,
// which is sound when every query solicits every process (the issuer
// itself always answers) but not when a majority suffices — a read
// majority avoiding the issuer could miss a completed update. So, as in
// SC-ABD, every replica acknowledges each apply back to the update's
// issuer, and the update responds only once a majority (the issuer's
// apply included) has acknowledged. Any read majority then intersects
// the write majority, and the componentwise-max merge of snapshots of
// prefixes of one total order recovers the longest prefix — no
// completed update can be missed at QUORUM or ALL. The write phase
// costs n-1 small acks per update on the query network and defers the
// update's response to one extra one-way delay past the second-fastest
// replica's apply; it does not delay the applies themselves, which the
// broadcast drives independently.
//
// The write phase alone is not enough: a read can also observe an
// update that is applied somewhere but not yet majority-applied (its
// write phase still in flight), and a later majority read could then
// miss it — the classic new/old inversion that makes quorum reads
// without a write-back non-linearizable (ABD's reason for its
// read-side write-back round). Strong queries therefore finish with a
// read barrier: after merging, the query computes the total-order
// prefix its snapshot covers and responds only once a majority of
// replicas is known to have applied that prefix — evidence comes from
// the responses' advertised applied counts, the issuer's own applies,
// and, when still short, idempotent re-probes of the lagging replicas
// (the same query message; only the advertised applied count is
// consumed). This is the ReadIndex rule: nothing is written back
// because the prefix is already in the broadcast order and reaches
// every replica anyway — the barrier just waits for that to be
// *known*, so any later strong read's majority intersects a majority
// holding the prefix. A query whose barrier cannot be confirmed within
// the retry budget is certified LevelOne (IsConsistent=false): it may
// have read an unstable prefix and only the m-SC guarantee is claimed.
//
// Two mechanisms keep mixed-level histories coherent. First, every
// completed query folds the issuer's own replica into the merged copy,
// so no query — however few peers answered — ever reads state older
// than its issuer's. Second, each process keeps a session floor: the
// largest total-order prefix any of its completed queries has observed
// (responses advertise their replica's applied count). A later query at
// the same process waits until it covers that floor — locally applied
// updates for ONE, max(responses, local) for QUORUM/ALL — which
// restores per-process monotonicity when strong and weak reads
// interleave; without it, a ONE read issued after a fresh QUORUM read
// could observe an older local replica and the merged history would not
// even be m-sequentially consistent.
package mlin

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"moc/internal/abcast"
	"moc/internal/history"
	"moc/internal/mop"
	"moc/internal/network"
	"moc/internal/object"
	"moc/internal/recovery"
	"moc/internal/timestamp"
)

// Config parameterizes the protocol.
type Config struct {
	// Procs is the number of processes.
	Procs int
	// Reg is the shared-object registry.
	Reg *object.Registry
	// Broadcast is the atomic broadcast service for updates; the
	// protocol takes ownership and closes it.
	Broadcast abcast.Broadcaster
	// Seed, MinDelay and MaxDelay parameterize the query network.
	Seed               int64
	MinDelay, MaxDelay time.Duration
	// Faults optionally injects delivery faults into the query network
	// (the broadcaster's faults are configured on the broadcaster).
	Faults *network.Faults
	// RelevantOnly, when true, restricts query responses to the query's
	// footprint (Section 5.2's final optimization); otherwise whole
	// copies are shipped, exactly as in Figure 6.
	RelevantOnly bool
	// QueryTimeout bounds how long a query waits for its response set.
	// Zero keeps Figure 6's unbounded wait. With a bound, the query
	// re-solicits the missing processes up to QueryRetries times and
	// then completes with the responses gathered — safe under
	// crash-stop because every update is applied at all live processes,
	// so any response set that includes one live process per relevant
	// update (the issuer's replica is always folded in) carries the
	// freshest versions; see DESIGN.md.
	QueryTimeout time.Duration
	// QueryRetries is the number of re-solicitations before a bounded
	// query completes partially. Ignored when QueryTimeout is zero.
	QueryRetries int
	// Links optionally supplies the query-network transport (channel name
	// "mlin.query"); nil uses the simulated network stack.
	Links network.Factory
	// Clock returns nanoseconds since the run origin; must be monotonic.
	Clock func() int64
	// Shards is the number of broadcast lanes of a sharded Broadcast
	// group (internal/shard); 0 or 1 means a single total order. With
	// K > 1 every applied-prefix quantity in the protocol — the replica
	// applied counts, the session floor, response advertisements, and
	// the read barrier — becomes a per-shard vector of length K, with
	// componentwise dominance replacing scalar comparison: per-shard
	// schedules are deterministic across replicas, so per-shard counts
	// are cross-replica comparable exactly like the scalar was.
	Shards int
}

// Protocol is a running instance of the Figure 6 protocol.
type Protocol struct {
	cfg    Config
	qnet   network.Link
	states []*procState
	stop   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
	nextID atomic.Int64
}

type procState struct {
	mu      sync.Mutex
	values  []object.Value // myX
	ts      timestamp.TS   // myts
	pendUpd map[int64]*pendingUpdate
	pendQry map[int64]*queryState
	// applied counts, per shard, the schedule-order updates reflected in
	// values/ts (length 1 without sharding, where entry 0 is the
	// classic scalar: a recovery checkpoint advances it past a crash
	// outage and the delivery loop skips redelivered updates below it).
	applied []int64
	// floor is the session floor: the largest applied prefix (per
	// shard) any completed query of this process has observed. Later
	// queries wait until they cover it componentwise (see the package
	// comment), so a weak read issued after a strong one can never
	// travel backwards in any shard's schedule. cond (on mu) is
	// broadcast whenever applied advances.
	floor []int64
	cond  *sync.Cond
}

type queryState struct {
	othX  []object.Value
	othts timestamp.TS
	// need is the number of responses that completes the query (Procs
	// for ALL, a majority for QUORUM); waiting counts down from it.
	need    int
	waiting int
	// responded marks which processes have been merged into othX/othts,
	// so the duplicate responses that re-solicitation provokes are
	// merged (and counted) at most once per process — and so the
	// completed query can report exactly which replicas it observed.
	responded []bool
	// respApplied is the componentwise-largest applied vector advertised
	// by any merged response: the per-shard prefix the merged copy is
	// known to cover (each component came from a response whose values
	// reflect at least that shard prefix, and the per-object max merge
	// preserves coverage per shard).
	respApplied []int64
	done        chan struct{}

	// Read-barrier state (the SC-ABD write-back analogue; see the
	// package comment). appliedBy[r] is the componentwise-largest
	// applied vector replica r has ever advertised for this query (nil
	// until heard from) — unlike the merge, it keeps absorbing
	// duplicate and post-completion responses, since barrier re-probes
	// exist precisely to refresh it. barrier, once non-nil, is the
	// covered prefix the merged copy reflects; barrierCh closes when a
	// majority of replicas is known to have applied it.
	appliedBy   [][]int64
	barrier     []int64
	barrierDone bool
	barrierCh   chan struct{}
}

// noteEvidence closes barrierCh once a majority of replicas is known to
// have applied the barrier prefix (componentwise dominance). Callers
// hold the proc's state mutex.
func (qs *queryState) noteEvidence(quorum int) {
	if qs.barrier == nil || qs.barrierDone {
		return
	}
	n := 0
	for _, a := range qs.appliedBy {
		if dominates(a, qs.barrier) {
			n++
		}
	}
	if n >= quorum {
		qs.barrierDone = true
		close(qs.barrierCh)
	}
}

// noteApplied absorbs one replica's advertised applied vector into the
// barrier evidence. Vectors of the wrong length (a peer running a
// different shard map) are ignored rather than trusted.
func (qs *queryState) noteApplied(r int, applied []int64, shards int) {
	if len(applied) != shards {
		return
	}
	if qs.appliedBy[r] == nil {
		qs.appliedBy[r] = append([]int64(nil), applied...)
		return
	}
	maxInto(qs.appliedBy[r], applied)
}

// dominates reports a >= b componentwise; a nil vector dominates
// nothing (and an empty barrier nothing needs).
func dominates(a, b []int64) bool {
	if a == nil || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// maxInto folds src into dst componentwise (equal lengths).
func maxInto(dst, src []int64) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// The wire payload types below carry exported fields so a serializing
// transport (internal/transport's gob codec) can marshal them.

type updatePayload struct {
	ReqID int64
	From  int
	Proc  mop.Procedure
}

// RoutingFootprint lets a sharded broadcast group (internal/shard)
// route the update to the lanes its footprint touches.
func (m updatePayload) RoutingFootprint() []object.ID { return m.Proc.Footprint().IDs() }

// queryToucher is implemented by sharded broadcast groups: queries have
// no broadcast of their own, but a query that observes a shard's state
// still orders the session after that shard's applied prefix, so the
// group must anchor the process's next update behind it.
type queryToucher interface {
	TouchQuery(proc int, fp []object.ID)
}

// pendingUpdate tracks one in-flight update from issuance (A1) through
// the write quorum: the completion channel, the invocation timestamp
// captured at submit time, and the write-phase state — the outcome of
// the issuer's own apply (A2) plus the set of replicas known to have
// applied the update. The update responds only once a majority has
// (the SC-ABD write rule); see the package comment.
type pendingUpdate struct {
	done chan mop.Outcome
	inv  int64
	// rec/applyErr hold the issuer-apply outcome until the ack count
	// reaches a majority; applied marks that they are set.
	rec      mop.Record
	applyErr error
	applied  bool
	// ackFrom marks replicas whose apply of this update is known (the
	// issuer's own apply counts), so duplicate acks are counted once.
	ackFrom []bool
	acks    int
}

type queryMsg struct {
	ReqID int64
	Objs  []object.ID // nil means "send everything" (Figure 6 verbatim)
}

// applyAck is the write-phase acknowledgement (SC-ABD's write round):
// process From has applied — or holds a checkpoint subsuming — the
// update the issuer submitted as ReqID. The issuer completes the update
// once a majority of replicas (its own apply included) has acknowledged,
// which is what entitles QUORUM queries to m-linearizability: any read
// majority intersects the write majority, so at least one responder's
// snapshot carries the update.
type applyAck struct {
	ReqID int64
	From  int
}

type queryResp struct {
	ReqID  int64
	Objs   []object.ID // objects covered (all, in whole-copy mode)
	Values []object.Value
	TS     []int64
	// Applied is the responder's per-shard applied update counts at
	// snapshot time: the schedule prefix its copy reflects (length 1
	// without sharding). The issuer folds the componentwise max over
	// merged responses into its session floor.
	Applied []int64
}

// ErrClosed is returned by Exec after Close.
var ErrClosed = errors.New("mlin: protocol closed")

// New starts the protocol: a delivery loop (A2) and a message loop
// (A4/A5/A6 plumbing) per process.
func New(cfg Config) (*Protocol, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("mlin: invalid proc count %d", cfg.Procs)
	}
	if cfg.Reg == nil || cfg.Broadcast == nil {
		return nil, errors.New("mlin: registry and broadcaster are required")
	}
	if cfg.Clock == nil {
		origin := time.Now()
		cfg.Clock = func() int64 { return time.Since(origin).Nanoseconds() }
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("mlin: invalid shard count %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	qnet, err := cfg.Links.Build("mlin.query", network.Config{
		Procs:    cfg.Procs,
		Seed:     cfg.Seed,
		MinDelay: cfg.MinDelay,
		MaxDelay: cfg.MaxDelay,
		Faults:   cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		cfg:    cfg,
		qnet:   qnet,
		states: make([]*procState, cfg.Procs),
		stop:   make(chan struct{}),
	}
	for i := range p.states {
		st := &procState{
			values:  make([]object.Value, cfg.Reg.Len()),
			ts:      timestamp.New(cfg.Reg.Len()),
			pendUpd: make(map[int64]*pendingUpdate),
			pendQry: make(map[int64]*queryState),
			applied: make([]int64, cfg.Shards),
			floor:   make([]int64, cfg.Shards),
		}
		st.cond = sync.NewCond(&st.mu)
		p.states[i] = st
	}
	for i := 0; i < cfg.Procs; i++ {
		p.wg.Add(1)
		go p.deliveryLoop(i)
		p.wg.Add(1)
		go p.messageLoop(i)
	}
	return p, nil
}

// quorum is the majority responder count ⌈(n+1)/2⌉.
func (p *Protocol) quorum() int { return p.cfg.Procs/2 + 1 }

// need returns the responder count that completes a query at the given
// level (the level has already been validated).
func (p *Protocol) need(level history.Level) int {
	if level == history.LevelQuorum {
		return p.quorum()
	}
	return p.cfg.Procs
}

// Exec runs procedure pr as an m-operation of process proc and blocks
// until the response event. Updates ignore opts.Level: they always flow
// through the atomic broadcast. Queries complete per opts.Level — ONE
// reads the local copy, QUORUM waits for a majority, ALL (and the zero
// level) for every process. Each sequential thread of control
// corresponds to one caller; distinct callers may share a process id
// concurrently only through ExecAsync's pipelined update path (the
// store layer keeps their recorded histories well-formed by modelling
// each issuing lane as its own process). Queries remain safe to issue
// concurrently with in-flight updates.
func (p *Protocol) Exec(proc int, pr mop.Procedure, opts mop.ExecOptions) (mop.Record, error) {
	if pr.MayWrite() {
		done, err := p.ExecAsync(proc, pr, opts)
		if err != nil {
			return mop.Record{}, err
		}
		select {
		case out := <-done:
			return out.Rec, out.Err
		case <-p.stop:
			return mop.Record{}, ErrClosed
		}
	}
	if p.closed.Load() {
		return mop.Record{}, ErrClosed
	}
	if proc < 0 || proc >= p.cfg.Procs {
		return mop.Record{}, fmt.Errorf("mlin: invalid process %d", proc)
	}
	switch opts.Level {
	case history.LevelDefault, history.LevelOne, history.LevelQuorum, history.LevelAll:
	default:
		return mop.Record{}, fmt.Errorf("mlin: invalid consistency level %d", int(opts.Level))
	}
	if opts.Level == history.LevelOne {
		return p.executeLocalQuery(proc, pr)
	}
	return p.executeQuery(proc, pr, opts.Level)
}

// ExecAsync submits an update m-operation (A1, the same broadcast the
// m-SC protocol issues) without waiting for its completion and returns
// a one-shot completion channel: the pipelined issuance path. Any
// number of updates may be in flight per process; the broadcast order
// fixes their relative order, and each completes with Inv stamped at
// submission and Resp once a majority of replicas has acknowledged
// applying it (the write quorum — see the package comment). Close
// fulfills every still-pending completion with ErrClosed.
func (p *Protocol) ExecAsync(proc int, pr mop.Procedure, opts mop.ExecOptions) (<-chan mop.Outcome, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	if proc < 0 || proc >= p.cfg.Procs {
		return nil, fmt.Errorf("mlin: invalid process %d", proc)
	}
	if !pr.MayWrite() {
		return nil, errors.New("mlin: ExecAsync requires an update m-operation")
	}
	st := p.states[proc]
	reqID := p.nextID.Add(1)
	pu := &pendingUpdate{
		done:    make(chan mop.Outcome, 1),
		inv:     p.cfg.Clock(),
		ackFrom: make([]bool, p.cfg.Procs),
	}
	st.mu.Lock()
	st.pendUpd[reqID] = pu
	st.mu.Unlock()

	if err := p.cfg.Broadcast.Broadcast(proc, updatePayload{ReqID: reqID, From: proc, Proc: pr}, mop.PayloadBytes(pr)); err != nil {
		st.mu.Lock()
		delete(st.pendUpd, reqID)
		st.mu.Unlock()
		return nil, fmt.Errorf("mlin: broadcast: %w", err)
	}
	return pu.done, nil
}

// executeLocalQuery is the ONE level: the Figure 4 query rule applied to
// this protocol's replica. It waits out the session floor (a completed
// strong read may have observed updates the local copy has not applied
// yet), then reads the local copy — no query round, no network.
func (p *Protocol) executeLocalQuery(proc int, pr mop.Procedure) (mop.Record, error) {
	st := p.states[proc]
	inv := p.cfg.Clock()
	if toucher, ok := p.cfg.Broadcast.(queryToucher); ok {
		toucher.TouchQuery(proc, pr.Footprint().IDs())
	}
	st.mu.Lock()
	for !dominates(st.applied, st.floor) && !p.closed.Load() {
		st.cond.Wait()
	}
	if p.closed.Load() {
		st.mu.Unlock()
		return mop.Record{}, ErrClosed
	}
	maxInto(st.floor, st.applied)
	tsStart := st.ts.Clone()
	rec := mop.NewRecorder(st.values, pr)
	result := pr.Run(rec)
	tsEnd := st.ts.Clone()
	st.mu.Unlock()
	if err := rec.Err(); err != nil {
		return mop.Record{}, err
	}
	return mop.Record{
		Proc:         proc,
		Update:       false,
		Seq:          -1,
		Ops:          rec.Ops(),
		TSStart:      tsStart,
		TSEnd:        tsEnd,
		Footprint:    object.FullSet(p.cfg.Reg.Len()),
		Inv:          inv,
		Resp:         p.cfg.Clock(),
		Result:       result,
		Level:        history.LevelOne,
		Responders:   []int{proc},
		IsConsistent: true,
	}, nil
}

// executeQuery implements A3 + A6 for the strong levels: broadcast a
// "query", wait until the level's responder count has answered (all
// processes for ALL/default, a majority for QUORUM), fold in the local
// replica, then read the merged freshest copy.
func (p *Protocol) executeQuery(proc int, pr mop.Procedure, level history.Level) (mop.Record, error) {
	st := p.states[proc]
	if toucher, ok := p.cfg.Broadcast.(queryToucher); ok {
		toucher.TouchQuery(proc, pr.Footprint().IDs())
	}
	reqID := p.nextID.Add(1)
	need := p.need(level)
	qs := &queryState{
		othX:        make([]object.Value, p.cfg.Reg.Len()),
		othts:       timestamp.New(p.cfg.Reg.Len()),
		need:        need,
		waiting:     need,
		responded:   make([]bool, p.cfg.Procs),
		done:        make(chan struct{}),
		respApplied: make([]int64, p.cfg.Shards),
		appliedBy:   make([][]int64, p.cfg.Procs),
		barrierCh:   make(chan struct{}),
	}
	st.mu.Lock()
	st.pendQry[reqID] = qs
	st.mu.Unlock()

	inv := p.cfg.Clock()
	msg := queryMsg{ReqID: reqID}
	bytes := 16
	if p.cfg.RelevantOnly {
		msg.Objs = pr.Footprint().IDs()
		bytes += 8 * len(msg.Objs)
	}
	for q := 0; q < p.cfg.Procs; q++ {
		if err := p.qnet.Send(proc, q, "mlin.query", msg, bytes); err != nil {
			st.mu.Lock()
			delete(st.pendQry, reqID)
			st.mu.Unlock()
			return mop.Record{}, fmt.Errorf("mlin: query: %w", err)
		}
	}

	if err := p.awaitQuery(st, qs, proc, reqID, msg, bytes); err != nil {
		return mop.Record{}, err
	}

	// Post-round bookkeeping, all under the replica lock: wait out the
	// session floor, fold the local replica into the merged copy, and
	// advance the floor to the prefix this query covers. The message loop
	// no longer merges into qs (waiting is 0), so the snapshot fields are
	// stable; only the barrier evidence keeps moving.
	covered := append([]int64(nil), qs.respApplied...)
	st.mu.Lock()
	for !coversFloor(qs.respApplied, st.applied, st.floor) && !p.closed.Load() {
		st.cond.Wait()
	}
	if p.closed.Load() {
		delete(st.pendQry, reqID)
		st.mu.Unlock()
		return mop.Record{}, ErrClosed
	}
	// Fold in the issuer's own replica: componentwise max over snapshots
	// of prefixes of one total order is the snapshot of the longest
	// prefix, so the merged copy stays consistent and is never older
	// than the local one — even when the self response was not among the
	// first `need` merged. In relevant-only mode only the footprint's
	// entries are meaningful, so only those are folded.
	var fold []object.ID
	if p.cfg.RelevantOnly {
		fold = msg.Objs
	} else {
		fold = allObjects(p.cfg.Reg.Len())
	}
	for _, x := range fold {
		if st.ts.Get(x) > qs.othts.Get(x) {
			qs.othts.Set(x, st.ts.Get(x))
			qs.othX[x] = st.values[x]
		}
	}
	qs.responded[proc] = true
	maxInto(covered, st.applied)
	maxInto(st.floor, covered)
	// Enter the read barrier: the merged copy reflects prefix `covered`;
	// certifying any strong level requires a majority of replicas to
	// have applied it (see the package comment). The issuer's own
	// replica is the first piece of evidence; the phase-1 responses
	// already carried theirs.
	responders := make([]int, 0, p.cfg.Procs)
	for q, ok := range qs.responded {
		if ok {
			responders = append(responders, q)
		}
	}
	qs.barrier = covered
	qs.noteApplied(proc, st.applied, p.cfg.Shards)
	qs.noteEvidence(p.quorum())
	st.mu.Unlock()

	// Skip the wait when the responder count already caps certification
	// at ONE (a deep force-completion): the barrier cannot strengthen
	// the verdict, and probing an unreachable majority would only double
	// the force-complete latency. Level-less queries always wait — they
	// keep their pre-level identity and are checked at the store's
	// native condition however many responded.
	stable := false
	if len(responders) >= p.quorum() || level == history.LevelDefault {
		stable = p.awaitBarrier(st, qs, proc, msg, bytes)
	}
	st.mu.Lock()
	delete(st.pendQry, reqID)
	st.mu.Unlock()
	certified, consistent := certifyQuery(level, len(responders), p.cfg.Procs, stable)

	// A6: apply the query to the merged copy. No lock is needed: all
	// responses have been merged, the barrier only ever touched the
	// evidence fields, and the query state is no longer reachable from
	// the message loop.
	tsStart := qs.othts.Clone()
	rec := mop.NewRecorder(qs.othX, pr)
	result := pr.Run(rec)
	if err := rec.Err(); err != nil {
		return mop.Record{}, err
	}
	// The merged copy is a consistent full snapshot in whole-copy mode;
	// in relevant-only mode only the footprint's entries are meaningful.
	fp := object.FullSet(p.cfg.Reg.Len())
	if p.cfg.RelevantOnly {
		fp = pr.Footprint()
	}
	return mop.Record{
		Proc:         proc,
		Update:       false,
		Seq:          -1,
		Ops:          rec.Ops(),
		TSStart:      tsStart,
		TSEnd:        qs.othts.Clone(),
		Footprint:    fp,
		Inv:          inv,
		Resp:         p.cfg.Clock(),
		Result:       result,
		Level:        certified,
		Responders:   responders,
		IsConsistent: consistent,
	}, nil
}

// certifyQuery maps (requested level, responder count, read-barrier
// outcome) to the certified level recorded in the history and the
// IsConsistent verdict. A query force-completed below its requested
// responder count is certified at the strongest level its count
// actually supports, so the exact checkers never hold a degraded read
// to a guarantee it did not get. A strong certification additionally
// requires the read barrier: without majority stability of the
// observed prefix the snapshot may exhibit a new/old inversion against
// a later strong read, so the record honestly claims only the m-SC
// guarantee. The zero level keeps its pre-level identity — checked at
// the store's native condition regardless of completeness, which is
// exactly the bounded-query behavior histories recorded before levels
// had — with IsConsistent reporting whether the full Figure 6 contract
// (all responders, stable prefix) was met.
func certifyQuery(level history.Level, got, procs int, stable bool) (history.Level, bool) {
	quorum := procs/2 + 1
	switch level {
	case history.LevelQuorum:
		if got >= quorum && stable {
			return history.LevelQuorum, true
		}
		return history.LevelOne, false
	case history.LevelAll:
		switch {
		case got >= procs && stable:
			return history.LevelAll, true
		case got >= quorum && stable:
			return history.LevelQuorum, false
		default:
			return history.LevelOne, false
		}
	default:
		return history.LevelDefault, got >= procs && stable
	}
}

// coversFloor reports whether the componentwise max of the responses'
// advertised prefix and the local applied prefix dominates the session
// floor — the sharded form of max(respApplied, applied) >= floor.
func coversFloor(resp, applied, floor []int64) bool {
	for i := range floor {
		hi := applied[i]
		if resp[i] > hi {
			hi = resp[i]
		}
		if hi < floor[i] {
			return false
		}
	}
	return true
}

// allObjects lists every object ID (the whole-copy fold set).
func allObjects(n int) []object.ID {
	out := make([]object.ID, n)
	for i := range out {
		out[i] = object.ID(i)
	}
	return out
}

// awaitQuery waits for the query's response set. With no QueryTimeout
// it is the unbounded wait (Figure 6's wait-for-all at need = Procs;
// the majority wait for QUORUM). With one, each deadline re-solicits
// the processes that have not answered, and after QueryRetries
// re-solicitations the query completes with the responses gathered so
// far — the issuer's replica is folded in afterwards regardless, so the
// merged copy is never empty and never older than the issuer's own.
func (p *Protocol) awaitQuery(st *procState, qs *queryState, proc int, reqID int64, msg queryMsg, bytes int) error {
	if p.cfg.QueryTimeout <= 0 {
		select {
		case <-qs.done:
			return nil
		case <-p.stop:
			st.mu.Lock()
			delete(st.pendQry, reqID)
			st.mu.Unlock()
			return ErrClosed
		}
	}
	retries := p.cfg.QueryRetries
	timer := time.NewTimer(p.cfg.QueryTimeout)
	defer timer.Stop()
	for {
		select {
		case <-qs.done:
			return nil
		case <-p.stop:
			st.mu.Lock()
			delete(st.pendQry, reqID)
			st.mu.Unlock()
			return ErrClosed
		case <-timer.C:
			var missing []int
			st.mu.Lock()
			for q := 0; q < p.cfg.Procs; q++ {
				if !qs.responded[q] {
					missing = append(missing, q)
				}
			}
			if retries <= 0 || len(missing) == 0 {
				// Complete with what arrived (the message loop may have
				// closed done in the meantime; the waiting guard keeps the
				// close exactly-once).
				if qs.waiting > 0 {
					qs.waiting = 0
					close(qs.done)
				}
				st.mu.Unlock()
				return nil
			}
			st.mu.Unlock()
			retries--
			for _, q := range missing {
				// Shutdown is the only send failure; the stop case exits.
				_ = p.qnet.Send(proc, q, "mlin.query", msg, bytes)
			}
			timer.Reset(p.cfg.QueryTimeout)
		}
	}
}

// awaitBarrier blocks until a majority of replicas is known to have
// applied the query's covered prefix (the read barrier — see the
// package comment), re-probing the laggards with the same query
// message; replicas answer idempotently and every answer refreshes
// their applied evidence. Returns false when the barrier could not be
// confirmed within the retry budget (or at shutdown): the caller then
// certifies the read at ONE, never holding an unstable snapshot to the
// m-linearizable contract. The wait terminates in the failure-free
// case because every update in the covered prefix is already in the
// broadcast order, which every live replica applies.
func (p *Protocol) awaitBarrier(st *procState, qs *queryState, proc int, msg queryMsg, bytes int) bool {
	probe := func() bool {
		var lagging []int
		st.mu.Lock()
		if qs.barrierDone {
			st.mu.Unlock()
			return true
		}
		for q := 0; q < p.cfg.Procs; q++ {
			if q != proc && !dominates(qs.appliedBy[q], qs.barrier) {
				lagging = append(lagging, q)
			}
		}
		st.mu.Unlock()
		for _, q := range lagging {
			// Shutdown is the only send failure; the stop case exits.
			_ = p.qnet.Send(proc, q, "mlin.query", msg, bytes)
		}
		return false
	}
	if probe() {
		return true
	}
	// Unbounded queries re-probe on a short interval forever (a replica
	// may answer a probe before it has caught up to the barrier, so a
	// single probe is not enough evidence to wait on); bounded queries
	// re-probe on the query timeout and give up with the retry budget.
	interval := p.cfg.QueryTimeout
	retries := p.cfg.QueryRetries
	unbounded := interval <= 0
	if unbounded {
		interval = barrierProbeInterval
		if d := 2 * p.cfg.MaxDelay; d > interval {
			interval = d
		}
	}
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-qs.barrierCh:
			return true
		case <-p.stop:
			return false
		case <-timer.C:
			if !unbounded {
				if retries <= 0 {
					return false
				}
				retries--
			}
			if probe() {
				return true
			}
			timer.Reset(interval)
		}
	}
}

// barrierProbeInterval is the floor on the read barrier's re-probe
// period for unbounded queries (no QueryTimeout); doubled MaxDelay
// wins when the simulated network is slower than this.
const barrierProbeInterval = 2 * time.Millisecond

// deliveryLoop implements A2 for one process.
func (p *Protocol) deliveryLoop(proc int) {
	defer p.wg.Done()
	st := p.states[proc]
	for {
		select {
		case <-p.stop:
			return
		case d := <-p.cfg.Broadcast.Deliveries(proc):
			payload, ok := d.Payload.(updatePayload)
			if !ok {
				continue
			}
			st.mu.Lock()
			if d.Shards == nil && d.Seq < st.applied[0] {
				// Subsumed by an adopted recovery checkpoint; applying
				// again would double-count. (Sharded deliveries carry a
				// composite Seq that is not monotone per replica stream,
				// so the guard only applies to the single total order —
				// sharding excludes recovery at the config layer.) An
				// issuer still waiting locally gets an error outcome; a
				// peer still owes the issuer its write-phase ack — the
				// checkpoint covers the update's effects, so
				// acknowledging is sound.
				var pu *pendingUpdate
				if payload.From == proc {
					pu = st.pendUpd[payload.ReqID]
					delete(st.pendUpd, payload.ReqID)
				}
				st.mu.Unlock()
				if pu != nil {
					pu.done <- mop.Outcome{Err: errors.New("mlin: update subsumed by recovery checkpoint")}
				} else if payload.From != proc {
					p.sendAck(proc, payload)
				}
				continue
			}
			rec, err := p.applyLocked(st, payload.Proc, payload.From, d.Seq)
			if d.Shards == nil {
				st.applied[0] = d.Seq + 1
			} else {
				// One schedule slot per involved lane: a cross-shard
				// update occupies exactly one position in each involved
				// shard's deterministic schedule.
				for _, s := range d.Shards {
					st.applied[s]++
				}
			}
			st.cond.Broadcast()
			for _, q := range st.pendQry {
				// The local apply is read-barrier evidence for any of
				// this process's queries still waiting on one.
				if q.barrier != nil {
					q.noteApplied(proc, st.applied, p.cfg.Shards)
					q.noteEvidence(p.quorum())
				}
			}
			var ready *pendingUpdate
			if payload.From == proc {
				// A2: the issuing process generates the response — but only
				// once a majority of replicas has applied the update (the
				// local apply is the first ack). An apply error completes
				// immediately: it is deterministic, waiting cannot mend it.
				if pu := st.pendUpd[payload.ReqID]; pu != nil {
					pu.applied, pu.rec, pu.applyErr = true, rec, err
					if !pu.ackFrom[proc] {
						pu.ackFrom[proc] = true
						pu.acks++
					}
					if pu.acks >= p.quorum() || err != nil {
						delete(st.pendUpd, payload.ReqID)
						ready = pu
					}
				}
			}
			st.mu.Unlock()
			if ready != nil {
				p.finishUpdate(ready)
			} else if payload.From != proc {
				p.sendAck(proc, payload)
			}
		}
	}
}

// sendAck emits the write-phase acknowledgement for an update another
// process issued: this replica has applied it (or holds a checkpoint
// subsuming it). Rides the query network; under the lossy simulated
// stack the Reliable layer retransmits it like any other message.
func (p *Protocol) sendAck(proc int, payload updatePayload) {
	// Send failures only occur at shutdown.
	_ = p.qnet.Send(proc, payload.From, "mlin.ack", applyAck{ReqID: payload.ReqID, From: proc}, 16)
}

// finishUpdate fulfills a pending update whose write quorum is in: Resp
// is stamped now — the response event of the m-operation is the moment
// a majority is known to hold it, which is what the QUORUM read rule's
// intersection argument charges against.
func (p *Protocol) finishUpdate(pu *pendingUpdate) {
	rec := pu.rec
	rec.Inv = pu.inv
	rec.Resp = p.cfg.Clock()
	rec.Level = history.LevelAll
	rec.IsConsistent = true
	pu.done <- mop.Outcome{Rec: rec, Err: pu.applyErr}
}

// messageLoop implements A4 (answer queries), A5 (merge responses) and
// the write-phase ack accounting.
func (p *Protocol) messageLoop(proc int) {
	defer p.wg.Done()
	st := p.states[proc]
	for {
		select {
		case <-p.stop:
			return
		case msg := <-p.qnet.Recv(proc):
			switch m := msg.Payload.(type) {
			case queryMsg:
				p.answerQuery(proc, msg.From, m)
			case applyAck:
				if m.From < 0 || m.From >= p.cfg.Procs {
					continue
				}
				var ready *pendingUpdate
				st.mu.Lock()
				if pu := st.pendUpd[m.ReqID]; pu != nil && !pu.ackFrom[m.From] {
					pu.ackFrom[m.From] = true
					pu.acks++
					if pu.applied && pu.acks >= p.quorum() {
						delete(st.pendUpd, m.ReqID)
						ready = pu
					}
				}
				st.mu.Unlock()
				if ready != nil {
					p.finishUpdate(ready)
				}
			case queryResp:
				st.mu.Lock()
				qs, ok := st.pendQry[m.ReqID]
				if ok && msg.From >= 0 && msg.From < p.cfg.Procs {
					// Applied evidence is tracked on every answer —
					// including duplicates and barrier re-probe answers
					// after the merge completed — because the read
					// barrier waits on exactly this refresh.
					qs.noteApplied(msg.From, m.Applied, p.cfg.Shards)
					qs.noteEvidence(p.quorum())
					if qs.waiting > 0 && !qs.responded[msg.From] {
						qs.responded[msg.From] = true
						for i, x := range m.Objs {
							if m.TS[i] > qs.othts.Get(x) {
								qs.othts.Set(x, m.TS[i])
								qs.othX[x] = m.Values[i]
							}
						}
						if len(m.Applied) == p.cfg.Shards {
							maxInto(qs.respApplied, m.Applied)
						}
						qs.waiting--
						if qs.waiting == 0 {
							close(qs.done)
						}
					}
				}
				st.mu.Unlock()
			}
		}
	}
}

// answerQuery implements A4: snapshot the local copy (whole or relevant
// objects only) and reply, advertising the applied prefix the snapshot
// reflects.
func (p *Protocol) answerQuery(proc, from int, m queryMsg) {
	st := p.states[proc]
	st.mu.Lock()
	var objs []object.ID
	if m.Objs == nil {
		objs = allObjects(p.cfg.Reg.Len())
	} else {
		objs = m.Objs
	}
	resp := queryResp{
		ReqID:   m.ReqID,
		Objs:    objs,
		Values:  make([]object.Value, len(objs)),
		TS:      make([]int64, len(objs)),
		Applied: append([]int64(nil), st.applied...),
	}
	for i, x := range objs {
		resp.Values[i] = st.values[x]
		resp.TS[i] = st.ts.Get(x)
	}
	st.mu.Unlock()
	bytes := 16 + 8*len(resp.Applied) + 24*len(objs) // id + applied vector + per-object (id, value, version)
	// Send failures only occur at shutdown; the query will be released
	// by p.stop.
	_ = p.qnet.Send(proc, from, "mlin.qresp", resp, bytes)
}

// applyLocked is action A2's body (identical to the m-SC protocol's).
// Unsharded updates record the full object set as their footprint (the
// whole copy advances through one total order); sharded updates record
// their true footprint, since a record that claimed membership in every
// shard's schedule would put it in per-shard order chains it never
// occupied a slot in.
func (p *Protocol) applyLocked(st *procState, pr mop.Procedure, proc int, seq int64) (mop.Record, error) {
	tsStart := st.ts.Clone()
	rec := mop.NewRecorder(st.values, pr)
	result := pr.Run(rec)
	for _, x := range rec.Written().IDs() {
		st.ts.Bump(x)
	}
	if err := rec.Err(); err != nil {
		return mop.Record{}, err
	}
	fp := object.FullSet(len(st.values))
	if p.cfg.Shards > 1 {
		fp = pr.Footprint()
	}
	return mop.Record{
		Proc:      proc,
		Update:    seq >= 0,
		Seq:       seq,
		Ops:       rec.Ops(),
		TSStart:   tsStart,
		TSEnd:     st.ts.Clone(),
		Footprint: fp,
		Result:    result,
	}, nil
}

// QueryTraffic returns the query network's traffic counters (experiment
// E9 reads these).
func (p *Protocol) QueryTraffic() network.Stats { return p.qnet.Stats() }

// BroadcastTraffic returns the broadcaster's (messages, bytes).
func (p *Protocol) BroadcastTraffic() (int64, int64) { return p.cfg.Broadcast.MessageCost() }

// Snapshot captures process proc's current checkpoint for state
// transfer (recovery.State).
func (p *Protocol) Snapshot(proc int) recovery.Checkpoint {
	st := p.states[proc]
	st.mu.Lock()
	defer st.mu.Unlock()
	return recovery.Checkpoint{
		Values:  append([]object.Value(nil), st.values...),
		TS:      append([]int64(nil), st.ts...),
		Applied: st.applied[0],
	}
}

// Adopt installs ck into process proc if it is strictly fresher than the
// local replica state (recovery.State).
func (p *Protocol) Adopt(proc int, ck recovery.Checkpoint) bool {
	st := p.states[proc]
	st.mu.Lock()
	defer st.mu.Unlock()
	// Checkpoints carry a scalar prefix of the single total order;
	// sharding excludes recovery (Config validation at the store layer),
	// so a sharded replica never adopts one.
	if len(st.applied) != 1 || ck.Applied <= st.applied[0] || len(ck.Values) != len(st.values) || len(ck.TS) != len(st.ts) {
		return false
	}
	copy(st.values, ck.Values)
	copy(st.ts, ck.TS)
	st.applied[0] = ck.Applied
	st.cond.Broadcast()
	for _, q := range st.pendQry {
		// An adopted checkpoint is a prefix of the same order: it is
		// read-barrier evidence exactly like the applies it subsumes.
		if q.barrier != nil {
			q.noteApplied(proc, st.applied, p.cfg.Shards)
			q.noteEvidence(p.quorum())
		}
	}
	return true
}

// LocalTS returns a copy of process proc's current myts (test
// instrumentation).
func (p *Protocol) LocalTS(proc int) timestamp.TS {
	st := p.states[proc]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ts.Clone()
}

// Close shuts the protocol down, including the broadcaster it owns and
// its query network. Every still-pending asynchronous completion is
// fulfilled with ErrClosed so no pipelined issuer waits forever, and
// every session-floor waiter is woken to observe the shutdown.
func (p *Protocol) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
	p.cfg.Broadcast.Close()
	p.qnet.Close()
	p.wg.Wait()
	for _, st := range p.states {
		st.mu.Lock()
		for id, pu := range st.pendUpd {
			pu.done <- mop.Outcome{Err: ErrClosed}
			delete(st.pendUpd, id)
		}
		st.cond.Broadcast()
		st.mu.Unlock()
	}
}
