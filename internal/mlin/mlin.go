// Package mlin implements the m-linearizability protocol of Figure 6 of
// Mittal & Garg (1998) for fully asynchronous systems — no clock
// synchronization or message-delay bound is assumed:
//
//	(A1) an update m-operation is atomically broadcast to all processes;
//	(A2) on delivery, each process applies it to its local copy (myX,
//	     myts), bumping written objects' versions; the issuer responds;
//	(A3) a query m-operation sends a "query" message to all processes;
//	(A4) on receiving a "query", a process replies with its local copy
//	     and timestamps;
//	(A5) the issuer merges responses, keeping the most recent version of
//	     every object (othX, othts);
//	(A6) once all processes have responded, the query reads the merged
//	     copy and responds.
//
// The query round-trip is what upgrades m-sequential consistency to
// m-linearizability (Theorem 20): a query can no longer miss an update
// whose response preceded the query's invocation in real time, because
// at least the updating process itself answers with the new version.
//
// The closing remark of Section 5.2 — "the protocol is still correct if
// only the relevant copies of the shared objects and their timestamp is
// sent" — is implemented as the RelevantOnly option and measured by
// experiment E9.
package mlin

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"moc/internal/abcast"
	"moc/internal/mop"
	"moc/internal/network"
	"moc/internal/object"
	"moc/internal/recovery"
	"moc/internal/timestamp"
)

// Config parameterizes the protocol.
type Config struct {
	// Procs is the number of processes.
	Procs int
	// Reg is the shared-object registry.
	Reg *object.Registry
	// Broadcast is the atomic broadcast service for updates; the
	// protocol takes ownership and closes it.
	Broadcast abcast.Broadcaster
	// Seed, MinDelay and MaxDelay parameterize the query network.
	Seed               int64
	MinDelay, MaxDelay time.Duration
	// Faults optionally injects delivery faults into the query network
	// (the broadcaster's faults are configured on the broadcaster).
	Faults *network.Faults
	// RelevantOnly, when true, restricts query responses to the query's
	// footprint (Section 5.2's final optimization); otherwise whole
	// copies are shipped, exactly as in Figure 6.
	RelevantOnly bool
	// QueryTimeout bounds how long a query waits for the full response
	// set. Zero keeps Figure 6's unbounded wait-for-all. With a bound,
	// the query re-solicits the missing processes up to QueryRetries
	// times and then completes with the responses gathered — safe under
	// crash-stop because every update is applied at all live processes,
	// so any response set that includes one live process per relevant
	// update (the issuer always responds to itself) carries the freshest
	// versions; see DESIGN.md.
	QueryTimeout time.Duration
	// QueryRetries is the number of re-solicitations before a bounded
	// query completes partially. Ignored when QueryTimeout is zero.
	QueryRetries int
	// Links optionally supplies the query-network transport (channel name
	// "mlin.query"); nil uses the simulated network stack.
	Links network.Factory
	// Clock returns nanoseconds since the run origin; must be monotonic.
	Clock func() int64
}

// Protocol is a running instance of the Figure 6 protocol.
type Protocol struct {
	cfg    Config
	qnet   network.Link
	states []*procState
	stop   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
	nextID atomic.Int64
}

type procState struct {
	mu      sync.Mutex
	values  []object.Value // myX
	ts      timestamp.TS   // myts
	pendUpd map[int64]*pendingUpdate
	pendQry map[int64]*queryState
	// applied counts the total-order updates reflected in values/ts; a
	// recovery checkpoint advances it past a crash outage and the
	// delivery loop skips redelivered updates below it.
	applied int64
}

type queryState struct {
	othX    []object.Value
	othts   timestamp.TS
	waiting int
	// responded marks which processes have already answered, so the
	// duplicate responses that re-solicitation provokes are merged (and
	// counted) at most once per process.
	responded []bool
	done      chan struct{}
}

// The wire payload types below carry exported fields so a serializing
// transport (internal/transport's gob codec) can marshal them.

type updatePayload struct {
	ReqID int64
	From  int
	Proc  mop.Procedure
}

// Outcome is the completion of an asynchronously issued update: the
// record (Inv/Resp stamped) or the error that aborted it.
type Outcome struct {
	Rec mop.Record
	Err error
}

// pendingUpdate tracks one in-flight update from issuance (A1) to the
// issuer's apply (A2): the completion channel and the invocation
// timestamp captured at submit time.
type pendingUpdate struct {
	done chan Outcome
	inv  int64
}

type queryMsg struct {
	ReqID int64
	Objs  []object.ID // nil means "send everything" (Figure 6 verbatim)
}

type queryResp struct {
	ReqID  int64
	Objs   []object.ID // objects covered (all, in whole-copy mode)
	Values []object.Value
	TS     []int64
}

// ErrClosed is returned by Execute after Close.
var ErrClosed = errors.New("mlin: protocol closed")

// New starts the protocol: a delivery loop (A2) and a message loop
// (A4/A5/A6 plumbing) per process.
func New(cfg Config) (*Protocol, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("mlin: invalid proc count %d", cfg.Procs)
	}
	if cfg.Reg == nil || cfg.Broadcast == nil {
		return nil, errors.New("mlin: registry and broadcaster are required")
	}
	if cfg.Clock == nil {
		origin := time.Now()
		cfg.Clock = func() int64 { return time.Since(origin).Nanoseconds() }
	}
	qnet, err := cfg.Links.Build("mlin.query", network.Config{
		Procs:    cfg.Procs,
		Seed:     cfg.Seed,
		MinDelay: cfg.MinDelay,
		MaxDelay: cfg.MaxDelay,
		Faults:   cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		cfg:    cfg,
		qnet:   qnet,
		states: make([]*procState, cfg.Procs),
		stop:   make(chan struct{}),
	}
	for i := range p.states {
		p.states[i] = &procState{
			values:  make([]object.Value, cfg.Reg.Len()),
			ts:      timestamp.New(cfg.Reg.Len()),
			pendUpd: make(map[int64]*pendingUpdate),
			pendQry: make(map[int64]*queryState),
		}
	}
	for i := 0; i < cfg.Procs; i++ {
		p.wg.Add(1)
		go p.deliveryLoop(i)
		p.wg.Add(1)
		go p.messageLoop(i)
	}
	return p, nil
}

// Execute runs procedure pr as an m-operation of process proc and blocks
// until the response event. Each sequential thread of control
// corresponds to one caller; distinct callers may share a process id
// concurrently only through ExecuteAsync's pipelined update path (the
// store layer keeps their recorded histories well-formed by modelling
// each issuing lane as its own process). Queries remain safe to issue
// concurrently with in-flight updates.
func (p *Protocol) Execute(proc int, pr mop.Procedure) (mop.Record, error) {
	if pr.MayWrite() {
		done, err := p.ExecuteAsync(proc, pr)
		if err != nil {
			return mop.Record{}, err
		}
		select {
		case out := <-done:
			return out.Rec, out.Err
		case <-p.stop:
			return mop.Record{}, ErrClosed
		}
	}
	if p.closed.Load() {
		return mop.Record{}, ErrClosed
	}
	if proc < 0 || proc >= p.cfg.Procs {
		return mop.Record{}, fmt.Errorf("mlin: invalid process %d", proc)
	}
	return p.executeQuery(proc, pr)
}

// ExecuteAsync submits an update m-operation (A1, identical to the m-SC
// protocol) without waiting for the issuer's apply (A2) and returns a
// one-shot completion channel: the pipelined issuance path. Any number
// of updates may be in flight per process; the broadcast order fixes
// their relative order, and each completes with Inv stamped at
// submission and Resp at local apply. Close fulfills every
// still-pending completion with ErrClosed.
func (p *Protocol) ExecuteAsync(proc int, pr mop.Procedure) (<-chan Outcome, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	if proc < 0 || proc >= p.cfg.Procs {
		return nil, fmt.Errorf("mlin: invalid process %d", proc)
	}
	if !pr.MayWrite() {
		return nil, errors.New("mlin: ExecuteAsync requires an update m-operation")
	}
	st := p.states[proc]
	reqID := p.nextID.Add(1)
	pu := &pendingUpdate{done: make(chan Outcome, 1), inv: p.cfg.Clock()}
	st.mu.Lock()
	st.pendUpd[reqID] = pu
	st.mu.Unlock()

	if err := p.cfg.Broadcast.Broadcast(proc, updatePayload{ReqID: reqID, From: proc, Proc: pr}, mop.PayloadBytes(pr)); err != nil {
		st.mu.Lock()
		delete(st.pendUpd, reqID)
		st.mu.Unlock()
		return nil, fmt.Errorf("mlin: broadcast: %w", err)
	}
	return pu.done, nil
}

// executeQuery implements A3 + A6: broadcast a "query", wait until every
// process has answered, then read the merged freshest copy.
func (p *Protocol) executeQuery(proc int, pr mop.Procedure) (mop.Record, error) {
	st := p.states[proc]
	reqID := p.nextID.Add(1)
	qs := &queryState{
		othX:      make([]object.Value, p.cfg.Reg.Len()),
		othts:     timestamp.New(p.cfg.Reg.Len()),
		waiting:   p.cfg.Procs,
		responded: make([]bool, p.cfg.Procs),
		done:      make(chan struct{}),
	}
	st.mu.Lock()
	st.pendQry[reqID] = qs
	st.mu.Unlock()

	inv := p.cfg.Clock()
	msg := queryMsg{ReqID: reqID}
	bytes := 16
	if p.cfg.RelevantOnly {
		msg.Objs = pr.Footprint().IDs()
		bytes += 8 * len(msg.Objs)
	}
	for q := 0; q < p.cfg.Procs; q++ {
		if err := p.qnet.Send(proc, q, "mlin.query", msg, bytes); err != nil {
			st.mu.Lock()
			delete(st.pendQry, reqID)
			st.mu.Unlock()
			return mop.Record{}, fmt.Errorf("mlin: query: %w", err)
		}
	}

	if err := p.awaitQuery(st, qs, proc, reqID, msg, bytes); err != nil {
		return mop.Record{}, err
	}
	st.mu.Lock()
	delete(st.pendQry, reqID)
	st.mu.Unlock()

	// A6: apply the query to the merged copy. No lock is needed: all
	// responses have been merged and the query state is no longer
	// reachable from the message loop.
	tsStart := qs.othts.Clone()
	rec := mop.NewRecorder(qs.othX, pr)
	result := pr.Run(rec)
	if err := rec.Err(); err != nil {
		return mop.Record{}, err
	}
	// The merged copy is a consistent full snapshot in whole-copy mode;
	// in relevant-only mode only the footprint's entries are meaningful.
	fp := object.FullSet(p.cfg.Reg.Len())
	if p.cfg.RelevantOnly {
		fp = pr.Footprint()
	}
	return mop.Record{
		Proc:      proc,
		Update:    false,
		Seq:       -1,
		Ops:       rec.Ops(),
		TSStart:   tsStart,
		TSEnd:     qs.othts.Clone(),
		Footprint: fp,
		Inv:       inv,
		Resp:      p.cfg.Clock(),
		Result:    result,
	}, nil
}

// awaitQuery waits for the query's response set. With no QueryTimeout
// it is Figure 6's unbounded wait-for-all. With one, each deadline
// re-solicits the processes that have not answered, and after
// QueryRetries re-solicitations the query completes with the responses
// gathered so far — the issuer's own response always arrives (self
// delivery is immune to crash windows), so the merged copy is never
// empty and never older than the issuer's local copy.
func (p *Protocol) awaitQuery(st *procState, qs *queryState, proc int, reqID int64, msg queryMsg, bytes int) error {
	if p.cfg.QueryTimeout <= 0 {
		select {
		case <-qs.done:
			return nil
		case <-p.stop:
			st.mu.Lock()
			delete(st.pendQry, reqID)
			st.mu.Unlock()
			return ErrClosed
		}
	}
	retries := p.cfg.QueryRetries
	timer := time.NewTimer(p.cfg.QueryTimeout)
	defer timer.Stop()
	for {
		select {
		case <-qs.done:
			return nil
		case <-p.stop:
			st.mu.Lock()
			delete(st.pendQry, reqID)
			st.mu.Unlock()
			return ErrClosed
		case <-timer.C:
			var missing []int
			st.mu.Lock()
			for q := 0; q < p.cfg.Procs; q++ {
				if !qs.responded[q] {
					missing = append(missing, q)
				}
			}
			if retries <= 0 || len(missing) == 0 {
				// Complete with what arrived (the message loop may have
				// closed done in the meantime; the waiting guard keeps the
				// close exactly-once).
				if qs.waiting > 0 {
					qs.waiting = 0
					close(qs.done)
				}
				st.mu.Unlock()
				return nil
			}
			st.mu.Unlock()
			retries--
			for _, q := range missing {
				// Shutdown is the only send failure; the stop case exits.
				_ = p.qnet.Send(proc, q, "mlin.query", msg, bytes)
			}
			timer.Reset(p.cfg.QueryTimeout)
		}
	}
}

// deliveryLoop implements A2 for one process.
func (p *Protocol) deliveryLoop(proc int) {
	defer p.wg.Done()
	st := p.states[proc]
	for {
		select {
		case <-p.stop:
			return
		case d := <-p.cfg.Broadcast.Deliveries(proc):
			payload, ok := d.Payload.(updatePayload)
			if !ok {
				continue
			}
			st.mu.Lock()
			if d.Seq < st.applied {
				// Subsumed by an adopted recovery checkpoint; applying
				// again would double-count. An issuer still waiting
				// locally gets an error outcome.
				var pu *pendingUpdate
				if payload.From == proc {
					pu = st.pendUpd[payload.ReqID]
					delete(st.pendUpd, payload.ReqID)
				}
				st.mu.Unlock()
				if pu != nil {
					pu.done <- Outcome{Err: errors.New("mlin: update subsumed by recovery checkpoint")}
				}
				continue
			}
			rec, err := applyLocked(st, payload.Proc, payload.From, d.Seq)
			st.applied = d.Seq + 1
			var pu *pendingUpdate
			if payload.From == proc {
				pu = st.pendUpd[payload.ReqID]
				delete(st.pendUpd, payload.ReqID)
			}
			st.mu.Unlock()
			if pu != nil {
				// A2: the issuing process generates the response — Resp is
				// stamped at local apply time, Inv was stamped at submission.
				rec.Inv = pu.inv
				rec.Resp = p.cfg.Clock()
				pu.done <- Outcome{Rec: rec, Err: err}
			}
		}
	}
}

// messageLoop implements A4 (answer queries) and A5 (merge responses).
func (p *Protocol) messageLoop(proc int) {
	defer p.wg.Done()
	st := p.states[proc]
	for {
		select {
		case <-p.stop:
			return
		case msg := <-p.qnet.Recv(proc):
			switch m := msg.Payload.(type) {
			case queryMsg:
				p.answerQuery(proc, msg.From, m)
			case queryResp:
				st.mu.Lock()
				qs, ok := st.pendQry[m.ReqID]
				if ok && qs.waiting > 0 && !qs.responded[msg.From] {
					qs.responded[msg.From] = true
					for i, x := range m.Objs {
						if m.TS[i] > qs.othts.Get(x) {
							qs.othts.Set(x, m.TS[i])
							qs.othX[x] = m.Values[i]
						}
					}
					qs.waiting--
					if qs.waiting == 0 {
						close(qs.done)
					}
				}
				st.mu.Unlock()
			}
		}
	}
}

// answerQuery implements A4: snapshot the local copy (whole or relevant
// objects only) and reply.
func (p *Protocol) answerQuery(proc, from int, m queryMsg) {
	st := p.states[proc]
	st.mu.Lock()
	var objs []object.ID
	if m.Objs == nil {
		objs = make([]object.ID, p.cfg.Reg.Len())
		for i := range objs {
			objs[i] = object.ID(i)
		}
	} else {
		objs = m.Objs
	}
	resp := queryResp{
		ReqID:  m.ReqID,
		Objs:   objs,
		Values: make([]object.Value, len(objs)),
		TS:     make([]int64, len(objs)),
	}
	for i, x := range objs {
		resp.Values[i] = st.values[x]
		resp.TS[i] = st.ts.Get(x)
	}
	st.mu.Unlock()
	bytes := 16 + 24*len(objs) // id + per-object (id, value, version)
	// Send failures only occur at shutdown; the query will be released
	// by p.stop.
	_ = p.qnet.Send(proc, from, "mlin.qresp", resp, bytes)
}

// applyLocked is action A2's body (identical to the m-SC protocol's).
func applyLocked(st *procState, pr mop.Procedure, proc int, seq int64) (mop.Record, error) {
	tsStart := st.ts.Clone()
	rec := mop.NewRecorder(st.values, pr)
	result := pr.Run(rec)
	for _, x := range rec.Written().IDs() {
		st.ts.Bump(x)
	}
	if err := rec.Err(); err != nil {
		return mop.Record{}, err
	}
	return mop.Record{
		Proc:      proc,
		Update:    seq >= 0,
		Seq:       seq,
		Ops:       rec.Ops(),
		TSStart:   tsStart,
		TSEnd:     st.ts.Clone(),
		Footprint: object.FullSet(len(st.values)),
		Result:    result,
	}, nil
}

// QueryTraffic returns the query network's traffic counters (experiment
// E9 reads these).
func (p *Protocol) QueryTraffic() network.Stats { return p.qnet.Stats() }

// BroadcastTraffic returns the broadcaster's (messages, bytes).
func (p *Protocol) BroadcastTraffic() (int64, int64) { return p.cfg.Broadcast.MessageCost() }

// Snapshot captures process proc's current checkpoint for state
// transfer (recovery.State).
func (p *Protocol) Snapshot(proc int) recovery.Checkpoint {
	st := p.states[proc]
	st.mu.Lock()
	defer st.mu.Unlock()
	return recovery.Checkpoint{
		Values:  append([]object.Value(nil), st.values...),
		TS:      append([]int64(nil), st.ts...),
		Applied: st.applied,
	}
}

// Adopt installs ck into process proc if it is strictly fresher than the
// local replica state (recovery.State).
func (p *Protocol) Adopt(proc int, ck recovery.Checkpoint) bool {
	st := p.states[proc]
	st.mu.Lock()
	defer st.mu.Unlock()
	if ck.Applied <= st.applied || len(ck.Values) != len(st.values) || len(ck.TS) != len(st.ts) {
		return false
	}
	copy(st.values, ck.Values)
	copy(st.ts, ck.TS)
	st.applied = ck.Applied
	return true
}

// LocalTS returns a copy of process proc's current myts (test
// instrumentation).
func (p *Protocol) LocalTS(proc int) timestamp.TS {
	st := p.states[proc]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ts.Clone()
}

// Close shuts the protocol down, including the broadcaster it owns and
// its query network. Every still-pending asynchronous completion is
// fulfilled with ErrClosed so no pipelined issuer waits forever.
func (p *Protocol) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
	p.cfg.Broadcast.Close()
	p.qnet.Close()
	p.wg.Wait()
	for _, st := range p.states {
		st.mu.Lock()
		for id, pu := range st.pendUpd {
			pu.done <- Outcome{Err: ErrClosed}
			delete(st.pendUpd, id)
		}
		st.mu.Unlock()
	}
}
