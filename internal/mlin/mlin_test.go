package mlin

import (
	"sync"
	"testing"
	"time"

	"moc/internal/abcast"
	"moc/internal/mop"
	"moc/internal/object"
)

func newProtocol(t *testing.T, procs int, maxDelay time.Duration, relevantOnly bool) *Protocol {
	t.Helper()
	reg := object.Sequential(4)
	b, err := abcast.NewSequencer(abcast.SequencerConfig{Procs: procs, Seed: 42, MaxDelay: maxDelay})
	if err != nil {
		t.Fatalf("NewSequencer: %v", err)
	}
	p, err := New(Config{
		Procs: procs, Reg: reg, Broadcast: b,
		Seed: 7, MaxDelay: maxDelay, RelevantOnly: relevantOnly,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestNewValidation(t *testing.T) {
	reg := object.Sequential(1)
	if _, err := New(Config{Procs: 0, Reg: reg}); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, err := New(Config{Procs: 1}); err == nil {
		t.Fatal("missing registry/broadcaster accepted")
	}
}

func TestFreshReadAfterRemoteUpdate(t *testing.T) {
	// THE m-linearizability guarantee, and the difference from the m-SC
	// protocol: once an update has responded, every later query — at any
	// process — observes it, regardless of delivery lag. Run many trials
	// with large random delays; a stale read is a protocol bug.
	reg := object.Sequential(1)
	for trial := 0; trial < 25; trial++ {
		b, err := abcast.NewSequencer(abcast.SequencerConfig{
			Procs: 3, Seed: int64(trial), MaxDelay: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewSequencer: %v", err)
		}
		p, err := New(Config{
			Procs: 3, Reg: reg, Broadcast: b,
			Seed: int64(trial) + 100, MaxDelay: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := p.Exec(0, mop.WriteOp{X: 0, V: object.Value(trial + 1)}, mop.ExecOptions{}); err != nil {
			t.Fatalf("update: %v", err)
		}
		rec, err := p.Exec(1, mop.ReadOp{X: 0}, mop.ExecOptions{})
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		if got := rec.Result.(object.Value); got != object.Value(trial+1) {
			t.Fatalf("trial %d: stale read %d after responded update %d", trial, got, trial+1)
		}
		p.Close()
	}
}

func TestQueryMergesFreshestVersions(t *testing.T) {
	p := newProtocol(t, 3, time.Millisecond, false)
	if _, err := p.Exec(0, mop.WriteOp{X: 0, V: 5}, mop.ExecOptions{}); err != nil {
		t.Fatalf("w0: %v", err)
	}
	if _, err := p.Exec(1, mop.WriteOp{X: 1, V: 6}, mop.ExecOptions{}); err != nil {
		t.Fatalf("w1: %v", err)
	}
	rec, err := p.Exec(2, mop.MultiRead{Xs: []object.ID{0, 1}}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	got := rec.Result.([]object.Value)
	if got[0] != 5 || got[1] != 6 {
		t.Fatalf("merged read = %v", got)
	}
	if rec.TSStart.Get(0) != 1 || rec.TSStart.Get(1) != 1 {
		t.Fatalf("query versions = %v", rec.TSStart)
	}
}

func TestRelevantOnlyModeCorrectAndCheaper(t *testing.T) {
	run := func(relevant bool) (int64, *Protocol) {
		reg := object.Sequential(64)
		b, err := abcast.NewSequencer(abcast.SequencerConfig{Procs: 3, Seed: 5})
		if err != nil {
			t.Fatalf("NewSequencer: %v", err)
		}
		p, err := New(Config{Procs: 3, Reg: reg, Broadcast: b, Seed: 6, RelevantOnly: relevant})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		t.Cleanup(p.Close)
		if _, err := p.Exec(0, mop.WriteOp{X: 7, V: 1}, mop.ExecOptions{}); err != nil {
			t.Fatalf("update: %v", err)
		}
		for i := 0; i < 10; i++ {
			rec, err := p.Exec(1, mop.ReadOp{X: 7}, mop.ExecOptions{})
			if err != nil {
				t.Fatalf("query: %v", err)
			}
			if rec.Result.(object.Value) != 1 {
				t.Fatalf("wrong value in relevant=%v mode", relevant)
			}
		}
		return p.QueryTraffic().Bytes, p
	}
	fullBytes, _ := run(false)
	relBytes, _ := run(true)
	if relBytes >= fullBytes {
		t.Fatalf("relevant-only (%d B) should be cheaper than full copies (%d B)", relBytes, fullBytes)
	}
}

func TestQueryTrafficAccounted(t *testing.T) {
	p := newProtocol(t, 3, 0, false)
	if _, err := p.Exec(0, mop.ReadOp{X: 0}, mop.ExecOptions{}); err != nil {
		t.Fatalf("query: %v", err)
	}
	st := p.QueryTraffic()
	// 3 query messages + 3 responses.
	if st.Messages != 6 {
		t.Fatalf("messages = %d, want 6", st.Messages)
	}
	if st.ByKind["mlin.query"].Messages != 3 || st.ByKind["mlin.qresp"].Messages != 3 {
		t.Fatalf("per-kind = %+v", st.ByKind)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	p := newProtocol(t, 4, time.Millisecond, false)
	var wg sync.WaitGroup
	for proc := 0; proc < 4; proc++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var err error
				if i%2 == 0 {
					_, err = p.Exec(proc, mop.WriteOp{X: object.ID(i % 4), V: object.Value(proc*1000 + i)}, mop.ExecOptions{})
				} else {
					_, err = p.Exec(proc, mop.MultiRead{Xs: []object.ID{0, 1, 2, 3}}, mop.ExecOptions{})
				}
				if err != nil {
					t.Errorf("P%d op %d: %v", proc, i, err)
					return
				}
			}
		}(proc)
	}
	wg.Wait()
}

func TestUpdatePathMatchesMSC(t *testing.T) {
	p := newProtocol(t, 2, 0, false)
	rec, err := p.Exec(0, mop.WriteOp{X: 2, V: 9}, mop.ExecOptions{})
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if !rec.Update || rec.Seq < 0 || rec.TSEnd.Get(2) != 1 {
		t.Fatalf("update record = %+v", rec)
	}
	cost, _ := p.BroadcastTraffic()
	if cost == 0 {
		t.Fatal("broadcast traffic unaccounted")
	}
}

func TestContractViolationInQuery(t *testing.T) {
	p := newProtocol(t, 2, 0, false)
	bad := mop.Func{
		Objects: object.NewSet(0),
		Writes:  false,
		Body:    func(txn mop.Txn) any { return txn.Read(3) },
	}
	if _, err := p.Exec(0, bad, mop.ExecOptions{}); err == nil {
		t.Fatal("footprint escape in query not reported")
	}
	// Protocol must stay usable; the pending query state must have been
	// cleaned up.
	if _, err := p.Exec(0, mop.ReadOp{X: 0}, mop.ExecOptions{}); err != nil {
		t.Fatalf("protocol wedged: %v", err)
	}
}

func TestExecuteValidationAndClose(t *testing.T) {
	reg := object.Sequential(1)
	b, err := abcast.NewSequencer(abcast.SequencerConfig{Procs: 1, Seed: 1})
	if err != nil {
		t.Fatalf("NewSequencer: %v", err)
	}
	p, err := New(Config{Procs: 1, Reg: reg, Broadcast: b, Seed: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := p.Exec(9, mop.ReadOp{X: 0}, mop.ExecOptions{}); err == nil {
		t.Fatal("invalid process accepted")
	}
	p.Close()
	if _, err := p.Exec(0, mop.ReadOp{X: 0}, mop.ExecOptions{}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

func TestLocalTSInstrumentation(t *testing.T) {
	p := newProtocol(t, 2, 0, false)
	if _, err := p.Exec(0, mop.WriteOp{X: 1, V: 3}, mop.ExecOptions{}); err != nil {
		t.Fatalf("update: %v", err)
	}
	ts := p.LocalTS(0)
	if ts.Get(1) != 1 {
		t.Fatalf("LocalTS = %v", ts)
	}
}
