package mocrpc

import (
	"net"
	"testing"
	"time"

	"moc/internal/core"
)

// startServer backs the RPC server with an in-process simulated-network
// store, so the protocol layer is tested without spawning daemons.
func startServer(t *testing.T, onShutdown func()) (*core.Store, *Client) {
	t.Helper()
	store, err := core.New(core.Config{
		Procs: 2, Objects: []string{"x", "y"},
		Consistency: core.MSequential, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, store, 0, onShutdown)
	t.Cleanup(srv.Close)
	c, err := Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return store, c
}

func TestExecAndDump(t *testing.T) {
	t.Parallel()
	_, c := startServer(t, nil)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("massign", []string{"x", "y"}, []int64{4, 5}, ""); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Exec("sum", []string{"x", "y"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Value == nil || *resp.Value != 9 {
		t.Fatalf("sum response %+v, want value 9", resp)
	}
	resp, err = c.Exec("multiread", []string{"x", "y"}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Values) != 2 || resp.Values[0] != 4 || resp.Values[1] != 5 {
		t.Fatalf("multiread response %+v, want [4 5]", resp)
	}
	resp, err = c.Exec("cas", []string{"x"}, []int64{4, 40}, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Bool == nil || !*resp.Bool {
		t.Fatalf("cas response %+v, want success", resp)
	}
	resp, err = c.Exec("transfer", []string{"x", "y"}, []int64{100}, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Bool == nil || *resp.Bool {
		t.Fatalf("transfer response %+v, want insufficient-funds false", resp)
	}

	tr, err := c.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 5 {
		t.Fatalf("trace has %d records, want 5", len(tr.Records))
	}
	if tr.Consistency != core.MSequential.String() {
		t.Fatalf("trace consistency %q", tr.Consistency)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages == 0 {
		t.Fatal("stats report zero broadcast messages after updates")
	}
}

func TestExecErrors(t *testing.T) {
	t.Parallel()
	_, c := startServer(t, nil)
	if _, err := c.Exec("read", []string{"nope"}, nil, ""); err == nil {
		t.Fatal("unknown object accepted")
	}
	if _, err := c.Exec("frobnicate", []string{"x"}, nil, ""); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := c.Exec("cas", []string{"x"}, []int64{1}, ""); err == nil {
		t.Fatal("bad cas arity accepted")
	}
	// The connection must survive application-level errors.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestShutdown(t *testing.T) {
	t.Parallel()
	done := make(chan struct{})
	_, c := startServer(t, func() { close(done) })
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown callback never fired")
	}
}
