package mocrpc

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"moc/internal/core"
)

// stuckServer accepts connections and reads requests but never answers
// — a hung daemon, as opposed to a dead one.
func stuckServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(io.Discard, conn) }() //nolint:errcheck
		}
	}()
	return ln.Addr().String()
}

// TestCallTimeoutOnStuckServer pins the per-call deadline: a call to a
// hung daemon returns ErrTimeout (indeterminate, not retryable) within
// roughly the configured deadline instead of blocking forever.
func TestCallTimeoutOnStuckServer(t *testing.T) {
	t.Parallel()
	addr := stuckServer(t)
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCallTimeout(300 * time.Millisecond)

	start := time.Now()
	err = c.Ping()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("stuck-server call returned %v, want ErrTimeout", err)
	}
	if !IsIndeterminate(err) {
		t.Fatalf("timeout not classified indeterminate: %v", err)
	}
	if IsRetryable(err) {
		t.Fatalf("timeout classified retryable (would duplicate updates): %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timed-out call took %v", elapsed)
	}
	// The poisoned connection must not bleed into the next call: it is
	// torn down, and the redial to the still-stuck daemon times out
	// again rather than desyncing request/response IDs.
	if err := c.Ping(); !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrUnavailable) {
		t.Fatalf("post-timeout call returned %v", err)
	}
}

// TestClientRedialsAfterServerRestart kills the TCP server under an
// established client and checks the client classifies the outage
// correctly, then transparently reconnects once a server is back.
func TestClientRedialsAfterServerRestart(t *testing.T) {
	t.Parallel()
	_, c := startServer(t, nil)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Reset the connection out from under the client, as a daemon death
	// mid-session would.
	c.mu.Lock()
	c.conn.Close()
	c.mu.Unlock()

	err := c.Ping()
	if err == nil {
		t.Fatal("call on reset connection succeeded")
	}
	if !IsIndeterminate(err) && !IsRetryable(err) {
		t.Fatalf("reset-connection error %v is neither retryable nor indeterminate", err)
	}
	// Next call redials the live server and succeeds.
	if err := c.Ping(); err != nil {
		t.Fatalf("redial after reset failed: %v", err)
	}
}

// TestUnavailableIsRetryable pins the classification contract on a
// daemon that is down entirely: dial errors are ErrUnavailable, which
// IS safe to retry (the request never left the client).
func TestUnavailableIsRetryable(t *testing.T) {
	t.Parallel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	if _, err := Dial(addr, 50*time.Millisecond); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dial to dead addr returned %v, want ErrUnavailable", err)
	}

	// A client whose connection was torn down sees ErrUnavailable on the
	// lazy redial too.
	c := &Client{addr: addr}
	c.SetCallTimeout(100 * time.Millisecond)
	callErr := c.Ping()
	if !errors.Is(callErr, ErrUnavailable) {
		t.Fatalf("call to dead addr returned %v, want ErrUnavailable", callErr)
	}
	if !IsRetryable(callErr) || IsIndeterminate(callErr) {
		t.Fatalf("unavailable misclassified: retryable=%v indeterminate=%v", IsRetryable(callErr), IsIndeterminate(callErr))
	}
}

// TestServerErrorKeepsConnection pins that application-level failures
// are typed ServerError, non-retryable transport-wise, and leave the
// connection healthy.
func TestServerErrorKeepsConnection(t *testing.T) {
	t.Parallel()
	_, c := startServer(t, nil)
	_, err := c.Exec("read", []string{"nope"}, nil, "")
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("unknown-object error %v is not a ServerError", err)
	}
	if IsRetryable(err) || IsIndeterminate(err) {
		t.Fatal("server error misclassified as transport failure")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection did not survive server error: %v", err)
	}
}

// TestInfoOp pins the info plumbing end to end.
func TestInfoOp(t *testing.T) {
	t.Parallel()
	store, err := core.New(core.Config{
		Procs: 2, Objects: []string{"x", "y"},
		Consistency: core.MSequential, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, store, 0, nil)
	t.Cleanup(srv.Close)
	srv.SetInfo(func() map[string]int64 { return map[string]int64{"recoveries": 3} })
	c, err := Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info["recoveries"] != 3 {
		t.Fatalf("info = %v, want recoveries 3", info)
	}
}
